// Table 2: sequential cost distribution of the numeric factorization on the
// atmosmodj surrogate (nonsymmetric convection-diffusion) at tau = 1e-8,
// for the five configurations the paper compares:
//   Dense | Just-In-Time {RRQR, SVD} | Minimal-Memory {RRQR, SVD}.
// Per-kernel wall times come from the KernelStats registry the numeric
// factorization feeds; the paper's observations to reproduce are the
// *orderings*: SVD compression >> RRQR compression, the LR-addition term
// dominating (even exploding for SVD) in Minimal-Memory, and the factor
// size shrinking in all BLR configurations.

#include "bench_common.hpp"

using namespace bench;

namespace {

struct Config {
  const char* name;
  Strategy strategy;
  lr::CompressionKind kind;
};

} // namespace

int main() {
  const index_t n = env_index("BLR_BENCH_N", 32);
  const real_t tol = 1e-8;
  print_header("Table 2 — cost distribution, atmosmodj surrogate (" +
               std::to_string(n) + "^3 convection-diffusion), tau = 1e-8, 1 thread");

  const auto a = sparse::convection_diffusion_3d(n, n, n, 0.5);

  const Config configs[] = {
      {"Dense", Strategy::Dense, lr::CompressionKind::Rrqr},
      {"JIT/RRQR", Strategy::JustInTime, lr::CompressionKind::Rrqr},
      {"JIT/SVD", Strategy::JustInTime, lr::CompressionKind::Svd},
      {"MinMem/RRQR", Strategy::MinimalMemory, lr::CompressionKind::Rrqr},
      {"MinMem/SVD", Strategy::MinimalMemory, lr::CompressionKind::Svd},
  };

  std::printf("%-22s %10s %10s %10s %10s %10s %10s\n", "seconds", "Dense",
              "JIT/RRQR", "JIT/SVD", "MM/RRQR", "MM/SVD", "");
  double rows[7][5] = {};
  double total[5] = {};
  double solve[5] = {};
  double size_mb[5] = {};
  real_t err[5] = {};

  for (int c = 0; c < 5; ++c) {
    SolverOptions opts = paper_options(configs[c].strategy, configs[c].kind, tol);
    opts.threads = 1;  // Table 2 is sequential
    KernelStats::instance().reset();
    const RunResult r = run_solver(a, opts);
    auto& ks = KernelStats::instance();
    rows[0][c] = ks.seconds(Kernel::Compression);
    rows[1][c] = ks.seconds(Kernel::BlockFactorization);
    rows[2][c] = ks.seconds(Kernel::PanelSolve);
    rows[3][c] = ks.seconds(Kernel::LrProduct);
    rows[4][c] = ks.seconds(Kernel::LrAddition);
    rows[5][c] = ks.seconds(Kernel::DenseUpdate);
    total[c] = r.factorization_time;
    solve[c] = r.solve_time;
    size_mb[c] = static_cast<double>(r.factor_entries) * sizeof(real_t) / 1e6;
    err[c] = r.backward_error;
  }

  const char* labels[6] = {"Compression", "Block factorization", "Panel solve",
                           "LR product", "LR addition", "Dense update"};
  for (int row = 0; row < 6; ++row) {
    std::printf("%-22s", labels[row]);
    for (int c = 0; c < 5; ++c) {
      if (rows[row][c] > 0) std::printf(" %10.3f", rows[row][c]);
      else std::printf(" %10s", "-");
    }
    std::printf("\n");
  }
  std::printf("%-22s", "Total factorization");
  for (int c = 0; c < 5; ++c) std::printf(" %10.3f", total[c]);
  std::printf("\n%-22s", "Solve time");
  for (int c = 0; c < 5; ++c) std::printf(" %10.4f", solve[c]);
  std::printf("\n%-22s", "Factors size (MB)");
  for (int c = 0; c < 5; ++c) std::printf(" %10.2f", size_mb[c]);
  std::printf("\n%-22s", "Backward error");
  for (int c = 0; c < 5; ++c) std::printf(" %10.1e", static_cast<double>(err[c]));
  std::printf("\n");
  return 0;
}
