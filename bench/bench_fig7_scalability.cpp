// Figure 7: memory scalability on 3D Laplacians of increasing size for the
// Minimal-Memory/RRQR scenario — the factors' final size and the solver's
// total peak consumption, for the dense baseline and tau in
// {1e-4, 1e-8, 1e-12}. Shape to reproduce: the dense curve grows fastest;
// looser tolerances flatten both the factor size and the peak, which is
// what let the paper run 12M unknowns in 128 GB.
//
// Second section (beyond the paper's figure): parallel scheduler A/B on the
// largest generator problem of the sweep — factorization wall time of the
// work-stealing priority scheduler vs the legacy shared queue per thread
// count, with the steal/idle counters the pool collects.

#include <algorithm>
#include <cmath>

#include "bench_common.hpp"

using namespace bench;

namespace {

void scheduler_ab(const sparse::CscMatrix& a, index_t n) {
  print_header("Figure 7b — scheduler A/B (JIT/RRQR), largest problem of the sweep");
  std::printf("problem: lap %lld^3, %lld dofs\n\n", static_cast<long long>(n),
              static_cast<long long>(a.rows()));
  std::printf("%8s | %12s | %12s | %8s | %24s\n", "threads", "shared s",
              "stealing s", "speedup", "steals/empty/sleeps");

  std::vector<int> counts = {1, 2, 4, 8};
  const int hw = env_threads();
  if (std::find(counts.begin(), counts.end(), hw) == counts.end() && hw > 1) {
    counts.push_back(hw);
  }
  std::sort(counts.begin(), counts.end());

  for (const int threads : counts) {
    SolverOptions o = paper_options(Strategy::JustInTime,
                                    lr::CompressionKind::Rrqr, 1e-8);
    o.threads = threads;

    o.scheduler = SchedulerKind::SharedQueue;
    const RunResult shared = run_solver(a, o);

    o.scheduler = SchedulerKind::WorkStealing;
    Solver keep(o);
    const RunResult stealing = run_solver(a, o, &keep);
    const auto& st = keep.stats();

    std::printf("%8d | %12.3f | %12.3f | %7.2fx | %10llu/%llu/%llu\n", threads,
                shared.factorization_time, stealing.factorization_time,
                shared.factorization_time / stealing.factorization_time,
                static_cast<unsigned long long>(st.scheduler_steals),
                static_cast<unsigned long long>(st.scheduler_failed_steals),
                static_cast<unsigned long long>(st.scheduler_idle_sleeps));
    std::fflush(stdout);
  }
}

// Dataflow A/B: barrier vs task-DAG factorization wall time per thread
// count (same strategy/scheduler), with the DAG shape counters. The DAG's
// tile-granular dependencies overlap panels the barrier serializes, which
// is where the speedup at higher thread counts comes from.
void dataflow_ab(const sparse::CscMatrix& a, index_t n, std::FILE* json,
                 bool* json_first) {
  print_header("Figure 7c — dataflow A/B (JIT/RRQR): barrier vs task DAG");
  std::printf("problem: lap %lld^3, %lld dofs\n\n", static_cast<long long>(n),
              static_cast<long long>(a.rows()));
  std::printf("%8s | %12s | %12s | %8s | %30s\n", "threads", "barrier s",
              "dag s", "speedup", "tasks/edges/critpath/peak");

  std::vector<int> counts = {1, 2, 4, 8};
  const int hw = env_threads();
  if (std::find(counts.begin(), counts.end(), hw) == counts.end() && hw > 1) {
    counts.push_back(hw);
  }
  std::sort(counts.begin(), counts.end());

  for (const int threads : counts) {
    SolverOptions o = paper_options(Strategy::JustInTime,
                                    lr::CompressionKind::Rrqr, 1e-8);
    o.threads = threads;
    o.scheduler = SchedulerKind::WorkStealing;

    o.dataflow = core::Dataflow::Barrier;
    const RunResult barrier = run_solver(a, o);

    o.dataflow = core::Dataflow::Dag;
    Solver keep(o);
    const RunResult dag = run_solver(a, o, &keep);
    const auto& st = keep.stats();

    std::printf("%8d | %12.3f | %12.3f | %7.2fx | %12llu/%llu/%llu/%llu\n",
                threads, barrier.factorization_time, dag.factorization_time,
                barrier.factorization_time / dag.factorization_time,
                static_cast<unsigned long long>(st.dag_tasks),
                static_cast<unsigned long long>(st.dag_edges),
                static_cast<unsigned long long>(st.dag_critical_path),
                static_cast<unsigned long long>(st.dag_ready_peak));
    std::fflush(stdout);

    if (json) {
      char label[32];
      std::snprintf(label, sizeof label, "barrier_t%d", threads);
      if (!*json_first) std::fprintf(json, ",\n");
      *json_first = false;
      json_run(json, label, a.rows(), barrier);
      std::snprintf(label, sizeof label, "dag_t%d", threads);
      std::fprintf(json, ",\n");
      json_run(json, label, a.rows(), dag);
    }
  }
}

} // namespace

int main() {
  const index_t nmax = env_index("BLR_BENCH_N", 52);
  print_header("Figure 7 — memory scalability, 3D Laplacians (MinMem/RRQR)");

  // Machine-readable companion of the table: one JSON object per run,
  // including the per-kernel dispatch counters.
  const char* json_path = std::getenv("BLR_BENCH_JSON");
  std::FILE* json =
      std::fopen(json_path ? json_path : "fig7_memory.json", "w");
  if (json) std::fprintf(json, "{\n  \"figure\": \"fig7_memory\",\n  \"runs\": [\n");
  bool json_first = true;
  const auto emit = [&](const char* label, index_t dofs, const RunResult& r) {
    if (!json) return;
    if (!json_first) std::fprintf(json, ",\n");
    json_first = false;
    json_run(json, label, dofs, r);
  };

  std::printf("%-8s %10s | %21s | %21s | %21s | %21s\n", "size", "dofs",
              "dense fact/peak MB", "t=1e-4 fact/peak", "t=1e-8 fact/peak",
              "t=1e-12 fact/peak");

  index_t nlast = 12;
  for (index_t n = 12; n <= nmax; n += 8) {
    nlast = n;
    const auto a = sparse::laplacian_3d(n, n, n);
    std::printf("%3lld^3   %10lld |", static_cast<long long>(n),
                static_cast<long long>(a.rows()));

    const RunResult dense =
        run_solver(a, paper_options(Strategy::Dense, lr::CompressionKind::Rrqr, 1e-8));
    std::printf(" %9.1f/%9.1f |", mib(dense.factor_entries * sizeof(real_t)),
                mib(dense.total_peak_bytes));
    emit("dense", a.rows(), dense);

    for (const real_t tol : {1e-4, 1e-8, 1e-12}) {
      const RunResult r = run_solver(
          a, paper_options(Strategy::MinimalMemory, lr::CompressionKind::Rrqr, tol));
      std::printf(" %9.1f/%9.1f |", mib(r.factor_entries * sizeof(real_t)),
                  mib(r.total_peak_bytes));
      const std::string label =
          "minmem_tol" + std::to_string(static_cast<int>(-std::log10(tol)));
      emit(label.c_str(), a.rows(), r);
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  const auto a_last = sparse::laplacian_3d(nlast, nlast, nlast);
  scheduler_ab(a_last, nlast);

  // The dataflow A/B rides in the same JSON file, as its own array.
  if (json) std::fprintf(json, "\n  ],\n  \"dataflow_ab\": [\n");
  bool ab_first = true;
  dataflow_ab(a_last, nlast, json, &ab_first);

  if (json) {
    std::fprintf(json, "\n  ]\n}\n");
    std::fclose(json);
  }
  return 0;
}
