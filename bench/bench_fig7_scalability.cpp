// Figure 7: memory scalability on 3D Laplacians of increasing size for the
// Minimal-Memory/RRQR scenario — the factors' final size and the solver's
// total peak consumption, for the dense baseline and tau in
// {1e-4, 1e-8, 1e-12}. Shape to reproduce: the dense curve grows fastest;
// looser tolerances flatten both the factor size and the peak, which is
// what let the paper run 12M unknowns in 128 GB.

#include "bench_common.hpp"

using namespace bench;

int main() {
  const index_t nmax = env_index("BLR_BENCH_N", 52);
  print_header("Figure 7 — memory scalability, 3D Laplacians (MinMem/RRQR)");

  std::printf("%-8s %10s | %21s | %21s | %21s | %21s\n", "size", "dofs",
              "dense fact/peak MB", "t=1e-4 fact/peak", "t=1e-8 fact/peak",
              "t=1e-12 fact/peak");

  for (index_t n = 12; n <= nmax; n += 8) {
    const auto a = sparse::laplacian_3d(n, n, n);
    std::printf("%3lld^3   %10lld |", static_cast<long long>(n),
                static_cast<long long>(a.rows()));

    const RunResult dense =
        run_solver(a, paper_options(Strategy::Dense, lr::CompressionKind::Rrqr, 1e-8));
    std::printf(" %9.1f/%9.1f |", mib(dense.factor_entries * sizeof(real_t)),
                mib(dense.total_peak_bytes));

    for (const real_t tol : {1e-4, 1e-8, 1e-12}) {
      const RunResult r = run_solver(
          a, paper_options(Strategy::MinimalMemory, lr::CompressionKind::Rrqr, tol));
      std::printf(" %9.1f/%9.1f |", mib(r.factor_entries * sizeof(real_t)),
                  mib(r.total_peak_bytes));
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
