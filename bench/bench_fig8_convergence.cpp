// Figure 8: convergence of the iterative solver (CG for SPD matrices,
// GMRES otherwise) preconditioned with the Minimal-Memory/RRQR low-rank
// factorization, at tau = 1e-4 and tau = 1e-8, on the six-matrix set.
// The solver stops after 20 iterations or at a backward error of 1e-12.
// Shapes to reproduce: tau=1e-8 converges in a handful of iterations;
// tau=1e-4 starts around 1e-4 and still reaches 1e-6..1e-8 quickly.

#include "bench_common.hpp"

using namespace bench;

int main() {
  const index_t n = env_index("BLR_BENCH_N", 28);
  print_header("Figure 8 — preconditioned CG/GMRES convergence, test set at n=" +
               std::to_string(n));

  const auto set = sparse::paper_test_set(n);

  for (const real_t tol : {1e-4, 1e-8}) {
    std::printf("\n-- tau = %.0e --\n", tol);
    for (const auto& tm : set) {
      Solver solver(paper_options(Strategy::MinimalMemory, lr::CompressionKind::Rrqr, tol));
      solver.factorize(tm.matrix);

      std::vector<real_t> b(static_cast<std::size_t>(tm.matrix.rows()), 1.0);
      std::vector<real_t> x(b.size());
      solver.solve(b.data(), x.data());

      RefinementOptions ropts;
      ropts.max_iterations = 20;
      ropts.target = 1e-12;
      const RefinementResult res = solver.refine(tm.matrix, b.data(), x.data(), ropts);

      std::printf("%-12s %-6s iters=%2lld conv=%s  history:", tm.name.c_str(),
                  solver.is_llt() ? "CG" : "GMRES",
                  static_cast<long long>(res.iterations), res.converged ? "y" : "n");
      for (std::size_t i = 0; i < res.history.size(); ++i) {
        std::printf(" %.1e", static_cast<double>(res.history[i]));
        if (i >= 10 && i + 2 < res.history.size()) {
          std::printf(" ...");
          std::printf(" %.1e", static_cast<double>(res.history.back()));
          break;
        }
      }
      std::printf("\n");
      std::fflush(stdout);
    }
  }
  return 0;
}
