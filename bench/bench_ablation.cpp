// Ablation benches for the design choices DESIGN.md calls out (beyond the
// paper's own tables): the supernode splitting sizes (paper: 256 -> 128),
// the compressibility thresholds (width >= 128, height >= 20), and the
// LR2LR recompression kernel choice, all measured on one fixed problem.

#include "bench_common.hpp"

using namespace bench;

namespace {

void run_config(const char* label, const sparse::CscMatrix& a, SolverOptions opts) {
  const RunResult r = run_solver(a, opts);
  std::printf("%-34s %9.2fs %10.2fMB %8.3f %10.2fMB %9.1e %7lld\n", label,
              r.factorization_time, mib(r.factor_entries * sizeof(real_t)),
              static_cast<double>(r.factor_entries) /
                  static_cast<double>(r.factor_entries_dense),
              mib(r.factors_peak_bytes),
              static_cast<double>(r.backward_error),
              static_cast<long long>(r.lowrank_blocks));
  std::fflush(stdout);
}

} // namespace

int main() {
  const index_t n = env_index("BLR_BENCH_N", 28);
  const auto a = sparse::laplacian_3d(n, n, n);
  print_header("Ablations — lap" + std::to_string(n) + ", Just-In-Time/RRQR, tau=1e-8");
  std::printf("%-34s %10s %12s %8s %12s %9s %7s\n", "config", "facto", "factors",
              "ratio", "peak", "bwd err", "#LR");

  // 1. Supernode splitting (split_threshold / split_size).
  for (const auto& [thr, sz] :
       {std::pair<index_t, index_t>{128, 64}, {256, 128}, {512, 256}}) {
    SolverOptions o = paper_options(Strategy::JustInTime, lr::CompressionKind::Rrqr, 1e-8);
    o.split.split_threshold = thr;
    o.split.split_size = sz;
    const std::string label =
        "split " + std::to_string(thr) + "/" + std::to_string(sz);
    run_config(label.c_str(), a, o);
  }

  // 2. Compressibility thresholds.
  for (const auto& [w, h] : {std::pair<index_t, index_t>{64, 10}, {128, 20}, {192, 40}}) {
    SolverOptions o = paper_options(Strategy::JustInTime, lr::CompressionKind::Rrqr, 1e-8);
    o.compress_min_width = w;
    o.compress_min_height = h;
    const std::string label =
        "compress w>=" + std::to_string(w) + " h>=" + std::to_string(h);
    run_config(label.c_str(), a, o);
  }

  // 3. Recompression kernel of the Minimal-Memory extend-add.
  for (const auto kind : {lr::CompressionKind::Rrqr, lr::CompressionKind::Svd}) {
    SolverOptions o = paper_options(Strategy::MinimalMemory, kind, 1e-8);
    const std::string label =
        std::string("MinMem extend-add ") + core::kind_name(kind);
    run_config(label.c_str(), a, o);
  }

  // 4. Separator-locality reordering on/off (blocking optimization of [21]).
  for (const bool reorder : {true, false}) {
    SolverOptions o = paper_options(Strategy::JustInTime, lr::CompressionKind::Rrqr, 1e-8);
    o.nd.reorder_separators = reorder;
    run_config(reorder ? "separator reordering on" : "separator reordering off", a, o);
  }

  // 5. Supernode amalgamation (Scotch frat parameter of §4).
  for (const double frat : {-1.0, 0.02, 0.08, 0.25}) {
    SolverOptions o = paper_options(Strategy::JustInTime, lr::CompressionKind::Rrqr, 1e-8);
    if (frat < 0) {
      o.amalgamate = false;
      run_config("amalgamation off", a, o);
    } else {
      o.amalgamation.frat = frat;
      const std::string label = "amalgamation frat=" + std::to_string(frat).substr(0, 4);
      run_config(label.c_str(), a, o);
    }
  }

  // 6. Scheduling: right-looking (paper) vs the left-looking extension of
  // §4.3 that keeps the Just-In-Time peak below the dense footprint.
  for (const auto sched : {core::Scheduling::RightLooking, core::Scheduling::LeftLooking}) {
    SolverOptions o = paper_options(Strategy::JustInTime, lr::CompressionKind::Rrqr, 1e-8);
    o.scheduling = sched;
    o.threads = 1;
    run_config(sched == core::Scheduling::LeftLooking ? "JIT left-looking"
                                                : "JIT right-looking", a, o);
  }

  // 7. LUAR-style update accumulation (conclusion's aggregation proposal).
  for (const bool acc : {false, true}) {
    SolverOptions o = paper_options(Strategy::MinimalMemory, lr::CompressionKind::Rrqr, 1e-8);
    o.accumulate_updates = acc;
    run_config(acc ? "MinMem accumulate updates" : "MinMem immediate updates", a, o);
  }

  // 8. Compression kernel family (incl. the randomized future-work kernel).
  for (const auto kind : {lr::CompressionKind::Rrqr, lr::CompressionKind::Svd,
                          lr::CompressionKind::Randomized}) {
    SolverOptions o = paper_options(Strategy::JustInTime, kind, 1e-8);
    const std::string label = std::string("JIT kernel ") + core::kind_name(kind);
    run_config(label.c_str(), a, o);
  }
  return 0;
}
