// Figure 5: time-to-solution of (a) Just-In-Time/RRQR and (b)
// Minimal-Memory/RRQR relative to the dense PaStiX baseline on the
// six-matrix evaluation set, for tau in {1e-4, 1e-8, 1e-12}, with the
// backward error of the first solution reported for every bar.
// Shapes to reproduce: JIT < 1 for most matrices with the gain growing as
// tau loosens (up to ~3.3x in the paper); MinMem > 1 (average ~1.8x slower).

#include "bench_common.hpp"

using namespace bench;

int main() {
  const index_t n = env_index("BLR_BENCH_N", 32);
  print_header("Figure 5 — BLR/dense time ratios, test set at n=" + std::to_string(n));

  const auto set = sparse::paper_test_set(n);
  const real_t tols[3] = {1e-4, 1e-8, 1e-12};

  std::printf("%-12s %10s |", "matrix", "dense(s)");
  for (const real_t tol : tols) std::printf("  JIT t=%.0e  err      |", tol);
  for (const real_t tol : tols) std::printf("  MM  t=%.0e  err      |", tol);
  std::printf("\n");

  for (const auto& tm : set) {
    const RunResult dense =
        run_solver(tm.matrix, paper_options(Strategy::Dense, lr::CompressionKind::Rrqr, 1e-8));
    std::printf("%-12s %10.2f |", tm.name.c_str(), dense.factorization_time);

    for (const Strategy strat : {Strategy::JustInTime, Strategy::MinimalMemory}) {
      for (const real_t tol : tols) {
        const RunResult r =
            run_solver(tm.matrix, paper_options(strat, lr::CompressionKind::Rrqr, tol));
        std::printf("  %6.2fx %9.1e |", r.factorization_time / dense.factorization_time,
                    static_cast<double>(r.backward_error));
      }
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\n(ratios < 1: BLR faster than the dense baseline; the backward\n"
              " error of the first solve should track the tolerance)\n");
  return 0;
}
