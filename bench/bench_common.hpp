#pragma once

// Shared helpers for the table/figure regenerators. Problem sizes default to
// values that complete on a small node in minutes; set BLR_BENCH_N (grid
// points per axis) to scale closer to the paper's ~1e6-unknown runs.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "blr.hpp"

namespace bench {

using namespace blr;

inline index_t env_index(const char* name, index_t def) {
  const char* v = std::getenv(name);
  return v ? static_cast<index_t>(std::atoll(v)) : def;
}

inline int env_threads() {
  const char* v = std::getenv("BLR_BENCH_THREADS");
  if (v) return std::atoi(v);
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 1 ? static_cast<int>(hc) : 1;
}

/// Paper defaults for the solver, at a scale where the compressibility
/// thresholds still leave compressible blocks on small grids.
inline SolverOptions paper_options(Strategy strategy, lr::CompressionKind kind,
                                   real_t tol) {
  SolverOptions o;
  o.strategy = strategy;
  o.kind = kind;
  o.tolerance = tol;
  o.threads = env_threads();
  return o;
}

struct RunResult {
  double factorization_time = 0;
  double solve_time = 0;
  real_t backward_error = 0;
  std::size_t factor_entries = 0;
  std::size_t factor_entries_dense = 0;
  std::size_t factor_bytes = 0;    ///< precision-aware final factor bytes
  std::size_t lowrank_bytes = 0;   ///< part of factor_bytes in low-rank U/V
  index_t fp32_blocks = 0;         ///< blocks stored fp32 (MixedTiles only)
  std::size_t factors_peak_bytes = 0;
  std::size_t total_peak_bytes = 0;
  index_t lowrank_blocks = 0;
  double dense_block_fraction = 0;
  std::vector<core::DispatchCount> dispatch;  ///< per-kernel call counters
  core::BatchExecStats batch;  ///< batched-execution counters (zero when off)
};

/// Factorize + solve once, collecting the quantities the paper reports.
inline RunResult run_solver(const sparse::CscMatrix& a, const SolverOptions& opts,
                            Solver* keep = nullptr) {
  RunResult r;
  Solver local(opts);
  Solver& s = keep ? *keep : local;
  s.analyze(a);
  Timer t;
  s.factorize(a);
  r.factorization_time = t.elapsed();

  std::vector<real_t> b(static_cast<std::size_t>(a.rows()), 1.0);
  std::vector<real_t> x(b.size());
  t.reset();
  s.solve(b.data(), x.data());
  r.solve_time = t.elapsed();
  r.backward_error = sparse::backward_error(a, x.data(), b.data());

  r.factor_entries = s.stats().factor_entries_final;
  r.factor_entries_dense = s.stats().factor_entries_dense;
  r.factor_bytes = s.stats().factor_bytes_final;
  r.lowrank_bytes = s.stats().factor_bytes_lowrank;
  r.fp32_blocks = s.stats().num_fp32_blocks;
  r.factors_peak_bytes = s.stats().factors_peak_bytes;
  r.total_peak_bytes = s.stats().total_peak_bytes;
  r.lowrank_blocks = s.stats().num_lowrank_blocks;
  r.dense_block_fraction = s.stats().dense_block_fraction;
  r.dispatch = s.stats().dispatch;
  r.batch = s.stats().batch;
  return r;
}

/// Append one run as a JSON object line to `out` (the caller brackets the
/// array and handles commas). Kernel-dispatch counters are included so the
/// figure data carries the per-kernel call profile of each configuration.
inline void json_run(std::FILE* out, const char* label, index_t dofs,
                     const RunResult& r) {
  std::fprintf(out,
               "    {\"config\": \"%s\", \"dofs\": %lld, "
               "\"factor_bytes\": %zu, \"lowrank_bytes\": %zu, "
               "\"fp32_blocks\": %lld, \"peak_bytes\": %zu, "
               "\"factorization_s\": %.6f, \"backward_error\": %.3e, "
               "\"dense_block_fraction\": %.4f, \"kernels\": [",
               label, static_cast<long long>(dofs), r.factor_bytes,
               r.lowrank_bytes,
               static_cast<long long>(r.fp32_blocks), r.total_peak_bytes,
               r.factorization_time, static_cast<double>(r.backward_error),
               r.dense_block_fraction);
  for (std::size_t i = 0; i < r.dispatch.size(); ++i) {
    const auto& d = r.dispatch[i];
    std::fprintf(out,
                 "%s{\"kernel\": \"%s\", \"backend\": \"%s\", "
                 "\"calls\": %llu, \"bytes\": %llu, \"seconds\": %.6f}",
                 i == 0 ? "" : ", ", d.kernel.c_str(), d.backend.c_str(),
                 static_cast<unsigned long long>(d.calls),
                 static_cast<unsigned long long>(d.bytes), d.seconds);
  }
  std::fprintf(out,
               "], \"batch\": {\"batches\": %llu, \"avg_batch\": %.3f, "
               "\"max_batch\": %llu, \"fill_ratio\": %.4f, "
               "\"pack_hits\": %llu, \"pack_misses\": %llu}}",
               static_cast<unsigned long long>(r.batch.batches),
               r.batch.avg_batch,
               static_cast<unsigned long long>(r.batch.max_batch),
               r.batch.fill_ratio,
               static_cast<unsigned long long>(r.batch.pack_hits),
               static_cast<unsigned long long>(r.batch.pack_misses));
}

inline double gib(std::size_t bytes) { return static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0); }
inline double mib(std::size_t bytes) { return static_cast<double>(bytes) / (1024.0 * 1024.0); }

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

} // namespace bench
