// Figure 6: memory used by the final factors under the Minimal-Memory
// scenario relative to the dense block storage of PaStiX, for both SVD and
// RRQR kernels and tau in {1e-4, 1e-8, 1e-12}, on the six-matrix set.
// Shapes to reproduce: ratio < 1 everywhere (up to >2x gain at tau=1e-4),
// SVD compressing slightly better than RRQR, ratios growing as tau
// tightens.

#include "bench_common.hpp"

using namespace bench;

int main() {
  const index_t n = env_index("BLR_BENCH_N", 28);
  print_header("Figure 6 — MinMem factor-memory ratio vs dense, test set at n=" +
               std::to_string(n));

  const auto set = sparse::paper_test_set(n);
  const real_t tols[3] = {1e-4, 1e-8, 1e-12};

  std::printf("%-12s %12s |", "matrix", "dense(MB)");
  for (const real_t tol : tols)
    std::printf(" RRQR %.0e   SVD %.0e  |", tol, tol);
  std::printf("\n");

  for (const auto& tm : set) {
    // Dense reference size comes from the symbolic structure.
    bool first = true;
    double dense_mb = 0;
    std::string row;
    char buf[128];
    for (const real_t tol : tols) {
      for (const auto kind : {lr::CompressionKind::Rrqr, lr::CompressionKind::Svd}) {
        const RunResult r =
            run_solver(tm.matrix, paper_options(Strategy::MinimalMemory, kind, tol));
        if (first) {
          dense_mb = static_cast<double>(r.factor_entries_dense) * sizeof(real_t) / 1e6;
          first = false;
        }
        std::snprintf(buf, sizeof buf, "   %6.3f   ",
                      static_cast<double>(r.factor_entries) /
                          static_cast<double>(r.factor_entries_dense));
        row += buf;
      }
    }
    std::printf("%-12s %12.1f |%s\n", tm.name.c_str(), dense_mb, row.c_str());
    std::fflush(stdout);
  }
  std::printf("\n(columns per tolerance: RRQR then SVD; < 1 means the factors\n"
              " need less memory than the dense storage)\n");
  return 0;
}
