// Figure 6: memory used by the final factors under the Minimal-Memory
// scenario relative to the dense block storage of PaStiX, for both SVD and
// RRQR kernels and tau in {1e-4, 1e-8, 1e-12}, on the six-matrix set.
// Shapes to reproduce: ratio < 1 everywhere (up to >2x gain at tau=1e-4),
// SVD compressing slightly better than RRQR, ratios growing as tau
// tightens.
//
// The second section extends the figure with the per-tile precision column
// (DESIGN.md §10): Fp64 vs MixedTiles factor bytes and backward error at
// tau = 1e-8, plus the refinement iterations each mode needs to reach 1e-10.
// A JSON companion (fig6_memory.json, or $BLR_BENCH_JSON) records one row
// per (matrix, precision) with the per-precision kernel counters.

#include <cmath>

#include "bench_common.hpp"

using namespace bench;

int main() {
  const index_t n = env_index("BLR_BENCH_N", 28);
  print_header("Figure 6 — MinMem factor-memory ratio vs dense, test set at n=" +
               std::to_string(n));

  const auto set = sparse::paper_test_set(n);
  const real_t tols[3] = {1e-4, 1e-8, 1e-12};

  std::printf("%-12s %12s |", "matrix", "dense(MB)");
  for (const real_t tol : tols)
    std::printf(" RRQR %.0e   SVD %.0e  |", tol, tol);
  std::printf("\n");

  for (const auto& tm : set) {
    // Dense reference size comes from the symbolic structure.
    bool first = true;
    double dense_mb = 0;
    std::string row;
    char buf[128];
    for (const real_t tol : tols) {
      for (const auto kind : {lr::CompressionKind::Rrqr, lr::CompressionKind::Svd}) {
        const RunResult r =
            run_solver(tm.matrix, paper_options(Strategy::MinimalMemory, kind, tol));
        if (first) {
          dense_mb = static_cast<double>(r.factor_entries_dense) * sizeof(real_t) / 1e6;
          first = false;
        }
        std::snprintf(buf, sizeof buf, "   %6.3f   ",
                      static_cast<double>(r.factor_entries) /
                          static_cast<double>(r.factor_entries_dense));
        row += buf;
      }
    }
    std::printf("%-12s %12.1f |%s\n", tm.name.c_str(), dense_mb, row.c_str());
    std::fflush(stdout);
  }
  std::printf("\n(columns per tolerance: RRQR then SVD; < 1 means the factors\n"
              " need less memory than the dense storage)\n");

  // ---- per-tile precision extension (DESIGN.md §10) ----------------------
  print_header("Fig. 6 extension — Fp64 vs MixedTiles factors, MinMem/RRQR, tau=1e-8");

  const char* json_path = std::getenv("BLR_BENCH_JSON");
  std::FILE* json = std::fopen(json_path ? json_path : "fig6_memory.json", "w");
  if (json) std::fprintf(json, "{\n  \"figure\": \"fig6_memory\",\n  \"runs\": [\n");
  bool json_first = true;
  const auto emit = [&](const std::string& label, index_t dofs,
                        const RunResult& r) {
    if (!json) return;
    if (!json_first) std::fprintf(json, ",\n");
    json_first = false;
    json_run(json, label.c_str(), dofs, r);
  };

  std::printf("%-12s | %10s %10s %6s %8s | %10s %10s | %s\n", "matrix",
              "fp64 MB", "mixed MB", "saved", "lr-saved", "fp64 berr",
              "mixed berr", "refine->1e-10");
  for (const auto& tm : set) {
    SolverOptions o =
        paper_options(Strategy::MinimalMemory, lr::CompressionKind::Rrqr, 1e-8);
    // The paper-scale thresholds leave bench-sized grids mostly dense; shrink
    // the blocking so the low-rank (hence demotable) fraction dominates, as it
    // does at the paper's ~1e6-unknown scale.
    o.compress_min_width = 16;
    o.compress_min_height = 8;
    o.split.split_threshold = 64;
    o.split.split_size = 32;
    const RunResult f64 = run_solver(tm.matrix, o);
    emit("fp64_" + tm.name, tm.matrix.rows(), f64);

    o.precision = TilePrecision::MixedTiles;
    Solver keep(o);
    const RunResult mixed = run_solver(tm.matrix, o, &keep);
    emit("mixed_" + tm.name, tm.matrix.rows(), mixed);

    // Iterative refinement must still reach the fp64 residual target: the
    // fp32 storage only weakens the preconditioner marginally.
    std::vector<real_t> b(static_cast<std::size_t>(tm.matrix.rows()), 1.0);
    std::vector<real_t> x(b.size());
    keep.solve(b.data(), x.data());
    RefinementOptions ropts;
    ropts.target = 1e-10;
    ropts.max_iterations = 40;
    const RefinementResult res = keep.refine(tm.matrix, b.data(), x.data(), ropts);

    const auto pct = [](std::size_t before, std::size_t after) {
      return before > 0 ? 100.0 * (1.0 - static_cast<double>(after) /
                                             static_cast<double>(before))
                        : 0.0;
    };
    // 'saved' is diluted by the dense blocks (diagonals plus
    // below-threshold panels), which never demote; 'lr-saved' isolates the
    // compressed part, where fp32 storage is a flat ~2x.
    const double saved = pct(f64.factor_bytes, mixed.factor_bytes);
    const double lr_saved = pct(f64.lowrank_bytes, mixed.lowrank_bytes);
    std::printf(
        "%-12s | %10.1f %10.1f %5.1f%% %7.1f%% | %10.2e %10.2e | %lld iters%s\n",
        tm.name.c_str(), mib(f64.factor_bytes), mib(mixed.factor_bytes), saved,
        lr_saved, static_cast<double>(f64.backward_error),
        static_cast<double>(mixed.backward_error),
        static_cast<long long>(res.iterations),
        res.converged ? "" : " (NOT CONVERGED)");
    std::fflush(stdout);
  }
  if (json) {
    std::fprintf(json, "\n  ]\n}\n");
    std::fclose(json);
    std::printf("\nJSON rows (factor_bytes, fp32_blocks, per-kernel counters) "
                "written to %s\n", json_path ? json_path : "fig6_memory.json");
  }
  std::printf(
      "('saved' is the whole-Factors byte reduction of MixedTiles vs Fp64;\n"
      " 'lr-saved' the reduction on the low-rank factors alone, ~50%% by\n"
      " construction. The gap is the dense-block byte share, which shrinks\n"
      " as BLR_BENCH_N grows toward the paper's ~1e6-unknown runs; both\n"
      " modes refine to the same 1e-10 residual target.)\n");
  return 0;
}
