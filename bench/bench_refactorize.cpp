// Amortized re-factorization benchmark (DESIGN.md §15): the JOREK/MUMPS
// "factorization server" shape — one pattern, many numeric passes, many
// solves per pass. Measures
//
//  1. first-step cost (analyze + cold factorize) vs steady-state
//     refactorize() cost over a trajectory of value updates on a fixed
//     stencil, per strategy;
//  2. blocked solve throughput at nrhs in {1, 8, 32, 128} on the final
//     factors.
//
// Results land in bench_refactorize.json, which the ci.sh perfsmoke stage
// feeds into scripts/bench_trajectory.py next to bench_kernels.json.
// `--quick` shrinks the problem and repetitions and enforces structural
// floors only (plan reused, buffers recycled, warm hints replayed — the
// mechanisms behind "steady-state is cheaper", not wall-clock, which would
// flake on loaded CI machines), exiting nonzero on violation.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "blr.hpp"

namespace {

using namespace blr;

/// Scale every entry and shift the diagonal: a new numeric step on the same
/// pattern, SPD-preserving — the trajectory shape of an implicit
/// time-stepper re-assembling its Jacobian.
sparse::CscMatrix step_values(const sparse::CscMatrix& a, real_t scale,
                              real_t shift) {
  sparse::CscMatrix out = a;
  std::vector<real_t>& v = out.values();
  for (real_t& x : v) x *= scale;
  for (index_t j = 0; j < out.cols(); ++j) {
    for (index_t p = out.colptr()[static_cast<std::size_t>(j)];
         p < out.colptr()[static_cast<std::size_t>(j) + 1]; ++p) {
      if (out.rowind()[static_cast<std::size_t>(p)] == j) {
        v[static_cast<std::size_t>(p)] += shift;
      }
    }
  }
  return out;
}

struct TrajectoryRow {
  const char* strategy = "";
  double first_s = 0;       ///< analyze + cold factorize
  double analyze_s = 0;     ///< symbolic share of the first step
  double steady_s = 0;      ///< best refactorize() over the trajectory
  double speedup = 0;       ///< first_s / steady_s
  std::uint64_t warm_attempts = 0;
  std::uint64_t warm_hits = 0;
  std::uint64_t warm_grows = 0;
  std::uint64_t dense_skips = 0;
  std::uint64_t buffer_hits = 0;
  std::uint64_t buffer_misses = 0;
};

struct SolveRow {
  index_t nrhs = 0;
  int threads = 1;        ///< solve_threads (1 = sequential two-sweep)
  double seconds = 0;     ///< one blocked solve of nrhs columns
  double rhs_per_s = 0;
};

int run(bool quick) {
  const index_t g = quick ? 10 : 20;
  const int steps = quick ? 4 : 8;
  const sparse::CscMatrix a0 = sparse::laplacian_3d(g, g, g);
  const index_t n = a0.rows();

  SolverOptions base;
  base.kind = lr::CompressionKind::Rrqr;
  base.tolerance = 1e-8;
  base.split.split_threshold = 64;
  base.split.split_size = 32;
  base.compress_min_width = 16;
  base.compress_min_height = 8;

  int failures = 0;
  const auto require = [&failures](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "bench_refactorize: FLOOR VIOLATED: %s\n", what);
      ++failures;
    }
  };

  std::vector<TrajectoryRow> rows;
  for (const Strategy strategy :
       {Strategy::JustInTime, Strategy::MinimalMemory}) {
    SolverOptions opts = base;
    opts.strategy = strategy;
    core::Solver solver(opts);

    TrajectoryRow row;
    row.strategy = core::strategy_name(strategy);

    Timer first;
    solver.factorize(a0);
    row.first_s = first.elapsed();
    row.analyze_s = solver.stats().time_analyze;
    const auto plan = solver.plan();

    row.steady_s = 1e300;
    for (int s = 1; s <= steps; ++s) {
      const sparse::CscMatrix as =
          step_values(a0, real_t(1) + real_t(0.05) * static_cast<real_t>(s),
                      real_t(0.1) * static_cast<real_t>(s));
      Timer t;
      solver.refactorize(as);
      const double sec = t.elapsed();
      if (s > 1) row.steady_s = std::min(row.steady_s, sec);
    }
    const core::SolverStats& st = solver.stats();
    row.speedup = row.first_s / row.steady_s;
    row.warm_attempts = st.warm.attempts;
    row.warm_hits = st.warm.hits;
    row.warm_grows = st.warm.grows;
    row.dense_skips = st.warm.dense_skips;
    row.buffer_hits = st.buffer_hits;
    row.buffer_misses = st.buffer_misses;

    // Structural floors: the three reuse mechanisms actually engaged.
    require(solver.plan().get() == plan.get(), "symbolic plan was rebuilt");
    require(st.refactorizations == static_cast<std::uint64_t>(steps),
            "refactorize() fell back to a cold pass");
    require(st.buffer_hits > 0, "no pooled buffer was reused");
    require(st.warm.attempts + st.warm.dense_skips > 0,
            "no compression consumed a replayed rank hint");
    rows.push_back(row);
  }

  // Solve throughput: one blocked multi-RHS solve per (width, solve-thread
  // count) on JustInTime factors (the solve path is strategy-independent
  // once the factors exist). The warmed pass after a refactorize also pins
  // the solve-plan replay floor.
  std::vector<SolveRow> solves;
  for (const int threads : {1, 4}) {
    SolverOptions opts = base;
    opts.strategy = Strategy::JustInTime;
    opts.solve_parallel = threads > 1;
    opts.solve_threads = threads;
    core::Solver solver(opts);
    solver.factorize(a0);
    // One value step so the steady-state (plan-replaying) solve is measured.
    solver.refactorize(step_values(a0, real_t(1.05), real_t(0.1)));
    Prng rng(1234);
    for (const index_t nrhs : {index_t{1}, index_t{8}, index_t{32},
                               index_t{128}}) {
      la::DMatrix b(n, nrhs), x(n, nrhs);
      la::random_normal(b.view(), rng);
      const int reps = quick ? 2 : 5;
      double best = 1e300;
      for (int r = 0; r < reps; ++r) {
        Timer t;
        solver.solve(b.cview(), x.view());
        best = std::min(best, t.elapsed());
      }
      SolveRow sr;
      sr.nrhs = nrhs;
      sr.threads = threads;
      sr.seconds = best;
      sr.rhs_per_s = static_cast<double>(nrhs) / best;
      solves.push_back(sr);
    }
    // Structural floors: the cached solve schedule served every pass, and
    // the parallel configuration actually left the sequential sweep.
    const core::SolvePhaseStats& sp = solver.stats().solve_phase;
    require(sp.plan_builds == 1 && sp.plan_reuses >= 1,
            "solve plan was rebuilt instead of reused across refactorize");
    if (threads > 1) {
      require(sp.parallel_solves + sp.split_solves > 0,
              "parallel solve path never engaged");
    }
  }

  // fp32 widen-cache floor: MixedTiles factors promote their low-rank
  // factors to fp64 once per epoch and hit that cache on every solve.
  {
    SolverOptions opts = base;
    opts.strategy = Strategy::MinimalMemory;
    opts.precision = TilePrecision::MixedTiles;
    core::Solver solver(opts);
    solver.factorize(a0);
    Prng rng(99);
    la::DMatrix b(n, 4), x(n, 4);
    la::random_normal(b.view(), rng);
    solver.solve(b.cview(), x.view());
    solver.solve(b.cview(), x.view());
    const core::SolvePhaseStats& sp = solver.stats().solve_phase;
    require(solver.stats().num_fp32_blocks > 0,
            "MixedTiles produced no fp32 blocks to widen");
    require(sp.widen_bytes > 0 && sp.widen_hits > 0,
            "fp32 widen cache never engaged");
  }
  std::FILE* out = std::fopen("bench_refactorize.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_refactorize: cannot write report\n");
    return failures + 1;
  }
  std::fprintf(out, "{\n  \"n\": %lld,\n  \"steps\": %d,\n",
               static_cast<long long>(n), steps);
  std::fprintf(out, "  \"refactorize\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const TrajectoryRow& r = rows[i];
    std::fprintf(out,
                 "    {\"strategy\": \"%s\", \"first_s\": %.6e, "
                 "\"analyze_s\": %.6e, \"steady_s\": %.6e, "
                 "\"speedup\": %.3f, \"warm_attempts\": %llu, "
                 "\"warm_hits\": %llu, \"warm_grows\": %llu, "
                 "\"dense_skips\": %llu, \"buffer_hits\": %llu, "
                 "\"buffer_misses\": %llu}%s\n",
                 r.strategy, r.first_s, r.analyze_s, r.steady_s, r.speedup,
                 static_cast<unsigned long long>(r.warm_attempts),
                 static_cast<unsigned long long>(r.warm_hits),
                 static_cast<unsigned long long>(r.warm_grows),
                 static_cast<unsigned long long>(r.dense_skips),
                 static_cast<unsigned long long>(r.buffer_hits),
                 static_cast<unsigned long long>(r.buffer_misses),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"solve_throughput\": [\n");
  for (std::size_t i = 0; i < solves.size(); ++i) {
    const SolveRow& sr = solves[i];
    std::fprintf(out,
                 "    {\"nrhs\": %lld, \"threads\": %d, \"seconds\": %.6e, "
                 "\"rhs_per_s\": %.1f}%s\n",
                 static_cast<long long>(sr.nrhs), sr.threads, sr.seconds,
                 sr.rhs_per_s, i + 1 < solves.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote bench_refactorize.json\n");

  for (const TrajectoryRow& r : rows) {
    std::printf("%-14s first %.3f ms  steady %.3f ms  speedup %.2fx  "
                "(warm %llu hits / %llu grows / %llu dense-skips, "
                "pool %llu hits)\n",
                r.strategy, r.first_s * 1e3, r.steady_s * 1e3, r.speedup,
                static_cast<unsigned long long>(r.warm_hits),
                static_cast<unsigned long long>(r.warm_grows),
                static_cast<unsigned long long>(r.dense_skips),
                static_cast<unsigned long long>(r.buffer_hits));
  }
  return failures;
}

} // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  return run(quick) > 0 ? 1 : 0;
}
