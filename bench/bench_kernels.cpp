// Microbenchmarks of the low-rank kernels (§3 of the paper): SVD vs RRQR
// compression cost, LR product, and the LR2LR extend-add recompression.
// Also serves as the measured counterpart of the complexity Table 1.

#include <benchmark/benchmark.h>

#include "blr.hpp"
#include "linalg/random.hpp"

namespace {

using namespace blr;

la::DMatrix decaying_block(index_t m, index_t n, std::uint64_t seed) {
  Prng rng(seed);
  return la::random_decaying<real_t>(m, n, 0.5, rng);
}

void BM_CompressRRQR(benchmark::State& state) {
  const index_t m = state.range(0);
  const la::DMatrix a = decaying_block(m, m, 42);
  for (auto _ : state) {
    auto lr = lr::compress_rrqr(a.cview(), 1e-8, lr::beneficial_rank_limit(m, m));
    benchmark::DoNotOptimize(lr);
  }
}
BENCHMARK(BM_CompressRRQR)->Arg(64)->Arg(128)->Arg(256)->MinTime(0.05);

void BM_CompressSVD(benchmark::State& state) {
  const index_t m = state.range(0);
  const la::DMatrix a = decaying_block(m, m, 42);
  for (auto _ : state) {
    auto lr = lr::compress_svd(a.cview(), 1e-8, lr::beneficial_rank_limit(m, m));
    benchmark::DoNotOptimize(lr);
  }
}
BENCHMARK(BM_CompressSVD)->Arg(64)->Arg(128)->Arg(256)->MinTime(0.05);

void BM_CompressRandomized(benchmark::State& state) {
  const index_t m = state.range(0);
  const la::DMatrix a = decaying_block(m, m, 42);
  for (auto _ : state) {
    auto lr = lr::compress_randomized(a.cview(), 1e-8, lr::beneficial_rank_limit(m, m));
    benchmark::DoNotOptimize(lr);
  }
}
BENCHMARK(BM_CompressRandomized)->Arg(64)->Arg(128)->Arg(256)->MinTime(0.05);

void BM_LrProduct(benchmark::State& state) {
  const index_t m = state.range(0);
  Prng rng(7);
  const la::DMatrix da = la::random_rank_k<real_t>(m, m, 16, rng);
  const la::DMatrix db = la::random_rank_k<real_t>(m, m, 16, rng);
  const lr::Tile a = lr::compress_to_tile(lr::CompressionKind::Rrqr, da.cview(), 1e-8);
  const lr::Tile b = lr::compress_to_tile(lr::CompressionKind::Rrqr, db.cview(), 1e-8);
  for (auto _ : state) {
    auto p = lr::ab_t_product(a, b, lr::CompressionKind::Rrqr, 1e-8, true);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_LrProduct)->Arg(128)->Arg(256)->Arg(512)->MinTime(0.05);

void BM_DenseGemmReference(benchmark::State& state) {
  const index_t m = state.range(0);
  Prng rng(7);
  la::DMatrix a(m, m);
  la::DMatrix b(m, m);
  la::DMatrix c(m, m);
  la::random_normal(a.view(), rng);
  la::random_normal(b.view(), rng);
  for (auto _ : state) {
    la::gemm(la::Trans::No, la::Trans::Yes, real_t(-1), a.cview(), b.cview(),
             real_t(1), c.view());
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_DenseGemmReference)->Arg(128)->Arg(256)->Arg(512)->MinTime(0.05);

void BM_Lr2LrExtendAdd(benchmark::State& state) {
  const index_t m = state.range(0);
  const auto kind = state.range(1) == 0 ? lr::CompressionKind::Rrqr
                                        : lr::CompressionKind::Svd;
  Prng rng(11);
  const la::DMatrix dc = la::random_rank_k<real_t>(m, m, 24, rng);
  const la::DMatrix dp = la::random_rank_k<real_t>(m / 4, m / 4, 8, rng);
  const lr::Tile pb = lr::compress_to_tile(kind, dp.cview(), 1e-8);
  const lr::Tile cb = lr::compress_to_tile(kind, dc.cview(), 1e-8);
  const lr::Tile p =
      lr::Tile::make_lowrank(m / 4, m / 4, lr::LrMatrix(pb.lr()));
  for (auto _ : state) {
    // Re-installing the target's factors is two small copies — negligible
    // next to the recompression being measured.
    lr::Tile c = lr::Tile::make_lowrank(m, m, lr::LrMatrix(cb.lr()));
    lr::lr2lr_add(c, p, m / 8, m / 8, kind, 1e-8);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_Lr2LrExtendAdd)
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->MinTime(0.05);

} // namespace

BENCHMARK_MAIN();
