// Microbenchmarks of the low-rank kernels (§3 of the paper): SVD vs RRQR
// compression cost, LR product, and the LR2LR extend-add recompression.
// Also serves as the measured counterpart of the complexity Table 1.
//
// On top of the google-benchmark sections, a custom driver measures the
// packed gemm microkernel against the unpacked loop nests, la::gemm under
// each kernel backend (Reference vs Native at its detected ISA tier,
// DESIGN.md §14), and the batched dispatch path (KernelDispatch::run_batch)
// against eager per-call dispatch, plus one end-to-end Just-In-Time
// factorization with batching off vs on.
// Results land in bench_kernels.json. `--quick` runs only this driver with
// reduced repetitions and enforces the perf-smoke assertions (packed gemm
// not slower than the loop nests at n=k=256; batches actually formed under
// Batching::PerSupernode), exiting nonzero on violation — the ci.sh
// perfsmoke stage runs exactly that.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "blr.hpp"
#include "common/thread_pool.hpp"
#include "core/kernel_batch.hpp"
#include "core/kernels_dispatch.hpp"
#include "linalg/backend.hpp"
#include "linalg/random.hpp"

namespace {

using namespace blr;

la::DMatrix decaying_block(index_t m, index_t n, std::uint64_t seed) {
  Prng rng(seed);
  return la::random_decaying<real_t>(m, n, 0.5, rng);
}

void BM_CompressRRQR(benchmark::State& state) {
  const index_t m = state.range(0);
  const la::DMatrix a = decaying_block(m, m, 42);
  for (auto _ : state) {
    auto lr = lr::compress_rrqr(a.cview(), 1e-8, lr::beneficial_rank_limit(m, m));
    benchmark::DoNotOptimize(lr);
  }
}
BENCHMARK(BM_CompressRRQR)->Arg(64)->Arg(128)->Arg(256)->MinTime(0.05);

void BM_CompressSVD(benchmark::State& state) {
  const index_t m = state.range(0);
  const la::DMatrix a = decaying_block(m, m, 42);
  for (auto _ : state) {
    auto lr = lr::compress_svd(a.cview(), 1e-8, lr::beneficial_rank_limit(m, m));
    benchmark::DoNotOptimize(lr);
  }
}
BENCHMARK(BM_CompressSVD)->Arg(64)->Arg(128)->Arg(256)->MinTime(0.05);

void BM_CompressRandomized(benchmark::State& state) {
  const index_t m = state.range(0);
  const la::DMatrix a = decaying_block(m, m, 42);
  for (auto _ : state) {
    auto lr = lr::compress_randomized(a.cview(), 1e-8, lr::beneficial_rank_limit(m, m));
    benchmark::DoNotOptimize(lr);
  }
}
BENCHMARK(BM_CompressRandomized)->Arg(64)->Arg(128)->Arg(256)->MinTime(0.05);

void BM_LrProduct(benchmark::State& state) {
  const index_t m = state.range(0);
  Prng rng(7);
  const la::DMatrix da = la::random_rank_k<real_t>(m, m, 16, rng);
  const la::DMatrix db = la::random_rank_k<real_t>(m, m, 16, rng);
  const lr::Tile a = lr::compress_to_tile(lr::CompressionKind::Rrqr, da.cview(), 1e-8);
  const lr::Tile b = lr::compress_to_tile(lr::CompressionKind::Rrqr, db.cview(), 1e-8);
  for (auto _ : state) {
    auto p = lr::ab_t_product(a, b, lr::CompressionKind::Rrqr, 1e-8, true);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_LrProduct)->Arg(128)->Arg(256)->Arg(512)->MinTime(0.05);

void BM_DenseGemmReference(benchmark::State& state) {
  const index_t m = state.range(0);
  Prng rng(7);
  la::DMatrix a(m, m);
  la::DMatrix b(m, m);
  la::DMatrix c(m, m);
  la::random_normal(a.view(), rng);
  la::random_normal(b.view(), rng);
  for (auto _ : state) {
    la::gemm(la::Trans::No, la::Trans::Yes, real_t(-1), a.cview(), b.cview(),
             real_t(1), c.view());
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_DenseGemmReference)->Arg(128)->Arg(256)->Arg(512)->MinTime(0.05);

void BM_Lr2LrExtendAdd(benchmark::State& state) {
  const index_t m = state.range(0);
  const auto kind = state.range(1) == 0 ? lr::CompressionKind::Rrqr
                                        : lr::CompressionKind::Svd;
  Prng rng(11);
  const la::DMatrix dc = la::random_rank_k<real_t>(m, m, 24, rng);
  const la::DMatrix dp = la::random_rank_k<real_t>(m / 4, m / 4, 8, rng);
  const lr::Tile pb = lr::compress_to_tile(kind, dp.cview(), 1e-8);
  const lr::Tile cb = lr::compress_to_tile(kind, dc.cview(), 1e-8);
  const lr::Tile p =
      lr::Tile::make_lowrank(m / 4, m / 4, lr::LrMatrix(pb.lr()));
  for (auto _ : state) {
    // Re-installing the target's factors is two small copies — negligible
    // next to the recompression being measured.
    lr::Tile c = lr::Tile::make_lowrank(m, m, lr::LrMatrix(cb.lr()));
    lr::lr2lr_add(c, p, m / 8, m / 8, kind, 1e-8);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_Lr2LrExtendAdd)
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->MinTime(0.05);

// ---- custom driver: packed gemm, batched dispatch, e2e ---------------

/// Best-of-`trials` wall time of `fn()` run `reps` times per trial.
template <typename Fn>
double best_seconds(int trials, int reps, Fn&& fn) {
  double best = 1e300;
  for (int t = 0; t < trials; ++t) {
    Timer timer;
    for (int r = 0; r < reps; ++r) fn();
    best = std::min(best, timer.elapsed() / reps);
  }
  return best;
}

struct PackedRow {
  index_t n = 0;
  double packed_s = 0, unpacked_s = 0;
  double packed_gflops = 0, unpacked_gflops = 0;
  double speedup = 0;
};

PackedRow measure_packed(index_t n, int trials, int reps) {
  Prng rng(7);
  la::DMatrix a(n, n), b(n, n), c(n, n);
  la::random_normal(a.view(), rng);
  la::random_normal(b.view(), rng);
  la::random_normal(c.view(), rng);
  PackedRow row;
  row.n = n;
  row.packed_s = best_seconds(trials, reps, [&] {
    la::gemm(la::Trans::No, la::Trans::Yes, real_t(-1), a.cview(), b.cview(),
             real_t(1), c.view());
  });
  row.unpacked_s = best_seconds(trials, reps, [&] {
    la::gemm_unpacked(la::Trans::No, la::Trans::Yes, real_t(-1), a.cview(),
                      b.cview(), real_t(1), c.view());
  });
  const double flops = 2.0 * static_cast<double>(n) * n * n;
  row.packed_gflops = flops / row.packed_s / 1e9;
  row.unpacked_gflops = flops / row.unpacked_s / 1e9;
  row.speedup = row.unpacked_s / row.packed_s;
  return row;
}

struct BackendRow {
  const char* backend = nullptr;
  std::string isa;  ///< Native ISA tier; empty for Reference
  index_t n = 0;
  double seconds = 0, gflops = 0;
};

/// gemm GF/s under each kernel backend (DESIGN.md §14) — the A/B the
/// runtime-dispatch layer exists for. Restores the entry backend.
std::vector<BackendRow> measure_backends(int trials) {
  const la::Backend entry = la::current_backend();
  std::vector<BackendRow> rows;
  for (const index_t n : {index_t(64), index_t(128), index_t(256)}) {
    const int reps = n <= 64 ? 200 : n <= 128 ? 50 : 10;
    Prng rng(7);
    la::DMatrix a(n, n), b(n, n), c(n, n);
    la::random_normal(a.view(), rng);
    la::random_normal(b.view(), rng);
    la::random_normal(c.view(), rng);
    for (const la::Backend be : {la::Backend::Reference, la::Backend::Native}) {
      la::set_backend(be);
      BackendRow row;
      row.backend = la::backend_name(be);
      row.isa = be == la::Backend::Native ? la::native_isa_name(la::native_isa())
                                          : "";
      row.n = n;
      row.seconds = best_seconds(trials, reps, [&] {
        la::gemm(la::Trans::No, la::Trans::Yes, real_t(-1), a.cview(),
                 b.cview(), real_t(1), c.view());
      });
      row.gflops = 2.0 * static_cast<double>(n) * n * n / row.seconds / 1e9;
      rows.push_back(row);
    }
  }
  la::set_backend(entry);
  return rows;
}

struct BatchedRow {
  std::string op;
  index_t tile = 0;
  std::size_t batch = 0;
  double eager_s = 0, batched_s = 0, speedup = 0;
};

/// One batched-vs-eager measurement: `count` same-key product or compress
/// entries, dispatched one by one vs as a single run_batch invocation.
BatchedRow measure_batched(const char* label, core::KernelOp op, bool lowrank_a,
                           index_t tile, std::size_t count, ThreadPool* pool,
                           int trials, int reps) {
  Prng rng(23);
  std::vector<lr::Tile> as, bs;
  std::vector<la::DMatrix> ins;
  std::vector<core::KernelCtx> ctxs(count);
  const core::Rep ra = lowrank_a ? core::Rep::LowRank : core::Rep::Dense;
  const core::Rep rb =
      op == core::KernelOp::Gemm ? core::Rep::LowRank : core::Rep::None;
  for (std::size_t e = 0; e < count; ++e) {
    core::KernelCtx& kc = ctxs[e];
    if (op == core::KernelOp::Compress) {
      ins.push_back(decaying_block(tile, tile, 100 + e));
      kc.in = ins.back().cview();
      kc.kind = lr::CompressionKind::Rrqr;
      kc.tolerance = 1e-8;
      kc.max_rank = lr::beneficial_rank_limit(tile, tile);
    } else {
      const la::DMatrix da = la::random_rank_k<real_t>(tile, tile, 12, rng);
      const la::DMatrix db = la::random_rank_k<real_t>(tile, tile, 12, rng);
      as.push_back(lowrank_a
                       ? lr::compress_to_tile(lr::CompressionKind::Rrqr,
                                              da.cview(), 1e-8)
                       : lr::Tile::from_dense(la::DMatrix(da)));
      bs.push_back(lr::compress_to_tile(lr::CompressionKind::Rrqr, db.cview(),
                                        1e-8));
      kc.kind = lr::CompressionKind::Rrqr;
      kc.tolerance = 1e-8;
      kc.need_ortho = false;
      kc.out_cat = MemCategory::Workspace;
    }
  }
  // Tile vectors are stable now — take the operand pointers.
  for (std::size_t e = 0; e < count && op == core::KernelOp::Gemm; ++e) {
    ctxs[e].a = &as[e];
    ctxs[e].b = &bs[e];
  }
  std::vector<core::KernelCtx*> ptrs(count);
  for (std::size_t e = 0; e < count; ++e) ptrs[e] = &ctxs[e];

  auto& reg = core::KernelDispatch::instance();
  BatchedRow row;
  row.op = label;
  row.tile = tile;
  row.batch = count;
  row.eager_s = best_seconds(trials, reps, [&] {
    for (std::size_t e = 0; e < count; ++e)
      reg.run(op, ra, core::Prec::Fp64, rb, core::Prec::Fp64, ctxs[e]);
  });
  row.batched_s = best_seconds(trials, reps, [&] {
    reg.run_batch(op, ra, core::Prec::Fp64, rb, core::Prec::Fp64, ptrs.data(),
                  count, pool);
  });
  row.speedup = row.eager_s / row.batched_s;
  return row;
}

struct E2eResult {
  double off_s = 0, on_s = 0, speedup = 0;
  core::BatchExecStats batch;
};

E2eResult measure_e2e(int threads) {
  const index_t g = 12;
  const sparse::CscMatrix a = sparse::convection_diffusion_3d(g, g, g, 0.5);
  SolverOptions o;
  o.strategy = Strategy::JustInTime;
  o.threads = threads;
  E2eResult r;
  {
    o.batching = core::Batching::Off;
    Solver s(o);
    Timer t;
    s.factorize(a);
    r.off_s = t.elapsed();
  }
  {
    o.batching = core::Batching::PerSupernode;
    Solver s(o);
    Timer t;
    s.factorize(a);
    r.on_s = t.elapsed();
    r.batch = s.stats().batch;
  }
  r.speedup = r.off_s / r.on_s;
  return r;
}

int bench_threads() {
  const char* v = std::getenv("BLR_BENCH_THREADS");
  if (v) return std::atoi(v);
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 1 ? static_cast<int>(hc) : 1;
}

int run_custom_driver(bool quick) {
  const int trials = quick ? 3 : 5;
  int failures = 0;

  std::printf("== packed gemm vs unpacked loop nests (alpha=-1, beta=1) ==\n");
  std::vector<PackedRow> packed;
  for (const index_t n : {index_t(64), index_t(128), index_t(256)}) {
    const int reps = n <= 64 ? 200 : n <= 128 ? 50 : 10;
    packed.push_back(measure_packed(n, trials, reps));
    const PackedRow& p = packed.back();
    std::printf("  n=k=%-4lld packed %7.2f GF/s  unpacked %7.2f GF/s  "
                "speedup %.2fx\n",
                static_cast<long long>(p.n), p.packed_gflops,
                p.unpacked_gflops, p.speedup);
  }
  const PackedRow& p256 = packed.back();
  if (p256.packed_s > 1.10 * p256.unpacked_s) {
    std::printf("FAIL: packed gemm is >10%% slower than the loop nests at "
                "n=k=256 (%.2fx)\n", p256.speedup);
    ++failures;
  }

  std::printf("== backend A/B: la::gemm GF/s per kernel backend ==\n");
  const std::vector<BackendRow> backends = measure_backends(trials);
  for (const BackendRow& r : backends) {
    const std::string isa = r.isa.empty() ? "" : "(" + r.isa + ")";
    std::printf("  n=k=%-4lld %-10s %-9s %7.2f GF/s\n",
                static_cast<long long>(r.n), r.backend, isa.c_str(), r.gflops);
  }

  std::printf("== batched vs eager dispatch (threads=%d) ==\n",
              bench_threads());
  ThreadPool pool(bench_threads(), SchedulerKind::WorkStealing);
  std::vector<BatchedRow> batched;
  struct OpCase {
    const char* label;
    core::KernelOp op;
    bool lowrank_a;
  };
  const OpCase ops[] = {
      {"gemm[lr,lr]", core::KernelOp::Gemm, true},
      {"gemm[ge,lr]", core::KernelOp::Gemm, false},
      {"compress[ge]", core::KernelOp::Compress, false},
  };
  for (const OpCase& oc : ops) {
    for (const index_t tile : {index_t(64), index_t(128), index_t(256)}) {
      if (quick && tile == 128) continue;
      for (const std::size_t count : {std::size_t(1), std::size_t(8),
                                      std::size_t(64)}) {
        if (quick && count == 8) continue;
        const int reps = tile >= 256 || count >= 64 ? 2 : 10;
        batched.push_back(measure_batched(oc.label, oc.op, oc.lowrank_a, tile,
                                          count, &pool, trials, reps));
        const BatchedRow& b = batched.back();
        std::printf("  %-13s tile=%-4lld batch=%-3zu eager %9.3f ms  "
                    "batched %9.3f ms  speedup %.2fx\n",
                    b.op.c_str(), static_cast<long long>(b.tile), b.batch,
                    b.eager_s * 1e3, b.batched_s * 1e3, b.speedup);
      }
    }
  }

  std::printf("== end-to-end Just-In-Time factorization, batching off/on ==\n");
  const E2eResult e2e = measure_e2e(bench_threads());
  std::printf("  off %.3f s   on %.3f s   speedup %.2fx   "
              "(%llu batches, avg %.1f, fill %.2f, %llu pack hits)\n",
              e2e.off_s, e2e.on_s, e2e.speedup,
              static_cast<unsigned long long>(e2e.batch.batches),
              e2e.batch.avg_batch, e2e.batch.fill_ratio,
              static_cast<unsigned long long>(e2e.batch.pack_hits));
  if (e2e.batch.batches == 0) {
    std::printf("FAIL: no batches formed under Batching::PerSupernode\n");
    ++failures;
  }

  std::FILE* out = std::fopen("bench_kernels.json", "w");
  if (out) {
    std::fprintf(out, "{\n  \"packed_gemm\": [\n");
    for (std::size_t i = 0; i < packed.size(); ++i) {
      const PackedRow& p = packed[i];
      std::fprintf(out,
                   "    {\"n\": %lld, \"packed_gflops\": %.3f, "
                   "\"unpacked_gflops\": %.3f, \"speedup\": %.3f}%s\n",
                   static_cast<long long>(p.n), p.packed_gflops,
                   p.unpacked_gflops, p.speedup,
                   i + 1 < packed.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"backends\": [\n");
    for (std::size_t i = 0; i < backends.size(); ++i) {
      const BackendRow& r = backends[i];
      std::fprintf(out,
                   "    {\"backend\": \"%s\", \"isa\": \"%s\", \"n\": %lld, "
                   "\"gflops\": %.3f}%s\n",
                   r.backend, r.isa.c_str(), static_cast<long long>(r.n),
                   r.gflops, i + 1 < backends.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"batched_dispatch\": [\n");
    for (std::size_t i = 0; i < batched.size(); ++i) {
      const BatchedRow& b = batched[i];
      std::fprintf(out,
                   "    {\"op\": \"%s\", \"tile\": %lld, \"batch\": %zu, "
                   "\"eager_s\": %.6f, \"batched_s\": %.6f, "
                   "\"speedup\": %.3f}%s\n",
                   b.op.c_str(), static_cast<long long>(b.tile), b.batch,
                   b.eager_s, b.batched_s, b.speedup,
                   i + 1 < batched.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n  \"e2e_jit\": {\"off_s\": %.4f, \"on_s\": %.4f, "
                 "\"speedup\": %.3f, \"batches\": %llu, \"avg_batch\": %.2f, "
                 "\"fill_ratio\": %.4f, \"pack_hits\": %llu}\n}\n",
                 e2e.off_s, e2e.on_s, e2e.speedup,
                 static_cast<unsigned long long>(e2e.batch.batches),
                 e2e.batch.avg_batch, e2e.batch.fill_ratio,
                 static_cast<unsigned long long>(e2e.batch.pack_hits));
    std::fclose(out);
    std::printf("wrote bench_kernels.json\n");
  }
  return failures;
}

} // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const int failures = run_custom_driver(quick);
  if (failures > 0) return 1;
  if (quick) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
