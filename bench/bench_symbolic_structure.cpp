// Figure 1: symbolic block structure of a 10x10x10 Laplacian partitioned
// with nested dissection. The paper shows the picture; we report the
// quantitative content: supernodes, column blocks, off-diagonal blocks,
// their sizes, and the effect of the separator-locality reordering (the
// blocking optimization of [21], which the paper credits with halving the
// number of off-diagonal blocks).

#include "bench_common.hpp"

using namespace bench;

namespace {

void report(const char* label, const sparse::CscMatrix& a, bool reorder) {
  ordering::NdOptions nd;
  nd.reorder_separators = reorder;
  const auto g = sparse::Graph::from_matrix(a);
  const auto ord = ordering::nested_dissection(g, nd);
  const auto ranges = symbolic::split_ranges(ord.ranges, symbolic::SplitOptions{});
  const auto sf = symbolic::SymbolicFactor::build(a, ord, ranges);

  index_t max_width = 0;
  for (const auto& c : sf.cblks()) max_width = std::max(max_width, c.width());
  std::printf("%-28s %8lld %8lld %8lld %10.2f %8lld %14.3fM\n", label,
              static_cast<long long>(ord.num_supernodes()),
              static_cast<long long>(sf.num_cblks()),
              static_cast<long long>(sf.num_bloks()), sf.average_blok_height(),
              static_cast<long long>(max_width),
              static_cast<double>(sf.factor_entries_lower()) / 1e6);
}

} // namespace

int main() {
  print_header("Figure 1 — symbolic block structure (10x10x10 Laplacian + scaling)");
  std::printf("%-28s %8s %8s %8s %10s %8s %14s\n", "case", "supern", "cblks",
              "bloks", "avg_blok_h", "max_w", "entries(L)");

  const auto lap10 = sparse::laplacian_3d(10, 10, 10);
  report("lap10 (paper's Figure 1)", lap10, true);
  report("lap10, no sep. reordering", lap10, false);

  const index_t n = env_index("BLR_BENCH_N", 20);
  const auto lapn = sparse::laplacian_3d(n, n, n);
  const std::string base = "lap" + std::to_string(n);
  report((base + ", reordered").c_str(), lapn, true);
  report((base + ", not reordered").c_str(), lapn, false);
  return 0;
}
