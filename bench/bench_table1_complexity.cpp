// Table 1: the complexity model of the low-rank kernels. The paper derives
// Θ-bounds; this bench measures each kernel over a size sweep and reports
// the observed scaling exponent (log-log fit), to be compared with the
// model's leading power:
//   dense GEMM update       Θ(m² n)        -> exponent ~3 in m (n = m)
//   LR2GE (JIT update)      Θ(m² r)        -> exponent ~2 in m (r fixed)
//   LR product              Θ(m r²)-ish    -> exponent ~1 in m (r fixed)
//   LR2LR extend-add (RRQR) Θ(m (r_C+r_P) r_C') -> exponent ~1 in m
// (absolute constants depend on our scalar kernels; the *exponents* are the
// reproduction target).

#include <cmath>
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_common.hpp"
#include "linalg/random.hpp"

using namespace bench;

namespace {

constexpr index_t kRank = 16;
volatile long long sink = 0;

double time_it(const std::function<void()>& f, int reps) {
  Timer t;
  for (int r = 0; r < reps; ++r) f();
  return t.elapsed() / reps;
}

double fit_exponent(const std::vector<double>& sizes, const std::vector<double>& times) {
  // Least squares on log-log.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double n = static_cast<double>(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const double x = std::log(sizes[i]);
    const double y = std::log(times[i]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

} // namespace

int main() {
  print_header("Table 1 — measured scaling exponents of the update kernels");
  const std::vector<index_t> sizes{128, 192, 256, 384, 512};
  std::vector<double> xs(sizes.begin(), sizes.end());
  Prng rng(5);

  std::vector<double> t_gemm, t_lr2ge, t_prod, t_lr2lr;
  for (const index_t m : sizes) {
    const int reps = m <= 256 ? 8 : 3;
    // Operands: A, B dense m x m; low-rank versions at fixed rank.
    la::DMatrix ad(m, m), bd(m, m), target(m, m);
    la::random_normal(ad.view(), rng);
    la::random_normal(bd.view(), rng);
    const la::DMatrix alr_d = la::random_rank_k<real_t>(m, m, kRank, rng);
    const la::DMatrix blr_d = la::random_rank_k<real_t>(m, m, kRank, rng);
    const lr::Tile alr =
        lr::compress_to_tile(lr::CompressionKind::Rrqr, alr_d.cview(), 1e-8);
    const lr::Tile blr =
        lr::compress_to_tile(lr::CompressionKind::Rrqr, blr_d.cview(), 1e-8);

    t_gemm.push_back(time_it(
        [&] {
          la::gemm(la::Trans::No, la::Trans::Yes, real_t(-1), ad.cview(), bd.cview(),
                   real_t(1), target.view());
        },
        reps));

    t_prod.push_back(time_it(
        [&] {
          auto p = lr::ab_t_product(alr, blr, lr::CompressionKind::Rrqr, 1e-8, true);
          sink = p.rank();
        },
        reps));

    t_lr2ge.push_back(time_it(
        [&] {
          auto p = lr::ab_t_product(alr, blr, lr::CompressionKind::Rrqr, 1e-8, false);
          lr::apply_to_dense(p, target.view(), false);
        },
        reps));

    const la::DMatrix small = la::random_rank_k<real_t>(m / 4, m / 4, 8, rng);
    const lr::Tile pb = lr::compress_to_tile(lr::CompressionKind::Rrqr, small.cview(), 1e-8);
    const lr::Tile pc =
        lr::Tile::make_lowrank(m / 4, m / 4, lr::LrMatrix(pb.lr()));
    t_lr2lr.push_back(time_it(
        [&] {
          lr::Tile c = lr::Tile::make_lowrank(m, m, lr::LrMatrix(alr.lr()));
          lr::lr2lr_add(c, pc, m / 8, m / 8, lr::CompressionKind::Rrqr, 1e-8);
        },
        reps));
  }

  std::printf("%-26s %10s %10s\n", "kernel (fixed rank 16)", "exponent", "model");
  std::printf("%-26s %10.2f %10s\n", "dense GEMM update", fit_exponent(xs, t_gemm), "3");
  std::printf("%-26s %10.2f %10s\n", "LR2GE update", fit_exponent(xs, t_lr2ge), "~2");
  std::printf("%-26s %10.2f %10s\n", "LR product", fit_exponent(xs, t_prod), "~1");
  std::printf("%-26s %10.2f %10s\n", "LR2LR extend-add", fit_exponent(xs, t_lr2lr), "~1-2");
  std::printf("\nraw seconds per call:\n%-8s %12s %12s %12s %12s\n", "m", "GEMM",
              "LR2GE", "LRxLR", "LR2LR");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::printf("%-8lld %12.3e %12.3e %12.3e %12.3e\n",
                static_cast<long long>(sizes[i]), t_gemm[i], t_lr2ge[i], t_prod[i],
                t_lr2lr[i]);
  }
  return 0;
}
