// Example: why BLR works — the rank structure of the factor blocks.
//
// The paper's premise (§2.2, Figure 3): off-diagonal blocks of the factors
// represent long-distance interactions and are numerically low-rank. This
// example factorizes a Laplacian with Just-In-Time compression, then prints
// a histogram of final block ranks relative to their full size, split by
// block area — large separator-separator interactions compress hard, small
// blocks don't (which is exactly why the solver only compresses blocks
// above the width/height thresholds).

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "blr.hpp"

using namespace blr;

int main(int argc, char** argv) {
  const index_t n = argc > 1 ? std::atoll(argv[1]) : 24;
  const real_t tol = argc > 2 ? std::atof(argv[2]) : 1e-8;
  const auto a = sparse::laplacian_3d(n, n, n);

  SolverOptions opts;
  opts.strategy = Strategy::JustInTime;
  opts.tolerance = tol;
  // Compress everything admissible so the whole rank landscape is visible.
  opts.compress_min_width = 8;
  opts.compress_min_height = 8;
  opts.split.split_threshold = 128;
  opts.split.split_size = 64;
  Solver solver(opts);
  solver.factorize(a);
  solver.print_summary(std::cout);

  // Bucket blocks by min(m, n) and report how far below full rank they end.
  struct Bucket {
    index_t count = 0;
    index_t lowrank = 0;
    double rank_fraction_sum = 0;  // rank / min(m, n), low-rank blocks only
  };
  std::vector<std::pair<index_t, Bucket>> buckets{
      {16, {}}, {32, {}}, {64, {}}, {128, {}}, {1 << 30, {}}};

  const auto& sf = solver.symbolic();
  for (index_t k = 0; k < sf.num_cblks(); ++k) {
    const auto& cd = solver.numeric().cblk_data(k);
    for (const auto& blk : cd.lpanel) {
      const index_t dim = std::min(blk.rows(), blk.cols());
      auto& bucket =
          std::find_if(buckets.begin(), buckets.end(),
                       [&](const auto& b) { return dim <= b.first; })
              ->second;
      ++bucket.count;
      if (blk.is_lowrank()) {
        ++bucket.lowrank;
        bucket.rank_fraction_sum +=
            static_cast<double>(blk.rank()) / static_cast<double>(std::max<index_t>(dim, 1));
      }
    }
  }

  std::printf("\nblock rank landscape (L panels, tau = %.0e):\n", tol);
  std::printf("%-16s %8s %10s %18s\n", "min(m,n) <=", "blocks", "low-rank",
              "avg rank/min(m,n)");
  for (const auto& [limit, b] : buckets) {
    if (b.count == 0) continue;
    std::string frac = "-";
    if (b.lowrank > 0) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.3f",
                    b.rank_fraction_sum / static_cast<double>(b.lowrank));
      frac = buf;
    }
    std::printf("%-16lld %8lld %10lld %18s\n",
                static_cast<long long>(std::min<index_t>(limit, 99999)),
                static_cast<long long>(b.count), static_cast<long long>(b.lowrank),
                frac.c_str());
  }
  std::printf("\nLarge blocks sit far below full rank — the low-rank property\n"
              "of long-distance interactions that the BLR format exploits.\n");
  return 0;
}
