// Example: command-line solver for Matrix Market files.
//
//   mtx_solve <matrix.mtx> [strategy] [tolerance] [threads]
//     strategy: dense | jit | minmem        (default jit)
//     tolerance: block compression tau      (default 1e-8)
//
// Reads a general or symmetric real matrix (the pattern must be symmetric,
// as the solver requires), solves A x = b for b = A·1 so the exact solution
// is known, and reports timing, memory and accuracy. With no file argument
// it writes, then reads back, a generated example matrix to demonstrate the
// I/O round trip.

#include <cstdio>
#include <cstring>

#include "blr.hpp"

using namespace blr;

int main(int argc, char** argv) {
  sparse::CscMatrix a;
  if (argc > 1) {
    std::printf("reading %s\n", argv[1]);
    a = sparse::read_matrix_market(argv[1]);
  } else {
    const char* path = "/tmp/blr_example.mtx";
    std::printf("no input given; writing a demo matrix to %s\n", path);
    sparse::write_matrix_market(sparse::heterogeneous_poisson_3d(12, 12, 12, 3.0, 7), path);
    a = sparse::read_matrix_market(path);
  }
  std::printf("matrix: %lld x %lld, %lld nonzeros\n",
              static_cast<long long>(a.rows()), static_cast<long long>(a.cols()),
              static_cast<long long>(a.nnz()));
  if (!a.pattern_symmetric()) {
    std::fprintf(stderr, "error: the solver requires a symmetric nonzero pattern\n");
    return 1;
  }

  SolverOptions opts;
  opts.strategy = Strategy::JustInTime;
  if (argc > 2) {
    if (!std::strcmp(argv[2], "dense")) opts.strategy = Strategy::Dense;
    else if (!std::strcmp(argv[2], "minmem")) opts.strategy = Strategy::MinimalMemory;
  }
  opts.tolerance = argc > 3 ? std::atof(argv[3]) : 1e-8;
  opts.threads = argc > 4 ? std::atoi(argv[4]) : 2;

  Solver solver(opts);
  Timer t;
  solver.analyze(a);
  std::printf("analyze  : %.3fs (%lld column blocks)\n", t.elapsed(),
              static_cast<long long>(solver.stats().num_cblks));
  t.reset();
  solver.factorize(a);
  std::printf("factorize: %.3fs, factors %.1f MB (dense would be %.1f MB)\n",
              t.elapsed(),
              static_cast<double>(solver.stats().factor_entries_final) * 8 / 1e6,
              static_cast<double>(solver.stats().factor_entries_dense) * 8 / 1e6);

  // b = A·1: the exact solution is the all-ones vector.
  std::vector<real_t> ones(static_cast<std::size_t>(a.rows()), 1.0);
  std::vector<real_t> b(ones.size());
  a.spmv(ones.data(), b.data());
  std::vector<real_t> x(b.size());
  t.reset();
  solver.solve(b.data(), x.data());
  std::printf("solve    : %.3fs, backward error %.2e\n", t.elapsed(),
              static_cast<double>(sparse::backward_error(a, x.data(), b.data())));

  const auto res = solver.refine(a, b.data(), x.data());
  std::printf("refined  : %.2e after %lld %s iterations\n", res.final_error(),
              static_cast<long long>(res.iterations), solver.is_llt() ? "CG" : "GMRES");
  return 0;
}
