// Quickstart: factorize a 3D Laplacian with the Minimal-Memory BLR strategy,
// solve a system, and polish the solution with preconditioned CG.

#include <cstdio>

#include "blr.hpp"

int main() {
  using namespace blr;

  // 1. Build (or load) a sparse matrix with symmetric pattern.
  const sparse::CscMatrix a = sparse::laplacian_3d(20, 20, 20);
  std::printf("matrix: n = %lld, nnz = %lld\n",
              static_cast<long long>(a.rows()), static_cast<long long>(a.nnz()));

  // 2. Configure the solver: Minimal-Memory strategy, RRQR kernels, tau=1e-8.
  SolverOptions opts;
  opts.strategy = Strategy::MinimalMemory;
  opts.kind = lr::CompressionKind::Rrqr;
  opts.tolerance = 1e-8;
  opts.threads = 4;
  // The problem is small, so lower the size thresholds at which blocks are
  // considered compressible (defaults match the paper's 1M-unknown runs).
  opts.compress_min_width = 32;
  opts.compress_min_height = 16;
  opts.split.split_threshold = 128;
  opts.split.split_size = 64;

  Solver solver(opts);
  solver.factorize(a);  // analyze() runs implicitly

  const auto& st = solver.stats();
  std::printf("analyze  : %.3fs  (%lld column blocks, %lld blocks)\n",
              st.time_analyze, static_cast<long long>(st.num_cblks),
              static_cast<long long>(st.num_bloks));
  std::printf("factorize: %.3fs  (compression ratio %.2fx, %lld low-rank blocks)\n",
              st.time_factorize, st.compression_ratio(),
              static_cast<long long>(st.num_lowrank_blocks));

  // 3. Solve A x = b.
  std::vector<real_t> b(static_cast<std::size_t>(a.rows()), 1.0);
  std::vector<real_t> x = solver.solve(b);
  std::printf("direct solve backward error: %.2e\n",
              sparse::backward_error(a, x.data(), b.data()));

  // 4. Optional: refine to machine precision with the preconditioned
  //    iterative method (CG here, since the Laplacian is SPD).
  const RefinementResult res = solver.refine(a, b.data(), x.data());
  std::printf("after %lld CG iterations: backward error %.2e (converged: %s)\n",
              static_cast<long long>(res.iterations), res.final_error(),
              res.converged ? "yes" : "no");
  return 0;
}
