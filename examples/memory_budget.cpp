// Example: solving under a memory budget with the Minimal-Memory strategy.
//
// The paper's headline capability (Figure 7): problems whose dense factors
// exceed the machine's memory become solvable because the factor structure
// is never allocated densely. This example sweeps a growing family of 3D
// Laplacians, reports the dense-storage requirement versus the BLR peak,
// and picks the loosest tolerance that fits a (simulated) budget.

#include <cstdio>

#include "blr.hpp"

using namespace blr;

int main(int argc, char** argv) {
  // Pretend the machine only has this much room for the factors.
  const double budget_mb = argc > 1 ? std::atof(argv[1]) : 64.0;
  std::printf("simulated factor-memory budget: %.0f MB\n\n", budget_mb);
  std::printf("%-8s %10s %12s | %13s | decision\n", "grid", "dofs",
              "dense (MB)", "BLR peak (MB)");

  for (index_t n = 16; n <= 32; n += 8) {
    const auto a = sparse::laplacian_3d(n, n, n);

    // Probe tolerances loosest-first until the peak fits the budget.
    bool solved = false;
    for (const real_t tol : {1e-4, 1e-8, 1e-12}) {
      SolverOptions opts;
      opts.strategy = Strategy::MinimalMemory;
      opts.kind = lr::CompressionKind::Rrqr;
      opts.tolerance = tol;
      // Demo-scale problems: shrink the compressibility/split thresholds in
      // proportion (paper defaults target ~1e6-unknown matrices).
      opts.compress_min_width = 32;
      opts.compress_min_height = 16;
      opts.split.split_threshold = 128;
      opts.split.split_size = 64;
      Solver solver(opts);
      solver.factorize(a);

      const double dense_mb =
          static_cast<double>(solver.stats().factor_entries_dense) * 8 / 1e6;
      const double peak_mb =
          static_cast<double>(solver.stats().factors_peak_bytes) / 1e6;
      if (peak_mb <= budget_mb) {
        std::vector<real_t> b(static_cast<std::size_t>(a.rows()), 1.0);
        std::vector<real_t> x = solver.solve(b);
        std::printf("%3lld^3   %10lld %12.1f | %13.1f | tau=%.0e fits, err %.1e\n",
                    static_cast<long long>(n), static_cast<long long>(a.rows()),
                    dense_mb, peak_mb, tol,
                    static_cast<double>(sparse::backward_error(a, x.data(), b.data())));
        solved = true;
        break;
      }
      std::printf("%3lld^3   %10lld %12.1f | %13.1f | tau=%.0e exceeds budget\n",
                  static_cast<long long>(n), static_cast<long long>(a.rows()),
                  dense_mb, peak_mb, tol);
    }
    if (!solved) std::printf("%3lld^3   -- no tolerance fits the budget --\n",
                             static_cast<long long>(n));
  }
  return 0;
}
