// Example: resource-governed factorization (DESIGN.md §13).
//
// The paper's headline capability (Figure 7) is solving problems whose dense
// factors exceed the machine's memory. This example enforces that for real:
// SolverOptions::memory_budget_bytes installs a hard budget on the live
// tracked memory, a breach fails softly with blr::ResourceError (a
// structured ResourceReport, never the OOM killer), and the resource
// degradation ladder — fp32 demotion, loosened tolerance, Minimal-Memory —
// retries under progressively thriftier configurations before giving up.

#include <cstdio>

#include "blr.hpp"

using namespace blr;

namespace {

SolverOptions demo_opts() {
  SolverOptions opts;
  opts.strategy = Strategy::JustInTime;
  opts.kind = lr::CompressionKind::Rrqr;
  // Demo-scale problems: shrink the compressibility/split thresholds in
  // proportion (paper defaults target ~1e6-unknown matrices).
  opts.compress_min_width = 32;
  opts.compress_min_height = 16;
  opts.split.split_threshold = 128;
  opts.split.split_size = 64;
  return opts;
}

void run_governed(const sparse::CscMatrix& a, std::size_t budget_bytes) {
  SolverOptions opts = demo_opts();
  opts.memory_budget_bytes = budget_bytes;
  opts.deadline_ms = 60'000;        // generous wall-clock guard
  opts.recovery.enabled = true;     // climb the resource ladder on a breach

  Solver solver(opts);
  try {
    solver.factorize(a);
  } catch (const ResourceError& e) {
    std::printf("  refused: %s\n", e.report().to_string().c_str());
    return;
  }

  const SolverStats& st = solver.stats();
  std::printf("  ok in %zu attempt(s), %d degradation rung(s)\n",
              st.attempts.size(), st.resource_rungs);
  std::printf("  final config: %s, tau=%.0e, %s\n",
              st.attempts.back().strategy.c_str(),
              st.attempts.back().tolerance,
              st.attempts.back().precision.c_str());
  std::printf("  peak %.1f MB of %.1f MB budget (dense would need %.1f MB)\n",
              static_cast<double>(st.total_peak_bytes) / 1e6,
              static_cast<double>(budget_bytes) / 1e6,
              static_cast<double>(st.factor_entries_dense) * 8 / 1e6);

  std::vector<real_t> b(static_cast<std::size_t>(a.rows()), 1.0);
  std::vector<real_t> x = solver.solve(b);
  std::printf("  backward error %.1e, deadline margin %.2f s\n",
              static_cast<double>(sparse::backward_error(a, x.data(), b.data())),
              st.deadline_margin);
}

} // namespace

int main(int argc, char** argv) {
  const index_t n = argc > 1 ? static_cast<index_t>(std::atoi(argv[1])) : 20;
  const auto a = sparse::laplacian_3d(n, n, n);
  std::printf("3D Laplacian %lld^3 (%lld unknowns)\n\n",
              static_cast<long long>(n), static_cast<long long>(a.rows()));

  // Calibrate: what does an ungoverned run of the same configuration need?
  Solver probe(demo_opts());
  probe.factorize(a);
  const std::size_t peak = probe.stats().total_peak_bytes;
  std::printf("ungoverned peak: %.1f MB\n", static_cast<double>(peak) / 1e6);

  // A comfortable budget succeeds on the first attempt; a tight one forces
  // the ladder to degrade (fp32 / looser tau / Minimal-Memory); an
  // impossible one is refused with a structured report — the process (and
  // this loop) carries on either way.
  struct Case { const char* label; std::size_t bytes; };
  const Case cases[] = {
      {"comfortable (2x peak)", peak * 2},
      {"tight (0.9x peak)", peak - peak / 10},
      {"impossible (64 KB)", 64 * 1024},
  };
  for (const Case& c : cases) {
    std::printf("\nbudget %s:\n", c.label);
    run_governed(a, c.bytes);
  }
  return 0;
}
