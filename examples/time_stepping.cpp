// Example: amortized re-factorization with a Session (DESIGN.md §15).
//
// The JOREK-style workload from the paper's motivation: an implicit time
// stepper re-assembles its system matrix every step — same sparsity
// pattern, new values — then solves against a handful of right-hand sides.
// Re-running analyze() every step would waste the dominant symbolic cost;
// a Session keeps one symbolic plan alive, re-factorizes numerically with
// warm-started compression (learned ranks, recycled buffers), and serves
// solve() calls from any thread while the next step's factorization runs.

#include <cstdio>
#include <thread>
#include <vector>

#include "blr.hpp"

using namespace blr;

namespace {

/// One implicit step: scale the stiffness part and shift the diagonal (a
/// mass-matrix/dt term). Same pattern, SPD-preserving.
sparse::CscMatrix assemble_step(const sparse::CscMatrix& a0, int step) {
  sparse::CscMatrix a = a0;
  const real_t scale = real_t(1) + real_t(0.02) * static_cast<real_t>(step);
  const real_t shift = real_t(0.05) * static_cast<real_t>(step);
  std::vector<real_t>& v = a.values();
  for (real_t& x : v) x *= scale;
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t p = a.colptr()[static_cast<std::size_t>(j)];
         p < a.colptr()[static_cast<std::size_t>(j) + 1]; ++p) {
      if (a.rowind()[static_cast<std::size_t>(p)] == j) {
        v[static_cast<std::size_t>(p)] += shift;
      }
    }
  }
  return a;
}

} // namespace

int main() {
  const sparse::CscMatrix a0 = sparse::laplacian_3d(12, 12, 12);
  const index_t n = a0.rows();

  SolverOptions opts;
  opts.strategy = Strategy::JustInTime;
  opts.kind = lr::CompressionKind::Rrqr;
  opts.compress_min_width = 32;
  opts.compress_min_height = 16;
  opts.split.split_threshold = 128;
  opts.split.split_size = 64;

  Session session(opts);
  Timer analyze_timer;
  session.analyze(a0);  // symbolic cost paid exactly once
  const double analyze_s = analyze_timer.elapsed();
  std::printf("analyze: %.2f ms, paid once for every later step\n",
              analyze_s * 1e3);

  const int num_steps = 5;
  const int rhs_per_step = 4;
  double first_s = 0, steady_s = 0;

  for (int step = 0; step < num_steps; ++step) {
    const sparse::CscMatrix a = assemble_step(a0, step);
    Timer t;
    session.refactorize(a);
    const double sec = t.elapsed();
    if (step == 0) first_s = sec; else steady_s = sec;

    // A few concurrent "physics" threads solving against this step's
    // factors. Single-RHS calls arriving together are coalesced into one
    // blocked multi-RHS solve; each result is bit-identical to a lone call.
    std::vector<std::thread> workers;
    std::vector<double> berr(rhs_per_step, 1.0);
    for (int r = 0; r < rhs_per_step; ++r) {
      workers.emplace_back([&, r] {
        Prng rng(static_cast<std::uint64_t>(100 * step + r));
        std::vector<real_t> b(static_cast<std::size_t>(n));
        for (real_t& x : b) x = rng.normal();
        std::vector<real_t> x;
        const SolveStats st = session.solve(b, x);
        berr[static_cast<std::size_t>(r)] =
            sparse::backward_error(a, x.data(), b.data());
        (void)st;  // st.factor_epoch / st.batch_size describe the request
      });
    }
    for (std::thread& w : workers) w.join();

    double worst = 0;
    for (double e : berr) worst = std::max(worst, e);
    std::printf("step %d: %s %.2f ms, worst backward error %.1e (epoch %llu)\n",
                step, step == 0 ? "factorize  " : "refactorize", sec * 1e3,
                worst, static_cast<unsigned long long>(session.epoch()));
  }

  const SolverStats& st = session.stats();
  std::printf(
      "\nsteady-state step %.2f ms vs first step incl. analyze %.2f ms "
      "(%.2fx)\n"
      "warm compressions: %llu hits, %llu grows, %llu dense skips; "
      "buffer pool: %llu hits\n",
      steady_s * 1e3, (first_s + analyze_s) * 1e3,
      (first_s + analyze_s) / steady_s,
      static_cast<unsigned long long>(st.warm.hits),
      static_cast<unsigned long long>(st.warm.grows),
      static_cast<unsigned long long>(st.warm.dense_skips),
      static_cast<unsigned long long>(st.buffer_hits));
  return 0;
}
