// Example: side-by-side comparison of the update strategies on one problem —
// a compact, runnable version of the paper's central comparison (time vs
// memory vs accuracy for Dense, Just-In-Time, Minimal-Memory and the
// per-block Adaptive policy).

#include <cstdio>

#include "blr.hpp"

using namespace blr;

int main(int argc, char** argv) {
  const index_t n = argc > 1 ? std::atoll(argv[1]) : 24;
  const real_t tol = argc > 2 ? std::atof(argv[2]) : 1e-8;
  const auto a = sparse::heterogeneous_poisson_3d(n, n, n, 3.0, 42);
  std::printf("heterogeneous Poisson %lld^3 (%lld dofs), tau = %.0e\n\n",
              static_cast<long long>(n), static_cast<long long>(a.rows()), tol);
  std::printf("%-16s %9s %12s %12s %10s %8s\n", "strategy", "facto(s)",
              "factors(MB)", "peak(MB)", "bwd err", "#LR");

  for (const Strategy strat :
       {Strategy::Dense, Strategy::JustInTime, Strategy::MinimalMemory,
        Strategy::Adaptive}) {
    SolverOptions opts;
    opts.strategy = strat;
    opts.kind = lr::CompressionKind::Rrqr;
    opts.tolerance = tol;
    opts.threads = 2;
    // Demo-scale problems: shrink the compressibility/split thresholds in
    // proportion (paper defaults target ~1e6-unknown matrices).
    opts.compress_min_width = 32;
    opts.compress_min_height = 16;
    opts.split.split_threshold = 128;
    opts.split.split_size = 64;
    Solver solver(opts);
    Timer t;
    solver.factorize(a);
    const double facto = t.elapsed();

    std::vector<real_t> b(static_cast<std::size_t>(a.rows()), 1.0);
    std::vector<real_t> x = solver.solve(b);
    std::printf("%-16s %9.2f %12.1f %12.1f %10.1e %8lld\n",
                core::strategy_name(strat), facto,
                static_cast<double>(solver.stats().factor_entries_final) * 8 / 1e6,
                static_cast<double>(solver.stats().factors_peak_bytes) / 1e6,
                static_cast<double>(sparse::backward_error(a, x.data(), b.data())),
                static_cast<long long>(solver.stats().num_lowrank_blocks));
  }
  std::printf("\nDense is exact; Just-In-Time trades accuracy for speed; Minimal-\n"
              "Memory additionally keeps the peak below the dense footprint;\n"
              "Adaptive keeps marginal blocks dense and lands in between.\n");
  return 0;
}
