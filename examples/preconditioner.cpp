// Example: low-accuracy BLR factorization as a preconditioner.
//
// The paper's second usage mode (§4.4): factorize once at a loose tolerance
// (cheap, small memory), then use the factorization to precondition GMRES /
// CG and recover machine precision in a few iterations. Here we compare the
// behaviour on an easy SPD problem (Poisson) and a nonsymmetric
// convection-dominated one, at two tolerances, mirroring Figure 8.

#include <cstdio>

#include "blr.hpp"

using namespace blr;

namespace {

void study(const char* name, const sparse::CscMatrix& a, real_t tol) {
  SolverOptions opts;
  opts.strategy = Strategy::MinimalMemory;
  opts.kind = lr::CompressionKind::Rrqr;
  opts.tolerance = tol;
  opts.threads = 2;
  // Demo-scale problems: shrink the compressibility/split thresholds in
  // proportion (paper defaults target ~1e6-unknown matrices).
  opts.compress_min_width = 32;
  opts.compress_min_height = 16;
  opts.split.split_threshold = 128;
  opts.split.split_size = 64;
  Solver solver(opts);
  solver.factorize(a);

  std::vector<real_t> b(static_cast<std::size_t>(a.rows()), 1.0);
  std::vector<real_t> x(b.size());
  solver.solve(b.data(), x.data());
  const real_t direct_err = sparse::backward_error(a, x.data(), b.data());

  RefinementOptions ropts;
  ropts.max_iterations = 20;
  ropts.target = 1e-12;
  const RefinementResult res = solver.refine(a, b.data(), x.data(), ropts);

  std::printf("%-14s tau=%.0e  %-5s  direct err %.1e -> %.1e after %lld iters"
              " (factors %.1f MB of %.1f MB dense)\n",
              name, tol, solver.is_llt() ? "CG" : "GMRES",
              static_cast<double>(direct_err), res.final_error(),
              static_cast<long long>(res.iterations),
              static_cast<double>(solver.stats().factor_entries_final) * 8 / 1e6,
              static_cast<double>(solver.stats().factor_entries_dense) * 8 / 1e6);
}

} // namespace

int main() {
  const auto poisson = sparse::laplacian_3d(18, 18, 18);
  const auto convdiff = sparse::convection_diffusion_3d(14, 14, 14, 0.8);

  std::printf("BLR factorization as a preconditioner (Minimal-Memory/RRQR)\n\n");
  for (const real_t tol : {1e-4, 1e-8}) {
    study("poisson18", poisson, tol);
    study("convdiff14", convdiff, tol);
  }
  std::printf("\nLoose tolerances trade a few preconditioned iterations for a\n"
              "smaller, cheaper factorization — the paper's Figure 8 trade-off.\n");
  return 0;
}
