#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "core/kernels_dispatch.hpp"

namespace blr {
class ThreadPool;
}

namespace blr::core {

/// Process-wide batch counters since the last reset (avg_batch filled in,
/// fill_ratio/pack_* left to the caller). BatchExecStats itself lives in
/// core/stats.hpp beside the dispatch counters it complements.
BatchExecStats batch_stats_snapshot();
void reset_batch_stats();

/// Deferred-execution collector behind KernelDispatch: the driver and the
/// update policies enqueue KernelCtx entries instead of dispatching eagerly,
/// then execute() groups same-(op, repA, precA, repB, precB) entries and
/// runs each group as ONE batched dispatch invocation — parallelized across
/// the batch by the work-stealing pool (one task per shape-bucket chunk, not
/// per tile). Completions run sequentially in enqueue order afterwards, so
/// everything that mutates shared engine state (tile state advances,
/// set_lowrank installs, extend-adds) stays on the calling thread and the
/// batched schedule is observationally identical to the eager one
/// (DESIGN.md §11).
class KernelBatch {
public:
  /// Runs after the entry's kernel: installs results / advances tile state.
  using Completion = std::function<void(KernelCtx&)>;

  /// `pool` may be null (sequential execution of the batch body).
  explicit KernelBatch(ThreadPool* pool) : pool_(pool) {}

  KernelBatch(const KernelBatch&) = delete;
  KernelBatch& operator=(const KernelBatch&) = delete;

  /// Defer one kernel call under the given dispatch key. The returned ctx is
  /// stable until execute() returns (deque-backed) — fill its operand fields
  /// in place.
  KernelCtx& enqueue(KernelOp op, Rep ra, Prec pa, Rep rb, Prec pb,
                     Completion done = {});

  /// Run everything queued: group by key (first-appearance order), dispatch
  /// each group through KernelDispatch::run_batch, then run completions in
  /// enqueue order and clear the batch for reuse. Rethrows the first kernel
  /// exception (completions of the failed batch are skipped). A no-op on an
  /// empty batch.
  void execute();

  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t size() const { return items_.size(); }

private:
  struct Item {
    KernelOp op;
    Rep ra, rb;
    Prec pa, pb;
    KernelCtx ctx;
    Completion done;
  };

  std::deque<Item> items_;  // deque: stable KernelCtx& across enqueues
  ThreadPool* pool_;
};

} // namespace blr::core
