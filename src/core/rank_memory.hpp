#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace blr::core {

/// Per-block ranks learned by one numeric pass and replayed into the next
/// (DESIGN.md §15). Indexed exactly like the symbolic structure: one entry
/// per off-diagonal block of each supernode panel, in blok order, with the
/// L and U panels kept separately (they can reach different ranks under LU).
///
/// Encoding per block: r >= 0 — the block ended low-rank with rank r;
/// kDense — the block ended dense; kUnknown — no information (fresh
/// structure, or the previous pass never produced this block).
///
/// The record is only ever a *cost* hint: warm-started compressions verify
/// the tolerance and grow on mismatch (lr::compress_warm), so a stale or
/// wrong entry can slow a re-factorization down but cannot change its
/// accuracy.
struct RankMemory {
  static constexpr index_t kDense = -1;
  static constexpr index_t kUnknown = -2;

  struct Cblk {
    std::vector<index_t> l;  ///< L-panel block ranks, blok order
    std::vector<index_t> u;  ///< U-panel block ranks (empty under LLᵗ)
  };

  std::vector<Cblk> cblks;
  bool valid = false;  ///< set once a successful pass has been harvested

  /// The learned rank for panel block `blok` of supernode `k` (kUnknown when
  /// out of range or the record is invalid).
  [[nodiscard]] index_t hint(index_t k, bool upper, index_t blok) const {
    if (!valid || k < 0 || k >= static_cast<index_t>(cblks.size()) || blok < 0)
      return kUnknown;
    const auto& v = upper ? cblks[static_cast<std::size_t>(k)].u
                          : cblks[static_cast<std::size_t>(k)].l;
    if (blok >= static_cast<index_t>(v.size())) return kUnknown;
    return v[static_cast<std::size_t>(blok)];
  }
};

/// Warm-start event counters, aggregated across the worker threads of one
/// numeric pass and snapshotted into SolverStats::warm on success.
struct WarmCounters {
  std::atomic<std::uint64_t> attempts{0};     ///< compressions seeded by a hint
  std::atomic<std::uint64_t> hits{0};         ///< warm attempt accepted as-is
  std::atomic<std::uint64_t> grows{0};        ///< verify failed, full-cap retry
  std::atomic<std::uint64_t> dense_skips{0};  ///< previously-dense blocks kept dense
};

} // namespace blr::core
