#include "core/numeric.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <functional>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "common/kernel_stats.hpp"
#include "core/kernel_batch.hpp"
#include "core/kernels_dispatch.hpp"

namespace blr::core {

namespace {

template <typename T>
bool all_finite(const la::Matrix<T>& m) {
  const T* p = m.data();
  const std::size_t n = static_cast<std::size_t>(m.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(static_cast<double>(p[i]))) return false;
  }
  return true;
}

bool all_finite(const lr::Tile& t) {
  if (t.rank() == 0) return true;
  if (t.is_lowrank()) {
    if (t.precision() == lr::Precision::Fp32)
      return all_finite(t.lr().u32) && all_finite(t.lr().v32);
    return all_finite(t.lr().u) && all_finite(t.lr().v);
  }
  return all_finite(t.dense());
}

/// Index of the blok (within cblk c) whose row interval contains `row`.
index_t find_blok_row(const symbolic::Cblk& c, index_t row) {
  index_t lo = 0;
  index_t hi = static_cast<index_t>(c.bloks.size()) - 1;
  while (lo <= hi) {
    const index_t mid = (lo + hi) / 2;
    const symbolic::Blok& b = c.bloks[static_cast<std::size_t>(mid)];
    if (row < b.frow) hi = mid - 1;
    else if (row >= b.lrow) lo = mid + 1;
    else return mid;
  }
  throw Error("assembly: row outside symbolic structure");
}

} // namespace

NumericFactor::NumericFactor(const sparse::CscMatrix& a,
                             const ordering::Ordering& ord,
                             const symbolic::SymbolicFactor& sf,
                             const SolverOptions& opts, bool llt,
                             ResourceGovernor* governor, Reuse reuse)
    : ord_(ord), sf_(sf), opts_(opts), llt_(llt), reuse_(reuse),
      data_(static_cast<std::size_t>(sf.num_cblks())),
      locks_(static_cast<std::size_t>(sf.num_cblks())),
      deps_(static_cast<std::size_t>(sf.num_cblks())), gov_(governor) {
  if (opts_.check_finite) {
    // Guard the assembly input: a single NaN/Inf would otherwise propagate
    // silently through the factorization into a garbage answer.
    const auto& vals = a.values();
    for (std::size_t i = 0; i < vals.size(); ++i) {
      if (!std::isfinite(static_cast<double>(vals[i]))) {
        std::ostringstream os;
        os << "input matrix value at nnz slot " << i << " is "
           << vals[i];
        fail(make_report(FailureKind::NonFiniteInput, -1, -1, std::nan(""),
                         os.str()));
      }
    }
  }
  if (!llt_ && opts_.pivot_threshold > 0) {
    // Absolute static-pivot cutoff relative to the matrix magnitude.
    real_t amax = 0;
    for (const real_t v : a.values()) amax = std::max(amax, std::abs(v));
    pivot_cutoff_ = opts_.pivot_threshold * amax;
  }
  policy_ = make_update_policy(opts_);
  pctx_.kind = opts_.kind;
  pctx_.tolerance = opts_.tolerance;
  pctx_.adaptive_rank_fraction = opts_.adaptive_rank_fraction;
  pctx_.precision = opts_.precision;
  pctx_.mixed_rank_threshold = opts_.mixed_rank_threshold;
  pctx_.compression_site = [this](index_t k) { maybe_fail_compression(k); };
  // Warm-start wiring (re-factorization only; reuse_ is empty on cold runs).
  // A prebuilt DAG skeleton for the other factorization flavor is dropped
  // here rather than trusted — the recovery ladder can flip LLᵗ → LU
  // mid-call, and the address spaces differ.
  pctx_.warm = opts_.warm_start ? reuse_.ranks : nullptr;
  pctx_.warm_slack = opts_.warm_rank_slack;
  pctx_.warm_dense_skip = opts_.warm_dense_skip;
  pctx_.warm_counters = &warm_counters_;
  if (reuse_.dag != nullptr && reuse_.dag->llt() != llt_) reuse_.dag = nullptr;
  if (!opts_.reuse_buffers) reuse_.buffers = nullptr;
  iperm_.resize(ord_.perm.size());
  for (std::size_t i = 0; i < ord_.perm.size(); ++i)
    iperm_[static_cast<std::size_t>(ord_.perm[i])] = static_cast<index_t>(i);
  ap_ = a.permuted(ord_.perm);
  if (!llt_) apt_ = ap_.transposed();
  input_track_ = TrackedAlloc(
      MemCategory::Workspace,
      (static_cast<std::size_t>(ap_.nnz()) + static_cast<std::size_t>(apt_.nnz())) *
          (sizeof(real_t) + sizeof(index_t)));
  if (opts_.scheduling == Scheduling::RightLooking &&
      opts_.dataflow == Dataflow::Barrier) {
    // The dataflow schedule assembles lazily (one Assemble task per
    // supernode inside the DAG), so it keeps the permuted input alive until
    // factorize() finishes instead of assembling everything here.
    assemble_all();
    ap_ = sparse::CscMatrix();
    apt_ = sparse::CscMatrix();
    input_track_ = TrackedAlloc();
  }
}

bool NumericFactor::compressible(index_t k, const symbolic::Blok& b) const {
  return sf_.cblk(k).width() >= opts_.compress_min_width &&
         b.height() >= opts_.compress_min_height;
}

FailureReport NumericFactor::make_report(FailureKind kind, index_t supernode,
                                         index_t local_pivot, double pivot_mag,
                                         std::string detail) const {
  FailureReport r;
  r.kind = kind;
  r.supernode = supernode;
  r.local_pivot = local_pivot;
  r.pivot_magnitude = pivot_mag;
  r.strategy = strategy_name(opts_.strategy);
  r.compression = kind_name(opts_.kind);
  r.factorization = llt_ ? "LLt" : "LU";
  r.tolerance = static_cast<double>(opts_.tolerance);
  r.elapsed_seconds = trace_clock_.elapsed();
  r.detail = std::move(detail);
  return r;
}

void NumericFactor::fail(FailureReport report) const {
  std::string what = report.to_string();
  throw NumericalError(std::move(what), std::move(report));
}

void NumericFactor::record_failure(FailureReport report) {
  {
    std::lock_guard lock(error_mutex_);
    if (error_.empty()) {
      error_ = report.to_string();
      report_ = std::move(report);
    }
  }
  failed_.store(true, std::memory_order_seq_cst);
  // Cooperative cancellation: drain every queued elimination so a doomed
  // parallel factorization returns in the time of one in-flight task, not
  // the time of the whole elimination tree.
  if (pool_ != nullptr) pool_->cancel();
}

void NumericFactor::stamp_resource(ResourceReport& r, index_t k) const {
  if (r.supernode < 0) r.supernode = k;
  if (r.elapsed_seconds == 0) {
    r.elapsed_seconds =
        gov_ != nullptr ? gov_->elapsed_seconds() : trace_clock_.elapsed();
  }
}

void NumericFactor::record_resource_failure(ResourceReport report) {
  {
    std::lock_guard lock(error_mutex_);
    if (error_.empty()) {
      error_ = report.to_string();
      resource_report_ = std::move(report);
      resource_failed_ = true;
    }
  }
  failed_.store(true, std::memory_order_seq_cst);
  // Same drain contract as record_failure: cancel so the doomed run returns
  // in the time of the in-flight tasks, with ThreadPool::pending() == 0.
  if (pool_ != nullptr) pool_->cancel();
}

void NumericFactor::throw_recorded() const {
  // Called only after the run drained (wait_idle returned / sequential loop
  // exited): no concurrent writers remain, so the reports are safe to read
  // without the mutex.
  if (resource_failed_) throw ResourceError(error_, resource_report_);
  throw NumericalError(error_, report_);
}

void NumericFactor::poll_deadline(index_t k) const {
  if (gov_ == nullptr) return;
  if (!gov_->deadline_exceeded()) return;
  ResourceReport r = gov_->deadline_report(k);
  throw ResourceError(r.to_string(), std::move(r));
}

void NumericFactor::maybe_inject_alloc_fail(index_t k) const {
  if (opts_.fault.kind != FaultInjection::Kind::AllocFail) return;
  // at_bytes > 0 arms the MemoryTracker fail point instead (Solver does it
  // at attempt start); this hook handles the supernode-targeted form.
  if (opts_.fault.at_bytes != 0) return;
  if (opts_.fault.supernode != k || !opts_.fault.try_fire()) return;
  const MemoryTracker& t = MemoryTracker::instance();
  ResourceReport r;
  r.kind = ResourceKind::MemoryBudget;
  r.budget_bytes = t.budget();
  r.category = MemCategory::Factors;
  for (std::size_t c = 0; c < r.live_bytes.size(); ++c) {
    r.live_bytes[c] = t.current(static_cast<MemCategory>(c));
  }
  r.peak_bytes = t.peak_total();
  r.supernode = k;
  r.injected = true;
  r.elapsed_seconds =
      gov_ != nullptr ? gov_->elapsed_seconds() : trace_clock_.elapsed();
  r.detail = "injected allocation failure at supernode assembly";
  throw ResourceError(r.to_string(), std::move(r));
}

void NumericFactor::maybe_skew_clock(index_t k) {
  if (opts_.fault.kind != FaultInjection::Kind::ClockSkew) return;
  if (opts_.fault.supernode != k || gov_ == nullptr) return;
  if (!opts_.fault.try_fire()) return;
  gov_->skew(opts_.fault.skew_seconds);
}

void NumericFactor::check_cblk_finite(index_t k, FailureKind kind) const {
  const CblkData& cd = data_[static_cast<std::size_t>(k)];
  const char* where = nullptr;
  if (!all_finite(cd.diag)) where = "diagonal block";
  if (where == nullptr) {
    for (const auto& blk : cd.lpanel) {
      if (!all_finite(blk)) { where = "L panel"; break; }
    }
  }
  if (where == nullptr) {
    for (const auto& blk : cd.upanel) {
      if (!all_finite(blk)) { where = "U panel"; break; }
    }
  }
  if (where != nullptr) {
    std::ostringstream os;
    os << "non-finite value in " << where << " of supernode " << k
       << (kind == FailureKind::NonFiniteBlock ? " after assembly"
                                               : " after panel factorization");
    fail(make_report(kind, k, -1, std::nan(""), os.str()));
  }
}

void NumericFactor::maybe_fail_compression(index_t k) {
  if (opts_.fault.kind != FaultInjection::Kind::CompressionFail) return;
  const index_t idx = compressions_.fetch_add(1, std::memory_order_relaxed);
  if (idx == opts_.fault.index && opts_.fault.try_fire()) {
    std::ostringstream os;
    os << "injected failure of compression #" << idx;
    fail(make_report(FailureKind::CompressionFailure, k, -1, std::nan(""),
                     os.str()));
  }
}

void NumericFactor::gather_panel(index_t k, const sparse::CscMatrix& src,
                                 std::vector<lr::Tile>& panel, bool fill_diag) {
  const symbolic::Cblk& c = sf_.cblk(k);
  const index_t w = c.width();
  CblkData& cd = data_[static_cast<std::size_t>(k)];
  la::DMatrix& diag = cd.diag.dense();

  std::vector<la::DMatrix> scratch;
  scratch.reserve(c.bloks.size());
  for (const auto& b : c.bloks) {
    // On a re-factorization the previous pass's retired factor buffers are
    // recycled through the pool — same shapes, so steady state is all hits.
    scratch.push_back(reuse_.buffers != nullptr
                          ? reuse_.buffers->acquire(b.height(), w)
                          : la::DMatrix(b.height(), w));
  }

  const auto& colptr = src.colptr();
  const auto& rowind = src.rowind();
  const auto& values = src.values();
  for (index_t j = c.fcol; j < c.lcol; ++j) {
    for (index_t p = colptr[static_cast<std::size_t>(j)];
         p < colptr[static_cast<std::size_t>(j) + 1]; ++p) {
      const index_t i = rowind[static_cast<std::size_t>(p)];
      const real_t v = values[static_cast<std::size_t>(p)];
      if (i < c.fcol) continue;  // upper part, owned by an earlier cblk
      if (i < c.lcol) {
        if (fill_diag) diag(i - c.fcol, j - c.fcol) = v;
        continue;
      }
      const index_t idx = find_blok_row(c, i);
      scratch[static_cast<std::size_t>(idx)](
          i - c.bloks[static_cast<std::size_t>(idx)].frow, j - c.fcol) = v;
    }
  }

  // The policy decides each tile's representation (Minimal-Memory and
  // Adaptive compress here; Dense and Just-In-Time keep the gathered dense).
  panel.reserve(c.bloks.size());
  const bool upper = !fill_diag;  // U-panel gathers come from the transpose
  for (std::size_t idx = 0; idx < c.bloks.size(); ++idx) {
    lr::Tile t =
        policy_->assemble(k, BlockSite{static_cast<index_t>(idx), upper},
                          std::move(scratch[idx]),
                          compressible(k, c.bloks[idx]), pctx_, cd.arena);
    t.advance(lr::TileState::Assembled);
    if (t.is_lowrank()) t.advance(lr::TileState::Compressed);
    panel.push_back(std::move(t));
  }
}

void NumericFactor::assemble_cblk(index_t k) {
  poll_deadline(k);
  maybe_inject_alloc_fail(k);
  const symbolic::Cblk& c = sf_.cblk(k);
  CblkData& cd = data_[static_cast<std::size_t>(k)];
  cd.diag = reuse_.buffers != nullptr
                ? lr::Tile::from_dense(
                      reuse_.buffers->acquire(c.width(), c.width()), cd.arena)
                : lr::Tile::make_dense(c.width(), c.width(), cd.arena);
  gather_panel(k, ap_, cd.lpanel, /*fill_diag=*/true);
  if (!llt_) gather_panel(k, apt_, cd.upanel, /*fill_diag=*/false);
  if (opts_.fault.kind == FaultInjection::Kind::PoisonBlock &&
      opts_.fault.supernode == k && opts_.fault.try_fire()) {
    // Injected data corruption: the non-finite assembly guard below (or the
    // factored-panel guard, when check_finite is off at assembly) must turn
    // this into a structured failure instead of a garbage answer.
    cd.diag.dense()(0, 0) = std::numeric_limits<real_t>::quiet_NaN();
  }
  if (opts_.check_finite) check_cblk_finite(k, FailureKind::NonFiniteBlock);
  cd.diag.advance(lr::TileState::Assembled);
  if (opts_.accumulate_updates) {
    // Rank-0 low-rank tiles in the Workspace arena; appended contributions
    // grow them until a flush folds them into the panel tile.
    cd.lacc.reserve(c.bloks.size());
    for (const auto& b : c.bloks) {
      cd.lacc.push_back(lr::Tile::make_lowrank(b.height(), c.width(),
                                               lr::LrMatrix(), cd.acc_arena));
    }
    if (!llt_) {
      cd.uacc.reserve(c.bloks.size());
      for (const auto& b : c.bloks) {
        cd.uacc.push_back(lr::Tile::make_lowrank(b.height(), c.width(),
                                                 lr::LrMatrix(), cd.acc_arena));
      }
    }
  }
}

void NumericFactor::flush_accumulator(index_t cblk, bool upper, index_t blok_idx) {
  CblkData& cd = data_[static_cast<std::size_t>(cblk)];
  auto& accs = upper ? cd.uacc : cd.lacc;
  lr::Tile& acc = accs[static_cast<std::size_t>(blok_idx)];
  if (acc.rank() <= 0) return;

  const index_t rows = acc.rows();
  const index_t cols = acc.cols();
  lr::Tile p = std::move(acc);  // Workspace accounting moves with it
  acc = lr::Tile::make_lowrank(rows, cols, lr::LrMatrix(), cd.acc_arena);

  lr::Tile& tb = (upper ? cd.upanel : cd.lpanel)[static_cast<std::size_t>(blok_idx)];
  // The accumulator is already padded to the block's shape.
  dispatch::extend_add(tb, p, 0, 0, opts_.kind, opts_.tolerance, false);
}

void NumericFactor::flush_all_accumulators(index_t cblk) {
  CblkData& cd = data_[static_cast<std::size_t>(cblk)];
  for (std::size_t i = 0; i < cd.lacc.size(); ++i)
    flush_accumulator(cblk, false, static_cast<index_t>(i));
  for (std::size_t i = 0; i < cd.uacc.size(); ++i)
    flush_accumulator(cblk, true, static_cast<index_t>(i));
}

void NumericFactor::assemble_all() {
  for (index_t k = 0; k < sf_.num_cblks(); ++k) {
    try {
      assemble_cblk(k);
    } catch (ResourceError& e) {
      // Sequential context (constructor): stamp the requesting supernode and
      // let the breach propagate to Solver::factorize's resource ladder.
      stamp_resource(e.report(), k);
      throw;
    }
  }
}

void NumericFactor::factorize(ThreadPool* pool) {
  const index_t ncblk = sf_.num_cblks();
  failed_.store(false);
  {
    std::lock_guard lock(error_mutex_);
    error_.clear();
    report_ = FailureReport{};
    resource_failed_ = false;
    resource_report_ = ResourceReport{};
  }
  trace_.clear();
  trace_clock_.reset();

  if (opts_.scheduling == Scheduling::LeftLooking) {
    // The left-looking schedule is inherently sequential here: each
    // supernode pulls all its updates when it is eliminated.
    factorize_left_looking();
    return;
  }

  if (opts_.dataflow == Dataflow::Dag) {
    factorize_dag(pool);
    return;
  }

  // Dependency counters: one per incoming block update.
  for (auto& d : deps_) d.store(0, std::memory_order_relaxed);
  for (index_t k = 0; k < ncblk; ++k) {
    const auto& bloks = sf_.cblk(k).bloks;
    const index_t nb = static_cast<index_t>(bloks.size());
    for (index_t j = 0; j < nb; ++j) {
      for (index_t i = llt_ ? j : 0; i < nb; ++i) {
        const index_t t = std::min(bloks[static_cast<std::size_t>(i)].fcblk,
                                   bloks[static_cast<std::size_t>(j)].fcblk);
        deps_[static_cast<std::size_t>(t)].fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  if (pool == nullptr) {
    // Sequential right-looking pass: elimination order guarantees every
    // update lands before its target is processed.
    for (index_t k = 0; k < ncblk && !failed_.load(std::memory_order_relaxed);
         ++k) {
      eliminate(k);
    }
    if (failed_.load()) throw_recorded();
    return;
  }

  pool_ = pool;
  // Snapshot the initially-ready set before submitting anything: a running
  // task may drain another cblk's counter to zero and submit it itself, and
  // submitting it here too would eliminate the same supernode twice.
  std::vector<index_t> ready;
  for (index_t k = 0; k < ncblk; ++k) {
    if (deps_[static_cast<std::size_t>(k)].load(std::memory_order_relaxed) == 0) {
      ready.push_back(k);
    }
  }
  // Submit with critical-path priorities: among the (many) initially-ready
  // leaves the scheduler picks the one heading the most expensive chain to
  // the root first, which keeps the elimination tree's critical path moving.
  const auto& prio = sf_.critical_priorities();
  for (const index_t k : ready) {
    pool->submit([this, k] { eliminate(k); }, prio[static_cast<std::size_t>(k)]);
  }
  pool->wait_idle();
  // A failure cancelled the pool to drain queued eliminations; clear the
  // flag so the pool is immediately reusable (recovery retries, benches).
  pool->reset_cancel();
  pool_ = nullptr;
  if (failed_.load()) throw_recorded();
}

void NumericFactor::factorize_left_looking() {
  // For each target, the list of (source supernode, row blok, col blok)
  // updates it receives; built once from the same pair enumeration the
  // right-looking schedule uses.
  struct Update {
    index_t k, bi, bj;
  };
  const index_t ncblk = sf_.num_cblks();
  std::vector<std::vector<Update>> incoming(static_cast<std::size_t>(ncblk));
  for (index_t k = 0; k < ncblk; ++k) {
    const auto& bloks = sf_.cblk(k).bloks;
    const index_t nb = static_cast<index_t>(bloks.size());
    for (index_t j = 0; j < nb; ++j) {
      for (index_t i = llt_ ? j : 0; i < nb; ++i) {
        const index_t t = std::min(bloks[static_cast<std::size_t>(i)].fcblk,
                                   bloks[static_cast<std::size_t>(j)].fcblk);
        incoming[static_cast<std::size_t>(t)].push_back({k, i, j});
      }
    }
  }

  for (index_t k = 0; k < ncblk; ++k) {
    const double t0 = opts_.collect_trace ? trace_clock_.elapsed() : 0.0;
    try {
      // Allocate and assemble this supernode only now — the memory gain of
      // the left-looking schedule (paper §4.3).
      assemble_cblk(k);
      for (const Update& u : incoming[static_cast<std::size_t>(k)]) {
        apply_update(u.k, u.bi, u.bj);
      }
      incoming[static_cast<std::size_t>(k)].clear();
      incoming[static_cast<std::size_t>(k)].shrink_to_fit();
      factor_panel(k);
    } catch (ResourceError& e) {
      // Sequential schedule: stamp and propagate straight to the ladder.
      stamp_resource(e.report(), k);
      throw;
    }
    if (opts_.collect_trace) {
      trace_.push_back({k, 0, t0, trace_clock_.elapsed()});
    }
  }
}

// ---- dataflow execution (options.dataflow == Dag, DESIGN.md §12) --------
//
// The factorization becomes a task DAG over per-tile operations. Task ids
// are the canonical sequence numbers — the exact order the barrier driver
// runs the same operations — and applies into one target tile are chained
// (write-after-write edges) in that order, so every tile sees the same value
// history under any topological execution order. Consequence: dataflow runs
// are bit-identical to the sequential barrier run at every thread count.

void NumericFactor::factorize_dag(ThreadPool* pool) {
  pool_ = pool;
  // A Solver-cached skeleton (same plan, same llt flavor) skips the rebuild;
  // the graph is symbolic-only and execute() is const, so sharing one across
  // numeric passes is free of aliasing.
  if (reuse_.dag != nullptr) {
    dagp_ = reuse_.dag;
  } else {
    dag_ = std::make_unique<TaskGraph>(TaskGraph::build(sf_, llt_));
    dagp_ = dag_.get();
  }
  epochs_ = std::make_unique<EpochGate>(dagp_->num_addrs());
  dag_slots_.clear();
  dag_slots_.resize(dagp_->num_updates());
  dag_stats_ = DagStats{};
  dag_stats_.tasks = dagp_->num_tasks();
  dag_stats_.edges = dagp_->num_edges();
  dag_stats_.critical_path = dagp_->critical_path();

  const auto& prio = sf_.critical_priorities();
  const TaskGraph::RunStats rs = dagp_->execute(
      pool, [this](std::uint32_t id) { return run_dag_task(id); },
      [this, &prio](std::uint32_t id) {
        return prio[static_cast<std::size_t>(dagp_->task(id).k)];
      });
  dag_stats_.executed = rs.executed;
  dag_stats_.ready_peak = rs.ready_peak;

  // A failure cancelled the pool (record_failure); make it reusable.
  if (pool != nullptr) pool->reset_cancel();
  pool_ = nullptr;
  dag_slots_.clear();
  dag_slots_.shrink_to_fit();
  dag_.reset();
  dagp_ = nullptr;
  epochs_.reset();
  // The DAG assembles lazily; the permuted input can go only now.
  ap_ = sparse::CscMatrix();
  apt_ = sparse::CscMatrix();
  input_track_ = TrackedAlloc();
  if (failed_.load()) throw_recorded();
}

bool NumericFactor::run_dag_task(std::uint32_t id) {
  if (failed_.load(std::memory_order_relaxed)) return false;
  const DagTask& t = dagp_->task(id);
  try {
    poll_deadline(t.k);
    switch (t.kind) {
      case DagTaskKind::Assemble: dag_assemble(t); break;
      case DagTaskKind::Factor: dag_factor(t); break;
      case DagTaskKind::Compress: dag_compress(t); break;
      case DagTaskKind::Trsm: dag_trsm(t); break;
      case DagTaskKind::Product: dag_product(t); break;
      case DagTaskKind::Apply: dag_apply(t); break;
    }
  } catch (ResourceError& e) {
    stamp_resource(e.report(), t.k);
    record_resource_failure(std::move(e.report()));
    return false;
  } catch (const NumericalError& e) {
    record_failure(e.report());
    return false;
  } catch (const std::exception& e) {
    record_failure(make_report(FailureKind::Unknown, t.k, -1, std::nan(""),
                               e.what()));
    return false;
  }
  return true;
}

void NumericFactor::dag_assemble(const DagTask& t) {
  assemble_cblk(t.k);
  const index_t nb = static_cast<index_t>(sf_.cblk(t.k).bloks.size());
  epochs_->advance(dagp_->diag_addr(t.k), EpochGate::kUnassembled,
                   EpochGate::kAssembled);
  for (index_t i = 0; i < nb; ++i) {
    epochs_->advance(dagp_->panel_addr(t.k, false, i), EpochGate::kUnassembled,
                     EpochGate::kAssembled);
  }
  if (!llt_) {
    for (index_t i = 0; i < nb; ++i) {
      epochs_->advance(dagp_->panel_addr(t.k, true, i), EpochGate::kUnassembled,
                       EpochGate::kAssembled);
    }
  }
}

void NumericFactor::dag_factor(const DagTask& t) {
  const index_t k = t.k;
  CblkData& cd = data_[static_cast<std::size_t>(k)];
  const double t0 = opts_.collect_trace ? trace_clock_.elapsed() : 0.0;
  epochs_->expect(dagp_->diag_addr(k), EpochGate::kAssembled);
  maybe_skew_clock(k);
  poll_deadline(k);

  if (opts_.fault.kind == FaultInjection::Kind::TinyPivot &&
      opts_.fault.supernode == k && opts_.fault.try_fire()) {
    la::DMatrix& dg = cd.diag.dense();
    for (index_t i = 0; i < dg.rows(); ++i) dg(i, 0) = 0;
    dg(0, 0) = 0;
  }

  index_t replaced = 0;
  const index_t info =
      dispatch::factor_diag(cd.diag, cd.ipiv, llt_, pivot_cutoff_, replaced);
  if (replaced > 0)
    pivots_replaced_.fetch_add(replaced, std::memory_order_relaxed);
  if (info != 0) {
    const index_t piv = info - 1;
    const double mag = std::abs(static_cast<double>(cd.diag.dense()(piv, piv)));
    std::ostringstream os;
    os << (llt_ ? "potrf" : "getrf") << " cannot eliminate the pivot";
    fail(make_report(llt_ ? FailureKind::NonPositivePivot
                          : FailureKind::ZeroPivot,
                     k, piv, mag, os.str()));
  }
  if (opts_.check_finite && !all_finite(cd.diag)) {
    std::ostringstream os;
    os << "non-finite value in diagonal block of supernode " << k
       << " after panel factorization";
    fail(make_report(FailureKind::NonFinitePanel, k, -1, std::nan(""),
                     os.str()));
  }
  cd.diag.advance(lr::TileState::Factored);
  cd.eliminated = true;
  epochs_->advance(dagp_->diag_addr(k), EpochGate::kAssembled,
                   EpochGate::kFactored);
  if (opts_.collect_trace) {
    // One event per supernode, anchored at its diagonal factorization (the
    // panel's serialization point in the DAG schedule).
    const double t1 = trace_clock_.elapsed();
    const int wid = ThreadPool::current_worker();
    const std::size_t worker = wid >= 0 ? static_cast<std::size_t>(wid) : 0;
    std::lock_guard lock(trace_mutex_);
    trace_.push_back({k, worker, t0, t1});
  }
}

void NumericFactor::dag_compress(const DagTask& t) {
  const std::uint64_t addr = dagp_->panel_addr(t.k, t.upper, t.bi);
  epochs_->expect(addr, EpochGate::kAssembled);
  if (opts_.accumulate_updates) flush_accumulator(t.k, t.upper, t.bi);
  CblkData& cd = data_[static_cast<std::size_t>(t.k)];
  lr::Tile& blk =
      (t.upper ? cd.upanel : cd.lpanel)[static_cast<std::size_t>(t.bi)];
  const symbolic::Blok& sb = sf_.cblk(t.k).bloks[static_cast<std::size_t>(t.bi)];
  if (opts_.batching == Batching::PerSupernode) {
    // Per-task batches are width-1, but the kernels still route through
    // run_batch so batching counters and the pack cache stay engaged.
    KernelBatch batch(nullptr);
    policy_->at_elimination(t.k, BlockSite{t.bi, t.upper}, blk,
                            compressible(t.k, sb), pctx_, &batch);
    batch.execute();
  } else {
    policy_->at_elimination(t.k, BlockSite{t.bi, t.upper}, blk,
                            compressible(t.k, sb), pctx_, nullptr);
  }
  epochs_->advance(addr, EpochGate::kAssembled, EpochGate::kEliminating);
}

void NumericFactor::dag_trsm(const DagTask& t) {
  const std::uint64_t addr = dagp_->panel_addr(t.k, t.upper, t.bi);
  epochs_->expect(dagp_->diag_addr(t.k), EpochGate::kFactored);
  epochs_->expect(addr, EpochGate::kEliminating);
  CblkData& cd = data_[static_cast<std::size_t>(t.k)];
  lr::Tile& blk =
      (t.upper ? cd.upanel : cd.lpanel)[static_cast<std::size_t>(t.bi)];
  if (blk.rank() == 0) {
    blk.advance(lr::TileState::Factored);
  } else if (opts_.batching == Batching::PerSupernode) {
    KernelBatch batch(nullptr);
    lr::Tile* bp = &blk;
    KernelCtx& kc = batch.enqueue(
        KernelOp::Trsm, rep_of(blk), prec_of(blk), Rep::None, Prec::Fp64,
        [bp](KernelCtx&) { bp->advance(lr::TileState::Factored); });
    kc.c = bp;
    kc.diag = &cd.diag.dense();
    kc.piv = &cd.ipiv;
    kc.llt = llt_;
    kc.upper = t.upper;
    batch.execute();
  } else {
    dispatch::panel_solve(cd.diag, cd.ipiv, blk, llt_, t.upper);
    blk.advance(lr::TileState::Factored);
  }
  if (opts_.check_finite && !all_finite(blk)) {
    std::ostringstream os;
    os << "non-finite value in " << (t.upper ? "U panel" : "L panel")
       << " of supernode " << t.k << " after panel factorization";
    fail(make_report(FailureKind::NonFinitePanel, t.k, -1, std::nan(""),
                     os.str()));
  }
  epochs_->advance(addr, EpochGate::kEliminating, EpochGate::kFactored);
}

void NumericFactor::dag_product(const DagTask& t) {
  CblkData& cd = data_[static_cast<std::size_t>(t.k)];
  const lr::Tile* a = &cd.lpanel[static_cast<std::size_t>(t.bi)];
  const lr::Tile* b = llt_ ? &cd.lpanel[static_cast<std::size_t>(t.bj)]
                           : &cd.upanel[static_cast<std::size_t>(t.bj)];
  epochs_->expect(dagp_->panel_addr(t.k, false, t.bi), EpochGate::kFactored);
  epochs_->expect(llt_ ? dagp_->panel_addr(t.k, false, t.bj)
                       : dagp_->panel_addr(t.k, true, t.bj),
                  EpochGate::kFactored);

  auto slot = std::make_unique<DagUpdateSlot>();
  slot->loc = locate_update(t.k, t.bi, t.bj);
  slot->a = a;
  slot->b = b;
  if (a->rank() == 0 || b->rank() == 0) {
    slot->zero = true;
  } else if (!a->is_lowrank() && !b->is_lowrank()) {
    // Dense×dense fuses the GEMM into the target under the lock, so the
    // whole update defers to the (chained) apply task.
    slot->dense_pair = true;
  } else {
    const bool need_ortho = update_need_ortho(slot->loc);
    if (opts_.batching == Batching::PerSupernode) {
      KernelBatch batch(nullptr);
      DagUpdateSlot* s = slot.get();
      KernelCtx& kc = batch.enqueue(
          KernelOp::Gemm, rep_of(*a), prec_of(*a), rep_of(*b), prec_of(*b),
          [s](KernelCtx& done) { s->prod = std::move(done.out); });
      kc.a = a;
      kc.b = b;
      kc.kind = opts_.kind;
      kc.tolerance = opts_.tolerance;
      kc.need_ortho = need_ortho;
      kc.out_cat = MemCategory::Workspace;
      batch.execute();
    } else {
      slot->prod =
          dispatch::product(*a, *b, opts_.kind, opts_.tolerance, need_ortho);
    }
  }
  dag_slots_[t.slot] = std::move(slot);
}

void NumericFactor::dag_apply(const DagTask& t) {
  std::unique_ptr<DagUpdateSlot> slot =
      std::move(dag_slots_[t.slot]);
  if (!slot) throw Error("dag: apply task ran without its product");
  const UpdateLoc& loc = slot->loc;
  const std::uint64_t taddr =
      loc.target_diag ? dagp_->diag_addr(loc.tcblk)
                      : dagp_->panel_addr(loc.tcblk, loc.target_upper,
                                         loc.tb_idx);
  // Updates may only land on assembled, not-yet-eliminating tiles — the
  // runtime-checked half of the Tile state contract at DAG granularity.
  epochs_->expect(taddr, EpochGate::kAssembled);
  if (slot->zero) return;
  if (slot->dense_pair) {
    dense_dense_update(loc, *slot->a, *slot->b);
  } else {
    finish_update(loc, std::move(slot->prod));
  }
}

void NumericFactor::eliminate(index_t k) {
  if (failed_.load(std::memory_order_relaxed)) return;
  const double t0 = opts_.collect_trace ? trace_clock_.elapsed() : 0.0;
  try {
    factor_panel(k);

    // Right-looking updates on the trailing supernodes. Large panels are
    // split into 1D column-blok segments submitted as subtasks, so the
    // updates of one huge supernode spread across the pool instead of
    // pinning a single worker (work-stealing scheduler only: a subtask
    // storm on the shared queue just adds contention).
    const symbolic::Cblk& c = sf_.cblk(k);
    const index_t nb = static_cast<index_t>(c.bloks.size());
    const bool split = pool_ != nullptr &&
                       pool_->kind() == SchedulerKind::WorkStealing &&
                       opts_.panel_split_rows > 0 && nb >= 2 &&
                       c.height() >= opts_.panel_split_rows;
    if (!split) {
      update_range(k, 0, nb);
    } else {
      const index_t height = c.height();
      index_t nseg = std::min<index_t>(
          nb, (height + opts_.panel_split_rows - 1) / opts_.panel_split_rows);
      nseg = std::min<index_t>(nseg, 4 * pool_->size());
      // Greedy row-balanced segmentation of the column bloks.
      const index_t per = (height + nseg - 1) / nseg;
      const std::int64_t pr =
          sf_.critical_priorities()[static_cast<std::size_t>(k)];
      index_t jb = 0;
      index_t acc = 0;
      for (index_t j = 0; j < nb; ++j) {
        acc += c.bloks[static_cast<std::size_t>(j)].height();
        if (acc >= per || j == nb - 1) {
          const index_t je = j + 1;
          if (jb == 0 && je == nb) {
            update_range(k, 0, nb);  // degenerate single segment
          } else {
            pool_->submit([this, k, jb, je] { update_range(k, jb, je); }, pr);
          }
          jb = je;
          acc = 0;
        }
      }
    }
  } catch (ResourceError& e) {
    stamp_resource(e.report(), k);
    record_resource_failure(std::move(e.report()));
  } catch (const NumericalError& e) {
    record_failure(e.report());
  } catch (const std::exception& e) {
    record_failure(make_report(FailureKind::Unknown, k, -1, std::nan(""),
                               e.what()));
  }
  if (opts_.collect_trace) {
    const double t1 = trace_clock_.elapsed();
    const int wid = ThreadPool::current_worker();
    const std::size_t worker = wid >= 0 ? static_cast<std::size_t>(wid) : 0;
    std::lock_guard lock(trace_mutex_);
    trace_.push_back({k, worker, t0, t1});
  }
}

void NumericFactor::update_range(index_t k, index_t jb, index_t je) {
  if (failed_.load(std::memory_order_relaxed)) return;
  if (opts_.batching == Batching::PerSupernode) {
    update_range_batched(k, jb, je);
    return;
  }
  try {
    const symbolic::Cblk& c = sf_.cblk(k);
    const index_t nb = static_cast<index_t>(c.bloks.size());
    const auto& prio = sf_.critical_priorities();
    for (index_t j = jb; j < je; ++j) {
      for (index_t i = llt_ ? j : 0; i < nb; ++i) {
        // Early exit at block-update granularity: once a sibling failed the
        // remaining updates are dead work on a doomed factorization.
        if (failed_.load(std::memory_order_relaxed)) return;
        poll_deadline(k);
        const index_t target = apply_update(k, i, j);
        const index_t left =
            deps_[static_cast<std::size_t>(target)].fetch_sub(1,
                                                              std::memory_order_acq_rel) - 1;
        if (left == 0 && pool_ != nullptr) {
          pool_->submit([this, target] { eliminate(target); },
                        prio[static_cast<std::size_t>(target)]);
        }
      }
    }
  } catch (ResourceError& e) {
    stamp_resource(e.report(), k);
    record_resource_failure(std::move(e.report()));
  } catch (const NumericalError& e) {
    record_failure(e.report());
  } catch (const std::exception& e) {
    record_failure(make_report(FailureKind::Unknown, k, -1, std::nan(""),
                               e.what()));
  }
}

void NumericFactor::update_range_batched(index_t k, index_t jb, index_t je) {
  try {
    const symbolic::Cblk& c = sf_.cblk(k);
    const index_t nb = static_cast<index_t>(c.bloks.size());
    CblkData& cd = data_[static_cast<std::size_t>(k)];
    const auto& prio = sf_.critical_priorities();

    // Phase 1: locate every update of the range and enqueue the contribution
    // products. The operands are factored tiles of supernode k (immutable
    // from here on), so the products are independent and free of the target
    // locks — exactly what run_batch requires. Dense×dense pairs are NOT
    // pre-batched: they fuse into the target, whose representation can
    // change under the lock between now and the finish phase.
    struct Pending {
      UpdateLoc loc;
      const lr::Tile* a = nullptr;
      const lr::Tile* b = nullptr;
      lr::Tile out;              // product result, harvested by the completion
      bool batched = false;      // product deferred to the batch
      bool dense_pair = false;   // fused path, runs in the finish phase
      bool zero = false;         // rank-0 operand: only the counter drains
    };
    // pending must never reallocate: batched entries' completions capture
    // pointers to their Pending slot. The reserve below is an exact upper
    // bound on the number of pushes.
    std::vector<Pending> pending;
    pending.reserve(static_cast<std::size_t>((je - jb) * nb));
    KernelBatch batch(pool_);
    for (index_t j = jb; j < je; ++j) {
      for (index_t i = llt_ ? j : 0; i < nb; ++i) {
        if (failed_.load(std::memory_order_relaxed)) return;
        poll_deadline(k);
        Pending pd;
        pd.loc = locate_update(k, i, j);
        pd.a = &cd.lpanel[static_cast<std::size_t>(i)];
        pd.b = llt_ ? &cd.lpanel[static_cast<std::size_t>(j)]
                    : &cd.upanel[static_cast<std::size_t>(j)];
        if (pd.a->rank() == 0 || pd.b->rank() == 0) {
          pd.zero = true;
        } else if (!pd.a->is_lowrank() && !pd.b->is_lowrank()) {
          pd.dense_pair = true;
        } else {
          pd.batched = true;
        }
        const bool batched_entry = pd.batched;
        pending.push_back(std::move(pd));
        if (batched_entry) {
          // The KernelCtx (and its `out` tile) dies when execute() clears the
          // batch, so the completion — which runs before the clear — moves
          // the product into the Pending slot for the finish phase.
          Pending* slot = &pending.back();
          KernelCtx& kc = batch.enqueue(
              KernelOp::Gemm, rep_of(*slot->a), prec_of(*slot->a),
              rep_of(*slot->b), prec_of(*slot->b),
              [slot](KernelCtx& done) { slot->out = std::move(done.out); });
          kc.a = slot->a;
          kc.b = slot->b;
          kc.kind = opts_.kind;
          kc.tolerance = opts_.tolerance;
          kc.need_ortho = update_need_ortho(slot->loc);
          kc.out_cat = MemCategory::Workspace;
        }
      }
    }
    batch.execute();

    // Phase 2: sequential finish in the eager pair order — every mutation of
    // shared engine state (extend-adds, LUAR appends, dependency counters)
    // happens on this thread in exactly the order the eager loop would
    // produce, which is what makes Off-vs-PerSupernode bit-identical for the
    // sequential schedule.
    for (Pending& pd : pending) {
      if (failed_.load(std::memory_order_relaxed)) return;
      if (!pd.zero) {
        if (pd.dense_pair) {
          dense_dense_update(pd.loc, *pd.a, *pd.b);
        } else {
          finish_update(pd.loc, std::move(pd.out));
        }
      }
      const index_t target = pd.loc.tcblk;
      const index_t left =
          deps_[static_cast<std::size_t>(target)].fetch_sub(1,
                                                            std::memory_order_acq_rel) - 1;
      if (left == 0 && pool_ != nullptr) {
        pool_->submit([this, target] { eliminate(target); },
                      prio[static_cast<std::size_t>(target)]);
      }
    }
  } catch (ResourceError& e) {
    stamp_resource(e.report(), k);
    record_resource_failure(std::move(e.report()));
  } catch (const NumericalError& e) {
    record_failure(e.report());
  } catch (const std::exception& e) {
    record_failure(make_report(FailureKind::Unknown, k, -1, std::nan(""),
                               e.what()));
  }
}

void NumericFactor::factor_panel(index_t k) {
  if (failed_.load(std::memory_order_relaxed)) return;
  maybe_skew_clock(k);
  poll_deadline(k);
  {
    const symbolic::Cblk& c = sf_.cblk(k);
    CblkData& cd = data_[static_cast<std::size_t>(k)];

    // Merge any pending LUAR accumulators: every incoming update must be in
    // the panels before elimination. All updates into k are already applied
    // (dependency counters), so no lock is needed.
    if (opts_.accumulate_updates) flush_all_accumulators(k);

    if (opts_.fault.kind == FaultInjection::Kind::TinyPivot &&
        opts_.fault.supernode == k && opts_.fault.try_fire()) {
      // Injected breakdown: zero the leading pivot column so partial
      // pivoting finds nothing (getrf) / the pivot is non-positive (potrf).
      // Static pivoting, when enabled, replaces the pivot instead — the
      // injected fault exercises the same masking a real tiny pivot would.
      la::DMatrix& dg = cd.diag.dense();
      for (index_t i = 0; i < dg.rows(); ++i) dg(i, 0) = 0;
      dg(0, 0) = 0;
    }

    {
      index_t replaced = 0;
      const index_t info =
          dispatch::factor_diag(cd.diag, cd.ipiv, llt_, pivot_cutoff_, replaced);
      if (replaced > 0)
        pivots_replaced_.fetch_add(replaced, std::memory_order_relaxed);
      if (info != 0) {
        const index_t piv = info - 1;
        const double mag =
            std::abs(static_cast<double>(cd.diag.dense()(piv, piv)));
        std::ostringstream os;
        os << (llt_ ? "potrf" : "getrf") << " cannot eliminate the pivot";
        fail(make_report(llt_ ? FailureKind::NonPositivePivot
                              : FailureKind::ZeroPivot,
                         k, piv, mag, os.str()));
      }
    }
    if (failed_.load(std::memory_order_relaxed)) return;

    // Elimination-time policy hook: Just-In-Time compresses the accumulated
    // panels now (Algorithm 2 l.3-4); Minimal-Memory and Adaptive re-attempt
    // the blocks that are (still) dense — e.g. after an extend-add
    // transiently exceeded the storage-beneficial rank — which keeps the
    // final factor size of the scenarios similar, as the paper reports.
    const bool batched = opts_.batching == Batching::PerSupernode;
    {
      // Under PerSupernode the policy enqueues its compressions into one
      // batch per supernode (executed at the panel boundary below) instead
      // of dispatching them eagerly; the completions install the results in
      // the same order the eager loop would.
      KernelBatch compress_batch(pool_);
      const auto hook_panel = [&](std::vector<lr::Tile>& panel, bool upper) {
        for (std::size_t idx = 0; idx < panel.size(); ++idx) {
          // Early exit at panel granularity once a sibling has failed.
          if (failed_.load(std::memory_order_relaxed)) return;
          policy_->at_elimination(k, BlockSite{static_cast<index_t>(idx), upper},
                                  panel[idx], compressible(k, c.bloks[idx]),
                                  pctx_, batched ? &compress_batch : nullptr);
        }
      };
      hook_panel(cd.lpanel, /*upper=*/false);
      if (!llt_) hook_panel(cd.upanel, /*upper=*/true);
      compress_batch.execute();
      if (failed_.load(std::memory_order_relaxed)) return;
    }

    {
      // Panel solves: each TRSM reads the (now immutable) factored diagonal
      // and mutates only its own tile, so the whole panel batches into one
      // invocation. L and U tiles share the Trsm dispatch key — the upper
      // flag travels per-entry in the ctx.
      KernelBatch trsm_batch(pool_);
      const auto solve_panel = [&](std::vector<lr::Tile>& panel, bool upper) {
        for (auto& blk : panel) {
          if (failed_.load(std::memory_order_relaxed)) return;
          if (blk.rank() == 0) {
            blk.advance(lr::TileState::Factored);
            continue;
          }
          if (!batched) {
            dispatch::panel_solve(cd.diag, cd.ipiv, blk, llt_, upper);
            blk.advance(lr::TileState::Factored);
            continue;
          }
          lr::Tile* t = &blk;
          KernelCtx& kc = trsm_batch.enqueue(
              KernelOp::Trsm, rep_of(blk), prec_of(blk), Rep::None, Prec::Fp64,
              [t](KernelCtx&) { t->advance(lr::TileState::Factored); });
          kc.c = t;
          kc.diag = &cd.diag.dense();
          kc.piv = &cd.ipiv;
          kc.llt = llt_;
          kc.upper = upper;
        }
      };
      solve_panel(cd.lpanel, /*upper=*/false);
      if (!llt_) solve_panel(cd.upanel, /*upper=*/true);
      trsm_batch.execute();
      if (failed_.load(std::memory_order_relaxed)) return;
    }
    // Guard the factored panel: overflow/NaN escaping the diagonal
    // factorization or the triangular solves is caught here instead of
    // surfacing as an inexplicably wrong solution.
    if (opts_.check_finite) check_cblk_finite(k, FailureKind::NonFinitePanel);
    cd.diag.advance(lr::TileState::Factored);
    cd.eliminated = true;
  }
}

UpdateLoc NumericFactor::locate_update(index_t k, index_t bi, index_t bj) const {
  const symbolic::Cblk& c = sf_.cblk(k);
  const symbolic::Blok& rb = c.bloks[static_cast<std::size_t>(bi)];  // rows
  const symbolic::Blok& cb = c.bloks[static_cast<std::size_t>(bj)];  // cols

  // Locate the target: diagonal block when both intervals live in the same
  // supernode; otherwise the L blok of the earlier cblk (lower triangle) or,
  // mirrored/transposed, the U blok (upper triangle, LU only).
  UpdateLoc loc;
  loc.rh = rb.height();
  loc.ch = cb.height();
  if (rb.fcblk == cb.fcblk) {
    loc.tcblk = rb.fcblk;
    const symbolic::Cblk& tc = sf_.cblk(loc.tcblk);
    loc.target_diag = true;
    loc.roff = rb.frow - tc.fcol;
    loc.coff = cb.frow - tc.fcol;
  } else if (rb.fcblk > cb.fcblk) {
    loc.tcblk = cb.fcblk;
    const symbolic::Cblk& tc = sf_.cblk(loc.tcblk);
    loc.tb_idx = sf_.find_blok(loc.tcblk, rb.frow, rb.lrow);
    loc.roff = rb.frow - tc.bloks[static_cast<std::size_t>(loc.tb_idx)].frow;
    loc.coff = cb.frow - tc.fcol;
  } else {
    loc.tcblk = rb.fcblk;
    const symbolic::Cblk& tc = sf_.cblk(loc.tcblk);
    loc.tb_idx = sf_.find_blok(loc.tcblk, cb.frow, cb.lrow);
    loc.roff = cb.frow - tc.bloks[static_cast<std::size_t>(loc.tb_idx)].frow;
    loc.coff = rb.frow - tc.fcol;
    loc.transpose = true;
    loc.target_upper = true;
  }
  return loc;
}

bool NumericFactor::update_need_ortho(const UpdateLoc& loc) const {
  // The orthonormality requirement keys off the target's representation as
  // decided at assembly (immutable, unlike the live tag, so safe to read
  // without the target lock).
  bool target_assembled_lowrank = false;
  if (!loc.target_diag) {
    const CblkData& td = data_[static_cast<std::size_t>(loc.tcblk)];
    const lr::Tile& tbc =
        loc.target_upper ? td.upanel[static_cast<std::size_t>(loc.tb_idx)]
                         : td.lpanel[static_cast<std::size_t>(loc.tb_idx)];
    target_assembled_lowrank = tbc.assembled_lowrank();
  }
  return policy_->need_ortho(target_assembled_lowrank);
}

void NumericFactor::dense_dense_update(const UpdateLoc& loc, const lr::Tile& a,
                                       const lr::Tile& b) {
  // Dense x dense: fuse the GEMM straight into a dense target; only a
  // low-rank target needs an explicit contribution.
  CblkData& td = data_[static_cast<std::size_t>(loc.tcblk)];
  std::lock_guard guard(locks_[static_cast<std::size_t>(loc.tcblk)]);
  if (loc.target_diag) {
    dispatch::gemm_into(td.diag.dense().sub(loc.roff, loc.coff, loc.rh, loc.ch),
                        a, b, /*transpose=*/false);
    return;
  }
  lr::Tile& tb = loc.target_upper
                     ? td.upanel[static_cast<std::size_t>(loc.tb_idx)]
                     : td.lpanel[static_cast<std::size_t>(loc.tb_idx)];
  if (tb.is_lowrank()) {
    lr::Tile p = dispatch::product(a, b, opts_.kind, opts_.tolerance,
                                   /*need_ortho=*/false);
    dispatch::extend_add(tb, p, loc.roff, loc.coff, opts_.kind, opts_.tolerance,
                         loc.transpose);
    return;
  }
  // roff/coff are already expressed in the target block's coordinates;
  // only the contribution's dimensions swap under transposition. The
  // fused kernel subtracts (A·Bᵗ)ᵗ = B·Aᵗ for the transposed mirror.
  la::DView tview = tb.dense().sub(loc.roff, loc.coff,
                                   loc.transpose ? loc.ch : loc.rh,
                                   loc.transpose ? loc.rh : loc.ch);
  dispatch::gemm_into(tview, a, b, loc.transpose);
}

void NumericFactor::finish_update(const UpdateLoc& loc, lr::Tile p) {
  if (p.is_lowrank() && p.rank() == 0) return;

  CblkData& td = data_[static_cast<std::size_t>(loc.tcblk)];
  std::lock_guard guard(locks_[static_cast<std::size_t>(loc.tcblk)]);
  if (loc.target_diag) {
    dispatch::apply_contribution(
        td.diag.dense().sub(loc.roff, loc.coff, loc.rh, loc.ch), p,
        /*transpose=*/false);
    return;
  }
  lr::Tile& tb = loc.target_upper
                     ? td.upanel[static_cast<std::size_t>(loc.tb_idx)]
                     : td.lpanel[static_cast<std::size_t>(loc.tb_idx)];
  if (tb.is_lowrank() && opts_.accumulate_updates && p.is_lowrank()) {
    // LUAR accumulation: append the padded contribution factors and defer
    // the (expensive, target-sized) recompression.
    KernelTimer t(Kernel::LrAddition);
    la::DConstView pu = loc.transpose ? p.lr().v.cview() : p.lr().u.cview();
    la::DConstView pv = loc.transpose ? p.lr().u.cview() : p.lr().v.cview();
    lr::Tile& acc = (loc.target_upper
                         ? td.uacc
                         : td.lacc)[static_cast<std::size_t>(loc.tb_idx)];
    const index_t old_rank = acc.rank();
    la::DMatrix nu(tb.rows(), old_rank + pu.cols);
    la::DMatrix nv(tb.cols(), old_rank + pu.cols);
    if (old_rank > 0) {
      la::copy<real_t>(acc.lr().u.cview(), nu.sub(0, 0, tb.rows(), old_rank));
      la::copy<real_t>(acc.lr().v.cview(), nv.sub(0, 0, tb.cols(), old_rank));
    }
    for (index_t j = 0; j < pu.cols; ++j) {
      std::copy_n(pu.col(j), pu.rows,
                  nu.data() + (old_rank + j) * tb.rows() + loc.roff);
      std::copy_n(pv.col(j), pv.rows,
                  nv.data() + (old_rank + j) * tb.cols() + loc.coff);
    }
    acc.set_lowrank(lr::LrMatrix(std::move(nu), std::move(nv)));
    if (acc.rank() >= opts_.accumulate_max_rank) {
      flush_accumulator(loc.tcblk, loc.target_upper, loc.tb_idx);
    }
  } else {
    dispatch::extend_add(tb, p, loc.roff, loc.coff, opts_.kind, opts_.tolerance,
                         loc.transpose);
  }
}

index_t NumericFactor::apply_update(index_t k, index_t bi, index_t bj) {
  const UpdateLoc loc = locate_update(k, bi, bj);
  CblkData& cd = data_[static_cast<std::size_t>(k)];
  const lr::Tile& a = cd.lpanel[static_cast<std::size_t>(bi)];
  const lr::Tile& b = llt_ ? cd.lpanel[static_cast<std::size_t>(bj)]
                           : cd.upanel[static_cast<std::size_t>(bj)];

  if (a.rank() == 0 || b.rank() == 0) return loc.tcblk;  // zero contribution

  if (!a.is_lowrank() && !b.is_lowrank()) {
    dense_dense_update(loc, a, b);
    return loc.tcblk;
  }

  // At least one low-rank operand: form the contribution outside the lock.
  const bool need_ortho = update_need_ortho(loc);
  lr::Tile p = dispatch::product(a, b, opts_.kind, opts_.tolerance, need_ortho);
  finish_update(loc, std::move(p));
  return loc.tcblk;
}

// ---------------------------------------------------------------------------
// Solve phase (DESIGN.md §16)
// ---------------------------------------------------------------------------

void NumericFactor::set_solve_context(std::shared_ptr<const SolvePlan> plan,
                                      std::shared_ptr<SolveEngine> engine) {
  splan_ = std::move(plan);
  sengine_ = std::move(engine);
}

void NumericFactor::build_widen_cache() const {
  if (num_fp32_blocks() == 0) return;  // pure-fp64 factors: nothing to widen
  const index_t ncblk = sf_.num_cblks();
  std::size_t bytes = 0;
  std::uint64_t tiles = 0;
  std::vector<WidenedPanel> w(static_cast<std::size_t>(ncblk));
  const auto widen = [&](const lr::Tile& blk, la::DMatrix& u, la::DMatrix& v) {
    if (blk.precision() != lr::Precision::Fp32) return;
    const lr::LrMatrix& f = blk.lr();
    u.reshape(f.u32.rows(), f.u32.cols());
    la::convert(f.u32.cview(), u.view());
    v.reshape(f.v32.rows(), f.v32.cols());
    la::convert(f.v32.cview(), v.view());
    bytes += u.bytes() + v.bytes();
    ++tiles;
  };
  for (index_t k = 0; k < ncblk; ++k) {
    const CblkData& cd = data_[static_cast<std::size_t>(k)];
    WidenedPanel& wp = w[static_cast<std::size_t>(k)];
    wp.lu.resize(cd.lpanel.size());
    wp.lv.resize(cd.lpanel.size());
    for (std::size_t i = 0; i < cd.lpanel.size(); ++i)
      widen(cd.lpanel[i], wp.lu[i], wp.lv[i]);
    if (!llt_) {
      wp.uu.resize(cd.upanel.size());
      wp.uv.resize(cd.upanel.size());
      for (std::size_t i = 0; i < cd.upanel.size(); ++i)
        widen(cd.upanel[i], wp.uu[i], wp.uv[i]);
    }
  }
  widen_ = std::move(w);
  widen_tiles_ = tiles;
  widen_bytes_ = bytes;
  widen_track_.resize(bytes);
}

void NumericFactor::solve_lr_views(index_t k, index_t bi, bool upper,
                                   const lr::Tile& blk, la::DConstView& u,
                                   la::DConstView& v) const {
  if (blk.precision() == lr::Precision::Fp32) {
    // Widened once per factor on the first solve — every later use is a
    // cache hit instead of a fresh fp32→fp64 promotion pass.
    const WidenedPanel& wp = widen_[static_cast<std::size_t>(k)];
    const std::size_t i = static_cast<std::size_t>(bi);
    u = (upper ? wp.uu : wp.lu)[i].cview();
    v = (upper ? wp.uv : wp.lv)[i].cview();
    widen_hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    u = blk.lr().u.cview();
    v = blk.lr().v.cview();
  }
}

void NumericFactor::solve_fwd_diag(index_t k, la::DView x) const {
  const symbolic::Cblk& c = sf_.cblk(k);
  const CblkData& cd = data_[static_cast<std::size_t>(k)];
  dispatch::solve_trsm(cd.diag, cd.ipiv, x.sub(c.fcol, 0, c.width(), x.cols),
                       llt_, /*backward=*/false);
}

void NumericFactor::solve_fwd_upd(index_t k, index_t bi, la::DView x) const {
  const symbolic::Cblk& c = sf_.cblk(k);
  const CblkData& cd = data_[static_cast<std::size_t>(k)];
  const lr::Tile& blk = cd.lpanel[static_cast<std::size_t>(bi)];
  if (blk.rank() == 0) return;
  const symbolic::Blok& b = c.bloks[static_cast<std::size_t>(bi)];
  const la::DConstView xk(x.sub(c.fcol, 0, c.width(), x.cols));
  la::DView xi = x.sub(b.frow, 0, b.height(), x.cols);
  la::DConstView u, v;
  if (blk.is_lowrank()) solve_lr_views(k, bi, /*upper=*/false, blk, u, v);
  dispatch::solve_gemm(blk, u, v, xk, xi, /*backward=*/false);
}

void NumericFactor::solve_bwd_upd(index_t k, index_t bi, la::DView x) const {
  const symbolic::Cblk& c = sf_.cblk(k);
  const CblkData& cd = data_[static_cast<std::size_t>(k)];
  const lr::Tile& blk = llt_ ? cd.lpanel[static_cast<std::size_t>(bi)]
                             : cd.upanel[static_cast<std::size_t>(bi)];
  if (blk.rank() == 0) return;
  const symbolic::Blok& b = c.bloks[static_cast<std::size_t>(bi)];
  const la::DConstView xi(x.sub(b.frow, 0, b.height(), x.cols));
  la::DView xk = x.sub(c.fcol, 0, c.width(), x.cols);
  la::DConstView u, v;
  if (blk.is_lowrank()) solve_lr_views(k, bi, /*upper=*/!llt_, blk, u, v);
  dispatch::solve_gemm(blk, u, v, xi, xk, /*backward=*/true);
}

void NumericFactor::solve_bwd_diag(index_t k, la::DView x) const {
  const symbolic::Cblk& c = sf_.cblk(k);
  const CblkData& cd = data_[static_cast<std::size_t>(k)];
  dispatch::solve_trsm(cd.diag, cd.ipiv, x.sub(c.fcol, 0, c.width(), x.cols),
                       llt_, /*backward=*/true);
}

bool NumericFactor::run_solve_task(const SolveTask& t, la::DView x) const {
  switch (t.kind) {
    case SolveTaskKind::FwdDiag: solve_fwd_diag(t.k, x); break;
    case SolveTaskKind::FwdUpd: solve_fwd_upd(t.k, t.bi, x); break;
    case SolveTaskKind::BwdUpd: solve_bwd_upd(t.k, t.bi, x); break;
    case SolveTaskKind::BwdDiag: solve_bwd_diag(t.k, x); break;
  }
  return true;
}

void NumericFactor::solve_seq(la::DView x, ThreadPool* batch_pool,
                              std::uint64_t& ops) const {
  const index_t ncblk = sf_.num_cblks();
  const index_t nrhs = x.cols;
  const bool batching = opts_.batching == Batching::PerSupernode;
  KernelBatch batch(batch_pool);

  // Forward substitution: L·Y = (locally pivoted) B. A supernode's panel
  // updates write disjoint row segments, so under PerSupernode batching they
  // group into same-shape batched dispatches (fp32 tiles resolve through the
  // widen cache first, so every batched operand pair is stable fp64 — the
  // pack cache can reuse operand images across solves).
  for (index_t k = 0; k < ncblk; ++k) {
    const symbolic::Cblk& c = sf_.cblk(k);
    const CblkData& cd = data_[static_cast<std::size_t>(k)];
    la::DView xk = x.sub(c.fcol, 0, c.width(), nrhs);
    dispatch::solve_trsm(cd.diag, cd.ipiv, xk, llt_, /*backward=*/false);
    ++ops;
    for (std::size_t idx = 0; idx < c.bloks.size(); ++idx) {
      const lr::Tile& blk = cd.lpanel[idx];
      if (blk.rank() == 0) continue;
      la::DView xi = x.sub(c.bloks[idx].frow, 0, c.bloks[idx].height(), nrhs);
      la::DConstView u, v;
      if (blk.is_lowrank())
        solve_lr_views(k, static_cast<index_t>(idx), /*upper=*/false, blk, u, v);
      if (batching) {
        KernelCtx& kc =
            batch.enqueue(KernelOp::SolveGemm, rep_of(blk), prec_of(blk),
                          Rep::None, Prec::Fp64);
        dispatch::position_solve_gemm(kc, blk, u, v, la::DConstView(xk), xi,
                                      /*backward=*/false);
      } else {
        dispatch::solve_gemm(blk, u, v, la::DConstView(xk), xi,
                             /*backward=*/false);
      }
      ++ops;
    }
    batch.execute();  // no-op when empty; targets within k are disjoint
  }

  // Backward substitution: U·X = Y (or Lᵗ·X = Y for Cholesky). Every update
  // of supernode k accumulates into the SAME xk segment, so this sweep stays
  // eager — batching would reorder a reduction and break bit-identity.
  for (index_t k = ncblk - 1; k >= 0; --k) {
    const symbolic::Cblk& c = sf_.cblk(k);
    const CblkData& cd = data_[static_cast<std::size_t>(k)];
    la::DView xk = x.sub(c.fcol, 0, c.width(), nrhs);
    for (std::size_t idx = 0; idx < c.bloks.size(); ++idx) {
      const lr::Tile& blk = llt_ ? cd.lpanel[idx] : cd.upanel[idx];
      if (blk.rank() == 0) continue;
      const la::DConstView xi =
          x.sub(c.bloks[idx].frow, 0, c.bloks[idx].height(), nrhs);
      la::DConstView u, v;
      if (blk.is_lowrank())
        solve_lr_views(k, static_cast<index_t>(idx), /*upper=*/!llt_, blk, u, v);
      dispatch::solve_gemm(blk, u, v, xi, xk, /*backward=*/true);
      ++ops;
    }
    dispatch::solve_trsm(cd.diag, cd.ipiv, xk, llt_, /*backward=*/true);
    ++ops;
  }
}

void NumericFactor::solve_split(la::DView x, ThreadPool* pool,
                                SolveRunInfo& ri) const {
  // Wide multi-RHS batch: chunk the columns and run each chunk as an
  // independent sequential sweep. Bit-identity with the unsplit sweep rests
  // on the multi-RHS gemm contract: every output column is computed exactly
  // as it would be in any other column grouping (DESIGN.md §14).
  const index_t nchunks =
      std::min<index_t>(x.cols, 2 * static_cast<index_t>(pool->size()));
  const index_t base = x.cols / nchunks;
  const index_t rem = x.cols % nchunks;
  std::atomic<std::uint64_t> ops{0};
  pool->parallel_for(nchunks, [&](index_t i) {
    const index_t c0 = i * base + std::min(i, rem);
    const index_t w = base + (i < rem ? 1 : 0);
    std::uint64_t local = 0;
    solve_seq(x.sub(0, c0, x.rows, w), nullptr, local);
    ops.fetch_add(local, std::memory_order_relaxed);
  });
  ri.tasks += ops.load(std::memory_order_relaxed);
  ri.column_split = true;
}

void NumericFactor::solve_permuted(la::DView x, SolveRunInfo* info) const {
  // Per-factor caches are built lazily on the first solve; a refactorize
  // creates a fresh NumericFactor, which invalidates them wholesale.
  std::call_once(widen_once_, [this] { build_widen_cache(); });
  const std::uint64_t hits0 = widen_hits_.load(std::memory_order_relaxed);
  SolveRunInfo ri;
  bool done = false;
  if (sengine_ != nullptr) {
    // The solve pool's wait_idle-based drain cannot be shared by two
    // concurrent solves; a loser of this try_lock (e.g. a second session
    // snapshot solving the same factors) takes the sequential sweep instead
    // of blocking.
    std::unique_lock<std::mutex> lk(sengine_->mu, std::try_to_lock);
    if (lk.owns_lock()) {
      ThreadPool* pool = &sengine_->pool;
      if (x.cols >= 2 * static_cast<index_t>(pool->size()) && x.cols > 1) {
        solve_split(x, pool, ri);
        done = true;
      } else if (splan_ != nullptr) {
        std::mutex err_mu;
        std::exception_ptr err;
        const DepDrainStats ds =
            splan_->execute(pool, [&](std::uint32_t id) {
              try {
                return run_solve_task(splan_->task(id), x);
              } catch (...) {
                std::lock_guard guard(err_mu);
                if (!err) err = std::current_exception();
                return false;  // stop releasing successors
              }
            });
        if (err) std::rethrow_exception(err);
        ri.tasks += ds.executed;
        ri.parallel = true;
        ri.plan_reused = true;
        done = true;
      }
    }
  }
  if (!done) {
    std::uint64_t ops = 0;
    solve_seq(x, nullptr, ops);
    ri.tasks += ops;
    ri.plan_reused = false;
  }
  ri.widen_hits = widen_hits_.load(std::memory_order_relaxed) - hits0;
  if (info != nullptr) *info = ri;
}

std::unique_ptr<NumericFactor::SolveScratch> NumericFactor::acquire_scratch(
    index_t rows, index_t cols) const {
  std::unique_ptr<SolveScratch> s;
  {
    std::lock_guard guard(scratch_mu_);
    if (!scratch_pool_.empty()) {
      s = std::move(scratch_pool_.back());
      scratch_pool_.pop_back();
    }
  }
  if (!s) s = std::make_unique<SolveScratch>();
  // reshape() keeps the vector capacity when it suffices, so repeated
  // same-shape solves reuse the allocation.
  s->m.reshape(rows, cols);
  s->track.resize(s->m.bytes());
  return s;
}

void NumericFactor::release_scratch(std::unique_ptr<SolveScratch> s) const {
  std::lock_guard guard(scratch_mu_);
  if (scratch_pool_.size() < 8) scratch_pool_.push_back(std::move(s));
}

void NumericFactor::solve(const real_t* b, real_t* x) const {
  solve(la::DConstView(b, sf_.n(), 1, sf_.n()), la::DView(x, sf_.n(), 1, sf_.n()));
}

void NumericFactor::solve(la::DConstView b, la::DView x,
                          SolveRunInfo* info) const {
  const index_t n = sf_.n();
  BLR_CHECK(b.rows == n && x.rows == n && b.cols == x.cols,
            "solve: right-hand-side shape mismatch");
  std::unique_ptr<SolveScratch> s = acquire_scratch(n, b.cols);
  la::DMatrix& xp = s->m;
  // Both permutation passes write column-contiguously (ascending row index
  // into column-major storage); the gathers are the scattered side.
  for (index_t r = 0; r < b.cols; ++r) {
    for (index_t i = 0; i < n; ++i)
      xp(i, r) = b(ord_.perm[static_cast<std::size_t>(i)], r);
  }
  solve_permuted(xp.view(), info);
  for (index_t r = 0; r < b.cols; ++r) {
    for (index_t j = 0; j < n; ++j)
      x(j, r) = xp(iperm_[static_cast<std::size_t>(j)], r);
  }
  release_scratch(std::move(s));
}

std::size_t NumericFactor::final_entries() const {
  std::size_t e = 0;
  for (index_t k = 0; k < sf_.num_cblks(); ++k) {
    const CblkData& cd = data_[static_cast<std::size_t>(k)];
    e += cd.diag.storage_entries();
    for (const auto& blk : cd.lpanel) e += blk.storage_entries();
    for (const auto& blk : cd.upanel) e += blk.storage_entries();
  }
  return e;
}

std::size_t NumericFactor::final_bytes() const {
  std::size_t b = 0;
  for (index_t k = 0; k < sf_.num_cblks(); ++k) {
    const CblkData& cd = data_[static_cast<std::size_t>(k)];
    b += cd.diag.storage_bytes();
    for (const auto& blk : cd.lpanel) b += blk.storage_bytes();
    for (const auto& blk : cd.upanel) b += blk.storage_bytes();
  }
  return b;
}

std::size_t NumericFactor::lowrank_bytes() const {
  std::size_t b = 0;
  for (const auto& cd : data_) {
    for (const auto& blk : cd.lpanel)
      if (blk.is_lowrank()) b += blk.storage_bytes();
    for (const auto& blk : cd.upanel)
      if (blk.is_lowrank()) b += blk.storage_bytes();
  }
  return b;
}

index_t NumericFactor::num_fp32_blocks() const {
  index_t n = 0;
  for (const auto& cd : data_) {
    for (const auto& blk : cd.lpanel)
      n += blk.precision() == lr::Precision::Fp32 ? 1 : 0;
    for (const auto& blk : cd.upanel)
      n += blk.precision() == lr::Precision::Fp32 ? 1 : 0;
  }
  return n;
}

index_t NumericFactor::num_lowrank_blocks() const {
  index_t n = 0;
  for (const auto& cd : data_) {
    for (const auto& blk : cd.lpanel) n += blk.is_lowrank() ? 1 : 0;
    for (const auto& blk : cd.upanel) n += blk.is_lowrank() ? 1 : 0;
  }
  return n;
}

index_t NumericFactor::num_dense_blocks() const {
  index_t n = 0;
  for (const auto& cd : data_) {
    for (const auto& blk : cd.lpanel) n += blk.is_lowrank() ? 0 : 1;
    for (const auto& blk : cd.upanel) n += blk.is_lowrank() ? 0 : 1;
  }
  return n;
}

double NumericFactor::average_rank() const {
  index_t count = 0;
  index_t total = 0;
  for (const auto& cd : data_) {
    for (const auto& blk : cd.lpanel) {
      if (blk.is_lowrank()) {
        ++count;
        total += blk.rank();
      }
    }
    for (const auto& blk : cd.upanel) {
      if (blk.is_lowrank()) {
        ++count;
        total += blk.rank();
      }
    }
  }
  return count > 0 ? static_cast<double>(total) / static_cast<double>(count) : 0.0;
}

double NumericFactor::dense_block_fraction() const {
  index_t comp = 0;
  index_t dense = 0;
  for (index_t k = 0; k < sf_.num_cblks(); ++k) {
    const symbolic::Cblk& c = sf_.cblk(k);
    const CblkData& cd = data_[static_cast<std::size_t>(k)];
    for (std::size_t idx = 0; idx < c.bloks.size(); ++idx) {
      if (!compressible(k, c.bloks[idx])) continue;
      if (idx < cd.lpanel.size()) {
        ++comp;
        if (!cd.lpanel[idx].is_lowrank()) ++dense;
      }
      if (idx < cd.upanel.size()) {
        ++comp;
        if (!cd.upanel[idx].is_lowrank()) ++dense;
      }
    }
  }
  return comp > 0 ? static_cast<double>(dense) / static_cast<double>(comp) : 0.0;
}

void NumericFactor::harvest_ranks(RankMemory& out) const {
  const auto record = [](const std::vector<lr::Tile>& panel,
                         std::vector<index_t>& ranks) {
    ranks.resize(panel.size());
    for (std::size_t i = 0; i < panel.size(); ++i) {
      ranks[i] = panel[i].is_lowrank() ? panel[i].rank() : RankMemory::kDense;
    }
  };
  out.cblks.resize(data_.size());
  for (std::size_t k = 0; k < data_.size(); ++k) {
    record(data_[k].lpanel, out.cblks[k].l);
    record(data_[k].upanel, out.cblks[k].u);
  }
  out.valid = true;
}

void NumericFactor::donate_buffers(lr::BufferPool& pool) {
  const auto donate_tile = [&pool](lr::Tile& t) {
    if (t.rows() == 0 || t.cols() == 0) return;
    if (t.is_lowrank()) {
      auto [u, v] = t.release_lowrank();
      pool.recycle(std::move(u));
      pool.recycle(std::move(v));
    } else {
      pool.recycle(t.release_dense());
    }
  };
  for (CblkData& cd : data_) {
    donate_tile(cd.diag);
    for (lr::Tile& t : cd.lpanel) donate_tile(t);
    for (lr::Tile& t : cd.upanel) donate_tile(t);
  }
}

} // namespace blr::core
