#include "core/kernel_batch.hpp"

#include <atomic>
#include <vector>

namespace blr::core {

namespace {

std::atomic<std::uint64_t> g_batches{0};
std::atomic<std::uint64_t> g_entries{0};
std::atomic<std::uint64_t> g_groups{0};
std::atomic<std::uint64_t> g_max_batch{0};

void max_batch_update(std::uint64_t n) {
  std::uint64_t cur = g_max_batch.load(std::memory_order_relaxed);
  while (cur < n &&
         !g_max_batch.compare_exchange_weak(cur, n, std::memory_order_relaxed)) {
  }
}

} // namespace

BatchExecStats batch_stats_snapshot() {
  BatchExecStats s;
  s.batches = g_batches.load(std::memory_order_relaxed);
  s.entries = g_entries.load(std::memory_order_relaxed);
  s.groups = g_groups.load(std::memory_order_relaxed);
  s.max_batch = g_max_batch.load(std::memory_order_relaxed);
  s.avg_batch = s.batches > 0
                    ? static_cast<double>(s.entries) /
                          static_cast<double>(s.batches)
                    : 0.0;
  return s;
}

void reset_batch_stats() {
  g_batches.store(0, std::memory_order_relaxed);
  g_entries.store(0, std::memory_order_relaxed);
  g_groups.store(0, std::memory_order_relaxed);
  g_max_batch.store(0, std::memory_order_relaxed);
}

KernelCtx& KernelBatch::enqueue(KernelOp op, Rep ra, Prec pa, Rep rb, Prec pb,
                                Completion done) {
  Item& it = items_.emplace_back();
  it.op = op;
  it.ra = ra;
  it.pa = pa;
  it.rb = rb;
  it.pb = pb;
  it.done = std::move(done);
  return it.ctx;
}

void KernelBatch::execute() {
  if (items_.empty()) return;

  g_batches.fetch_add(1, std::memory_order_relaxed);
  g_entries.fetch_add(items_.size(), std::memory_order_relaxed);
  max_batch_update(items_.size());

  // Same-key groups in first-appearance order. A per-supernode batch holds a
  // handful of distinct keys at most, so a linear scan beats any map.
  struct Group {
    KernelOp op;
    Rep ra, rb;
    Prec pa, pb;
    std::vector<KernelCtx*> items;
  };
  std::vector<Group> groups;
  for (Item& it : items_) {
    Group* g = nullptr;
    for (Group& cand : groups) {
      if (cand.op == it.op && cand.ra == it.ra && cand.pa == it.pa &&
          cand.rb == it.rb && cand.pb == it.pb) {
        g = &cand;
        break;
      }
    }
    if (g == nullptr) {
      groups.push_back({it.op, it.ra, it.rb, it.pa, it.pb, {}});
      g = &groups.back();
    }
    g->items.push_back(&it.ctx);
  }
  g_groups.fetch_add(groups.size(), std::memory_order_relaxed);

  // One batched dispatch invocation per group; a kernel exception aborts the
  // remaining groups and skips every completion (the factorization is
  // failing — record_failure handles the rest), leaving the batch reusable.
  try {
    for (Group& g : groups) {
      KernelDispatch::instance().run_batch(g.op, g.ra, g.pa, g.rb, g.pb,
                                           g.items.data(), g.items.size(),
                                           pool_);
    }
  } catch (...) {
    items_.clear();
    throw;
  }

  // Completion phase: sequential, enqueue order — all shared-state mutation
  // happens here on the calling thread.
  try {
    for (Item& it : items_) {
      if (it.done) it.done(it.ctx);
    }
  } catch (...) {
    items_.clear();
    throw;
  }
  items_.clear();
}

} // namespace blr::core
