#pragma once

#include <functional>
#include <memory>

#include "core/options.hpp"
#include "core/rank_memory.hpp"
#include "lowrank/tile.hpp"

namespace blr::core {

class KernelBatch;

/// Identifies the panel block a policy hook is operating on, so warm hints
/// from a previous numeric pass can be looked up. `blok < 0` means the site
/// is unknown (no warm hint applies).
struct BlockSite {
  index_t blok = -1;   ///< off-diagonal blok index within the supernode panel
  bool upper = false;  ///< U-panel tile (LU) rather than L-panel
};

/// Environment a policy decision runs in: the compression configuration plus
/// the driver's per-site hooks (fault injection counts every compression
/// attempt, so policies must announce each one before compressing).
struct PolicyContext {
  lr::CompressionKind kind = lr::CompressionKind::Rrqr;
  real_t tolerance = 0;
  real_t adaptive_rank_fraction = 0.5;
  /// Mixed-precision storage mode: when MixedTiles, every policy demotes
  /// freshly compressed low-rank factors under the rank cap to fp32
  /// (DESIGN.md §10). Dense tiles are never demoted.
  TilePrecision precision = TilePrecision::Fp64;
  index_t mixed_rank_threshold = -1;  ///< demotion rank cap (< 0: no cap)
  /// Called once per compression site with the supernode index; may throw
  /// (deterministic CompressionFail injection).
  std::function<void(index_t)> compression_site;
  /// Rank record replayed from the previous numeric pass over the same plan
  /// (nullptr: cold factorization, no warm starts). Hints are cost-only:
  /// every seeded compression verifies the tolerance and grows on mismatch.
  const RankMemory* warm = nullptr;
  index_t warm_slack = 8;      ///< headroom added to each replayed rank guess
  bool warm_dense_skip = true; ///< keep previously-dense blocks dense outright
  WarmCounters* warm_counters = nullptr;  ///< event counters (may be null)
};

/// Strategy object the right-looking driver is parameterized by: when to
/// compress a tile (at assembly, at elimination, or never) and what the
/// contribution products must guarantee. The driver itself contains no
/// strategy branches — Dense / Just-In-Time / Minimal-Memory / Adaptive are
/// interchangeable instances of this interface over one code path.
class UpdatePolicy {
public:
  virtual ~UpdatePolicy() = default;

  [[nodiscard]] virtual Strategy strategy() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;

  /// Turn one gathered panel block into a Tile (representation decision at
  /// assembly). Default: keep dense (Dense / Just-In-Time). `site` names
  /// the panel block for rank warm-starting; pass a default BlockSite for
  /// the diagonal or other sites without a rank record.
  [[nodiscard]] virtual lr::Tile assemble(index_t k, BlockSite site,
                                          la::DMatrix scratch,
                                          bool compressible,
                                          const PolicyContext& ctx,
                                          lr::TileArena& arena) const;

  /// Whether A·Bᵗ products must carry an orthonormal U.
  /// `target_assembled_lowrank` is the target tile's representation as
  /// decided at assembly (immutable, so safe to read without the target
  /// lock). Default: no (LR2GE targets tolerate any basis).
  [[nodiscard]] virtual bool need_ortho(bool target_assembled_lowrank) const {
    (void)target_assembled_lowrank;
    return false;
  }

  /// Elimination-time hook on each panel tile, after the diagonal
  /// factorization and before the panel solves. Default: attempt to
  /// compress tiles still dense at the storage-beneficial rank limit
  /// (Just-In-Time compression; also Minimal-Memory's re-attempt on blocks
  /// that fell back to dense during an extend-add). When `batch` is
  /// non-null the compression is enqueued into it instead of dispatched
  /// eagerly — the kernel runs at the driver's batch boundary and the
  /// result is installed by the batch completion (same math, same order).
  virtual void at_elimination(index_t k, BlockSite site, lr::Tile& t,
                              bool compressible, const PolicyContext& ctx,
                              KernelBatch* batch = nullptr) const;
};

/// The policy implementing opts.strategy.
std::unique_ptr<UpdatePolicy> make_update_policy(const SolverOptions& opts);

} // namespace blr::core
