#include "core/solver.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/kernel_batch.hpp"
#include "core/kernels_dispatch.hpp"
#include "linalg/backend.hpp"
#include "linalg/blas.hpp"
#include "sparse/graph.hpp"

namespace blr::core {

namespace {

/// Apply one recovery rung to the effective options (rungs are cumulative:
/// each retry keeps the changes of every earlier rung).
void apply_recovery_step(SolverOptions& eff, const RecoveryStep& step) {
  switch (step.action) {
    case RecoveryStep::Action::TightenTolerance:
      eff.tolerance *= step.tolerance_factor;
      break;
    case RecoveryStep::Action::StaticPivoting:
      eff.pivot_threshold = std::max(eff.pivot_threshold, step.pivot_threshold);
      // Static pivoting replaces pivots in the LU path only; an LLᵗ
      // breakdown re-runs as LU so the replacement can actually happen.
      eff.factorization = Factorization::Lu;
      break;
    case RecoveryStep::Action::SwitchToLu:
      eff.factorization = Factorization::Lu;
      break;
    case RecoveryStep::Action::DenseFallback:
      eff.strategy = Strategy::Dense;
      break;
    case RecoveryStep::Action::DemoteFp32:
      eff.precision = TilePrecision::MixedTiles;
      break;
    case RecoveryStep::Action::LoosenTolerance:
      eff.tolerance *= step.tolerance_factor;
      break;
    case RecoveryStep::Action::SwitchToMinMem:
      eff.strategy = Strategy::MinimalMemory;
      break;
  }
}

} // namespace

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::Dense: return "Dense";
    case Strategy::JustInTime: return "Just-In-Time";
    case Strategy::MinimalMemory: return "Minimal Memory";
    case Strategy::Adaptive: return "Adaptive";
  }
  return "?";
}

const char* kind_name(lr::CompressionKind k) {
  switch (k) {
    case lr::CompressionKind::Svd: return "SVD";
    case lr::CompressionKind::Rrqr: return "RRQR";
    case lr::CompressionKind::Randomized: return "Randomized";
  }
  return "?";
}

const char* precision_name(TilePrecision p) {
  switch (p) {
    case TilePrecision::Fp64: return "fp64";
    case TilePrecision::MixedTiles: return "mixed-tiles";
  }
  return "?";
}

const char* batching_name(Batching b) {
  switch (b) {
    case Batching::Off: return "off";
    case Batching::PerSupernode: return "per-supernode";
  }
  return "?";
}

const char* dataflow_name(Dataflow d) {
  switch (d) {
    case Dataflow::Barrier: return "barrier";
    case Dataflow::Dag: return "dag";
  }
  return "?";
}

const char* recovery_action_name(RecoveryStep::Action a) {
  switch (a) {
    case RecoveryStep::Action::TightenTolerance: return "tighten-tolerance";
    case RecoveryStep::Action::StaticPivoting: return "static-pivoting";
    case RecoveryStep::Action::SwitchToLu: return "switch-to-lu";
    case RecoveryStep::Action::DenseFallback: return "dense-fallback";
    case RecoveryStep::Action::DemoteFp32: return "demote-fp32";
    case RecoveryStep::Action::LoosenTolerance: return "loosen-tolerance";
    case RecoveryStep::Action::SwitchToMinMem: return "switch-to-minmem";
  }
  return "?";
}

std::vector<RecoveryStep> RecoveryPolicy::default_ladder() {
  std::vector<RecoveryStep> ladder(3);
  ladder[0].action = RecoveryStep::Action::TightenTolerance;
  ladder[0].tolerance_factor = 1e-2;
  ladder[1].action = RecoveryStep::Action::StaticPivoting;
  ladder[1].pivot_threshold = 1e-8;
  ladder[2].action = RecoveryStep::Action::DenseFallback;
  return ladder;
}

std::vector<RecoveryStep> RecoveryPolicy::default_resource_ladder() {
  std::vector<RecoveryStep> ladder(3);
  ladder[0].action = RecoveryStep::Action::DemoteFp32;
  ladder[1].action = RecoveryStep::Action::LoosenTolerance;
  ladder[1].tolerance_factor = 1e2;
  ladder[2].action = RecoveryStep::Action::SwitchToMinMem;
  return ladder;
}

Solver::Solver(SolverOptions opts) : opts_(opts) {
  if (opts_.threads > 1) {
    pool_ = std::make_unique<ThreadPool>(opts_.threads, opts_.scheduler);
  }
  // The solve phase drains its own pool: the factorization pool's
  // wait_idle-based quiescence cannot be shared with a concurrent
  // refactorize, and sessions overlap exactly those two phases.
  const int st = opts_.solve_threads > 0 ? opts_.solve_threads : opts_.threads;
  if (opts_.solve_parallel && st > 1) {
    solve_engine_ = std::make_shared<SolveEngine>(st);
  }
}

Solver::~Solver() = default;

void Solver::analyze(const sparse::CscMatrix& a) {
  plan_ = SymbolicPlan::build(a, opts_);
  num_.reset();
  // A new pattern invalidates every piece of warm state.
  ranks_ = RankMemory{};
  buffers_.clear();
  dag_cache_.reset();
  refactorizations_ = 0;
  last_error_.clear();

  stats_ = SolverStats{};
  stats_.time_analyze = plan_->build_seconds;
  stats_.n = a.rows();
  stats_.num_cblks = plan_->sf.num_cblks();
  stats_.num_bloks = plan_->sf.num_bloks();
}

void Solver::factorize(const sparse::CscMatrix& a) {
  // A cold pass by contract: discard warm state so the result and the cost
  // profile are independent of any earlier pass.
  ranks_ = RankMemory{};
  buffers_.clear();
  dag_cache_.reset();
  refactorizations_ = 0;
  factorize_impl(a, /*warm=*/false);
}

void Solver::refactorize(const sparse::CscMatrix& a) {
  if (!analyzed()) {
    // Nothing to reuse yet — behave exactly like a first factorize().
    factorize(a);
    return;
  }
  BLR_CHECK(plan_->matches(a),
            "refactorize() requires the pattern analyze() saw (dimension, "
            "nnz and structure must all match); call analyze() or "
            "factorize() for a new pattern");
  // Retire the previous factors' storage into the pool — but only when this
  // solver holds the last reference (a Session may still be serving them;
  // donation destroys the factors in place).
  if (num_ && num_.use_count() == 1 && opts_.reuse_buffers) {
    num_->donate_buffers(buffers_);
  }
  factorize_impl(a, /*warm=*/true);
  stats_.refactorizations = ++refactorizations_;
}

void Solver::factorize_impl(const sparse::CscMatrix& a, bool warm) {
  if (!analyzed()) analyze(a);
  BLR_CHECK(a.rows() == plan_->sf.n(), "matrix size changed since analyze()");

  // Any previous factorization is invalid from here on: a failed attempt
  // must leave factorized() == false so solve()/refine()/preconditioner()
  // reject stale factors instead of silently using them.
  num_.reset();
  stats_.attempts.clear();
  stats_.time_factorize = 0;
  stats_.memory_budget_bytes = opts_.memory_budget_bytes;
  stats_.deadline_seconds = opts_.deadline_ms / 1e3;
  stats_.deadline_margin = 0;
  stats_.resource_rungs = 0;

  // Select the kernel backend for this run (process-global: every la:: gemm,
  // trsm and syrk below dispatches through it, and the dispatch registry
  // counts under its table slice). Resolution order: BLR_BACKEND env, then
  // opts_.backend, with Auto going through CPUID detection. Throws
  // blr::Error on an unrecognized env value — before any numeric work.
  la::set_backend(la::resolve_backend(opts_.backend));
  stats_.backend = la::backend_name(la::current_backend());
  stats_.backend_isa = la::current_backend() == la::Backend::Native
                           ? la::native_isa_name(la::native_isa())
                           : "";

  // The governor spans the whole call — every recovery attempt shares one
  // budget and one deadline clock. Disarmed on every exit path so a failed
  // governed run cannot leave a stale budget on the process-wide tracker.
  governor_.arm(opts_.memory_budget_bytes, opts_.deadline_ms / 1e3);
  struct Disarm {
    ResourceGovernor& g;
    ~Disarm() { g.disarm(); }
  } disarm{governor_};

  const auto capture_dag = [this] {
    const NumericFactor::DagStats ds =
        num_ ? num_->dag_stats() : NumericFactor::DagStats{};
    stats_.dag_tasks = ds.tasks;
    stats_.dag_edges = ds.edges;
    stats_.dag_executed = ds.executed;
    stats_.dag_ready_peak = ds.ready_peak;
    stats_.dag_critical_path = ds.critical_path;
  };

  const auto capture_scheduler = [this] {
    if (pool_) {
      const ThreadPool::WorkerStats ws = pool_->total_stats();
      stats_.scheduler_workers = pool_->size();
      stats_.scheduler_tasks = ws.executed;
      stats_.scheduler_steals = ws.steals;
      stats_.scheduler_failed_steals = ws.failed_steals;
      stats_.scheduler_idle_sleeps = ws.idle_sleeps;
      stats_.scheduler_discarded = ws.discarded;
    } else {
      stats_.scheduler_workers = 0;
      stats_.scheduler_tasks = 0;
      stats_.scheduler_steals = 0;
      stats_.scheduler_failed_steals = 0;
      stats_.scheduler_idle_sleeps = 0;
      stats_.scheduler_discarded = 0;
    }
  };

  // Per-attempt counter capture (satellite of DESIGN.md §13): every counter
  // source is reset at the top of each attempt, so these are THIS attempt's
  // numbers. Must run while num_ is still alive (dag_stats).
  const auto capture_attempt = [this](FactorizeAttempt& rec) {
    rec.peak_bytes = MemoryTracker::instance().peak_total();
    if (pool_) {
      const ThreadPool::WorkerStats ws = pool_->total_stats();
      rec.scheduler_tasks = ws.executed;
      rec.scheduler_discarded = ws.discarded;
    }
    const NumericFactor::DagStats ds =
        num_ ? num_->dag_stats() : NumericFactor::DagStats{};
    rec.dag_tasks = ds.tasks;
    rec.dag_executed = ds.executed;
    const BatchExecStats bs = batch_stats_snapshot();
    rec.batches = bs.batches;
    rec.batch_entries = bs.entries;
  };

  SolverOptions eff = opts_;
  std::vector<RecoveryStep> ladder;
  std::vector<RecoveryStep> res_ladder;
  if (opts_.recovery.enabled) {
    ladder = opts_.recovery.ladder.empty() ? RecoveryPolicy::default_ladder()
                                           : opts_.recovery.ladder;
    res_ladder = opts_.recovery.resource_ladder.empty()
                     ? RecoveryPolicy::default_resource_ladder()
                     : opts_.recovery.resource_ladder;
  }
  std::size_t rung = 0;
  std::size_t res_rung = 0;
  std::string action = "initial";

  for (int attempt = 0;; ++attempt) {
    switch (eff.factorization) {
      case Factorization::Llt: llt_ = true; break;
      case Factorization::Lu: llt_ = false; break;
      case Factorization::Auto:
        llt_ = (a.symmetry() == sparse::Symmetry::Spd);
        break;
    }

    FactorizeAttempt rec;
    rec.attempt = attempt;
    rec.action = action;
    rec.strategy = strategy_name(eff.strategy);
    rec.precision = precision_name(eff.precision);
    rec.tolerance = static_cast<double>(eff.tolerance);
    rec.pivot_threshold = static_cast<double>(eff.pivot_threshold);
    rec.llt = llt_;

    // Fresh peak measurement, kernel-dispatch counters, and scheduler
    // counters for this attempt.
    MemoryTracker::instance().reset();
    governor_.apply_budget();  // reset() cleared the tracker-side budget
    buffers_.retrack();        // ...and the pool's Workspace charge
    KernelDispatch::instance().reset_counters();
    reset_batch_stats();
    la::reset_pack_cache_stats();
    if (pool_) pool_->reset_stats();

    // AllocFail with a byte threshold arms the tracker's one-shot fail
    // point. The trigger budget is claimed here, at arming time, because
    // the tracker (common layer) cannot see FaultInjection: a transient
    // fault (max_triggers == 1) arms the first attempt only.
    if (eff.fault.kind == FaultInjection::Kind::AllocFail &&
        eff.fault.at_bytes > 0 && eff.fault.try_fire()) {
      MemoryTracker::instance().set_fail_at(eff.fault.at_bytes,
                                            eff.fault.alloc_category);
    }

    // Warm passes replay everything the previous pass learned that is safe
    // to replay under THIS attempt's effective options: learned ranks
    // (verify-and-grow, so always safe), pooled buffers, and — for the DAG
    // engine — the immutable task skeleton, rebuilt only when the effective
    // llt flavor changed (the recovery ladder can flip LLᵗ -> LU mid-call).
    NumericFactor::Reuse reuse;
    if (warm) {
      if (opts_.warm_start && ranks_.valid) reuse.ranks = &ranks_;
      if (opts_.reuse_buffers) reuse.buffers = &buffers_;
      if (eff.dataflow == Dataflow::Dag) {
        if (!dag_cache_ || dag_cache_->llt() != llt_) {
          dag_cache_ = std::make_unique<TaskGraph>(
              TaskGraph::build(plan_->sf, llt_));
        }
        reuse.dag = dag_cache_.get();
      }
    }

    Timer timer;
    try {
      num_ = std::make_shared<NumericFactor>(a, plan_->ord, plan_->sf, eff,
                                             llt_, &governor_, reuse);
      num_->factorize(pool_.get());
      rec.seconds = timer.elapsed();
      rec.succeeded = true;
      stats_.time_factorize += rec.seconds;
      capture_attempt(rec);
      stats_.attempts.push_back(std::move(rec));
      if (opts_.deadline_ms > 0) {
        stats_.deadline_margin =
            opts_.deadline_ms / 1e3 - governor_.elapsed_seconds();
      }
      break;
    } catch (NumericalError& e) {
      rec.seconds = timer.elapsed();
      stats_.time_factorize += rec.seconds;
      capture_dag();  // counters of the failed (cancelled) DAG run
      capture_attempt(rec);
      num_.reset();
      e.report().attempt = attempt;
      rec.error = e.report().to_string();
      stats_.attempts.push_back(std::move(rec));
      capture_scheduler();  // counters of the failed (cancelled) attempt
      if (rung >= ladder.size()) {
        // Ladder exhausted (or recovery disabled): surface the structured
        // report, re-stamped with the attempt index. Remember the summary so
        // a later solve() on the unfactorized solver can explain itself.
        last_error_ = e.report().to_string();
        throw NumericalError(e.report().to_string(), e.report());
      }
      action = recovery_action_name(ladder[rung].action);
      apply_recovery_step(eff, ladder[rung]);
      ++rung;
    } catch (ResourceError& e) {
      rec.seconds = timer.elapsed();
      stats_.time_factorize += rec.seconds;
      capture_dag();
      capture_attempt(rec);
      num_.reset();
      e.report().attempt = attempt;
      rec.resource = true;
      rec.error = e.report().to_string();
      stats_.attempts.push_back(std::move(rec));
      capture_scheduler();
      // Deadline breaches are terminal: no degradation rung recovers spent
      // wall-clock, and the expired watchdog would trip a retry instantly.
      if (e.report().kind == ResourceKind::Deadline ||
          res_rung >= res_ladder.size()) {
        last_error_ = e.report().to_string();
        throw ResourceError(e.report().to_string(), e.report());
      }
      action = recovery_action_name(res_ladder[res_rung].action);
      apply_recovery_step(eff, res_ladder[res_rung]);
      ++res_rung;
      stats_.resource_rungs = static_cast<int>(res_rung);
    }
  }

  capture_scheduler();
  last_error_.clear();

  stats_.factor_entries_dense = llt_ ? plan_->sf.factor_entries_lower()
                                     : plan_->sf.factor_entries_lu();
  stats_.factor_entries_final = num_->final_entries();
  stats_.factor_bytes_final = num_->final_bytes();
  stats_.factor_bytes_lowrank = num_->lowrank_bytes();
  stats_.num_fp32_blocks = num_->num_fp32_blocks();
  stats_.factors_peak_bytes = MemoryTracker::instance().peak(MemCategory::Factors);
  stats_.total_peak_bytes = MemoryTracker::instance().peak_total();
  stats_.num_lowrank_blocks = num_->num_lowrank_blocks();
  stats_.num_dense_blocks = num_->num_dense_blocks();
  stats_.average_rank = num_->average_rank();
  stats_.dense_block_fraction = num_->dense_block_fraction();
  stats_.pivots_replaced = num_->pivots_replaced();
  capture_dag();
  stats_.dispatch = KernelDispatch::instance().snapshot();
  stats_.batch = batch_stats_snapshot();
  const la::PackCacheStats pc = la::pack_cache_stats();
  stats_.batch.pack_hits = pc.hits;
  stats_.batch.pack_misses = pc.misses;
  stats_.batch.pack_bytes = pc.bytes;
  std::uint64_t total_calls = 0, batched_calls = 0;
  for (const DispatchCount& d : stats_.dispatch) {
    total_calls += d.calls;
    batched_calls += d.batched_calls;
  }
  stats_.batch.fill_ratio =
      total_calls > 0 ? static_cast<double>(batched_calls) /
                            static_cast<double>(total_calls)
                      : 0.0;

  // Warm-start bookkeeping for the NEXT pass: remember this pass's final
  // per-block ranks, and surface this pass's warm/buffer counters.
  num_->harvest_ranks(ranks_);
  const WarmCounters& wc = num_->warm_counters();
  stats_.warm.attempts = wc.attempts.load(std::memory_order_relaxed);
  stats_.warm.hits = wc.hits.load(std::memory_order_relaxed);
  stats_.warm.grows = wc.grows.load(std::memory_order_relaxed);
  stats_.warm.dense_skips = wc.dense_skips.load(std::memory_order_relaxed);
  const lr::BufferPool::Stats bp = buffers_.stats();
  stats_.buffer_hits = bp.hits;
  stats_.buffer_misses = bp.misses;
  stats_.refactorizations = refactorizations_;

  // Attach the solve context: the schedule comes from the frozen plan's
  // lazy cache (built on the first factorize, replayed verbatim by every
  // refactorize), the engine is the solver-lifetime solve pool. The fresh
  // NumericFactor starts with an empty widen cache — a refactorize
  // invalidates the previous epoch's fp64 promotions wholesale.
  bool plan_built = false;
  std::shared_ptr<const SolvePlan> sp = plan_->solve_plan(&plan_built);
  if (plan_built) {
    ++stats_.solve_phase.plan_builds;
  } else {
    ++stats_.solve_phase.plan_reuses;
  }
  num_->set_solve_context(std::move(sp), solve_engine_);
  stats_.solve_phase.widen_tiles = 0;
  stats_.solve_phase.widen_bytes = 0;
}

void Solver::note_solve(const SolveRunInfo& ri, double seconds) const {
  SolverStats& st = const_cast<SolverStats&>(stats_);
  st.time_solve = seconds;
  SolvePhaseStats& sp = st.solve_phase;
  ++sp.solves;
  sp.tasks_executed += ri.tasks;
  if (ri.column_split) {
    ++sp.split_solves;
  } else if (ri.parallel) {
    ++sp.parallel_solves;
  } else {
    ++sp.sequential_solves;
  }
  sp.widen_hits += ri.widen_hits;
  sp.widen_tiles = num_->widen_cache_tiles();
  sp.widen_bytes = num_->widen_cache_bytes();
  // Re-snapshot the dispatch table so the solve kernels' rows appear in
  // stats() without waiting for the next factorize (the table accumulates
  // since the successful attempt's reset, so the factorization rows are
  // unchanged — solves only grow the solve_* rows).
  st.dispatch = KernelDispatch::instance().snapshot();
  sp.trsm_seconds = 0;
  sp.gemm_seconds = 0;
  for (const DispatchCount& d : st.dispatch) {
    if (d.kernel.rfind("solve_trsm", 0) == 0) sp.trsm_seconds += d.seconds;
    if (d.kernel.rfind("solve_gemm", 0) == 0) sp.gemm_seconds += d.seconds;
  }
}

void Solver::require_factors(const char* fn) const {
  if (factorized()) return;
  FailureReport r;
  r.kind = FailureKind::NotFactorized;
  r.strategy = strategy_name(opts_.strategy);
  r.compression = kind_name(opts_.kind);
  r.factorization = llt_ ? "LLt" : "LU";
  r.tolerance = static_cast<double>(opts_.tolerance);
  r.detail = std::string("a successful factorize() is required before ") +
             fn + "()";
  if (!last_error_.empty()) r.detail += "; last failure: " + last_error_;
  throw NumericalError(r.to_string(), r);
}

void Solver::solve(const real_t* b, real_t* x) const {
  require_factors("solve");
  Timer timer;
  const index_t n = plan_->sf.n();
  SolveRunInfo ri;
  num_->solve(la::DConstView(b, n, 1, n), la::DView(x, n, 1, n), &ri);
  note_solve(ri, timer.elapsed());
}

std::vector<real_t> Solver::solve(const std::vector<real_t>& b) const {
  std::vector<real_t> x(b.size());
  solve(b.data(), x.data());
  return x;
}

void Solver::solve(la::DConstView b, la::DView x) const {
  require_factors("solve");
  Timer timer;
  SolveRunInfo ri;
  num_->solve(b, x, &ri);
  note_solve(ri, timer.elapsed());
}

Preconditioner Solver::preconditioner() const {
  require_factors("preconditioner");
  const NumericFactor* num = num_.get();
  return [num](const real_t* in, real_t* out) { num->solve(in, out); };
}

const std::vector<TraceEvent>& Solver::trace() const {
  BLR_CHECK(factorized(), "factorize() must be called before trace()");
  return num_->trace();
}

void Solver::write_trace_csv(const std::string& path) const {
  const auto& events = trace();
  std::ofstream out(path);
  BLR_CHECK(out.good(), "cannot open trace file: " + path);
  out << "cblk,worker,start_s,end_s\n";
  out.precision(9);
  for (const auto& e : events) {
    out << e.cblk << ',' << e.worker << ',' << e.start << ',' << e.end << '\n';
  }
}

void Solver::print_summary(std::ostream& os) const {
  os << "BLR solver summary\n"
     << "  strategy      : " << strategy_name(opts_.strategy) << " / "
     << kind_name(opts_.kind) << ", tau = " << opts_.tolerance << "\n"
     << "  scheduling    : "
     << (opts_.scheduling == Scheduling::LeftLooking ? "left-looking"
                                                     : "right-looking")
     << ", threads = " << opts_.threads << " ("
     << scheduler_name(opts_.scheduler) << ")\n"
     << "  precision     : " << precision_name(opts_.precision);
  if (opts_.precision == TilePrecision::MixedTiles &&
      opts_.mixed_rank_threshold >= 0) {
    os << " (rank cap " << opts_.mixed_rank_threshold << ")";
  }
  os << "\n"
     << "  batching      : " << batching_name(opts_.batching) << "\n"
     << "  dataflow      : " << dataflow_name(opts_.dataflow) << "\n"
     << "  backend       : " << la::backend_choice_name(opts_.backend);
  if (!stats_.backend.empty()) {
    os << " -> " << stats_.backend;
    if (!stats_.backend_isa.empty()) os << " (" << stats_.backend_isa << ")";
  }
  os << "\n";
  if (!analyzed()) {
    os << "  (not analyzed yet)\n";
    return;
  }
  os << "  matrix        : n = " << stats_.n << ", " << stats_.num_cblks
     << " column blocks, " << stats_.num_bloks << " blocks\n"
     << "  analyze       : " << stats_.time_analyze << " s\n";
  if (!factorized()) {
    os << "  (not factorized yet)\n";
    return;
  }
  os << "  factorization : " << (llt_ ? "LL^t" : "LU") << ", "
     << stats_.time_factorize << " s\n"
     << "  factors       : "
     << static_cast<double>(stats_.factor_bytes_final) / 1e6
     << " MB (dense "
     << static_cast<double>(stats_.factor_entries_dense) * sizeof(real_t) / 1e6
     << " MB, ratio " << stats_.compression_ratio() << "x)\n"
     << "  blocks        : " << stats_.num_lowrank_blocks << " low-rank (avg rank "
     << stats_.average_rank << "), " << stats_.num_dense_blocks << " dense";
  if (stats_.num_fp32_blocks > 0) {
    os << ", " << stats_.num_fp32_blocks << " in fp32";
  }
  os << "\n"
     << "  dense fraction: " << stats_.dense_block_fraction
     << " of compressible blocks kept dense\n"
     << "  memory peak   : "
     << static_cast<double>(stats_.factors_peak_bytes) / 1e6 << " MB factors, "
     << static_cast<double>(stats_.total_peak_bytes) / 1e6 << " MB total\n";
  if (stats_.memory_budget_bytes > 0 || stats_.deadline_seconds > 0) {
    os << "  governance    :";
    if (stats_.memory_budget_bytes > 0) {
      os << " budget "
         << static_cast<double>(stats_.memory_budget_bytes) / 1e6
         << " MB (peak "
         << 100.0 * static_cast<double>(stats_.total_peak_bytes) /
                static_cast<double>(stats_.memory_budget_bytes)
         << "% of budget)";
    }
    if (stats_.deadline_seconds > 0) {
      if (stats_.memory_budget_bytes > 0) os << ",";
      os << " deadline " << stats_.deadline_seconds << " s (margin "
         << stats_.deadline_margin << " s)";
    }
    if (stats_.resource_rungs > 0) {
      os << ", " << stats_.resource_rungs << " degradation rung"
         << (stats_.resource_rungs > 1 ? "s" : "");
    }
    os << "\n";
  }
  if (stats_.pivots_replaced > 0) {
    os << "  static pivots : " << stats_.pivots_replaced << " replaced\n";
  }
  if (stats_.scheduler_workers > 0) {
    os << "  scheduler     : " << stats_.scheduler_workers << " workers, "
       << stats_.scheduler_tasks << " tasks, " << stats_.scheduler_steals
       << " steals (" << stats_.scheduler_failed_steals << " empty sweeps), "
       << stats_.scheduler_idle_sleeps << " idle sleeps";
    if (stats_.scheduler_discarded > 0) {
      os << ", " << stats_.scheduler_discarded << " cancelled";
    }
    os << "\n";
  }
  if (stats_.solve_phase.solves > 0) {
    const SolvePhaseStats& sp = stats_.solve_phase;
    os << "  solve         : " << sp.solves << " solves ("
       << sp.parallel_solves << " dag, " << sp.split_solves << " split, "
       << sp.sequential_solves << " sequential), " << sp.tasks_executed
       << " tasks, plan " << sp.plan_builds << " built / " << sp.plan_reuses
       << " reused, trsm " << sp.trsm_seconds << " s, gemm "
       << sp.gemm_seconds << " s";
    if (sp.widen_tiles > 0) {
      os << ", widen cache " << sp.widen_tiles << " tiles ("
         << static_cast<double>(sp.widen_bytes) / 1e6 << " MB, "
         << sp.widen_hits << " hits)";
    }
    os << "\n";
  }
  if (stats_.dag_tasks > 0) {
    os << "  task dag      : " << stats_.dag_tasks << " tasks, "
       << stats_.dag_edges << " edges, critical path "
       << stats_.dag_critical_path << ", ready peak "
       << stats_.dag_ready_peak << ", " << stats_.dag_executed
       << " executed\n";
  }
  if (!stats_.dispatch.empty()) {
    os << "  kernels       :\n";
    for (const DispatchCount& d : stats_.dispatch) {
      os << "    " << d.kernel << "@" << d.backend << ": " << d.calls
         << " calls, "
         << static_cast<double>(d.bytes) / 1e6 << " MB, " << d.seconds
         << " s";
      if (d.batched_calls > 0) {
        os << " (" << d.batched_calls << " batched in "
           << d.batch_invocations << " invocations)";
      }
      os << "\n";
    }
  }
  if (stats_.batch.batches > 0) {
    os << "  batches       : " << stats_.batch.batches << " executed, avg "
       << stats_.batch.avg_batch << " / max " << stats_.batch.max_batch
       << " entries, fill " << stats_.batch.fill_ratio << ", pack cache "
       << stats_.batch.pack_hits << " hits / " << stats_.batch.pack_misses
       << " misses\n";
  }
  if (stats_.attempts.size() > 1) {
    os << "  recovery      : " << stats_.attempts.size() << " attempts\n";
    for (const FactorizeAttempt& at : stats_.attempts) {
      os << "    #" << at.attempt << " [" << at.action << "]"
         << (at.resource ? " [resource]" : "") << " " << at.strategy
         << (at.llt ? " LL^t" : " LU") << ", tau = " << at.tolerance;
      if (at.pivot_threshold > 0) os << ", pivot = " << at.pivot_threshold;
      if (!at.precision.empty() && at.precision != "fp64") {
        os << ", " << at.precision;
      }
      os << ": "
         << (at.succeeded ? "ok" : at.error) << " (" << at.seconds << " s)\n";
      os << "      peak " << static_cast<double>(at.peak_bytes) / 1e6
         << " MB";
      if (at.scheduler_tasks > 0 || at.scheduler_discarded > 0) {
        os << ", " << at.scheduler_tasks << " tasks ("
           << at.scheduler_discarded << " cancelled)";
      }
      if (at.dag_tasks > 0) {
        os << ", dag " << at.dag_executed << "/" << at.dag_tasks
           << " executed";
      }
      if (at.batches > 0) {
        os << ", " << at.batches << " batches (" << at.batch_entries
           << " entries)";
      }
      os << "\n";
    }
  }
}

RefinementResult Solver::refine(const sparse::CscMatrix& a, const real_t* b,
                                real_t* x, const RefinementOptions& opts) const {
  require_factors("refine");
  const Preconditioner m = preconditioner();
  return llt_ ? conjugate_gradient(a, m, b, x, opts) : gmres(a, m, b, x, opts);
}

} // namespace blr::core
