#include "core/solver.hpp"

#include <fstream>
#include <ostream>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "sparse/graph.hpp"

namespace blr::core {

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::Dense: return "Dense";
    case Strategy::JustInTime: return "Just-In-Time";
    case Strategy::MinimalMemory: return "Minimal Memory";
  }
  return "?";
}

const char* kind_name(lr::CompressionKind k) {
  switch (k) {
    case lr::CompressionKind::Svd: return "SVD";
    case lr::CompressionKind::Rrqr: return "RRQR";
    case lr::CompressionKind::Randomized: return "Randomized";
  }
  return "?";
}

Solver::Solver(SolverOptions opts) : opts_(opts) {
  if (opts_.threads > 1) {
    pool_ = std::make_unique<ThreadPool>(opts_.threads, opts_.scheduler);
  }
}

Solver::~Solver() = default;

void Solver::analyze(const sparse::CscMatrix& a) {
  BLR_CHECK(a.rows() == a.cols(), "solver requires a square matrix");
  if (opts_.check_pattern) {
    BLR_CHECK(a.pattern_symmetric(),
              "the solver requires a symmetric nonzero pattern (symmetrize the "
              "matrix, e.g. by assembling A + Aᵗ's pattern, before factorizing)");
  }
  Timer timer;

  const sparse::Graph g = sparse::Graph::from_matrix(a);
  ord_ = ordering::nested_dissection(g, opts_.nd);
  std::vector<index_t> ranges = ord_.ranges;
  if (opts_.amalgamate) {
    ranges = symbolic::amalgamate(a, ord_, std::move(ranges), opts_.amalgamation);
  }
  ranges = symbolic::split_ranges(ranges, opts_.split);
  sf_ = std::make_unique<symbolic::SymbolicFactor>(
      symbolic::SymbolicFactor::build(a, ord_, ranges));
  num_.reset();

  stats_ = SolverStats{};
  stats_.time_analyze = timer.elapsed();
  stats_.n = a.rows();
  stats_.num_cblks = sf_->num_cblks();
  stats_.num_bloks = sf_->num_bloks();
}

void Solver::factorize(const sparse::CscMatrix& a) {
  if (!analyzed()) analyze(a);
  BLR_CHECK(a.rows() == sf_->n(), "matrix size changed since analyze()");

  switch (opts_.factorization) {
    case Factorization::Llt: llt_ = true; break;
    case Factorization::Lu: llt_ = false; break;
    case Factorization::Auto:
      llt_ = (a.symmetry() == sparse::Symmetry::Spd);
      break;
  }

  // Fresh peak measurement for this factorization.
  MemoryTracker::instance().reset();
  if (pool_) pool_->reset_stats();

  Timer timer;
  num_ = std::make_unique<NumericFactor>(a, ord_, *sf_, opts_, llt_);
  num_->factorize(pool_.get());
  stats_.time_factorize = timer.elapsed();

  if (pool_) {
    const ThreadPool::WorkerStats ws = pool_->total_stats();
    stats_.scheduler_workers = pool_->size();
    stats_.scheduler_tasks = ws.executed;
    stats_.scheduler_steals = ws.steals;
    stats_.scheduler_failed_steals = ws.failed_steals;
    stats_.scheduler_idle_sleeps = ws.idle_sleeps;
  } else {
    stats_.scheduler_workers = 0;
    stats_.scheduler_tasks = 0;
    stats_.scheduler_steals = 0;
    stats_.scheduler_failed_steals = 0;
    stats_.scheduler_idle_sleeps = 0;
  }

  stats_.factor_entries_dense =
      llt_ ? sf_->factor_entries_lower() : sf_->factor_entries_lu();
  stats_.factor_entries_final = num_->final_entries();
  stats_.factors_peak_bytes = MemoryTracker::instance().peak(MemCategory::Factors);
  stats_.total_peak_bytes = MemoryTracker::instance().peak_total();
  stats_.num_lowrank_blocks = num_->num_lowrank_blocks();
  stats_.num_dense_blocks = num_->num_dense_blocks();
  stats_.average_rank = num_->average_rank();
  stats_.pivots_replaced = num_->pivots_replaced();
}

void Solver::solve(const real_t* b, real_t* x) const {
  BLR_CHECK(factorized(), "factorize() must be called before solve()");
  Timer timer;
  num_->solve(b, x);
  const_cast<SolverStats&>(stats_).time_solve = timer.elapsed();
}

std::vector<real_t> Solver::solve(const std::vector<real_t>& b) const {
  std::vector<real_t> x(b.size());
  solve(b.data(), x.data());
  return x;
}

void Solver::solve(la::DConstView b, la::DView x) const {
  BLR_CHECK(factorized(), "factorize() must be called before solve()");
  Timer timer;
  num_->solve(b, x);
  const_cast<SolverStats&>(stats_).time_solve = timer.elapsed();
}

Preconditioner Solver::preconditioner() const {
  BLR_CHECK(factorized(), "factorize() must be called before preconditioner()");
  const NumericFactor* num = num_.get();
  return [num](const real_t* in, real_t* out) { num->solve(in, out); };
}

const std::vector<TraceEvent>& Solver::trace() const {
  BLR_CHECK(factorized(), "factorize() must be called before trace()");
  return num_->trace();
}

void Solver::write_trace_csv(const std::string& path) const {
  const auto& events = trace();
  std::ofstream out(path);
  BLR_CHECK(out.good(), "cannot open trace file: " + path);
  out << "cblk,worker,start_s,end_s\n";
  out.precision(9);
  for (const auto& e : events) {
    out << e.cblk << ',' << e.worker << ',' << e.start << ',' << e.end << '\n';
  }
}

void Solver::print_summary(std::ostream& os) const {
  os << "BLR solver summary\n"
     << "  strategy      : " << strategy_name(opts_.strategy) << " / "
     << kind_name(opts_.kind) << ", tau = " << opts_.tolerance << "\n"
     << "  scheduling    : "
     << (opts_.scheduling == Scheduling::LeftLooking ? "left-looking"
                                                     : "right-looking")
     << ", threads = " << opts_.threads << " ("
     << scheduler_name(opts_.scheduler) << ")\n";
  if (!analyzed()) {
    os << "  (not analyzed yet)\n";
    return;
  }
  os << "  matrix        : n = " << stats_.n << ", " << stats_.num_cblks
     << " column blocks, " << stats_.num_bloks << " blocks\n"
     << "  analyze       : " << stats_.time_analyze << " s\n";
  if (!factorized()) {
    os << "  (not factorized yet)\n";
    return;
  }
  os << "  factorization : " << (llt_ ? "LL^t" : "LU") << ", "
     << stats_.time_factorize << " s\n"
     << "  factors       : "
     << static_cast<double>(stats_.factor_entries_final) * sizeof(real_t) / 1e6
     << " MB (dense "
     << static_cast<double>(stats_.factor_entries_dense) * sizeof(real_t) / 1e6
     << " MB, ratio " << stats_.compression_ratio() << "x)\n"
     << "  blocks        : " << stats_.num_lowrank_blocks << " low-rank (avg rank "
     << stats_.average_rank << "), " << stats_.num_dense_blocks << " dense\n"
     << "  memory peak   : "
     << static_cast<double>(stats_.factors_peak_bytes) / 1e6 << " MB factors, "
     << static_cast<double>(stats_.total_peak_bytes) / 1e6 << " MB total\n";
  if (stats_.pivots_replaced > 0) {
    os << "  static pivots : " << stats_.pivots_replaced << " replaced\n";
  }
  if (stats_.scheduler_workers > 0) {
    os << "  scheduler     : " << stats_.scheduler_workers << " workers, "
       << stats_.scheduler_tasks << " tasks, " << stats_.scheduler_steals
       << " steals (" << stats_.scheduler_failed_steals << " empty sweeps), "
       << stats_.scheduler_idle_sleeps << " idle sleeps\n";
  }
}

RefinementResult Solver::refine(const sparse::CscMatrix& a, const real_t* b,
                                real_t* x, const RefinementOptions& opts) const {
  BLR_CHECK(factorized(), "factorize() must be called before refine()");
  const Preconditioner m = preconditioner();
  return llt_ ? conjugate_gradient(a, m, b, x, opts) : gmres(a, m, b, x, opts);
}

} // namespace blr::core
