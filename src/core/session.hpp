#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "core/solver.hpp"

namespace blr::core {

/// A persistent factorization server over one sparse pattern (DESIGN.md §15
/// — the JOREK/MUMPS "factorization server" shape): one symbolic plan, a
/// current set of factors, and a queue of solve requests.
///
/// ```
///   blr::core::Session session(opts);
///   session.refactorize(A0);            // first pass: analyze + cold factorize
///   for (int step = 1; step < T; ++step) {
///     session.solve(b.data(), x.data());  // any thread, any time
///     session.refactorize(A_step);        // same pattern, new values
///   }
/// ```
///
/// Concurrency contract:
///  - solve() may be called from any number of threads. Requests queue up
///    and are coalesced — up to SolverOptions::session_max_batch at a time —
///    into one blocked multi-RHS solve. Each coalesced column is
///    bit-identical to the single-RHS solve of that request alone, so
///    batching never changes results.
///  - refactorize() runs concurrently with solves: in-flight and queued
///    requests keep being served by the *previous* factors until the new
///    pass succeeds, at which point the session atomically switches over
///    (the epoch in each request's SolveStats says which factors served it).
///  - A refactorize() that fails — breakdown with the ladder exhausted, or
///    a governor budget/deadline breach — throws, and the session keeps
///    serving the previous factors unchanged.
class Session {
public:
  explicit Session(SolverOptions opts = {});
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Run (or re-run) the analysis phase. Implied by the first
  /// refactorize(); re-analyzing with a new pattern stops serving the old
  /// factors (they belong to the old plan).
  void analyze(const sparse::CscMatrix& a);

  /// Produce the factors the session serves from. The first call is a cold
  /// factorize (analyze implied); later calls are warm re-factorizations
  /// reusing the plan, pooled buffers and learned ranks. Throws on terminal
  /// failure — the previous factors keep serving.
  void refactorize(const sparse::CscMatrix& a);

  /// Blocking single-RHS solve (b, x of length n). Coalesced with
  /// concurrent requests into one blocked multi-RHS solve; returns this
  /// request's measurements. Throws a structured NumericalError
  /// (FailureKind::NotFactorized, embedding the last refactorize failure)
  /// when the session has never held factors.
  SolveStats solve(const real_t* b, real_t* x);
  SolveStats solve(const std::vector<real_t>& b, std::vector<real_t>& x);

  /// Whether the session currently holds factors to serve from.
  [[nodiscard]] bool serving() const;
  /// Which numeric pass produced the currently-served factors (0 before
  /// any; increments on every successful refactorize()).
  [[nodiscard]] std::uint64_t epoch() const;

  /// The worker solver: options, stats of the last numeric pass, summary
  /// printing. Solve-phase entry points on it are NOT serialized against
  /// this session's queue — use Session::solve().
  [[nodiscard]] const Solver& solver() const { return worker_; }
  [[nodiscard]] const SolverStats& stats() const { return worker_.stats(); }
  [[nodiscard]] const SolverOptions& options() const {
    return worker_.options();
  }

private:
  /// One queued solve request; lives on the caller's stack for its whole
  /// lifetime (the caller blocks until `done`).
  struct Request {
    const real_t* b = nullptr;
    real_t* x = nullptr;
    Timer queued;       ///< started at enqueue; read when the batch forms
    bool done = false;
    bool failed = false;
    std::string error;  ///< failure message when `failed`
    SolveStats st;
  };

  /// Serve one batch as the queue leader; called with `lk` held, returns
  /// with it held. Marks every drained request done (or failed).
  void flush_batch(std::unique_lock<std::mutex>& lk);

  SolverOptions opts_;
  Solver worker_;

  /// Serializes refactorize() calls against each other (not against
  /// solves: those run on snapshots).
  std::mutex refac_mu_;

  /// Guards the queue, the serving snapshot and the epoch.
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request*> queue_;
  bool flushing_ = false;  ///< a leader is currently running a blocked solve

  std::shared_ptr<const SymbolicPlan> plan_;   ///< keeps ord/sf alive for serving_
  std::shared_ptr<NumericFactor> serving_;     ///< current factors (may lag worker_)
  std::uint64_t epoch_ = 0;
};

} // namespace blr::core

namespace blr {
using core::Session;
using core::SolveStats;
} // namespace blr
