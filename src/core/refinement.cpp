#include "core/refinement.hpp"

#include <cmath>
#include <limits>

#include "linalg/blas.hpp"

namespace blr::core {

namespace {

real_t vec_norm(const std::vector<real_t>& v) {
  return la::nrm2(static_cast<index_t>(v.size()), v.data());
}

/// r = b - A·x; returns ‖r‖₂.
real_t residual(const sparse::CscMatrix& a, const real_t* x, const real_t* b,
                std::vector<real_t>& r) {
  const index_t n = a.rows();
  r.resize(static_cast<std::size_t>(n));
  a.spmv(x, r.data());
  for (index_t i = 0; i < n; ++i) r[static_cast<std::size_t>(i)] = b[i] - r[static_cast<std::size_t>(i)];
  return vec_norm(r);
}

/// Divergence / stagnation watchdog shared by the three methods: inspects
/// the newest history entry and decides whether the iteration should be
/// abandoned instead of burning through max_iterations.
struct ProgressGuard {
  const RefinementOptions& opts;
  real_t best = std::numeric_limits<real_t>::infinity();
  index_t since_best = 0;

  /// True when the iteration must stop now; marks @p out diverged when the
  /// error went non-finite or blew past the best value seen.
  bool should_stop(RefinementResult& out) {
    const real_t err = out.history.back();
    if (!std::isfinite(err) ||
        (opts.divergence_factor > 0 && std::isfinite(best) &&
         err > opts.divergence_factor * best)) {
      out.diverged = true;
      return true;
    }
    if (err < best) {
      best = err;
      since_best = 0;
      return false;
    }
    return opts.stagnation_window > 0 && ++since_best >= opts.stagnation_window;
  }
};

} // namespace

RefinementResult iterative_refinement(const sparse::CscMatrix& a,
                                      const Preconditioner& m, const real_t* b,
                                      real_t* x, const RefinementOptions& opts) {
  const index_t n = a.rows();
  RefinementResult out;
  std::vector<real_t> r, d(static_cast<std::size_t>(n));
  const real_t bnorm = la::nrm2(n, b);
  if (bnorm == 0) {
    // Zero right-hand side: the solution is zero, and backward errors are
    // measured relative to nothing — report immediate convergence.
    std::fill_n(x, n, real_t(0));
    out.history.push_back(0);
    out.converged = true;
    return out;
  }

  real_t rnorm = residual(a, x, b, r);
  out.history.push_back(rnorm / bnorm);
  ProgressGuard guard{opts};
  for (index_t it = 0; it < opts.max_iterations; ++it) {
    if (out.history.back() <= opts.target) {
      out.converged = true;
      break;
    }
    if (guard.should_stop(out)) break;
    m(r.data(), d.data());
    for (index_t i = 0; i < n; ++i) x[i] += d[static_cast<std::size_t>(i)];
    rnorm = residual(a, x, b, r);
    out.history.push_back(rnorm / bnorm);
    ++out.iterations;
  }
  out.converged = out.history.back() <= opts.target;
  return out;
}

RefinementResult gmres(const sparse::CscMatrix& a, const Preconditioner& m,
                       const real_t* b, real_t* x, const RefinementOptions& opts) {
  const index_t n = a.rows();
  const index_t restart = std::min<index_t>(opts.gmres_restart, n);
  RefinementResult out;
  const real_t bnorm = la::nrm2(n, b);
  if (bnorm == 0) {
    // Zero right-hand side: the solution is zero, and backward errors are
    // measured relative to nothing — report immediate convergence.
    std::fill_n(x, n, real_t(0));
    out.history.push_back(0);
    out.converged = true;
    return out;
  }

  std::vector<real_t> r;
  real_t beta = residual(a, x, b, r);
  out.history.push_back(beta / bnorm);

  std::vector<std::vector<real_t>> v;  // Krylov basis
  std::vector<real_t> h(static_cast<std::size_t>((restart + 1) * restart), 0);
  const auto H = [&](index_t i, index_t j) -> real_t& {
    return h[static_cast<std::size_t>(i + j * (restart + 1))];
  };
  std::vector<real_t> cs(static_cast<std::size_t>(restart));
  std::vector<real_t> sn(static_cast<std::size_t>(restart));
  std::vector<real_t> g(static_cast<std::size_t>(restart + 1));
  std::vector<real_t> z(static_cast<std::size_t>(n)), w(static_cast<std::size_t>(n));

  ProgressGuard guard{opts};
  bool abandoned = false;
  while (!abandoned && out.iterations < opts.max_iterations &&
         out.history.back() > opts.target && beta > 0) {
    std::fill(h.begin(), h.end(), real_t(0));
    std::fill(g.begin(), g.end(), real_t(0));
    g[0] = beta;
    v.assign(1, r);
    la::scal(n, real_t(1) / beta, v[0].data());

    index_t j = 0;
    for (; j < restart && out.iterations < opts.max_iterations; ++j) {
      // w = A·M⁻¹·v_j (right preconditioning keeps the true residual).
      m(v[static_cast<std::size_t>(j)].data(), z.data());
      a.spmv(z.data(), w.data());
      // Modified Gram-Schmidt.
      for (index_t i = 0; i <= j; ++i) {
        const real_t hij = la::dot(n, w.data(), v[static_cast<std::size_t>(i)].data());
        H(i, j) = hij;
        la::axpy(n, -hij, v[static_cast<std::size_t>(i)].data(), w.data());
      }
      const real_t hnext = la::nrm2(n, w.data());
      if (!std::isfinite(hnext)) {
        // A non-finite Krylov vector (NaN/Inf out of the preconditioner or
        // the matrix) would slip through the Givens rotations as a spurious
        // zero residual estimate — abandon before it corrupts the update.
        out.diverged = true;
        abandoned = true;
        break;
      }
      H(j + 1, j) = hnext;
      if (hnext > 0) {
        v.emplace_back(w);
        la::scal(n, real_t(1) / hnext, v.back().data());
      }
      // Apply previous Givens rotations to the new column.
      for (index_t i = 0; i < j; ++i) {
        const real_t t = cs[static_cast<std::size_t>(i)] * H(i, j) +
                         sn[static_cast<std::size_t>(i)] * H(i + 1, j);
        H(i + 1, j) = -sn[static_cast<std::size_t>(i)] * H(i, j) +
                      cs[static_cast<std::size_t>(i)] * H(i + 1, j);
        H(i, j) = t;
      }
      const real_t denom = std::hypot(H(j, j), H(j + 1, j));
      cs[static_cast<std::size_t>(j)] = (denom > 0) ? H(j, j) / denom : real_t(1);
      sn[static_cast<std::size_t>(j)] = (denom > 0) ? H(j + 1, j) / denom : real_t(0);
      H(j, j) = denom;
      H(j + 1, j) = 0;
      g[static_cast<std::size_t>(j + 1)] = -sn[static_cast<std::size_t>(j)] *
                                           g[static_cast<std::size_t>(j)];
      g[static_cast<std::size_t>(j)] *= cs[static_cast<std::size_t>(j)];

      ++out.iterations;
      out.history.push_back(std::abs(g[static_cast<std::size_t>(j + 1)]) / bnorm);
      if (out.history.back() <= opts.target || hnext == 0) {
        ++j;
        break;
      }
      if (guard.should_stop(out)) {
        abandoned = true;
        ++j;
        break;
      }
    }
    // Diverged mid-cycle: the Krylov data is tainted, keep the current x
    // rather than folding a non-finite correction into it.
    if (out.diverged) break;

    // Back-substitute y and update x += M⁻¹·(V·y).
    std::vector<real_t> y(static_cast<std::size_t>(j), 0);
    for (index_t i = j - 1; i >= 0; --i) {
      real_t s = g[static_cast<std::size_t>(i)];
      for (index_t l = i + 1; l < j; ++l) s -= H(i, l) * y[static_cast<std::size_t>(l)];
      y[static_cast<std::size_t>(i)] = s / H(i, i);
    }
    std::fill(w.begin(), w.end(), real_t(0));
    for (index_t i = 0; i < j; ++i)
      la::axpy(n, y[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(i)].data(),
               w.data());
    m(w.data(), z.data());
    la::axpy(n, real_t(1), z.data(), x);

    beta = residual(a, x, b, r);
  }
  out.converged = out.history.back() <= opts.target;
  return out;
}

RefinementResult conjugate_gradient(const sparse::CscMatrix& a,
                                    const Preconditioner& m, const real_t* b,
                                    real_t* x, const RefinementOptions& opts) {
  const index_t n = a.rows();
  RefinementResult out;
  const real_t bnorm = la::nrm2(n, b);
  if (bnorm == 0) {
    // Zero right-hand side: the solution is zero, and backward errors are
    // measured relative to nothing — report immediate convergence.
    std::fill_n(x, n, real_t(0));
    out.history.push_back(0);
    out.converged = true;
    return out;
  }

  std::vector<real_t> r;
  residual(a, x, b, r);
  std::vector<real_t> z(static_cast<std::size_t>(n));
  m(r.data(), z.data());
  std::vector<real_t> p = z;
  std::vector<real_t> ap(static_cast<std::size_t>(n));
  real_t rz = la::dot(n, r.data(), z.data());
  out.history.push_back(vec_norm(r) / bnorm);

  ProgressGuard guard{opts};
  for (index_t it = 0; it < opts.max_iterations; ++it) {
    if (out.history.back() <= opts.target || rz == 0) break;
    if (guard.should_stop(out)) break;
    a.spmv(p.data(), ap.data());
    const real_t pap = la::dot(n, p.data(), ap.data());
    if (pap <= 0) break;  // matrix not SPD (or breakdown)
    const real_t alpha = rz / pap;
    la::axpy(n, alpha, p.data(), x);
    la::axpy(n, -alpha, ap.data(), r.data());
    m(r.data(), z.data());
    const real_t rz_next = la::dot(n, r.data(), z.data());
    const real_t betak = rz_next / rz;
    rz = rz_next;
    for (index_t i = 0; i < n; ++i)
      p[static_cast<std::size_t>(i)] = z[static_cast<std::size_t>(i)] +
                                       betak * p[static_cast<std::size_t>(i)];
    ++out.iterations;
    out.history.push_back(vec_norm(r) / bnorm);
  }
  out.converged = out.history.back() <= opts.target;
  return out;
}

} // namespace blr::core
