#include "core/session.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace blr::core {

Session::Session(SolverOptions opts) : opts_(opts), worker_(opts) {}

Session::~Session() = default;

void Session::analyze(const sparse::CscMatrix& a) {
  std::lock_guard<std::mutex> rl(refac_mu_);
  worker_.analyze(a);
  std::lock_guard<std::mutex> lk(mu_);
  // Factors of the old plan must not serve answers for the new pattern.
  serving_.reset();
  plan_ = worker_.plan();
}

void Session::refactorize(const sparse::CscMatrix& a) {
  std::lock_guard<std::mutex> rl(refac_mu_);
  // The numeric pass runs WITHOUT mu_: queued solves keep draining against
  // the current serving snapshot for its whole duration. A throw from the
  // worker (ladder exhausted, budget/deadline breach) propagates here and
  // leaves serving_/epoch_ untouched — the session keeps serving the
  // previous factors.
  worker_.refactorize(a);

  std::shared_ptr<NumericFactor> old;
  {
    std::lock_guard<std::mutex> lk(mu_);
    old = std::exchange(serving_, worker_.numeric_shared());
    plan_ = worker_.plan();
    ++epoch_;
  }
  // Retire the displaced factors into the worker's buffer pool — but only
  // when nothing else (an in-flight blocked solve, the worker itself)
  // still holds them; donation destroys the factors in place. When a solve
  // still holds the snapshot, the storage is simply freed once it drops it.
  if (old && old.use_count() == 1 && opts_.reuse_buffers) {
    old->donate_buffers(worker_.buffer_pool());
  }
}

bool Session::serving() const {
  std::lock_guard<std::mutex> lk(mu_);
  return serving_ != nullptr;
}

std::uint64_t Session::epoch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return epoch_;
}

SolveStats Session::solve(const real_t* b, real_t* x) {
  Request req;
  req.b = b;
  req.x = x;

  std::unique_lock<std::mutex> lk(mu_);
  if (!serving_) {
    // Structured rejection (the solver-level fix of the same contract):
    // NotFactorized, with the worker's last terminal failure embedded so
    // "why is there nothing to serve" is answerable from the exception.
    FailureReport r;
    r.kind = FailureKind::NotFactorized;
    r.strategy = strategy_name(opts_.strategy);
    r.compression = kind_name(opts_.kind);
    r.factorization = worker_.is_llt() ? "LLt" : "LU";
    r.tolerance = static_cast<double>(opts_.tolerance);
    r.detail = "a successful refactorize() is required before Session::solve()";
    const std::string& last = worker_.last_error();
    if (!last.empty()) r.detail += "; last failure: " + last;
    throw NumericalError(r.to_string(), r);
  }
  queue_.push_back(&req);
  while (!req.done) {
    if (flushing_) {
      // A leader is mid-solve; wait to be served or to take over.
      cv_.wait(lk, [&] { return req.done || !flushing_; });
      continue;
    }
    flush_batch(lk);
  }
  if (req.failed) throw Error("Session::solve failed: " + req.error);
  return req.st;
}

SolveStats Session::solve(const std::vector<real_t>& b, std::vector<real_t>& x) {
  x.resize(b.size());
  return solve(b.data(), x.data());
}

void Session::flush_batch(std::unique_lock<std::mutex>& lk) {
  flushing_ = true;
  const std::size_t cap = static_cast<std::size_t>(
      std::max<index_t>(1, opts_.session_max_batch));
  std::vector<Request*> batch;
  while (!queue_.empty() && batch.size() < cap) {
    batch.push_back(queue_.front());
    queue_.pop_front();
  }
  // Snapshot the factors (and the plan that keeps their ordering/symbolic
  // references alive) so a concurrent refactorize() can swap serving_
  // without ever destroying factors we are solving with.
  std::shared_ptr<NumericFactor> snap = serving_;
  std::shared_ptr<const SymbolicPlan> plan = plan_;
  const std::uint64_t ep = epoch_;
  lk.unlock();

  const index_t n = snap->symbolic().n();
  const index_t m = static_cast<index_t>(batch.size());
  for (Request* r : batch) {
    r->st.factor_epoch = ep;
    r->st.batch_size = m;
    r->st.wait_seconds = r->queued.elapsed();
  }

  Timer solve_timer;
  std::string error;
  SolveRunInfo ri;
  {
    // Coalesce into one column-major block; each column of the blocked
    // solve is bit-identical to the corresponding single-RHS solve (the
    // multi-RHS engine contract), so batching is invisible in the results.
    la::DMatrix bm(n, m);
    la::DMatrix xm(n, m);
    for (index_t j = 0; j < m; ++j) {
      std::copy_n(batch[static_cast<std::size_t>(j)]->b, n,
                  bm.data() + static_cast<std::size_t>(j) * static_cast<std::size_t>(n));
    }
    try {
      snap->solve(bm.cview(), xm.view(), &ri);
      for (index_t j = 0; j < m; ++j) {
        std::copy_n(xm.data() + static_cast<std::size_t>(j) * static_cast<std::size_t>(n),
                    n, batch[static_cast<std::size_t>(j)]->x);
      }
    } catch (const std::exception& e) {
      error = e.what();
    }
  }
  const double solve_s = solve_timer.elapsed();

  lk.lock();
  for (Request* r : batch) {
    r->st.solve_seconds = solve_s;
    r->st.solve_tasks = ri.tasks;
    r->st.parallel = ri.parallel;
    r->st.column_split = ri.column_split;
    r->st.plan_reused = ri.plan_reused;
    r->st.widen_hits = ri.widen_hits;
    r->failed = !error.empty();
    r->error = error;
    r->done = true;
  }
  flushing_ = false;
  cv_.notify_all();
}

} // namespace blr::core
