#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/memory_tracker.hpp"
#include "common/resource_governor.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "core/options.hpp"
#include "core/rank_memory.hpp"
#include "core/solve_plan.hpp"
#include "core/task_graph.hpp"
#include "core/update_policy.hpp"
#include "lowrank/buffer_pool.hpp"
#include "lowrank/kernels.hpp"
#include "sparse/csc.hpp"
#include "symbolic/symbolic.hpp"

namespace blr::core {

/// Numeric storage for one column block: every block — diagonal, L panel,
/// (for LU) transposed-U panel, LUAR accumulators — is a lr::Tile charged to
/// one of the supernode's arenas. The arenas are declared before the tiles
/// so tiles discharge first on destruction.
struct CblkData {
  lr::TileArena arena{MemCategory::Factors};          ///< factor tiles
  lr::TileArena acc_arena{MemCategory::Workspace};    ///< LUAR accumulators
  lr::Tile diag;                        ///< dense diagonal tile
  std::vector<lr::Tile> lpanel;
  std::vector<lr::Tile> upanel;         ///< empty for LLᵗ
  std::vector<index_t> ipiv;            ///< local pivots (LU diagonal block)
  /// LUAR accumulators (one per panel block, rank 0 = inactive): low-rank
  /// tiles holding the padded [U_acc, V_acc] factors of pending
  /// contributions awaiting one combined extend-add. Only used with
  /// options.accumulate_updates.
  std::vector<lr::Tile> lacc;
  std::vector<lr::Tile> uacc;
  bool eliminated = false;
};

/// Where one right-looking block update (k, bi, bj) lands: the target
/// supernode/blok, the offsets inside it, the contribution's dimensions, and
/// the triangle bookkeeping. Pure symbolic geometry — computing it touches no
/// numeric state, so the batched schedule can locate every update of a range
/// up front, run the products as one batch, and apply them afterwards.
struct UpdateLoc {
  index_t tcblk = -1;   ///< target supernode
  index_t tb_idx = -1;  ///< target blok index (-1: diagonal block)
  index_t roff = 0;     ///< row offset inside the target block
  index_t coff = 0;     ///< column offset inside the target block
  index_t rh = 0;       ///< contribution rows (row blok height)
  index_t ch = 0;       ///< contribution cols (col blok height)
  bool transpose = false;    ///< apply the transposed contribution (U mirror)
  bool target_diag = false;  ///< lands on the diagonal block
  bool target_upper = false; ///< lands in the U panel (LU only)
};

/// One elimination-task execution record (Gantt row) of the factorization.
/// Covers the supernode's panel factorization plus the updates applied from
/// the eliminating task itself (panel-split subtasks are not traced: the
/// trace keeps exactly one event per supernode).
struct TraceEvent {
  index_t cblk;
  std::size_t worker;  ///< dense pool worker index (0 for sequential runs)
  double start;        ///< seconds since factorize() began
  double end;
};

/// State a re-factorization replays from the previous numeric pass over
/// the same SymbolicPlan (DESIGN.md §15). All three are optional and
/// cost-only: ranks warm-start compressions (verified, grow-on-mismatch),
/// buffers recycle retired factor storage, and `dag` is a prebuilt task
/// graph skeleton (must match the effective factorization's llt flavor —
/// ignored otherwise). Pointed-to state must outlive the NumericFactor.
/// (Namespace-scope rather than nested so it can default-initialize in the
/// constructor's default argument.)
struct NumericReuse {
  const RankMemory* ranks = nullptr;   ///< learned per-block ranks
  lr::BufferPool* buffers = nullptr;   ///< retired dense-buffer pool
  const TaskGraph* dag = nullptr;      ///< prebuilt Dag skeleton
};

/// Dedicated thread pool for the parallel solve phase (DESIGN.md §16),
/// owned by the Solver and shared (by shared_ptr) with every NumericFactor
/// it produces, so Session snapshots keep the pool alive across
/// refactorize(). Separate from the factorization pool because the solve
/// drain blocks on wait_idle(), which must never observe another user's
/// tasks. `mu` admits one pooled drain at a time: a concurrent solve()
/// falls back to the sequential sweep instead of queueing — same bits,
/// and const solve() calls stay safe under concurrency.
struct SolveEngine {
  ThreadPool pool;
  std::mutex mu;
  explicit SolveEngine(int threads)
      : pool(threads, SchedulerKind::WorkStealing) {}
};

/// What one solve call actually did (optional out-param of
/// NumericFactor::solve / solve_permuted; feeds SolvePhaseStats and the
/// per-request Session::SolveStats).
struct SolveRunInfo {
  std::uint64_t tasks = 0;       ///< solve-plan task bodies run
  bool parallel = false;         ///< drained the solve DAG over the pool
  bool column_split = false;     ///< wide batch ran as parallel column chunks
  bool plan_reused = false;      ///< a cached SolvePlan drove the execution
  std::uint64_t widen_hits = 0;  ///< fp32 widen-cache hits during this call
};

/// The supernodal numeric factorization: one right-looking driver over
/// tiles, parameterized by an UpdatePolicy (Dense baseline, Just-In-Time,
/// Minimal Memory, Adaptive), for both LU (general, symmetric pattern) and
/// LLᵗ (SPD). All numeric operations route through the KernelDispatch
/// registry.
class NumericFactor {
public:
  using Reuse = NumericReuse;

  /// Assembles the (permuted) initial matrix into the block structure.
  /// For Minimal-Memory this is where the initial compression (lines 1-4 of
  /// Algorithm 1) happens; the dense factor structure is never allocated.
  /// `governor` (may be null: ungoverned) supplies the deadline watchdog the
  /// driver polls and receives injected clock skew; budget breaches arrive
  /// through the MemoryTracker as ResourceError regardless.
  /// `reuse` (defaulted empty) carries warm-start state for re-factorization.
  NumericFactor(const sparse::CscMatrix& a, const ordering::Ordering& ord,
                const symbolic::SymbolicFactor& sf, const SolverOptions& opts,
                bool llt, ResourceGovernor* governor = nullptr,
                Reuse reuse = {});

  NumericFactor(const NumericFactor&) = delete;
  NumericFactor& operator=(const NumericFactor&) = delete;

  /// Runs the numeric factorization. `pool` may be null for sequential
  /// execution; otherwise supernode eliminations are scheduled as tasks
  /// whose dependencies are the incoming block updates.
  void factorize(ThreadPool* pool);

  /// Triangular solves in the permuted index space on a block of right-hand
  /// sides (n x nrhs, in/out). With a solve context attached (see
  /// set_solve_context) the call drains the cached SolvePlan over the solve
  /// pool — or splits wide multi-RHS batches into parallel column chunks —
  /// and is memcmp-identical to the sequential two-sweep either way.
  /// `info` (optional) reports what the call actually did.
  void solve_permuted(la::DView x, SolveRunInfo* info) const;
  void solve_permuted(la::DView x) const { solve_permuted(x, nullptr); }
  void solve_permuted(real_t* x) const {
    solve_permuted(la::DView(x, sf_.n(), 1, sf_.n()));
  }

  /// Solve A·x = b including permutation handling (b and x length n).
  void solve(const real_t* b, real_t* x) const;

  /// Multi-RHS variant: X = A⁻¹·B (both n x nrhs; aliasing allowed).
  void solve(la::DConstView b, la::DView x, SolveRunInfo* info = nullptr) const;

  /// Attach the solve-phase execution context (DESIGN.md §16): the cached
  /// SolvePlan for this factor's symbolic structure plus the Solver's
  /// shared solve engine. Without a context, solves run the sequential
  /// two-sweep. Called by the Solver after each successful factorization.
  void set_solve_context(std::shared_ptr<const SolvePlan> plan,
                         std::shared_ptr<SolveEngine> engine);

  /// fp32 widen-cache introspection (DESIGN.md §16): bytes/tiles currently
  /// held, and cumulative factor reuses served. All zero until the first
  /// solve of a factor holding fp32-at-rest tiles; the cache dies with the
  /// factor, so refactorize() invalidates it wholesale.
  [[nodiscard]] std::size_t widen_cache_bytes() const { return widen_bytes_; }
  [[nodiscard]] std::uint64_t widen_cache_tiles() const { return widen_tiles_; }
  [[nodiscard]] std::uint64_t widen_hits() const {
    return widen_hits_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool is_llt() const { return llt_; }
  [[nodiscard]] const symbolic::SymbolicFactor& symbolic() const { return sf_; }

  /// Entries actually stored (dense + low-rank factors, diag included).
  [[nodiscard]] std::size_t final_entries() const;
  /// Bytes actually stored — precision-aware, so under MixedTiles this is
  /// less than final_entries() * sizeof(real_t).
  [[nodiscard]] std::size_t final_bytes() const;
  /// Bytes of final_bytes() held by low-rank U/V factors — the part of the
  /// storage that is eligible for fp32 demotion under MixedTiles.
  [[nodiscard]] std::size_t lowrank_bytes() const;
  /// Panel blocks whose factors ended in fp32 at-rest storage.
  [[nodiscard]] index_t num_fp32_blocks() const;
  [[nodiscard]] index_t num_lowrank_blocks() const;
  [[nodiscard]] index_t num_dense_blocks() const;
  /// Mean rank over the final low-rank blocks (dense blocks excluded).
  [[nodiscard]] double average_rank() const;
  /// Fraction of compressible panel blocks that ended dense (fallbacks plus
  /// policy keep-dense decisions); 0 when nothing is compressible.
  [[nodiscard]] double dense_block_fraction() const;
  [[nodiscard]] index_t pivots_replaced() const {
    return pivots_replaced_.load(std::memory_order_relaxed);
  }

  /// Elimination schedule trace (empty unless options.collect_trace).
  [[nodiscard]] const std::vector<TraceEvent>& trace() const { return trace_; }

  /// Counters of the dataflow run (all zero unless options.dataflow == Dag
  /// took the right-looking path).
  struct DagStats {
    std::uint64_t tasks = 0;          ///< DAG nodes built
    std::uint64_t edges = 0;          ///< inferred + explicit dependencies
    std::uint64_t executed = 0;       ///< task bodies actually run
    std::uint64_t ready_peak = 0;     ///< max released-but-not-started tasks
    std::uint64_t critical_path = 0;  ///< longest dependency chain (tasks)
  };
  [[nodiscard]] const DagStats& dag_stats() const { return dag_stats_; }

  /// Direct block access (tests / benches).
  [[nodiscard]] const CblkData& cblk_data(index_t k) const {
    return data_[static_cast<std::size_t>(k)];
  }

  /// Record the final rank of every panel block into `out` (kDense for
  /// blocks that ended dense) and mark the record valid. Called by the
  /// Solver after a successful pass; the record seeds the next
  /// re-factorization's warm-started compressions.
  void harvest_ranks(RankMemory& out) const;

  /// Move every factor buffer (dense blocks, diagonals, low-rank U/V) into
  /// `pool` for the next numeric pass to acquire. Destructive: the factors
  /// are unusable afterwards — callers retire this NumericFactor right away.
  void donate_buffers(lr::BufferPool& pool);

  /// Warm-start event counters of this pass (all zero on a cold run).
  [[nodiscard]] const WarmCounters& warm_counters() const {
    return warm_counters_;
  }

private:
  void assemble_all();
  void assemble_cblk(index_t k);
  void gather_panel(index_t k, const sparse::CscMatrix& src,
                    std::vector<lr::Tile>& panel, bool fill_diag);
  void eliminate(index_t k);
  /// Apply the right-looking updates of supernode k for column bloks
  /// [jb, je), draining dependency counters and submitting (with their
  /// critical-path priority) the successors that become ready. Routes to
  /// update_range_batched under Batching::PerSupernode.
  void update_range(index_t k, index_t jb, index_t je);
  /// Batched variant of update_range (DESIGN.md §11): locate every update of
  /// the range, enqueue the contribution products into one KernelBatch keyed
  /// by operand representation/precision, execute the batch (parallel over
  /// shape-bucket chunks), then apply the results and drain dependency
  /// counters sequentially in the eager pair order. Dense×dense pairs fuse
  /// into a target whose representation can change under the lock, so they
  /// skip the batch and run entirely in the sequential finish phase.
  void update_range_batched(index_t k, index_t jb, index_t je);
  /// Diagonal factorization + policy elimination hook + panel solves of
  /// cblk k. Under Batching::PerSupernode the compressions and the panel
  /// TRSMs each run as one batch across the panel.
  void factor_panel(index_t k);
  void factorize_left_looking();
  /// Dataflow execution (options.dataflow == Dag): build the TaskGraph over
  /// per-tile operations, then run it — sequentially in the canonical
  /// (barrier) order, or released to the pool as in-degrees reach zero.
  void factorize_dag(ThreadPool* pool);
  /// Body of one DAG task; returns false on failure (stops the run).
  bool run_dag_task(std::uint32_t id);
  void dag_assemble(const DagTask& t);
  void dag_factor(const DagTask& t);
  void dag_compress(const DagTask& t);
  void dag_trsm(const DagTask& t);
  void dag_product(const DagTask& t);
  void dag_apply(const DagTask& t);
  /// Symbolic geometry of the (bi, bj) update produced by supernode k.
  [[nodiscard]] UpdateLoc locate_update(index_t k, index_t bi, index_t bj) const;
  /// Whether the update's contribution product must carry an orthonormal U
  /// (keys off the target's assembly-time representation — immutable, so
  /// safe without the target lock).
  [[nodiscard]] bool update_need_ortho(const UpdateLoc& loc) const;
  /// Fused dense×dense update: GEMM straight into the (locked) dense target,
  /// or product + extend-add when the target is low-rank.
  void dense_dense_update(const UpdateLoc& loc, const lr::Tile& a,
                          const lr::Tile& b);
  /// Apply a formed contribution product under the target lock: LR2GE onto
  /// the diagonal, LUAR accumulation, or extend-add.
  void finish_update(const UpdateLoc& loc, lr::Tile p);
  /// Apply the (i,j) update produced by supernode k; returns the target cblk.
  index_t apply_update(index_t k, index_t bi, index_t bj);
  /// Merge a pending LUAR accumulator into its block (caller holds the
  /// target lock or the target is quiescent).
  void flush_accumulator(index_t cblk, bool upper, index_t blok_idx);
  void flush_all_accumulators(index_t cblk);
  [[nodiscard]] bool compressible(index_t k, const symbolic::Blok& b) const;

  /// Build a FailureReport stamped with the active configuration and the
  /// elapsed factorization time.
  [[nodiscard]] FailureReport make_report(FailureKind kind, index_t supernode,
                                          index_t local_pivot, double pivot_mag,
                                          std::string detail = {}) const;
  /// Throw NumericalError carrying @p report.
  [[noreturn]] void fail(FailureReport report) const;
  /// First-failure-wins capture: records the report, trips failed_ and
  /// cancels the pool so queued eliminations drain unrun.
  void record_failure(FailureReport report);
  /// Non-finite scan of one supernode's blocks; throws on NaN/Inf.
  void check_cblk_finite(index_t k, FailureKind kind) const;
  /// Deterministic injection hook (SolverOptions::fault), CompressionFail
  /// kind: called once per compression site.
  void maybe_fail_compression(index_t k);

  // ---- solve phase (DESIGN.md §16) -----------------------------------
  /// One task body of the two-sweep solve on RHS block x.
  void solve_fwd_diag(index_t k, la::DView x) const;
  void solve_fwd_upd(index_t k, index_t bi, la::DView x) const;
  void solve_bwd_upd(index_t k, index_t bi, la::DView x) const;
  void solve_bwd_diag(index_t k, la::DView x) const;
  bool run_solve_task(const SolveTask& t, la::DView x) const;
  /// Resolve a panel tile's low-rank factors as fp64 views; fp32 tiles
  /// resolve through the widen cache (counting a hit).
  void solve_lr_views(index_t k, index_t bi, bool upper, const lr::Tile& blk,
                      la::DConstView& u, la::DConstView& v) const;
  /// The sequential two-sweep over x. Under Batching::PerSupernode each
  /// supernode's panel updates run as one batched dispatch (chunks spread
  /// over `batch_pool` when non-null). Adds the operations run to `ops`.
  void solve_seq(la::DView x, ThreadPool* batch_pool, std::uint64_t& ops) const;
  /// Wide multi-RHS path: split x into column chunks solved as independent
  /// sequential sweeps on the pool (bit-identical per column).
  void solve_split(la::DView x, ThreadPool* pool, SolveRunInfo& ri) const;
  /// Build the per-epoch fp64 copies of every fp32-at-rest factor
  /// (Workspace-charged; no-op when the factor holds no fp32 tiles).
  void build_widen_cache() const;

  /// Reusable Workspace-tracked permutation scratch (one block per
  /// concurrent solve() call, pooled across calls).
  struct SolveScratch {
    la::DMatrix m;
    TrackedAlloc track{MemCategory::Workspace, 0};
  };
  [[nodiscard]] std::unique_ptr<SolveScratch> acquire_scratch(
      index_t rows, index_t cols) const;
  void release_scratch(std::unique_ptr<SolveScratch> s) const;

  // ---- resource governance (DESIGN.md §13) ---------------------------
  /// Deadline watchdog poll from the hot loops: throws ResourceError
  /// (Deadline, stamped with supernode k) once the governed deadline passed.
  void poll_deadline(index_t k) const;
  /// AllocFail-at-supernode injection: throw an injected budget-style
  /// ResourceError when the fault targets supernode k's assembly.
  void maybe_inject_alloc_fail(index_t k) const;
  /// ClockSkew injection: advance the governor's clock at supernode k's
  /// diagonal factorization.
  void maybe_skew_clock(index_t k);
  /// Fill in what the breach site could not know: the requesting supernode
  /// (the MemoryTracker sees bytes, not block structure) and the elapsed
  /// time.
  void stamp_resource(ResourceReport& r, index_t k) const;
  /// First-failure-wins capture of a resource breach (the ResourceError
  /// sibling of record_failure): trips failed_ and cancels the pool.
  void record_resource_failure(ResourceReport report);
  /// Re-throw the recorded first failure as its original type. Called after
  /// the run drained; reads the report without the mutex (no tasks left).
  [[noreturn]] void throw_recorded() const;

  const ordering::Ordering& ord_;
  const symbolic::SymbolicFactor& sf_;
  SolverOptions opts_;
  bool llt_;
  Reuse reuse_;                 ///< warm-start state (empty on cold runs)
  WarmCounters warm_counters_;  ///< warm-start events of this pass

  /// The strategy object the driver is parameterized by, plus the context
  /// its decisions run in (compression config + fault-injection hook).
  std::unique_ptr<UpdatePolicy> policy_;
  PolicyContext pctx_;

  // Permuted input (and its transpose for the U side). Kept alive for the
  // left-looking schedule, which assembles supernodes lazily; released after
  // assembly in the right-looking schedule.
  sparse::CscMatrix ap_;
  sparse::CscMatrix apt_;
  TrackedAlloc input_track_;

  std::vector<CblkData> data_;
  std::vector<std::mutex> locks_;              // per-cblk update locks
  std::vector<std::atomic<index_t>> deps_;     // remaining incoming updates
  ThreadPool* pool_ = nullptr;                 // active during factorize()
  real_t pivot_cutoff_ = 0;                    // absolute static-pivot threshold
  std::atomic<index_t> pivots_replaced_{0};
  std::vector<TraceEvent> trace_;
  std::mutex trace_mutex_;
  Timer trace_clock_;
  ResourceGovernor* gov_ = nullptr;   // null: ungoverned run
  std::atomic<bool> failed_{false};
  std::string error_;
  FailureReport report_;              // first failure, guarded by error_mutex_
  bool resource_failed_ = false;      // first failure was a resource breach
  ResourceReport resource_report_;    // its report, guarded by error_mutex_
  std::mutex error_mutex_;
  std::atomic<index_t> compressions_{0};  // compression-site counter (injection)

  // ---- dataflow (options.dataflow == Dag) state ----------------------
  /// Product → Apply hand-off: the product task forms the contribution and
  /// parks it here; the (chained) apply task consumes it. Allocated lazily so
  /// only in-flight updates hold slot storage.
  struct DagUpdateSlot {
    UpdateLoc loc;
    lr::Tile prod;             ///< formed contribution (non-fused path)
    const lr::Tile* a = nullptr;
    const lr::Tile* b = nullptr;
    bool dense_pair = false;   ///< defer the fused GEMM to the apply task
    bool zero = false;         ///< rank-0 operand: the apply is a no-op
  };
  std::unique_ptr<TaskGraph> dag_;     ///< owned graph (cold Dag runs)
  const TaskGraph* dagp_ = nullptr;    ///< active graph: reuse_.dag or dag_
  std::unique_ptr<EpochGate> epochs_;
  std::vector<std::unique_ptr<DagUpdateSlot>> dag_slots_;
  DagStats dag_stats_;

  // ---- solve phase (DESIGN.md §16) state ------------------------------
  std::shared_ptr<const SolvePlan> splan_;   ///< cached solve schedule
  std::shared_ptr<SolveEngine> sengine_;     ///< shared solve pool (may be null)
  std::vector<index_t> iperm_;  ///< inverse permutation: x(j) = xp(iperm_[j])
  /// fp32 widen cache: per-cblk fp64 copies of the fp32-at-rest U/V
  /// factors, built once per factor (on the first solve) under
  /// `widen_once_` and charged to Workspace. Inner vectors are indexed by
  /// blok and empty-matrix for tiles that are not fp32 low-rank.
  struct WidenedPanel {
    std::vector<la::DMatrix> lu, lv;  ///< L-panel factor copies
    std::vector<la::DMatrix> uu, uv;  ///< U-panel copies (LU only)
  };
  mutable std::vector<WidenedPanel> widen_;
  mutable TrackedAlloc widen_track_{MemCategory::Workspace, 0};
  mutable std::once_flag widen_once_;
  mutable std::uint64_t widen_tiles_ = 0;
  mutable std::size_t widen_bytes_ = 0;
  mutable std::atomic<std::uint64_t> widen_hits_{0};
  /// Permutation-scratch pool (guarded by scratch_mu_).
  mutable std::mutex scratch_mu_;
  mutable std::vector<std::unique_ptr<SolveScratch>> scratch_pool_;
};

} // namespace blr::core
