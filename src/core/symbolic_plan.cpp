#include "core/symbolic_plan.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "sparse/graph.hpp"
#include "symbolic/amalgamation.hpp"

namespace blr::core {

std::uint64_t SymbolicPlan::hash_pattern(const sparse::CscMatrix& a) {
  // FNV-1a over the raw index arrays: cheap (one pass over the pattern,
  // no values) and order-sensitive, which is exactly what "same CSC
  // structure" means.
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  mix(static_cast<std::uint64_t>(a.rows()));
  for (index_t p : a.colptr()) mix(static_cast<std::uint64_t>(p));
  for (index_t i : a.rowind()) mix(static_cast<std::uint64_t>(i));
  return h;
}

std::shared_ptr<const SymbolicPlan> SymbolicPlan::build(
    const sparse::CscMatrix& a, const SolverOptions& opts) {
  BLR_CHECK(a.rows() == a.cols(), "solver requires a square matrix");
  if (opts.check_pattern) {
    BLR_CHECK(a.pattern_symmetric(),
              "the solver requires a symmetric nonzero pattern (symmetrize the "
              "matrix, e.g. by assembling A + Aᵗ's pattern, before factorizing)");
  }
  Timer timer;

  const sparse::Graph g = sparse::Graph::from_matrix(a);
  ordering::Ordering ord = ordering::nested_dissection(g, opts.nd);
  std::vector<index_t> ranges = ord.ranges;
  if (opts.amalgamate) {
    ranges = symbolic::amalgamate(a, ord, std::move(ranges), opts.amalgamation);
  }
  ranges = symbolic::split_ranges(ranges, opts.split);
  symbolic::SymbolicFactor sf = symbolic::SymbolicFactor::build(a, ord, ranges);

  auto plan = std::make_shared<SymbolicPlan>(SymbolicPlan{
      std::move(ord), std::move(sf), a.rows(), a.nnz(), hash_pattern(a), 0.0});
  plan->build_seconds = timer.elapsed();
  return plan;
}

} // namespace blr::core
