#include "core/kernels_dispatch.hpp"

#include <chrono>
#include <exception>
#include <mutex>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "linalg/blas.hpp"
#include "linalg/factorizations.hpp"

namespace blr::core {

const char* kernel_op_name(KernelOp op) {
  switch (op) {
    case KernelOp::Getrf: return "getrf";
    case KernelOp::Potrf: return "potrf";
    case KernelOp::Trsm: return "trsm";
    case KernelOp::Gemm: return "gemm";
    case KernelOp::Lr2Lr: return "lr2lr";
    case KernelOp::Lr2Ge: return "lr2ge";
    case KernelOp::Compress: return "compress";
    case KernelOp::SolveTrsm: return "solve_trsm";
    case KernelOp::SolveGemm: return "solve_gemm";
    case KernelOp::kCount: break;
  }
  return "?";
}

namespace {

/// Shape signature of one batch entry: entries with equal signatures cost
/// about the same and often share operands, so consecutive equal-signature
/// runs form the shape buckets run_batch chunks on.
struct ShapeSig {
  index_t c_r = 0, c_c = 0, a_r = 0, a_c = 0, b_r = 0, b_c = 0;
  index_t v_r = 0, v_c = 0, i_r = 0, i_c = 0;
  index_t su_r = 0, su_c = 0, sv_r = 0, sv_c = 0;

  bool operator==(const ShapeSig&) const = default;
};

ShapeSig shape_of(const KernelCtx& ctx) {
  ShapeSig s;
  if (ctx.c != nullptr) { s.c_r = ctx.c->rows(); s.c_c = ctx.c->cols(); }
  if (ctx.a != nullptr) { s.a_r = ctx.a->rows(); s.a_c = ctx.a->cols(); }
  if (ctx.b != nullptr) { s.b_r = ctx.b->rows(); s.b_c = ctx.b->cols(); }
  s.v_r = ctx.view.rows;
  s.v_c = ctx.view.cols;
  s.i_r = ctx.in.rows;
  s.i_c = ctx.in.cols;
  s.su_r = ctx.su.rows;
  s.su_c = ctx.su.cols;
  s.sv_r = ctx.sv.rows;
  s.sv_c = ctx.sv.cols;
  return s;
}

/// Collect the operand base pointers of one batch entry that stay alive and
/// unmutated until run_batch returns — the buffers the pack cache may treat
/// as stable for the chunk. Only read-only tile operands qualify: in-out
/// targets (ctx.c, ctx.view) are mutated by the kernels, and fp32 factors
/// never reach a gemm directly (the promotion wrappers copy them into
/// per-call scratch first, which is exactly the recycled-temporary memory
/// the stable registry exists to exclude).
void note_stable_operands(const KernelCtx& ctx,
                          std::vector<const void*>& out) {
  const auto add_tile = [&out](const lr::Tile* t) {
    if (t == nullptr) return;
    if (t->is_lowrank()) {
      if (t->precision() == lr::Precision::Fp64) {
        out.push_back(t->lr().u.data());
        out.push_back(t->lr().v.data());
      }
    } else {
      out.push_back(t->dense().data());
    }
  };
  add_tile(ctx.a);
  add_tile(ctx.b);
  if (ctx.in.data != nullptr) out.push_back(ctx.in.data);
  // Solve factor views are stable by construction: they alias either a
  // factored (immutable) fp64 tile or the per-epoch fp32 widen cache, both
  // alive and unmutated for the whole batch.
  if (ctx.su.data != nullptr) out.push_back(ctx.su.data);
  if (ctx.sv.data != nullptr) out.push_back(ctx.sv.data);
}

std::uint64_t ctx_bytes(const KernelCtx& ctx) {
  std::uint64_t b = 0;
  if (ctx.a != nullptr) b += ctx.a->storage_bytes();
  if (ctx.b != nullptr) b += ctx.b->storage_bytes();
  if (ctx.c != nullptr) b += ctx.c->storage_bytes();
  if (ctx.view.data != nullptr) {
    b += static_cast<std::uint64_t>(ctx.view.rows) *
         static_cast<std::uint64_t>(ctx.view.cols) * sizeof(real_t);
  }
  if (ctx.in.data != nullptr) {
    b += static_cast<std::uint64_t>(ctx.in.rows) *
         static_cast<std::uint64_t>(ctx.in.cols) * sizeof(real_t);
  }
  return b;
}

// ---- built-in kernels ----------------------------------------------------

void k_getrf(KernelCtx& ctx) {
  if (ctx.pivot_cutoff > 0) {
    la::getrf_static(ctx.c->dense().view(), *ctx.piv, ctx.pivot_cutoff,
                     ctx.replaced);
    ctx.info = 0;
  } else {
    ctx.info = la::getrf(ctx.c->dense().view(), *ctx.piv);
  }
}

void k_potrf(KernelCtx& ctx) { ctx.info = la::potrf(ctx.c->dense().view()); }

void k_trsm_dense(KernelCtx& ctx) {
  const la::DConstView diag = ctx.diag->cview();
  la::DMatrix& d = ctx.c->dense();
  if (!ctx.upper) {
    if (ctx.llt) {
      la::trsm(la::Side::Right, la::Uplo::Lower, la::Trans::Yes,
               la::Diag::NonUnit, real_t(1), diag, d.view());
    } else {
      la::trsm(la::Side::Right, la::Uplo::Upper, la::Trans::No,
               la::Diag::NonUnit, real_t(1), diag, d.view());
    }
    return;
  }
  // U-side (LU mirror): local pivoting permutes the supernode's rows = the
  // width axis of the stored transpose, i.e. column swaps here.
  for (std::size_t j = 0; j < ctx.piv->size(); ++j) {
    const index_t p = (*ctx.piv)[j];
    if (p != static_cast<index_t>(j)) {
      for (index_t r = 0; r < d.rows(); ++r)
        std::swap(d(r, static_cast<index_t>(j)), d(r, p));
    }
  }
  la::trsm(la::Side::Right, la::Uplo::Lower, la::Trans::Yes, la::Diag::Unit,
           real_t(1), diag, d.view());
}

void k_trsm_lowrank(KernelCtx& ctx) {
  const la::DConstView diag = ctx.diag->cview();
  la::DMatrix& v = ctx.c->lr().v;
  if (!ctx.upper) {
    if (ctx.llt) {
      la::trsm(la::Side::Left, la::Uplo::Lower, la::Trans::No,
               la::Diag::NonUnit, real_t(1), diag, v.view());
    } else {
      la::trsm(la::Side::Left, la::Uplo::Upper, la::Trans::Yes,
               la::Diag::NonUnit, real_t(1), diag, v.view());
    }
    return;
  }
  // U-side: V rows carry the width axis — swap V rows, then unit-lower solve.
  for (std::size_t j = 0; j < ctx.piv->size(); ++j) {
    const index_t p = (*ctx.piv)[j];
    if (p != static_cast<index_t>(j)) {
      for (index_t r = 0; r < v.cols(); ++r)
        std::swap(v(static_cast<index_t>(j), r), v(p, r));
    }
  }
  la::trsm(la::Side::Left, la::Uplo::Lower, la::Trans::No, la::Diag::Unit,
           real_t(1), diag, v.view());
}

void k_gemm_dense(KernelCtx& ctx) {
  if (ctx.view.data != nullptr) {
    // Fused: subtract A·Bᵗ (or its transpose, B·Aᵗ) straight into the view.
    if (ctx.transpose) {
      la::gemm(la::Trans::No, la::Trans::Yes, real_t(-1),
               ctx.b->dense().cview(), ctx.a->dense().cview(), real_t(1),
               ctx.view);
    } else {
      la::gemm(la::Trans::No, la::Trans::Yes, real_t(-1),
               ctx.a->dense().cview(), ctx.b->dense().cview(), real_t(1),
               ctx.view);
    }
    return;
  }
  ctx.out = lr::ab_t_product(*ctx.a, *ctx.b, ctx.kind, ctx.tolerance,
                             ctx.need_ortho, ctx.out_cat);
}

void k_gemm_lr(KernelCtx& ctx) {
  ctx.out = lr::ab_t_product(*ctx.a, *ctx.b, ctx.kind, ctx.tolerance,
                             ctx.need_ortho, ctx.out_cat);
}

void k_lr2lr(KernelCtx& ctx) {
  lr::lr2lr_add(*ctx.c, *ctx.a, ctx.roff, ctx.coff, ctx.kind, ctx.tolerance,
                ctx.transpose);
}

void k_lr2ge(KernelCtx& ctx) {
  if (ctx.c != nullptr) {
    lr::add_contribution_dense(ctx.c->dense(), *ctx.a, ctx.roff, ctx.coff,
                               ctx.transpose);
  } else {
    lr::apply_to_dense(*ctx.a, ctx.view, ctx.transpose);
  }
}

void k_compress(KernelCtx& ctx) {
  if (ctx.warm_hint >= 0) {
    auto wr = lr::compress_warm(ctx.kind, ctx.in, ctx.tolerance, ctx.max_rank,
                                ctx.warm_hint);
    ctx.out_lr = std::move(wr.lr);
    ctx.warm_grew = wr.grew;
  } else {
    ctx.out_lr = lr::compress(ctx.kind, ctx.in, ctx.tolerance, ctx.max_rank);
  }
}

// ---- triangular-solve kernels (DESIGN.md §16) ----------------------------
//
// The solve phase routes its per-segment operations through the registry so
// they run on the packed backend engine and show up in the kernel table.
// `ctx.transpose` carries the sweep direction (false = forward, true =
// backward); `ctx.view` is the in-out RHS segment.

void k_solve_trsm(KernelCtx& ctx) {
  const la::DConstView diag = ctx.diag->cview();
  la::DView xk = ctx.view;
  if (!ctx.transpose) {
    // Forward: local pivot swaps (LU only), then the unit/non-unit lower
    // solve of L.
    if (!ctx.llt) {
      for (std::size_t j = 0; j < ctx.piv->size(); ++j) {
        const index_t p = (*ctx.piv)[j];
        if (p != static_cast<index_t>(j)) {
          for (index_t r = 0; r < xk.cols; ++r)
            std::swap(xk(static_cast<index_t>(j), r), xk(p, r));
        }
      }
      la::trsm(la::Side::Left, la::Uplo::Lower, la::Trans::No, la::Diag::Unit,
               real_t(1), diag, xk);
    } else {
      la::trsm(la::Side::Left, la::Uplo::Lower, la::Trans::No,
               la::Diag::NonUnit, real_t(1), diag, xk);
    }
    return;
  }
  // Backward: Lᵗ for Cholesky, U for LU.
  if (ctx.llt) {
    la::trsm(la::Side::Left, la::Uplo::Lower, la::Trans::Yes, la::Diag::NonUnit,
             real_t(1), diag, xk);
  } else {
    la::trsm(la::Side::Left, la::Uplo::Upper, la::Trans::No, la::Diag::NonUnit,
             real_t(1), diag, xk);
  }
}

void k_solve_gemm_dense(KernelCtx& ctx) {
  // Forward: xout -= blk·xin; backward: xout -= blkᵗ·xin.
  la::gemm(ctx.transpose ? la::Trans::Yes : la::Trans::No, la::Trans::No,
           real_t(-1), ctx.a->dense().cview(), ctx.in, real_t(1), ctx.view);
}

void k_solve_gemm_lr(KernelCtx& ctx) {
  // Two rank-sized gemvs per RHS column: tmp = svᵗ·xin, xout -= su·tmp.
  // position_solve_gemm already swapped the u/v roles for the backward
  // sweep, so both directions run the same pair; the fp32 key differs only
  // in where su/sv point (the per-epoch widen cache).
  la::DMatrix tmp(ctx.su.cols, ctx.in.cols);
  la::gemm(la::Trans::Yes, la::Trans::No, real_t(1), ctx.sv, ctx.in, real_t(0),
           tmp.view());
  la::gemm(la::Trans::No, la::Trans::No, real_t(-1), ctx.su, tmp.cview(),
           real_t(1), ctx.view);
}

// ---- fp32 promotion wrappers (DESIGN.md §10) -----------------------------
//
// Fp32 is an at-rest format only: these wrappers widen the stored factors to
// fp64, run the exact same kernels as the fp64 keys, and round in-out
// targets back down. Operand tiles may be read concurrently by other update
// tasks, so their promotion always goes through Workspace-tracked scratch
// copies; in-out targets are exclusively owned (panel solve) or held under
// their supernode's lock (extend-add), so those convert in place.

void k_trsm_lr32(KernelCtx& ctx) {
  ctx.c->promote_lowrank();
  k_trsm_lowrank(ctx);
  ctx.c->demote_lowrank();
}

void k_gemm_promote(KernelCtx& ctx) {
  lr::Tile sa, sb;
  const lr::Tile* a = ctx.a;
  const lr::Tile* b = ctx.b;
  if (a->precision() == lr::Precision::Fp32) {
    sa = lr::promote_copy(*a);
    a = &sa;
  }
  if (b->precision() == lr::Precision::Fp32) {
    sb = lr::promote_copy(*b);
    b = &sb;
  }
  ctx.out = lr::ab_t_product(*a, *b, ctx.kind, ctx.tolerance, ctx.need_ortho,
                             ctx.out_cat);
}

void k_lr2lr_c32(KernelCtx& ctx) {
  ctx.c->promote_lowrank();
  k_lr2lr(ctx);
  // Demotion is sticky: the recompressed result goes back to fp32 unless the
  // extend-add decided to fall back to dense storage.
  if (ctx.c->is_lowrank()) ctx.c->demote_lowrank();
}

} // namespace

KernelDispatch& KernelDispatch::instance() {
  static KernelDispatch d;
  return d;
}

KernelDispatch::KernelDispatch() {
  const Prec f64 = Prec::Fp64;
  const Prec f32 = Prec::Fp32;
  // Working-precision (fp64) kernels — the original 13.
  register_kernel(KernelOp::Getrf, Rep::Dense, f64, Rep::None, f64,
                  "getrf[ge]", Kernel::BlockFactorization, k_getrf);
  register_kernel(KernelOp::Potrf, Rep::Dense, f64, Rep::None, f64,
                  "potrf[ge]", Kernel::BlockFactorization, k_potrf);
  register_kernel(KernelOp::Trsm, Rep::Dense, f64, Rep::None, f64, "trsm[ge]",
                  Kernel::PanelSolve, k_trsm_dense);
  register_kernel(KernelOp::Trsm, Rep::LowRank, f64, Rep::None, f64,
                  "trsm[lr]", Kernel::PanelSolve, k_trsm_lowrank);
  register_kernel(KernelOp::Gemm, Rep::Dense, f64, Rep::Dense, f64,
                  "gemm[ge,ge]", Kernel::DenseUpdate, k_gemm_dense);
  register_kernel(KernelOp::Gemm, Rep::LowRank, f64, Rep::Dense, f64,
                  "gemm[lr,ge]", Kernel::LrProduct, k_gemm_lr);
  register_kernel(KernelOp::Gemm, Rep::Dense, f64, Rep::LowRank, f64,
                  "gemm[ge,lr]", Kernel::LrProduct, k_gemm_lr);
  register_kernel(KernelOp::Gemm, Rep::LowRank, f64, Rep::LowRank, f64,
                  "gemm[lr,lr]", Kernel::LrProduct, k_gemm_lr);
  register_kernel(KernelOp::Lr2Lr, Rep::Dense, f64, Rep::None, f64,
                  "lr2lr[ge]", Kernel::LrAddition, k_lr2lr);
  register_kernel(KernelOp::Lr2Lr, Rep::LowRank, f64, Rep::None, f64,
                  "lr2lr[lr]", Kernel::LrAddition, k_lr2lr);
  register_kernel(KernelOp::Lr2Ge, Rep::Dense, f64, Rep::None, f64,
                  "lr2ge[ge]", Kernel::DenseUpdate, k_lr2ge);
  register_kernel(KernelOp::Lr2Ge, Rep::LowRank, f64, Rep::None, f64,
                  "lr2ge[lr]", Kernel::DenseUpdate, k_lr2ge);
  register_kernel(KernelOp::Compress, Rep::Dense, f64, Rep::None, f64,
                  "compress[ge]", Kernel::Compression, k_compress);
  // Triangular-solve kernels (DESIGN.md §16). All charge the Kernel::Solve
  // stats row — the row the monolithic sweep used to time as one block — so
  // Table 2 totals keep their meaning. The lr32 key runs the same fp64 math
  // as lr: its operands are the widen-cache copies, the key only separates
  // the counter rows per at-rest precision.
  register_kernel(KernelOp::SolveTrsm, Rep::Dense, f64, Rep::None, f64,
                  "solve_trsm[ge]", Kernel::Solve, k_solve_trsm);
  register_kernel(KernelOp::SolveGemm, Rep::Dense, f64, Rep::None, f64,
                  "solve_gemm[ge]", Kernel::Solve, k_solve_gemm_dense);
  register_kernel(KernelOp::SolveGemm, Rep::LowRank, f64, Rep::None, f64,
                  "solve_gemm[lr]", Kernel::Solve, k_solve_gemm_lr);
  register_kernel(KernelOp::SolveGemm, Rep::LowRank, f32, Rep::None, f64,
                  "solve_gemm[lr32]", Kernel::Solve, k_solve_gemm_lr);
  // Mixed-precision promotion wrappers. Dense tiles are never fp32, so only
  // low-rank operand slots get Fp32 keys; the None slot of trsm/lr2lr
  // carries the target tile's precision instead.
  register_kernel(KernelOp::Trsm, Rep::LowRank, f32, Rep::None, f64,
                  "trsm[lr32]", Kernel::PanelSolve, k_trsm_lr32);
  register_kernel(KernelOp::Gemm, Rep::LowRank, f32, Rep::Dense, f64,
                  "gemm[lr32,ge]", Kernel::LrProduct, k_gemm_promote);
  register_kernel(KernelOp::Gemm, Rep::Dense, f64, Rep::LowRank, f32,
                  "gemm[ge,lr32]", Kernel::LrProduct, k_gemm_promote);
  register_kernel(KernelOp::Gemm, Rep::LowRank, f32, Rep::LowRank, f64,
                  "gemm[lr32,lr]", Kernel::LrProduct, k_gemm_promote);
  register_kernel(KernelOp::Gemm, Rep::LowRank, f64, Rep::LowRank, f32,
                  "gemm[lr,lr32]", Kernel::LrProduct, k_gemm_promote);
  register_kernel(KernelOp::Gemm, Rep::LowRank, f32, Rep::LowRank, f32,
                  "gemm[lr32,lr32]", Kernel::LrProduct, k_gemm_promote);
  register_kernel(KernelOp::Lr2Lr, Rep::Dense, f64, Rep::None, f32,
                  "lr2lr[ge,c32]", Kernel::LrAddition, k_lr2lr_c32);
  register_kernel(KernelOp::Lr2Lr, Rep::LowRank, f64, Rep::None, f32,
                  "lr2lr[lr,c32]", Kernel::LrAddition, k_lr2lr_c32);
}

void KernelDispatch::register_kernel(KernelOp op, Rep a, Prec pa, Rep b,
                                     Prec pb, const char* name, Kernel timer,
                                     KernelFn fn) {
  // Backend-agnostic kernel: the same function serves every backend (its
  // la:: calls dispatch per-backend one layer down), but each backend keeps
  // its own counter row so A/B runs report separately.
  for (int be = 0; be < kBackends; ++be) {
    register_kernel_for(static_cast<la::Backend>(be), op, a, pa, b, pb, name,
                        timer, fn);
  }
}

void KernelDispatch::register_kernel_for(la::Backend backend, KernelOp op,
                                         Rep a, Prec pa, Rep b, Prec pb,
                                         const char* name, Kernel timer,
                                         KernelFn fn) {
  Entry& e = at(backend, op, a, pa, b, pb);
  if (e.fn == nullptr) order_.push_back(&e);
  e.name = name;
  e.backend = backend;
  e.timer = timer;
  e.fn = fn;
}

bool KernelDispatch::has_kernel(la::Backend backend, KernelOp op, Rep a,
                                Prec pa, Rep b, Prec pb) const {
  return at(backend, op, a, pa, b, pb).fn != nullptr;
}

void KernelDispatch::run(KernelOp op, Rep a, Prec pa, Rep b, Prec pb,
                         KernelCtx& ctx) {
  Entry& e = at(la::current_backend(), op, a, pa, b, pb);
  if (e.fn == nullptr) {
    throw Error(std::string("no kernel registered for ") + kernel_op_name(op));
  }
  e.calls.fetch_add(1, std::memory_order_relaxed);
  e.bytes.fetch_add(ctx_bytes(ctx), std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  e.fn(ctx);
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  e.nanos.fetch_add(ns, std::memory_order_relaxed);
  KernelStats::instance().add(e.timer, ns);
}

void KernelDispatch::run_batch(KernelOp op, Rep a, Prec pa, Rep b, Prec pb,
                               KernelCtx* const* items, std::size_t count,
                               ThreadPool* pool) {
  if (count == 0) return;
  Entry& e = at(la::current_backend(), op, a, pa, b, pb);
  if (e.fn == nullptr) {
    throw Error(std::string("no kernel registered for ") + kernel_op_name(op));
  }
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < count; ++i) bytes += ctx_bytes(*items[i]);
  e.batched.fetch_add(count, std::memory_order_relaxed);
  e.batch_invocations.fetch_add(1, std::memory_order_relaxed);
  e.bytes.fetch_add(bytes, std::memory_order_relaxed);

  // Shape buckets: consecutive equal-shape runs, each further split to at
  // most `chunk_max` entries so one oversized bucket still spreads across
  // the pool. One task per chunk — not per tile.
  struct Chunk {
    std::size_t begin, end;
  };
  std::vector<Chunk> chunks;
  const std::size_t chunk_max =
      pool != nullptr
          ? std::max<std::size_t>(
                1, (count + 4 * static_cast<std::size_t>(pool->size()) - 1) /
                       (4 * static_cast<std::size_t>(pool->size())))
          : count;
  std::size_t begin = 0;
  ShapeSig sig = shape_of(*items[0]);
  for (std::size_t i = 1; i <= count; ++i) {
    const bool boundary = i == count || !(shape_of(*items[i]) == sig) ||
                          i - begin >= chunk_max;
    if (boundary) {
      chunks.push_back({begin, i});
      if (i < count) {
        begin = i;
        sig = shape_of(*items[i]);
      }
    }
  }

  // First-exception capture: a failing entry cancels the entries that have
  // not started yet; completed siblings are simply discarded by the caller.
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::atomic<bool> bad{false};
  // Per-chunk CPU time summed across the pool's threads, so the kernel's
  // `seconds` column keeps the eager meaning (total time spent inside the
  // kernel) instead of the wall time of the parallel region.
  std::atomic<std::uint64_t> batch_ns{0};
  const auto chunk_body = [&](const Chunk& ch) {
    // Content reuse in the per-thread pack cache is sound only for operands
    // the batch owns for the whole chunk — the entries' tile buffers, alive
    // and unmutated until run_batch returns. Kernel-internal heap
    // temporaries are deliberately absent from the stable set: the
    // allocator may recycle a freed temporary at the same address and shape
    // for the next entry, so a pointer+shape key alone cannot prove a
    // packed image is current.
    std::vector<const void*> stable;
    stable.reserve(4 * (ch.end - ch.begin));
    for (std::size_t i = ch.begin; i < ch.end; ++i)
      note_stable_operands(*items[i], stable);
    la::PackBatchScope pack_scope(stable.data(), stable.size());
    for (std::size_t i = ch.begin; i < ch.end; ++i) {
      if (bad.load(std::memory_order_relaxed)) return;
      try {
        e.fn(*items[i]);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        bad.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  const auto run_chunk = [&](index_t ci) {
    if (bad.load(std::memory_order_relaxed)) return;
    const auto t0 = std::chrono::steady_clock::now();
    chunk_body(chunks[static_cast<std::size_t>(ci)]);
    batch_ns.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()),
        std::memory_order_relaxed);
  };

  if (pool != nullptr && chunks.size() > 1) {
    pool->parallel_for(static_cast<index_t>(chunks.size()), run_chunk);
  } else {
    for (std::size_t ci = 0; ci < chunks.size(); ++ci)
      run_chunk(static_cast<index_t>(ci));
  }
  const std::uint64_t ns = batch_ns.load(std::memory_order_relaxed);
  e.nanos.fetch_add(ns, std::memory_order_relaxed);
  KernelStats::instance().add(e.timer, ns);
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<DispatchCount> KernelDispatch::snapshot() const {
  std::vector<DispatchCount> out;
  out.reserve(order_.size());
  for (const Entry* e : order_) {
    const std::uint64_t eager = e->calls.load(std::memory_order_relaxed);
    const std::uint64_t batched = e->batched.load(std::memory_order_relaxed);
    if (eager + batched == 0) continue;
    DispatchCount d;
    d.kernel = e->name;
    d.backend = la::backend_name(e->backend);
    // Total logical calls: a batch of N counts N, so the kernel table is
    // comparable across batching=Off/PerSupernode.
    d.calls = eager + batched;
    d.batched_calls = batched;
    d.batch_invocations =
        e->batch_invocations.load(std::memory_order_relaxed);
    d.bytes = e->bytes.load(std::memory_order_relaxed);
    d.seconds =
        static_cast<double>(e->nanos.load(std::memory_order_relaxed)) * 1e-9;
    out.push_back(std::move(d));
  }
  return out;
}

void KernelDispatch::reset_counters() {
  for (auto& backends : table_) {
    for (auto& ops : backends) {
      for (auto& reps_a : ops) {
        for (auto& precs_a : reps_a) {
          for (auto& reps_b : precs_a) {
            for (auto& e : reps_b) {
              e.calls.store(0, std::memory_order_relaxed);
              e.bytes.store(0, std::memory_order_relaxed);
              e.nanos.store(0, std::memory_order_relaxed);
              e.batched.store(0, std::memory_order_relaxed);
              e.batch_invocations.store(0, std::memory_order_relaxed);
            }
          }
        }
      }
    }
  }
}

namespace dispatch {

index_t factor_diag(lr::Tile& diag, std::vector<index_t>& piv, bool llt,
                    real_t pivot_cutoff, index_t& replaced) {
  KernelCtx ctx;
  ctx.c = &diag;
  ctx.piv = &piv;
  ctx.pivot_cutoff = pivot_cutoff;
  KernelDispatch::instance().run(llt ? KernelOp::Potrf : KernelOp::Getrf,
                                 Rep::Dense, Prec::Fp64, Rep::None,
                                 Prec::Fp64, ctx);
  replaced = ctx.replaced;
  return ctx.info;
}

void panel_solve(const lr::Tile& diag, const std::vector<index_t>& piv,
                 lr::Tile& blk, bool llt, bool upper) {
  KernelCtx ctx;
  ctx.c = &blk;
  ctx.diag = &diag.dense();
  ctx.piv = const_cast<std::vector<index_t>*>(&piv);
  ctx.llt = llt;
  ctx.upper = upper;
  KernelDispatch::instance().run(KernelOp::Trsm, rep_of(blk), prec_of(blk),
                                 Rep::None, Prec::Fp64, ctx);
}

lr::Tile product(const lr::Tile& a, const lr::Tile& b, lr::CompressionKind kind,
                 real_t tol, bool need_ortho) {
  KernelCtx ctx;
  ctx.a = &a;
  ctx.b = &b;
  ctx.kind = kind;
  ctx.tolerance = tol;
  ctx.need_ortho = need_ortho;
  ctx.out_cat = MemCategory::Workspace;
  KernelDispatch::instance().run(KernelOp::Gemm, rep_of(a), prec_of(a),
                                 rep_of(b), prec_of(b), ctx);
  return std::move(ctx.out);
}

void gemm_into(la::DView target, const lr::Tile& a, const lr::Tile& b,
               bool transpose) {
  KernelCtx ctx;
  ctx.a = &a;
  ctx.b = &b;
  ctx.view = target;
  ctx.transpose = transpose;
  KernelDispatch::instance().run(KernelOp::Gemm, Rep::Dense, Prec::Fp64,
                                 Rep::Dense, Prec::Fp64, ctx);
}

void apply_contribution(la::DView target, const lr::Tile& p, bool transpose) {
  KernelCtx ctx;
  ctx.a = &p;
  ctx.view = target;
  ctx.transpose = transpose;
  KernelDispatch::instance().run(KernelOp::Lr2Ge, rep_of(p), prec_of(p),
                                 Rep::None, Prec::Fp64, ctx);
}

void extend_add(lr::Tile& c, const lr::Tile& p, index_t roff, index_t coff,
                lr::CompressionKind kind, real_t tol, bool transpose) {
  if (c.state() == lr::TileState::Factored) {
    throw Error("extend-add into a tile that is already Factored");
  }
  KernelCtx ctx;
  ctx.c = &c;
  ctx.a = &p;
  ctx.roff = roff;
  ctx.coff = coff;
  ctx.kind = kind;
  ctx.tolerance = tol;
  ctx.transpose = transpose;
  // The None slot's precision carries the *target* tile's precision, so
  // extend-adds into fp32 tiles route to the promote/demote wrapper and get
  // their own counter row.
  KernelDispatch::instance().run(c.is_lowrank() ? KernelOp::Lr2Lr
                                                : KernelOp::Lr2Ge,
                                 rep_of(p), prec_of(p), Rep::None, prec_of(c),
                                 ctx);
}

void solve_trsm(const lr::Tile& diag, const std::vector<index_t>& piv,
                la::DView xk, bool llt, bool backward) {
  KernelCtx ctx;
  ctx.diag = &diag.dense();
  ctx.piv = const_cast<std::vector<index_t>*>(&piv);
  ctx.view = xk;
  ctx.llt = llt;
  ctx.transpose = backward;
  KernelDispatch::instance().run(KernelOp::SolveTrsm, Rep::Dense, Prec::Fp64,
                                 Rep::None, Prec::Fp64, ctx);
}

void position_solve_gemm(KernelCtx& ctx, const lr::Tile& blk, la::DConstView u,
                         la::DConstView v, la::DConstView xin, la::DView xout,
                         bool backward) {
  ctx.a = &blk;
  ctx.in = xin;
  ctx.view = xout;
  ctx.transpose = backward;
  if (blk.is_lowrank()) {
    // Forward applies u·(vᵗ·xin), backward v·(uᵗ·xin): swap the factor
    // roles here so the kernel body is direction-agnostic.
    ctx.su = backward ? v : u;
    ctx.sv = backward ? u : v;
  }
}

void solve_gemm(const lr::Tile& blk, la::DConstView u, la::DConstView v,
                la::DConstView xin, la::DView xout, bool backward) {
  KernelCtx ctx;
  position_solve_gemm(ctx, blk, u, v, xin, xout, backward);
  KernelDispatch::instance().run(KernelOp::SolveGemm, rep_of(blk),
                                 prec_of(blk), Rep::None, Prec::Fp64, ctx);
}

std::optional<lr::LrMatrix> compress(lr::CompressionKind kind, la::DConstView a,
                                     real_t tol, index_t max_rank) {
  KernelCtx ctx;
  ctx.in = a;
  ctx.kind = kind;
  ctx.tolerance = tol;
  ctx.max_rank = max_rank;
  KernelDispatch::instance().run(KernelOp::Compress, Rep::Dense, Prec::Fp64,
                                 Rep::None, Prec::Fp64, ctx);
  return std::move(ctx.out_lr);
}

std::optional<lr::LrMatrix> compress(lr::CompressionKind kind, la::DConstView a,
                                     real_t tol, index_t max_rank,
                                     index_t rank_guess, bool* grew) {
  KernelCtx ctx;
  ctx.in = a;
  ctx.kind = kind;
  ctx.tolerance = tol;
  ctx.max_rank = max_rank;
  ctx.warm_hint = rank_guess;
  KernelDispatch::instance().run(KernelOp::Compress, Rep::Dense, Prec::Fp64,
                                 Rep::None, Prec::Fp64, ctx);
  if (grew != nullptr) *grew = ctx.warm_grew;
  return std::move(ctx.out_lr);
}

} // namespace dispatch

} // namespace blr::core
