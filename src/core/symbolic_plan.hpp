#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "core/options.hpp"
#include "ordering/ordering.hpp"
#include "sparse/csc.hpp"
#include "symbolic/symbolic.hpp"

namespace blr::core {

class SolvePlan;

/// The immutable product of the analysis phase (DESIGN.md §15): ordering,
/// supernode partition and block symbolic structure for one sparse pattern,
/// shared read-only across every numeric pass over that pattern. A Solver
/// holds one by shared_ptr; a Session (and any factors it is still serving)
/// can keep the same plan alive across re-factorizations, so numeric state
/// may reference `ord`/`sf` without lifetime gymnastics.
///
/// The plan fingerprints the pattern it was built from (`n`, `nnz`,
/// `pattern_hash`): refactorize() verifies the fingerprint before reusing
/// the plan, so feeding a structurally different matrix fails loudly
/// instead of producing garbage.
struct SymbolicPlan {
  ordering::Ordering ord;        ///< fill-reducing permutation + partition
  symbolic::SymbolicFactor sf;   ///< block symbolic structure
  index_t n = 0;                 ///< pattern dimension
  index_t nnz = 0;               ///< pattern nonzero count
  std::uint64_t pattern_hash = 0;  ///< FNV-1a over colptr + rowind
  double build_seconds = 0;      ///< wall time of the analysis

  /// FNV-1a fingerprint of a sparse pattern (values ignored).
  static std::uint64_t hash_pattern(const sparse::CscMatrix& a);

  /// Run the analysis phase — nested dissection, amalgamation, supernode
  /// splitting, block symbolic factorization — under `opts` and freeze the
  /// result. Throws blr::Error for non-square or (with opts.check_pattern)
  /// pattern-asymmetric input.
  static std::shared_ptr<const SymbolicPlan> build(const sparse::CscMatrix& a,
                                                   const SolverOptions& opts);

  /// Whether `a` has exactly the pattern this plan was built from.
  [[nodiscard]] bool matches(const sparse::CscMatrix& a) const {
    return a.rows() == n && a.cols() == n && a.nnz() == nnz &&
           hash_pattern(a) == pattern_hash;
  }

  /// The triangular-solve schedule over `sf` (DESIGN.md §16), built lazily
  /// on first request and cached for the plan's lifetime — like the plan
  /// itself, it is purely symbolic, so re-factorizations and session
  /// snapshots over the same pattern all share one copy and repeated solves
  /// pay zero graph-build cost. Thread-safe. `built`, when given, reports
  /// whether this call did the build (false = cache hit).
  [[nodiscard]] std::shared_ptr<const SolvePlan> solve_plan(
      bool* built = nullptr) const;

  // Lazy solve-plan cache (public only to keep the struct an aggregate for
  // build()'s braced init — use solve_plan() above, never these directly).
  mutable std::shared_ptr<const SolvePlan> solve_plan_cache_;
  mutable std::unique_ptr<std::mutex> solve_plan_mu_ =
      std::make_unique<std::mutex>();
};

} // namespace blr::core
