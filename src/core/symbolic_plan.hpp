#pragma once

#include <cstdint>
#include <memory>

#include "core/options.hpp"
#include "ordering/ordering.hpp"
#include "sparse/csc.hpp"
#include "symbolic/symbolic.hpp"

namespace blr::core {

/// The immutable product of the analysis phase (DESIGN.md §15): ordering,
/// supernode partition and block symbolic structure for one sparse pattern,
/// shared read-only across every numeric pass over that pattern. A Solver
/// holds one by shared_ptr; a Session (and any factors it is still serving)
/// can keep the same plan alive across re-factorizations, so numeric state
/// may reference `ord`/`sf` without lifetime gymnastics.
///
/// The plan fingerprints the pattern it was built from (`n`, `nnz`,
/// `pattern_hash`): refactorize() verifies the fingerprint before reusing
/// the plan, so feeding a structurally different matrix fails loudly
/// instead of producing garbage.
struct SymbolicPlan {
  ordering::Ordering ord;        ///< fill-reducing permutation + partition
  symbolic::SymbolicFactor sf;   ///< block symbolic structure
  index_t n = 0;                 ///< pattern dimension
  index_t nnz = 0;               ///< pattern nonzero count
  std::uint64_t pattern_hash = 0;  ///< FNV-1a over colptr + rowind
  double build_seconds = 0;      ///< wall time of the analysis

  /// FNV-1a fingerprint of a sparse pattern (values ignored).
  static std::uint64_t hash_pattern(const sparse::CscMatrix& a);

  /// Run the analysis phase — nested dissection, amalgamation, supernode
  /// splitting, block symbolic factorization — under `opts` and freeze the
  /// result. Throws blr::Error for non-square or (with opts.check_pattern)
  /// pattern-asymmetric input.
  static std::shared_ptr<const SymbolicPlan> build(const sparse::CscMatrix& a,
                                                   const SolverOptions& opts);

  /// Whether `a` has exactly the pattern this plan was built from.
  [[nodiscard]] bool matches(const sparse::CscMatrix& a) const {
    return a.rows() == n && a.cols() == n && a.nnz() == nnz &&
           hash_pattern(a) == pattern_hash;
  }
};

} // namespace blr::core
