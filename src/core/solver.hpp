#pragma once

#include <iosfwd>
#include <memory>
#include <vector>

#include "common/resource_governor.hpp"
#include "common/thread_pool.hpp"
#include "core/numeric.hpp"
#include "core/options.hpp"
#include "core/refinement.hpp"
#include "core/stats.hpp"
#include "core/symbolic_plan.hpp"
#include "lowrank/buffer_pool.hpp"

namespace blr::core {

/// Public facade of the BLR supernodal solver.
///
/// Typical use:
/// ```
///   blr::core::SolverOptions opts;
///   opts.strategy = blr::core::Strategy::MinimalMemory;
///   opts.tolerance = 1e-8;
///   opts.precision = blr::core::TilePrecision::MixedTiles;  // optional fp32 LR storage
///   blr::core::Solver solver(opts);
///   solver.factorize(A);              // analyze() implied
///   solver.solve(b.data(), x.data());
///   solver.refine(A, b.data(), x.data());  // optional GMRES/CG polish
/// ```
///
/// For time-stepping / nonlinear-iteration workloads where the pattern is
/// fixed but the values change every step, call refactorize() instead of
/// factorize() from the second step on: the symbolic plan is reused as-is,
/// retired factor buffers are recycled, and each block's compression is
/// seeded with the rank the previous pass learned (verify-and-grow, so the
/// τ accuracy contract is unchanged — DESIGN.md §15).
///
/// Every configuration knob lives in SolverOptions (see options.hpp: each
/// field documents its default and which strategy reads it); measurements of
/// the last run — times, compression, per-precision kernel counters, memory
/// peaks — are in stats() and pretty-printed by print_summary().
class Solver {
public:
  explicit Solver(SolverOptions opts = {});
  ~Solver();

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Preprocessing: nested-dissection ordering, supernode splitting and
  /// block symbolic factorization, frozen into an immutable SymbolicPlan.
  /// Independent of numerical values — call once and factorize() /
  /// refactorize() repeatedly for matrices with the same pattern.
  void analyze(const sparse::CscMatrix& a);

  /// Numeric phase: assembly (+ initial compression for Minimal-Memory) and
  /// the block factorization under the configured strategy. Under
  /// TilePrecision::MixedTiles, low-rank factors below the demotion rank cap
  /// are stored in fp32 between kernels (DESIGN.md §10). A cold pass: any
  /// warm state (learned ranks, pooled buffers, cached task graph) from
  /// previous passes is discarded first.
  void factorize(const sparse::CscMatrix& a);

  /// Cheap numeric pass over a matrix with the SAME pattern analyze() saw
  /// but (typically) different values. Reuses the symbolic plan verbatim,
  /// recycles the previous factors' storage through a buffer pool, replays
  /// the cached task graph (Dataflow::Dag), and seeds each block's
  /// compression with the previously learned rank — verified at the τ bound
  /// and grown on mismatch, so accuracy is identical to a cold factorize()
  /// (DESIGN.md §15). Falls back to factorize() when analyze() has not run;
  /// throws blr::Error when the pattern fingerprint does not match.
  void refactorize(const sparse::CscMatrix& a);

  /// Direct triangular solve (b, x of length n; aliasing allowed).
  void solve(const real_t* b, real_t* x) const;
  [[nodiscard]] std::vector<real_t> solve(const std::vector<real_t>& b) const;

  /// Multi right-hand-side solve: X = A⁻¹·B (both n x nrhs).
  void solve(la::DConstView b, la::DView x) const;

  /// Polish x with the factorization-preconditioned iterative method the
  /// paper uses: CG when the factorization is LLᵗ, GMRES otherwise.
  RefinementResult refine(const sparse::CscMatrix& a, const real_t* b, real_t* x,
                          const RefinementOptions& opts = {}) const;

  /// The factorization as a preconditioner application M⁻¹.
  [[nodiscard]] Preconditioner preconditioner() const;

  [[nodiscard]] const SolverStats& stats() const { return stats_; }

  /// Human-readable one-screen summary of the last run (configuration,
  /// structure, per-phase times, memory, compression).
  void print_summary(std::ostream& os) const;

  /// Elimination schedule of the last factorize() (needs
  /// options.collect_trace). One row per supernode: cblk, worker, start, end.
  [[nodiscard]] const std::vector<TraceEvent>& trace() const;
  void write_trace_csv(const std::string& path) const;

  /// Per-worker scheduler counters accumulated by the last factorize()
  /// (empty for sequential solvers). Index = the worker id TraceEvent rows
  /// report.
  [[nodiscard]] std::vector<ThreadPool::WorkerStats> worker_stats() const {
    return pool_ ? pool_->worker_stats() : std::vector<ThreadPool::WorkerStats>{};
  }
  [[nodiscard]] const SolverOptions& options() const { return opts_; }
  /// Tasks still queued (unexecuted) in the worker pool — 0 once a run,
  /// including a resource-cancelled one, has fully drained. Exposed so
  /// tests can pin the no-task-leak guarantee of governed cancellation.
  [[nodiscard]] std::size_t pool_pending() const {
    return pool_ ? pool_->pending() : 0;
  }
  [[nodiscard]] bool analyzed() const { return plan_ != nullptr; }
  [[nodiscard]] bool factorized() const { return num_ != nullptr; }
  [[nodiscard]] bool is_llt() const { return llt_; }

  [[nodiscard]] const ordering::Ordering& ordering() const { return plan_->ord; }
  [[nodiscard]] const symbolic::SymbolicFactor& symbolic() const {
    return plan_->sf;
  }
  [[nodiscard]] const NumericFactor& numeric() const { return *num_; }

  /// The frozen analysis product (nullptr before analyze()). Shared so a
  /// Session — and any factors it is still serving — can keep the plan
  /// alive across re-analyses of this solver.
  [[nodiscard]] std::shared_ptr<const SymbolicPlan> plan() const {
    return plan_;
  }
  /// Shared ownership of the current factors (nullptr when !factorized()).
  /// A Session snapshots this before each blocked solve so a concurrent
  /// refactorize() can never destroy factors mid-solve; non-const so the
  /// last owner can retire the factors into a buffer pool.
  [[nodiscard]] std::shared_ptr<NumericFactor> numeric_shared() const {
    return num_;
  }
  /// The cross-pass buffer pool retired factor storage is recycled through.
  [[nodiscard]] lr::BufferPool& buffer_pool() { return buffers_; }
  /// Summary of the last terminal factorization failure (empty when the
  /// last numeric pass succeeded, or none ran yet).
  [[nodiscard]] const std::string& last_error() const { return last_error_; }

private:
  /// Shared body of factorize()/refactorize(): the attempt loop with both
  /// recovery ladders. `warm` enables plan/buffer/rank/task-graph reuse.
  void factorize_impl(const sparse::CscMatrix& a, bool warm);
  /// Throw a structured NumericalError (FailureKind::NotFactorized, with the
  /// last terminal failure embedded) when no successful factorization is
  /// held; `fn` names the rejected entry point.
  void require_factors(const char* fn) const;
  /// Fold one solve's execution record into stats_ (solve is const — stats
  /// capture uses the same const_cast pattern as time_solve always has).
  void note_solve(const SolveRunInfo& ri, double seconds) const;

  SolverOptions opts_;
  std::unique_ptr<ThreadPool> pool_;
  /// Dedicated solve-phase pool + its one-drain-at-a-time lock, shared with
  /// every NumericFactor this solver produces (DESIGN.md §16). Null when
  /// solve_parallel is off or the effective solve thread count is 1.
  std::shared_ptr<SolveEngine> solve_engine_;
  std::shared_ptr<const SymbolicPlan> plan_;
  std::shared_ptr<NumericFactor> num_;
  /// Enforces memory_budget_bytes / deadline_ms across every attempt of one
  /// factorize() call (armed for its whole duration, numerical retries
  /// included — the deadline covers the ladder, not each rung).
  ResourceGovernor governor_;
  SolverStats stats_;
  bool llt_ = false;

  // Warm state carried between numeric passes over one plan (DESIGN.md §15).
  RankMemory ranks_;            ///< per-block ranks learned by the last pass
  lr::BufferPool buffers_;      ///< retired factor storage for reuse
  std::unique_ptr<TaskGraph> dag_cache_;  ///< immutable task skeleton (Dag)
  std::uint64_t refactorizations_ = 0;
  /// Summary of the last terminal factorization failure (empty: none);
  /// embedded in the structured not-factorized error require_factors throws.
  std::string last_error_;
};

} // namespace blr::core

namespace blr {
using core::Batching;
using core::Dataflow;
using core::Factorization;
using core::RefinementOptions;
using core::RefinementResult;
using core::Solver;
using core::SolverOptions;
using core::SolverStats;
using core::Strategy;
using core::TilePrecision;
} // namespace blr
