#pragma once

#include <iosfwd>
#include <memory>
#include <vector>

#include "common/resource_governor.hpp"
#include "common/thread_pool.hpp"
#include "core/numeric.hpp"
#include "core/options.hpp"
#include "core/refinement.hpp"
#include "core/stats.hpp"

namespace blr::core {

/// Public facade of the BLR supernodal solver.
///
/// Typical use:
/// ```
///   blr::core::SolverOptions opts;
///   opts.strategy = blr::core::Strategy::MinimalMemory;
///   opts.tolerance = 1e-8;
///   opts.precision = blr::core::TilePrecision::MixedTiles;  // optional fp32 LR storage
///   blr::core::Solver solver(opts);
///   solver.factorize(A);              // analyze() implied
///   solver.solve(b.data(), x.data());
///   solver.refine(A, b.data(), x.data());  // optional GMRES/CG polish
/// ```
///
/// Every configuration knob lives in SolverOptions (see options.hpp: each
/// field documents its default and which strategy reads it); measurements of
/// the last run — times, compression, per-precision kernel counters, memory
/// peaks — are in stats() and pretty-printed by print_summary().
class Solver {
public:
  explicit Solver(SolverOptions opts = {});
  ~Solver();

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Preprocessing: nested-dissection ordering, supernode splitting and
  /// block symbolic factorization. Independent of numerical values — call
  /// once and factorize() repeatedly for matrices with the same pattern.
  void analyze(const sparse::CscMatrix& a);

  /// Numeric phase: assembly (+ initial compression for Minimal-Memory) and
  /// the block factorization under the configured strategy. Under
  /// TilePrecision::MixedTiles, low-rank factors below the demotion rank cap
  /// are stored in fp32 between kernels (DESIGN.md §10).
  void factorize(const sparse::CscMatrix& a);

  /// Direct triangular solve (b, x of length n; aliasing allowed).
  void solve(const real_t* b, real_t* x) const;
  [[nodiscard]] std::vector<real_t> solve(const std::vector<real_t>& b) const;

  /// Multi right-hand-side solve: X = A⁻¹·B (both n x nrhs).
  void solve(la::DConstView b, la::DView x) const;

  /// Polish x with the factorization-preconditioned iterative method the
  /// paper uses: CG when the factorization is LLᵗ, GMRES otherwise.
  RefinementResult refine(const sparse::CscMatrix& a, const real_t* b, real_t* x,
                          const RefinementOptions& opts = {}) const;

  /// The factorization as a preconditioner application M⁻¹.
  [[nodiscard]] Preconditioner preconditioner() const;

  [[nodiscard]] const SolverStats& stats() const { return stats_; }

  /// Human-readable one-screen summary of the last run (configuration,
  /// structure, per-phase times, memory, compression).
  void print_summary(std::ostream& os) const;

  /// Elimination schedule of the last factorize() (needs
  /// options.collect_trace). One row per supernode: cblk, worker, start, end.
  [[nodiscard]] const std::vector<TraceEvent>& trace() const;
  void write_trace_csv(const std::string& path) const;

  /// Per-worker scheduler counters accumulated by the last factorize()
  /// (empty for sequential solvers). Index = the worker id TraceEvent rows
  /// report.
  [[nodiscard]] std::vector<ThreadPool::WorkerStats> worker_stats() const {
    return pool_ ? pool_->worker_stats() : std::vector<ThreadPool::WorkerStats>{};
  }
  [[nodiscard]] const SolverOptions& options() const { return opts_; }
  /// Tasks still queued (unexecuted) in the worker pool — 0 once a run,
  /// including a resource-cancelled one, has fully drained. Exposed so
  /// tests can pin the no-task-leak guarantee of governed cancellation.
  [[nodiscard]] std::size_t pool_pending() const {
    return pool_ ? pool_->pending() : 0;
  }
  [[nodiscard]] bool analyzed() const { return sf_ != nullptr; }
  [[nodiscard]] bool factorized() const { return num_ != nullptr; }
  [[nodiscard]] bool is_llt() const { return llt_; }

  [[nodiscard]] const ordering::Ordering& ordering() const { return ord_; }
  [[nodiscard]] const symbolic::SymbolicFactor& symbolic() const { return *sf_; }
  [[nodiscard]] const NumericFactor& numeric() const { return *num_; }

private:
  SolverOptions opts_;
  std::unique_ptr<ThreadPool> pool_;
  ordering::Ordering ord_;
  std::unique_ptr<symbolic::SymbolicFactor> sf_;
  std::unique_ptr<NumericFactor> num_;
  /// Enforces memory_budget_bytes / deadline_ms across every attempt of one
  /// factorize() call (armed for its whole duration, numerical retries
  /// included — the deadline covers the ladder, not each rung).
  ResourceGovernor governor_;
  SolverStats stats_;
  bool llt_ = false;
};

} // namespace blr::core

namespace blr {
using core::Batching;
using core::Dataflow;
using core::Factorization;
using core::RefinementOptions;
using core::RefinementResult;
using core::Solver;
using core::SolverOptions;
using core::SolverStats;
using core::Strategy;
using core::TilePrecision;
} // namespace blr
