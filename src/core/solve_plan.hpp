#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/task_graph.hpp"
#include "symbolic/symbolic.hpp"

namespace blr {
class ThreadPool;
}

namespace blr::core {

/// The per-supernode operations of the two-sweep triangular solve
/// (DESIGN.md §16). `FwdDiag`/`BwdDiag` are the diagonal-block TRSMs (the
/// forward one applies the local pivots first); `FwdUpd`/`BwdUpd` are the
/// per-panel-block RHS updates against one off-diagonal tile.
enum class SolveTaskKind : std::uint8_t {
  FwdDiag,  ///< pivot + L (or L of LLᵗ) diagonal solve of supernode k's segment
  FwdUpd,   ///< forward update: seg(target) -= L_blok · seg(k)
  BwdUpd,   ///< backward update: seg(k) -= U_blokᵗ · seg(target)
  BwdDiag,  ///< U (or Lᵗ) diagonal solve of supernode k's segment
};

const char* solve_task_kind_name(SolveTaskKind k);

/// One node of the solve DAG. `k` is the owning supernode; `bi` is the
/// panel-block index for the update kinds (-1 for the diagonal kinds).
struct SolveTask {
  SolveTaskKind kind = SolveTaskKind::FwdDiag;
  index_t k = -1;
  index_t bi = -1;
};

/// The reusable triangular-solve schedule derived from one frozen symbolic
/// structure (DESIGN.md §16): every operation of the forward and backward
/// sweep as a task with read/write sets over the RHS row segments (one
/// address per supernode), dependencies inferred by the PR 6 canonical-order
/// machinery. Task ids are declared in the exact order the sequential sweep
/// executes them, so the write chains make any topological execution — in
/// particular the parallel pool drain — produce bits identical to the
/// sequential sweep. Purely symbolic: built once per SymbolicPlan and shared
/// by every numeric pass and session snapshot over that pattern, so repeated
/// solves pay zero graph-build cost.
class SolvePlan {
public:
  static SolvePlan build(const symbolic::SymbolicFactor& sf);

  [[nodiscard]] std::uint32_t num_tasks() const {
    return static_cast<std::uint32_t>(tasks_.size());
  }
  [[nodiscard]] const SolveTask& task(std::uint32_t id) const {
    return tasks_[id];
  }
  [[nodiscard]] std::uint64_t num_edges() const { return deps_.num_edges; }
  /// Longest dependency chain, in tasks (the depth bound on parallelism —
  /// for the forward sweep this is the elimination-tree height).
  [[nodiscard]] std::uint64_t critical_path() const { return critical_path_; }
  /// Critical-path depth of one task: the pool priority (deep tasks first).
  [[nodiscard]] std::int64_t priority(std::uint32_t id) const {
    return prio_[id];
  }
  [[nodiscard]] const DepBuilder::Deps& deps() const { return deps_; }

  /// Drain the solve DAG: sequentially in task-id order (== the legacy
  /// two-sweep order) when `pool` is null, or released to the pool as
  /// in-degrees reach zero. `body(id)` runs one task and returns false to
  /// stop the drain cooperatively.
  [[nodiscard]] DepDrainStats execute(
      ThreadPool* pool, const std::function<bool(std::uint32_t)>& body) const;

private:
  std::vector<SolveTask> tasks_;
  DepBuilder::Deps deps_;
  std::vector<std::int64_t> prio_;  ///< critical-path depth per task
  std::uint64_t critical_path_ = 0;
};

} // namespace blr::core
