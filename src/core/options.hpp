#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "linalg/backend.hpp"
#include "lowrank/compression.hpp"
#include "ordering/ordering.hpp"
#include "symbolic/amalgamation.hpp"
#include "symbolic/symbolic.hpp"

namespace blr::core {

/// The factorization scenarios: the three compared in the paper plus a
/// per-block Adaptive policy this library adds on top.
enum class Strategy {
  Dense,          ///< original PaStiX: every block dense (the baseline)
  JustInTime,     ///< Algorithm 2: compress a panel when its supernode is eliminated (LR2GE updates)
  MinimalMemory,  ///< Algorithm 1: compress A up front, maintain LR through the factorization (LR2LR updates)
  Adaptive,       ///< per-block decision: compress up front only where the
                  ///< measured rank of the assembled tile is comfortably
                  ///< below the storage-beneficial limit (LR2LR updates on
                  ///< those blocks), keep the rest dense (LR2GE updates);
                  ///< remaining dense compressible blocks are re-tried at
                  ///< elimination like Just-In-Time
};

/// Numeric factorization kind.
enum class Factorization {
  Auto,  ///< LLᵗ when the matrix says SPD, LU otherwise
  Lu,
  Llt,
};

/// Per-tile storage precision policy (DESIGN.md §10). All arithmetic always
/// runs in fp64; MixedTiles only changes how low-rank factors are *stored*
/// between kernels.
enum class TilePrecision {
  Fp64,        ///< every tile stored in working precision (bit-identical baseline)
  MixedTiles,  ///< eligible low-rank U/V factors stored in fp32 at rest;
               ///< dense tiles and diagonal (pivotal) blocks always stay fp64
};

/// Kernel batching (DESIGN.md §11). PerSupernode defers the compressions,
/// panel solves and contribution products of one supernode into a
/// KernelBatch and executes each same-(op, rep, prec) group as one batched
/// dispatch invocation, parallelized over shape-bucket chunks by the thread
/// pool; everything that mutates shared state still runs sequentially in
/// enqueue order, so results match eager execution (bit-identical
/// sequentially). Off dispatches every kernel eagerly, exactly as before
/// the batching layer existed.
enum class Batching {
  Off,
  PerSupernode,
};

/// Update scheduling. Right-looking is the paper's setup (static parallel
/// scheduler). Left-looking is the §4.3 extension: a supernode's panels are
/// allocated, assembled and updated only when it is eliminated, so the
/// Just-In-Time strategy's memory peak drops below the dense footprint
/// (sequential execution only).
enum class Scheduling {
  RightLooking,
  LeftLooking,
};

/// Execution model of the right-looking factorization (DESIGN.md §12).
/// Barrier is the classic driver: supernode eliminations synchronize at
/// panel boundaries (factor + compress + TRSM + all updates of one supernode
/// run as one task). Dag decomposes the factorization into per-tile tasks
/// (assemble, factor, compress, TRSM, update product, update apply) with
/// dependencies inferred from read/write sets over (supernode, block) tile
/// addresses and released to the pool as their in-degree reaches zero — so
/// the compression of one supernode overlaps the updates of another.
/// Update-applies into one tile are chained in the barrier's order, which
/// makes Dag results bit-identical to the sequential Barrier run at every
/// thread count. Ignored (Barrier behavior) under Scheduling::LeftLooking.
enum class Dataflow {
  Barrier,
  Dag,
};

/// Deterministic fault-injection hook: forces a specific breakdown so every
/// failure-handling path (structured reports, cooperative cancellation, the
/// recovery ladder) is exercisable in tests and under sanitizers. The
/// trigger budget is shared across copies of the options, so a recovery
/// retry sees the fault already consumed (modelling a transient failure)
/// unless max_triggers allows it to fire again.
struct FaultInjection {
  enum class Kind {
    None,             ///< injection disabled (the default)
    TinyPivot,        ///< zero the leading pivot column of `supernode`'s
                      ///< diagonal block right before its factorization
    PoisonBlock,      ///< write a NaN into `supernode`'s assembled diagonal
                      ///< block (caught by the non-finite assembly guard)
    CompressionFail,  ///< fail the `index`-th low-rank compression
    AllocFail,        ///< fail a tracked allocation with an injected
                      ///< ResourceError: at_bytes > 0 arms the MemoryTracker
                      ///< fail point (optionally filtered by alloc_category);
                      ///< at_bytes == 0 fails at `supernode`'s assembly
    ClockSkew,        ///< advance the ResourceGovernor's clock by
                      ///< skew_seconds right before `supernode`'s diagonal
                      ///< factorization, deterministically tripping the
                      ///< deadline watchdog there
  };
  Kind kind = Kind::None;
  index_t supernode = 0;  ///< target column block (TinyPivot / PoisonBlock /
                          ///< AllocFail with at_bytes == 0 / ClockSkew)
  index_t index = 0;      ///< which compression fails (CompressionFail)
  /// AllocFail: live-total threshold (bytes) at which the next tracked
  /// allocation fails; 0 targets `supernode`'s assembly instead.
  std::size_t at_bytes = 0;
  /// AllocFail with at_bytes > 0: restrict the armed fail point to one
  /// MemCategory (cast to int); -1 (default) fails whichever allocation
  /// crosses the threshold first.
  int alloc_category = -1;
  /// ClockSkew: seconds added to the governor's observed clock (default
  /// large enough to trip any test deadline).
  double skew_seconds = 1e6;
  /// Total firings allowed across all factorization attempts (< 0:
  /// unlimited). The default of 1 models a transient fault: the first
  /// attempt breaks down, a recovery retry runs clean.
  int max_triggers = 1;
  /// Trigger opportunities swallowed before the first firing (default 0).
  /// Lets a test aim the fault at the Nth numeric pass of a solver or
  /// Session: skip_triggers = 1 with max_triggers = 1 runs the first pass
  /// clean and breaks the second (e.g. a budget breach mid-refactorize).
  int skip_triggers = 0;

  [[nodiscard]] bool enabled() const { return kind != Kind::None; }

  /// Atomically claim one firing; false once max_triggers is exhausted
  /// (or while skip_triggers opportunities are still being swallowed).
  bool try_fire() const {
    if (kind == Kind::None) return false;
    if (skip_triggers > 0) {
      int s = skipped_->load(std::memory_order_relaxed);
      while (s < skip_triggers) {
        if (skipped_->compare_exchange_weak(s, s + 1, std::memory_order_relaxed))
          return false;
      }
    }
    if (max_triggers < 0) {
      fired_->fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    int cur = fired_->load(std::memory_order_relaxed);
    while (cur < max_triggers) {
      if (fired_->compare_exchange_weak(cur, cur + 1, std::memory_order_relaxed))
        return true;
    }
    return false;
  }

  [[nodiscard]] int fired() const { return fired_->load(std::memory_order_relaxed); }

private:
  /// Shared across copies so recovery attempts (which copy SolverOptions)
  /// observe the firings of earlier attempts.
  std::shared_ptr<std::atomic<int>> fired_ =
      std::make_shared<std::atomic<int>>(0);
  /// Skip budget consumed so far; shared for the same reason.
  std::shared_ptr<std::atomic<int>> skipped_ =
      std::make_shared<std::atomic<int>>(0);
};

/// One rung of the recovery ladder: the configuration change applied before
/// the next factorization attempt. Rungs are cumulative — each retry keeps
/// the changes of every earlier rung.
struct RecoveryStep {
  enum class Action {
    TightenTolerance,  ///< multiply τ by tolerance_factor (a tighter τ keeps
                       ///< more of the spectrum, curing loose-compression
                       ///< breakdowns)
    StaticPivoting,    ///< enable PaStiX-style static pivoting with
                       ///< pivot_threshold (forces LU: LLᵗ has no pivot
                       ///< replacement)
    SwitchToLu,        ///< re-factorize LLᵗ breakdowns as LU
    DenseFallback,     ///< abandon compression entirely (Strategy::Dense)
    // Resource-pressure rungs (climbed on ResourceError, not NumericalError):
    DemoteFp32,        ///< store low-rank factors fp32 at rest
                       ///< (TilePrecision::MixedTiles, ~50% off the LR part)
    LoosenTolerance,   ///< multiply τ by tolerance_factor (> 1 here: trade
                       ///< accuracy for lower ranks and smaller factors)
    SwitchToMinMem,    ///< Strategy::MinimalMemory — compress up front so the
                       ///< dense factor structure is never allocated (the
                       ///< paper's lowest-peak scenario)
  };
  Action action = Action::TightenTolerance;
  real_t tolerance_factor = 1e-2;  ///< τ multiplier (TightenTolerance < 1,
                                   ///< LoosenTolerance > 1)
  real_t pivot_threshold = 1e-8;   ///< static-pivot cutoff (StaticPivoting)
};

const char* recovery_action_name(RecoveryStep::Action a);

/// Retry ladder applied by Solver::factorize when the numeric factorization
/// throws NumericalError: each failed attempt climbs one rung, amends the
/// effective options, and re-runs. Every attempt (including the first and
/// the final outcome) is recorded in SolverStats::attempts and surfaced by
/// print_summary. An empty ladder with enabled=true uses default_ladder().
struct RecoveryPolicy {
  bool enabled = false;
  std::vector<RecoveryStep> ladder;
  /// Degradation ladder climbed on ResourceError (budget breaches only —
  /// deadline breaches never retry: no rung recovers spent wall-clock).
  /// Empty with enabled=true uses default_resource_ladder().
  std::vector<RecoveryStep> resource_ladder;

  /// tighten τ ×1e-2 → static pivoting @1e-8 (LU) → dense fallback.
  static std::vector<RecoveryStep> default_ladder();
  /// fp32 demotion → loosen τ ×1e2 → Minimal-Memory strategy. Note the τ
  /// direction: the numerical ladder *tightens* τ (keep more spectrum to
  /// cure a breakdown); the resource ladder *loosens* it (lower ranks,
  /// smaller factors) — memory pressure is an accuracy/memory dial, not a
  /// stability problem.
  static std::vector<RecoveryStep> default_resource_ladder();
};

/// Everything configurable about a solver run. Defaults reproduce the
/// paper's experimental setup (§4: split 256/128, compressible width 128,
/// minimal height 20, RRQR, τ = 1e-8).
struct SolverOptions {
  /// Compression scenario (default JustInTime): which blocks go low-rank
  /// and when. Read by the numeric engine's update policy; Dense disables
  /// compression entirely.
  Strategy strategy = Strategy::JustInTime;
  /// LU vs LLᵗ (default Auto: LLᵗ when the matrix is marked SPD). Read by
  /// every strategy.
  Factorization factorization = Factorization::Auto;
  /// Rank-revealing compression family, RRQR (default, the paper's choice)
  /// or SVD. Read by every compressing strategy.
  lr::CompressionKind kind = lr::CompressionKind::Rrqr;
  real_t tolerance = 1e-8;  ///< block compression tolerance τ (default 1e-8); read by every compressing strategy
  int threads = 1;          ///< worker threads for the numeric factorization (default 1 = sequential); read by every strategy

  /// Parallel triangular-solve phase (default on; DESIGN.md §16). Solves
  /// drain the cached SolvePlan DAG over a dedicated solve pool — with
  /// column splitting for wide multi-RHS batches — and are memcmp-identical
  /// to the sequential two-sweep at every thread count. Only takes effect
  /// when the effective solve thread count (below) is > 1; concurrent
  /// solve() calls beyond the first fall back to the sequential sweep
  /// rather than queueing.
  bool solve_parallel = true;

  /// Worker threads for the solve phase; 0 (default) inherits `threads`.
  /// The solve pool is separate from the factorization pool, so a Session
  /// can serve parallel solves while a refactorize() runs on the other
  /// pool. Read at Solver construction.
  int solve_threads = 0;
  /// Right-looking (default, the paper's setup) or left-looking traversal.
  /// Left-looking is sequential-only and mainly benefits JustInTime's
  /// memory peak (§4.3).
  Scheduling scheduling = Scheduling::RightLooking;

  /// Execution model of the right-looking driver (default Barrier, the
  /// panel-synchronous loop — bit-identical to the pre-DAG engine). Dag runs
  /// the factorization as a dependency-driven task graph over per-tile
  /// operations (DESIGN.md §12): deterministic (bit-identical to the
  /// sequential Barrier run at any thread count) and overlapping across
  /// supernodes. Read by the numeric driver; ignored under LeftLooking.
  Dataflow dataflow = Dataflow::Barrier;

  /// Per-tile storage precision (default Fp64). MixedTiles stores the U/V
  /// factors of eligible low-rank tiles in fp32 at rest — roughly halving
  /// Factors bytes on the compressed part — while all arithmetic, dense
  /// tiles and diagonal/pivotal blocks stay fp64 (DESIGN.md §10). Read by
  /// every compressing strategy (JustInTime, MinimalMemory, Adaptive);
  /// ignored by Dense.
  TilePrecision precision = TilePrecision::Fp64;

  /// Demotion rank cap under MixedTiles: a low-rank tile demotes to fp32
  /// only when its rank is at most this; < 0 (default) demotes every
  /// low-rank tile. Lets callers keep the heaviest (highest-rank) factors
  /// in fp64 while the long tail of small tiles takes the memory win.
  /// Ignored when precision == Fp64.
  index_t mixed_rank_threshold = -1;

  /// Kernel backend for the la:: BLAS layer (default Auto; DESIGN.md §14).
  /// Auto resolves through CPUID to the Native backend's best compiled-in
  /// ISA tier; Reference forces the portable loop nests (the correctness
  /// anchor); Native forces the packed engine. All backends produce
  /// bit-identical factors, so this is a pure performance/debugging dial.
  /// The BLR_BACKEND environment variable (auto|reference|native) overrides
  /// this field without recompiling or changing code. Read by factorize(),
  /// which selects the process-global backend for the whole run.
  la::BackendChoice backend = la::BackendChoice::Auto;

  /// Batched kernel execution (default Off). PerSupernode groups each
  /// supernode's same-key kernel calls (compressions, panel solves, update
  /// products) into one batched dispatch invocation per group — amortizing
  /// per-call overhead and letting the pool parallelize across the batch —
  /// with sequential results bit-identical to Off. Read by the numeric
  /// driver and every update policy.
  Batching batching = Batching::Off;

  /// Task scheduler for the parallel factorization. WorkStealing (default)
  /// runs supernode eliminations on per-worker deques with critical-path
  /// priorities and splits large trailing supernodes into panel-update
  /// subtasks; SharedQueue is the original single-queue pool, kept for A/B
  /// benchmarking.
  SchedulerKind scheduler = SchedulerKind::WorkStealing;

  /// Supernodes whose total off-diagonal panel height (rows) is at least
  /// this are updated by 1D panel-split subtasks instead of a single task,
  /// so one huge column block cannot occupy a single core while the rest of
  /// the pool idles (work-stealing scheduler only). 0 disables splitting.
  index_t panel_split_rows = 512;

  /// Nested-dissection ordering knobs (defaults follow the paper's setup);
  /// read by analyze() before any strategy runs.
  ordering::NdOptions nd;
  /// Supernode splitting (paper §4: split 256/128); read by analyze().
  symbolic::SplitOptions split;
  /// Amalgamation tuning (fill budget for merging small supernodes); read
  /// by analyze() when `amalgamate` is set.
  symbolic::AmalgamationOptions amalgamation;
  bool amalgamate = true;  ///< merge small supernodes under the fill budget (default on); read by analyze()

  /// A column block is compressible when at least this wide...
  index_t compress_min_width = 128;
  /// ...and an off-diagonal block when at least this tall.
  index_t compress_min_height = 20;

  /// Static pivoting threshold for the LU path (PaStiX-style): local pivots
  /// with magnitude below `pivot_threshold * ||A||_max` are replaced instead
  /// of aborting, and the replacement count lands in the stats. 0 disables
  /// (a tiny pivot then throws NumericalError).
  real_t pivot_threshold = 0.0;

  /// Record one (supernode, worker, start, end) event per elimination;
  /// retrieve with Solver::trace() / write_trace_csv(). Cheap but not free.
  bool collect_trace = false;

  /// Verify in analyze() that the nonzero pattern is symmetric (the
  /// solver's structural requirement, paper §1). One O(nnz) pass; disable
  /// only when the producer guarantees symmetry.
  bool check_pattern = true;

  /// Guard assembly inputs, assembled blocks and factored panels against
  /// NaN/Inf: a non-finite value raises NumericalError with a structured
  /// FailureReport instead of silently propagating to a garbage answer.
  /// One O(nnz) input pass plus one O(factor entries) panel pass — noise
  /// next to the factorization flops. Disable only in fully-trusted
  /// pipelines chasing the last percent.
  bool check_finite = true;

  /// Hard budget (bytes) on the live tracked memory of the factorization —
  /// factors, workspace, everything the MemoryTracker sees. 0 (default)
  /// means ungoverned. A tracked allocation that would push the live total
  /// past the budget fails softly with blr::ResourceError carrying a
  /// structured ResourceReport; with recovery enabled the resource ladder
  /// (fp32 demotion → loosen τ → Minimal-Memory) retries before the error
  /// surfaces. The recorded peak never exceeds the budget (DESIGN.md §13).
  std::size_t memory_budget_bytes = 0;

  /// Wall-clock deadline (milliseconds) on factorize(), spanning every
  /// recovery attempt. 0 (default) means none. Enforced by an epoch-checked
  /// watchdog polled from the numeric hot loops: on expiry the run cancels
  /// cooperatively (the task DAG drains without leaks) and factorize throws
  /// blr::ResourceError — deadline breaches are terminal, never retried.
  double deadline_ms = 0;

  /// Deterministic fault injection for testing breakdown handling.
  FaultInjection fault;

  /// Automatic retry ladders on numerical breakdown and resource pressure
  /// (disabled by default).
  RecoveryPolicy recovery;

  /// LUAR-style update accumulation for the Minimal-Memory scenario (the
  /// aggregation of small contributions the paper's conclusion proposes):
  /// low-rank contributions to a low-rank target are appended to a
  /// per-block accumulator and recompressed in one extend-add when the
  /// accumulated rank reaches `accumulate_max_rank` (or at the target's
  /// elimination), instead of paying one Θ(m_C·…) recompression per update.
  bool accumulate_updates = false;
  /// Accumulated-rank flush threshold for `accumulate_updates` (default 32);
  /// read by MinimalMemory/Adaptive when accumulation is on.
  index_t accumulate_max_rank = 32;

  /// Strategy::Adaptive keeps an assembled tile low-rank only when its rank
  /// at tolerance τ is at most this fraction of the storage-beneficial
  /// limit (r·(m+n) < m·n). Blocks whose measured compression ratio is
  /// marginal stay dense — avoiding the LR2LR densify-fallback churn — and
  /// get one more chance at elimination time.
  real_t adaptive_rank_fraction = 0.5;

  /// Seed each re-factorization compression with the rank the previous
  /// numeric pass learned for the same block (DESIGN.md §15). Warm guesses
  /// are verify-and-grow: every warm path still checks the τ bound and
  /// falls back to the full-cap search when the guess is too small, so the
  /// accuracy contract is identical to a cold factorize(). Read by
  /// refactorize(); cold factorize() calls never use hints.
  bool warm_start = true;

  /// Headroom added to each replayed rank guess before capping, absorbing
  /// small rank growth between passes without triggering the grow fallback.
  index_t warm_rank_slack = 8;

  /// Skip the compression attempt on blocks the previous pass proved dense
  /// (dense storage is exact, so skipping cannot change the answer). Read
  /// by refactorize() when `warm_start` is set.
  bool warm_dense_skip = true;

  /// Recycle retired factor buffers through a per-solver pool across
  /// refactorize() calls instead of freeing and re-allocating them. Fixed
  /// patterns request the same block sizes every pass, so steady-state
  /// passes allocate almost nothing. Pooled bytes stay visible to the
  /// MemoryTracker (and any governor budget) as workspace.
  bool reuse_buffers = true;

  /// Largest number of queued single-RHS solve requests a Session coalesces
  /// into one blocked multi-RHS solve (DESIGN.md §15). Each column of the
  /// blocked solve is bit-identical to the corresponding single-RHS solve,
  /// so coalescing never changes results.
  index_t session_max_batch = 128;
};

const char* strategy_name(Strategy s);
const char* kind_name(lr::CompressionKind k);
const char* precision_name(TilePrecision p);
const char* batching_name(Batching b);
const char* dataflow_name(Dataflow d);

} // namespace blr::core
