#pragma once

#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "lowrank/compression.hpp"
#include "ordering/ordering.hpp"
#include "symbolic/amalgamation.hpp"
#include "symbolic/symbolic.hpp"

namespace blr::core {

/// The three factorization scenarios compared in the paper.
enum class Strategy {
  Dense,          ///< original PaStiX: every block dense (the baseline)
  JustInTime,     ///< Algorithm 2: compress a panel when its supernode is eliminated (LR2GE updates)
  MinimalMemory,  ///< Algorithm 1: compress A up front, maintain LR through the factorization (LR2LR updates)
};

/// Numeric factorization kind.
enum class Factorization {
  Auto,  ///< LLᵗ when the matrix says SPD, LU otherwise
  Lu,
  Llt,
};

/// Update scheduling. Right-looking is the paper's setup (static parallel
/// scheduler). Left-looking is the §4.3 extension: a supernode's panels are
/// allocated, assembled and updated only when it is eliminated, so the
/// Just-In-Time strategy's memory peak drops below the dense footprint
/// (sequential execution only).
enum class Scheduling {
  RightLooking,
  LeftLooking,
};

/// Everything configurable about a solver run. Defaults reproduce the
/// paper's experimental setup (§4: split 256/128, compressible width 128,
/// minimal height 20, RRQR, τ = 1e-8).
struct SolverOptions {
  Strategy strategy = Strategy::JustInTime;
  Factorization factorization = Factorization::Auto;
  lr::CompressionKind kind = lr::CompressionKind::Rrqr;
  real_t tolerance = 1e-8;  ///< block compression tolerance τ
  int threads = 1;          ///< worker threads for the numeric factorization
  Scheduling scheduling = Scheduling::RightLooking;

  /// Task scheduler for the parallel factorization. WorkStealing (default)
  /// runs supernode eliminations on per-worker deques with critical-path
  /// priorities and splits large trailing supernodes into panel-update
  /// subtasks; SharedQueue is the original single-queue pool, kept for A/B
  /// benchmarking.
  SchedulerKind scheduler = SchedulerKind::WorkStealing;

  /// Supernodes whose total off-diagonal panel height (rows) is at least
  /// this are updated by 1D panel-split subtasks instead of a single task,
  /// so one huge column block cannot occupy a single core while the rest of
  /// the pool idles (work-stealing scheduler only). 0 disables splitting.
  index_t panel_split_rows = 512;

  ordering::NdOptions nd;
  symbolic::SplitOptions split;
  symbolic::AmalgamationOptions amalgamation;
  bool amalgamate = true;  ///< merge small supernodes under the frat budget

  /// A column block is compressible when at least this wide...
  index_t compress_min_width = 128;
  /// ...and an off-diagonal block when at least this tall.
  index_t compress_min_height = 20;

  /// Static pivoting threshold for the LU path (PaStiX-style): local pivots
  /// with magnitude below `pivot_threshold * ||A||_max` are replaced instead
  /// of aborting, and the replacement count lands in the stats. 0 disables
  /// (a tiny pivot then throws NumericalError).
  real_t pivot_threshold = 0.0;

  /// Record one (supernode, worker, start, end) event per elimination;
  /// retrieve with Solver::trace() / write_trace_csv(). Cheap but not free.
  bool collect_trace = false;

  /// Verify in analyze() that the nonzero pattern is symmetric (the
  /// solver's structural requirement, paper §1). One O(nnz) pass; disable
  /// only when the producer guarantees symmetry.
  bool check_pattern = true;

  /// LUAR-style update accumulation for the Minimal-Memory scenario (the
  /// aggregation of small contributions the paper's conclusion proposes):
  /// low-rank contributions to a low-rank target are appended to a
  /// per-block accumulator and recompressed in one extend-add when the
  /// accumulated rank reaches `accumulate_max_rank` (or at the target's
  /// elimination), instead of paying one Θ(m_C·…) recompression per update.
  bool accumulate_updates = false;
  index_t accumulate_max_rank = 32;
};

const char* strategy_name(Strategy s);
const char* kind_name(lr::CompressionKind k);

} // namespace blr::core
