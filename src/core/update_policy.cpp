#include "core/update_policy.hpp"

#include "core/kernel_batch.hpp"
#include "core/kernels_dispatch.hpp"

namespace blr::core {

namespace {

/// DESIGN.md §10: round a freshly compressed tile's U/V factors to fp32
/// at-rest storage when mixed precision is on and the rank is under the
/// cap. Every compression site (assembly or elimination, all strategies)
/// funnels through this, so the demotion decision lives in one place.
void maybe_demote(lr::Tile& t, const PolicyContext& ctx) {
  if (ctx.precision != TilePrecision::MixedTiles || !t.is_lowrank()) return;
  if (ctx.mixed_rank_threshold >= 0 && t.rank() > ctx.mixed_rank_threshold)
    return;
  t.demote_lowrank();
}

/// The replayed rank for this site (RankMemory::kUnknown when cold or the
/// site carries no record).
index_t warm_hint_for(const PolicyContext& ctx, index_t k, BlockSite site) {
  if (ctx.warm == nullptr || site.blok < 0) return RankMemory::kUnknown;
  return ctx.warm->hint(k, site.upper, site.blok);
}

/// True when the site should skip compression outright because the previous
/// pass proved the block incompressible (dense is exact, so this can only
/// save work, never accuracy). Counted per event.
bool warm_skip_dense(const PolicyContext& ctx, index_t hint) {
  if (hint != RankMemory::kDense || !ctx.warm_dense_skip) return false;
  if (ctx.warm_counters != nullptr)
    ctx.warm_counters->dense_skips.fetch_add(1, std::memory_order_relaxed);
  return true;
}

/// Turn a replayed rank into the guess handed to compress_warm: the learned
/// rank plus slack, clamped to the cap. Returns -1 (cold) when no usable
/// record exists. Counts the attempt.
index_t warm_guess(const PolicyContext& ctx, index_t hint, index_t cap) {
  if (hint < 0) return -1;
  if (ctx.warm_counters != nullptr)
    ctx.warm_counters->attempts.fetch_add(1, std::memory_order_relaxed);
  return std::min(cap, hint + ctx.warm_slack);
}

/// Record the warm outcome once the kernel reports whether it had to grow.
void warm_outcome(WarmCounters* counters, bool grew) {
  if (counters == nullptr) return;
  (grew ? counters->grows : counters->hits).fetch_add(1, std::memory_order_relaxed);
}

/// compress routed warm or cold depending on `guess` (counted either way by
/// the dispatch registry).
std::optional<lr::LrMatrix> compress_site(const PolicyContext& ctx,
                                          la::DConstView a, index_t cap,
                                          index_t guess) {
  if (guess < 0) return dispatch::compress(ctx.kind, a, ctx.tolerance, cap);
  bool grew = false;
  auto out = dispatch::compress(ctx.kind, a, ctx.tolerance, cap, guess, &grew);
  warm_outcome(ctx.warm_counters, grew);
  return out;
}

} // namespace

lr::Tile UpdatePolicy::assemble(index_t k, BlockSite site, la::DMatrix scratch,
                                bool compressible, const PolicyContext& ctx,
                                lr::TileArena& arena) const {
  (void)k;
  (void)site;
  (void)compressible;
  (void)ctx;
  return lr::Tile::from_dense(std::move(scratch), arena);
}

void UpdatePolicy::at_elimination(index_t k, BlockSite site, lr::Tile& t,
                                  bool compressible, const PolicyContext& ctx,
                                  KernelBatch* batch) const {
  if (t.is_lowrank() || !compressible) return;
  const index_t hint = warm_hint_for(ctx, k, site);
  if (warm_skip_dense(ctx, hint)) return;
  if (ctx.compression_site) ctx.compression_site(k);
  const index_t limit = lr::beneficial_rank_limit(t.rows(), t.cols());
  const index_t guess = warm_guess(ctx, hint, limit);
  if (batch) {
    // Defer the compression to the panel's batch boundary. The completion
    // (run sequentially, in enqueue order) installs the result exactly as
    // the eager path below does; ctx is captured by value because the
    // PolicyContext may not outlive execute().
    KernelCtx& kc = batch->enqueue(
        KernelOp::Compress, Rep::Dense, Prec::Fp64, Rep::None, Prec::Fp64,
        [&t, precision = ctx.precision,
         mixed_rank_threshold = ctx.mixed_rank_threshold,
         counters = ctx.warm_counters](KernelCtx& done) {
          if (done.warm_hint >= 0) warm_outcome(counters, done.warm_grew);
          if (!done.out_lr) return;
          t.set_lowrank(std::move(*done.out_lr));
          t.advance(lr::TileState::Compressed);
          PolicyContext demote_ctx;
          demote_ctx.precision = precision;
          demote_ctx.mixed_rank_threshold = mixed_rank_threshold;
          maybe_demote(t, demote_ctx);
        });
    kc.in = t.dense().cview();
    kc.kind = ctx.kind;
    kc.tolerance = ctx.tolerance;
    kc.max_rank = limit;
    kc.warm_hint = guess;
    return;
  }
  auto lrm = compress_site(ctx, t.dense().cview(), limit, guess);
  if (lrm) {
    t.set_lowrank(std::move(*lrm));
    t.advance(lr::TileState::Compressed);
    maybe_demote(t, ctx);
  }
}

namespace {

/// Baseline: every block dense, no compression anywhere.
class DensePolicy final : public UpdatePolicy {
public:
  [[nodiscard]] Strategy strategy() const override { return Strategy::Dense; }
  [[nodiscard]] const char* name() const override { return "Dense"; }
  void at_elimination(index_t, BlockSite, lr::Tile&, bool,
                      const PolicyContext&, KernelBatch*) const override {}
};

/// Algorithm 2: assemble dense, compress when the supernode is eliminated.
/// Updates flow through LR2GE (no orthonormality requirement).
class JustInTimePolicy final : public UpdatePolicy {
public:
  [[nodiscard]] Strategy strategy() const override {
    return Strategy::JustInTime;
  }
  [[nodiscard]] const char* name() const override { return "JustInTime"; }
};

/// Algorithm 1: compress compressible blocks at assembly and keep them
/// low-rank through the factorization (LR2LR extend-adds, which require
/// orthonormal U on every contribution). The elimination hook re-attempts
/// blocks that fell back to dense when an extend-add transiently exceeded
/// the storage-beneficial rank.
class MinimalMemoryPolicy final : public UpdatePolicy {
public:
  [[nodiscard]] Strategy strategy() const override {
    return Strategy::MinimalMemory;
  }
  [[nodiscard]] const char* name() const override { return "MinimalMemory"; }

  [[nodiscard]] lr::Tile assemble(index_t k, BlockSite site, la::DMatrix scratch,
                                  bool compressible, const PolicyContext& ctx,
                                  lr::TileArena& arena) const override {
    if (!compressible) return lr::Tile::from_dense(std::move(scratch), arena);
    const index_t hint = warm_hint_for(ctx, k, site);
    if (warm_skip_dense(ctx, hint))
      return lr::Tile::from_dense(std::move(scratch), arena);
    if (ctx.compression_site) ctx.compression_site(k);
    const index_t limit =
        lr::beneficial_rank_limit(scratch.rows(), scratch.cols());
    auto lrm = compress_site(ctx, scratch.cview(), limit,
                             warm_guess(ctx, hint, limit));
    if (lrm) {
      lr::Tile t = lr::Tile::make_lowrank(scratch.rows(), scratch.cols(),
                                          std::move(*lrm), arena);
      maybe_demote(t, ctx);
      return t;
    }
    return lr::Tile::from_dense(std::move(scratch), arena);
  }

  [[nodiscard]] bool need_ortho(bool) const override { return true; }
};

/// Per-block decision: compress at assembly only when the measured rank is
/// comfortably below the storage-beneficial limit (within
/// adaptive_rank_fraction of it); marginal blocks stay dense, skipping the
/// LR2LR densify-fallback churn, and get the Just-In-Time treatment at
/// elimination instead. Contributions need an orthonormal U only when their
/// target was assembled low-rank (an LR2LR destination).
class AdaptivePolicy final : public UpdatePolicy {
public:
  [[nodiscard]] Strategy strategy() const override {
    return Strategy::Adaptive;
  }
  [[nodiscard]] const char* name() const override { return "Adaptive"; }

  [[nodiscard]] lr::Tile assemble(index_t k, BlockSite site, la::DMatrix scratch,
                                  bool compressible, const PolicyContext& ctx,
                                  lr::TileArena& arena) const override {
    const index_t limit =
        lr::beneficial_rank_limit(scratch.rows(), scratch.cols());
    const index_t cap = static_cast<index_t>(
        static_cast<real_t>(limit) * ctx.adaptive_rank_fraction);
    if (!compressible || cap < 1) {
      return lr::Tile::from_dense(std::move(scratch), arena);
    }
    const index_t hint = warm_hint_for(ctx, k, site);
    if (warm_skip_dense(ctx, hint))
      return lr::Tile::from_dense(std::move(scratch), arena);
    if (ctx.compression_site) ctx.compression_site(k);
    auto lrm = compress_site(ctx, scratch.cview(), cap,
                             warm_guess(ctx, hint, cap));
    if (lrm) {
      lr::Tile t = lr::Tile::make_lowrank(scratch.rows(), scratch.cols(),
                                          std::move(*lrm), arena);
      maybe_demote(t, ctx);
      return t;
    }
    return lr::Tile::from_dense(std::move(scratch), arena);
  }

  [[nodiscard]] bool need_ortho(bool target_assembled_lowrank) const override {
    return target_assembled_lowrank;
  }
};

} // namespace

std::unique_ptr<UpdatePolicy> make_update_policy(const SolverOptions& opts) {
  switch (opts.strategy) {
    case Strategy::Dense: return std::make_unique<DensePolicy>();
    case Strategy::JustInTime: return std::make_unique<JustInTimePolicy>();
    case Strategy::MinimalMemory:
      return std::make_unique<MinimalMemoryPolicy>();
    case Strategy::Adaptive: return std::make_unique<AdaptivePolicy>();
  }
  return std::make_unique<JustInTimePolicy>();
}

} // namespace blr::core
