#pragma once

#include <functional>
#include <vector>

#include "sparse/csc.hpp"

namespace blr::core {

/// Application of a preconditioner: out = M⁻¹·in (both length n).
using Preconditioner = std::function<void(const real_t*, real_t*)>;

/// Result of an iterative run: per-iteration backward errors
/// ‖A·x − b‖₂/‖b‖₂ (index 0 = after the initial solve), as Figure 8 plots.
struct RefinementResult {
  std::vector<real_t> history;
  index_t iterations = 0;
  bool converged = false;
  /// The iteration was abandoned early: the residual went non-finite or
  /// grew far past the best value seen (a diverging preconditioner/matrix
  /// pair). Stagnation (no progress over a window) stops the iteration with
  /// converged == false but diverged == false.
  bool diverged = false;

  [[nodiscard]] real_t final_error() const {
    return history.empty() ? real_t(1) : history.back();
  }
};

struct RefinementOptions {
  index_t max_iterations = 20;
  real_t target = 1e-12;   ///< stop when the backward error drops below this
  index_t gmres_restart = 30;
  /// Abandon (diverged = true) when the error exceeds divergence_factor x
  /// the best error seen so far, or is NaN/Inf. 0 disables the check.
  real_t divergence_factor = 1e4;
  /// Abandon (converged = false) after this many consecutive iterations
  /// without improving on the best error. 0 disables the check.
  index_t stagnation_window = 8;
};

/// Classical iterative refinement: x ← x + M⁻¹(b − A·x).
RefinementResult iterative_refinement(const sparse::CscMatrix& a,
                                      const Preconditioner& m, const real_t* b,
                                      real_t* x, const RefinementOptions& opts = {});

/// Right-preconditioned restarted GMRES (general matrices, Figure 8).
/// x must hold an initial guess (typically M⁻¹·b).
RefinementResult gmres(const sparse::CscMatrix& a, const Preconditioner& m,
                       const real_t* b, real_t* x,
                       const RefinementOptions& opts = {});

/// Preconditioned conjugate gradient (SPD matrices, Figure 8).
RefinementResult conjugate_gradient(const sparse::CscMatrix& a,
                                    const Preconditioner& m, const real_t* b,
                                    real_t* x, const RefinementOptions& opts = {});

} // namespace blr::core
