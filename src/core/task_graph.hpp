#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "symbolic/symbolic.hpp"

namespace blr::core {

/// The tile operations of one dataflow factorization (DESIGN.md §12). Every
/// task addresses the tiles it touches through the (supernode, block)
/// addresses below; the dependency structure is *inferred* from those
/// read/write sets, never hand-wired.
enum class DagTaskKind : std::uint8_t {
  Assemble,  ///< gather one supernode's initial values into its tiles
  Factor,    ///< diagonal-block factorization (getrf/potrf) of one supernode
  Compress,  ///< elimination-time policy hook (LUAR flush + JIT compression) on one panel tile
  Trsm,      ///< panel solve of one off-diagonal tile against the factored diagonal
  Product,   ///< contribution product P = A·Bᵗ of one (row blok, col blok) pair
  Apply,     ///< extend-add / LUAR append of one formed contribution into its target tile
};

const char* dag_task_kind_name(DagTaskKind k);

/// One node of the task DAG. The meaning of the index fields depends on the
/// kind: `k` is always the owning supernode (the *source* supernode for
/// Product/Apply); `bi` is the panel blok for Compress/Trsm and the row blok
/// for Product/Apply; `bj` is the col blok for Product/Apply; `upper` selects
/// the U panel (LU only) for Compress/Trsm. `slot` links a Product to its
/// Apply: both carry the ordinal of their update, indexing the runtime slot
/// the product result is handed through.
struct DagTask {
  DagTaskKind kind = DagTaskKind::Assemble;
  index_t k = -1;
  index_t bi = -1;
  index_t bj = -1;
  bool upper = false;
  std::uint32_t slot = 0;
};

/// Generic read/write-set dependency inference. Tasks are declared in the
/// canonical sequential order (the exact order the barrier driver executes
/// operations) and declare which addresses they read and write; infer() turns
/// the access lists into explicit edges:
///
///   - a Read depends on the last Write of the address;
///   - a Write depends on every Read since the last Write (or on the last
///     Write when nothing read in between) — so writers to one address form
///     a chain in declaration order.
///
/// Because declaration order is the sequential execution order, the inferred
/// DAG is acyclic by construction (every edge points forward), and the
/// write-chain rule makes every address's value history identical under any
/// topological execution order — the determinism property the `dag` tests
/// memcmp. Explicit edge() calls add dependencies that flow through private
/// data instead of a shared address (e.g. Product → Apply).
class DepBuilder {
public:
  /// Pre-size the internal vectors (optional; exact counts avoid regrowth).
  void reserve(std::uint64_t num_tasks, std::uint64_t num_accesses) {
    (void)num_tasks;
    accesses_.reserve(num_accesses);
  }

  /// Declare the next task; returns its id (== its canonical sequence
  /// number: ids ascend in declaration order).
  std::uint32_t add_task();

  /// Declare that `task` reads / writes `addr`. Accesses must be declared in
  /// task order (infer() throws otherwise).
  void read(std::uint32_t task, std::uint64_t addr);
  void write(std::uint32_t task, std::uint64_t addr);

  /// Explicit forward dependency `from` → `to` (from < to required).
  void edge(std::uint32_t from, std::uint32_t to);

  /// Inferred dependency structure: CSR successor lists plus in-degrees.
  struct Deps {
    std::vector<std::uint32_t> succ_offset;  ///< size ntasks + 1
    std::vector<std::uint32_t> succ;         ///< deduplicated, ascending per task
    std::vector<std::int32_t> indeg;         ///< incoming edge count per task
    std::uint64_t num_edges = 0;
  };
  [[nodiscard]] Deps infer() const;

  [[nodiscard]] std::uint32_t num_tasks() const { return ntasks_; }

private:
  struct Access {
    std::uint64_t addr;
    std::uint32_t task;
    bool is_write;
  };
  std::uint32_t ntasks_ = 0;
  std::vector<Access> accesses_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> extra_;
};

/// Result of one drain_deps() run.
struct DepDrainStats {
  std::uint64_t executed = 0;    ///< tasks whose body ran
  std::uint64_t ready_peak = 0;  ///< max tasks released but not yet started
};

/// Drain any inferred dependency structure. `body(id)` runs one task and
/// returns false to stop the drain cooperatively (its successors — and,
/// transitively, everything they gate — are never released). With a pool,
/// ready tasks are submitted with `priority(id)` and completed tasks release
/// their successors from the worker; the drain blocks on pool->wait_idle(),
/// so the pool must not be shared with another concurrent drain. Without a
/// pool, the lowest-id ready task always runs next — exactly the canonical
/// declaration (sequential) order. Shared by TaskGraph (factorization) and
/// SolvePlan (triangular solve).
DepDrainStats drain_deps(
    const DepBuilder::Deps& deps, ThreadPool* pool,
    const std::function<bool(std::uint32_t)>& body,
    const std::function<std::int64_t(std::uint32_t)>& priority);

/// Runtime-checked buffer hand-off between DAG tasks: one monotonically
/// increasing epoch per tile address, mirroring the Tile state machine
/// (Unassembled → Assembled → [Compressed] → Factored) at the scheduling
/// layer. Each task asserts the epoch its inputs must have reached
/// (expect()) and publishes its own completion (advance(), a CAS so a
/// double-run or out-of-order run of a writer is caught, not absorbed).
/// A violation means the inferred dependencies failed to order two tasks —
/// the contract the `dag` tests pin — and throws blr::Error.
class EpochGate {
public:
  // Epoch values. The diagonal address skips Eliminating (Factor advances it
  // Assembled → Factored); panel addresses pass through all four.
  static constexpr std::uint8_t kUnassembled = 0;
  static constexpr std::uint8_t kAssembled = 1;   ///< updates may land
  static constexpr std::uint8_t kEliminating = 2; ///< compress stage done
  static constexpr std::uint8_t kFactored = 3;    ///< immutable from here on

  EpochGate() = default;
  explicit EpochGate(std::uint64_t num_addrs);

  /// Throws unless the address has reached exactly `want` (acquire).
  void expect(std::uint64_t addr, std::uint8_t want) const;
  /// CAS `from` → `to` (release); throws when the address was not at `from`.
  void advance(std::uint64_t addr, std::uint8_t from, std::uint8_t to);

  [[nodiscard]] std::uint8_t load(std::uint64_t addr) const {
    return ep_[addr].load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t size() const { return n_; }

private:
  std::unique_ptr<std::atomic<std::uint8_t>[]> ep_;
  std::uint64_t n_ = 0;
};

/// The dependency-driven factorization schedule (DESIGN.md §12): every tile
/// operation of the supernodal BLR factorization as a DagTask, with edges
/// inferred from read/write sets over (supernode, block) tile addresses.
/// Task ids are canonical sequence numbers — the exact order the barrier
/// driver executes the same operations — so the sequential executor (run the
/// lowest-id ready task) reproduces the barrier result bit for bit, and the
/// per-address write chains make any parallel execution produce the same
/// bits as well.
class TaskGraph {
public:
  /// Build the DAG for one symbolic structure. The graph is purely symbolic:
  /// it can be built (and unit-tested) without any numeric state.
  static TaskGraph build(const symbolic::SymbolicFactor& sf, bool llt);

  [[nodiscard]] std::uint32_t num_tasks() const {
    return static_cast<std::uint32_t>(tasks_.size());
  }
  [[nodiscard]] const DagTask& task(std::uint32_t id) const {
    return tasks_[id];
  }
  [[nodiscard]] std::uint64_t num_edges() const { return deps_.num_edges; }
  [[nodiscard]] std::int32_t indegree(std::uint32_t id) const {
    return deps_.indeg[id];
  }
  /// Successor ids of `id` (begin/end pointers into the CSR array).
  [[nodiscard]] std::pair<const std::uint32_t*, const std::uint32_t*>
  successors(std::uint32_t id) const {
    return {deps_.succ.data() + deps_.succ_offset[id],
            deps_.succ.data() + deps_.succ_offset[id + 1]};
  }
  /// Longest dependency chain, in tasks (the depth bound on parallelism).
  [[nodiscard]] std::uint64_t critical_path() const { return critical_path_; }
  /// Product/Apply pairs (the size of the product hand-off slot table).
  [[nodiscard]] std::uint32_t num_updates() const { return nupdates_; }

  // ---- tile addresses -------------------------------------------------
  [[nodiscard]] std::uint64_t num_addrs() const { return naddrs_; }
  [[nodiscard]] std::uint64_t diag_addr(index_t k) const {
    return addr_base_[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::uint64_t panel_addr(index_t k, bool upper,
                                         index_t blok) const {
    const std::uint64_t nb = addr_base_[static_cast<std::size_t>(k) + 1] -
                             addr_base_[static_cast<std::size_t>(k)] - 1;
    return addr_base_[static_cast<std::size_t>(k)] + 1 +
           (upper ? nb / 2 : 0) + static_cast<std::uint64_t>(blok);
  }

  // ---- execution ------------------------------------------------------

  struct RunStats {
    std::uint64_t executed = 0;    ///< tasks whose body ran
    std::uint64_t ready_peak = 0;  ///< max tasks released but not yet started
  };

  /// Execute the graph. `body(id)` runs one task and returns false to stop
  /// the run cooperatively (its successors — and, transitively, everything
  /// they gate — are never released; tasks already released may still run).
  /// With a pool, ready tasks are submitted with `priority(id)` and
  /// completed tasks release their successors from the worker; without one,
  /// the lowest-id ready task always runs next, which is exactly the
  /// canonical (barrier) sequential order.
  RunStats execute(ThreadPool* pool,
                   const std::function<bool(std::uint32_t)>& body,
                   const std::function<std::int64_t(std::uint32_t)>& priority) const;

  /// The factorization flavor this graph was built for. A cached skeleton
  /// (SymbolicPlan reuse across re-factorizations) is only valid while the
  /// effective factorization matches — LU doubles the panel address space.
  [[nodiscard]] bool llt() const { return llt_; }

private:
  std::vector<DagTask> tasks_;
  DepBuilder::Deps deps_;
  std::vector<std::uint64_t> addr_base_;  ///< per-cblk address base, +1 sentinel
  std::uint64_t naddrs_ = 0;
  std::uint32_t nupdates_ = 0;
  std::uint64_t critical_path_ = 0;
  bool llt_ = false;
};

} // namespace blr::core
