#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace blr::core {

/// One row of the kernel-dispatch registry snapshot: how often a concrete
/// (operation × operand representations) kernel ran in the last
/// factorization, how many operand bytes it touched, and its wall time.
struct DispatchCount {
  std::string kernel;       ///< e.g. "gemm[lr,ge]", "getrf[ge]"
  std::string backend;      ///< la::Backend the calls ran under ("reference"/"native")
  /// Total logical calls, eager + batched: a batch of N counts N here, so
  /// the kernel table is comparable across batching=Off/PerSupernode.
  std::uint64_t calls = 0;
  /// Of `calls`, how many ran inside batched invocations (0 under
  /// batching=Off).
  std::uint64_t batched_calls = 0;
  /// Batched dispatch invocations: one per run_batch() group, so
  /// batched_calls / batch_invocations is this kernel's mean batch size.
  std::uint64_t batch_invocations = 0;
  std::uint64_t bytes = 0;  ///< operand + destination storage touched
  double seconds = 0;
};

/// Aggregate batched-execution counters of one factorization run (surfaced
/// as SolverStats::batch and in the bench JSON; DESIGN.md §11).
struct BatchExecStats {
  std::uint64_t batches = 0;     ///< KernelBatch::execute() calls with ≥ 1 entry
  std::uint64_t entries = 0;     ///< kernel calls routed through batches
  std::uint64_t groups = 0;      ///< same-key groups dispatched
  std::uint64_t max_batch = 0;   ///< largest single batch (entries)
  double avg_batch = 0;          ///< entries / batches (0 when no batches)
  /// Batched fraction of all logical kernel calls (batched / (batched +
  /// eager)) over the dispatch table — how much of the run the batching
  /// layer actually covered.
  double fill_ratio = 0;
  // Packed-gemm pack-cache counters (la::pack_cache_stats at capture time).
  std::uint64_t pack_hits = 0;   ///< packs skipped: operand image reused
  std::uint64_t pack_misses = 0; ///< operands actually packed
  /// Bytes currently held by the per-thread pack buffers. Buffers persist
  /// across calls but are trimmed back when they exceed a fixed cap at
  /// batch-scope exit, so this does not grow to the largest operand ever
  /// packed for the threads' lifetime (see linalg/blas.hpp).
  std::uint64_t pack_bytes = 0;
};

/// Record of one factorization attempt made by Solver::factorize — the
/// initial try plus every recovery-ladder retry.
struct FactorizeAttempt {
  int attempt = 0;             ///< 0 = first try
  std::string action;          ///< "initial" or the recovery rung applied
  std::string strategy;        ///< effective strategy name for this attempt
  std::string precision;       ///< effective tile-precision name
  double tolerance = 0;        ///< effective τ
  double pivot_threshold = 0;  ///< effective static-pivot threshold
  bool llt = false;            ///< effective factorization kind
  bool succeeded = false;
  bool resource = false;       ///< failed on a resource breach (ResourceError),
                               ///< not a numerical breakdown
  double seconds = 0;          ///< wall time of this attempt
  std::string error;           ///< failure summary (empty on success)

  // Per-attempt run counters. Every counter source (MemoryTracker, kernel
  // dispatch, batch stats, pool stats) is reset at the start of each
  // attempt, so these are THIS attempt's numbers, not cumulative — ladder
  // retries report what each rung actually did.
  std::size_t peak_bytes = 0;            ///< tracker total high-water mark
  std::uint64_t scheduler_tasks = 0;     ///< pool tasks executed
  std::uint64_t scheduler_discarded = 0; ///< pool tasks drained by cancellation
  std::uint64_t dag_tasks = 0;           ///< DAG nodes built (Dataflow::Dag)
  std::uint64_t dag_executed = 0;        ///< DAG task bodies actually run
  std::uint64_t batches = 0;             ///< kernel batches executed
  std::uint64_t batch_entries = 0;       ///< kernel calls routed through them
};

/// Warm-start counters of one numeric pass (DESIGN.md §15; all zero for
/// cold factorizations). Snapshot of the per-run atomics in
/// core::WarmCounters.
struct WarmStartStats {
  std::uint64_t attempts = 0;     ///< compressions seeded with a replayed rank
  std::uint64_t hits = 0;         ///< warm guesses accepted at the τ bound
  std::uint64_t grows = 0;        ///< guesses too small → full-cap fallback ran
  std::uint64_t dense_skips = 0;  ///< compressions skipped on proven-dense blocks
};

/// Per-request measurements of one Session::solve() call (DESIGN.md §15).
struct SolveStats {
  std::uint64_t factor_epoch = 0;  ///< which refactorize() produced the factors used
  index_t batch_size = 0;          ///< requests coalesced into the blocked solve
  double wait_seconds = 0;         ///< queue time before the blocked solve started
  double solve_seconds = 0;        ///< wall time of the blocked solve itself
  // Solve-phase execution detail of the blocked solve that served this
  // request (DESIGN.md §16).
  std::uint64_t solve_tasks = 0;   ///< solve-plan task bodies the blocked solve ran
  bool parallel = false;           ///< drained the solve DAG over the solve pool
  bool column_split = false;       ///< wide batch ran as parallel column chunks
  bool plan_reused = false;        ///< the cached SolvePlan served this solve
  std::uint64_t widen_hits = 0;    ///< fp32 widen-cache hits during the solve
};

/// Solve-phase breakdown accumulated across every solve since analyze()
/// (DESIGN.md §16; surfaced as SolverStats::solve_phase and by
/// print_summary's solve line).
struct SolvePhaseStats {
  std::uint64_t solves = 0;            ///< NumericFactor solves issued
  std::uint64_t plan_builds = 0;       ///< SolvePlan graphs actually built
  std::uint64_t plan_reuses = 0;       ///< factorizations served by the cache
  std::uint64_t tasks_executed = 0;    ///< solve-plan task bodies run
  std::uint64_t parallel_solves = 0;   ///< solves drained as a DAG on the pool
  std::uint64_t split_solves = 0;      ///< wide solves run as parallel column chunks
  std::uint64_t sequential_solves = 0; ///< solves that took the two-sweep loop
  std::uint64_t widen_hits = 0;        ///< fp32 widen-cache factor reuses
  std::uint64_t widen_tiles = 0;       ///< tiles held by the current widen cache
  std::size_t widen_bytes = 0;         ///< bytes held by the current widen cache
  double trsm_seconds = 0;             ///< dispatch time in solve_trsm kernels
  double gemm_seconds = 0;             ///< dispatch time in solve_gemm kernels
};

/// Aggregate measurements of one solver run — the quantities the paper's
/// tables and figures report.
struct SolverStats {
  // Phase wall times (seconds).
  double time_analyze = 0;
  double time_factorize = 0;
  double time_solve = 0;

  // Structure.
  index_t n = 0;
  index_t num_cblks = 0;
  index_t num_bloks = 0;

  /// Entries the dense (original PaStiX) storage would need.
  std::size_t factor_entries_dense = 0;
  /// Entries actually stored at the end of the factorization.
  std::size_t factor_entries_final = 0;
  /// Bytes actually stored at the end of the factorization. Precision-aware:
  /// under TilePrecision::MixedTiles the fp32 factors cost half, so this is
  /// less than factor_entries_final * sizeof(real_t).
  std::size_t factor_bytes_final = 0;
  /// The part of factor_bytes_final held by low-rank U/V factors — the
  /// storage that MixedTiles can demote to fp32 (dense and diagonal blocks
  /// make up the rest and always stay fp64).
  std::size_t factor_bytes_lowrank = 0;
  /// Panel blocks whose low-rank factors ended in fp32 at-rest storage
  /// (always 0 under TilePrecision::Fp64).
  index_t num_fp32_blocks = 0;

  /// Peak bytes in the Factors memory category during factorization.
  std::size_t factors_peak_bytes = 0;
  /// Peak bytes over all tracked categories.
  std::size_t total_peak_bytes = 0;

  /// Kernel backend the factorization ran under ("reference"/"native") and,
  /// for Native, the CPUID-selected ISA tier ("portable"/"avx2"/"avx512";
  /// empty otherwise). DESIGN.md §14.
  std::string backend;
  std::string backend_isa;

  index_t num_lowrank_blocks = 0;
  index_t num_dense_blocks = 0;
  double average_rank = 0;  ///< mean rank over the final low-rank blocks only
  /// Fraction of compressible panel blocks that ended dense (fallbacks plus
  /// Adaptive keep-dense decisions); 1.0 for the Dense strategy.
  double dense_block_fraction = 0;

  /// Pivots replaced by static pivoting (LU with pivot_threshold > 0).
  index_t pivots_replaced = 0;

  // Scheduler counters of the last factorize() (all zero for sequential
  // runs; aggregated over workers — per-worker detail via
  // Solver::worker_stats()).
  int scheduler_workers = 0;              ///< pool size used
  std::uint64_t scheduler_tasks = 0;      ///< tasks executed (incl. subtasks)
  std::uint64_t scheduler_steals = 0;     ///< successful deque steals
  std::uint64_t scheduler_failed_steals = 0;  ///< empty-handed victim sweeps
  std::uint64_t scheduler_idle_sleeps = 0;    ///< worker blocking waits
  /// Tasks drained unrun by cooperative cancellation after a breakdown.
  std::uint64_t scheduler_discarded = 0;

  // Task-DAG counters of the last factorize() (all zero under
  // SolverOptions::dataflow == Dataflow::Barrier; DESIGN.md §12).
  std::uint64_t dag_tasks = 0;          ///< tasks in the built graph
  std::uint64_t dag_edges = 0;          ///< inferred + explicit edges (deduped)
  std::uint64_t dag_executed = 0;       ///< task bodies actually run
  std::uint64_t dag_ready_peak = 0;     ///< max ready-but-unstarted tasks
  std::uint64_t dag_critical_path = 0;  ///< longest dependency chain (tasks)

  // Resource governance of the last factorize() (DESIGN.md §13; zero when
  // ungoverned).
  std::size_t memory_budget_bytes = 0;  ///< active budget (0: none)
  double deadline_seconds = 0;          ///< active deadline (0: none)
  /// Wall-clock headroom left at success: deadline − governed elapsed
  /// (0 when no deadline was set).
  double deadline_margin = 0;
  /// Resource-ladder rungs climbed (degradations applied) by this call.
  int resource_rungs = 0;

  /// Every factorization attempt of the last factorize() call (one entry
  /// for a clean run; one per ladder rung when recovery kicked in).
  std::vector<FactorizeAttempt> attempts;

  /// Per-kernel dispatch counters of the successful factorization attempt
  /// (zero-call kernels omitted).
  std::vector<DispatchCount> dispatch;

  /// Batched-execution counters of the successful attempt (all zero under
  /// SolverOptions::batching == Batching::Off).
  BatchExecStats batch;

  /// Numeric passes served by the current symbolic plan beyond the first:
  /// incremented by every successful refactorize() (DESIGN.md §15).
  std::uint64_t refactorizations = 0;

  /// Warm-start counters of the last successful numeric pass (all zero for
  /// cold factorizations or when SolverOptions::warm_start is off).
  WarmStartStats warm;

  /// Solve-phase breakdown accumulated across every solve since analyze()
  /// (DESIGN.md §16). The widen_* fields describe the *current* factors'
  /// fp32 widen cache; the counters are cumulative.
  SolvePhaseStats solve_phase;

  /// Buffer-pool counters accumulated since the last cold factorize():
  /// acquisitions served from recycled factor storage vs. fresh allocations
  /// (both zero when SolverOptions::reuse_buffers is off or on cold passes).
  std::uint64_t buffer_hits = 0;
  std::uint64_t buffer_misses = 0;

  [[nodiscard]] double compression_ratio() const {
    return factor_entries_final > 0
               ? static_cast<double>(factor_entries_dense) /
                     static_cast<double>(factor_entries_final)
               : 0.0;
  }
};

} // namespace blr::core
