#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/kernel_stats.hpp"
#include "core/stats.hpp"
#include "linalg/backend.hpp"
#include "lowrank/kernels.hpp"

namespace blr {
class ThreadPool;
}

namespace blr::core {

/// The numeric operations the factorization driver issues. Each combines
/// with the operand representations below to select a concrete kernel.
enum class KernelOp : int {
  Getrf,     ///< diagonal-block LU (partial or static pivoting)
  Potrf,     ///< diagonal-block Cholesky
  Trsm,      ///< panel solve of one off-diagonal tile against the diagonal
  Gemm,      ///< contribution product P = A·Bᵗ (fused in-place when dense)
  Lr2Lr,     ///< extend-add of a contribution into a low-rank tile (§3.3.2)
  Lr2Ge,     ///< extend-add of a contribution into dense storage
  Compress,  ///< rank-revealing compression of a dense tile
  SolveTrsm, ///< triangular-solve diagonal apply on one RHS segment (§16)
  SolveGemm, ///< triangular-solve panel update of one RHS segment (§16)
  kCount
};

/// Storage representation of an operand, the first dispatch key dimension.
enum class Rep : int { None = 0, Dense, LowRank, kCount };

inline Rep rep_of(const lr::Tile& t) {
  return t.is_lowrank() ? Rep::LowRank : Rep::Dense;
}

/// At-rest storage precision of an operand, the second dispatch key
/// dimension. All arithmetic runs in fp64 — Fp32 keys select promotion
/// wrappers that widen the stored factors before calling the same fp64
/// math, then (for in-out targets) round the result back (DESIGN.md §10).
/// `None`-rep slots reuse this dimension to carry the precision of the
/// operation's implicit target, so e.g. extend-adds into fp32 tiles get
/// their own counter row.
enum class Prec : int { Fp64 = 0, Fp32, kCount };

inline Prec prec_of(const lr::Tile& t) {
  return t.precision() == lr::Precision::Fp32 ? Prec::Fp32 : Prec::Fp64;
}

const char* kernel_op_name(KernelOp op);

/// Argument bundle passed to every dispatched kernel. Only the fields the
/// selected operation reads need to be set; the rest keep their defaults.
struct KernelCtx {
  lr::Tile* c = nullptr;        ///< in-out tile (diag, panel blok, EA target)
  const lr::Tile* a = nullptr;  ///< left operand / contribution
  const lr::Tile* b = nullptr;  ///< right operand
  la::DView view;               ///< positioned dense destination (fused paths)
  la::DConstView in;            ///< dense input (Compress, SolveGemm)
  la::DConstView su, sv;        ///< positioned low-rank factors (SolveGemm):
                                ///< view -= su·(svᵗ·in), always fp64 (fp32
                                ///< tiles pass their widen-cache copies)
  const la::DMatrix* diag = nullptr;       ///< factored diagonal (Trsm)
  std::vector<index_t>* piv = nullptr;     ///< pivots: out (Getrf), in (Trsm)
  index_t roff = 0, coff = 0;   ///< target offsets (extend-add)
  bool transpose = false;       ///< apply the transposed contribution
  bool need_ortho = false;      ///< product must return an orthonormal U
  bool llt = false;             ///< Cholesky-side triangular conventions
  bool upper = false;           ///< U-panel tile (LU mirror; applies pivots)
  lr::CompressionKind kind = lr::CompressionKind::Rrqr;
  real_t tolerance = 0;
  index_t max_rank = -1;        ///< compression rank cap (Compress)
  index_t warm_hint = -1;       ///< >=0: warm-start rank guess (Compress)
  real_t pivot_cutoff = 0;      ///< >0 selects static pivoting (Getrf)
  MemCategory out_cat = MemCategory::Workspace;  ///< category of `out`
  // Outputs.
  lr::Tile out;                 ///< product result (Gemm, non-fused)
  std::optional<lr::LrMatrix> out_lr;  ///< compression result (Compress)
  index_t info = 0;             ///< LAPACK-style status (Getrf/Potrf)
  index_t replaced = 0;         ///< static-pivot replacements (Getrf)
  bool warm_grew = false;       ///< warm guess failed verify, full retry ran
};

using KernelFn = void (*)(KernelCtx&);

/// Registry of numeric kernels keyed on (backend, operation, repA, precA,
/// repB, precB). Every call is counted (invocations, operand bytes touched,
/// wall time), timed into the existing KernelStats rows, and routed to the
/// registered function — so a new kernel (another precision, another
/// compression family) plugs in with register_kernel() and the driver loop
/// never changes. The fp32 keys are exactly such a plug-in: promotion
/// wrappers registered alongside the fp64 kernels, giving per-precision
/// call/byte counters for free in snapshot().
///
/// The backend axis mirrors la::Backend: run()/run_batch() read
/// la::current_backend() per call, so the same factorization driver reports
/// separate per-kernel counter rows under Reference and Native (A/B runs
/// need no code changes, only a backend switch). The built-in kernels are
/// backend-agnostic — their la:: calls dispatch per-backend one layer down —
/// so register_kernel() installs them under every backend; a kernel written
/// for one backend only (e.g. a future device backend's fused update) uses
/// register_kernel_for().
class KernelDispatch {
public:
  static KernelDispatch& instance();

  /// Install (or replace) the kernel for a key under EVERY backend. `timer`
  /// selects the KernelStats row the call time is charged to.
  void register_kernel(KernelOp op, Rep a, Prec pa, Rep b, Prec pb,
                       const char* name, Kernel timer, KernelFn fn);

  /// Install (or replace) the kernel for a key under one backend only.
  void register_kernel_for(la::Backend backend, KernelOp op, Rep a, Prec pa,
                           Rep b, Prec pb, const char* name, Kernel timer,
                           KernelFn fn);

  /// True when a kernel is registered for the key under `backend` (the
  /// dispatch-table completeness check in tests/test_backends.cpp).
  [[nodiscard]] bool has_kernel(la::Backend backend, KernelOp op, Rep a,
                                Prec pa, Rep b, Prec pb) const;

  /// Dispatch one call: counts, times, and runs the registered kernel.
  /// Operand bytes are measured on the tiles as stored (fp32 operands count
  /// their fp32 size; promotion scratch is charged to the Workspace memory
  /// category, never to the kernel's own byte counter). Throws blr::Error
  /// when no kernel is registered for the key.
  void run(KernelOp op, Rep a, Prec pa, Rep b, Prec pb, KernelCtx& ctx);

  /// Dispatch `count` same-key calls as ONE batched invocation: the entries
  /// are split into shape-bucket chunks (consecutive equal operand shapes)
  /// and run in parallel on `pool` (sequentially when null), each chunk
  /// under a la::PackBatchScope whose stable set is the chunk's read-only
  /// tile operands, so the packed-gemm pack cache can reuse an operand
  /// shared across the chunk (and only those — kernel-internal temporaries
  /// never hit the cache). Counters record `count` logical calls plus one
  /// invocation (DispatchCount::batched_calls / batch_invocations), and the
  /// per-kernel time is the per-chunk CPU time summed across threads — the
  /// same meaning as the eager per-call accumulation — so kernel tables
  /// stay comparable with eager mode. The first kernel exception cancels
  /// the remaining entries and is rethrown. Entries must be independent: no
  /// entry may read another's output or alias another's in-out target.
  void run_batch(KernelOp op, Rep a, Prec pa, Rep b, Prec pb,
                 KernelCtx* const* items, std::size_t count, ThreadPool* pool);

  /// Per-kernel counters since the last reset, zero-call entries omitted,
  /// in registration order. `calls` is the total logical count (eager +
  /// batched) so Fig. 7 kernel tables compare across batching modes.
  [[nodiscard]] std::vector<DispatchCount> snapshot() const;
  void reset_counters();

  KernelDispatch(const KernelDispatch&) = delete;
  KernelDispatch& operator=(const KernelDispatch&) = delete;

private:
  KernelDispatch();  // registers the built-in kernels

  struct Entry {
    const char* name = nullptr;
    la::Backend backend = la::Backend::Reference;  ///< table slice this entry lives in
    Kernel timer = Kernel::DenseUpdate;
    KernelFn fn = nullptr;
    std::atomic<std::uint64_t> calls{0};  ///< eager (non-batched) calls
    std::atomic<std::uint64_t> bytes{0};
    std::atomic<std::uint64_t> nanos{0};
    std::atomic<std::uint64_t> batched{0};            ///< calls run in batches
    std::atomic<std::uint64_t> batch_invocations{0};  ///< run_batch() calls
  };

  static constexpr int kBackends = static_cast<int>(la::Backend::kCount);
  static constexpr int kOps = static_cast<int>(KernelOp::kCount);
  static constexpr int kReps = static_cast<int>(Rep::kCount);
  static constexpr int kPrecs = static_cast<int>(Prec::kCount);
  Entry& at(la::Backend be, KernelOp op, Rep a, Prec pa, Rep b, Prec pb) {
    return table_[static_cast<int>(be)][static_cast<int>(op)]
                 [static_cast<int>(a)][static_cast<int>(pa)]
                 [static_cast<int>(b)][static_cast<int>(pb)];
  }
  [[nodiscard]] const Entry& at(la::Backend be, KernelOp op, Rep a, Prec pa,
                                Rep b, Prec pb) const {
    return table_[static_cast<int>(be)][static_cast<int>(op)]
                 [static_cast<int>(a)][static_cast<int>(pa)]
                 [static_cast<int>(b)][static_cast<int>(pb)];
  }

  Entry table_[kBackends][kOps][kReps][kPrecs][kReps][kPrecs];
  std::vector<const Entry*> order_;  ///< registration order for snapshots
};

/// Driver-facing wrappers: each positions a KernelCtx and routes through the
/// registry by the operands' representations.
namespace dispatch {

/// Factor the diagonal tile in place (LU with partial or static pivoting,
/// or Cholesky). Returns the LAPACK-style info; `replaced` reports static-
/// pivot substitutions.
index_t factor_diag(lr::Tile& diag, std::vector<index_t>& piv, bool llt,
                    real_t pivot_cutoff, index_t& replaced);

/// TRSM one panel tile against the factored diagonal (U-side tiles apply
/// the local pivots first).
void panel_solve(const lr::Tile& diag, const std::vector<index_t>& piv,
                 lr::Tile& blk, bool llt, bool upper);

/// Contribution product P = A·Bᵗ as a Workspace tile.
lr::Tile product(const lr::Tile& a, const lr::Tile& b, lr::CompressionKind kind,
                 real_t tol, bool need_ortho);

/// Fused dense×dense update: target -= A·Bᵗ (or B·Aᵗ when `transpose`).
void gemm_into(la::DView target, const lr::Tile& a, const lr::Tile& b,
               bool transpose);

/// LR2GE onto a positioned dense view: target -= P (or Pᵗ).
void apply_contribution(la::DView target, const lr::Tile& p, bool transpose);

/// Extend-add a contribution into a tile at (roff, coff), routed LR2LR or
/// LR2GE by the target's representation. Throws if the target is Factored.
void extend_add(lr::Tile& c, const lr::Tile& p, index_t roff, index_t coff,
                lr::CompressionKind kind, real_t tol, bool transpose);

/// Rank-revealing compression of a dense view (counted/timed); nullopt when
/// the tolerance is unreachable within max_rank.
std::optional<lr::LrMatrix> compress(lr::CompressionKind kind, la::DConstView a,
                                     real_t tol, index_t max_rank);

/// Triangular-solve diagonal apply on the RHS segment `xk` (DESIGN.md §16):
/// forward (`backward == false`) applies the local pivots (LU) then the
/// lower solve; backward applies Lᵗ (LLᵗ) or U (LU).
void solve_trsm(const lr::Tile& diag, const std::vector<index_t>& piv,
                la::DView xk, bool llt, bool backward);

/// Position `ctx` for one SolveGemm dispatch — shared between the eager
/// wrapper below and the PerSupernode solve batching in numeric.cpp. `u`/`v`
/// are the panel tile's low-rank factors *already widened to fp64* (empty
/// views for a dense tile); forward computes xout -= blk·xin, backward
/// xout -= blkᵗ·xin (factor roles swap for low-rank tiles).
void position_solve_gemm(KernelCtx& ctx, const lr::Tile& blk, la::DConstView u,
                         la::DConstView v, la::DConstView xin, la::DView xout,
                         bool backward);

/// Triangular-solve panel update of one RHS segment (eager dispatch).
void solve_gemm(const lr::Tile& blk, la::DConstView u, la::DConstView v,
                la::DConstView xin, la::DView xout, bool backward);

/// Warm-started variant: seeds the kernel with `rank_guess` (the rank this
/// block reached in the previous numeric pass, plus slack). Verify-and-grow
/// semantics per lr::compress_warm; `*grew` (optional) reports whether the
/// guess failed verification and the full-cap path ran.
std::optional<lr::LrMatrix> compress(lr::CompressionKind kind, la::DConstView a,
                                     real_t tol, index_t max_rank,
                                     index_t rank_guess, bool* grew);

} // namespace dispatch

} // namespace blr::core
