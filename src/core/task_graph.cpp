#include "core/task_graph.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"

namespace blr::core {

const char* dag_task_kind_name(DagTaskKind k) {
  switch (k) {
    case DagTaskKind::Assemble: return "assemble";
    case DagTaskKind::Factor: return "factor";
    case DagTaskKind::Compress: return "compress";
    case DagTaskKind::Trsm: return "trsm";
    case DagTaskKind::Product: return "product";
    case DagTaskKind::Apply: return "apply";
  }
  return "?";
}

// ---------------------------------------------------------------- DepBuilder

std::uint32_t DepBuilder::add_task() { return ntasks_++; }

void DepBuilder::read(std::uint32_t task, std::uint64_t addr) {
  accesses_.push_back({addr, task, false});
}

void DepBuilder::write(std::uint32_t task, std::uint64_t addr) {
  accesses_.push_back({addr, task, true});
}

void DepBuilder::edge(std::uint32_t from, std::uint32_t to) {
  if (from >= to) {
    throw Error("task graph: explicit edge must point forward in the "
                "canonical order");
  }
  extra_.push_back({from, to});
}

DepBuilder::Deps DepBuilder::infer() const {
  constexpr std::uint32_t kNone = UINT32_MAX;

  // Accesses must have been declared in canonical task order so that, after
  // a stable partition by address, each address's access list is still in
  // execution order.
  std::uint64_t naddr = 0;
  for (std::size_t i = 0; i < accesses_.size(); ++i) {
    if (i > 0 && accesses_[i].task < accesses_[i - 1].task) {
      throw Error("task graph: accesses declared out of canonical order");
    }
    naddr = std::max(naddr, accesses_[i].addr + 1);
  }

  // Stable partition by address. Graph builds use a dense address space, so
  // a counting sort does it in linear time; fall back to a comparison sort
  // when the addresses are sparse (hand-built graphs).
  std::vector<std::uint32_t> order(accesses_.size());
  if (naddr <= 4 * accesses_.size() + 1024) {
    std::vector<std::uint32_t> off(static_cast<std::size_t>(naddr) + 1, 0);
    for (const Access& a : accesses_)
      ++off[static_cast<std::size_t>(a.addr) + 1];
    for (std::size_t a = 1; a < off.size(); ++a) off[a] += off[a - 1];
    for (std::uint32_t i = 0; i < accesses_.size(); ++i)
      order[off[static_cast<std::size_t>(accesses_[i].addr)]++] = i;
  } else {
    for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [this](std::uint32_t x, std::uint32_t y) {
                       return accesses_[x].addr < accesses_[y].addr;
                     });
  }

  // Scan each address's access list in execution order, emitting RAW, WAR
  // and WAW edges. Edges are packed (from << 32 | to) so the per-task
  // bucketing below stays branch-light.
  std::vector<std::uint64_t> edges;
  edges.reserve(extra_.size() + accesses_.size());
  const auto emit = [&edges](std::uint32_t from, std::uint32_t to) {
    if (from >= to) {
      throw Error("task graph: inferred edge points backwards — accesses "
                  "were not declared in a topological order");
    }
    edges.push_back((static_cast<std::uint64_t>(from) << 32) | to);
  };
  std::vector<std::uint32_t> readers;
  std::size_t i = 0;
  while (i < order.size()) {
    const std::uint64_t addr = accesses_[order[i]].addr;
    std::uint32_t last_writer = kNone;
    readers.clear();
    for (; i < order.size() && accesses_[order[i]].addr == addr; ++i) {
      const Access& a = accesses_[order[i]];
      if (a.is_write) {
        if (readers.empty()) {
          if (last_writer != kNone && last_writer != a.task)
            emit(last_writer, a.task);
        } else {
          for (const std::uint32_t r : readers)
            if (r != a.task) emit(r, a.task);
        }
        last_writer = a.task;
        readers.clear();
      } else {
        if (last_writer != kNone && last_writer != a.task)
          emit(last_writer, a.task);
        readers.push_back(a.task);
      }
    }
  }
  for (const auto& e : extra_) emit(e.first, e.second);

  // Bucket edges by source task (counting sort — tasks are dense), then
  // deduplicate each task's successor list in place. The same pair can
  // arise through several addresses; the canonical declaration order is a
  // topological order (enforced by emit()), which is what makes the
  // sequential min-id executor reproduce the barrier schedule exactly.
  Deps d;
  d.succ_offset.assign(static_cast<std::size_t>(ntasks_) + 1, 0);
  d.indeg.assign(ntasks_, 0);
  for (const std::uint64_t e : edges) ++d.succ_offset[(e >> 32) + 1];
  for (std::size_t t = 1; t < d.succ_offset.size(); ++t)
    d.succ_offset[t] += d.succ_offset[t - 1];
  d.succ.resize(edges.size());
  {
    std::vector<std::uint32_t> fill(d.succ_offset.begin(),
                                    d.succ_offset.end() - 1);
    for (const std::uint64_t e : edges)
      d.succ[fill[e >> 32]++] = static_cast<std::uint32_t>(e);
  }
  std::uint32_t w = 0;
  for (std::uint32_t t = 0; t < ntasks_; ++t) {
    const std::uint32_t b = d.succ_offset[t], e = d.succ_offset[t + 1];
    std::sort(d.succ.begin() + b, d.succ.begin() + e);
    d.succ_offset[t] = w;
    for (std::uint32_t j = b; j < e; ++j) {
      if (j == b || d.succ[j] != d.succ[j - 1]) {
        ++d.indeg[d.succ[j]];
        d.succ[w++] = d.succ[j];
      }
    }
  }
  d.succ_offset[ntasks_] = w;
  d.succ.resize(w);
  d.succ.shrink_to_fit();
  d.num_edges = w;
  return d;
}

// ----------------------------------------------------------------- EpochGate

EpochGate::EpochGate(std::uint64_t num_addrs)
    : ep_(new std::atomic<std::uint8_t>[num_addrs]), n_(num_addrs) {
  for (std::uint64_t i = 0; i < n_; ++i)
    ep_[i].store(kUnassembled, std::memory_order_relaxed);
}

void EpochGate::expect(std::uint64_t addr, std::uint8_t want) const {
  const std::uint8_t got = ep_[addr].load(std::memory_order_acquire);
  if (got != want) {
    throw Error("dag epoch violation: tile address " + std::to_string(addr) +
                " is at epoch " + std::to_string(int(got)) + ", task expects " +
                std::to_string(int(want)));
  }
}

void EpochGate::advance(std::uint64_t addr, std::uint8_t from, std::uint8_t to) {
  std::uint8_t expected = from;
  if (!ep_[addr].compare_exchange_strong(expected, to,
                                         std::memory_order_release,
                                         std::memory_order_acquire)) {
    throw Error("dag epoch violation: tile address " + std::to_string(addr) +
                " cannot advance " + std::to_string(int(from)) + " -> " +
                std::to_string(int(to)) + ", found epoch " +
                std::to_string(int(expected)));
  }
}

// ----------------------------------------------------------------- TaskGraph

TaskGraph TaskGraph::build(const symbolic::SymbolicFactor& sf, bool llt) {
  TaskGraph g;
  g.llt_ = llt;
  const index_t ncblk = sf.num_cblks();

  // Dense tile-address space: per supernode one diagonal address, nb L-panel
  // addresses and (LU) nb U-panel addresses.
  g.addr_base_.assign(static_cast<std::size_t>(ncblk) + 1, 0);
  for (index_t k = 0; k < ncblk; ++k) {
    const std::uint64_t nb = sf.cblk(k).bloks.size();
    g.addr_base_[static_cast<std::size_t>(k) + 1] =
        g.addr_base_[static_cast<std::size_t>(k)] + 1 + (llt ? nb : 2 * nb);
  }
  g.naddrs_ = g.addr_base_[static_cast<std::size_t>(ncblk)];

  // Exact task/access counts, so the builder's vectors allocate once.
  std::uint64_t ntasks = 0, naccess = g.naddrs_;
  for (index_t k = 0; k < ncblk; ++k) {
    const std::uint64_t nb = sf.cblk(k).bloks.size();
    const std::uint64_t panels = (llt ? 1 : 2) * nb;
    const std::uint64_t nupd = llt ? nb * (nb + 1) / 2 : nb * nb;
    ntasks += 1 /*assemble*/ + 1 /*factor*/ + 2 * panels + 2 * nupd;
    naccess += 1 /*factor*/ + panels /*compress*/ + 2 * panels /*trsm*/ +
               3 * nupd /*product+apply*/;
  }

  DepBuilder b;
  b.reserve(ntasks, naccess);
  g.tasks_.reserve(ntasks);
  const auto declare = [&](DagTask t) {
    const std::uint32_t id = b.add_task();
    g.tasks_.push_back(t);
    return id;
  };

  // Canonical order = the barrier driver's sequential execution order.
  // Assembly first (the barrier right-looking driver assembles everything
  // up front), so Assemble(k) has task id k.
  for (index_t k = 0; k < ncblk; ++k) {
    const index_t nb = static_cast<index_t>(sf.cblk(k).bloks.size());
    const std::uint32_t id = declare({DagTaskKind::Assemble, k, -1, -1, false, 0});
    b.write(id, g.diag_addr(k));
    for (index_t i = 0; i < nb; ++i) b.write(id, g.panel_addr(k, false, i));
    if (!llt)
      for (index_t i = 0; i < nb; ++i) b.write(id, g.panel_addr(k, true, i));
  }

  std::uint32_t upd = 0;
  for (index_t k = 0; k < ncblk; ++k) {
    const auto& bloks = sf.cblk(k).bloks;
    const index_t nb = static_cast<index_t>(bloks.size());

    // Diagonal factorization: chained behind the last update into the diag.
    const std::uint32_t fid = declare({DagTaskKind::Factor, k, -1, -1, false, 0});
    b.write(fid, g.diag_addr(k));

    // Elimination-time per-tile hook (LUAR flush + policy compression), in
    // the barrier's panel order: L tiles by index, then U tiles.
    for (int up = 0; up < (llt ? 1 : 2); ++up) {
      for (index_t i = 0; i < nb; ++i) {
        const std::uint32_t cid =
            declare({DagTaskKind::Compress, k, i, -1, up == 1, 0});
        b.write(cid, g.panel_addr(k, up == 1, i));
      }
    }

    // Panel solves: each reads the factored diagonal, writes its own tile.
    for (int up = 0; up < (llt ? 1 : 2); ++up) {
      for (index_t i = 0; i < nb; ++i) {
        const std::uint32_t tid =
            declare({DagTaskKind::Trsm, k, i, -1, up == 1, 0});
        b.read(tid, g.diag_addr(k));
        b.write(tid, g.panel_addr(k, up == 1, i));
      }
    }

    // Right-looking updates in the barrier's (col outer, row inner) pair
    // order. Each splits into the lock-free Product (reads two factored
    // source tiles, writes a private slot) and the chained Apply (writes the
    // target tile address — the write chain that pins bitwise determinism).
    for (index_t j = 0; j < nb; ++j) {
      for (index_t i = llt ? j : 0; i < nb; ++i) {
        const symbolic::Blok& rb = bloks[static_cast<std::size_t>(i)];
        const symbolic::Blok& cb = bloks[static_cast<std::size_t>(j)];
        const std::uint32_t pid =
            declare({DagTaskKind::Product, k, i, j, false, upd});
        b.read(pid, g.panel_addr(k, false, i));
        b.read(pid, llt ? g.panel_addr(k, false, j) : g.panel_addr(k, true, j));

        std::uint64_t target_addr;
        if (rb.fcblk == cb.fcblk) {
          target_addr = g.diag_addr(rb.fcblk);
        } else if (rb.fcblk > cb.fcblk) {
          const index_t tb = sf.find_blok(cb.fcblk, rb.frow, rb.lrow);
          target_addr = g.panel_addr(cb.fcblk, false, tb);
          // The product's orthonormality requirement reads the target tile's
          // assembly-time representation, so it must wait for the target's
          // assembly (Assemble(t) has task id t).
          b.edge(static_cast<std::uint32_t>(cb.fcblk), pid);
        } else {
          const index_t tb = sf.find_blok(rb.fcblk, cb.frow, cb.lrow);
          target_addr = g.panel_addr(rb.fcblk, true, tb);
          b.edge(static_cast<std::uint32_t>(rb.fcblk), pid);
        }

        const std::uint32_t aid =
            declare({DagTaskKind::Apply, k, i, j, false, upd});
        b.edge(pid, aid);  // the product result travels through the slot
        b.write(aid, target_addr);
        ++upd;
      }
    }
  }

  g.nupdates_ = upd;
  g.deps_ = b.infer();

  // Critical path: longest chain in tasks, by one reverse sweep (edges all
  // point forward, so ids in reverse are a topological order).
  std::vector<std::uint32_t> depth(g.tasks_.size(), 1);
  for (std::uint32_t t = static_cast<std::uint32_t>(g.tasks_.size()); t-- > 0;) {
    const auto [s, e] = g.successors(t);
    for (const std::uint32_t* p = s; p != e; ++p)
      depth[t] = std::max(depth[t], depth[*p] + 1);
    g.critical_path_ = std::max<std::uint64_t>(g.critical_path_, depth[t]);
  }
  return g;
}

namespace {

/// Shared state of one parallel DAG run; lives on drain_deps()'s stack.
struct ParRun {
  const DepBuilder::Deps* deps = nullptr;
  ThreadPool* pool = nullptr;
  const std::function<bool(std::uint32_t)>* body = nullptr;
  const std::function<std::int64_t(std::uint32_t)>* priority = nullptr;
  std::unique_ptr<std::atomic<std::int32_t>[]> indeg;
  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::int64_t> ready{0};
  std::atomic<std::uint64_t> ready_peak{0};
  std::atomic<bool> stopped{false};
};

void par_release(ParRun* r, std::uint32_t id);

void par_run_task(ParRun* r, std::uint32_t id) {
  r->ready.fetch_sub(1, std::memory_order_relaxed);
  if (r->stopped.load(std::memory_order_acquire)) return;
  const bool ok = (*r->body)(id);
  r->executed.fetch_add(1, std::memory_order_relaxed);
  if (!ok) {
    // Cooperative stop: successors are not released, so everything gated by
    // this task drains unrun (the body is expected to have cancelled the
    // pool if it wants queued siblings discarded too).
    r->stopped.store(true, std::memory_order_release);
    return;
  }
  const std::uint32_t* s = r->deps->succ.data() + r->deps->succ_offset[id];
  const std::uint32_t* e = r->deps->succ.data() + r->deps->succ_offset[id + 1];
  for (const std::uint32_t* p = s; p != e; ++p) {
    if (r->indeg[*p].fetch_sub(1, std::memory_order_acq_rel) == 1)
      par_release(r, *p);
  }
}

void par_release(ParRun* r, std::uint32_t id) {
  const std::int64_t depth = r->ready.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t peak = r->ready_peak.load(std::memory_order_relaxed);
  while (static_cast<std::uint64_t>(depth) > peak &&
         !r->ready_peak.compare_exchange_weak(peak,
                                              static_cast<std::uint64_t>(depth),
                                              std::memory_order_relaxed)) {
  }
  r->pool->submit([r, id] { par_run_task(r, id); }, (*r->priority)(id));
}

} // namespace

DepDrainStats drain_deps(
    const DepBuilder::Deps& deps, ThreadPool* pool,
    const std::function<bool(std::uint32_t)>& body,
    const std::function<std::int64_t(std::uint32_t)>& priority) {
  const std::uint32_t n =
      static_cast<std::uint32_t>(deps.succ_offset.size()) - 1;
  DepDrainStats rs;
  if (deps.succ_offset.empty() || n == 0) return rs;

  if (pool == nullptr) {
    // Sequential: always run the lowest-id ready task. Task ids are the
    // canonical sequence numbers, so this reproduces the declaration
    // (barrier / two-sweep) execution order exactly (DESIGN.md §12).
    std::vector<std::int32_t> indeg(deps.indeg);
    std::priority_queue<std::uint32_t, std::vector<std::uint32_t>,
                        std::greater<>> heap;
    for (std::uint32_t t = 0; t < n; ++t)
      if (indeg[t] == 0) heap.push(t);
    rs.ready_peak = heap.size();
    while (!heap.empty()) {
      const std::uint32_t t = heap.top();
      heap.pop();
      ++rs.executed;
      if (!body(t)) break;
      const std::uint32_t* s = deps.succ.data() + deps.succ_offset[t];
      const std::uint32_t* e = deps.succ.data() + deps.succ_offset[t + 1];
      for (const std::uint32_t* p = s; p != e; ++p)
        if (--indeg[*p] == 0) heap.push(*p);
      rs.ready_peak = std::max<std::uint64_t>(rs.ready_peak, heap.size());
    }
    return rs;
  }

  ParRun run;
  run.deps = &deps;
  run.pool = pool;
  run.body = &body;
  run.priority = &priority;
  run.indeg.reset(new std::atomic<std::int32_t>[n]);
  for (std::uint32_t t = 0; t < n; ++t)
    run.indeg[t].store(deps.indeg[t], std::memory_order_relaxed);
  for (std::uint32_t t = 0; t < n; ++t)
    if (deps.indeg[t] == 0) par_release(&run, t);
  pool->wait_idle();
  rs.executed = run.executed.load(std::memory_order_relaxed);
  rs.ready_peak = run.ready_peak.load(std::memory_order_relaxed);
  return rs;
}

TaskGraph::RunStats TaskGraph::execute(
    ThreadPool* pool, const std::function<bool(std::uint32_t)>& body,
    const std::function<std::int64_t(std::uint32_t)>& priority) const {
  const DepDrainStats ds = drain_deps(deps_, pool, body, priority);
  return {ds.executed, ds.ready_peak};
}

} // namespace blr::core
