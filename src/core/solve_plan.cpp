#include "core/solve_plan.hpp"

#include <algorithm>
#include <mutex>

#include "common/thread_pool.hpp"
#include "core/symbolic_plan.hpp"

namespace blr::core {

const char* solve_task_kind_name(SolveTaskKind k) {
  switch (k) {
    case SolveTaskKind::FwdDiag: return "fwd_diag";
    case SolveTaskKind::FwdUpd: return "fwd_upd";
    case SolveTaskKind::BwdUpd: return "bwd_upd";
    case SolveTaskKind::BwdDiag: return "bwd_diag";
  }
  return "?";
}

SolvePlan SolvePlan::build(const symbolic::SymbolicFactor& sf) {
  SolvePlan p;
  const index_t ncblk = sf.num_cblks();

  // Exact task/access counts so the builder's vectors allocate once.
  std::uint64_t ntasks = 0, naccess = 0;
  for (index_t k = 0; k < ncblk; ++k) {
    const std::uint64_t nb = sf.cblk(k).bloks.size();
    ntasks += 2 + 2 * nb;
    naccess += 2 + 4 * nb;
  }

  DepBuilder b;
  b.reserve(ntasks, naccess);
  p.tasks_.reserve(ntasks);
  const auto declare = [&](SolveTask t) {
    const std::uint32_t id = b.add_task();
    p.tasks_.push_back(t);
    return id;
  };
  // RHS row-segment address space: one address per supernode, covering the
  // segment x[fcol, lcol). Updates land in row *sub-ranges* of the target
  // segment, so segment granularity is conservative — which is exactly what
  // serializes overlapping-row accumulations from different descendants into
  // the sequential order (the write chain that pins bitwise determinism).
  const auto seg = [](index_t k) { return static_cast<std::uint64_t>(k); };

  // Canonical order = the sequential two-sweep execution order of
  // solve_permuted, so task ids are its sequence numbers and every inferred
  // edge points forward.
  for (index_t k = 0; k < ncblk; ++k) {
    const auto& bloks = sf.cblk(k).bloks;
    const std::uint32_t did = declare({SolveTaskKind::FwdDiag, k, -1});
    b.write(did, seg(k));
    for (index_t bi = 0; bi < static_cast<index_t>(bloks.size()); ++bi) {
      const std::uint32_t uid = declare({SolveTaskKind::FwdUpd, k, bi});
      b.read(uid, seg(k));
      b.write(uid, seg(bloks[static_cast<std::size_t>(bi)].fcblk));
    }
  }
  for (index_t k = ncblk; k-- > 0;) {
    const auto& bloks = sf.cblk(k).bloks;
    for (index_t bi = 0; bi < static_cast<index_t>(bloks.size()); ++bi) {
      const std::uint32_t uid = declare({SolveTaskKind::BwdUpd, k, bi});
      b.read(uid, seg(bloks[static_cast<std::size_t>(bi)].fcblk));
      b.write(uid, seg(k));
    }
    const std::uint32_t did = declare({SolveTaskKind::BwdDiag, k, -1});
    b.write(did, seg(k));
  }

  p.deps_ = b.infer();

  // Critical-path depth per task (the pool priority: deep tasks release the
  // longest remaining chains, so they go first), by one reverse sweep —
  // edges all point forward, so ids in reverse are a topological order.
  p.prio_.assign(p.tasks_.size(), 1);
  for (std::uint32_t t = static_cast<std::uint32_t>(p.tasks_.size());
       t-- > 0;) {
    const std::uint32_t* s = p.deps_.succ.data() + p.deps_.succ_offset[t];
    const std::uint32_t* e = p.deps_.succ.data() + p.deps_.succ_offset[t + 1];
    for (const std::uint32_t* q = s; q != e; ++q)
      p.prio_[t] = std::max(p.prio_[t], p.prio_[*q] + 1);
    p.critical_path_ = std::max<std::uint64_t>(
        p.critical_path_, static_cast<std::uint64_t>(p.prio_[t]));
  }
  return p;
}

DepDrainStats SolvePlan::execute(
    ThreadPool* pool, const std::function<bool(std::uint32_t)>& body) const {
  return drain_deps(deps_, pool, body,
                    [this](std::uint32_t id) { return prio_[id]; });
}

std::shared_ptr<const SolvePlan> SymbolicPlan::solve_plan(bool* built) const {
  std::lock_guard<std::mutex> lock(*solve_plan_mu_);
  if (built != nullptr) *built = false;
  if (!solve_plan_cache_) {
    solve_plan_cache_ = std::make_shared<const SolvePlan>(SolvePlan::build(sf));
    if (built != nullptr) *built = true;
  }
  return solve_plan_cache_;
}

} // namespace blr::core
