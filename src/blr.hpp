#pragma once

/// Umbrella header for the BLR supernodal solver library.
///
/// Reproduction of "Sparse Supernodal Solver Using Block Low-Rank
/// Compression" (Pichon, Darve, Faverge, Ramet, Roman — PDSEC 2017).

#include "common/kernel_stats.hpp"
#include "common/memory_tracker.hpp"
#include "common/prng.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "core/refinement.hpp"
#include "core/session.hpp"
#include "core/solver.hpp"
#include "linalg/norms.hpp"
#include "linalg/random.hpp"
#include "lowrank/compression.hpp"
#include "lowrank/kernels.hpp"
#include "ordering/ordering.hpp"
#include "sparse/csc.hpp"
#include "sparse/generators.hpp"
#include "sparse/graph.hpp"
#include "sparse/mm_io.hpp"
#include "symbolic/symbolic.hpp"
