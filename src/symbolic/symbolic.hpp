#pragma once

#include <vector>

#include "common/types.hpp"
#include "ordering/ordering.hpp"
#include "sparse/csc.hpp"

namespace blr::symbolic {

/// Supernode splitting parameters (the paper splits column blocks wider than
/// 256 into chunks of at least 128 to create parallelism while keeping
/// blocks large enough for BLAS-3 / compression).
struct SplitOptions {
  index_t split_threshold = 256;
  index_t split_size = 128;
};

/// Split every supernode range wider than `split_threshold` into balanced
/// chunks of at least `split_size` columns.
std::vector<index_t> split_ranges(const std::vector<index_t>& ranges,
                                  const SplitOptions& opts);

/// One off-diagonal block of a column block: the contiguous row interval
/// [frow, lrow) — entirely inside the column range of `fcblk` — of both the
/// L panel and (for LU) the transposed U panel.
struct Blok {
  index_t frow;   ///< first row (inclusive, permuted numbering)
  index_t lrow;   ///< last row (exclusive)
  index_t fcblk;  ///< column block owning these rows

  [[nodiscard]] index_t height() const { return lrow - frow; }
};

/// One column block (supernode chunk) of the factor.
struct Cblk {
  index_t fcol;               ///< first column (inclusive)
  index_t lcol;               ///< last column (exclusive)
  std::vector<Blok> bloks;    ///< off-diagonal blocks, ascending by frow
  index_t parent = -1;        ///< parent in the supernodal elimination tree

  [[nodiscard]] index_t width() const { return lcol - fcol; }
  [[nodiscard]] index_t height() const {
    index_t h = 0;
    for (const auto& b : bloks) h += b.height();
    return h;
  }
};

/// Block symbolic structure of the factors: the exact (at block granularity)
/// pattern of L (and Uᵗ, identical under the symmetric-pattern assumption).
class SymbolicFactor {
public:
  /// Computes the block structure for matrix `a` under ordering `ord` with
  /// the final (already split) supernode ranges.
  static SymbolicFactor build(const sparse::CscMatrix& a,
                              const ordering::Ordering& ord,
                              const std::vector<index_t>& ranges);

  [[nodiscard]] index_t num_cblks() const { return static_cast<index_t>(cblks_.size()); }
  [[nodiscard]] index_t n() const { return n_; }
  [[nodiscard]] const Cblk& cblk(index_t k) const { return cblks_[static_cast<std::size_t>(k)]; }
  [[nodiscard]] const std::vector<Cblk>& cblks() const { return cblks_; }

  /// Column block owning (permuted) row/column index i.
  [[nodiscard]] index_t cblk_of(index_t i) const { return row2cblk_[static_cast<std::size_t>(i)]; }

  /// Index (within cblk c's blok list) of the blok containing rows
  /// [frow, lrow); the structure guarantees containment for valid updates.
  [[nodiscard]] index_t find_blok(index_t c, index_t frow, index_t lrow) const;

  /// Critical-path priority of every supernode: the estimated elimination
  /// cost (in arbitrary units) of the chain from the supernode to the root
  /// of the elimination tree. The parallel scheduler eliminates ready
  /// supernodes with the largest remaining chain first, so the critical
  /// path never starves behind bushels of cheap leaves. Computed once at
  /// build().
  [[nodiscard]] const std::vector<std::int64_t>& critical_priorities() const {
    return crit_prio_;
  }

  // ---- structure statistics (Figure 1 / DESIGN reporting) ----
  [[nodiscard]] index_t num_bloks() const;
  /// Scalar nonzeros of the dense-block storage of L (diag blocks counted
  /// full, as the solver stores them).
  [[nodiscard]] std::size_t factor_entries_lower() const;
  /// Same for L + U (LU factorizations store both panels).
  [[nodiscard]] std::size_t factor_entries_lu() const;
  [[nodiscard]] double average_blok_height() const;

private:
  index_t n_ = 0;
  std::vector<Cblk> cblks_;
  std::vector<index_t> row2cblk_;
  std::vector<std::int64_t> crit_prio_;
};

} // namespace blr::symbolic
