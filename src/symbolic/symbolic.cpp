#include "symbolic/symbolic.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace blr::symbolic {

std::vector<index_t> split_ranges(const std::vector<index_t>& ranges,
                                  const SplitOptions& opts) {
  BLR_CHECK(opts.split_size >= 1 && opts.split_threshold >= opts.split_size,
            "invalid split options");
  std::vector<index_t> out;
  out.push_back(ranges.front());
  for (std::size_t s = 0; s + 1 < ranges.size(); ++s) {
    const index_t begin = ranges[s];
    const index_t end = ranges[s + 1];
    const index_t width = end - begin;
    if (width <= opts.split_threshold) {
      out.push_back(end);
      continue;
    }
    // Balanced chunks, each at least split_size wide.
    const index_t nchunks = std::max<index_t>(1, width / opts.split_size);
    const index_t base = width / nchunks;
    const index_t extra = width % nchunks;
    index_t pos = begin;
    for (index_t c = 0; c < nchunks; ++c) {
      pos += base + (c < extra ? 1 : 0);
      out.push_back(pos);
    }
    BLR_CHECK(pos == end, "split bookkeeping error");
  }
  return out;
}

SymbolicFactor SymbolicFactor::build(const sparse::CscMatrix& a,
                                     const ordering::Ordering& ord,
                                     const std::vector<index_t>& ranges) {
  BLR_CHECK(a.rows() == a.cols(), "symbolic factorization requires a square matrix");
  const index_t n = a.rows();
  BLR_CHECK(static_cast<index_t>(ord.perm.size()) == n, "ordering size mismatch");
  BLR_CHECK(!ranges.empty() && ranges.front() == 0 && ranges.back() == n,
            "ranges must cover [0, n)");

  SymbolicFactor sf;
  sf.n_ = n;
  const index_t ncblk = static_cast<index_t>(ranges.size()) - 1;
  sf.cblks_.resize(static_cast<std::size_t>(ncblk));
  sf.row2cblk_.resize(static_cast<std::size_t>(n));
  for (index_t k = 0; k < ncblk; ++k) {
    auto& c = sf.cblks_[static_cast<std::size_t>(k)];
    c.fcol = ranges[static_cast<std::size_t>(k)];
    c.lcol = ranges[static_cast<std::size_t>(k) + 1];
    BLR_CHECK(c.lcol > c.fcol, "empty supernode range");
    for (index_t i = c.fcol; i < c.lcol; ++i) sf.row2cblk_[static_cast<std::size_t>(i)] = k;
  }

  // Block symbolic elimination on the supernodal elimination tree:
  //   R(k) = belowDiag(A columns of k)  U  (contributions from children)
  //   parent(k) = cblk of min R(k);   contribute R(k) \ cols(parent) upward.
  const auto& colptr = a.colptr();
  const auto& rowind = a.rowind();
  std::vector<std::vector<index_t>> pending(static_cast<std::size_t>(ncblk));

  for (index_t k = 0; k < ncblk; ++k) {
    auto& c = sf.cblks_[static_cast<std::size_t>(k)];
    std::vector<index_t> rows = std::move(pending[static_cast<std::size_t>(k)]);
    pending[static_cast<std::size_t>(k)].clear();
    pending[static_cast<std::size_t>(k)].shrink_to_fit();

    for (index_t jnew = c.fcol; jnew < c.lcol; ++jnew) {
      const index_t jold = ord.perm[static_cast<std::size_t>(jnew)];
      for (index_t p = colptr[static_cast<std::size_t>(jold)];
           p < colptr[static_cast<std::size_t>(jold) + 1]; ++p) {
        const index_t inew = ord.iperm[static_cast<std::size_t>(
            rowind[static_cast<std::size_t>(p)])];
        if (inew >= c.lcol) rows.push_back(inew);
      }
    }
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());

    // Convert the sorted row set into contiguous bloks split at cblk borders.
    for (std::size_t p = 0; p < rows.size();) {
      const index_t start = rows[p];
      const index_t owner = sf.row2cblk_[static_cast<std::size_t>(start)];
      index_t end = start + 1;
      ++p;
      while (p < rows.size() && rows[p] == end &&
             sf.row2cblk_[static_cast<std::size_t>(rows[p])] == owner) {
        ++end;
        ++p;
      }
      c.bloks.push_back({start, end, owner});
    }

    if (!rows.empty()) {
      const index_t parent = sf.row2cblk_[static_cast<std::size_t>(rows.front())];
      c.parent = parent;
      const index_t plcol = sf.cblks_[static_cast<std::size_t>(parent)].lcol;
      auto& dest = pending[static_cast<std::size_t>(parent)];
      for (const index_t r : rows) {
        if (r >= plcol) dest.push_back(r);
      }
      // Keep pending sets deduplicated to bound memory on wide fan-ins.
      std::sort(dest.begin(), dest.end());
      dest.erase(std::unique(dest.begin(), dest.end()), dest.end());
    }
  }

  // Critical-path priorities for the parallel scheduler: accumulate an
  // elimination-cost estimate (diagonal factorization + panel solve flops,
  // scaled to keep 64 bits comfortable) bottom-up along the tree. Parents
  // always have a larger index than their children, so one reverse sweep
  // suffices.
  sf.crit_prio_.assign(static_cast<std::size_t>(ncblk), 0);
  for (index_t k = ncblk - 1; k >= 0; --k) {
    const Cblk& c = sf.cblks_[static_cast<std::size_t>(k)];
    const double w = static_cast<double>(c.width());
    const double h = static_cast<double>(c.height());
    const auto cost =
        static_cast<std::int64_t>((w * w * w / 3.0 + 2.0 * w * w * h) / 1024.0) + 1;
    const std::int64_t up =
        c.parent >= 0 ? sf.crit_prio_[static_cast<std::size_t>(c.parent)] : 0;
    sf.crit_prio_[static_cast<std::size_t>(k)] = cost + up;
  }
  return sf;
}

index_t SymbolicFactor::find_blok(index_t c, index_t frow, index_t lrow) const {
  const auto& bloks = cblks_[static_cast<std::size_t>(c)].bloks;
  // Binary search for the blok whose interval contains [frow, lrow).
  index_t lo = 0;
  index_t hi = static_cast<index_t>(bloks.size()) - 1;
  while (lo <= hi) {
    const index_t mid = (lo + hi) / 2;
    const Blok& b = bloks[static_cast<std::size_t>(mid)];
    if (frow < b.frow) hi = mid - 1;
    else if (frow >= b.lrow) lo = mid + 1;
    else {
      BLR_CHECK(lrow <= b.lrow, "update interval crosses blok boundary");
      return mid;
    }
  }
  throw Error("find_blok: interval not found in symbolic structure");
}

index_t SymbolicFactor::num_bloks() const {
  index_t n = 0;
  for (const auto& c : cblks_) n += static_cast<index_t>(c.bloks.size());
  return n;
}

std::size_t SymbolicFactor::factor_entries_lower() const {
  std::size_t e = 0;
  for (const auto& c : cblks_) {
    const auto w = static_cast<std::size_t>(c.width());
    e += w * w + static_cast<std::size_t>(c.height()) * w;
  }
  return e;
}

std::size_t SymbolicFactor::factor_entries_lu() const {
  std::size_t e = 0;
  for (const auto& c : cblks_) {
    const auto w = static_cast<std::size_t>(c.width());
    e += w * w + 2 * static_cast<std::size_t>(c.height()) * w;
  }
  return e;
}

double SymbolicFactor::average_blok_height() const {
  const index_t nb = num_bloks();
  if (nb == 0) return 0.0;
  index_t h = 0;
  for (const auto& c : cblks_) h += c.height();
  return static_cast<double>(h) / static_cast<double>(nb);
}

} // namespace blr::symbolic
