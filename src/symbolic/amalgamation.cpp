#include "symbolic/amalgamation.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace blr::symbolic {

std::vector<index_t> amalgamate(const sparse::CscMatrix& a,
                                const ordering::Ordering& ord,
                                std::vector<index_t> ranges,
                                const AmalgamationOptions& opts) {
  BLR_CHECK(opts.frat >= 0, "frat must be non-negative");
  if (ranges.size() <= 2) return ranges;

  // Fill budget is relative to the *initial* block structure.
  const SymbolicFactor sf0 = SymbolicFactor::build(a, ord, ranges);
  const double budget =
      opts.frat * static_cast<double>(sf0.factor_entries_lower());
  double spent = 0;

  for (int pass = 0; pass < opts.max_passes; ++pass) {
    const SymbolicFactor sf = SymbolicFactor::build(a, ord, ranges);
    const index_t ncblk = sf.num_cblks();

    // Greedy non-overlapping merge of (child, parent = child + 1) pairs.
    std::vector<char> merged_into_next(static_cast<std::size_t>(ncblk), 0);
    bool any = false;
    for (index_t k = 0; k + 1 < ncblk; ++k) {
      if (merged_into_next[static_cast<std::size_t>(k)]) continue;
      const Cblk& c = sf.cblk(k);
      if (c.parent != k + 1) continue;           // parent must be range-adjacent
      if (c.width() >= opts.min_width) continue; // only merge small supernodes
      const Cblk& p = sf.cblk(c.parent);

      // Added explicit zeros when c's columns adopt the merged structure:
      // before: wc^2 + hc*wc  (c)  +  wp^2 + hp*wp  (p)
      // after : (wc+wp)^2 + hp*(wc+wp)
      const double wc = static_cast<double>(c.width());
      const double wp = static_cast<double>(p.width());
      const double hc = static_cast<double>(c.height());
      const double hp = static_cast<double>(p.height());
      const double added = wc * (2 * wp + hp - hc);
      if (spent + added > budget) continue;

      spent += added;
      merged_into_next[static_cast<std::size_t>(k)] = 1;
      // Lock the parent for this pass so chains merge one link per pass and
      // every decision uses a consistent structure.
      if (k + 2 < ncblk) merged_into_next[static_cast<std::size_t>(k + 1)] = 1;
      any = true;
      // Drop the boundary between cblk k and k+1.
      ranges.erase(std::find(ranges.begin(), ranges.end(), c.lcol));
    }
    if (!any) break;
  }
  return ranges;
}

} // namespace blr::symbolic
