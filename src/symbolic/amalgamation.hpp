#pragma once

#include <vector>

#include "symbolic/symbolic.hpp"

namespace blr::symbolic {

/// Supernode amalgamation options, mirroring the Scotch parameters the paper
/// uses (§4: "columns aggregation is allowed by Scotch as long as the
/// fill-in introduced does not exceed 8% of the original matrix").
struct AmalgamationOptions {
  double frat = 0.08;        ///< total added zeros <= frat * initial structure entries
  index_t min_width = 64;    ///< only supernodes narrower than this are merged
  int max_passes = 8;        ///< structural fixpoint cap
};

/// Merge small supernodes into their elimination-tree parent when the parent
/// is range-adjacent (the common case for separator chains produced by
/// nested dissection) and the added explicit zeros stay within the fill
/// budget. Returns the new (still contiguous, elimination-ordered) ranges.
std::vector<index_t> amalgamate(const sparse::CscMatrix& a,
                                const ordering::Ordering& ord,
                                std::vector<index_t> ranges,
                                const AmalgamationOptions& opts = {});

} // namespace blr::symbolic
