#include "common/kernel_stats.hpp"

#include <chrono>

namespace blr {

namespace {
std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
} // namespace

KernelStats& KernelStats::instance() {
  static KernelStats stats;
  return stats;
}

void KernelStats::add(Kernel k, std::uint64_t nanos) {
  nanos_[static_cast<int>(k)].fetch_add(nanos, std::memory_order_relaxed);
}

double KernelStats::seconds(Kernel k) const {
  return static_cast<double>(nanos_[static_cast<int>(k)].load(std::memory_order_relaxed)) * 1e-9;
}

double KernelStats::total_seconds() const {
  double s = 0;
  for (int i = 0; i < kN; ++i) {
    // Solve is a separate phase and scheduler idle time is overhead, not
    // kernel work: neither belongs to the factorization total.
    if (i == static_cast<int>(Kernel::Solve) ||
        i == static_cast<int>(Kernel::SchedulerIdle)) {
      continue;
    }
    s += static_cast<double>(nanos_[i].load(std::memory_order_relaxed)) * 1e-9;
  }
  return s;
}

void KernelStats::reset() {
  for (auto& n : nanos_) n.store(0, std::memory_order_relaxed);
}

std::string KernelStats::kernel_name(Kernel k) {
  switch (k) {
    case Kernel::Compression: return "Compression";
    case Kernel::BlockFactorization: return "Block factorization";
    case Kernel::PanelSolve: return "Panel solve";
    case Kernel::LrProduct: return "LR product";
    case Kernel::LrAddition: return "LR addition";
    case Kernel::DenseUpdate: return "Dense update";
    case Kernel::Solve: return "Solve";
    case Kernel::SchedulerIdle: return "Scheduler idle";
    default: return "?";
  }
}

KernelTimer::KernelTimer(Kernel k) : kernel_(k), start_ns_(now_ns()) {}

KernelTimer::~KernelTimer() {
  KernelStats::instance().add(kernel_, now_ns() - start_ns_);
}

} // namespace blr
