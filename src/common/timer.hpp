#pragma once

#include <chrono>

namespace blr {

/// Monotonic wall-clock timer with seconds granularity as double.
class Timer {
public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double elapsed() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

} // namespace blr
