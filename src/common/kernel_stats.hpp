#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace blr {

/// Kernel classes matching the rows of Table 2 of the paper.
enum class Kernel : int {
  Compression = 0,     ///< initial/JIT SVD or RRQR compressions
  BlockFactorization,  ///< dense diagonal-block LU / Cholesky
  PanelSolve,          ///< TRSM on off-diagonal blocks (dense or LR)
  LrProduct,           ///< low-rank x low-rank product (incl. T recompression)
  LrAddition,          ///< LR2LR extend-add recompression
  DenseUpdate,         ///< dense GEMM update (dense solver + LR2GE target add)
  Solve,               ///< triangular solves (forward/backward)
  SchedulerIdle,       ///< worker spin/steal backoff time (not part of facto total)
  kCount
};

/// Accumulates wall time per kernel class across all threads.
///
/// Times are accumulated as atomic nanosecond counters; the factorization
/// wraps each kernel call in a KernelTimer. The cost-distribution benches
/// read these to regenerate Table 2.
class KernelStats {
public:
  static KernelStats& instance();

  void add(Kernel k, std::uint64_t nanos);
  [[nodiscard]] double seconds(Kernel k) const;
  [[nodiscard]] double total_seconds() const;
  void reset();

  static std::string kernel_name(Kernel k);

private:
  KernelStats() = default;
  static constexpr int kN = static_cast<int>(Kernel::kCount);
  std::array<std::atomic<std::uint64_t>, kN> nanos_{};
};

/// RAII scope timer feeding KernelStats.
class KernelTimer {
public:
  explicit KernelTimer(Kernel k);
  ~KernelTimer();
  KernelTimer(const KernelTimer&) = delete;
  KernelTimer& operator=(const KernelTimer&) = delete;

private:
  Kernel kernel_;
  std::uint64_t start_ns_;
};

} // namespace blr
