#include "common/resource_governor.hpp"

namespace blr {

ResourceReport ResourceGovernor::deadline_report(index_t supernode) const {
  ResourceReport r;
  r.kind = ResourceKind::Deadline;
  r.budget_bytes = budget_;
  r.supernode = supernode;
  r.deadline_seconds = deadline_s_;
  r.elapsed_seconds = elapsed_seconds();
  r.injected = skew_.load(std::memory_order_relaxed) > 0;
  const MemoryTracker& t = MemoryTracker::instance();
  for (std::size_t c = 0; c < r.live_bytes.size(); ++c) {
    r.live_bytes[c] = t.current(static_cast<MemCategory>(c));
  }
  r.peak_bytes = t.peak_total();
  if (r.injected) r.detail = "clock skew injected";
  return r;
}

} // namespace blr
