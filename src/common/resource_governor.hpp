#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/error.hpp"
#include "common/memory_tracker.hpp"
#include "common/timer.hpp"

namespace blr {

/// Enforces the resource contract of one governed factorization: a hard
/// memory budget (delegated to the MemoryTracker's soft-failing allocate)
/// and a wall-clock deadline, spanning every recovery-ladder attempt of one
/// Solver::factorize call.
///
/// The deadline is an epoch-checked watchdog, not a timer thread: the
/// numeric driver calls deadline_exceeded() from its hot loops, and only
/// every kPollStride-th call actually reads the clock — the rest cost one
/// relaxed fetch_add. Once the deadline trips, the flag is sticky, so every
/// subsequent poll (on any worker) reports expiry immediately and the
/// cooperative-cancellation drain (ThreadPool::cancel via record_failure)
/// finishes the run without leaking tasks.
///
/// skew() is the deterministic-test hook (FaultInjection::Kind::ClockSkew):
/// it advances the observed clock and re-evaluates expiry on the spot, so a
/// deadline trip can be pinned to an exact supernode in tests.
class ResourceGovernor {
public:
  /// Start governing: install `budget_bytes` on the MemoryTracker (0: no
  /// budget) and start the deadline clock (`deadline_seconds` 0: none).
  void arm(std::size_t budget_bytes, double deadline_seconds) {
    budget_ = budget_bytes;
    deadline_s_ = deadline_seconds;
    skew_.store(0.0, std::memory_order_relaxed);
    polls_.store(0, std::memory_order_relaxed);
    expired_.store(false, std::memory_order_relaxed);
    armed_ = true;
    clock_.reset();
    apply_budget();
  }

  /// Stop governing and clear the tracker's budget/fail point.
  void disarm() {
    armed_ = false;
    MemoryTracker::instance().set_budget(0);
    MemoryTracker::instance().set_fail_at(0);
  }

  /// Re-install the budget after a MemoryTracker::reset() (each recovery
  /// attempt resets the tracker for a fresh peak measurement).
  void apply_budget() const {
    if (armed_) MemoryTracker::instance().set_budget(budget_);
  }

  [[nodiscard]] bool armed() const { return armed_; }
  [[nodiscard]] std::size_t budget_bytes() const { return budget_; }
  [[nodiscard]] double deadline_seconds() const { return deadline_s_; }
  [[nodiscard]] bool deadline_active() const {
    return armed_ && deadline_s_ > 0;
  }

  /// Seconds since arm(), including injected skew.
  [[nodiscard]] double elapsed_seconds() const {
    return clock_.elapsed() + skew_.load(std::memory_order_relaxed);
  }

  /// Cheap watchdog poll: true once the deadline has passed (sticky). Reads
  /// the clock only every kPollStride-th call.
  bool deadline_exceeded() {
    if (!deadline_active()) return false;
    if (expired_.load(std::memory_order_relaxed)) return true;
    const std::uint32_t n = polls_.fetch_add(1, std::memory_order_relaxed);
    if (n % kPollStride != 0) return false;
    if (elapsed_seconds() > deadline_s_) {
      expired_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Advance the observed clock by `seconds` (fault injection) and
  /// re-evaluate expiry immediately, so the trip point is deterministic.
  void skew(double seconds) {
    double cur = skew_.load(std::memory_order_relaxed);
    while (!skew_.compare_exchange_weak(cur, cur + seconds,
                                        std::memory_order_relaxed)) {
    }
    if (deadline_active() && elapsed_seconds() > deadline_s_) {
      expired_.store(true, std::memory_order_relaxed);
    }
  }

  /// Structured report of a deadline breach, snapshotting the tracker state.
  [[nodiscard]] ResourceReport deadline_report(index_t supernode) const;

private:
  static constexpr std::uint32_t kPollStride = 64;

  Timer clock_;
  std::size_t budget_ = 0;
  double deadline_s_ = 0;
  bool armed_ = false;
  std::atomic<double> skew_{0.0};
  std::atomic<std::uint32_t> polls_{0};
  std::atomic<bool> expired_{false};
};

} // namespace blr
