#pragma once

#include <stdexcept>
#include <string>
#include <sstream>

namespace blr {

/// Exception thrown on precondition violations in the public API.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a numerical factorization breaks down (zero/tiny pivot,
/// non-positive-definite matrix handed to Cholesky, ...).
class NumericalError : public Error {
public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "BLR_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
} // namespace detail

} // namespace blr

/// Precondition check that stays enabled in release builds. Use for public
/// API argument validation; hot inner loops should use assert() instead.
#define BLR_CHECK(expr, msg)                                                  \
  do {                                                                        \
    if (!(expr)) ::blr::detail::throw_check_failure(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
