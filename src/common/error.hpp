#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <sstream>
#include <utility>

#include "common/memory_tracker.hpp"
#include "common/types.hpp"

namespace blr {

/// Exception thrown on precondition violations in the public API.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Machine-readable classification of a numerical breakdown.
enum class FailureKind {
  Unknown,            ///< unclassified (e.g. an std::exception from a kernel)
  ZeroPivot,          ///< getrf met an exactly-zero pivot column
  NonPositivePivot,   ///< potrf met a non-positive (or non-finite) pivot
  NonFiniteInput,     ///< NaN/Inf among the assembly input values
  NonFiniteBlock,     ///< NaN/Inf in an assembled (pre-factorization) block
  NonFinitePanel,     ///< NaN/Inf in a factored panel (post-factorization)
  CompressionFailure, ///< a low-rank compression failed (or was injected to)
  NotFactorized,      ///< solve/refine requested but no successful factorization is held
};

const char* failure_kind_name(FailureKind k);

/// Structured description of a numerical breakdown, carried by
/// NumericalError so callers can react programmatically (retry ladder,
/// telemetry, tests) instead of parsing an exception message.
struct FailureReport {
  FailureKind kind = FailureKind::Unknown;
  index_t supernode = -1;    ///< failing column block (-1: not tied to one)
  index_t local_pivot = -1;  ///< pivot index within the supernode (-1: n/a)
  /// |pivot| that triggered the breakdown (NaN when not applicable).
  double pivot_magnitude = std::nan("");
  std::string strategy;      ///< active Strategy name ("Dense", ...)
  std::string compression;   ///< active compression-kind name ("RRQR", ...)
  std::string factorization; ///< "LLt" or "LU"
  double tolerance = 0;      ///< active block tolerance τ
  double elapsed_seconds = 0;///< time into the factorization at failure
  int attempt = 0;           ///< recovery-ladder attempt index (0 = first try)
  std::string detail;        ///< free-form context from the failure site

  [[nodiscard]] std::string to_string() const;
};

/// Thrown when a numerical factorization breaks down (zero/tiny pivot,
/// non-positive-definite matrix handed to Cholesky, non-finite data, ...).
/// Carries a FailureReport describing where and under which configuration
/// the breakdown happened.
class NumericalError : public Error {
public:
  explicit NumericalError(const std::string& what) : Error(what) {}
  NumericalError(const std::string& what, FailureReport report)
      : Error(what), report_(std::move(report)) {}

  [[nodiscard]] const FailureReport& report() const { return report_; }
  [[nodiscard]] FailureReport& report() { return report_; }

private:
  FailureReport report_;
};

/// Machine-readable classification of a resource-limit breach.
enum class ResourceKind {
  MemoryBudget,  ///< a tracked allocation would exceed SolverOptions::memory_budget_bytes
  Deadline,      ///< the factorization ran past SolverOptions::deadline_ms
};

const char* resource_kind_name(ResourceKind k);

/// Structured description of a resource-limit breach, carried by
/// ResourceError: the FailureReport analogue for the governed-run contract
/// ("fail the request, never the process"). Built at the breach site (the
/// MemoryTracker for budget breaches, the ResourceGovernor for deadlines)
/// and enriched by the catcher (requesting supernode, attempt index).
struct ResourceReport {
  ResourceKind kind = ResourceKind::MemoryBudget;
  std::size_t budget_bytes = 0;     ///< active memory budget (0: none)
  std::size_t requested_bytes = 0;  ///< size of the breaching request (0: n/a)
  /// Category of the breaching allocation (MemoryBudget only).
  MemCategory category = MemCategory::Other;
  /// Live bytes per MemCategory at the moment of the breach.
  std::array<std::size_t, static_cast<std::size_t>(MemCategory::kCount)>
      live_bytes{};
  std::size_t peak_bytes = 0;  ///< total high-water mark at the breach
  index_t supernode = -1;      ///< requesting supernode (-1: not tied to one)
  double deadline_seconds = 0; ///< active deadline (0: none)
  double elapsed_seconds = 0;  ///< time into the factorization at the breach
  int attempt = 0;             ///< recovery-ladder attempt index (0 = first try)
  bool injected = false;       ///< raised by FaultInjection, not a real limit
  std::string detail;          ///< free-form context from the breach site

  [[nodiscard]] std::string to_string() const;
};

/// Thrown when the factorization hits a configured resource limit (memory
/// budget, wall-clock deadline) or a fault-injected stand-in for one.
/// Distinct from NumericalError: the matrix is fine, the machine ran out —
/// Solver::factorize climbs the *resource* recovery ladder for these.
class ResourceError : public Error {
public:
  explicit ResourceError(const std::string& what) : Error(what) {}
  ResourceError(const std::string& what, ResourceReport report)
      : Error(what), report_(std::move(report)) {}

  [[nodiscard]] const ResourceReport& report() const { return report_; }
  [[nodiscard]] ResourceReport& report() { return report_; }

private:
  ResourceReport report_;
};

inline const char* failure_kind_name(FailureKind k) {
  switch (k) {
    case FailureKind::Unknown: return "unknown";
    case FailureKind::ZeroPivot: return "zero-pivot";
    case FailureKind::NonPositivePivot: return "non-positive-pivot";
    case FailureKind::NonFiniteInput: return "non-finite-input";
    case FailureKind::NonFiniteBlock: return "non-finite-block";
    case FailureKind::NonFinitePanel: return "non-finite-panel";
    case FailureKind::CompressionFailure: return "compression-failure";
    case FailureKind::NotFactorized: return "not-factorized";
  }
  return "?";
}

inline std::string FailureReport::to_string() const {
  std::ostringstream os;
  os << "numerical breakdown [" << failure_kind_name(kind) << "]";
  if (supernode >= 0) os << " in supernode " << supernode;
  if (local_pivot >= 0) os << " at local pivot " << local_pivot;
  if (!std::isnan(pivot_magnitude)) os << " (|pivot| = " << pivot_magnitude << ")";
  os << "; " << factorization << " " << strategy << "/" << compression
     << ", tau = " << tolerance << ", attempt " << attempt << ", after "
     << elapsed_seconds << " s";
  if (!detail.empty()) os << "; " << detail;
  return os.str();
}

inline const char* resource_kind_name(ResourceKind k) {
  switch (k) {
    case ResourceKind::MemoryBudget: return "memory-budget";
    case ResourceKind::Deadline: return "deadline";
  }
  return "?";
}

inline std::string ResourceReport::to_string() const {
  std::ostringstream os;
  os << "resource limit [" << resource_kind_name(kind) << "]";
  if (injected) os << " (injected)";
  if (supernode >= 0) os << " at supernode " << supernode;
  if (kind == ResourceKind::MemoryBudget) {
    os << ": request of " << requested_bytes << " B ("
       << MemoryTracker::category_name(category) << ") over budget "
       << budget_bytes << " B";
  } else {
    os << ": elapsed " << elapsed_seconds << " s exceeds deadline "
       << deadline_seconds << " s";
  }
  os << "; live";
  for (std::size_t c = 0; c < live_bytes.size(); ++c) {
    os << " " << MemoryTracker::category_name(static_cast<MemCategory>(c))
       << "=" << live_bytes[c];
  }
  os << " B, peak " << peak_bytes << " B, attempt " << attempt << ", after "
     << elapsed_seconds << " s";
  if (!detail.empty()) os << "; " << detail;
  return os.str();
}

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "BLR_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
} // namespace detail

} // namespace blr

/// Precondition check that stays enabled in release builds. Use for public
/// API argument validation; hot inner loops should use assert() instead.
#define BLR_CHECK(expr, msg)                                                  \
  do {                                                                        \
    if (!(expr)) ::blr::detail::throw_check_failure(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
