#include "common/memory_tracker.hpp"

namespace blr {

MemoryTracker& MemoryTracker::instance() {
  static MemoryTracker tracker;
  return tracker;
}

void MemoryTracker::allocate(MemCategory cat, std::size_t bytes) {
  const int c = static_cast<int>(cat);
  const std::size_t now = current_[c].fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::size_t expected = peak_[c].load(std::memory_order_relaxed);
  while (now > expected &&
         !peak_[c].compare_exchange_weak(expected, now, std::memory_order_relaxed)) {
  }
  const std::size_t tot = total_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::size_t texp = total_peak_.load(std::memory_order_relaxed);
  while (tot > texp &&
         !total_peak_.compare_exchange_weak(texp, tot, std::memory_order_relaxed)) {
  }
}

void MemoryTracker::release(MemCategory cat, std::size_t bytes) {
  current_[static_cast<int>(cat)].fetch_sub(bytes, std::memory_order_relaxed);
  total_.fetch_sub(bytes, std::memory_order_relaxed);
}

std::size_t MemoryTracker::current(MemCategory cat) const {
  return current_[static_cast<int>(cat)].load(std::memory_order_relaxed);
}

std::size_t MemoryTracker::peak(MemCategory cat) const {
  return peak_[static_cast<int>(cat)].load(std::memory_order_relaxed);
}

std::size_t MemoryTracker::current_total() const {
  return total_.load(std::memory_order_relaxed);
}

std::size_t MemoryTracker::peak_total() const {
  return total_peak_.load(std::memory_order_relaxed);
}

void MemoryTracker::reset() {
  for (auto& c : current_) c.store(0, std::memory_order_relaxed);
  for (auto& p : peak_) p.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  total_peak_.store(0, std::memory_order_relaxed);
}

std::string MemoryTracker::category_name(MemCategory cat) {
  switch (cat) {
    case MemCategory::Factors: return "factors";
    case MemCategory::Symbolic: return "symbolic";
    case MemCategory::Workspace: return "workspace";
    case MemCategory::Other: return "other";
    default: return "?";
  }
}

} // namespace blr
