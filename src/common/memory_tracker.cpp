#include "common/memory_tracker.hpp"

#include "common/error.hpp"

namespace blr {

MemoryTracker& MemoryTracker::instance() {
  static MemoryTracker tracker;
  return tracker;
}

void MemoryTracker::throw_breach(MemCategory cat, std::size_t bytes,
                                 std::size_t limit, bool injected) const {
  ResourceReport r;
  r.kind = ResourceKind::MemoryBudget;
  r.budget_bytes = limit;
  r.requested_bytes = bytes;
  r.category = cat;
  for (int c = 0; c < kN; ++c) {
    r.live_bytes[static_cast<std::size_t>(c)] =
        current_[c].load(std::memory_order_relaxed);
  }
  r.peak_bytes = total_peak_.load(std::memory_order_relaxed);
  r.injected = injected;
  if (injected) r.detail = "armed allocation fail point";
  throw ResourceError(r.to_string(), std::move(r));
}

void MemoryTracker::allocate(MemCategory cat, std::size_t bytes) {
  const int c = static_cast<int>(cat);
  // Reserve against the total first: a breach rolls the reservation back
  // *before* any peak update, so the recorded high-water mark never exceeds
  // the budget. Two racing requests may both observe the transient sum and
  // both fail although one alone would fit — conservative by design: the
  // budget is a hard ceiling, not a fairness contract.
  const std::size_t tot = total_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  const std::size_t budget = budget_.load(std::memory_order_relaxed);
  if (budget > 0 && tot > budget) {
    total_.fetch_sub(bytes, std::memory_order_relaxed);
    throw_breach(cat, bytes, budget, /*injected=*/false);
  }
  std::size_t fail_at = fail_at_.load(std::memory_order_relaxed);
  if (fail_at > 0 && tot >= fail_at) {
    const int filter = fail_at_cat_.load(std::memory_order_relaxed);
    // One-shot: the CAS consumes the fail point, so exactly one allocation
    // fires it even under concurrent crossings.
    if ((filter < 0 || filter == c) &&
        fail_at_.compare_exchange_strong(fail_at, 0, std::memory_order_relaxed)) {
      total_.fetch_sub(bytes, std::memory_order_relaxed);
      throw_breach(cat, bytes, fail_at, /*injected=*/true);
    }
  }
  const std::size_t now = current_[c].fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::size_t expected = peak_[c].load(std::memory_order_relaxed);
  while (now > expected &&
         !peak_[c].compare_exchange_weak(expected, now, std::memory_order_relaxed)) {
  }
  std::size_t texp = total_peak_.load(std::memory_order_relaxed);
  while (tot > texp &&
         !total_peak_.compare_exchange_weak(texp, tot, std::memory_order_relaxed)) {
  }
}

void MemoryTracker::release(MemCategory cat, std::size_t bytes) {
  // Saturating subtraction: storage can legitimately outlive a reset() (a
  // Session serving the previous pass's factors, a cross-pass buffer pool),
  // and its eventual release must not wrap the freshly-zeroed counters into
  // huge totals that would trip every budget check afterwards.
  const auto sub_clamped = [](std::atomic<std::size_t>& a, std::size_t b) {
    std::size_t cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur > b ? cur - b : 0,
                                    std::memory_order_relaxed)) {
    }
  };
  sub_clamped(current_[static_cast<int>(cat)], bytes);
  sub_clamped(total_, bytes);
}

std::size_t MemoryTracker::current(MemCategory cat) const {
  return current_[static_cast<int>(cat)].load(std::memory_order_relaxed);
}

std::size_t MemoryTracker::peak(MemCategory cat) const {
  return peak_[static_cast<int>(cat)].load(std::memory_order_relaxed);
}

std::size_t MemoryTracker::current_total() const {
  return total_.load(std::memory_order_relaxed);
}

std::size_t MemoryTracker::peak_total() const {
  return total_peak_.load(std::memory_order_relaxed);
}

void MemoryTracker::reset() {
  for (auto& c : current_) c.store(0, std::memory_order_relaxed);
  for (auto& p : peak_) p.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  total_peak_.store(0, std::memory_order_relaxed);
  budget_.store(0, std::memory_order_relaxed);
  fail_at_.store(0, std::memory_order_relaxed);
  fail_at_cat_.store(-1, std::memory_order_relaxed);
}

std::string MemoryTracker::category_name(MemCategory cat) {
  switch (cat) {
    case MemCategory::Factors: return "factors";
    case MemCategory::Symbolic: return "symbolic";
    case MemCategory::Workspace: return "workspace";
    case MemCategory::Other: return "other";
    default: return "?";
  }
}

} // namespace blr
