#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace blr {

/// Fixed-size worker pool with a shared task queue.
///
/// This is the execution substrate for the solver's static scheduler: the
/// numeric factorization enqueues one task per ready supernode and tasks
/// enqueue their successors when dependency counters drain, mirroring the
/// static-scheduling design of PaStiX.
class ThreadPool {
public:
  /// Creates @p num_threads workers. 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedule a task. Never blocks.
  void submit(std::function<void()> task);

  /// Block until every submitted task (including tasks submitted by running
  /// tasks) has finished.
  void wait_idle();

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Run f(i) for i in [0, n) across the pool and wait for completion.
  /// Work is chunked to limit queue traffic.
  void parallel_for(index_t n, const std::function<void(index_t)>& f);

private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  index_t pending_ = 0;  // queued + running tasks
  bool stop_ = false;
};

} // namespace blr
