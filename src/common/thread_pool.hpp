#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace blr {

/// Task scheduler flavour of the worker pool.
enum class SchedulerKind {
  /// Per-worker Chase–Lev deques (LIFO local push/pop, FIFO random steal)
  /// plus a priority heap for submissions from non-worker threads. This is
  /// the default: the numeric factorization submits supernode eliminations
  /// with their critical-path priority and lets idle workers steal.
  WorkStealing,
  /// The original single mutex-protected FIFO queue. Kept so benches can
  /// A/B the schedulers; ignores task priorities.
  SharedQueue,
};

const char* scheduler_name(SchedulerKind k);

/// Fixed-size worker pool executing the solver's elimination task graph.
///
/// Two scheduling substrates are available behind the same interface (see
/// SchedulerKind). Both keep the same guarantees: submit() never blocks,
/// tasks may submit further tasks, and wait_idle() returns only once every
/// transitively submitted task has finished.
class ThreadPool {
public:
  /// Per-worker scheduler counters (monotonic until reset_stats()).
  struct WorkerStats {
    std::uint64_t executed = 0;       ///< tasks run by this worker
    std::uint64_t steals = 0;         ///< tasks taken from another worker's deque
    std::uint64_t failed_steals = 0;  ///< full victim sweeps that found nothing
    std::uint64_t idle_sleeps = 0;    ///< times the worker blocked after backoff
    std::uint64_t discarded = 0;      ///< tasks dropped unrun by cancellation
  };

  /// Creates @p num_threads workers. 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads = 0,
                      SchedulerKind kind = SchedulerKind::WorkStealing);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedule a task. Never blocks. Larger @p priority runs earlier among
  /// tasks waiting in the injection heap (work-stealing scheduler only;
  /// worker-local submissions run LIFO, which already favours the chain the
  /// submitting task just extended).
  void submit(std::function<void()> task, std::int64_t priority = 0);

  /// Block until every submitted task (including tasks submitted by running
  /// tasks) has finished. Must be called from outside the pool.
  void wait_idle();

  /// Cooperative cancellation: every task still queued (and every task
  /// submitted from now on) is discarded unrun instead of executed; tasks
  /// already running are not interrupted (they are expected to poll their
  /// own failure flag). wait_idle() still accounts for discarded tasks, so
  /// it returns as soon as the running tasks finish and the queues drain.
  /// The pool stays usable: clear with reset_cancel() before the next batch.
  /// This is the drain path for numerical breakdowns and resource breaches
  /// alike — the ResourceGovernor's deadline watchdog routes through the
  /// same record-failure-then-cancel sequence (DESIGN.md §13).
  void cancel();
  void reset_cancel() { cancelled_.store(false, std::memory_order_seq_cst); }
  [[nodiscard]] bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Tasks currently queued or running. 0 after wait_idle() returns — the
  /// no-task-leak invariant the DAG cancellation tests assert.
  [[nodiscard]] index_t pending() const {
    return pending_.load(std::memory_order_acquire);
  }

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }
  [[nodiscard]] SchedulerKind kind() const { return kind_; }

  /// Run f(i) for i in [0, n) across the pool and wait for completion.
  /// Work is chunked to limit queue traffic. Safe to call from inside a
  /// running task (the caller participates instead of blocking the pool).
  void parallel_for(index_t n, const std::function<void(index_t)>& f);

  /// Dense worker index of the calling thread in its pool, or -1 when the
  /// caller is not a pool worker.
  static int current_worker();

  [[nodiscard]] std::vector<WorkerStats> worker_stats() const;
  /// Sum of worker_stats() over all workers.
  [[nodiscard]] WorkerStats total_stats() const;
  void reset_stats();

private:
  struct Task {
    std::function<void()> fn;
    std::int64_t priority = 0;
    std::uint64_t seq = 0;  ///< submission order, FIFO tie-break in the heap
  };

  /// Chase–Lev work-stealing deque of Task pointers. The owning worker
  /// pushes/pops at the bottom (LIFO); thieves steal from the top (FIFO).
  /// Grows by doubling; retired arrays are kept until destruction so
  /// concurrent thieves never read freed memory.
  class Deque {
  public:
    Deque();
    ~Deque();
    void push(Task* t);          ///< owner only
    Task* pop();                 ///< owner only
    Task* steal();               ///< any thread
    [[nodiscard]] bool maybe_nonempty() const;

  private:
    struct Slots {
      explicit Slots(std::int64_t c)
          : cap(c), mask(c - 1), buf(new std::atomic<Task*>[static_cast<std::size_t>(c)]) {}
      std::int64_t cap;
      std::int64_t mask;
      std::unique_ptr<std::atomic<Task*>[]> buf;
    };
    Slots* grow(Slots* a, std::int64_t top, std::int64_t bottom);

    std::atomic<std::int64_t> top_{0};
    std::atomic<std::int64_t> bottom_{0};
    std::atomic<Slots*> slots_;
    std::vector<Slots*> retired_;  ///< owner-only; freed in the destructor
  };

  struct alignas(64) Worker {
    Deque deque;
    std::uint64_t rng = 0;  ///< victim-selection state, worker-local
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> failed_steals{0};
    std::atomic<std::uint64_t> idle_sleeps{0};
    std::atomic<std::uint64_t> discarded{0};
  };

  void worker_loop(int id);
  void run_task(Task* t, Worker& me);
  Task* pop_injected();
  Task* try_steal(int id, Worker& me);
  [[nodiscard]] bool has_work() const;
  void wake_sleepers();

  struct HeapCmp {
    bool operator()(const Task* a, const Task* b) const {
      if (a->priority != b->priority) return a->priority < b->priority;
      return a->seq > b->seq;  // equal priority: submission order
    }
  };

  SchedulerKind kind_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Injection heap (work-stealing): submissions from non-worker threads.
  std::mutex inject_mutex_;
  std::priority_queue<Task*, std::vector<Task*>, HeapCmp> inject_;
  std::atomic<std::int64_t> inject_count_{0};

  // Shared FIFO (SchedulerKind::SharedQueue).
  std::mutex shared_mutex_;
  std::condition_variable cv_shared_;
  std::deque<Task*> shared_;

  // Sleep / wake / idle protocol (work-stealing) and idle wait (both kinds).
  std::mutex sleep_mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::atomic<int> sleepers_{0};
  std::atomic<index_t> pending_{0};  ///< queued + running tasks
  std::atomic<bool> stop_{false};
  std::atomic<bool> cancelled_{false};
  std::atomic<std::uint64_t> seq_{0};
};

} // namespace blr
