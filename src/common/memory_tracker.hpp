#pragma once

#include <atomic>
#include <array>
#include <cstddef>
#include <string>

namespace blr {

/// Memory categories tracked separately so benches can report "factors" vs
/// "management structures" the way Figure 7 of the paper does.
enum class MemCategory : int {
  Factors = 0,     ///< numeric factor blocks (dense or low-rank U/V)
  Symbolic,        ///< symbolic structure (cblk/blok descriptors)
  Workspace,       ///< temporaries used by kernels
  Other,
  kCount
};

/// Process-wide, thread-safe byte counter with per-category current/peak.
///
/// The solver registers every allocation/release of numeric storage here;
/// tests assert e.g. that the Minimal-Memory strategy never reaches the
/// dense factor footprint.
///
/// With a budget installed (set_budget), allocate() *fails softly*: a request
/// that would push the live total past the budget is rolled back before any
/// peak update — so the recorded high-water mark can never exceed the budget
/// — and throws blr::ResourceError carrying a structured ResourceReport
/// instead of letting the process run into the OOM killer. set_fail_at()
/// plants a one-shot injected failure for deterministic testing of every
/// budget-handling path (FaultInjection::Kind::AllocFail).
class MemoryTracker {
public:
  static MemoryTracker& instance();

  /// Register `bytes` of live storage under `cat`. Throws blr::ResourceError
  /// (leaving every counter unchanged) when the new live total would exceed
  /// the installed budget, or when it crosses an armed fail point.
  void allocate(MemCategory cat, std::size_t bytes);
  void release(MemCategory cat, std::size_t bytes);

  /// Install a hard budget on the live total (0 = unlimited, the default).
  /// Cleared by reset().
  void set_budget(std::size_t bytes) {
    budget_.store(bytes, std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t budget() const {
    return budget_.load(std::memory_order_relaxed);
  }

  /// Arm a one-shot injected allocation failure: the first allocate() that
  /// brings the live total to `bytes` or beyond — restricted to category
  /// `cat` unless it is negative — throws a ResourceError marked `injected`.
  /// Consumed by firing; cleared by reset() or bytes = 0.
  void set_fail_at(std::size_t bytes, int cat = -1) {
    fail_at_cat_.store(cat, std::memory_order_relaxed);
    fail_at_.store(bytes, std::memory_order_relaxed);
  }

  /// Current live bytes in one category.
  [[nodiscard]] std::size_t current(MemCategory cat) const;
  /// Peak live bytes observed in one category since last reset.
  [[nodiscard]] std::size_t peak(MemCategory cat) const;
  /// Current live bytes over all categories.
  [[nodiscard]] std::size_t current_total() const;
  /// Peak of the *total* (not the sum of per-category peaks).
  [[nodiscard]] std::size_t peak_total() const;

  void reset();

  static std::string category_name(MemCategory cat);

private:
  MemoryTracker() = default;

  static constexpr int kN = static_cast<int>(MemCategory::kCount);
  /// Build the report and throw; out of line so this header stays free of
  /// the error-header dependency (error.hpp includes this file).
  [[noreturn]] void throw_breach(MemCategory cat, std::size_t bytes,
                                 std::size_t limit, bool injected) const;

  std::array<std::atomic<std::size_t>, kN> current_{};
  std::array<std::atomic<std::size_t>, kN> peak_{};
  std::atomic<std::size_t> total_{0};
  std::atomic<std::size_t> total_peak_{0};
  std::atomic<std::size_t> budget_{0};       ///< live-total cap (0: none)
  std::atomic<std::size_t> fail_at_{0};      ///< one-shot injected fail point
  std::atomic<int> fail_at_cat_{-1};         ///< category filter (-1: any)
};

/// RAII registration of a block of tracked memory.
class TrackedAlloc {
public:
  TrackedAlloc() = default;
  TrackedAlloc(MemCategory cat, std::size_t bytes) : cat_(cat), bytes_(bytes) {
    if (bytes_ > 0) MemoryTracker::instance().allocate(cat_, bytes_);
  }
  TrackedAlloc(const TrackedAlloc&) = delete;
  TrackedAlloc& operator=(const TrackedAlloc&) = delete;
  TrackedAlloc(TrackedAlloc&& other) noexcept { swap(other); }
  TrackedAlloc& operator=(TrackedAlloc&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }
  ~TrackedAlloc() { release(); }

  /// Adjust the tracked size (e.g. a low-rank block whose rank changed).
  void resize(std::size_t bytes) {
    if (bytes == bytes_) return;
    auto& t = MemoryTracker::instance();
    if (bytes > bytes_) t.allocate(cat_, bytes - bytes_);
    else t.release(cat_, bytes_ - bytes);
    bytes_ = bytes;
  }

  [[nodiscard]] std::size_t bytes() const { return bytes_; }

private:
  void swap(TrackedAlloc& o) {
    std::swap(cat_, o.cat_);
    std::swap(bytes_, o.bytes_);
  }
  void release() {
    if (bytes_ > 0) {
      MemoryTracker::instance().release(cat_, bytes_);
      bytes_ = 0;
    }
  }

  MemCategory cat_ = MemCategory::Other;
  std::size_t bytes_ = 0;
};

} // namespace blr
