#include "common/thread_pool.hpp"

#include <algorithm>
#include <limits>

#include "common/kernel_stats.hpp"

namespace blr {

namespace {

/// Identity of the pool (and worker slot) owning the current thread, so
/// submit() can route worker-local tasks to the local deque and trace events
/// can report dense worker indices.
thread_local ThreadPool* tl_pool = nullptr;
thread_local int tl_worker = -1;

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Failed acquisition rounds (with yields) before a worker blocks.
constexpr int kSpinRounds = 32;

} // namespace

const char* scheduler_name(SchedulerKind k) {
  switch (k) {
    case SchedulerKind::WorkStealing: return "work-stealing";
    case SchedulerKind::SharedQueue: return "shared-queue";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Chase–Lev deque
//
// Memory ordering note: top_/bottom_ are accessed with seq_cst throughout.
// The classic formulation saves a few barriers with standalone fences, but
// seq_cst RMW/loads keep the Dekker-style reasoning (and ThreadSanitizer,
// which models atomics precisely and fences poorly) happy, and the deque is
// nowhere near the critical path next to multi-millisecond BLAS tasks.
// ---------------------------------------------------------------------------

ThreadPool::Deque::Deque() : slots_(new Slots(64)) {}

ThreadPool::Deque::~Deque() {
  delete slots_.load(std::memory_order_relaxed);
  for (Slots* s : retired_) delete s;
}

bool ThreadPool::Deque::maybe_nonempty() const {
  return bottom_.load(std::memory_order_seq_cst) >
         top_.load(std::memory_order_seq_cst);
}

ThreadPool::Deque::Slots* ThreadPool::Deque::grow(Slots* a, std::int64_t top,
                                                  std::int64_t bottom) {
  Slots* bigger = new Slots(a->cap * 2);
  for (std::int64_t i = top; i < bottom; ++i) {
    bigger->buf[i & bigger->mask].store(a->buf[i & a->mask].load(std::memory_order_relaxed),
                                        std::memory_order_relaxed);
  }
  retired_.push_back(a);
  slots_.store(bigger, std::memory_order_release);
  return bigger;
}

void ThreadPool::Deque::push(Task* t) {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  const std::int64_t tp = top_.load(std::memory_order_acquire);
  Slots* a = slots_.load(std::memory_order_relaxed);
  if (b - tp >= a->cap) a = grow(a, tp, b);
  a->buf[b & a->mask].store(t, std::memory_order_relaxed);
  // seq_cst publish: pairs with the thief's top_/bottom_ loads and with the
  // sleepers_ load in ThreadPool::submit (work-visibility handshake).
  bottom_.store(b + 1, std::memory_order_seq_cst);
}

ThreadPool::Task* ThreadPool::Deque::pop() {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  Slots* a = slots_.load(std::memory_order_relaxed);
  bottom_.store(b, std::memory_order_seq_cst);
  std::int64_t tp = top_.load(std::memory_order_seq_cst);
  if (tp > b) {  // empty
    bottom_.store(b + 1, std::memory_order_relaxed);
    return nullptr;
  }
  Task* t = a->buf[b & a->mask].load(std::memory_order_relaxed);
  if (tp == b) {
    // Last element: race against thieves on top_.
    if (!top_.compare_exchange_strong(tp, tp + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      t = nullptr;  // a thief won
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
  }
  return t;
}

ThreadPool::Task* ThreadPool::Deque::steal() {
  std::int64_t tp = top_.load(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
  if (tp >= b) return nullptr;
  Slots* a = slots_.load(std::memory_order_acquire);
  Task* t = a->buf[tp & a->mask].load(std::memory_order_relaxed);
  if (!top_.compare_exchange_strong(tp, tp + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed)) {
    return nullptr;  // lost the race; caller retries elsewhere
  }
  return t;
}

// ---------------------------------------------------------------------------
// Pool
// ---------------------------------------------------------------------------

ThreadPool::ThreadPool(int num_threads, SchedulerKind kind) : kind_(kind) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    auto w = std::make_unique<Worker>();
    std::uint64_t seed = 0x8f1bbcdcbfa53e0bull + static_cast<std::uint64_t>(i);
    w->rng = splitmix64(seed);
    workers_.push_back(std::move(w));
  }
  threads_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_seq_cst);
  {
    std::lock_guard lock(sleep_mutex_);
  }
  cv_task_.notify_all();
  if (kind_ == SchedulerKind::SharedQueue) {
    std::lock_guard lock(shared_mutex_);
  }
  cv_shared_.notify_all();
  for (auto& t : threads_) t.join();
  // Workers drain every queued task before exiting, so nothing leaks here.
}

int ThreadPool::current_worker() { return tl_worker; }

void ThreadPool::submit(std::function<void()> task, std::int64_t priority) {
  Task* t = new Task{std::move(task), priority,
                     seq_.fetch_add(1, std::memory_order_relaxed)};
  pending_.fetch_add(1, std::memory_order_seq_cst);

  if (kind_ == SchedulerKind::SharedQueue) {
    {
      std::lock_guard lock(shared_mutex_);
      shared_.push_back(t);
    }
    cv_shared_.notify_one();
    return;
  }

  if (tl_pool == this && tl_worker >= 0) {
    workers_[static_cast<std::size_t>(tl_worker)]->deque.push(t);
  } else {
    {
      std::lock_guard lock(inject_mutex_);
      inject_.push(t);
    }
    inject_count_.fetch_add(1, std::memory_order_seq_cst);
  }
  // Dekker handshake with the sleep path: the seq_cst enqueue store above
  // and this seq_cst load, against the sleeper's seq_cst sleepers_ increment
  // followed by its has_work() check, guarantee that either we see the
  // sleeper (and wake it) or it sees the task (and does not sleep).
  if (sleepers_.load(std::memory_order_seq_cst) > 0) wake_sleepers();
}

void ThreadPool::wake_sleepers() {
  // The empty critical section orders this notify after a sleeper that has
  // already incremented sleepers_ but not yet entered cv_task_.wait().
  {
    std::lock_guard lock(sleep_mutex_);
  }
  cv_task_.notify_all();
}

bool ThreadPool::has_work() const {
  if (inject_count_.load(std::memory_order_seq_cst) > 0) return true;
  for (const auto& w : workers_) {
    if (w->deque.maybe_nonempty()) return true;
  }
  return false;
}

void ThreadPool::cancel() {
  cancelled_.store(true, std::memory_order_seq_cst);
  // Sleepers hold no tasks; workers drain (and now discard) queued tasks
  // before sleeping, so no wakeup is needed — but nudge any worker that is
  // mid-backoff so the drain finishes promptly.
  wake_sleepers();
}

void ThreadPool::run_task(Task* t, Worker& me) {
  if (cancelled_.load(std::memory_order_acquire)) {
    // Cancelled: drop the task unrun. pending_ is still decremented below,
    // so wait_idle() observes the queue draining.
    delete t;
    me.discarded.fetch_add(1, std::memory_order_relaxed);
  } else {
    t->fn();
    delete t;
    me.executed.fetch_add(1, std::memory_order_relaxed);
  }
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    {
      std::lock_guard lock(sleep_mutex_);
    }
    cv_idle_.notify_all();
  }
}

ThreadPool::Task* ThreadPool::pop_injected() {
  if (inject_count_.load(std::memory_order_seq_cst) <= 0) return nullptr;
  std::lock_guard lock(inject_mutex_);
  if (inject_.empty()) return nullptr;
  Task* t = inject_.top();
  inject_.pop();
  inject_count_.fetch_sub(1, std::memory_order_relaxed);
  return t;
}

ThreadPool::Task* ThreadPool::try_steal(int id, Worker& me) {
  const int n = size();
  if (n <= 1) return nullptr;
  const int start = static_cast<int>(splitmix64(me.rng) % static_cast<std::uint64_t>(n));
  for (int k = 0; k < n; ++k) {
    int v = start + k;
    if (v >= n) v -= n;
    if (v == id) continue;
    if (Task* t = workers_[static_cast<std::size_t>(v)]->deque.steal()) {
      me.steals.fetch_add(1, std::memory_order_relaxed);
      return t;
    }
  }
  me.failed_steals.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void ThreadPool::worker_loop(int id) {
  tl_pool = this;
  tl_worker = id;
  Worker& me = *workers_[static_cast<std::size_t>(id)];

  if (kind_ == SchedulerKind::SharedQueue) {
    for (;;) {
      Task* t = nullptr;
      {
        std::unique_lock lock(shared_mutex_);
        if (shared_.empty()) {
          me.idle_sleeps.fetch_add(1, std::memory_order_relaxed);
          cv_shared_.wait(lock, [this] {
            return stop_.load(std::memory_order_relaxed) || !shared_.empty();
          });
        }
        if (shared_.empty()) return;  // stopped and drained
        t = shared_.front();
        shared_.pop_front();
      }
      run_task(t, me);
    }
  }

  for (;;) {
    Task* t = me.deque.pop();
    if (!t) t = pop_injected();
    if (!t) t = try_steal(id, me);
    if (t) {
      run_task(t, me);
      continue;
    }

    // Backoff: spin a few rounds (counted as scheduler idle time) before
    // committing to a blocking sleep.
    {
      KernelTimer idle(Kernel::SchedulerIdle);
      for (int spin = 0; spin < kSpinRounds && !t; ++spin) {
        std::this_thread::yield();
        t = pop_injected();
        if (!t) t = try_steal(id, me);
      }
    }
    if (t) {
      run_task(t, me);
      continue;
    }

    std::unique_lock lock(sleep_mutex_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    const bool work = has_work();
    if (work || stop_.load(std::memory_order_seq_cst)) {
      sleepers_.fetch_sub(1, std::memory_order_relaxed);
      if (!work) return;  // stopped and fully drained
      continue;           // drain remaining work (even while stopping)
    }
    me.idle_sleeps.fetch_add(1, std::memory_order_relaxed);
    cv_task_.wait(lock);  // spurious wakeups just re-run the acquire loop
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(sleep_mutex_);
  cv_idle_.wait(lock, [this] {
    return pending_.load(std::memory_order_seq_cst) == 0;
  });
}

void ThreadPool::parallel_for(index_t n, const std::function<void(index_t)>& f) {
  if (n <= 0) return;
  const index_t nthreads = size();
  const index_t chunk =
      std::max<index_t>(1, (n + 4 * nthreads - 1) / (4 * nthreads));

  // Heap-held loop state: helper tasks may be scheduled after this call has
  // already returned (once every chunk is claimed they no-op), so they must
  // not touch the caller's frame — in particular not `f`.
  struct State {
    std::atomic<index_t> next{0};
    std::atomic<index_t> done{0};
    const std::function<void(index_t)>* f = nullptr;
    index_t n = 0;
    index_t chunk = 1;
  };
  auto st = std::make_shared<State>();
  st->f = &f;
  st->n = n;
  st->chunk = chunk;

  const auto body = [](const std::shared_ptr<State>& s) {
    for (;;) {
      const index_t begin = s->next.fetch_add(s->chunk, std::memory_order_relaxed);
      if (begin >= s->n) return;
      const index_t end = std::min(begin + s->chunk, s->n);
      for (index_t i = begin; i < end; ++i) (*s->f)(i);
      s->done.fetch_add(end - begin, std::memory_order_acq_rel);
    }
  };

  const index_t nchunks = (n + chunk - 1) / chunk;
  const index_t helpers = std::min<index_t>(nthreads, nchunks) - 1;
  for (index_t h = 0; h < helpers; ++h) {
    // High priority: these belong to a computation already in flight.
    submit([st, body] { body(st); },
           std::numeric_limits<std::int64_t>::max() / 2);
  }
  body(st);  // the caller participates instead of blocking a worker

  // All chunks are claimed once the caller's loop exits; any helper still
  // short of `done` is actively executing on another thread, so a yield
  // wait cannot deadlock (unscheduled helpers claim nothing).
  while (st->done.load(std::memory_order_acquire) < n) {
    std::this_thread::yield();
  }
}

std::vector<ThreadPool::WorkerStats> ThreadPool::worker_stats() const {
  std::vector<WorkerStats> out;
  out.reserve(workers_.size());
  for (const auto& w : workers_) {
    WorkerStats s;
    s.executed = w->executed.load(std::memory_order_relaxed);
    s.steals = w->steals.load(std::memory_order_relaxed);
    s.failed_steals = w->failed_steals.load(std::memory_order_relaxed);
    s.idle_sleeps = w->idle_sleeps.load(std::memory_order_relaxed);
    s.discarded = w->discarded.load(std::memory_order_relaxed);
    out.push_back(s);
  }
  return out;
}

ThreadPool::WorkerStats ThreadPool::total_stats() const {
  WorkerStats total;
  for (const WorkerStats& s : worker_stats()) {
    total.executed += s.executed;
    total.steals += s.steals;
    total.failed_steals += s.failed_steals;
    total.idle_sleeps += s.idle_sleeps;
    total.discarded += s.discarded;
  }
  return total;
}

void ThreadPool::reset_stats() {
  for (auto& w : workers_) {
    w->executed.store(0, std::memory_order_relaxed);
    w->steals.store(0, std::memory_order_relaxed);
    w->failed_steals.store(0, std::memory_order_relaxed);
    w->idle_sleeps.store(0, std::memory_order_relaxed);
    w->discarded.store(0, std::memory_order_relaxed);
  }
}

} // namespace blr
