#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace blr {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
    ++pending_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      if (--pending_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(index_t n, const std::function<void(index_t)>& f) {
  if (n <= 0) return;
  const index_t nthreads = size();
  const index_t chunk = std::max<index_t>(1, (n + 4 * nthreads - 1) / (4 * nthreads));
  std::atomic<index_t> next{0};
  const index_t ntasks = std::min<index_t>(nthreads, (n + chunk - 1) / chunk);
  for (index_t t = 0; t < ntasks; ++t) {
    submit([&next, n, chunk, &f] {
      for (;;) {
        const index_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= n) return;
        const index_t end = std::min(begin + chunk, n);
        for (index_t i = begin; i < end; ++i) f(i);
      }
    });
  }
  wait_idle();
}

} // namespace blr
