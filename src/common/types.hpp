#pragma once

#include <cstdint>
#include <cstddef>

namespace blr {

/// Index type used for matrix dimensions and sparse indices.
/// 64-bit so multi-million-unknown problems never overflow nnz counts.
using index_t = std::int64_t;

/// Floating-point type used throughout the numeric layers by default.
using real_t = double;

} // namespace blr
