#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace blr {

/// xoshiro256** deterministic PRNG. Used everywhere randomness is needed so
/// experiments and tests are reproducible independently of libstdc++'s
/// distribution implementations.
class Prng {
public:
  explicit Prng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // splitmix64 state expansion.
    for (auto& word : s_) {
      seed += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * uniform() - 1.0;
      v = 2.0 * uniform() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    has_spare_ = true;
    return u * m;
  }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded generation.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

} // namespace blr
