#pragma once

#include <atomic>
#include <cstdint>
#include <utility>

#include "common/error.hpp"
#include "common/memory_tracker.hpp"
#include "linalg/blas.hpp"
#include "linalg/matrix.hpp"

namespace blr::lr {

/// Storage precision of a low-rank tile's U/V factors. All arithmetic is
/// carried out in real_t (double); Fp32 is an *at-rest* format only — the
/// dispatch layer promotes fp32 factors to fp64 scratch before any kernel
/// touches them and demotes the result back (DESIGN.md §10). Dense tiles
/// and diagonal (pivotal) blocks are always Fp64.
enum class Precision : std::uint8_t { Fp64 = 0, Fp32 };

const char* precision_name(Precision p);

/// Rank-r factorization A ≈ U·Vᵗ with U: m x r and V: n x r.
/// Every kernel in this library maintains U with orthonormal columns; V
/// carries the scaling (paper §3: u orthogonal, vᵗ = R or σ·Vᵗ).
///
/// The factors live either in fp64 (`u`/`v`, the working precision) or,
/// after a mixed-precision demotion, in fp32 (`u32`/`v32`); exactly one
/// pair is populated, selected by `prec`. demote()/promote() convert
/// between the two in place.
struct LrMatrix {
  la::DMatrix u;
  la::DMatrix v;
  la::SMatrix u32;  ///< fp32 at-rest factors (active when prec == Fp32)
  la::SMatrix v32;
  Precision prec = Precision::Fp64;

  LrMatrix() = default;
  LrMatrix(la::DMatrix u_, la::DMatrix v_) : u(std::move(u_)), v(std::move(v_)) {}

  [[nodiscard]] index_t rows() const {
    return prec == Precision::Fp32 ? u32.rows() : u.rows();
  }
  [[nodiscard]] index_t cols() const {
    return prec == Precision::Fp32 ? v32.rows() : v.rows();
  }
  [[nodiscard]] index_t rank() const {
    return prec == Precision::Fp32 ? u32.cols() : u.cols();
  }
  [[nodiscard]] std::size_t entries() const {
    return static_cast<std::size_t>(u.size() + v.size() + u32.size() +
                                    v32.size());
  }
  /// Bytes actually stored: fp32 factors cost half of their fp64 form.
  [[nodiscard]] std::size_t bytes() const {
    return static_cast<std::size_t>(u.size() + v.size()) * sizeof(real_t) +
           static_cast<std::size_t>(u32.size() + v32.size()) *
               sizeof(la::single_t);
  }

  /// Round the factors to fp32 storage (no-op when already Fp32).
  void demote() {
    if (prec == Precision::Fp32) return;
    u32 = la::SMatrix(u.rows(), u.cols());
    la::convert(u.cview(), u32.view());
    v32 = la::SMatrix(v.rows(), v.cols());
    la::convert(v.cview(), v32.view());
    u = la::DMatrix();
    v = la::DMatrix();
    prec = Precision::Fp32;
  }

  /// Widen fp32 factors back to fp64 storage (exact; no-op when Fp64).
  void promote() {
    if (prec == Precision::Fp64) return;
    u = la::DMatrix(u32.rows(), u32.cols());
    la::convert(u32.cview(), u.view());
    v = la::DMatrix(v32.rows(), v32.cols());
    la::convert(v32.cview(), v.view());
    u32 = la::SMatrix();
    v32 = la::SMatrix();
    prec = Precision::Fp64;
  }

  /// Materialize into `out` (must be rows() x cols()): out = U·Vᵗ.
  /// Fp32 factors are promoted into local scratch first — the product is
  /// always computed in fp64.
  void to_dense(la::DView out) const {
    if (prec == Precision::Fp32) {
      la::DMatrix tu(u32.rows(), u32.cols());
      la::convert(u32.cview(), tu.view());
      la::DMatrix tv(v32.rows(), v32.cols());
      la::convert(v32.cview(), tv.view());
      la::gemm(la::Trans::No, la::Trans::Yes, real_t(1), tu.cview(), tv.cview(),
               real_t(0), out);
      return;
    }
    la::gemm(la::Trans::No, la::Trans::Yes, real_t(1), u.cview(), v.cview(),
             real_t(0), out);
  }

  /// out -= U·Vᵗ (or out -= V·Uᵗ when `transpose`); fp64 arithmetic, with
  /// fp32 factors promoted into local scratch first.
  void subtract_from(la::DView out, bool transpose = false) const {
    la::DConstView uu = u.cview();
    la::DConstView vv = v.cview();
    la::DMatrix tu, tv;
    if (prec == Precision::Fp32) {
      tu.reshape(u32.rows(), u32.cols());
      la::convert(u32.cview(), tu.view());
      tv.reshape(v32.rows(), v32.cols());
      la::convert(v32.cview(), tv.view());
      uu = tu.cview();
      vv = tv.cview();
    }
    if (!transpose) {
      la::gemm(la::Trans::No, la::Trans::Yes, real_t(-1), uu, vv, real_t(1),
               out);
    } else {
      la::gemm(la::Trans::No, la::Trans::Yes, real_t(-1), vv, uu, real_t(1),
               out);
    }
  }
};

/// Lifecycle of a tile through the factorization. Transitions are
/// forward-only (states may be skipped — a Just-In-Time tile goes
/// Assembled → Compressed → Factored, a dense one Assembled → Factored);
/// any attempt to move backwards throws blr::Error.
enum class TileState : std::uint8_t {
  Unassembled = 0,  ///< created, no numeric content yet
  Assembled,        ///< holds the gathered initial values + received updates
  Compressed,       ///< low-rank representation installed (initial or JIT)
  Factored,         ///< panel solve applied; immutable from here on
};

const char* tile_state_name(TileState s);

/// Per-supernode allocation pool: every tile of one column block charges its
/// storage here, and the arena forwards the byte deltas to the process-wide
/// MemoryTracker under a single category. This gives (a) one switch point
/// for the category of a whole supernode (factors vs workspace) and (b) a
/// per-supernode live-byte figure for diagnostics, while keeping the
/// tracker's per-category peaks intact.
class TileArena {
public:
  TileArena() = default;
  explicit TileArena(MemCategory cat) : cat_(cat) {}
  TileArena(const TileArena&) = delete;
  TileArena& operator=(const TileArena&) = delete;
  ~TileArena() {
    // Tiles normally discharge themselves first (declare the arena before
    // its tiles); release any remainder so the tracker never leaks.
    const std::size_t rem = bytes_.load(std::memory_order_relaxed);
    if (rem > 0) MemoryTracker::instance().release(cat_, rem);
  }

  void charge(std::size_t b) {
    if (b == 0) return;
    // Tracker first: under a memory budget allocate() can throw, and the
    // arena must not count bytes the tracker refused (a stale bytes_ would
    // underflow the tracker when the tiles discharge).
    MemoryTracker::instance().allocate(cat_, b);
    const std::size_t now = bytes_.fetch_add(b, std::memory_order_relaxed) + b;
    std::size_t expected = peak_.load(std::memory_order_relaxed);
    while (now > expected &&
           !peak_.compare_exchange_weak(expected, now,
                                        std::memory_order_relaxed)) {
    }
  }
  void discharge(std::size_t b) {
    if (b == 0) return;
    bytes_.fetch_sub(b, std::memory_order_relaxed);
    MemoryTracker::instance().release(cat_, b);
  }

  /// Live bytes currently charged by this supernode's tiles.
  [[nodiscard]] std::size_t bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  /// High-water mark of bytes() over this arena's lifetime (CAS-max, so
  /// concurrent charges from parallel update tasks cannot lose a peak).
  [[nodiscard]] std::size_t peak() const {
    return peak_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] MemCategory category() const { return cat_; }

private:
  MemCategory cat_ = MemCategory::Factors;
  std::atomic<std::size_t> bytes_{0};
  std::atomic<std::size_t> peak_{0};
};

/// The single numeric storage unit of the factorization: a tagged
/// dense/low-rank variant with an explicit lifecycle state machine.
///
/// One Tile type serves every role the engine needs — diagonal blocks,
/// off-diagonal panel blocks, update contributions (A·Bᵗ products), and
/// LUAR accumulators — so a kernel only ever sees "a tile in some
/// representation", and adding a representation (e.g. a lower precision)
/// means adding dispatch entries, not new storage structs. Storage is
/// registered with the MemoryTracker either through a per-supernode
/// TileArena or standalone under a category.
class Tile {
public:
  Tile() = default;

  static Tile make_dense(index_t m, index_t n,
                         MemCategory cat = MemCategory::Factors) {
    Tile t;
    t.rows_ = m;
    t.cols_ = n;
    t.cat_ = cat;
    t.dense_ = la::DMatrix(m, n);
    t.lowrank_ = false;
    t.retrack();
    return t;
  }
  static Tile make_dense(index_t m, index_t n, TileArena& arena) {
    Tile t;
    t.rows_ = m;
    t.cols_ = n;
    t.arena_ = &arena;
    t.cat_ = arena.category();
    t.dense_ = la::DMatrix(m, n);
    t.lowrank_ = false;
    t.retrack();
    return t;
  }

  /// Take ownership of an existing dense matrix.
  static Tile from_dense(la::DMatrix d, MemCategory cat = MemCategory::Factors) {
    Tile t;
    t.rows_ = d.rows();
    t.cols_ = d.cols();
    t.cat_ = cat;
    t.dense_ = std::move(d);
    t.lowrank_ = false;
    t.retrack();
    return t;
  }
  static Tile from_dense(la::DMatrix d, TileArena& arena) {
    Tile t;
    t.rows_ = d.rows();
    t.cols_ = d.cols();
    t.arena_ = &arena;
    t.cat_ = arena.category();
    t.dense_ = std::move(d);
    t.lowrank_ = false;
    t.retrack();
    return t;
  }

  static Tile make_lowrank(index_t m, index_t n, LrMatrix lr,
                           MemCategory cat = MemCategory::Factors) {
    Tile t;
    t.rows_ = m;
    t.cols_ = n;
    t.cat_ = cat;
    t.lr_ = std::move(lr);
    t.lowrank_ = true;
    t.retrack();
    return t;
  }
  static Tile make_lowrank(index_t m, index_t n, LrMatrix lr, TileArena& arena) {
    Tile t;
    t.rows_ = m;
    t.cols_ = n;
    t.arena_ = &arena;
    t.cat_ = arena.category();
    t.lr_ = std::move(lr);
    t.lowrank_ = true;
    t.retrack();
    return t;
  }

  Tile(const Tile&) = delete;
  Tile& operator=(const Tile&) = delete;
  Tile(Tile&& o) noexcept { move_from(o); }
  Tile& operator=(Tile&& o) noexcept {
    if (this != &o) {
      untrack();
      move_from(o);
    }
    return *this;
  }
  ~Tile() { untrack(); }

  // ---- lifecycle -----------------------------------------------------

  [[nodiscard]] TileState state() const { return state_; }

  /// Move the lifecycle forward (idempotent on the same state). A backward
  /// transition — e.g. Factored → Assembled — is a logic error in the
  /// driver and always throws.
  void advance(TileState next) {
    if (static_cast<int>(next) < static_cast<int>(state_)) {
      throw Error(std::string("tile state machine regression: ") +
                  tile_state_name(state_) + " -> " + tile_state_name(next));
    }
    if (next >= TileState::Assembled && state_ < TileState::Assembled) {
      // Record the representation decided at assembly: update policies key
      // per-block choices (e.g. orthonormality requirements) off this
      // immutable flag instead of racing on the live tag.
      assembled_lowrank_ = lowrank_;
    }
    state_ = next;
  }

  /// Representation this tile had when its supernode finished assembly
  /// (stable for the rest of the factorization, unlike is_lowrank()).
  [[nodiscard]] bool assembled_lowrank() const { return assembled_lowrank_; }

  // ---- representation ------------------------------------------------

  [[nodiscard]] bool is_lowrank() const { return lowrank_; }
  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] index_t rank() const { return lowrank_ ? lr_.rank() : index_t(-1); }

  /// Storage precision of this tile. Dense tiles are always Fp64; only
  /// low-rank factors may be demoted to fp32 at-rest storage.
  [[nodiscard]] Precision precision() const {
    return lowrank_ ? lr_.prec : Precision::Fp64;
  }

  [[nodiscard]] la::DMatrix& dense() { return dense_; }
  [[nodiscard]] const la::DMatrix& dense() const { return dense_; }
  [[nodiscard]] LrMatrix& lr() { return lr_; }
  [[nodiscard]] const LrMatrix& lr() const { return lr_; }

  [[nodiscard]] std::size_t storage_entries() const {
    return lowrank_ ? lr_.entries() : static_cast<std::size_t>(dense_.size());
  }
  /// Bytes actually stored (precision-aware: fp32 factors cost half).
  [[nodiscard]] std::size_t storage_bytes() const {
    return lowrank_ ? lr_.bytes()
                    : static_cast<std::size_t>(dense_.size()) * sizeof(real_t);
  }

  /// Demote the low-rank factors to fp32 at-rest storage (tracker updated).
  /// Only low-rank tiles may demote: dense and diagonal/pivotal blocks must
  /// stay fp64, so calling this on a dense tile is a driver logic error.
  void demote_lowrank() {
    if (!lowrank_) {
      throw Error("precision demotion on a dense tile (only low-rank U/V "
                  "factors may be stored in fp32)");
    }
    if (lr_.prec == Precision::Fp32) return;
    lr_.demote();
    retrack();
  }

  /// Widen fp32 at-rest factors back to fp64 in place (tracker updated).
  /// No-op for dense or already-fp64 tiles.
  void promote_lowrank() {
    if (!lowrank_ || lr_.prec == Precision::Fp64) return;
    lr_.promote();
    retrack();
  }

  /// Replace contents with a low-rank representation (tracker updated).
  /// The installed factors keep whatever precision `lr` carries — kernels
  /// always install fp64; re-demotion is the dispatch wrapper's job.
  void set_lowrank(LrMatrix lr) {
    lr_ = std::move(lr);
    dense_ = la::DMatrix();
    lowrank_ = true;
    retrack();
  }

  /// Replace contents with a dense matrix (tracker updated).
  void set_dense(la::DMatrix d) {
    dense_ = std::move(d);
    lr_ = LrMatrix();
    lowrank_ = false;
    retrack();
  }

  /// Surrender the dense storage buffer (tracker fully discharged). The
  /// tile is left empty (0x0, Unassembled-equivalent storage); callers use
  /// this to donate retired factor buffers to a BufferPool between numeric
  /// passes instead of freeing them.
  [[nodiscard]] la::DMatrix release_dense() {
    la::DMatrix out = std::move(dense_);
    dense_ = la::DMatrix();
    lr_ = LrMatrix();
    rows_ = cols_ = 0;
    lowrank_ = false;
    retrack();
    return out;
  }

  /// Surrender the low-rank U/V buffers (tracker fully discharged); the
  /// fp64 pair is returned, fp32-at-rest factors are promoted first so the
  /// recycled buffers are always real_t storage. The tile is left empty.
  [[nodiscard]] std::pair<la::DMatrix, la::DMatrix> release_lowrank() {
    if (lr_.prec == Precision::Fp32) lr_.promote();
    std::pair<la::DMatrix, la::DMatrix> out{std::move(lr_.u), std::move(lr_.v)};
    lr_ = LrMatrix();
    dense_ = la::DMatrix();
    rows_ = cols_ = 0;
    lowrank_ = false;
    retrack();
    return out;
  }

  /// Convert a low-rank tile to dense in place.
  void densify() {
    if (!lowrank_) return;
    la::DMatrix d(rows_, cols_);
    lr_.to_dense(d.view());
    set_dense(std::move(d));
  }

  /// Materialize the tile's value into `out` (rows x cols).
  void to_dense(la::DView out) const {
    if (lowrank_) lr_.to_dense(out);
    else la::copy<real_t>(dense_.cview(), out);
  }

private:
  void move_from(Tile& o) {
    rows_ = o.rows_;
    cols_ = o.cols_;
    cat_ = o.cat_;
    arena_ = o.arena_;
    tracked_ = o.tracked_;
    lowrank_ = o.lowrank_;
    state_ = o.state_;
    assembled_lowrank_ = o.assembled_lowrank_;
    dense_ = std::move(o.dense_);
    lr_ = std::move(o.lr_);
    o.tracked_ = 0;
    o.arena_ = nullptr;
    o.rows_ = o.cols_ = 0;
    o.lowrank_ = false;
    o.state_ = TileState::Unassembled;
    o.assembled_lowrank_ = false;
  }

  void untrack() {
    if (tracked_ == 0) return;
    if (arena_ != nullptr) arena_->discharge(tracked_);
    else MemoryTracker::instance().release(cat_, tracked_);
    tracked_ = 0;
  }

  /// Re-register the tracked byte count after a storage change.
  void retrack() {
    const std::size_t want = storage_bytes();
    if (want == tracked_) return;
    if (arena_ != nullptr) {
      if (want > tracked_) arena_->charge(want - tracked_);
      else arena_->discharge(tracked_ - want);
    } else {
      auto& t = MemoryTracker::instance();
      if (want > tracked_) t.allocate(cat_, want - tracked_);
      else t.release(cat_, tracked_ - want);
    }
    tracked_ = want;
  }

  index_t rows_ = 0;
  index_t cols_ = 0;
  MemCategory cat_ = MemCategory::Factors;
  TileArena* arena_ = nullptr;
  std::size_t tracked_ = 0;
  bool lowrank_ = false;
  bool assembled_lowrank_ = false;
  TileState state_ = TileState::Unassembled;
  la::DMatrix dense_;
  LrMatrix lr_;
};

/// Fp64 working copy of a (possibly fp32-at-rest) low-rank tile, tracked
/// under `cat` (conversion scratch is Workspace by default, so promotion
/// copies never inflate the Factors accounting). The dispatch layer uses
/// this to feed fp32 operands to the fp64 kernels without mutating the
/// source tile, which may be read concurrently by other update tasks.
Tile promote_copy(const Tile& t, MemCategory cat = MemCategory::Workspace);

} // namespace blr::lr
