#include "lowrank/tile.hpp"

namespace blr::lr {

const char* tile_state_name(TileState s) {
  switch (s) {
    case TileState::Unassembled: return "Unassembled";
    case TileState::Assembled: return "Assembled";
    case TileState::Compressed: return "Compressed";
    case TileState::Factored: return "Factored";
  }
  return "?";
}

} // namespace blr::lr
