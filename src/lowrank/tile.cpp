#include "lowrank/tile.hpp"

namespace blr::lr {

const char* tile_state_name(TileState s) {
  switch (s) {
    case TileState::Unassembled: return "Unassembled";
    case TileState::Assembled: return "Assembled";
    case TileState::Compressed: return "Compressed";
    case TileState::Factored: return "Factored";
  }
  return "?";
}

const char* precision_name(Precision p) {
  switch (p) {
    case Precision::Fp64: return "fp64";
    case Precision::Fp32: return "fp32";
  }
  return "?";
}

Tile promote_copy(const Tile& t, MemCategory cat) {
  if (!t.is_lowrank()) {
    // Dense tiles are always fp64 already; a copy would only waste memory.
    throw Error("promote_copy: only low-rank tiles need promotion");
  }
  LrMatrix lr;
  if (t.precision() == Precision::Fp32) {
    lr.u = la::DMatrix(t.lr().u32.rows(), t.lr().u32.cols());
    la::convert(t.lr().u32.cview(), lr.u.view());
    lr.v = la::DMatrix(t.lr().v32.rows(), t.lr().v32.cols());
    la::convert(t.lr().v32.cview(), lr.v.view());
  } else {
    lr.u = t.lr().u;
    lr.v = t.lr().v;
  }
  return Tile::make_lowrank(t.rows(), t.cols(), std::move(lr), cat);
}

} // namespace blr::lr
