#pragma once

#include <optional>

#include "lowrank/tile.hpp"

namespace blr::lr {

/// Rank-revealing kernel family (§3.1 of the paper): SVD finds the smallest
/// ranks but costs Θ(m²n + n³); RRQR stops at the numerical rank for Θ(mnr).
/// Randomized is the kernel the paper's conclusion lists as future work: an
/// adaptive Gaussian range-finder (Halko-Martinsson-Tropp) followed by a
/// small SVD — Θ(mnr) with better cache behaviour than pivoted QR. Its
/// extend-add recompression reuses the RRQR variant.
enum class CompressionKind { Svd, Rrqr, Randomized };

/// Compression tolerance semantics: the returned Â satisfies
/// ‖A − Â‖_F <= tol_rel · ‖A‖_F.
struct CompressionOptions {
  CompressionKind kind = CompressionKind::Rrqr;
  real_t tol_rel = 1e-8;
};

/// Largest rank at which the U·Vᵗ form stores fewer entries than the dense
/// block: r · (m + n) < m · n.
inline index_t beneficial_rank_limit(index_t m, index_t n) {
  if (m + n == 0) return 0;
  return (m * n - 1) / (m + n);  // strictly beneficial
}

/// Compress `a` to ‖A − Â‖_F <= tol_rel·‖A‖_F with at most `max_rank`
/// columns. Returns std::nullopt when the tolerance cannot be met within
/// max_rank (the caller keeps the block dense). The returned U has
/// orthonormal columns.
std::optional<LrMatrix> compress_svd(la::DConstView a, real_t tol_rel, index_t max_rank);
std::optional<LrMatrix> compress_rrqr(la::DConstView a, real_t tol_rel, index_t max_rank);
std::optional<LrMatrix> compress_randomized(la::DConstView a, real_t tol_rel,
                                            index_t max_rank);

std::optional<LrMatrix> compress(CompressionKind kind, la::DConstView a,
                                 real_t tol_rel, index_t max_rank);

/// compress_randomized with an explicit initial sketch width (the cold entry
/// point starts at min(16, min(m,n))). The adaptive loop doubles the sketch
/// and re-verifies the residual until the tolerance holds, so a too-small
/// start costs extra iterations but never accuracy.
std::optional<LrMatrix> compress_randomized_from(la::DConstView a, real_t tol_rel,
                                                 index_t max_rank, index_t sketch0);

/// Outcome of a warm-started compression (DESIGN.md §15): `lr` follows the
/// same contract as compress(); `grew` records that the rank guess was too
/// small and the kernel fell back to the full-cap path (the verify-and-grow
/// event counted in SolverStats::warm).
struct WarmCompressResult {
  std::optional<LrMatrix> lr;
  bool grew = false;
};

/// Compress seeded with `rank_guess`, the rank this block reached in the
/// previous numeric pass plus slack (clamped to max_rank by the caller).
/// Accuracy contract: every warm path *verifies* ‖A − Â‖_F <= tol_rel·‖A‖_F
/// before accepting — RRQR via its trailing-block check, SVD/Randomized via
/// the explicit sketch residual — and on failure retries at the full cap
/// exactly as a cold call would. A warm guess can therefore change cost,
/// never the error bound.
WarmCompressResult compress_warm(CompressionKind kind, la::DConstView a,
                                 real_t tol_rel, index_t max_rank,
                                 index_t rank_guess);

/// Compress with the storage-beneficial rank limit; returns a low-rank Tile
/// on success, a dense copy otherwise.
Tile compress_to_tile(CompressionKind kind, la::DConstView a, real_t tol_rel,
                      MemCategory cat = MemCategory::Factors);

} // namespace blr::lr
