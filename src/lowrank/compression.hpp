#pragma once

#include <optional>

#include "lowrank/tile.hpp"

namespace blr::lr {

/// Rank-revealing kernel family (§3.1 of the paper): SVD finds the smallest
/// ranks but costs Θ(m²n + n³); RRQR stops at the numerical rank for Θ(mnr).
/// Randomized is the kernel the paper's conclusion lists as future work: an
/// adaptive Gaussian range-finder (Halko-Martinsson-Tropp) followed by a
/// small SVD — Θ(mnr) with better cache behaviour than pivoted QR. Its
/// extend-add recompression reuses the RRQR variant.
enum class CompressionKind { Svd, Rrqr, Randomized };

/// Compression tolerance semantics: the returned Â satisfies
/// ‖A − Â‖_F <= tol_rel · ‖A‖_F.
struct CompressionOptions {
  CompressionKind kind = CompressionKind::Rrqr;
  real_t tol_rel = 1e-8;
};

/// Largest rank at which the U·Vᵗ form stores fewer entries than the dense
/// block: r · (m + n) < m · n.
inline index_t beneficial_rank_limit(index_t m, index_t n) {
  if (m + n == 0) return 0;
  return (m * n - 1) / (m + n);  // strictly beneficial
}

/// Compress `a` to ‖A − Â‖_F <= tol_rel·‖A‖_F with at most `max_rank`
/// columns. Returns std::nullopt when the tolerance cannot be met within
/// max_rank (the caller keeps the block dense). The returned U has
/// orthonormal columns.
std::optional<LrMatrix> compress_svd(la::DConstView a, real_t tol_rel, index_t max_rank);
std::optional<LrMatrix> compress_rrqr(la::DConstView a, real_t tol_rel, index_t max_rank);
std::optional<LrMatrix> compress_randomized(la::DConstView a, real_t tol_rel,
                                            index_t max_rank);

std::optional<LrMatrix> compress(CompressionKind kind, la::DConstView a,
                                 real_t tol_rel, index_t max_rank);

/// Compress with the storage-beneficial rank limit; returns a low-rank Tile
/// on success, a dense copy otherwise.
Tile compress_to_tile(CompressionKind kind, la::DConstView a, real_t tol_rel,
                      MemCategory cat = MemCategory::Factors);

} // namespace blr::lr
