#pragma once

#include <utility>

#include "common/memory_tracker.hpp"
#include "linalg/blas.hpp"
#include "linalg/matrix.hpp"

namespace blr::lr {

/// Rank-r factorization A ≈ U·Vᵗ with U: m x r and V: n x r.
/// Every kernel in this library maintains U with orthonormal columns; V
/// carries the scaling (paper §3: u orthogonal, vᵗ = R or σ·Vᵗ).
struct LrMatrix {
  la::DMatrix u;
  la::DMatrix v;

  LrMatrix() = default;
  LrMatrix(la::DMatrix u_, la::DMatrix v_) : u(std::move(u_)), v(std::move(v_)) {}

  [[nodiscard]] index_t rows() const { return u.rows(); }
  [[nodiscard]] index_t cols() const { return v.rows(); }
  [[nodiscard]] index_t rank() const { return u.cols(); }
  [[nodiscard]] std::size_t entries() const {
    return static_cast<std::size_t>(u.size() + v.size());
  }

  /// Materialize into `out` (must be rows() x cols()): out = U·Vᵗ.
  void to_dense(la::DView out) const {
    la::gemm(la::Trans::No, la::Trans::Yes, real_t(1), u.cview(), v.cview(),
             real_t(0), out);
  }

  /// out -= U·Vᵗ (or out -= V·Uᵗ when `transpose`).
  void subtract_from(la::DView out, bool transpose = false) const {
    if (!transpose) {
      la::gemm(la::Trans::No, la::Trans::Yes, real_t(-1), u.cview(), v.cview(),
               real_t(1), out);
    } else {
      la::gemm(la::Trans::No, la::Trans::Yes, real_t(-1), v.cview(), u.cview(),
               real_t(1), out);
    }
  }
};

/// A factor block that is either dense or low-rank, with its storage
/// registered in the global MemoryTracker (category Factors by default).
/// This is the unit the two strategies manipulate: Minimal-Memory keeps
/// blocks low-rank through the whole factorization, Just-In-Time keeps them
/// dense until their supernode is eliminated.
class Block {
public:
  Block() = default;

  static Block make_dense(index_t m, index_t n,
                          MemCategory cat = MemCategory::Factors) {
    Block b;
    b.rows_ = m;
    b.cols_ = n;
    b.cat_ = cat;
    b.dense_ = la::DMatrix(m, n);
    b.lowrank_ = false;
    b.track_ = TrackedAlloc(cat, b.dense_.bytes());
    return b;
  }

  /// Take ownership of an existing dense matrix.
  static Block from_dense(la::DMatrix d, MemCategory cat = MemCategory::Factors) {
    Block b;
    b.rows_ = d.rows();
    b.cols_ = d.cols();
    b.cat_ = cat;
    b.dense_ = std::move(d);
    b.lowrank_ = false;
    b.track_ = TrackedAlloc(cat, b.dense_.bytes());
    return b;
  }

  static Block make_lowrank(index_t m, index_t n, LrMatrix lr,
                            MemCategory cat = MemCategory::Factors) {
    Block b;
    b.rows_ = m;
    b.cols_ = n;
    b.cat_ = cat;
    b.lr_ = std::move(lr);
    b.lowrank_ = true;
    b.track_ = TrackedAlloc(cat, b.lr_.entries() * sizeof(real_t));
    return b;
  }

  [[nodiscard]] bool is_lowrank() const { return lowrank_; }
  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] index_t rank() const { return lowrank_ ? lr_.rank() : index_t(-1); }

  [[nodiscard]] la::DMatrix& dense() { return dense_; }
  [[nodiscard]] const la::DMatrix& dense() const { return dense_; }
  [[nodiscard]] LrMatrix& lr() { return lr_; }
  [[nodiscard]] const LrMatrix& lr() const { return lr_; }

  [[nodiscard]] std::size_t storage_entries() const {
    return lowrank_ ? lr_.entries() : static_cast<std::size_t>(dense_.size());
  }

  /// Replace contents with a low-rank representation (tracker updated).
  void set_lowrank(LrMatrix lr) {
    lr_ = std::move(lr);
    dense_ = la::DMatrix();
    lowrank_ = true;
    track_.resize(lr_.entries() * sizeof(real_t));
  }

  /// Replace contents with a dense matrix (tracker updated).
  void set_dense(la::DMatrix d) {
    dense_ = std::move(d);
    lr_ = LrMatrix();
    lowrank_ = false;
    track_.resize(dense_.bytes());
  }

  /// Convert a low-rank block to dense in place.
  void densify() {
    if (!lowrank_) return;
    la::DMatrix d(rows_, cols_);
    lr_.to_dense(d.view());
    set_dense(std::move(d));
  }

  /// Materialize the block's value into `out` (rows x cols).
  void to_dense(la::DView out) const {
    if (lowrank_) lr_.to_dense(out);
    else la::copy<real_t>(dense_.cview(), out);
  }

private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  MemCategory cat_ = MemCategory::Factors;
  bool lowrank_ = false;
  la::DMatrix dense_;
  LrMatrix lr_;
  TrackedAlloc track_;
};

} // namespace blr::lr
