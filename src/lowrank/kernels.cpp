#include "lowrank/kernels.hpp"

#include <cmath>

#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"

namespace blr::lr {

namespace {

/// Zero-padded embedding of `u` (m x r) into a taller matrix (total x r)
/// with its rows placed at offset `roff` — the alignment step of Figure 4.
la::DMatrix pad_rows(la::DConstView u, index_t total, index_t roff) {
  la::DMatrix out(total, u.cols);
  for (index_t j = 0; j < u.cols; ++j)
    std::copy_n(u.col(j), u.rows, out.data() + j * total + roff);
  return out;
}

/// Same with every entry negated (used for the v side of C - P).
la::DMatrix pad_rows_negated(la::DConstView u, index_t total, index_t roff) {
  la::DMatrix out(total, u.cols);
  for (index_t j = 0; j < u.cols; ++j) {
    const real_t* src = u.col(j);
    real_t* dst = out.data() + j * total + roff;
    for (index_t i = 0; i < u.rows; ++i) dst[i] = -src[i];
  }
  return out;
}

/// Convert c to dense and subtract the contribution at the given offsets.
void densify_and_apply(Tile& c, const Tile& p, index_t roff, index_t coff,
                       bool transpose) {
  la::DMatrix d(c.rows(), c.cols());
  c.to_dense(d.view());
  add_contribution_dense(d, p, roff, coff, transpose);
  // add_contribution_dense works on the tile's own dense storage; here we
  // applied to a scratch matrix, so install it.
  c.set_dense(std::move(d));
}

/// Extract the upper-triangular R factor (k x n) left in `a` by geqrf.
la::DMatrix extract_r(la::DConstView a, index_t k) {
  la::DMatrix r(k, a.cols);
  for (index_t j = 0; j < a.cols; ++j) {
    const index_t iend = std::min(j + 1, k);
    for (index_t i = 0; i < iend; ++i) r(i, j) = a(i, j);
  }
  return r;
}

} // namespace

Tile ab_t_product(const Tile& a, const Tile& b, CompressionKind kind,
                  real_t tol_rel, bool need_ortho, MemCategory cat) {
  const index_t m = a.rows();
  const index_t n = b.rows();

  if (!a.is_lowrank() && !b.is_lowrank()) {
    Tile out = Tile::make_dense(m, n, cat);
    la::gemm(la::Trans::No, la::Trans::Yes, real_t(1), a.dense().cview(),
             b.dense().cview(), real_t(0), out.dense().view());
    return out;
  }

  LrMatrix lr;
  if (a.is_lowrank() && !b.is_lowrank()) {
    // P = U_A·(B·V_A)ᵗ; U_A stays orthonormal.
    lr.u = a.lr().u;
    lr.v = la::DMatrix(n, a.rank());
    la::gemm(la::Trans::No, la::Trans::No, real_t(1), b.dense().cview(),
             a.lr().v.cview(), real_t(0), lr.v.view());
    return Tile::make_lowrank(m, n, std::move(lr), cat);
  }
  if (!a.is_lowrank() && b.is_lowrank()) {
    // P = (A·V_B)·U_Bᵗ.
    la::DMatrix u0(m, b.rank());
    la::gemm(la::Trans::No, la::Trans::No, real_t(1), a.dense().cview(),
             b.lr().v.cview(), real_t(0), u0.view());
    if (!need_ortho || b.rank() == 0) {
      lr.u = std::move(u0);
      lr.v = b.lr().u;
      return Tile::make_lowrank(m, n, std::move(lr), cat);
    }
    // Re-orthogonalize: u0 = Q·R, then P = Q·(U_B·Rᵗ)ᵗ.
    const index_t k = std::min(m, b.rank());
    std::vector<real_t> tau;
    la::geqrf(u0.view(), tau);
    const la::DMatrix r = extract_r(u0.cview(), k);
    lr.v = la::DMatrix(n, k);
    la::gemm(la::Trans::No, la::Trans::Yes, real_t(1), b.lr().u.cview(), r.cview(),
             real_t(0), lr.v.view());
    la::DMatrix q(u0.cview().sub(0, 0, m, k));
    tau.resize(static_cast<std::size_t>(k));
    la::orgqr(q.view(), tau);
    lr.u = std::move(q);
    return Tile::make_lowrank(m, n, std::move(lr), cat);
  }

  // Both low-rank: P = U_A·(V_Aᵗ·V_B)·U_Bᵗ, T = V_Aᵗ·V_B (eqs (1)-(4)).
  const index_t ra = a.rank();
  const index_t rb = b.rank();
  la::DMatrix t(ra, rb);
  la::gemm(la::Trans::Yes, la::Trans::No, real_t(1), a.lr().v.cview(),
           b.lr().v.cview(), real_t(0), t.view());

  if (need_ortho && ra > 0 && rb > 0) {
    auto that = compress(kind, t.cview(), tol_rel, std::min(ra, rb));
    if (that && that->rank() < std::min(ra, rb)) {
      const index_t rt = that->rank();
      lr.u = la::DMatrix(m, rt);
      la::gemm(la::Trans::No, la::Trans::No, real_t(1), a.lr().u.cview(),
               that->u.cview(), real_t(0), lr.u.view());
      lr.v = la::DMatrix(n, rt);
      la::gemm(la::Trans::No, la::Trans::No, real_t(1), b.lr().u.cview(),
               that->v.cview(), real_t(0), lr.v.view());
      return Tile::make_lowrank(m, n, std::move(lr), cat);
    }
    // Recompression did not pay off: keep the smaller-rank representation.
    if (ra <= rb) {
      lr.u = a.lr().u;  // already orthonormal
      lr.v = la::DMatrix(n, ra);
      la::gemm(la::Trans::No, la::Trans::Yes, real_t(1), b.lr().u.cview(), t.cview(),
               real_t(0), lr.v.view());
      return Tile::make_lowrank(m, n, std::move(lr), cat);
    }
    // rb < ra: orthonormalize U_A·T so the result basis has rank rb.
    la::DMatrix u0(m, rb);
    la::gemm(la::Trans::No, la::Trans::No, real_t(1), a.lr().u.cview(), t.cview(),
             real_t(0), u0.view());
    const index_t k = std::min(m, rb);
    std::vector<real_t> tau;
    la::geqrf(u0.view(), tau);
    const la::DMatrix r = extract_r(u0.cview(), k);
    lr.v = la::DMatrix(n, k);
    la::gemm(la::Trans::No, la::Trans::Yes, real_t(1), b.lr().u.cview(), r.cview(),
             real_t(0), lr.v.view());
    la::DMatrix q(u0.cview().sub(0, 0, m, k));
    tau.resize(static_cast<std::size_t>(k));
    la::orgqr(q.view(), tau);
    lr.u = std::move(q);
    return Tile::make_lowrank(m, n, std::move(lr), cat);
  }

  // No orthogonality requirement: pick the representation with smaller rank.
  if (ra <= rb) {
    lr.u = a.lr().u;
    lr.v = la::DMatrix(n, ra);
    la::gemm(la::Trans::No, la::Trans::Yes, real_t(1), b.lr().u.cview(), t.cview(),
             real_t(0), lr.v.view());
  } else {
    lr.u = la::DMatrix(m, rb);
    la::gemm(la::Trans::No, la::Trans::No, real_t(1), a.lr().u.cview(), t.cview(),
             real_t(0), lr.u.view());
    lr.v = b.lr().u;
  }
  return Tile::make_lowrank(m, n, std::move(lr), cat);
}

void apply_to_dense(const Tile& p, la::DView target, bool transpose) {
  if (p.is_lowrank()) {
    if (p.rank() == 0) return;
    p.lr().subtract_from(target, transpose);
    return;
  }
  const la::DConstView d = p.dense().cview();
  if (!transpose) {
    assert(target.rows == d.rows && target.cols == d.cols);
    for (index_t j = 0; j < d.cols; ++j)
      la::axpy(d.rows, real_t(-1), d.col(j), target.col(j));
  } else {
    assert(target.rows == d.cols && target.cols == d.rows);
    for (index_t j = 0; j < target.cols; ++j)
      for (index_t i = 0; i < target.rows; ++i) target(i, j) -= d(j, i);
  }
}

void add_contribution_dense(la::DMatrix& target, const Tile& p,
                            index_t roff, index_t coff, bool transpose) {
  const index_t pm = transpose ? p.cols() : p.rows();
  const index_t pn = transpose ? p.rows() : p.cols();
  apply_to_dense(p, target.sub(roff, coff, pm, pn), transpose);
}

namespace {

/// SVD-recompressed extend-add of §3.3.2 (eqs (7)-(8)).
/// Returns false when the target should fall back to dense.
bool lr2lr_svd(Tile& c, la::DConstView pu, la::DConstView pv, index_t roff,
               index_t coff, real_t tol_rel, index_t max_rank) {
  const index_t mc = c.rows();
  const index_t nc = c.cols();
  const index_t rc = c.rank();
  const index_t rp = pu.cols;
  const index_t k = rc + rp;

  // u1 = [u_C | padded u_P], v1 = [v_C | -padded v_P].
  la::DMatrix u1(mc, k);
  la::copy<real_t>(c.lr().u.cview(), u1.sub(0, 0, mc, rc));
  for (index_t j = 0; j < rp; ++j)
    std::copy_n(pu.col(j), pu.rows, u1.data() + (rc + j) * mc + roff);
  la::DMatrix v1(nc, k);
  la::copy<real_t>(c.lr().v.cview(), v1.sub(0, 0, nc, rc));
  for (index_t j = 0; j < rp; ++j) {
    const real_t* src = pv.col(j);
    real_t* dst = v1.data() + (rc + j) * nc + coff;
    for (index_t i = 0; i < pv.rows; ++i) dst[i] = -src[i];
  }

  // Two QRs (eq. (7)), then the small SVD of T = R1·R2ᵗ.
  std::vector<real_t> tau1, tau2;
  la::geqrf(u1.view(), tau1);
  la::geqrf(v1.view(), tau2);
  const index_t k1 = std::min(mc, k);
  const index_t k2 = std::min(nc, k);
  const la::DMatrix r1 = extract_r(u1.cview(), k1);
  const la::DMatrix r2 = extract_r(v1.cview(), k2);
  la::DMatrix t(k1, k2);
  la::gemm(la::Trans::No, la::Trans::Yes, real_t(1), r1.cview(), r2.cview(),
           real_t(0), t.view());

  auto that = compress_svd(t.cview(), tol_rel, std::min(k1, k2));
  assert(that.has_value());  // cap = min(k1,k2) always reachable
  if (that->rank() > max_rank) return false;
  const index_t rnew = that->rank();

  // u_C' = Q1·u_T and v_C' = Q2·v_T (eq. (8)), via the stored reflectors.
  la::DMatrix unew(mc, rnew);
  la::copy<real_t>(that->u.cview(), unew.sub(0, 0, k1, rnew));
  la::ormqr_left(la::Trans::No, u1.cview(), tau1, unew.view());
  la::DMatrix vnew(nc, rnew);
  la::copy<real_t>(that->v.cview(), vnew.sub(0, 0, k2, rnew));
  la::ormqr_left(la::Trans::No, v1.cview(), tau2, vnew.view());

  c.set_lowrank(LrMatrix(std::move(unew), std::move(vnew)));
  return true;
}

/// RRQR-recompressed extend-add of §3.3.2 (eqs (9)-(12)).
bool lr2lr_rrqr(Tile& c, la::DConstView pu, la::DConstView pv, index_t roff,
                index_t coff, real_t tol_rel, index_t max_rank) {
  const index_t mc = c.rows();
  const index_t nc = c.cols();
  const index_t rc = c.rank();
  const index_t rp = pu.cols;

  // Orthogonalize the padded u_P against the orthonormal u_C (eq. (9)).
  la::DMatrix up = pad_rows(pu, mc, roff);
  la::DMatrix w(rc, rp);
  la::gemm(la::Trans::Yes, la::Trans::No, real_t(1), c.lr().u.cview(), up.cview(),
           real_t(0), w.view());
  la::DMatrix ustar = up;  // u* = u_P - u_C·w
  la::gemm(la::Trans::No, la::Trans::No, real_t(-1), c.lr().u.cview(), w.cview(),
           real_t(1), ustar.view());
  // QR of u* gives an orthonormal completion Q_S and its coefficients R_S
  // (this keeps [u_C, Q_S] orthonormal even though u* is not).
  std::vector<real_t> taus;
  la::geqrf(ustar.view(), taus);
  const index_t ks = std::min(mc, rp);
  const la::DMatrix rs = extract_r(ustar.cview(), ks);

  // M = [[I, w], [0, R_S]] so that [u_C, pad(u_P)] = [u_C, Q_S]·M (eq. (10)).
  const index_t krow = rc + ks;
  const index_t kcol = rc + rp;
  la::DMatrix m(krow, kcol);
  for (index_t i = 0; i < rc; ++i) m(i, i) = real_t(1);
  for (index_t j = 0; j < rp; ++j) {
    for (index_t i = 0; i < rc; ++i) m(i, rc + j) = w(i, j);
    for (index_t i = 0; i < ks; ++i) m(rc + i, rc + j) = rs(i, j);
  }

  // W = M·[v_C, -pad(v_P)]ᵗ, the matrix the RRQR is applied to (eq. (11)).
  la::DMatrix v1(nc, kcol);
  la::copy<real_t>(c.lr().v.cview(), v1.sub(0, 0, nc, rc));
  for (index_t j = 0; j < rp; ++j) {
    const real_t* src = pv.col(j);
    real_t* dst = v1.data() + (rc + j) * nc + coff;
    for (index_t i = 0; i < pv.rows; ++i) dst[i] = -src[i];
  }
  la::DMatrix big_w(krow, nc);
  la::gemm(la::Trans::No, la::Trans::Yes, real_t(1), m.cview(), v1.cview(),
           real_t(0), big_w.view());

  const real_t tol_abs = tol_rel * la::norm_fro(big_w.cview());
  const index_t cap = std::min({krow, nc, max_rank});
  std::vector<index_t> jpvt;
  std::vector<real_t> tauw;
  const index_t rnew = la::geqp3_trunc(big_w.view(), jpvt, tauw, tol_abs, cap);
  if (rnew == cap && cap < std::min(krow, nc)) {
    const real_t trailing =
        la::norm_fro<real_t>(big_w.sub(rnew, rnew, krow - rnew, nc - rnew));
    if (trailing > tol_abs) return false;
  }

  // Q_k from the first rnew reflectors of W.
  la::DMatrix qw(big_w.cview().sub(0, 0, krow, rnew));
  std::vector<real_t> tau_r(tauw.begin(), tauw.begin() + rnew);
  la::orgqr(qw.view(), tau_r);

  // u_C' = [u_C, Q_S]·Q_k (eq. (12)); split the product into the two panels.
  la::DMatrix qs(ustar.cview().sub(0, 0, mc, ks));
  std::vector<real_t> taus_r(taus.begin(), taus.begin() + ks);
  la::orgqr(qs.view(), taus_r);
  la::DMatrix unew(mc, rnew);
  la::gemm(la::Trans::No, la::Trans::No, real_t(1), c.lr().u.cview(),
           qw.cview().sub(0, 0, rc, rnew), real_t(0), unew.view());
  la::gemm(la::Trans::No, la::Trans::No, real_t(1), qs.cview(),
           qw.cview().sub(rc, 0, ks, rnew), real_t(1), unew.view());

  // v_C'ᵗ = R_k·Pᵗ: scatter R rows to original column positions.
  la::DMatrix vnew(nc, rnew);
  for (index_t j = 0; j < nc; ++j) {
    const index_t orig = jpvt[static_cast<std::size_t>(j)];
    const index_t kend = std::min(j + 1, rnew);
    for (index_t kk = 0; kk < kend; ++kk) vnew(orig, kk) = big_w(kk, j);
  }

  c.set_lowrank(LrMatrix(std::move(unew), std::move(vnew)));
  return true;
}

} // namespace

void lr2lr_add(Tile& c, const Tile& p, index_t roff, index_t coff,
               CompressionKind kind, real_t tol_rel, bool transpose) {
  if (c.state() == TileState::Factored) {
    throw Error("extend-add into a tile that is already Factored");
  }
  if (!c.is_lowrank()) {
    add_contribution_dense(c.dense(), p, roff, coff, transpose);
    return;
  }

  // Bring the contribution into low-rank (u, v) form, transposed if needed.
  la::DMatrix udense, vdense;  // storage when p is dense or transposed
  la::DConstView pu, pv;
  if (p.is_lowrank()) {
    if (p.rank() == 0) return;
    pu = transpose ? p.lr().v.cview() : p.lr().u.cview();
    pv = transpose ? p.lr().u.cview() : p.lr().v.cview();
  } else {
    // Compress the dense contribution: only the transposed case needs a
    // scratch copy, the plain case reads straight from p's storage.
    const index_t pm = transpose ? p.dense().cols() : p.dense().rows();
    const index_t pn = transpose ? p.dense().rows() : p.dense().cols();
    std::optional<LrMatrix> plr;
    if (transpose) {
      la::DMatrix pd(pm, pn);
      la::transpose<real_t>(p.dense().cview(), pd.view());
      plr = compress(kind, pd.cview(), tol_rel, beneficial_rank_limit(pm, pn));
    } else {
      plr = compress(kind, p.dense().cview(), tol_rel,
                     beneficial_rank_limit(pm, pn));
    }
    if (!plr) {
      densify_and_apply(c, p, roff, coff, transpose);
      return;
    }
    if (plr->rank() == 0) return;
    udense = std::move(plr->u);
    vdense = std::move(plr->v);
    pu = udense.cview();
    pv = vdense.cview();
  }

  const index_t max_rank = beneficial_rank_limit(c.rows(), c.cols());

  if (c.rank() == 0) {
    // C was empty: adopt the (negated, padded) contribution directly.
    if (pu.cols > max_rank) {
      densify_and_apply(c, p, roff, coff, transpose);
      return;
    }
    la::DMatrix u = pad_rows(pu, c.rows(), roff);
    la::DMatrix v = pad_rows_negated(pv, c.cols(), coff);
    c.set_lowrank(LrMatrix(std::move(u), std::move(v)));
    return;
  }

  const bool ok = (kind == CompressionKind::Svd)
                      ? lr2lr_svd(c, pu, pv, roff, coff, tol_rel, max_rank)
                      : lr2lr_rrqr(c, pu, pv, roff, coff, tol_rel, max_rank);
  if (!ok) densify_and_apply(c, p, roff, coff, transpose);
}

} // namespace blr::lr
