#pragma once

#include "lowrank/compression.hpp"

namespace blr::lr {

/// P = A·Bᵗ, the update contribution of §3.3.1, returned as a Tile that is
/// low-rank whenever either operand is (dense only for dense×dense). The
/// tile's storage is tracked under `cat` (contributions are scratch, so
/// Workspace by default). When both operands are low-rank the intermediate
/// T = V_Aᵗ·V_B is recompressed (eqs (1)-(4) of the paper) provided
/// `need_ortho` is set (LR2LR targets, where the resulting U must be
/// orthonormal for the later extend-add); otherwise the cheaper
/// non-orthogonal form is kept (LR2GE targets).
Tile ab_t_product(const Tile& a, const Tile& b, CompressionKind kind,
                  real_t tol_rel, bool need_ortho,
                  MemCategory cat = MemCategory::Workspace);

/// LR2GE: target -= P (or Pᵗ when `transpose`). `target` is the sub-view of
/// the dense destination block already positioned at the right offsets.
void apply_to_dense(const Tile& p, la::DView target, bool transpose);

/// LR2LR: the extend-add C = C − "P padded to C's shape at (roff, coff)"
/// followed by recompression (§3.3.2). The SVD variant re-orthogonalizes via
/// two QRs and an SVD; the RRQR variant orthogonalizes U_P against U_C and
/// re-pivots. If the recompressed rank exceeds the storage-beneficial limit,
/// `c` is converted to dense and the update applied densely (the fallback
/// the paper describes as "blocks with high ranks are kept dense").
/// When `transpose` is set the *transposed* contribution Pᵗ is added (used
/// for the U-side mirror targets of the LU factorization).
/// Throws blr::Error if `c` has already reached TileState::Factored.
void lr2lr_add(Tile& c, const Tile& p, index_t roff, index_t coff,
               CompressionKind kind, real_t tol_rel, bool transpose = false);

/// Dense-target update for a contribution at offsets: target block (dense)
/// receives P at (roff, coff). Thin wrapper used by the numeric layer.
void add_contribution_dense(la::DMatrix& target, const Tile& p,
                            index_t roff, index_t coff, bool transpose);

} // namespace blr::lr
