#pragma once

#include "lowrank/compression.hpp"

namespace blr::lr {

/// Result of a block-times-blockᵗ product: the update contribution
/// P = A·Bᵗ of §3.3.1, in low-rank form whenever either operand is.
struct Contribution {
  bool lowrank = false;
  LrMatrix lr;        // valid when lowrank
  la::DMatrix dense;  // valid when !lowrank

  [[nodiscard]] index_t rows() const { return lowrank ? lr.rows() : dense.rows(); }
  [[nodiscard]] index_t cols() const { return lowrank ? lr.cols() : dense.cols(); }
  [[nodiscard]] index_t rank() const { return lowrank ? lr.rank() : index_t(-1); }
};

/// P = A·Bᵗ. When both operands are low-rank the intermediate
/// T = V_Aᵗ·V_B is recompressed (eqs (1)-(4) of the paper) provided
/// `need_ortho` is set (Minimal-Memory path, where the resulting U must be
/// orthonormal for the later extend-add); otherwise the cheaper
/// non-orthogonal form is kept (Just-In-Time path, LR2GE target).
Contribution ab_t_product(const Block& a, const Block& b, CompressionKind kind,
                          real_t tol_rel, bool need_ortho);

/// LR2GE: target -= P (or Pᵗ when `transpose`). `target` is the sub-view of
/// the dense destination block already positioned at the right offsets.
void apply_to_dense(const Contribution& p, la::DView target, bool transpose);

/// LR2LR: the extend-add C = C − "P padded to C's shape at (roff, coff)"
/// followed by recompression (§3.3.2). The SVD variant re-orthogonalizes via
/// two QRs and an SVD; the RRQR variant orthogonalizes U_P against U_C and
/// re-pivots. If the recompressed rank exceeds the storage-beneficial limit,
/// `c` is converted to dense and the update applied densely (the fallback
/// the paper describes as "blocks with high ranks are kept dense").
/// When `transpose` is set the *transposed* contribution Pᵗ is added (used
/// for the U-side mirror targets of the LU factorization).
void lr2lr_add(Block& c, const Contribution& p, index_t roff, index_t coff,
               CompressionKind kind, real_t tol_rel, bool transpose = false);

/// Dense-target update for a contribution at offsets: target block (dense)
/// receives P at (roff, coff). Thin wrapper used by the numeric layer.
void add_contribution_dense(la::DMatrix& target, const Contribution& p,
                            index_t roff, index_t coff, bool transpose);

} // namespace blr::lr
