#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>

#include "common/memory_tracker.hpp"
#include "linalg/matrix.hpp"

namespace blr::lr {

/// Recycler for dense fp64 buffers between numeric passes over the same
/// symbolic plan (DESIGN.md §15). A re-factorization retires one full set of
/// factor blocks and allocates another of *identical* shapes; routing the
/// retired storage through this pool turns the steady-state allocation
/// traffic of the factorization-server loop into reshape-in-place reuse.
///
/// Held buffers are charged to MemCategory::Workspace so a governed
/// re-factorization still accounts for them; if charging a donated buffer
/// would breach the installed memory budget the buffer is simply dropped
/// (freed) instead — the pool is an optimization, never a liability.
///
/// Thread-safe; acquire() is best-fit on element capacity (smallest held
/// buffer that can hold the request). On the fixed-pattern workload this is
/// an exact-size hit for every block after the first donation cycle.
class BufferPool {
public:
  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  ~BufferPool() { clear(); }

  /// A zeroed rows x cols matrix, recycled from the pool when a buffer of
  /// sufficient capacity is held (counted as a hit), freshly allocated
  /// otherwise (a miss). Empty requests never touch the pool.
  la::DMatrix acquire(index_t rows, index_t cols) {
    const std::size_t need = static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
    if (need > 0) {
      std::lock_guard<std::mutex> lk(mu_);
      auto it = free_.lower_bound(need);
      if (it != free_.end()) {
        la::DMatrix m = std::move(it->second);
        MemoryTracker::instance().release(MemCategory::Workspace,
                                          it->first * sizeof(real_t));
        free_.erase(it);
        ++hits_;
        m.reshape(rows, cols);  // zero-fill; keeps capacity when shrinking
        return m;
      }
      ++misses_;
    }
    return la::DMatrix(rows, cols);
  }

  /// Donate a retired buffer for later reuse. Empty buffers are ignored;
  /// a buffer whose Workspace charge would breach the memory budget is
  /// dropped rather than held.
  void recycle(la::DMatrix m) {
    const std::size_t sz = static_cast<std::size_t>(m.size());
    if (sz == 0) return;
    try {
      MemoryTracker::instance().allocate(MemCategory::Workspace, sz * sizeof(real_t));
    } catch (...) {
      return;  // budget breach: let the buffer free instead of holding it
    }
    std::lock_guard<std::mutex> lk(mu_);
    free_.emplace(sz, std::move(m));
  }

  /// Re-register every held buffer with the MemoryTracker. Called after the
  /// per-attempt tracker reset() (which wiped the pool's Workspace charge)
  /// so held buffers stay visible to the freshly-applied budget; buffers
  /// that no longer fit under it are dropped.
  void retrack() {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto it = free_.begin(); it != free_.end();) {
      try {
        MemoryTracker::instance().allocate(MemCategory::Workspace,
                                           it->first * sizeof(real_t));
        ++it;
      } catch (...) {
        it = free_.erase(it);
      }
    }
  }

  /// Free every held buffer (tracker discharged) and zero the counters —
  /// a cold factorize() calls this, so hit/miss counts always describe the
  /// re-factorization passes since the last cold start.
  void clear() {
    std::lock_guard<std::mutex> lk(mu_);
    std::size_t held = 0;
    for (const auto& [sz, m] : free_) held += sz;
    if (held > 0)
      MemoryTracker::instance().release(MemCategory::Workspace, held * sizeof(real_t));
    free_.clear();
    hits_ = 0;
    misses_ = 0;
  }

  struct Stats {
    std::uint64_t hits = 0;    ///< acquire() served from a held buffer
    std::uint64_t misses = 0;  ///< acquire() had to allocate fresh
    std::size_t held = 0;      ///< buffers currently held
  };
  [[nodiscard]] Stats stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    return Stats{hits_, misses_, free_.size()};
  }

private:
  mutable std::mutex mu_;
  std::multimap<std::size_t, la::DMatrix> free_;  ///< keyed by element count
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

} // namespace blr::lr
