#include "lowrank/compression.hpp"

#include <cmath>

#include "common/prng.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"

namespace blr::lr {

std::optional<LrMatrix> compress_svd(la::DConstView a, real_t tol_rel, index_t max_rank) {
  const index_t m = a.rows;
  const index_t n = a.cols;
  const index_t kmax = std::min(m, n);

  la::DMatrix u;
  la::DMatrix v;
  std::vector<real_t> sigma;
  la::svd(a, u, sigma, v);

  // ‖A‖_F² = Σ σ_k²; pick the smallest r with the tail below tol_rel·‖A‖_F.
  // The tails are accumulated smallest-first (suffix sums): subtracting from
  // the total instead would leave an O(eps·‖A‖²) cancellation floor that can
  // never pass tolerances near machine precision.
  std::vector<real_t> suffix_sq(static_cast<std::size_t>(kmax) + 1, 0);
  for (index_t k = kmax - 1; k >= 0; --k) {
    const real_t s = sigma[static_cast<std::size_t>(k)];
    suffix_sq[static_cast<std::size_t>(k)] = suffix_sq[static_cast<std::size_t>(k) + 1] + s * s;
  }
  const real_t tol_sq = tol_rel * tol_rel * suffix_sq[0];

  index_t rank = 0;
  while (rank < kmax && suffix_sq[static_cast<std::size_t>(rank)] > tol_sq) ++rank;
  if (rank > max_rank) return std::nullopt;

  LrMatrix out;
  out.u = la::DMatrix(m, rank);
  out.v = la::DMatrix(n, rank);
  for (index_t k = 0; k < rank; ++k) {
    std::copy_n(u.data() + k * m, m, out.u.data() + k * m);
    const real_t s = sigma[static_cast<std::size_t>(k)];
    const real_t* vk = v.data() + k * n;
    real_t* ok = out.v.data() + k * n;
    for (index_t i = 0; i < n; ++i) ok[i] = s * vk[i];
  }
  return out;
}

std::optional<LrMatrix> compress_rrqr(la::DConstView a, real_t tol_rel, index_t max_rank) {
  const index_t m = a.rows;
  const index_t n = a.cols;
  const index_t kmax = std::min(m, n);
  const index_t cap = std::min(kmax, std::max<index_t>(max_rank, 0));

  la::DMatrix w(a);  // working copy
  const real_t tol_abs = tol_rel * la::norm_fro(a);

  std::vector<index_t> jpvt;
  std::vector<real_t> tau;
  const index_t rank = la::geqp3_trunc(w.view(), jpvt, tau, tol_abs, cap);

  if (rank == cap && cap < kmax) {
    // Stopped by the rank cap, not the tolerance: check the trailing block.
    const real_t trailing = la::norm_fro<real_t>(w.sub(rank, rank, m - rank, n - rank));
    if (trailing > tol_abs) return std::nullopt;
  }

  LrMatrix out;
  // U = the first `rank` Householder columns expanded.
  out.u = la::DMatrix(m, rank);
  if (rank > 0) {
    la::copy<real_t>(w.sub(0, 0, m, rank), out.u.view());
    std::vector<real_t> tau_r(tau.begin(), tau.begin() + rank);
    la::orgqr(out.u.view(), tau_r);
  }
  // Vᵗ = R·Pᵗ: scatter the rows of R into the original column positions.
  out.v = la::DMatrix(n, rank);
  for (index_t j = 0; j < n; ++j) {
    const index_t orig = jpvt[static_cast<std::size_t>(j)];
    const index_t kend = std::min(j + 1, rank);
    for (index_t k = 0; k < kend; ++k) out.v(orig, k) = w(k, j);
  }
  return out;
}

std::optional<LrMatrix> compress_randomized(la::DConstView a, real_t tol_rel,
                                            index_t max_rank) {
  return compress_randomized_from(a, tol_rel, max_rank,
                                  std::min<index_t>(16, std::min(a.rows, a.cols)));
}

std::optional<LrMatrix> compress_randomized_from(la::DConstView a, real_t tol_rel,
                                                 index_t max_rank, index_t sketch0) {
  const index_t m = a.rows;
  const index_t n = a.cols;
  const index_t kmax = std::min(m, n);
  constexpr index_t oversample = 8;

  const real_t anorm = la::norm_fro(a);
  if (anorm == real_t(0)) {
    return LrMatrix(la::DMatrix(m, 0), la::DMatrix(n, 0));
  }
  const real_t tol_abs_sq = tol_rel * tol_rel * anorm * anorm;

  // Deterministic sketch: reproducibility matters more than independence
  // between calls here.
  Prng rng(0x5deece66dull ^ (static_cast<std::uint64_t>(m) << 20) ^
           static_cast<std::uint64_t>(n));

  index_t l = std::clamp<index_t>(sketch0, 1, kmax);
  for (;;) {
    // Sample the range: Y = A·G, orthonormalize, project B = Qᵗ·A.
    la::DMatrix g(n, l);
    for (index_t j = 0; j < l; ++j)
      for (index_t i = 0; i < n; ++i) g(i, j) = static_cast<real_t>(rng.normal());
    la::DMatrix y(m, l);
    la::gemm(la::Trans::No, la::Trans::No, real_t(1), a, g.cview(), real_t(0), y.view());
    std::vector<real_t> tau;
    la::geqrf(y.view(), tau);
    la::orgqr(y.view(), tau);  // y := Q (m x l)
    la::DMatrix b(l, n);
    la::gemm(la::Trans::Yes, la::Trans::No, real_t(1), y.cview(), a, real_t(0), b.view());

    // Residual ‖A − Q·B‖ computed directly: the cheaper ‖A‖² − ‖B‖² identity
    // has an O(eps·‖A‖²) cancellation floor that cannot certify tolerances
    // below ~sqrt(eps).
    la::DMatrix resid(m, n);
    la::copy<real_t>(a, resid.view());
    la::gemm(la::Trans::No, la::Trans::No, real_t(-1), y.cview(), b.cview(),
             real_t(1), resid.view());
    const real_t rnorm = la::norm_fro(resid.cview());
    const real_t resid_sq = rnorm * rnorm;

    if (resid_sq <= tol_abs_sq || l >= kmax) {
      if (resid_sq > tol_abs_sq) return std::nullopt;  // full width, still short
      // Truncate B with a small SVD, spending the remaining error budget.
      la::DMatrix ub, vb;
      std::vector<real_t> sigma;
      la::svd(b.cview(), ub, sigma, vb);
      std::vector<real_t> suffix_sq(sigma.size() + 1, 0);
      for (index_t k = static_cast<index_t>(sigma.size()) - 1; k >= 0; --k) {
        const real_t s = sigma[static_cast<std::size_t>(k)];
        suffix_sq[static_cast<std::size_t>(k)] =
            suffix_sq[static_cast<std::size_t>(k) + 1] + s * s;
      }
      index_t rank = 0;
      while (rank < static_cast<index_t>(sigma.size()) &&
             resid_sq + suffix_sq[static_cast<std::size_t>(rank)] > tol_abs_sq) {
        ++rank;
      }
      if (rank > max_rank) return std::nullopt;

      LrMatrix out;
      out.u = la::DMatrix(m, rank);
      la::gemm(la::Trans::No, la::Trans::No, real_t(1), y.cview(),
               ub.cview().sub(0, 0, l, rank), real_t(0), out.u.view());
      out.v = la::DMatrix(n, rank);
      for (index_t k = 0; k < rank; ++k) {
        const real_t s = sigma[static_cast<std::size_t>(k)];
        for (index_t i = 0; i < n; ++i) out.v(i, k) = s * vb(i, k);
      }
      return out;
    }
    // Not enough range captured: give up early once the sketch is already
    // well past the useful rank, otherwise double it.
    if (l >= std::min(kmax, 2 * max_rank + oversample)) return std::nullopt;
    l = std::min(kmax, 2 * l);
  }
}

std::optional<LrMatrix> compress(CompressionKind kind, la::DConstView a,
                                 real_t tol_rel, index_t max_rank) {
  switch (kind) {
    case CompressionKind::Svd: return compress_svd(a, tol_rel, max_rank);
    case CompressionKind::Rrqr: return compress_rrqr(a, tol_rel, max_rank);
    case CompressionKind::Randomized:
      return compress_randomized(a, tol_rel, max_rank);
  }
  return std::nullopt;
}

WarmCompressResult compress_warm(CompressionKind kind, la::DConstView a,
                                 real_t tol_rel, index_t max_rank,
                                 index_t rank_guess) {
  const index_t guess = std::clamp<index_t>(rank_guess, 0, max_rank);
  constexpr index_t oversample = 8;
  switch (kind) {
    case CompressionKind::Rrqr: {
      // A capped RRQR is self-verifying: when geqp3 stops at the cap rather
      // than the tolerance, compress_rrqr checks the trailing block against
      // tol_abs and reports failure — so a too-small guess surfaces as
      // nullopt here, never as a silently inaccurate factorization. A run
      // that stops exactly at the cap is re-done at full cap even when its
      // trailing block passed: the capped acceptance uses the exact trailing
      // norm while an uncapped run consults downdated estimates at the same
      // step, and the two can disagree near the tolerance — rerunning keeps
      // warm results bit-identical to cold ones.
      auto first = compress_rrqr(a, tol_rel, guess);
      if (first && first->rank() < guess) return {std::move(first), false};
      if (guess >= max_rank) return {std::move(first), false};
      return {compress_rrqr(a, tol_rel, max_rank), true};
    }
    case CompressionKind::Svd: {
      // One sketch sized by the guess, verified by its explicit residual;
      // only when the values moved enough to outgrow it do we pay the full
      // deterministic SVD again.
      auto sketch = compress_randomized_from(a, tol_rel, max_rank,
                                             std::min(guess + oversample, max_rank));
      if (sketch) return {std::move(sketch), false};
      return {compress_svd(a, tol_rel, max_rank), true};
    }
    case CompressionKind::Randomized:
      // The adaptive range-finder already verifies and doubles; warming it
      // just starts the sketch at the learned rank instead of 16.
      return {compress_randomized_from(a, tol_rel, max_rank, guess + oversample),
              false};
  }
  return {std::nullopt, false};
}

Tile compress_to_tile(CompressionKind kind, la::DConstView a, real_t tol_rel,
                      MemCategory cat) {
  auto lr = compress(kind, a, tol_rel, beneficial_rank_limit(a.rows, a.cols));
  if (lr) return Tile::make_lowrank(a.rows, a.cols, std::move(*lr), cat);
  Tile t = Tile::make_dense(a.rows, a.cols, cat);
  la::copy<real_t>(a, t.dense().view());
  return t;
}

} // namespace blr::lr
