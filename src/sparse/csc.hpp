#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "linalg/matrix.hpp"

namespace blr::sparse {

/// Numerical symmetry classes relevant to the solver: the paper's method
/// requires a symmetric *pattern*; values may be general (LU path) or the
/// matrix may be SPD (Cholesky path).
enum class Symmetry {
  General,           ///< symmetric pattern, general values -> LU
  SymmetricValues,   ///< symmetric values, possibly indefinite -> LU
  Spd,               ///< symmetric positive definite -> Cholesky
};

/// Triplet (COO) entry used to assemble matrices.
struct Triplet {
  index_t row;
  index_t col;
  real_t value;
};

/// Compressed Sparse Column matrix with sorted row indices per column.
class CscMatrix {
public:
  CscMatrix() = default;
  CscMatrix(index_t rows, index_t cols) : rows_(rows), cols_(cols),
      colptr_(static_cast<std::size_t>(cols) + 1, 0) {}

  /// Assemble from triplets; duplicate entries are summed.
  static CscMatrix from_triplets(index_t rows, index_t cols,
                                 std::vector<Triplet> triplets,
                                 Symmetry sym = Symmetry::General);

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] index_t nnz() const { return static_cast<index_t>(rowind_.size()); }
  [[nodiscard]] Symmetry symmetry() const { return sym_; }
  void set_symmetry(Symmetry s) { sym_ = s; }

  [[nodiscard]] const std::vector<index_t>& colptr() const { return colptr_; }
  [[nodiscard]] const std::vector<index_t>& rowind() const { return rowind_; }
  [[nodiscard]] const std::vector<real_t>& values() const { return values_; }
  [[nodiscard]] std::vector<real_t>& values() { return values_; }

  /// Entry lookup by binary search; returns 0 for entries outside the pattern.
  [[nodiscard]] real_t at(index_t i, index_t j) const;

  /// y = A·x  (or y = Aᵗ·x when transpose).
  void spmv(const real_t* x, real_t* y, bool transpose = false) const;

  /// Returns Aᵗ (pattern and values).
  [[nodiscard]] CscMatrix transposed() const;

  /// True when the nonzero pattern is symmetric (required by the solver).
  [[nodiscard]] bool pattern_symmetric() const;

  /// Returns P·A·Pᵗ for the permutation `perm` (perm[new] = old).
  [[nodiscard]] CscMatrix permuted(const std::vector<index_t>& perm) const;

  /// Dense copy (tests / small examples only).
  [[nodiscard]] la::DMatrix to_dense() const;

  /// Frobenius norm of the stored values.
  [[nodiscard]] real_t norm_fro() const;

private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  Symmetry sym_ = Symmetry::General;
  std::vector<index_t> colptr_;
  std::vector<index_t> rowind_;
  std::vector<real_t> values_;
};

/// ||A·x - b||_2 / ||b||_2 — the backward error the paper reports.
real_t backward_error(const CscMatrix& a, const real_t* x, const real_t* b);

} // namespace blr::sparse
