#pragma once

#include <vector>

#include "common/types.hpp"

namespace blr::sparse {

class CscMatrix;

/// Undirected adjacency graph (CSR arrays, no self loops). This is the
/// structure the ordering phase (nested dissection / minimum degree)
/// operates on; it is built from the symmetrized pattern of the matrix.
class Graph {
public:
  Graph() = default;
  Graph(index_t n, std::vector<index_t> ptr, std::vector<index_t> adj)
      : n_(n), ptr_(std::move(ptr)), adj_(std::move(adj)) {}

  /// Build from a sparse matrix pattern (symmetrized, diagonal dropped).
  static Graph from_matrix(const CscMatrix& a);

  [[nodiscard]] index_t num_vertices() const { return n_; }
  [[nodiscard]] index_t num_edges() const { return static_cast<index_t>(adj_.size()) / 2; }
  [[nodiscard]] index_t degree(index_t v) const {
    return ptr_[static_cast<std::size_t>(v) + 1] - ptr_[static_cast<std::size_t>(v)];
  }

  /// Neighbors of v as a begin/end pair into the adjacency array.
  [[nodiscard]] const index_t* neighbors_begin(index_t v) const {
    return adj_.data() + ptr_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] const index_t* neighbors_end(index_t v) const {
    return adj_.data() + ptr_[static_cast<std::size_t>(v) + 1];
  }

  [[nodiscard]] const std::vector<index_t>& ptr() const { return ptr_; }
  [[nodiscard]] const std::vector<index_t>& adj() const { return adj_; }

  /// Induced subgraph on `vertices` (local indices 0..k-1 follow the order
  /// of `vertices`; the caller keeps the local->global map).
  [[nodiscard]] Graph induced(const std::vector<index_t>& vertices) const;

  /// Connected components; returns component id per vertex and the count.
  [[nodiscard]] std::pair<std::vector<index_t>, index_t> connected_components() const;

private:
  index_t n_ = 0;
  std::vector<index_t> ptr_{0};
  std::vector<index_t> adj_;
};

} // namespace blr::sparse
