#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sparse/csc.hpp"

namespace blr::sparse {

/// 7-point finite-difference Laplacian on an nx x ny x nz grid (SPD).
/// This is the paper's `lapN` family (lap120 = laplacian_3d(120,120,120)).
CscMatrix laplacian_3d(index_t nx, index_t ny, index_t nz);

/// 5-point Laplacian on an nx x ny grid (SPD).
CscMatrix laplacian_2d(index_t nx, index_t ny);

/// Nonsymmetric convection–diffusion operator: 7-point stencil of
/// -Δu + c·∇u (central differences). The pattern is symmetric, values are
/// not; |peclet| < 1 keeps the operator nonsingular and well conditioned.
/// Surrogate for the *atmosmodj* atmospheric-model matrix.
CscMatrix convection_diffusion_3d(index_t nx, index_t ny, index_t nz, real_t peclet);

/// 3-dof-per-node vector "elasticity-like" operator on a 3D grid: each grid
/// edge along axis d carries the SPD coupling block
///   K_d = mu·I3 + (lambda + mu)·e_d·e_dᵗ,
/// assembled graph-Laplacian style plus a small mass term. SPD, with the
/// higher per-block ranks typical of structural matrices.
/// Surrogate for the *audi* / *hook* structural matrices.
CscMatrix elasticity_3d(index_t nx, index_t ny, index_t nz, real_t lambda = 1.0,
                        real_t mu = 1.0);

/// Poisson operator with log-uniform random cell coefficients spanning
/// `contrast` orders of magnitude (harmonic-mean edge weights). SPD and
/// much harder to compress than the constant-coefficient Laplacian.
/// Surrogate for the *serena* / *geo1438* reservoir & geomechanics matrices.
CscMatrix heterogeneous_poisson_3d(index_t nx, index_t ny, index_t nz,
                                   real_t contrast, std::uint64_t seed);

/// Named test-set entry mirroring the paper's six matrices at a
/// node-feasible scale factor (grid dimension `n` per axis).
struct TestMatrix {
  std::string name;        ///< paper matrix it stands in for
  CscMatrix matrix;
  bool spd;                ///< Cholesky-eligible
};

/// The 6-matrix evaluation set of Section 4 of the paper, scaled to `n`
/// grid points per axis (the paper's originals are ~1e6 dofs; pass the
/// largest n the machine affords).
std::vector<TestMatrix> paper_test_set(index_t n);

} // namespace blr::sparse
