#include "sparse/csc.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace blr::sparse {

CscMatrix CscMatrix::from_triplets(index_t rows, index_t cols,
                                   std::vector<Triplet> triplets, Symmetry sym) {
  BLR_CHECK(rows >= 0 && cols >= 0, "invalid dimensions");
  for (const auto& t : triplets) {
    BLR_CHECK(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols,
              "triplet index out of range");
  }
  std::sort(triplets.begin(), triplets.end(), [](const Triplet& a, const Triplet& b) {
    return (a.col != b.col) ? a.col < b.col : a.row < b.row;
  });

  CscMatrix m(rows, cols);
  m.sym_ = sym;
  m.rowind_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  std::vector<index_t> count(static_cast<std::size_t>(cols), 0);

  for (std::size_t k = 0; k < triplets.size();) {
    const index_t r = triplets[k].row;
    const index_t c = triplets[k].col;
    real_t v = 0;
    while (k < triplets.size() && triplets[k].row == r && triplets[k].col == c) {
      v += triplets[k].value;
      ++k;
    }
    m.rowind_.push_back(r);
    m.values_.push_back(v);
    ++count[static_cast<std::size_t>(c)];
  }
  for (index_t j = 0; j < cols; ++j) {
    m.colptr_[static_cast<std::size_t>(j) + 1] =
        m.colptr_[static_cast<std::size_t>(j)] + count[static_cast<std::size_t>(j)];
  }
  return m;
}

real_t CscMatrix::at(index_t i, index_t j) const {
  const auto begin = rowind_.begin() + colptr_[static_cast<std::size_t>(j)];
  const auto end = rowind_.begin() + colptr_[static_cast<std::size_t>(j) + 1];
  const auto it = std::lower_bound(begin, end, i);
  if (it == end || *it != i) return 0.0;
  return values_[static_cast<std::size_t>(it - rowind_.begin())];
}

void CscMatrix::spmv(const real_t* x, real_t* y, bool transpose) const {
  if (!transpose) {
    std::fill_n(y, rows_, 0.0);
    for (index_t j = 0; j < cols_; ++j) {
      const real_t xj = x[j];
      if (xj == 0.0) continue;
      for (index_t p = colptr_[static_cast<std::size_t>(j)];
           p < colptr_[static_cast<std::size_t>(j) + 1]; ++p) {
        y[rowind_[static_cast<std::size_t>(p)]] += values_[static_cast<std::size_t>(p)] * xj;
      }
    }
  } else {
    for (index_t j = 0; j < cols_; ++j) {
      real_t s = 0.0;
      for (index_t p = colptr_[static_cast<std::size_t>(j)];
           p < colptr_[static_cast<std::size_t>(j) + 1]; ++p) {
        s += values_[static_cast<std::size_t>(p)] * x[rowind_[static_cast<std::size_t>(p)]];
      }
      y[j] = s;
    }
  }
}

CscMatrix CscMatrix::transposed() const {
  CscMatrix t(cols_, rows_);
  t.sym_ = sym_;
  t.rowind_.resize(rowind_.size());
  t.values_.resize(values_.size());
  // Count entries per row (= column of the transpose).
  std::vector<index_t> next(static_cast<std::size_t>(rows_) + 1, 0);
  for (const index_t r : rowind_) ++next[static_cast<std::size_t>(r) + 1];
  for (index_t i = 0; i < rows_; ++i)
    next[static_cast<std::size_t>(i) + 1] += next[static_cast<std::size_t>(i)];
  t.colptr_.assign(next.begin(), next.end());
  for (index_t j = 0; j < cols_; ++j) {
    for (index_t p = colptr_[static_cast<std::size_t>(j)];
         p < colptr_[static_cast<std::size_t>(j) + 1]; ++p) {
      const index_t r = rowind_[static_cast<std::size_t>(p)];
      const index_t q = next[static_cast<std::size_t>(r)]++;
      t.rowind_[static_cast<std::size_t>(q)] = j;
      t.values_[static_cast<std::size_t>(q)] = values_[static_cast<std::size_t>(p)];
    }
  }
  return t;
}

bool CscMatrix::pattern_symmetric() const {
  if (rows_ != cols_) return false;
  const CscMatrix t = transposed();
  return t.colptr_ == colptr_ && t.rowind_ == rowind_;
}

CscMatrix CscMatrix::permuted(const std::vector<index_t>& perm) const {
  BLR_CHECK(rows_ == cols_, "permuted() requires a square matrix");
  BLR_CHECK(static_cast<index_t>(perm.size()) == rows_, "permutation size mismatch");
  // iperm[old] = new.
  std::vector<index_t> iperm(perm.size());
  for (std::size_t k = 0; k < perm.size(); ++k)
    iperm[static_cast<std::size_t>(perm[k])] = static_cast<index_t>(k);

  std::vector<Triplet> trip;
  trip.reserve(static_cast<std::size_t>(nnz()));
  for (index_t j = 0; j < cols_; ++j) {
    const index_t nj = iperm[static_cast<std::size_t>(j)];
    for (index_t p = colptr_[static_cast<std::size_t>(j)];
         p < colptr_[static_cast<std::size_t>(j) + 1]; ++p) {
      trip.push_back({iperm[static_cast<std::size_t>(rowind_[static_cast<std::size_t>(p)])],
                      nj, values_[static_cast<std::size_t>(p)]});
    }
  }
  return from_triplets(rows_, cols_, std::move(trip), sym_);
}

la::DMatrix CscMatrix::to_dense() const {
  la::DMatrix d(rows_, cols_);
  for (index_t j = 0; j < cols_; ++j) {
    for (index_t p = colptr_[static_cast<std::size_t>(j)];
         p < colptr_[static_cast<std::size_t>(j) + 1]; ++p) {
      d(rowind_[static_cast<std::size_t>(p)], j) = values_[static_cast<std::size_t>(p)];
    }
  }
  return d;
}

real_t CscMatrix::norm_fro() const {
  real_t s = 0;
  for (const real_t v : values_) s += v * v;
  return std::sqrt(s);
}

real_t backward_error(const CscMatrix& a, const real_t* x, const real_t* b) {
  std::vector<real_t> r(static_cast<std::size_t>(a.rows()));
  a.spmv(x, r.data());
  real_t rnorm = 0;
  real_t bnorm = 0;
  for (index_t i = 0; i < a.rows(); ++i) {
    const real_t d = r[static_cast<std::size_t>(i)] - b[i];
    rnorm += d * d;
    bnorm += b[i] * b[i];
  }
  return std::sqrt(rnorm) / std::sqrt(bnorm);
}

} // namespace blr::sparse
