#include "sparse/mm_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace blr::sparse {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

} // namespace

CscMatrix read_matrix_market(const std::string& path) {
  std::ifstream in(path);
  BLR_CHECK(in.good(), "cannot open Matrix Market file: " + path);
  return read_matrix_market(in);
}

CscMatrix read_matrix_market(std::istream& in) {
  std::string line;
  BLR_CHECK(static_cast<bool>(std::getline(in, line)), "empty Matrix Market stream");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  BLR_CHECK(banner == "%%MatrixMarket", "missing %%MatrixMarket banner");
  BLR_CHECK(lower(object) == "matrix", "only 'matrix' objects are supported");
  BLR_CHECK(lower(format) == "coordinate", "only coordinate format is supported");
  field = lower(field);
  symmetry = lower(symmetry);
  BLR_CHECK(field == "real" || field == "integer" || field == "pattern",
            "unsupported field type: " + field);
  BLR_CHECK(symmetry == "general" || symmetry == "symmetric",
            "unsupported symmetry: " + symmetry);

  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream dims(line);
  index_t rows = 0, cols = 0, entries = 0;
  dims >> rows >> cols >> entries;
  BLR_CHECK(rows > 0 && cols > 0, "invalid Matrix Market dimensions");

  std::vector<Triplet> trip;
  trip.reserve(static_cast<std::size_t>(entries) * (symmetry == "symmetric" ? 2 : 1));
  for (index_t e = 0; e < entries; ++e) {
    index_t i = 0, j = 0;
    real_t v = 1.0;
    in >> i >> j;
    if (field != "pattern") in >> v;
    BLR_CHECK(static_cast<bool>(in), "truncated Matrix Market entries");
    --i;  // 1-based -> 0-based
    --j;
    trip.push_back({i, j, v});
    if (symmetry == "symmetric" && i != j) trip.push_back({j, i, v});
  }
  const Symmetry sym = (symmetry == "symmetric") ? Symmetry::SymmetricValues
                                                 : Symmetry::General;
  return CscMatrix::from_triplets(rows, cols, std::move(trip), sym);
}

void write_matrix_market(const CscMatrix& a, const std::string& path) {
  std::ofstream out(path);
  BLR_CHECK(out.good(), "cannot open file for writing: " + path);
  write_matrix_market(a, out);
}

void write_matrix_market(const CscMatrix& a, std::ostream& out) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.rows() << ' ' << a.cols() << ' ' << a.nnz() << '\n';
  out.precision(17);
  const auto& colptr = a.colptr();
  const auto& rowind = a.rowind();
  const auto& values = a.values();
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t p = colptr[static_cast<std::size_t>(j)];
         p < colptr[static_cast<std::size_t>(j) + 1]; ++p) {
      out << rowind[static_cast<std::size_t>(p)] + 1 << ' ' << j + 1 << ' '
          << values[static_cast<std::size_t>(p)] << '\n';
    }
  }
}

} // namespace blr::sparse
