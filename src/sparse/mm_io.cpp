#include "sparse/mm_io.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace blr::sparse {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

} // namespace

CscMatrix read_matrix_market(const std::string& path) {
  std::ifstream in(path);
  BLR_CHECK(in.good(), "cannot open Matrix Market file: " + path);
  return read_matrix_market(in);
}

CscMatrix read_matrix_market(std::istream& in) {
  long long lineno = 0;
  std::string line;
  const auto next_line = [&]() -> bool {
    if (!std::getline(in, line)) return false;
    ++lineno;
    return true;
  };
  const auto at_line = [&]() { return " at line " + std::to_string(lineno); };

  BLR_CHECK(next_line(), "empty Matrix Market stream");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  BLR_CHECK(banner == "%%MatrixMarket", "missing %%MatrixMarket banner");
  BLR_CHECK(lower(object) == "matrix", "only 'matrix' objects are supported");
  BLR_CHECK(lower(format) == "coordinate", "only coordinate format is supported");
  field = lower(field);
  symmetry = lower(symmetry);
  BLR_CHECK(field == "real" || field == "integer" || field == "pattern",
            "unsupported field type: " + field);
  BLR_CHECK(symmetry == "general" || symmetry == "symmetric",
            "unsupported symmetry: " + symmetry);

  // Skip comments / blank lines up to the size line.
  bool have_size = false;
  while (next_line()) {
    if (!line.empty() && line[0] != '%') {
      have_size = true;
      break;
    }
  }
  BLR_CHECK(have_size, "truncated Matrix Market header: size line missing"
                       " (stream ended after line " + std::to_string(lineno) + ")");

  // Parse dimensions in long long so negative or overflowing counts are
  // caught instead of wrapping (operator>> sets failbit on overflow).
  std::istringstream dims(line);
  long long rows = 0, cols = 0, entries = 0;
  dims >> rows >> cols >> entries;
  BLR_CHECK(!dims.fail(),
            "malformed Matrix Market size line" + at_line() + ": '" + line + "'");
  BLR_CHECK(rows > 0 && cols > 0,
            "invalid Matrix Market dimensions" + at_line() + ": " +
                std::to_string(rows) + " x " + std::to_string(cols));
  BLR_CHECK(entries >= 0, "negative Matrix Market entry count" + at_line() +
                              ": " + std::to_string(entries));
  // entries <= rows*cols, written div/mod so rows*cols itself cannot overflow.
  BLR_CHECK(entries / rows < cols ||
                (entries / rows == cols && entries % rows == 0),
            "Matrix Market entry count " + std::to_string(entries) +
                " exceeds rows x cols" + at_line());

  std::vector<Triplet> trip;
  trip.reserve(static_cast<std::size_t>(entries) * (symmetry == "symmetric" ? 2 : 1));
  for (long long e = 0; e < entries; ++e) {
    // One entry per line (blank lines tolerated).
    do {
      BLR_CHECK(next_line(), "truncated Matrix Market data: expected " +
                                 std::to_string(entries) + " entries, stream "
                                 "ended after line " + std::to_string(lineno) +
                                 " (" + std::to_string(e) + " read)");
    } while (line.find_first_not_of(" \t\r\n") == std::string::npos);
    std::istringstream entry(line);
    long long i = 0, j = 0;
    real_t v = 1.0;
    entry >> i >> j;
    if (field != "pattern") {
      // Parse the value via strtod: istream extraction rejects "nan"/"inf"
      // outright, but we want to see them and fail with the precise
      // non-finite diagnostic below.
      std::string vtok;
      entry >> vtok;
      char* end = nullptr;
      v = std::strtod(vtok.c_str(), &end);
      if (vtok.empty() || end != vtok.c_str() + vtok.size()) entry.setstate(std::ios::failbit);
    }
    BLR_CHECK(!entry.fail(),
              "malformed Matrix Market entry" + at_line() + ": '" + line + "'");
    BLR_CHECK(i >= 1 && i <= rows && j >= 1 && j <= cols,
              "Matrix Market index (" + std::to_string(i) + ", " +
                  std::to_string(j) + ") out of range for " +
                  std::to_string(rows) + " x " + std::to_string(cols) +
                  at_line());
    BLR_CHECK(std::isfinite(v),
              "non-finite Matrix Market value" + at_line() + ": '" + line + "'");
    const index_t ii = static_cast<index_t>(i - 1);  // 1-based -> 0-based
    const index_t jj = static_cast<index_t>(j - 1);
    trip.push_back({ii, jj, v});
    if (symmetry == "symmetric" && ii != jj) trip.push_back({jj, ii, v});
  }
  const Symmetry sym = (symmetry == "symmetric") ? Symmetry::SymmetricValues
                                                 : Symmetry::General;
  return CscMatrix::from_triplets(static_cast<index_t>(rows),
                                  static_cast<index_t>(cols), std::move(trip),
                                  sym);
}

void write_matrix_market(const CscMatrix& a, const std::string& path) {
  std::ofstream out(path);
  BLR_CHECK(out.good(), "cannot open file for writing: " + path);
  write_matrix_market(a, out);
}

void write_matrix_market(const CscMatrix& a, std::ostream& out) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.rows() << ' ' << a.cols() << ' ' << a.nnz() << '\n';
  out.precision(17);
  const auto& colptr = a.colptr();
  const auto& rowind = a.rowind();
  const auto& values = a.values();
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t p = colptr[static_cast<std::size_t>(j)];
         p < colptr[static_cast<std::size_t>(j) + 1]; ++p) {
      out << rowind[static_cast<std::size_t>(p)] + 1 << ' ' << j + 1 << ' '
          << values[static_cast<std::size_t>(p)] << '\n';
    }
  }
}

} // namespace blr::sparse
