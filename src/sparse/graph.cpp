#include "sparse/graph.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sparse/csc.hpp"

namespace blr::sparse {

Graph Graph::from_matrix(const CscMatrix& a) {
  BLR_CHECK(a.rows() == a.cols(), "adjacency graph requires a square matrix");
  const index_t n = a.rows();
  // Symmetrize pattern: edge (i,j) if a(i,j) or a(j,i) nonzero, i != j.
  std::vector<std::vector<index_t>> nbr(static_cast<std::size_t>(n));
  const auto& colptr = a.colptr();
  const auto& rowind = a.rowind();
  for (index_t j = 0; j < n; ++j) {
    for (index_t p = colptr[static_cast<std::size_t>(j)];
         p < colptr[static_cast<std::size_t>(j) + 1]; ++p) {
      const index_t i = rowind[static_cast<std::size_t>(p)];
      if (i == j) continue;
      nbr[static_cast<std::size_t>(i)].push_back(j);
      nbr[static_cast<std::size_t>(j)].push_back(i);
    }
  }
  std::vector<index_t> ptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<index_t> adj;
  for (index_t v = 0; v < n; ++v) {
    auto& list = nbr[static_cast<std::size_t>(v)];
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    ptr[static_cast<std::size_t>(v) + 1] = ptr[static_cast<std::size_t>(v)] +
                                           static_cast<index_t>(list.size());
    adj.insert(adj.end(), list.begin(), list.end());
  }
  return Graph(n, std::move(ptr), std::move(adj));
}

Graph Graph::induced(const std::vector<index_t>& vertices) const {
  const index_t k = static_cast<index_t>(vertices.size());
  // global -> local map (-1 = outside).
  std::vector<index_t> local(static_cast<std::size_t>(n_), -1);
  for (index_t i = 0; i < k; ++i) local[static_cast<std::size_t>(vertices[static_cast<std::size_t>(i)])] = i;

  std::vector<index_t> ptr(static_cast<std::size_t>(k) + 1, 0);
  std::vector<index_t> adj;
  for (index_t i = 0; i < k; ++i) {
    const index_t g = vertices[static_cast<std::size_t>(i)];
    for (const index_t* u = neighbors_begin(g); u != neighbors_end(g); ++u) {
      const index_t lu = local[static_cast<std::size_t>(*u)];
      if (lu >= 0) adj.push_back(lu);
    }
    ptr[static_cast<std::size_t>(i) + 1] = static_cast<index_t>(adj.size());
  }
  return Graph(k, std::move(ptr), std::move(adj));
}

std::pair<std::vector<index_t>, index_t> Graph::connected_components() const {
  std::vector<index_t> comp(static_cast<std::size_t>(n_), -1);
  index_t ncomp = 0;
  std::vector<index_t> stack;
  for (index_t s = 0; s < n_; ++s) {
    if (comp[static_cast<std::size_t>(s)] >= 0) continue;
    stack.push_back(s);
    comp[static_cast<std::size_t>(s)] = ncomp;
    while (!stack.empty()) {
      const index_t v = stack.back();
      stack.pop_back();
      for (const index_t* u = neighbors_begin(v); u != neighbors_end(v); ++u) {
        if (comp[static_cast<std::size_t>(*u)] < 0) {
          comp[static_cast<std::size_t>(*u)] = ncomp;
          stack.push_back(*u);
        }
      }
    }
    ++ncomp;
  }
  return {std::move(comp), ncomp};
}

} // namespace blr::sparse
