#include "sparse/generators.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/prng.hpp"

namespace blr::sparse {

namespace {

index_t grid_index(index_t i, index_t j, index_t k, index_t nx, index_t ny) {
  return i + nx * (j + ny * k);
}

} // namespace

CscMatrix laplacian_3d(index_t nx, index_t ny, index_t nz) {
  BLR_CHECK(nx > 0 && ny > 0 && nz > 0, "grid dimensions must be positive");
  const index_t n = nx * ny * nz;
  std::vector<Triplet> t;
  t.reserve(static_cast<std::size_t>(7 * n));
  for (index_t k = 0; k < nz; ++k) {
    for (index_t j = 0; j < ny; ++j) {
      for (index_t i = 0; i < nx; ++i) {
        const index_t v = grid_index(i, j, k, nx, ny);
        t.push_back({v, v, 6.0});
        if (i > 0) t.push_back({v, grid_index(i - 1, j, k, nx, ny), -1.0});
        if (i < nx - 1) t.push_back({v, grid_index(i + 1, j, k, nx, ny), -1.0});
        if (j > 0) t.push_back({v, grid_index(i, j - 1, k, nx, ny), -1.0});
        if (j < ny - 1) t.push_back({v, grid_index(i, j + 1, k, nx, ny), -1.0});
        if (k > 0) t.push_back({v, grid_index(i, j, k - 1, nx, ny), -1.0});
        if (k < nz - 1) t.push_back({v, grid_index(i, j, k + 1, nx, ny), -1.0});
      }
    }
  }
  return CscMatrix::from_triplets(n, n, std::move(t), Symmetry::Spd);
}

CscMatrix laplacian_2d(index_t nx, index_t ny) {
  BLR_CHECK(nx > 0 && ny > 0, "grid dimensions must be positive");
  const index_t n = nx * ny;
  std::vector<Triplet> t;
  t.reserve(static_cast<std::size_t>(5 * n));
  for (index_t j = 0; j < ny; ++j) {
    for (index_t i = 0; i < nx; ++i) {
      const index_t v = i + nx * j;
      t.push_back({v, v, 4.0});
      if (i > 0) t.push_back({v, v - 1, -1.0});
      if (i < nx - 1) t.push_back({v, v + 1, -1.0});
      if (j > 0) t.push_back({v, v - nx, -1.0});
      if (j < ny - 1) t.push_back({v, v + nx, -1.0});
    }
  }
  return CscMatrix::from_triplets(n, n, std::move(t), Symmetry::Spd);
}

CscMatrix convection_diffusion_3d(index_t nx, index_t ny, index_t nz, real_t peclet) {
  BLR_CHECK(nx > 0 && ny > 0 && nz > 0, "grid dimensions must be positive");
  BLR_CHECK(std::abs(peclet) < 1.0, "|peclet| must be < 1 for a stable stencil");
  const index_t n = nx * ny * nz;
  std::vector<Triplet> t;
  t.reserve(static_cast<std::size_t>(7 * n));
  // Central differences: along each axis the west/east couplings are
  // -(1 ± p_axis). Different Peclet per axis makes the flow genuinely 3D.
  const real_t px = peclet;
  const real_t py = 0.5 * peclet;
  const real_t pz = 0.25 * peclet;
  for (index_t k = 0; k < nz; ++k) {
    for (index_t j = 0; j < ny; ++j) {
      for (index_t i = 0; i < nx; ++i) {
        const index_t v = grid_index(i, j, k, nx, ny);
        t.push_back({v, v, 6.0});
        if (i > 0) t.push_back({v, grid_index(i - 1, j, k, nx, ny), -(1.0 + px)});
        if (i < nx - 1) t.push_back({v, grid_index(i + 1, j, k, nx, ny), -(1.0 - px)});
        if (j > 0) t.push_back({v, grid_index(i, j - 1, k, nx, ny), -(1.0 + py)});
        if (j < ny - 1) t.push_back({v, grid_index(i, j + 1, k, nx, ny), -(1.0 - py)});
        if (k > 0) t.push_back({v, grid_index(i, j, k - 1, nx, ny), -(1.0 + pz)});
        if (k < nz - 1) t.push_back({v, grid_index(i, j, k + 1, nx, ny), -(1.0 - pz)});
      }
    }
  }
  return CscMatrix::from_triplets(n, n, std::move(t), Symmetry::General);
}

CscMatrix elasticity_3d(index_t nx, index_t ny, index_t nz, real_t lambda, real_t mu) {
  BLR_CHECK(nx > 0 && ny > 0 && nz > 0, "grid dimensions must be positive");
  BLR_CHECK(mu > 0 && lambda + mu > 0, "Lamé parameters must be positive");
  const index_t nnodes = nx * ny * nz;
  const index_t n = 3 * nnodes;
  std::vector<Triplet> t;
  t.reserve(static_cast<std::size_t>(7 * 9 * nnodes));

  // 3x3 coupling block for an edge along axis d.
  const auto kblock = [&](int d, int a, int b) -> real_t {
    real_t v = (a == b) ? mu : 0.0;
    if (a == d && b == d) v += lambda + mu;
    return v;
  };
  const auto add_edge = [&](index_t u, index_t v, int d) {
    for (int a = 0; a < 3; ++a) {
      for (int b = 0; b < 3; ++b) {
        const real_t kab = kblock(d, a, b);
        if (kab == 0.0) continue;
        t.push_back({3 * u + a, 3 * v + b, -kab});
        t.push_back({3 * v + a, 3 * u + b, -kab});
        t.push_back({3 * u + a, 3 * u + b, kab});
        t.push_back({3 * v + a, 3 * v + b, kab});
      }
    }
  };

  for (index_t k = 0; k < nz; ++k) {
    for (index_t j = 0; j < ny; ++j) {
      for (index_t i = 0; i < nx; ++i) {
        const index_t v = grid_index(i, j, k, nx, ny);
        if (i < nx - 1) add_edge(v, grid_index(i + 1, j, k, nx, ny), 0);
        if (j < ny - 1) add_edge(v, grid_index(i, j + 1, k, nx, ny), 1);
        if (k < nz - 1) add_edge(v, grid_index(i, j, k + 1, nx, ny), 2);
        // Small mass regularization keeps the operator SPD.
        for (int a = 0; a < 3; ++a) t.push_back({3 * v + a, 3 * v + a, 0.01 * mu});
      }
    }
  }
  return CscMatrix::from_triplets(n, n, std::move(t), Symmetry::Spd);
}

CscMatrix heterogeneous_poisson_3d(index_t nx, index_t ny, index_t nz,
                                   real_t contrast, std::uint64_t seed) {
  BLR_CHECK(nx > 0 && ny > 0 && nz > 0, "grid dimensions must be positive");
  BLR_CHECK(contrast >= 0, "contrast must be non-negative");
  const index_t n = nx * ny * nz;
  Prng rng(seed);
  // Log-uniform coefficient per vertex; edge conductance = harmonic mean.
  std::vector<real_t> coef(static_cast<std::size_t>(n));
  for (auto& c : coef) c = std::pow(10.0, contrast * (rng.uniform() - 0.5));

  std::vector<Triplet> t;
  t.reserve(static_cast<std::size_t>(7 * n));
  const auto add_edge = [&](index_t u, index_t v) {
    const real_t cu = coef[static_cast<std::size_t>(u)];
    const real_t cv = coef[static_cast<std::size_t>(v)];
    const real_t w = 2.0 * cu * cv / (cu + cv);
    t.push_back({u, v, -w});
    t.push_back({v, u, -w});
    t.push_back({u, u, w});
    t.push_back({v, v, w});
  };
  for (index_t k = 0; k < nz; ++k) {
    for (index_t j = 0; j < ny; ++j) {
      for (index_t i = 0; i < nx; ++i) {
        const index_t v = grid_index(i, j, k, nx, ny);
        if (i < nx - 1) add_edge(v, grid_index(i + 1, j, k, nx, ny));
        if (j < ny - 1) add_edge(v, grid_index(i, j + 1, k, nx, ny));
        if (k < nz - 1) add_edge(v, grid_index(i, j, k + 1, nx, ny));
        // Dirichlet-like shift keeps the matrix nonsingular.
        t.push_back({v, v, 1e-2 * coef[static_cast<std::size_t>(v)]});
      }
    }
  }
  return CscMatrix::from_triplets(n, n, std::move(t), Symmetry::Spd);
}

std::vector<TestMatrix> paper_test_set(index_t n) {
  std::vector<TestMatrix> set;
  set.reserve(6);
  set.push_back({"lap" + std::to_string(n), laplacian_3d(n, n, n), true});
  set.push_back({"atmosmodj", convection_diffusion_3d(n, n, n, 0.5), false});
  // audi is ~944k dofs with 3 dofs/node -> scale the grid down accordingly.
  const index_t ne = std::max<index_t>(2, static_cast<index_t>(std::llround(
                         std::cbrt(static_cast<double>(n) * n * n / 3.0))));
  set.push_back({"audi", elasticity_3d(ne, ne, ne, 10.0, 1.0), true});
  set.push_back({"Geo1438", heterogeneous_poisson_3d(n, n, n, 6.0, 42), true});
  set.push_back({"Hook", elasticity_3d(ne, ne, ne, 1.0, 1.0), true});
  set.push_back({"Serena", heterogeneous_poisson_3d(n, n, n, 3.0, 7), true});
  return set;
}

} // namespace blr::sparse
