#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csc.hpp"

namespace blr::sparse {

/// Read a Matrix Market file (coordinate, real/integer/pattern,
/// general/symmetric). Symmetric storage is expanded to both triangles.
CscMatrix read_matrix_market(const std::string& path);
CscMatrix read_matrix_market(std::istream& in);

/// Write in coordinate/real/general format.
void write_matrix_market(const CscMatrix& a, const std::string& path);
void write_matrix_market(const CscMatrix& a, std::ostream& out);

} // namespace blr::sparse
