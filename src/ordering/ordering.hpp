#pragma once

#include <vector>

#include "common/types.hpp"
#include "sparse/graph.hpp"

namespace blr::ordering {

/// Options controlling the nested-dissection ordering. Defaults mirror the
/// Scotch configuration the paper uses (cmin = minimal size of non-separated
/// subgraphs; those become supernodes directly).
struct NdOptions {
  index_t cmin = 32;           ///< stop dissecting below this many vertices
  double balance_frac = 0.25;  ///< each part must hold >= this fraction of non-separator vertices
  int bfs_trials = 4;          ///< BFS sources tried per separator search
  int fm_passes = 4;           ///< Fiduccia-Mattheyses-style separator refinement passes
  bool reorder_separators = true;  ///< BFS-reorder separator vertices (blocking optimization of [21])
};

/// Result of the ordering phase: a fill-reducing permutation plus the
/// supernodal partition induced by the separator tree.
///
/// perm[new] = old and iperm[old] = new. Supernode s covers the contiguous
/// *new*-index range [ranges[s], ranges[s+1]); separators come after the
/// subdomains they split, so the partition is already in elimination order.
struct Ordering {
  std::vector<index_t> perm;
  std::vector<index_t> iperm;
  std::vector<index_t> ranges;  ///< size = #supernodes + 1, ranges[0] = 0

  [[nodiscard]] index_t num_supernodes() const {
    return static_cast<index_t>(ranges.size()) - 1;
  }
  [[nodiscard]] index_t supernode_size(index_t s) const {
    return ranges[static_cast<std::size_t>(s) + 1] - ranges[static_cast<std::size_t>(s)];
  }
};

/// Nested dissection of the adjacency graph.
Ordering nested_dissection(const sparse::Graph& g, const NdOptions& opts = {});

/// Identity ordering with a single-supernode-per-chunk partition — baseline
/// and debugging aid (terrible fill; tests only).
Ordering natural_order(index_t n, index_t chunk);

/// A vertex separator split of a graph: vertex sets A, B, S with no edge
/// between A and B. Exposed for testing.
struct Separator {
  std::vector<index_t> a;
  std::vector<index_t> b;
  std::vector<index_t> s;
};

/// Level-set based vertex separator of a *connected* graph (local indices).
Separator find_separator(const sparse::Graph& g, const NdOptions& opts);

} // namespace blr::ordering
