#include "ordering/ordering.hpp"

#include <algorithm>
#include <functional>
#include <numeric>

#include "common/error.hpp"

namespace blr::ordering {

namespace {

/// BFS level of every vertex from `start`; returns (levels, farthest vertex,
/// number of levels). Unreached vertices keep level -1.
struct BfsResult {
  std::vector<index_t> level;
  index_t farthest;
  index_t num_levels;
};

BfsResult bfs_levels(const sparse::Graph& g, index_t start) {
  BfsResult r;
  r.level.assign(static_cast<std::size_t>(g.num_vertices()), -1);
  std::vector<index_t> frontier{start};
  r.level[static_cast<std::size_t>(start)] = 0;
  r.farthest = start;
  index_t lvl = 0;
  while (!frontier.empty()) {
    std::vector<index_t> next;
    for (const index_t v : frontier) {
      for (const index_t* u = g.neighbors_begin(v); u != g.neighbors_end(v); ++u) {
        if (r.level[static_cast<std::size_t>(*u)] < 0) {
          r.level[static_cast<std::size_t>(*u)] = lvl + 1;
          next.push_back(*u);
        }
      }
    }
    if (!next.empty()) r.farthest = next.back();
    frontier = std::move(next);
    ++lvl;
  }
  r.num_levels = lvl;
  return r;
}

/// BFS visit order over the whole (possibly disconnected) graph; gives
/// locality-preserving intra-supernode orderings.
std::vector<index_t> bfs_order(const sparse::Graph& g) {
  const index_t n = g.num_vertices();
  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  for (index_t s = 0; s < n; ++s) {
    if (seen[static_cast<std::size_t>(s)]) continue;
    seen[static_cast<std::size_t>(s)] = 1;
    std::size_t head = order.size();
    order.push_back(s);
    while (head < order.size()) {
      const index_t v = order[head++];
      for (const index_t* u = g.neighbors_begin(v); u != g.neighbors_end(v); ++u) {
        if (!seen[static_cast<std::size_t>(*u)]) {
          seen[static_cast<std::size_t>(*u)] = 1;
          order.push_back(*u);
        }
      }
    }
  }
  return order;
}

} // namespace

Separator find_separator(const sparse::Graph& g, const NdOptions& opts) {
  const index_t n = g.num_vertices();
  Separator best;
  best.s.resize(static_cast<std::size_t>(n));  // worst case: everything separator
  std::iota(best.s.begin(), best.s.end(), index_t{0});
  index_t best_cost = n + 1;
  double best_balance = 0.0;

  // Candidate BFS sources: 0, then pseudo-peripheral chases.
  std::vector<index_t> sources;
  index_t src = 0;
  for (int trial = 0; trial < opts.bfs_trials; ++trial) {
    if (std::find(sources.begin(), sources.end(), src) != sources.end()) break;
    sources.push_back(src);
    src = bfs_levels(g, src).farthest;
  }

  for (const index_t s0 : sources) {
    const BfsResult bfs = bfs_levels(g, s0);
    if (bfs.num_levels < 3) continue;
    // Count vertices per level.
    std::vector<index_t> count(static_cast<std::size_t>(bfs.num_levels), 0);
    // Unreached vertices (disconnected graph) keep level -1; they fall into
    // part A below (-1 < m for every candidate level), so skip them here.
    for (const index_t l : bfs.level) {
      if (l >= 0) ++count[static_cast<std::size_t>(l)];
    }
    index_t below = count[0];
    for (index_t m = 1; m + 1 < bfs.num_levels; ++m) {
      const index_t ns = count[static_cast<std::size_t>(m)];
      const index_t na = below;
      const index_t nb = n - na - ns;
      below += ns;
      if (na == 0 || nb == 0) continue;
      const double balance =
          static_cast<double>(std::min(na, nb)) / static_cast<double>(na + nb);
      const bool feasible = balance >= opts.balance_frac;
      // Prefer feasible splits with the smallest separator; among infeasible
      // candidates keep the most balanced as a fallback.
      if (feasible) {
        if (ns < best_cost || (ns == best_cost && balance > best_balance)) {
          best_cost = ns;
          best_balance = balance;
          best.a.clear();
          best.b.clear();
          best.s.clear();
          for (index_t v = 0; v < n; ++v) {
            const index_t l = bfs.level[static_cast<std::size_t>(v)];
            if (l < m) best.a.push_back(v);
            else if (l == m) best.s.push_back(v);
            else best.b.push_back(v);
          }
        }
      } else if (best_cost > n && balance > best_balance) {
        best_balance = balance;
        best.a.clear();
        best.b.clear();
        best.s.clear();
        for (index_t v = 0; v < n; ++v) {
          const index_t l = bfs.level[static_cast<std::size_t>(v)];
          if (l < m) best.a.push_back(v);
          else if (l == m) best.s.push_back(v);
          else best.b.push_back(v);
        }
      }
    }
  }

  if (best.a.empty() && best.b.empty()) return best;  // no split found

  // Shrink the separator: a separator vertex with no neighbor on one side
  // can move to the other side without reconnecting A and B.
  std::vector<char> side(static_cast<std::size_t>(n), 2);  // 0=A, 1=B, 2=S
  for (const index_t v : best.a) side[static_cast<std::size_t>(v)] = 0;
  for (const index_t v : best.b) side[static_cast<std::size_t>(v)] = 1;
  bool changed = true;
  while (changed) {
    changed = false;
    for (index_t v = 0; v < n; ++v) {
      if (side[static_cast<std::size_t>(v)] != 2) continue;
      bool touches_a = false;
      bool touches_b = false;
      for (const index_t* u = g.neighbors_begin(v); u != g.neighbors_end(v); ++u) {
        const char su = side[static_cast<std::size_t>(*u)];
        touches_a |= (su == 0);
        touches_b |= (su == 1);
      }
      if (!touches_a && !touches_b) {
        // Isolated from both parts: put it on the smaller side.
        side[static_cast<std::size_t>(v)] = (best.a.size() <= best.b.size()) ? 0 : 1;
        changed = true;
      } else if (!touches_b) {
        side[static_cast<std::size_t>(v)] = 0;
        changed = true;
      } else if (!touches_a) {
        side[static_cast<std::size_t>(v)] = 1;
        changed = true;
      }
    }
  }
  // FM-style refinement: moving a separator vertex v into part P removes it
  // from S but pulls v's neighbors from the *other* part into S, so the
  // separator shrinks whenever v has at most one such neighbor. Greedy
  // positive-gain passes with a balance guard.
  for (int pass = 0; pass < opts.fm_passes; ++pass) {
    bool improved = false;
    index_t na = 0, nb = 0;
    for (index_t v = 0; v < n; ++v) {
      na += side[static_cast<std::size_t>(v)] == 0;
      nb += side[static_cast<std::size_t>(v)] == 1;
    }
    for (index_t v = 0; v < n; ++v) {
      if (side[static_cast<std::size_t>(v)] != 2) continue;
      index_t in_a = 0, in_b = 0;
      for (const index_t* u = g.neighbors_begin(v); u != g.neighbors_end(v); ++u) {
        in_a += side[static_cast<std::size_t>(*u)] == 0;
        in_b += side[static_cast<std::size_t>(*u)] == 1;
      }
      const index_t gain_to_a = 1 - in_b;  // separator-size reduction
      const index_t gain_to_b = 1 - in_a;
      // Pick the better strictly-improving move; prefer growing the smaller
      // part on ties to keep the recursion balanced.
      int dest = -1;
      if (gain_to_a > 0 && (gain_to_a > gain_to_b || (gain_to_a == gain_to_b && na <= nb))) {
        dest = 0;
      } else if (gain_to_b > 0) {
        dest = 1;
      }
      if (dest < 0) continue;
      side[static_cast<std::size_t>(v)] = static_cast<char>(dest);
      (dest == 0 ? na : nb) += 1;
      // Opposite-side neighbors join the separator.
      for (const index_t* u = g.neighbors_begin(v); u != g.neighbors_end(v); ++u) {
        if (side[static_cast<std::size_t>(*u)] == (dest == 0 ? 1 : 0)) {
          side[static_cast<std::size_t>(*u)] = 2;
          (dest == 0 ? nb : na) -= 1;
        }
      }
      improved = true;
    }
    if (!improved) break;
  }

  // Rebuild the three sets from the final side assignment.
  best.a.clear();
  best.b.clear();
  best.s.clear();
  for (index_t v = 0; v < n; ++v) {
    switch (side[static_cast<std::size_t>(v)]) {
      case 0: best.a.push_back(v); break;
      case 1: best.b.push_back(v); break;
      default: best.s.push_back(v); break;
    }
  }
  // Refinement can empty a side on tiny graphs; callers treat that as
  // "no usable separator".
  return best;
}

Ordering nested_dissection(const sparse::Graph& g, const NdOptions& opts) {
  BLR_CHECK(opts.cmin >= 1, "cmin must be >= 1");
  const index_t n = g.num_vertices();
  Ordering out;
  out.perm.reserve(static_cast<std::size_t>(n));
  out.ranges.push_back(0);

  // Emits one supernode holding `vertices` (global ids), ordered for locality.
  const auto emit_supernode = [&](const std::vector<index_t>& vertices, bool reorder) {
    if (vertices.empty()) return;
    if (reorder && vertices.size() > 2) {
      const sparse::Graph sub = g.induced(vertices);
      for (const index_t local : bfs_order(sub)) {
        out.perm.push_back(vertices[static_cast<std::size_t>(local)]);
      }
    } else {
      out.perm.insert(out.perm.end(), vertices.begin(), vertices.end());
    }
    out.ranges.push_back(static_cast<index_t>(out.perm.size()));
  };

  const std::function<void(const std::vector<index_t>&)> dissect =
      [&](const std::vector<index_t>& vertices) {
        const index_t k = static_cast<index_t>(vertices.size());
        if (k == 0) return;
        if (k <= opts.cmin) {
          emit_supernode(vertices, true);
          return;
        }
        const sparse::Graph sub = g.induced(vertices);
        const auto [comp, ncomp] = sub.connected_components();
        if (ncomp > 1) {
          // Dissect each connected component independently.
          std::vector<std::vector<index_t>> groups(static_cast<std::size_t>(ncomp));
          for (index_t v = 0; v < k; ++v) {
            groups[static_cast<std::size_t>(comp[static_cast<std::size_t>(v)])].push_back(
                vertices[static_cast<std::size_t>(v)]);
          }
          for (const auto& grp : groups) dissect(grp);
          return;
        }
        const Separator sep = find_separator(sub, opts);
        if (sep.a.empty() || sep.b.empty()) {
          emit_supernode(vertices, true);  // dense-ish subgraph, keep whole
          return;
        }
        const auto to_global = [&](const std::vector<index_t>& local) {
          std::vector<index_t> glob(local.size());
          for (std::size_t i = 0; i < local.size(); ++i)
            glob[i] = vertices[static_cast<std::size_t>(local[i])];
          return glob;
        };
        dissect(to_global(sep.a));
        dissect(to_global(sep.b));
        emit_supernode(to_global(sep.s), opts.reorder_separators);
      };

  std::vector<index_t> all(static_cast<std::size_t>(n));
  std::iota(all.begin(), all.end(), index_t{0});
  dissect(all);

  BLR_CHECK(static_cast<index_t>(out.perm.size()) == n, "ordering lost vertices");
  out.iperm.resize(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    out.iperm[static_cast<std::size_t>(out.perm[static_cast<std::size_t>(i)])] = i;
  return out;
}

Ordering natural_order(index_t n, index_t chunk) {
  BLR_CHECK(chunk >= 1, "chunk must be >= 1");
  Ordering out;
  out.perm.resize(static_cast<std::size_t>(n));
  std::iota(out.perm.begin(), out.perm.end(), index_t{0});
  out.iperm = out.perm;
  out.ranges.push_back(0);
  for (index_t r = chunk; r < n; r += chunk) out.ranges.push_back(r);
  out.ranges.push_back(n);
  return out;
}

} // namespace blr::ordering
