#pragma once

namespace blr::la {

// ---- Kernel backend layer (DESIGN.md §14) --------------------------------
//
// The gemm/trsm/syrk-shaped entry points in la:: route through a per-backend
// function-pointer table selected at runtime. Two backends exist today:
//
//   Reference — the portable loop nests (gemm_unpacked and the scalar
//               substitution/update loops). Simplest possible arithmetic,
//               compiled with baseline flags; the correctness anchor every
//               other backend is memcmp'd against.
//   Native    — the BLIS-style packed, register-blocked engine. Its
//               microkernel is compiled once per ISA tier (portable /
//               AVX2 / AVX-512) in dedicated translation units with
//               per-file arch flags, and the best tier the CPU actually
//               supports is picked by CPUID at runtime — one portable
//               binary carries all tiers (no -march=native whole-binary
//               gamble, no illegal-instruction risk on deployment).
//
// Determinism contract: every backend (and every Native ISA tier) produces
// bit-identical results for the same call. The loop nests, the packed
// microkernel and the SIMD translation units share one canonical
// per-element accumulation order, and the ISA TUs are built with
// -ffp-contract=off so vector lanes round exactly like the scalar code.
// This is what lets the engine A/B backends with memcmp, not tolerances.

/// A concrete kernel backend. Future vendor/device backends extend this
/// enum and register their kernel table alongside the built-in two.
enum class Backend : int { Reference = 0, Native = 1, kCount };

/// User-facing backend request (SolverOptions::backend, BLR_BACKEND env).
enum class BackendChoice : int { Auto = 0, Reference, Native };

/// ISA tier of the Native backend's packed microkernel.
enum class NativeIsa : int { Portable = 0, Avx2, Avx512, kCount };

const char* backend_name(Backend b);
const char* backend_choice_name(BackendChoice c);
const char* native_isa_name(NativeIsa isa);

/// The backend the la:: entry points currently dispatch to. Process-global
/// (kernels run on pool threads); defaults to resolve_backend(Auto) on
/// first use.
Backend current_backend();

/// Select the backend for subsequent la:: calls. Process-global: concurrent
/// factorizations share one selection, so set it once per run (the Solver
/// does this at the top of factorize()).
void set_backend(Backend b);

/// CPUID-based pick: the Native backend with the best compiled-in ISA tier
/// this CPU supports (falling back to the portable packed tier, which every
/// build carries — Native is always available).
Backend detect_best_backend();

/// Resolve a user request to a concrete backend. Order of precedence:
/// the BLR_BACKEND environment variable ("auto" | "reference" | "native",
/// case-insensitive) when set, then `choice`; Auto resolves through
/// detect_best_backend(). Throws blr::Error on an unrecognized env value.
Backend resolve_backend(BackendChoice choice);

/// The ISA tier the Native backend dispatches to on this machine: the best
/// tier that is compiled in, supported by CPUID, and not clamped away by
/// the BLR_NATIVE_ISA environment variable ("auto" | "portable" | "avx2" |
/// "avx512"). Cached after the first call; see redetect_backend().
NativeIsa native_isa();

/// True when the tier's translation unit was compiled into this binary
/// (Portable always is; AVX2/AVX-512 depend on BLR_NATIVE and compiler
/// support at build time).
bool native_isa_compiled(NativeIsa isa);

/// True when the tier is compiled in, the CPU supports it, and the
/// BLR_NATIVE_ISA clamp allows it.
bool native_isa_supported(NativeIsa isa);

/// Drop the cached detection results and re-read CPUID and the environment
/// (tests use this to exercise the fallback paths via setenv).
void redetect_backend();

} // namespace blr::la
