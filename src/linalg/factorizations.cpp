#include "linalg/factorizations.hpp"

#include <cmath>

namespace blr::la {

template <typename T>
index_t getrf(MatView<T> a, std::vector<index_t>& ipiv) {
  const index_t m = a.rows;
  const index_t n = a.cols;
  const index_t k = std::min(m, n);
  ipiv.assign(static_cast<std::size_t>(k), 0);
  index_t info = 0;

  for (index_t j = 0; j < k; ++j) {
    // Pivot search in column j, rows j..m.
    index_t piv = j;
    T pmax = std::abs(a(j, j));
    for (index_t i = j + 1; i < m; ++i) {
      const T v = std::abs(a(i, j));
      if (v > pmax) {
        pmax = v;
        piv = i;
      }
    }
    ipiv[static_cast<std::size_t>(j)] = piv;
    if (pmax == T(0)) {
      if (info == 0) info = j + 1;
      continue;  // LAPACK semantics: record and proceed
    }
    if (piv != j) {
      for (index_t c = 0; c < n; ++c) std::swap(a(j, c), a(piv, c));
    }
    // Scale multipliers and rank-1 update of the trailing submatrix.
    const T inv_pivot = T(1) / a(j, j);
    scal(m - j - 1, inv_pivot, a.col(j) + j + 1);
    for (index_t c = j + 1; c < n; ++c) {
      const T ajc = a(j, c);
      if (ajc != T(0)) axpy(m - j - 1, -ajc, a.col(j) + j + 1, a.col(c) + j + 1);
    }
  }
  return info;
}

template <typename T>
void getrf_static(MatView<T> a, std::vector<index_t>& ipiv, T threshold,
                  index_t& replaced) {
  const index_t m = a.rows;
  const index_t n = a.cols;
  const index_t k = std::min(m, n);
  ipiv.assign(static_cast<std::size_t>(k), 0);

  for (index_t j = 0; j < k; ++j) {
    index_t piv = j;
    T pmax = std::abs(a(j, j));
    for (index_t i = j + 1; i < m; ++i) {
      const T v = std::abs(a(i, j));
      if (v > pmax) {
        pmax = v;
        piv = i;
      }
    }
    ipiv[static_cast<std::size_t>(j)] = piv;
    if (piv != j) {
      for (index_t c = 0; c < n; ++c) std::swap(a(j, c), a(piv, c));
    }
    if (pmax < threshold) {
      // Static pivoting: perturb instead of failing; iterative refinement
      // absorbs the O(threshold) backward-error contribution.
      a(j, j) = (a(j, j) < T(0)) ? -threshold : threshold;
      ++replaced;
    }
    const T inv_pivot = T(1) / a(j, j);
    scal(m - j - 1, inv_pivot, a.col(j) + j + 1);
    for (index_t c = j + 1; c < n; ++c) {
      const T ajc = a(j, c);
      if (ajc != T(0)) axpy(m - j - 1, -ajc, a.col(j) + j + 1, a.col(c) + j + 1);
    }
  }
}

template <typename T>
void laswp(MatView<T> b, const std::vector<index_t>& ipiv) {
  for (std::size_t j = 0; j < ipiv.size(); ++j) {
    const auto i = static_cast<index_t>(j);
    const index_t p = ipiv[j];
    if (p != i) {
      for (index_t c = 0; c < b.cols; ++c) std::swap(b(i, c), b(p, c));
    }
  }
}

template <typename T>
index_t potrf(MatView<T> a) {
  const index_t n = a.rows;
  assert(a.cols == n);
  for (index_t j = 0; j < n; ++j) {
    T s = a(j, j);
    for (index_t p = 0; p < j; ++p) s -= a(j, p) * a(j, p);
    if (s <= T(0) || !std::isfinite(static_cast<double>(s))) return j + 1;
    const T ljj = std::sqrt(s);
    a(j, j) = ljj;
    // Column update: a(j+1:n, j) = (a(j+1:n, j) - L(j+1:n, 0:j) * L(j, 0:j)ᵗ) / ljj
    for (index_t p = 0; p < j; ++p) {
      const T ljp = a(j, p);
      if (ljp != T(0)) axpy(n - j - 1, -ljp, a.col(p) + j + 1, a.col(j) + j + 1);
    }
    scal(n - j - 1, T(1) / ljj, a.col(j) + j + 1);
  }
  return 0;
}

template <typename T>
void getrs(ConstView<T> lu, const std::vector<index_t>& ipiv, MatView<T> b) {
  laswp(b, ipiv);
  trsm(Side::Left, Uplo::Lower, Trans::No, Diag::Unit, T(1), lu, b);
  trsm(Side::Left, Uplo::Upper, Trans::No, Diag::NonUnit, T(1), lu, b);
}

template <typename T>
void potrs(ConstView<T> l, MatView<T> b) {
  trsm(Side::Left, Uplo::Lower, Trans::No, Diag::NonUnit, T(1), l, b);
  trsm(Side::Left, Uplo::Lower, Trans::Yes, Diag::NonUnit, T(1), l, b);
}

template <typename T>
void lu_inverse(ConstView<T> lu, const std::vector<index_t>& ipiv, MatView<T> inv) {
  assert(inv.rows == lu.rows && inv.cols == lu.cols);
  set_identity(inv);
  getrs(lu, ipiv, inv);
}

#define BLR_INSTANTIATE_FACT(T)                                                  \
  template index_t getrf<T>(MatView<T>, std::vector<index_t>&);                  \
  template void getrf_static<T>(MatView<T>, std::vector<index_t>&, T, index_t&); \
  template void laswp<T>(MatView<T>, const std::vector<index_t>&);               \
  template index_t potrf<T>(MatView<T>);                                         \
  template void getrs<T>(ConstView<T>, const std::vector<index_t>&, MatView<T>); \
  template void potrs<T>(ConstView<T>, MatView<T>);                              \
  template void lu_inverse<T>(ConstView<T>, const std::vector<index_t>&, MatView<T>);

BLR_INSTANTIATE_FACT(float)
BLR_INSTANTIATE_FACT(double)

#undef BLR_INSTANTIATE_FACT

} // namespace blr::la
