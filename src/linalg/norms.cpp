#include "linalg/norms.hpp"

#include <cmath>

#include "linalg/blas.hpp"

namespace blr::la {

template <typename T>
T norm_fro(ConstView<T> a) {
  // Scaled accumulation to avoid overflow on large well-conditioned blocks
  // is unnecessary at the magnitudes this solver handles; plain sum suffices.
  T s = T(0);
  for (index_t j = 0; j < a.cols; ++j) s += nrm2_sq(a.rows, a.col(j));
  return std::sqrt(s);
}

template <typename T>
T norm_max(ConstView<T> a) {
  T m = T(0);
  for (index_t j = 0; j < a.cols; ++j) {
    const T* cj = a.col(j);
    for (index_t i = 0; i < a.rows; ++i) m = std::max(m, std::abs(cj[i]));
  }
  return m;
}

template <typename T>
T norm_one(ConstView<T> a) {
  T m = T(0);
  for (index_t j = 0; j < a.cols; ++j) {
    T s = T(0);
    const T* cj = a.col(j);
    for (index_t i = 0; i < a.rows; ++i) s += std::abs(cj[i]);
    m = std::max(m, s);
  }
  return m;
}

template <typename T>
T diff_fro(ConstView<T> a, ConstView<T> b) {
  assert(a.rows == b.rows && a.cols == b.cols);
  T s = T(0);
  for (index_t j = 0; j < a.cols; ++j) {
    const T* aj = a.col(j);
    const T* bj = b.col(j);
    for (index_t i = 0; i < a.rows; ++i) {
      const T d = aj[i] - bj[i];
      s += d * d;
    }
  }
  return std::sqrt(s);
}

#define BLR_INSTANTIATE_NORMS(T)            \
  template T norm_fro<T>(ConstView<T>);     \
  template T norm_max<T>(ConstView<T>);     \
  template T norm_one<T>(ConstView<T>);     \
  template T diff_fro<T>(ConstView<T>, ConstView<T>);

BLR_INSTANTIATE_NORMS(float)
BLR_INSTANTIATE_NORMS(double)

#undef BLR_INSTANTIATE_NORMS

} // namespace blr::la
