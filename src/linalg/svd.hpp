#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace blr::la {

/// Thin singular value decomposition A = U · diag(sigma) · Vᵗ computed with
/// the one-sided Jacobi method (robust, no bidiagonalization needed).
///
/// On exit, with k = min(m, n):
///   u     : m x k, orthonormal columns
///   sigma : k singular values, non-increasing
///   v     : n x k, orthonormal columns
template <typename T>
void svd(ConstView<T> a, Matrix<T>& u, std::vector<T>& sigma, Matrix<T>& v);

/// Singular values only (same algorithm, skips U/V assembly where possible).
template <typename T>
std::vector<T> singular_values(ConstView<T> a);

} // namespace blr::la
