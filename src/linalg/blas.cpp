#include "linalg/blas.hpp"

#include <algorithm>

namespace blr::la {

namespace {

/// Scale C by beta (handles beta == 0 without reading C).
template <typename T>
void scale_matrix(T beta, MatView<T> c) {
  if (beta == T(1)) return;
  if (beta == T(0)) {
    fill(c, T(0));
    return;
  }
  for (index_t j = 0; j < c.cols; ++j) scal(c.rows, beta, c.col(j));
}

// C += alpha * A * B, cache-blocked over k.
template <typename T>
void gemm_nn(T alpha, ConstView<T> a, ConstView<T> b, MatView<T> c) {
  constexpr index_t kb = 256;
  for (index_t k0 = 0; k0 < a.cols; k0 += kb) {
    const index_t kend = std::min(k0 + kb, a.cols);
    for (index_t j = 0; j < c.cols; ++j) {
      T* cj = c.col(j);
      for (index_t k = k0; k < kend; ++k) {
        const T bkj = alpha * b(k, j);
        if (bkj == T(0)) continue;
        axpy(c.rows, bkj, a.col(k), cj);
      }
    }
  }
}

// C += alpha * Aᵗ * B (dot-product formulation; A, B columns contiguous).
template <typename T>
void gemm_tn(T alpha, ConstView<T> a, ConstView<T> b, MatView<T> c) {
  for (index_t j = 0; j < c.cols; ++j) {
    const T* bj = b.col(j);
    for (index_t i = 0; i < c.rows; ++i) {
      c(i, j) += alpha * dot(a.rows, a.col(i), bj);
    }
  }
}

// C += alpha * A * Bᵗ.
template <typename T>
void gemm_nt(T alpha, ConstView<T> a, ConstView<T> b, MatView<T> c) {
  for (index_t j = 0; j < c.cols; ++j) {
    T* cj = c.col(j);
    for (index_t k = 0; k < a.cols; ++k) {
      const T bjk = alpha * b(j, k);
      if (bjk == T(0)) continue;
      axpy(c.rows, bjk, a.col(k), cj);
    }
  }
}

// C += alpha * Aᵗ * Bᵗ.
template <typename T>
void gemm_tt(T alpha, ConstView<T> a, ConstView<T> b, MatView<T> c) {
  for (index_t j = 0; j < c.cols; ++j) {
    for (index_t i = 0; i < c.rows; ++i) {
      T s = T(0);
      const T* ai = a.col(i);  // column i of A = row i of Aᵗ
      for (index_t k = 0; k < a.rows; ++k) s += ai[k] * b(j, k);
      c(i, j) += alpha * s;
    }
  }
}

} // namespace

template <typename T>
void gemm(Trans trans_a, Trans trans_b, T alpha, ConstView<T> a, ConstView<T> b,
          T beta, MatView<T> c) {
  const index_t opa_rows = (trans_a == Trans::No) ? a.rows : a.cols;
  const index_t opa_cols = (trans_a == Trans::No) ? a.cols : a.rows;
  const index_t opb_rows = (trans_b == Trans::No) ? b.rows : b.cols;
  const index_t opb_cols = (trans_b == Trans::No) ? b.cols : b.rows;
  assert(opa_rows == c.rows && opb_cols == c.cols && opa_cols == opb_rows);
  (void)opa_rows;
  (void)opb_cols;
  (void)opb_rows;

  scale_matrix(beta, c);
  if (alpha == T(0) || opa_cols == 0 || c.empty()) return;

  if (trans_a == Trans::No && trans_b == Trans::No) gemm_nn(alpha, a, b, c);
  else if (trans_a == Trans::Yes && trans_b == Trans::No) gemm_tn(alpha, a, b, c);
  else if (trans_a == Trans::No && trans_b == Trans::Yes) gemm_nt(alpha, a, b, c);
  else gemm_tt(alpha, a, b, c);
}

template <typename T>
void trsm(Side side, Uplo uplo, Trans trans, Diag diag, T alpha, ConstView<T> a,
          MatView<T> b) {
  const index_t m = b.rows;
  const index_t n = b.cols;
  if (side == Side::Left) assert(a.rows == m && a.cols == m);
  else assert(a.rows == n && a.cols == n);

  scale_matrix(alpha, b);
  if (b.empty()) return;
  const bool unit = (diag == Diag::Unit);

  if (side == Side::Left) {
    if ((uplo == Uplo::Lower && trans == Trans::No) ||
        (uplo == Uplo::Upper && trans == Trans::Yes)) {
      // Forward substitution per column of B.
      for (index_t j = 0; j < n; ++j) {
        T* bj = b.col(j);
        if (uplo == Uplo::Lower) {
          for (index_t k = 0; k < m; ++k) {
            if (!unit) bj[k] /= a(k, k);
            const T bk = bj[k];
            if (bk != T(0)) axpy(m - k - 1, -bk, a.col(k) + k + 1, bj + k + 1);
          }
        } else {  // Upper, Trans: Uᵗ is lower; Uᵗ(k, 0:k) = U(0:k, k)
          for (index_t k = 0; k < m; ++k) {
            bj[k] -= dot(k, a.col(k), bj);
            if (!unit) bj[k] /= a(k, k);
          }
        }
      }
    } else {
      // Backward substitution per column of B.
      for (index_t j = 0; j < n; ++j) {
        T* bj = b.col(j);
        if (uplo == Uplo::Upper) {  // Upper, NoTrans
          for (index_t k = m - 1; k >= 0; --k) {
            if (!unit) bj[k] /= a(k, k);
            const T bk = bj[k];
            if (bk != T(0)) axpy(k, -bk, a.col(k), bj);
          }
        } else {  // Lower, Trans: Lᵗ upper; row k of Lᵗ beyond diag = L(k+1:m, k)
          for (index_t k = m - 1; k >= 0; --k) {
            bj[k] -= dot(m - k - 1, a.col(k) + k + 1, bj + k + 1);
            if (!unit) bj[k] /= a(k, k);
          }
        }
      }
    }
  } else {  // Side::Right — X * op(A) = B
    if ((uplo == Uplo::Upper && trans == Trans::No) ||
        (uplo == Uplo::Lower && trans == Trans::Yes)) {
      // Forward over columns of B.
      for (index_t j = 0; j < n; ++j) {
        T* bj = b.col(j);
        for (index_t k = 0; k < j; ++k) {
          const T akj = (trans == Trans::No) ? a(k, j) : a(j, k);
          if (akj != T(0)) axpy(m, -akj, b.col(k), bj);
        }
        if (!unit) scal(m, T(1) / a(j, j), bj);
      }
    } else {
      // Backward over columns of B.
      for (index_t j = n - 1; j >= 0; --j) {
        T* bj = b.col(j);
        for (index_t k = j + 1; k < n; ++k) {
          const T akj = (trans == Trans::No) ? a(k, j) : a(j, k);
          if (akj != T(0)) axpy(m, -akj, b.col(k), bj);
        }
        if (!unit) scal(m, T(1) / a(j, j), bj);
      }
    }
  }
}

template <typename T>
void syrk(Uplo uplo, Trans trans, T alpha, ConstView<T> a, T beta, MatView<T> c) {
  const index_t n = c.rows;
  assert(c.cols == n);
  const index_t k = (trans == Trans::No) ? a.cols : a.rows;
  assert(((trans == Trans::No) ? a.rows : a.cols) == n);
  (void)k;

  // Scale the referenced triangle.
  for (index_t j = 0; j < n; ++j) {
    const index_t i0 = (uplo == Uplo::Lower) ? j : 0;
    const index_t i1 = (uplo == Uplo::Lower) ? n : j + 1;
    if (beta == T(0)) std::fill(c.col(j) + i0, c.col(j) + i1, T(0));
    else if (beta != T(1)) scal(i1 - i0, beta, c.col(j) + i0);
  }
  if (alpha == T(0)) return;

  if (trans == Trans::No) {
    // C(triangle) += alpha * A * Aᵗ
    for (index_t j = 0; j < n; ++j) {
      for (index_t p = 0; p < a.cols; ++p) {
        const T ajp = alpha * a(j, p);
        if (ajp == T(0)) continue;
        if (uplo == Uplo::Lower) axpy(n - j, ajp, a.col(p) + j, c.col(j) + j);
        else axpy(j + 1, ajp, a.col(p), c.col(j));
      }
    }
  } else {
    // C(triangle) += alpha * Aᵗ * A
    for (index_t j = 0; j < n; ++j) {
      const index_t i0 = (uplo == Uplo::Lower) ? j : 0;
      const index_t i1 = (uplo == Uplo::Lower) ? n : j + 1;
      for (index_t i = i0; i < i1; ++i) {
        c(i, j) += alpha * dot(a.rows, a.col(i), a.col(j));
      }
    }
  }
}

template <typename T>
void gemv(Trans trans, T alpha, ConstView<T> a, const T* x, T beta, T* y) {
  const index_t ny = (trans == Trans::No) ? a.rows : a.cols;
  if (beta == T(0)) std::fill_n(y, ny, T(0));
  else if (beta != T(1)) scal(ny, beta, y);
  if (alpha == T(0)) return;

  if (trans == Trans::No) {
    for (index_t j = 0; j < a.cols; ++j) {
      const T xj = alpha * x[j];
      if (xj != T(0)) axpy(a.rows, xj, a.col(j), y);
    }
  } else {
    for (index_t j = 0; j < a.cols; ++j) y[j] += alpha * dot(a.rows, a.col(j), x);
  }
}

template <typename T>
void trsv(Uplo uplo, Trans trans, Diag diag, ConstView<T> a, T* b) {
  MatView<T> bv(b, a.rows, 1, a.rows);
  trsm(Side::Left, uplo, trans, diag, T(1), a, bv);
}

// Explicit instantiations.
#define BLR_INSTANTIATE_BLAS(T)                                                        \
  template void gemm<T>(Trans, Trans, T, ConstView<T>, ConstView<T>, T, MatView<T>);   \
  template void trsm<T>(Side, Uplo, Trans, Diag, T, ConstView<T>, MatView<T>);         \
  template void syrk<T>(Uplo, Trans, T, ConstView<T>, T, MatView<T>);                  \
  template void gemv<T>(Trans, T, ConstView<T>, const T*, T, T*);                      \
  template void trsv<T>(Uplo, Trans, Diag, ConstView<T>, T*);

BLR_INSTANTIATE_BLAS(float)
BLR_INSTANTIATE_BLAS(double)

#undef BLR_INSTANTIATE_BLAS

} // namespace blr::la
