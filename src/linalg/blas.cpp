#include "linalg/blas.hpp"

#include <algorithm>
#include <atomic>
#include <new>

#include "linalg/backend.hpp"
#include "linalg/kernels_isa.hpp"

namespace blr::la {

namespace {

using detail::kKC;
using detail::kMC;
using detail::MicroTile;
using detail::round_up;

/// Scale C by beta (handles beta == 0 without reading C).
template <typename T>
void scale_matrix(T beta, MatView<T> c) {
  if (beta == T(1)) return;
  if (beta == T(0)) {
    fill(c, T(0));
    return;
  }
  for (index_t j = 0; j < c.cols; ++j) scal(c.rows, beta, c.col(j));
}

// ---- Loop-nest gemm (the Reference backend, and the small-case path) -----
//
// All four nests follow ONE canonical per-element accumulation order —
// ascending k, the alpha factor folded into the B term, partial sums
// accumulated straight into C — which is exactly the order the packed
// microkernel reproduces over its zero-padded panels. No term may be
// skipped on a zero operand: C(i,j) += a*0 can flip the sign bit of a -0.0,
// so a skipping nest would not be bit-identical to the non-skipping packed
// path. This shared order is the backend memcmp contract (backend.hpp).

// C += alpha * A * B, cache-blocked over k (blocking only reorders the
// store/load boundary, not the per-element sum order).
template <typename T>
void gemm_nn(T alpha, ConstView<T> a, ConstView<T> b, MatView<T> c) {
  for (index_t k0 = 0; k0 < a.cols; k0 += kKC) {
    const index_t kend = std::min(k0 + kKC, a.cols);
    for (index_t j = 0; j < c.cols; ++j) {
      T* cj = c.col(j);
      for (index_t k = k0; k < kend; ++k) {
        const T bkj = alpha * b(k, j);
        axpy(c.rows, bkj, a.col(k), cj);
      }
    }
  }
}

// C += alpha * Aᵗ * B (A, B columns contiguous).
template <typename T>
void gemm_tn(T alpha, ConstView<T> a, ConstView<T> b, MatView<T> c) {
  for (index_t j = 0; j < c.cols; ++j) {
    const T* bj = b.col(j);
    for (index_t i = 0; i < c.rows; ++i) {
      const T* ai = a.col(i);  // column i of A = row i of Aᵗ
      T s = c(i, j);
      for (index_t k = 0; k < a.rows; ++k) s += ai[k] * (alpha * bj[k]);
      c(i, j) = s;
    }
  }
}

// C += alpha * A * Bᵗ.
template <typename T>
void gemm_nt(T alpha, ConstView<T> a, ConstView<T> b, MatView<T> c) {
  for (index_t j = 0; j < c.cols; ++j) {
    T* cj = c.col(j);
    for (index_t k = 0; k < a.cols; ++k) {
      const T bjk = alpha * b(j, k);
      axpy(c.rows, bjk, a.col(k), cj);
    }
  }
}

// C += alpha * Aᵗ * Bᵗ.
template <typename T>
void gemm_tt(T alpha, ConstView<T> a, ConstView<T> b, MatView<T> c) {
  for (index_t j = 0; j < c.cols; ++j) {
    for (index_t i = 0; i < c.rows; ++i) {
      const T* ai = a.col(i);  // column i of A = row i of Aᵗ
      T s = c(i, j);
      for (index_t k = 0; k < a.rows; ++k) s += ai[k] * (alpha * b(j, k));
      c(i, j) = s;
    }
  }
}

/// Accumulate-form nest dispatch: C += alpha * op(A) * op(B).
template <typename T>
void gemm_nests(Trans trans_a, Trans trans_b, T alpha, ConstView<T> a,
                ConstView<T> b, MatView<T> c) {
  if (trans_a == Trans::No && trans_b == Trans::No) gemm_nn(alpha, a, b, c);
  else if (trans_a == Trans::Yes && trans_b == Trans::No) gemm_tn(alpha, a, b, c);
  else if (trans_a == Trans::No && trans_b == Trans::Yes) gemm_nt(alpha, a, b, c);
  else gemm_tt(alpha, a, b, c);
}

// ---- Packed gemm: packing + per-thread pack cache ------------------------
//
// BLIS-style structure: op(A) is packed into MR-row panels and op(B) into
// NR-column panels (alpha folded in at pack time), then an MR×NR register
// micro-tile walks the packed panels. K is blocked by kKC (matching the
// loop nests' k-blocking, so the per-element accumulation order is the
// same), M by kMC to keep the active A block cache-resident; N is left
// unblocked because BLR tiles are at most a few hundred columns wide. All
// four transpose cases route through the one packed path — the transpose is
// absorbed by the packing order, which always reads source columns
// contiguously. The packing and the cache live here (one copy, baseline
// flags); the microkernel walk is per-ISA (kernels_isa_body.inc), selected
// at runtime through detail::native_kernels().

std::atomic<std::uint64_t> g_pack_hits{0};
std::atomic<std::uint64_t> g_pack_misses{0};
std::atomic<std::uint64_t> g_pack_bytes{0};
std::atomic<std::uint64_t> g_scope_counter{0};
thread_local std::uint64_t t_batch_scope = 0;  // 0: content reuse disabled
thread_local const PackBatchScope* t_active_scope = nullptr;

/// A pack buffer whose byte size exceeds this cap is released when the
/// outermost PackBatchScope on its thread closes, so a single huge operand
/// does not pin that much memory on a pool worker for the thread's lifetime.
constexpr std::size_t kPackRetainBytes = std::size_t(8) << 20;

/// Content reuse is restricted to operands the active scope registered as
/// stable: a recycled heap temporary can reappear at the same address with
/// the same shape within one scope, so pointer identity alone proves
/// nothing for unregistered memory.
bool pack_stable(const void* p) {
  return t_active_scope != nullptr && t_active_scope->contains(p);
}

/// Identity of a packed operand. A cached image is valid only within the
/// batch scope that produced it (`scope`), because between scopes the engine
/// may rewrite a tile through the same pointer.
struct PackKey {
  const void* ptr = nullptr;
  index_t rows = 0, cols = 0, ld = 0;
  int trans = -1;
  double scale = 0.0;
  std::uint64_t scope = 0;

  bool operator==(const PackKey&) const = default;
};

template <typename T>
struct PackBuffer {
  T* data = nullptr;
  std::size_t cap = 0;
  PackKey key;

  ~PackBuffer() { release(); }

  void release() {
    if (data == nullptr) return;
    g_pack_bytes.fetch_sub(cap * sizeof(T), std::memory_order_relaxed);
    ::operator delete[](data, std::align_val_t{64});
    data = nullptr;
    cap = 0;
  }

  T* ensure(std::size_t n) {
    if (n > cap) {
      const std::size_t grown = std::max(n, cap * 2);
      release();
      data = static_cast<T*>(
          ::operator new[](grown * sizeof(T), std::align_val_t{64}));
      cap = grown;
      g_pack_bytes.fetch_add(cap * sizeof(T), std::memory_order_relaxed);
    }
    return data;
  }
};

template <typename T>
struct ThreadPackCache {
  PackBuffer<T> a;
  PackBuffer<T> b;
};

template <typename T>
ThreadPackCache<T>& pack_cache() {
  thread_local ThreadPackCache<T> cache;
  return cache;
}

/// Release this thread's buffers that grew past the retention cap. Called
/// when the outermost batch scope closes — the buffers are idle then.
template <typename T>
void trim_pack_cache() {
  auto& cache = pack_cache<T>();
  if (cache.a.cap * sizeof(T) > kPackRetainBytes) cache.a.release();
  if (cache.b.cap * sizeof(T) > kPackRetainBytes) cache.b.release();
}

/// Pack one mc×kc block of op(A) into MR-row panels: element (r, k) of
/// panel p lives at p*kc*MR + k*MR + r. Rows past mc are zero-padded so the
/// microkernel never branches on the row edge.
template <typename T, index_t MR>
void pack_block_a(ConstView<T> a, Trans trans, index_t i0, index_t mc,
                  index_t k0, index_t kc, T* dst) {
  for (index_t p = 0; p < mc; p += MR) {
    const index_t mr = std::min(MR, mc - p);
    if (trans == Trans::No) {
      for (index_t k = 0; k < kc; ++k) {
        const T* col = a.col(k0 + k) + i0 + p;
        index_t r = 0;
        for (; r < mr; ++r) dst[k * MR + r] = col[r];
        for (; r < MR; ++r) dst[k * MR + r] = T(0);
      }
    } else {
      // op(A)(i, k) = A(k, i): source column i0+p+r is contiguous over k.
      if (mr < MR) std::fill(dst, dst + kc * MR, T(0));
      for (index_t r = 0; r < mr; ++r) {
        const T* col = a.col(i0 + p + r) + k0;
        for (index_t k = 0; k < kc; ++k) dst[k * MR + r] = col[k];
      }
    }
    dst += kc * MR;
  }
}

/// Pack one kc×n slab of alpha*op(B) into NR-column panels: element (k, c)
/// of panel q lives at q*kc*NR + k*NR + c, columns past n zero-padded.
template <typename T, index_t NR>
void pack_slab_b(ConstView<T> b, Trans trans, T alpha, index_t k0, index_t kc,
                 index_t n, T* dst) {
  for (index_t q = 0; q < n; q += NR) {
    const index_t nr = std::min(NR, n - q);
    if (trans == Trans::No) {
      if (nr < NR) std::fill(dst, dst + kc * NR, T(0));
      for (index_t c = 0; c < nr; ++c) {
        const T* col = b.col(q + c) + k0;
        for (index_t k = 0; k < kc; ++k) dst[k * NR + c] = alpha * col[k];
      }
    } else {
      // op(B)(k, j) = B(j, k): source column k0+k is contiguous over j.
      for (index_t k = 0; k < kc; ++k) {
        const T* col = b.col(k0 + k) + q;
        index_t c = 0;
        for (; c < nr; ++c) dst[k * NR + c] = alpha * col[c];
        for (; c < NR; ++c) dst[k * NR + c] = T(0);
      }
    }
    dst += kc * NR;
  }
}

/// Pack all of op(A) (m×kk), blocked kKC×kMC in the microkernel walk's loop
/// order. Returns the cached image without re-packing on a batch-scope key
/// hit.
template <typename T>
const T* pack_a(PackBuffer<T>& buf, ConstView<T> a, Trans trans, index_t m,
                index_t kk) {
  constexpr index_t MR = MicroTile<T>::MR;
  const PackKey want{a.data, a.rows, a.cols, a.ld,
                     trans == Trans::Yes ? 1 : 0, 1.0, t_batch_scope};
  if (t_batch_scope != 0 && pack_stable(a.data) && buf.data != nullptr &&
      buf.key == want) {
    g_pack_hits.fetch_add(1, std::memory_order_relaxed);
    return buf.data;
  }
  std::size_t rows_rounded = 0;
  for (index_t ic = 0; ic < m; ic += kMC)
    rows_rounded += round_up(std::min(kMC, m - ic), MR);
  T* dst = buf.ensure(rows_rounded * static_cast<std::size_t>(kk));
  for (index_t pc = 0; pc < kk; pc += kKC) {
    const index_t kc = std::min(kKC, kk - pc);
    for (index_t ic = 0; ic < m; ic += kMC) {
      const index_t mc = std::min(kMC, m - ic);
      pack_block_a<T, MR>(a, trans, ic, mc, pc, kc, dst);
      dst += static_cast<std::size_t>(round_up(mc, MR)) * kc;
    }
  }
  buf.key = want;
  g_pack_misses.fetch_add(1, std::memory_order_relaxed);
  return buf.data;
}

/// Pack all of alpha*op(B) (kk×n), k-blocked in the microkernel walk's loop
/// order.
template <typename T>
const T* pack_b(PackBuffer<T>& buf, ConstView<T> b, Trans trans, T alpha,
                index_t kk, index_t n) {
  constexpr index_t NR = MicroTile<T>::NR;
  const PackKey want{b.data, b.rows, b.cols, b.ld,
                     trans == Trans::Yes ? 1 : 0, static_cast<double>(alpha),
                     t_batch_scope};
  if (t_batch_scope != 0 && pack_stable(b.data) && buf.data != nullptr &&
      buf.key == want) {
    g_pack_hits.fetch_add(1, std::memory_order_relaxed);
    return buf.data;
  }
  T* dst = buf.ensure(static_cast<std::size_t>(round_up(n, NR)) * kk);
  for (index_t pc = 0; pc < kk; pc += kKC) {
    const index_t kc = std::min(kKC, kk - pc);
    pack_slab_b<T, NR>(b, trans, alpha, pc, kc, n, dst);
    dst += static_cast<std::size_t>(kc) * round_up(n, NR);
  }
  buf.key = want;
  g_pack_misses.fetch_add(1, std::memory_order_relaxed);
  return buf.data;
}

/// Packing pays for itself once there is enough arithmetic per packed
/// element; tiny products (thin ranks, small tiles) stay on the loop nests.
template <typename T>
bool use_packed(index_t m, index_t n, index_t kk) {
  return kk >= 4 && static_cast<double>(m) * static_cast<double>(n) *
                            static_cast<double>(kk) >=
                        16384.0;
}

// ---- Backend vtable ------------------------------------------------------
//
// The public gemm/trsm/syrk entry points validate, apply beta/alpha scaling
// and early-out, then dispatch the remaining accumulate/substitute work
// through the current backend's function table (one row per Backend value).
// Adding a backend = appending a row; the callers never change.

template <typename T>
struct BackendVtable {
  /// C += alpha * op(A) * op(B) (beta already applied).
  void (*gemm)(Trans, Trans, T, ConstView<T>, ConstView<T>, MatView<T>);
  /// Substitution only (alpha already applied to B).
  void (*trsm)(Side, Uplo, Trans, Diag, ConstView<T>, MatView<T>);
  /// C(triangle) += alpha * A·Aᵗ or Aᵗ·A (beta already applied).
  void (*syrk)(Uplo, Trans, T, ConstView<T>, MatView<T>);
};

template <typename T>
void isa_trsm(const detail::IsaKernels& k, Side side, Uplo uplo, Trans trans,
              Diag diag, ConstView<T> a, MatView<T> b) {
  k.template trsm<T>()(side == Side::Right ? 1 : 0,
                       uplo == Uplo::Upper ? 1 : 0,
                       trans == Trans::Yes ? 1 : 0,
                       diag == Diag::Unit ? 1 : 0, a.data, a.ld, b.data, b.ld,
                       b.rows, b.cols);
}

template <typename T>
void isa_syrk(const detail::IsaKernels& k, Uplo uplo, Trans trans, T alpha,
              ConstView<T> a, MatView<T> c) {
  k.template syrk<T>()(uplo == Uplo::Upper ? 1 : 0,
                       trans == Trans::Yes ? 1 : 0, alpha, a.data, a.ld,
                       a.rows, a.cols, c.data, c.ld, c.rows);
}

// Reference backend: gemm is literally gemm_unpacked (the public loop-nest
// entry, so tier-1 tests exercise it on every run); trsm/syrk are the
// portable substitution/update bodies — the always-compiled baseline tier.

template <typename T>
void ref_gemm(Trans trans_a, Trans trans_b, T alpha, ConstView<T> a,
              ConstView<T> b, MatView<T> c) {
  gemm_unpacked(trans_a, trans_b, alpha, a, b, T(1), c);
}

template <typename T>
void ref_trsm(Side side, Uplo uplo, Trans trans, Diag diag, ConstView<T> a,
              MatView<T> b) {
  isa_trsm(detail::isa_portable(), side, uplo, trans, diag, a, b);
}

template <typename T>
void ref_syrk(Uplo uplo, Trans trans, T alpha, ConstView<T> a, MatView<T> c) {
  isa_syrk(detail::isa_portable(), uplo, trans, alpha, a, c);
}

// Native backend: the packed engine on the CPUID-selected ISA tier; tiny
// products stay on the (shared, hence bit-identical) loop nests.

template <typename T>
void native_gemm(Trans trans_a, Trans trans_b, T alpha, ConstView<T> a,
                 ConstView<T> b, MatView<T> c) {
  const index_t kk = (trans_a == Trans::No) ? a.cols : a.rows;
  if (!use_packed<T>(c.rows, c.cols, kk)) {
    gemm_nests(trans_a, trans_b, alpha, a, b, c);
    return;
  }
  auto& cache = pack_cache<T>();
  const T* ap = pack_a<T>(cache.a, a, trans_a, c.rows, kk);
  const T* bp = pack_b<T>(cache.b, b, trans_b, alpha, kk, c.cols);
  detail::native_kernels().template gemm_packed<T>()(c.rows, c.cols, kk, ap,
                                                     bp, c.data, c.ld);
}

template <typename T>
void native_trsm(Side side, Uplo uplo, Trans trans, Diag diag, ConstView<T> a,
                 MatView<T> b) {
  isa_trsm(detail::native_kernels(), side, uplo, trans, diag, a, b);
}

template <typename T>
void native_syrk(Uplo uplo, Trans trans, T alpha, ConstView<T> a,
                 MatView<T> c) {
  isa_syrk(detail::native_kernels(), uplo, trans, alpha, a, c);
}

template <typename T>
const BackendVtable<T>& backend_vtable(Backend be) {
  static const BackendVtable<T> table[static_cast<int>(Backend::kCount)] = {
      {&ref_gemm<T>, &ref_trsm<T>, &ref_syrk<T>},           // Reference
      {&native_gemm<T>, &native_trsm<T>, &native_syrk<T>},  // Native
  };
  return table[static_cast<int>(be)];
}

} // namespace

PackCacheStats pack_cache_stats() {
  PackCacheStats s;
  s.hits = g_pack_hits.load(std::memory_order_relaxed);
  s.misses = g_pack_misses.load(std::memory_order_relaxed);
  s.bytes = g_pack_bytes.load(std::memory_order_relaxed);
  return s;
}

void reset_pack_cache_stats() {
  g_pack_hits.store(0, std::memory_order_relaxed);
  g_pack_misses.store(0, std::memory_order_relaxed);
}

PackBatchScope::PackBatchScope(const void* const* stable, std::size_t count)
    : prev_(t_batch_scope),
      prev_scope_(t_active_scope),
      stable_(stable, stable + count) {
  std::sort(stable_.begin(), stable_.end());
  t_batch_scope = g_scope_counter.fetch_add(1, std::memory_order_relaxed) + 1;
  t_active_scope = this;
}

PackBatchScope::~PackBatchScope() {
  t_batch_scope = prev_;
  t_active_scope = prev_scope_;
  if (t_batch_scope == 0) {
    trim_pack_cache<float>();
    trim_pack_cache<double>();
  }
}

bool PackBatchScope::contains(const void* p) const {
  return p != nullptr &&
         std::binary_search(stable_.begin(), stable_.end(), p);
}

template <typename T>
void gemm_unpacked(Trans trans_a, Trans trans_b, T alpha, ConstView<T> a,
                   ConstView<T> b, T beta, MatView<T> c) {
  const index_t opa_rows = (trans_a == Trans::No) ? a.rows : a.cols;
  const index_t opa_cols = (trans_a == Trans::No) ? a.cols : a.rows;
  const index_t opb_rows = (trans_b == Trans::No) ? b.rows : b.cols;
  const index_t opb_cols = (trans_b == Trans::No) ? b.cols : b.rows;
  assert(opa_rows == c.rows && opb_cols == c.cols && opa_cols == opb_rows);
  (void)opa_rows;
  (void)opb_cols;
  (void)opb_rows;

  scale_matrix(beta, c);
  if (alpha == T(0) || opa_cols == 0 || c.empty()) return;
  gemm_nests(trans_a, trans_b, alpha, a, b, c);
}

template <typename T>
void gemm(Trans trans_a, Trans trans_b, T alpha, ConstView<T> a, ConstView<T> b,
          T beta, MatView<T> c) {
  const index_t opa_rows = (trans_a == Trans::No) ? a.rows : a.cols;
  const index_t opa_cols = (trans_a == Trans::No) ? a.cols : a.rows;
  const index_t opb_rows = (trans_b == Trans::No) ? b.rows : b.cols;
  const index_t opb_cols = (trans_b == Trans::No) ? b.cols : b.rows;
  assert(opa_rows == c.rows && opb_cols == c.cols && opa_cols == opb_rows);
  (void)opa_rows;
  (void)opb_cols;
  (void)opb_rows;

  scale_matrix(beta, c);
  if (alpha == T(0) || opa_cols == 0 || c.empty()) return;
  backend_vtable<T>(current_backend()).gemm(trans_a, trans_b, alpha, a, b, c);
}

template <typename T>
void trsm(Side side, Uplo uplo, Trans trans, Diag diag, T alpha, ConstView<T> a,
          MatView<T> b) {
  const index_t m = b.rows;
  const index_t n = b.cols;
  if (side == Side::Left) assert(a.rows == m && a.cols == m);
  else assert(a.rows == n && a.cols == n);
  (void)m;
  (void)n;

  scale_matrix(alpha, b);
  if (b.empty()) return;
  backend_vtable<T>(current_backend()).trsm(side, uplo, trans, diag, a, b);
}

template <typename T>
void syrk(Uplo uplo, Trans trans, T alpha, ConstView<T> a, T beta, MatView<T> c) {
  const index_t n = c.rows;
  assert(c.cols == n);
  assert(((trans == Trans::No) ? a.rows : a.cols) == n);

  // Scale the referenced triangle.
  for (index_t j = 0; j < n; ++j) {
    const index_t i0 = (uplo == Uplo::Lower) ? j : 0;
    const index_t i1 = (uplo == Uplo::Lower) ? n : j + 1;
    if (beta == T(0)) std::fill(c.col(j) + i0, c.col(j) + i1, T(0));
    else if (beta != T(1)) scal(i1 - i0, beta, c.col(j) + i0);
  }
  if (alpha == T(0) || n == 0) return;
  backend_vtable<T>(current_backend()).syrk(uplo, trans, alpha, a, c);
}

template <typename T>
void gemv(Trans trans, T alpha, ConstView<T> a, const T* x, T beta, T* y) {
  const index_t ny = (trans == Trans::No) ? a.rows : a.cols;
  if (beta == T(0)) std::fill_n(y, ny, T(0));
  else if (beta != T(1)) scal(ny, beta, y);
  if (alpha == T(0)) return;

  if (trans == Trans::No) {
    for (index_t j = 0; j < a.cols; ++j) {
      const T xj = alpha * x[j];
      if (xj != T(0)) axpy(a.rows, xj, a.col(j), y);
    }
  } else {
    for (index_t j = 0; j < a.cols; ++j) y[j] += alpha * dot(a.rows, a.col(j), x);
  }
}

template <typename T>
void trsv(Uplo uplo, Trans trans, Diag diag, ConstView<T> a, T* b) {
  MatView<T> bv(b, a.rows, 1, a.rows);
  trsm(Side::Left, uplo, trans, diag, T(1), a, bv);
}

// Explicit instantiations.
#define BLR_INSTANTIATE_BLAS(T)                                                        \
  template void gemm<T>(Trans, Trans, T, ConstView<T>, ConstView<T>, T, MatView<T>);   \
  template void gemm_unpacked<T>(Trans, Trans, T, ConstView<T>, ConstView<T>, T,       \
                                 MatView<T>);                                          \
  template void trsm<T>(Side, Uplo, Trans, Diag, T, ConstView<T>, MatView<T>);         \
  template void syrk<T>(Uplo, Trans, T, ConstView<T>, T, MatView<T>);                  \
  template void gemv<T>(Trans, T, ConstView<T>, const T*, T, T*);                      \
  template void trsv<T>(Uplo, Trans, Diag, ConstView<T>, T*);

BLR_INSTANTIATE_BLAS(float)
BLR_INSTANTIATE_BLAS(double)

#undef BLR_INSTANTIATE_BLAS

} // namespace blr::la
