#include "linalg/blas.hpp"

#include <algorithm>
#include <atomic>
#include <new>

namespace blr::la {

namespace {

/// Scale C by beta (handles beta == 0 without reading C).
template <typename T>
void scale_matrix(T beta, MatView<T> c) {
  if (beta == T(1)) return;
  if (beta == T(0)) {
    fill(c, T(0));
    return;
  }
  for (index_t j = 0; j < c.cols; ++j) scal(c.rows, beta, c.col(j));
}

// C += alpha * A * B, cache-blocked over k.
template <typename T>
void gemm_nn(T alpha, ConstView<T> a, ConstView<T> b, MatView<T> c) {
  constexpr index_t kb = 256;
  for (index_t k0 = 0; k0 < a.cols; k0 += kb) {
    const index_t kend = std::min(k0 + kb, a.cols);
    for (index_t j = 0; j < c.cols; ++j) {
      T* cj = c.col(j);
      for (index_t k = k0; k < kend; ++k) {
        const T bkj = alpha * b(k, j);
        if (bkj == T(0)) continue;
        axpy(c.rows, bkj, a.col(k), cj);
      }
    }
  }
}

// C += alpha * Aᵗ * B (dot-product formulation; A, B columns contiguous).
template <typename T>
void gemm_tn(T alpha, ConstView<T> a, ConstView<T> b, MatView<T> c) {
  for (index_t j = 0; j < c.cols; ++j) {
    const T* bj = b.col(j);
    for (index_t i = 0; i < c.rows; ++i) {
      c(i, j) += alpha * dot(a.rows, a.col(i), bj);
    }
  }
}

// C += alpha * A * Bᵗ.
template <typename T>
void gemm_nt(T alpha, ConstView<T> a, ConstView<T> b, MatView<T> c) {
  for (index_t j = 0; j < c.cols; ++j) {
    T* cj = c.col(j);
    for (index_t k = 0; k < a.cols; ++k) {
      const T bjk = alpha * b(j, k);
      if (bjk == T(0)) continue;
      axpy(c.rows, bjk, a.col(k), cj);
    }
  }
}

// C += alpha * Aᵗ * Bᵗ.
template <typename T>
void gemm_tt(T alpha, ConstView<T> a, ConstView<T> b, MatView<T> c) {
  for (index_t j = 0; j < c.cols; ++j) {
    for (index_t i = 0; i < c.rows; ++i) {
      T s = T(0);
      const T* ai = a.col(i);  // column i of A = row i of Aᵗ
      for (index_t k = 0; k < a.rows; ++k) s += ai[k] * b(j, k);
      c(i, j) += alpha * s;
    }
  }
}

// ---- Packed, register-blocked gemm ---------------------------------------
//
// BLIS-style structure: op(A) is packed into MR-row panels and op(B) into
// NR-column panels (alpha folded in at pack time), then an MR×NR register
// micro-tile walks the packed panels. K is blocked by kKC (matching the old
// axpy nest's k-blocking, so the per-element accumulation order is the
// same), M by kMC to keep the active A block cache-resident; N is left
// unblocked because BLR tiles are at most a few hundred columns wide. All
// four transpose cases route through the one packed path — the transpose is
// absorbed by the packing order, which always reads source columns
// contiguously.

constexpr index_t kKC = 256;  ///< k-block: packed B panel rows (== old axpy kb)
constexpr index_t kMC = 128;  ///< m-block: rows of the resident packed A block

template <typename T>
struct MicroTile;  // MR×NR register block per element type
template <>
struct MicroTile<double> {
  static constexpr index_t MR = 8;  // one AVX-512 lane (two AVX2 lanes)
  static constexpr index_t NR = 4;
};
template <>
struct MicroTile<float> {
  static constexpr index_t MR = 16;
  static constexpr index_t NR = 4;
};

constexpr index_t round_up(index_t x, index_t step) {
  return ((x + step - 1) / step) * step;
}

// ---- Per-thread pack cache -----------------------------------------------

std::atomic<std::uint64_t> g_pack_hits{0};
std::atomic<std::uint64_t> g_pack_misses{0};
std::atomic<std::uint64_t> g_pack_bytes{0};
std::atomic<std::uint64_t> g_scope_counter{0};
thread_local std::uint64_t t_batch_scope = 0;  // 0: content reuse disabled
thread_local const PackBatchScope* t_active_scope = nullptr;

/// A pack buffer whose byte size exceeds this cap is released when the
/// outermost PackBatchScope on its thread closes, so a single huge operand
/// does not pin that much memory on a pool worker for the thread's lifetime.
constexpr std::size_t kPackRetainBytes = std::size_t(8) << 20;

/// Content reuse is restricted to operands the active scope registered as
/// stable: a recycled heap temporary can reappear at the same address with
/// the same shape within one scope, so pointer identity alone proves
/// nothing for unregistered memory.
bool pack_stable(const void* p) {
  return t_active_scope != nullptr && t_active_scope->contains(p);
}

/// Identity of a packed operand. A cached image is valid only within the
/// batch scope that produced it (`scope`), because between scopes the engine
/// may rewrite a tile through the same pointer.
struct PackKey {
  const void* ptr = nullptr;
  index_t rows = 0, cols = 0, ld = 0;
  int trans = -1;
  double scale = 0.0;
  std::uint64_t scope = 0;

  bool operator==(const PackKey&) const = default;
};

template <typename T>
struct PackBuffer {
  T* data = nullptr;
  std::size_t cap = 0;
  PackKey key;

  ~PackBuffer() { release(); }

  void release() {
    if (data == nullptr) return;
    g_pack_bytes.fetch_sub(cap * sizeof(T), std::memory_order_relaxed);
    ::operator delete[](data, std::align_val_t{64});
    data = nullptr;
    cap = 0;
  }

  T* ensure(std::size_t n) {
    if (n > cap) {
      const std::size_t grown = std::max(n, cap * 2);
      release();
      data = static_cast<T*>(
          ::operator new[](grown * sizeof(T), std::align_val_t{64}));
      cap = grown;
      g_pack_bytes.fetch_add(cap * sizeof(T), std::memory_order_relaxed);
    }
    return data;
  }
};

template <typename T>
struct ThreadPackCache {
  PackBuffer<T> a;
  PackBuffer<T> b;
};

template <typename T>
ThreadPackCache<T>& pack_cache() {
  thread_local ThreadPackCache<T> cache;
  return cache;
}

/// Release this thread's buffers that grew past the retention cap. Called
/// when the outermost batch scope closes — the buffers are idle then.
template <typename T>
void trim_pack_cache() {
  auto& cache = pack_cache<T>();
  if (cache.a.cap * sizeof(T) > kPackRetainBytes) cache.a.release();
  if (cache.b.cap * sizeof(T) > kPackRetainBytes) cache.b.release();
}

// ---- Packing -------------------------------------------------------------

/// Pack one mc×kc block of op(A) into MR-row panels: element (r, k) of
/// panel p lives at p*kc*MR + k*MR + r. Rows past mc are zero-padded so the
/// microkernel never branches on the row edge.
template <typename T, index_t MR>
void pack_block_a(ConstView<T> a, Trans trans, index_t i0, index_t mc,
                  index_t k0, index_t kc, T* dst) {
  for (index_t p = 0; p < mc; p += MR) {
    const index_t mr = std::min(MR, mc - p);
    if (trans == Trans::No) {
      for (index_t k = 0; k < kc; ++k) {
        const T* col = a.col(k0 + k) + i0 + p;
        index_t r = 0;
        for (; r < mr; ++r) dst[k * MR + r] = col[r];
        for (; r < MR; ++r) dst[k * MR + r] = T(0);
      }
    } else {
      // op(A)(i, k) = A(k, i): source column i0+p+r is contiguous over k.
      if (mr < MR) std::fill(dst, dst + kc * MR, T(0));
      for (index_t r = 0; r < mr; ++r) {
        const T* col = a.col(i0 + p + r) + k0;
        for (index_t k = 0; k < kc; ++k) dst[k * MR + r] = col[k];
      }
    }
    dst += kc * MR;
  }
}

/// Pack one kc×n slab of alpha*op(B) into NR-column panels: element (k, c)
/// of panel q lives at q*kc*NR + k*NR + c, columns past n zero-padded.
template <typename T, index_t NR>
void pack_slab_b(ConstView<T> b, Trans trans, T alpha, index_t k0, index_t kc,
                 index_t n, T* dst) {
  for (index_t q = 0; q < n; q += NR) {
    const index_t nr = std::min(NR, n - q);
    if (trans == Trans::No) {
      if (nr < NR) std::fill(dst, dst + kc * NR, T(0));
      for (index_t c = 0; c < nr; ++c) {
        const T* col = b.col(q + c) + k0;
        for (index_t k = 0; k < kc; ++k) dst[k * NR + c] = alpha * col[k];
      }
    } else {
      // op(B)(k, j) = B(j, k): source column k0+k is contiguous over j.
      for (index_t k = 0; k < kc; ++k) {
        const T* col = b.col(k0 + k) + q;
        index_t c = 0;
        for (; c < nr; ++c) dst[k * NR + c] = alpha * col[c];
        for (; c < NR; ++c) dst[k * NR + c] = T(0);
      }
    }
    dst += kc * NR;
  }
}

/// Pack all of op(A) (m×kk), blocked kKC×kMC in the driver's loop order.
/// Returns the cached image without re-packing on a batch-scope key hit.
template <typename T>
const T* pack_a(PackBuffer<T>& buf, ConstView<T> a, Trans trans, index_t m,
                index_t kk) {
  constexpr index_t MR = MicroTile<T>::MR;
  const PackKey want{a.data, a.rows, a.cols, a.ld,
                     trans == Trans::Yes ? 1 : 0, 1.0, t_batch_scope};
  if (t_batch_scope != 0 && pack_stable(a.data) && buf.data != nullptr &&
      buf.key == want) {
    g_pack_hits.fetch_add(1, std::memory_order_relaxed);
    return buf.data;
  }
  std::size_t rows_rounded = 0;
  for (index_t ic = 0; ic < m; ic += kMC)
    rows_rounded += round_up(std::min(kMC, m - ic), MR);
  T* dst = buf.ensure(rows_rounded * static_cast<std::size_t>(kk));
  for (index_t pc = 0; pc < kk; pc += kKC) {
    const index_t kc = std::min(kKC, kk - pc);
    for (index_t ic = 0; ic < m; ic += kMC) {
      const index_t mc = std::min(kMC, m - ic);
      pack_block_a<T, MR>(a, trans, ic, mc, pc, kc, dst);
      dst += static_cast<std::size_t>(round_up(mc, MR)) * kc;
    }
  }
  buf.key = want;
  g_pack_misses.fetch_add(1, std::memory_order_relaxed);
  return buf.data;
}

/// Pack all of alpha*op(B) (kk×n), k-blocked in the driver's loop order.
template <typename T>
const T* pack_b(PackBuffer<T>& buf, ConstView<T> b, Trans trans, T alpha,
                index_t kk, index_t n) {
  constexpr index_t NR = MicroTile<T>::NR;
  const PackKey want{b.data, b.rows, b.cols, b.ld,
                     trans == Trans::Yes ? 1 : 0, static_cast<double>(alpha),
                     t_batch_scope};
  if (t_batch_scope != 0 && pack_stable(b.data) && buf.data != nullptr &&
      buf.key == want) {
    g_pack_hits.fetch_add(1, std::memory_order_relaxed);
    return buf.data;
  }
  T* dst = buf.ensure(static_cast<std::size_t>(round_up(n, NR)) * kk);
  for (index_t pc = 0; pc < kk; pc += kKC) {
    const index_t kc = std::min(kKC, kk - pc);
    pack_slab_b<T, NR>(b, trans, alpha, pc, kc, n, dst);
    dst += static_cast<std::size_t>(kc) * round_up(n, NR);
  }
  buf.key = want;
  g_pack_misses.fetch_add(1, std::memory_order_relaxed);
  return buf.data;
}

// ---- Microkernels --------------------------------------------------------

/// Full MR×NR tile: accumulators start from C so splitting k into kKC blocks
/// adds partial sums to C in the same order as the old k-blocked axpy nest.
template <typename T, index_t MR, index_t NR>
void ukr_full(index_t kc, const T* __restrict ap, const T* __restrict bp,
              T* __restrict cpt, index_t ldc) {
  T acc[NR][MR];
  for (index_t j = 0; j < NR; ++j)
    for (index_t i = 0; i < MR; ++i) acc[j][i] = cpt[j * ldc + i];
  for (index_t k = 0; k < kc; ++k) {
    const T* __restrict av = ap + k * MR;
    const T* __restrict bv = bp + k * NR;
    for (index_t j = 0; j < NR; ++j) {
      const T bj = bv[j];
      for (index_t i = 0; i < MR; ++i) acc[j][i] += av[i] * bj;
    }
  }
  for (index_t j = 0; j < NR; ++j)
    for (index_t i = 0; i < MR; ++i) cpt[j * ldc + i] = acc[j][i];
}

/// Edge tile (mr < MR and/or nr < NR): accumulate into a zero tile over the
/// padded panels, then add the valid part to C.
template <typename T, index_t MR, index_t NR>
void ukr_edge(index_t kc, const T* ap, const T* bp, T* cpt, index_t ldc,
              index_t mr, index_t nr) {
  T acc[NR][MR] = {};
  for (index_t k = 0; k < kc; ++k) {
    const T* av = ap + k * MR;
    const T* bv = bp + k * NR;
    for (index_t j = 0; j < NR; ++j) {
      const T bj = bv[j];
      for (index_t i = 0; i < MR; ++i) acc[j][i] += av[i] * bj;
    }
  }
  for (index_t j = 0; j < nr; ++j)
    for (index_t i = 0; i < mr; ++i) cpt[j * ldc + i] += acc[j][i];
}

/// Blocked driver over the fully packed images: C += packedA · packedB.
template <typename T>
void gemm_packed(Trans trans_a, Trans trans_b, T alpha, ConstView<T> a,
                 ConstView<T> b, MatView<T> c) {
  constexpr index_t MR = MicroTile<T>::MR;
  constexpr index_t NR = MicroTile<T>::NR;
  const index_t m = c.rows;
  const index_t n = c.cols;
  const index_t kk = (trans_a == Trans::No) ? a.cols : a.rows;

  auto& cache = pack_cache<T>();
  const T* ap = pack_a<T>(cache.a, a, trans_a, m, kk);
  const T* bp = pack_b<T>(cache.b, b, trans_b, alpha, kk, n);

  const std::size_t n_rounded = round_up(n, NR);
  std::size_t a_off = 0;
  std::size_t b_off = 0;
  for (index_t pc = 0; pc < kk; pc += kKC) {
    const index_t kc = std::min(kKC, kk - pc);
    const T* bblock = bp + b_off;
    for (index_t ic = 0; ic < m; ic += kMC) {
      const index_t mc = std::min(kMC, m - ic);
      const T* ablock = ap + a_off;
      for (index_t j0 = 0; j0 < n; j0 += NR) {
        const index_t nr = std::min(NR, n - j0);
        const T* bpanel = bblock + static_cast<std::size_t>(j0 / NR) * kc * NR;
        for (index_t i0 = 0; i0 < mc; i0 += MR) {
          const index_t mr = std::min(MR, mc - i0);
          const T* apanel =
              ablock + static_cast<std::size_t>(i0 / MR) * kc * MR;
          T* cpt = c.col(j0) + ic + i0;
          if (mr == MR && nr == NR)
            ukr_full<T, MR, NR>(kc, apanel, bpanel, cpt, c.ld);
          else
            ukr_edge<T, MR, NR>(kc, apanel, bpanel, cpt, c.ld, mr, nr);
        }
      }
      a_off += static_cast<std::size_t>(round_up(mc, MR)) * kc;
    }
    b_off += static_cast<std::size_t>(kc) * n_rounded;
  }
}

/// Packing pays for itself once there is enough arithmetic per packed
/// element; tiny products (thin ranks, small tiles) stay on the loop nests.
template <typename T>
bool use_packed(index_t m, index_t n, index_t kk) {
  return kk >= 4 && static_cast<double>(m) * static_cast<double>(n) *
                            static_cast<double>(kk) >=
                        16384.0;
}

} // namespace

PackCacheStats pack_cache_stats() {
  PackCacheStats s;
  s.hits = g_pack_hits.load(std::memory_order_relaxed);
  s.misses = g_pack_misses.load(std::memory_order_relaxed);
  s.bytes = g_pack_bytes.load(std::memory_order_relaxed);
  return s;
}

void reset_pack_cache_stats() {
  g_pack_hits.store(0, std::memory_order_relaxed);
  g_pack_misses.store(0, std::memory_order_relaxed);
}

PackBatchScope::PackBatchScope(const void* const* stable, std::size_t count)
    : prev_(t_batch_scope),
      prev_scope_(t_active_scope),
      stable_(stable, stable + count) {
  std::sort(stable_.begin(), stable_.end());
  t_batch_scope = g_scope_counter.fetch_add(1, std::memory_order_relaxed) + 1;
  t_active_scope = this;
}

PackBatchScope::~PackBatchScope() {
  t_batch_scope = prev_;
  t_active_scope = prev_scope_;
  if (t_batch_scope == 0) {
    trim_pack_cache<float>();
    trim_pack_cache<double>();
  }
}

bool PackBatchScope::contains(const void* p) const {
  return p != nullptr &&
         std::binary_search(stable_.begin(), stable_.end(), p);
}

template <typename T>
void gemm_unpacked(Trans trans_a, Trans trans_b, T alpha, ConstView<T> a,
                   ConstView<T> b, T beta, MatView<T> c) {
  const index_t opa_rows = (trans_a == Trans::No) ? a.rows : a.cols;
  const index_t opa_cols = (trans_a == Trans::No) ? a.cols : a.rows;
  const index_t opb_rows = (trans_b == Trans::No) ? b.rows : b.cols;
  const index_t opb_cols = (trans_b == Trans::No) ? b.cols : b.rows;
  assert(opa_rows == c.rows && opb_cols == c.cols && opa_cols == opb_rows);
  (void)opa_rows;
  (void)opb_cols;
  (void)opb_rows;

  scale_matrix(beta, c);
  if (alpha == T(0) || opa_cols == 0 || c.empty()) return;

  if (trans_a == Trans::No && trans_b == Trans::No) gemm_nn(alpha, a, b, c);
  else if (trans_a == Trans::Yes && trans_b == Trans::No) gemm_tn(alpha, a, b, c);
  else if (trans_a == Trans::No && trans_b == Trans::Yes) gemm_nt(alpha, a, b, c);
  else gemm_tt(alpha, a, b, c);
}

template <typename T>
void gemm(Trans trans_a, Trans trans_b, T alpha, ConstView<T> a, ConstView<T> b,
          T beta, MatView<T> c) {
  const index_t opa_rows = (trans_a == Trans::No) ? a.rows : a.cols;
  const index_t opa_cols = (trans_a == Trans::No) ? a.cols : a.rows;
  const index_t opb_rows = (trans_b == Trans::No) ? b.rows : b.cols;
  const index_t opb_cols = (trans_b == Trans::No) ? b.cols : b.rows;
  assert(opa_rows == c.rows && opb_cols == c.cols && opa_cols == opb_rows);
  (void)opa_rows;
  (void)opb_cols;
  (void)opb_rows;

  scale_matrix(beta, c);
  if (alpha == T(0) || opa_cols == 0 || c.empty()) return;

  if (use_packed<T>(c.rows, c.cols, opa_cols)) {
    gemm_packed(trans_a, trans_b, alpha, a, b, c);
    return;
  }
  if (trans_a == Trans::No && trans_b == Trans::No) gemm_nn(alpha, a, b, c);
  else if (trans_a == Trans::Yes && trans_b == Trans::No) gemm_tn(alpha, a, b, c);
  else if (trans_a == Trans::No && trans_b == Trans::Yes) gemm_nt(alpha, a, b, c);
  else gemm_tt(alpha, a, b, c);
}

template <typename T>
void trsm(Side side, Uplo uplo, Trans trans, Diag diag, T alpha, ConstView<T> a,
          MatView<T> b) {
  const index_t m = b.rows;
  const index_t n = b.cols;
  if (side == Side::Left) assert(a.rows == m && a.cols == m);
  else assert(a.rows == n && a.cols == n);

  scale_matrix(alpha, b);
  if (b.empty()) return;
  const bool unit = (diag == Diag::Unit);

  if (side == Side::Left) {
    if ((uplo == Uplo::Lower && trans == Trans::No) ||
        (uplo == Uplo::Upper && trans == Trans::Yes)) {
      // Forward substitution per column of B.
      for (index_t j = 0; j < n; ++j) {
        T* bj = b.col(j);
        if (uplo == Uplo::Lower) {
          for (index_t k = 0; k < m; ++k) {
            if (!unit) bj[k] /= a(k, k);
            const T bk = bj[k];
            if (bk != T(0)) axpy(m - k - 1, -bk, a.col(k) + k + 1, bj + k + 1);
          }
        } else {  // Upper, Trans: Uᵗ is lower; Uᵗ(k, 0:k) = U(0:k, k)
          for (index_t k = 0; k < m; ++k) {
            bj[k] -= dot(k, a.col(k), bj);
            if (!unit) bj[k] /= a(k, k);
          }
        }
      }
    } else {
      // Backward substitution per column of B.
      for (index_t j = 0; j < n; ++j) {
        T* bj = b.col(j);
        if (uplo == Uplo::Upper) {  // Upper, NoTrans
          for (index_t k = m - 1; k >= 0; --k) {
            if (!unit) bj[k] /= a(k, k);
            const T bk = bj[k];
            if (bk != T(0)) axpy(k, -bk, a.col(k), bj);
          }
        } else {  // Lower, Trans: Lᵗ upper; row k of Lᵗ beyond diag = L(k+1:m, k)
          for (index_t k = m - 1; k >= 0; --k) {
            bj[k] -= dot(m - k - 1, a.col(k) + k + 1, bj + k + 1);
            if (!unit) bj[k] /= a(k, k);
          }
        }
      }
    }
  } else {  // Side::Right — X * op(A) = B
    if ((uplo == Uplo::Upper && trans == Trans::No) ||
        (uplo == Uplo::Lower && trans == Trans::Yes)) {
      // Forward over columns of B.
      for (index_t j = 0; j < n; ++j) {
        T* bj = b.col(j);
        for (index_t k = 0; k < j; ++k) {
          const T akj = (trans == Trans::No) ? a(k, j) : a(j, k);
          if (akj != T(0)) axpy(m, -akj, b.col(k), bj);
        }
        if (!unit) scal(m, T(1) / a(j, j), bj);
      }
    } else {
      // Backward over columns of B.
      for (index_t j = n - 1; j >= 0; --j) {
        T* bj = b.col(j);
        for (index_t k = j + 1; k < n; ++k) {
          const T akj = (trans == Trans::No) ? a(k, j) : a(j, k);
          if (akj != T(0)) axpy(m, -akj, b.col(k), bj);
        }
        if (!unit) scal(m, T(1) / a(j, j), bj);
      }
    }
  }
}

template <typename T>
void syrk(Uplo uplo, Trans trans, T alpha, ConstView<T> a, T beta, MatView<T> c) {
  const index_t n = c.rows;
  assert(c.cols == n);
  const index_t k = (trans == Trans::No) ? a.cols : a.rows;
  assert(((trans == Trans::No) ? a.rows : a.cols) == n);
  (void)k;

  // Scale the referenced triangle.
  for (index_t j = 0; j < n; ++j) {
    const index_t i0 = (uplo == Uplo::Lower) ? j : 0;
    const index_t i1 = (uplo == Uplo::Lower) ? n : j + 1;
    if (beta == T(0)) std::fill(c.col(j) + i0, c.col(j) + i1, T(0));
    else if (beta != T(1)) scal(i1 - i0, beta, c.col(j) + i0);
  }
  if (alpha == T(0)) return;

  if (trans == Trans::No) {
    // C(triangle) += alpha * A * Aᵗ
    for (index_t j = 0; j < n; ++j) {
      for (index_t p = 0; p < a.cols; ++p) {
        const T ajp = alpha * a(j, p);
        if (ajp == T(0)) continue;
        if (uplo == Uplo::Lower) axpy(n - j, ajp, a.col(p) + j, c.col(j) + j);
        else axpy(j + 1, ajp, a.col(p), c.col(j));
      }
    }
  } else {
    // C(triangle) += alpha * Aᵗ * A
    for (index_t j = 0; j < n; ++j) {
      const index_t i0 = (uplo == Uplo::Lower) ? j : 0;
      const index_t i1 = (uplo == Uplo::Lower) ? n : j + 1;
      for (index_t i = i0; i < i1; ++i) {
        c(i, j) += alpha * dot(a.rows, a.col(i), a.col(j));
      }
    }
  }
}

template <typename T>
void gemv(Trans trans, T alpha, ConstView<T> a, const T* x, T beta, T* y) {
  const index_t ny = (trans == Trans::No) ? a.rows : a.cols;
  if (beta == T(0)) std::fill_n(y, ny, T(0));
  else if (beta != T(1)) scal(ny, beta, y);
  if (alpha == T(0)) return;

  if (trans == Trans::No) {
    for (index_t j = 0; j < a.cols; ++j) {
      const T xj = alpha * x[j];
      if (xj != T(0)) axpy(a.rows, xj, a.col(j), y);
    }
  } else {
    for (index_t j = 0; j < a.cols; ++j) y[j] += alpha * dot(a.rows, a.col(j), x);
  }
}

template <typename T>
void trsv(Uplo uplo, Trans trans, Diag diag, ConstView<T> a, T* b) {
  MatView<T> bv(b, a.rows, 1, a.rows);
  trsm(Side::Left, uplo, trans, diag, T(1), a, bv);
}

// Explicit instantiations.
#define BLR_INSTANTIATE_BLAS(T)                                                        \
  template void gemm<T>(Trans, Trans, T, ConstView<T>, ConstView<T>, T, MatView<T>);   \
  template void gemm_unpacked<T>(Trans, Trans, T, ConstView<T>, ConstView<T>, T,       \
                                 MatView<T>);                                          \
  template void trsm<T>(Side, Uplo, Trans, Diag, T, ConstView<T>, MatView<T>);         \
  template void syrk<T>(Uplo, Trans, T, ConstView<T>, T, MatView<T>);                  \
  template void gemv<T>(Trans, T, ConstView<T>, const T*, T, T*);                      \
  template void trsv<T>(Uplo, Trans, Diag, ConstView<T>, T*);

BLR_INSTANTIATE_BLAS(float)
BLR_INSTANTIATE_BLAS(double)

#undef BLR_INSTANTIATE_BLAS

} // namespace blr::la
