#include "linalg/qr.hpp"

#include <cmath>
#include <limits>
#include <numeric>

namespace blr::la {

template <typename T>
T larfg(T alpha, index_t n, T* x, T& tau) {
  const T xnorm = nrm2(n, x);
  if (xnorm == T(0)) {
    tau = T(0);
    return alpha;
  }
  T beta = std::sqrt(alpha * alpha + xnorm * xnorm);
  if (alpha > T(0)) beta = -beta;
  tau = (beta - alpha) / beta;
  scal(n, T(1) / (alpha - beta), x);
  return beta;
}

namespace {

/// Apply reflector (implicit v0 = 1, tail v, factor tau) to columns of c.
template <typename T>
void apply_reflector(index_t m, const T* v, T tau, MatView<T> c) {
  if (tau == T(0)) return;
  for (index_t j = 0; j < c.cols; ++j) {
    T* cj = c.col(j);
    T w = cj[0] + dot(m - 1, v, cj + 1);
    w *= tau;
    cj[0] -= w;
    axpy(m - 1, -w, v, cj + 1);
  }
}

} // namespace

template <typename T>
void geqrf(MatView<T> a, std::vector<T>& tau) {
  const index_t m = a.rows;
  const index_t n = a.cols;
  const index_t k = std::min(m, n);
  tau.assign(static_cast<std::size_t>(k), T(0));

  for (index_t j = 0; j < k; ++j) {
    T* col = a.col(j) + j;
    a(j, j) = larfg(col[0], m - j - 1, col + 1, tau[static_cast<std::size_t>(j)]);
    if (j + 1 < n) {
      apply_reflector(m - j, col + 1, tau[static_cast<std::size_t>(j)],
                      a.sub(j, j + 1, m - j, n - j - 1));
    }
  }
}

template <typename T>
void orgqr(MatView<T> a, const std::vector<T>& tau) {
  const index_t m = a.rows;
  const index_t k = a.cols;
  assert(static_cast<index_t>(tau.size()) >= k);

  // Backward accumulation: Q = H_0 ... H_{k-1} * I_{m x k}.
  for (index_t j = k - 1; j >= 0; --j) {
    const T tj = tau[static_cast<std::size_t>(j)];
    // Apply H_j to columns j+1..k (rows j..m), then build column j.
    if (j + 1 < k) {
      apply_reflector(m - j, a.col(j) + j + 1, tj, a.sub(j, j + 1, m - j, k - j - 1));
    }
    // Column j of Q = H_j e_j = e_j - tau * v.
    T* cj = a.col(j);
    for (index_t i = 0; i < j; ++i) cj[i] = T(0);
    const index_t tail = m - j - 1;
    // v = (1, a(j+1:m, j)); H_j e_j = e_j - tau v (since vᵗ e_j = 1).
    scal(tail, -tj, cj + j + 1);
    cj[j] = T(1) - tj;
  }
}

template <typename T>
void ormqr_left(Trans trans, ConstView<T> a, const std::vector<T>& tau, MatView<T> c) {
  const index_t m = a.rows;
  const index_t k = static_cast<index_t>(tau.size());
  assert(c.rows == m);

  if (trans == Trans::Yes) {
    // Qᵗ C = H_{k-1} ... H_0 C.
    for (index_t j = 0; j < k; ++j) {
      apply_reflector(m - j, a.col(j) + j + 1, tau[static_cast<std::size_t>(j)],
                      c.block_rows(j, m - j));
    }
  } else {
    // Q C = H_0 ... H_{k-1} C.
    for (index_t j = k - 1; j >= 0; --j) {
      apply_reflector(m - j, a.col(j) + j + 1, tau[static_cast<std::size_t>(j)],
                      c.block_rows(j, m - j));
    }
  }
}

template <typename T>
index_t geqp3_trunc(MatView<T> a, std::vector<index_t>& jpvt, std::vector<T>& tau,
                    T tol, index_t max_rank) {
  const index_t m = a.rows;
  const index_t n = a.cols;
  const index_t kmax = std::min({m, n, std::max<index_t>(max_rank, 0)});
  jpvt.resize(static_cast<std::size_t>(n));
  std::iota(jpvt.begin(), jpvt.end(), index_t{0});
  tau.assign(static_cast<std::size_t>(std::min(m, n)), T(0));

  // Partial column norms with the classic downdate + recompute safeguard.
  std::vector<T> cnorm(static_cast<std::size_t>(n));
  std::vector<T> cnorm_ref(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    cnorm[static_cast<std::size_t>(j)] = nrm2(m, a.col(j));
    cnorm_ref[static_cast<std::size_t>(j)] = cnorm[static_cast<std::size_t>(j)];
  }
  const T tol3z = std::sqrt(std::numeric_limits<T>::epsilon());

  index_t rank = 0;
  for (index_t kk = 0; kk < kmax; ++kk) {
    // Early exit: Frobenius norm of the trailing submatrix <= tol.
    T trailing_sq = T(0);
    for (index_t j = kk; j < n; ++j) {
      const T c = cnorm[static_cast<std::size_t>(j)];
      trailing_sq += c * c;
    }
    if (std::sqrt(trailing_sq) <= tol) break;

    // Pivot: column with largest partial norm.
    index_t piv = kk;
    for (index_t j = kk + 1; j < n; ++j) {
      if (cnorm[static_cast<std::size_t>(j)] > cnorm[static_cast<std::size_t>(piv)]) piv = j;
    }
    if (piv != kk) {
      for (index_t i = 0; i < m; ++i) std::swap(a(i, kk), a(i, piv));
      std::swap(jpvt[static_cast<std::size_t>(kk)], jpvt[static_cast<std::size_t>(piv)]);
      std::swap(cnorm[static_cast<std::size_t>(kk)], cnorm[static_cast<std::size_t>(piv)]);
      std::swap(cnorm_ref[static_cast<std::size_t>(kk)], cnorm_ref[static_cast<std::size_t>(piv)]);
    }

    T* col = a.col(kk) + kk;
    a(kk, kk) = larfg(col[0], m - kk - 1, col + 1, tau[static_cast<std::size_t>(kk)]);
    if (kk + 1 < n) {
      apply_reflector(m - kk, col + 1, tau[static_cast<std::size_t>(kk)],
                      a.sub(kk, kk + 1, m - kk, n - kk - 1));
    }
    ++rank;

    // Downdate partial norms of trailing columns.
    for (index_t j = kk + 1; j < n; ++j) {
      auto& cn = cnorm[static_cast<std::size_t>(j)];
      if (cn == T(0)) continue;
      T temp = std::abs(a(kk, j)) / cn;
      temp = std::max(T(0), (T(1) + temp) * (T(1) - temp));
      const T ratio = cn / cnorm_ref[static_cast<std::size_t>(j)];
      const T temp2 = temp * ratio * ratio;
      if (temp2 <= tol3z) {
        // Cancellation risk: recompute from scratch over the remaining rows.
        cn = (kk + 1 < m) ? nrm2(m - kk - 1, a.col(j) + kk + 1) : T(0);
        cnorm_ref[static_cast<std::size_t>(j)] = cn;
      } else {
        cn *= std::sqrt(temp);
      }
    }
  }
  return rank;
}

#define BLR_INSTANTIATE_QR(T)                                                            \
  template T larfg<T>(T, index_t, T*, T&);                                               \
  template void geqrf<T>(MatView<T>, std::vector<T>&);                                   \
  template void orgqr<T>(MatView<T>, const std::vector<T>&);                             \
  template void ormqr_left<T>(Trans, ConstView<T>, const std::vector<T>&, MatView<T>);   \
  template index_t geqp3_trunc<T>(MatView<T>, std::vector<index_t>&, std::vector<T>&, T, \
                                  index_t);

BLR_INSTANTIATE_QR(float)
BLR_INSTANTIATE_QR(double)

#undef BLR_INSTANTIATE_QR

} // namespace blr::la
