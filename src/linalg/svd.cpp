#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "linalg/blas.hpp"

namespace blr::la {

namespace {

/// One-sided Jacobi on B (m x n, m >= n): orthogonalizes the columns of B by
/// plane rotations, accumulating them into V. On exit B = U·diag(sigma) with
/// orthogonal columns and A = B·Vᵗ.
template <typename T>
void jacobi_orthogonalize(MatView<T> b, MatView<T> v) {
  const index_t m = b.rows;
  const index_t n = b.cols;
  const T eps = std::numeric_limits<T>::epsilon();
  const int max_sweeps = 42;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool rotated = false;
    for (index_t p = 0; p < n - 1; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        T* bp = b.col(p);
        T* bq = b.col(q);
        const T app = nrm2_sq(m, bp);
        const T aqq = nrm2_sq(m, bq);
        const T apq = dot(m, bp, bq);
        if (std::abs(apq) <= eps * std::sqrt(app * aqq) || apq == T(0)) continue;
        rotated = true;

        const T zeta = (aqq - app) / (T(2) * apq);
        const T t = (zeta >= T(0))
                        ? T(1) / (zeta + std::sqrt(T(1) + zeta * zeta))
                        : T(-1) / (-zeta + std::sqrt(T(1) + zeta * zeta));
        const T cs = T(1) / std::sqrt(T(1) + t * t);
        const T sn = cs * t;

        for (index_t i = 0; i < m; ++i) {
          const T bip = bp[i];
          const T biq = bq[i];
          bp[i] = cs * bip - sn * biq;
          bq[i] = sn * bip + cs * biq;
        }
        T* vp = v.col(p);
        T* vq = v.col(q);
        for (index_t i = 0; i < v.rows; ++i) {
          const T vip = vp[i];
          const T viq = vq[i];
          vp[i] = cs * vip - sn * viq;
          vq[i] = sn * vip + cs * viq;
        }
      }
    }
    if (!rotated) break;
  }
}

/// Extract U, sigma from the orthogonalized B and sort everything descending.
template <typename T>
void finalize_svd(Matrix<T>& b, Matrix<T>& v, std::vector<T>& sigma) {
  const index_t m = b.rows();
  const index_t n = b.cols();
  sigma.resize(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    const T s = nrm2(m, b.view().col(j));
    sigma[static_cast<std::size_t>(j)] = s;
    if (s > T(0)) scal(m, T(1) / s, b.view().col(j));
  }
  // Sort by descending singular value (stable permutation of columns).
  std::vector<index_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), index_t{0});
  std::stable_sort(order.begin(), order.end(), [&](index_t i, index_t j) {
    return sigma[static_cast<std::size_t>(i)] > sigma[static_cast<std::size_t>(j)];
  });
  Matrix<T> bs(m, n);
  Matrix<T> vs(v.rows(), n);
  std::vector<T> ss(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    const index_t src = order[static_cast<std::size_t>(j)];
    std::copy_n(b.data() + src * m, m, bs.data() + j * m);
    std::copy_n(v.data() + src * v.rows(), v.rows(), vs.data() + j * v.rows());
    ss[static_cast<std::size_t>(j)] = sigma[static_cast<std::size_t>(src)];
  }
  b = std::move(bs);
  v = std::move(vs);
  sigma = std::move(ss);
}

} // namespace

template <typename T>
void svd(ConstView<T> a, Matrix<T>& u, std::vector<T>& sigma, Matrix<T>& v) {
  const index_t m = a.rows;
  const index_t n = a.cols;
  if (m >= n) {
    u = Matrix<T>(a);  // working copy, becomes U
    v.reshape(n, n);
    set_identity(v.view());
    jacobi_orthogonalize(u.view(), v.view());
    finalize_svd(u, v, sigma);
  } else {
    // SVD of Aᵗ = U'·S·V'ᵗ gives A = V'·S·U'ᵗ.
    Matrix<T> at(n, m);
    transpose(a, at.view());
    Matrix<T> up;  // n x m
    Matrix<T> vp;  // m x m
    svd<T>(at.view(), up, sigma, vp);
    u = std::move(vp);
    v = std::move(up);
  }
}

template <typename T>
std::vector<T> singular_values(ConstView<T> a) {
  Matrix<T> u;
  Matrix<T> v;
  std::vector<T> sigma;
  svd(a, u, sigma, v);
  return sigma;
}

#define BLR_INSTANTIATE_SVD(T)                                                  \
  template void svd<T>(ConstView<T>, Matrix<T>&, std::vector<T>&, Matrix<T>&);  \
  template std::vector<T> singular_values<T>(ConstView<T>);

BLR_INSTANTIATE_SVD(float)
BLR_INSTANTIATE_SVD(double)

#undef BLR_INSTANTIATE_SVD

} // namespace blr::la
