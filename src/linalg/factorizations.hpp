#pragma once

#include <vector>

#include "linalg/blas.hpp"
#include "linalg/matrix.hpp"

namespace blr::la {

/// LU factorization with partial pivoting, in place (LAPACK getrf layout:
/// unit-lower L below the diagonal, U on and above). @p ipiv receives the
/// row swapped with row i at step i.
/// Returns 0 on success, or 1 + the index of the first zero pivot.
template <typename T>
index_t getrf(MatView<T> a, std::vector<index_t>& ipiv);

/// Apply the row interchanges recorded by getrf to @p b (forward order).
template <typename T>
void laswp(MatView<T> b, const std::vector<index_t>& ipiv);

/// LU with partial pivoting and *static pivoting*: pivots whose magnitude
/// falls below @p threshold are replaced by ±threshold (the PaStiX approach
/// for factoring without inter-supernode pivoting). The number of replaced
/// pivots is accumulated into @p replaced. Always succeeds.
template <typename T>
void getrf_static(MatView<T> a, std::vector<index_t>& ipiv, T threshold,
                  index_t& replaced);

/// Cholesky factorization in place on the lower triangle: A = L·Lᵗ.
/// The strict upper triangle is not referenced.
/// Returns 0 on success, or 1 + the index of the first non-positive pivot.
template <typename T>
index_t potrf(MatView<T> a);

/// Solve A X = B given the getrf output (factors + pivots); B is overwritten.
template <typename T>
void getrs(ConstView<T> lu, const std::vector<index_t>& ipiv, MatView<T> b);

/// Solve A X = B given the potrf output; B is overwritten.
template <typename T>
void potrs(ConstView<T> l, MatView<T> b);

/// Invert a factored (getrf) square matrix into @p inv. Convenience for tests.
template <typename T>
void lu_inverse(ConstView<T> lu, const std::vector<index_t>& ipiv, MatView<T> inv);

} // namespace blr::la
