// Native-backend AVX-512 tier. This TU (and only this TU) is compiled with
// -mavx512f -mavx512dq -mavx512vl -mavx512bw -ffp-contract=off (see
// src/linalg/CMakeLists.txt); it is selected at runtime by CPUID and must
// never be entered on a CPU without AVX-512F.

#include <algorithm>
#include <cstddef>

#include "linalg/kernels_isa.hpp"

#define BLR_ISA_ACCESSOR isa_avx512
#define BLR_ISA_NAME "avx512"
#define BLR_ISA_ENUM NativeIsa::Avx512
#include "linalg/kernels_isa_body.inc"
