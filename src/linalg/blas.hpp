#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"

namespace blr::la {

enum class Trans { No, Yes };
enum class Side { Left, Right };
enum class Uplo { Lower, Upper };
enum class Diag { NonUnit, Unit };

/// General matrix-matrix multiply: C = alpha * op(A) * op(B) + beta * C.
/// Sequential. op(X) is X or Xᵗ according to the flags. Dispatches through
/// the selected kernel backend (backend.hpp): Reference runs the loop
/// nests; Native routes problems past a small size threshold through the
/// packed, register-blocked microkernel of the CPUID-selected ISA tier (all
/// four transpose cases) and tiny ones through the same loop nests. Every
/// backend produces bit-identical results.
template <typename T>
void gemm(Trans trans_a, Trans trans_b, T alpha, ConstView<T> a, ConstView<T> b,
          T beta, MatView<T> c);

/// The plain gemm loop nests — the Reference backend's implementation
/// (la::gemm with backend Reference lands here), also used directly as the
/// perfsmoke baseline the packed path is measured against.
template <typename T>
void gemm_unpacked(Trans trans_a, Trans trans_b, T alpha, ConstView<T> a,
                   ConstView<T> b, T beta, MatView<T> c);

// ---- Pack-cache instrumentation ------------------------------------------
//
// The packed gemm packs op(A) / op(B) into aligned, per-thread buffers. The
// buffers persist across calls (no per-call allocation; each grows to the
// largest operand its thread has packed and is trimmed back once it exceeds
// a fixed cap when the outermost PackBatchScope on that thread closes, so
// long-lived pool workers do not retain oversized buffers forever). Inside
// a PackBatchScope a repeated operand (same pointer/shape/transpose/scale)
// is recognised and not re-packed — the common case being one triangular
// panel or low-rank factor shared by every entry of a kernel batch. Outside
// a scope content reuse is disabled, because the engine may mutate a tile
// between two eager calls through the same pointer.

struct PackCacheStats {
  std::uint64_t hits = 0;    ///< packs skipped: operand already in the cache
  std::uint64_t misses = 0;  ///< operands actually packed
  std::uint64_t bytes = 0;   ///< bytes currently held by all pack buffers
};

/// Process-wide pack counters (aggregated over every thread's cache).
PackCacheStats pack_cache_stats();
void reset_pack_cache_stats();

/// RAII guard enabling pack-cache *content* reuse on this thread for the
/// duration of one batched kernel invocation.
///
/// Reuse is opt-in per operand: only pointers listed in `stable` may hit
/// the cache. A (pointer, shape, ld, trans, scale) key alone cannot prove a
/// packed image is current — kernels allocate per-call heap temporaries,
/// and the allocator can recycle a freed temporary at the same address with
/// the same shape for the next batch entry, which would silently resurrect
/// the previous entry's packed image. The batch layer therefore registers
/// exactly the operand buffers it owns for the whole chunk (tile factors /
/// dense storage, alive and unmutated until the batched invocation
/// returns); everything else is re-packed unconditionally. Scopes do not
/// nest meaningfully: the innermost one wins.
class PackBatchScope {
public:
  /// `stable[0..count)` are the operand base pointers whose contents are
  /// guaranteed not to change (and not to be freed) while this scope is
  /// alive. Pass (nullptr, 0) for a scope with no content reuse.
  PackBatchScope(const void* const* stable, std::size_t count);
  ~PackBatchScope();
  PackBatchScope(const PackBatchScope&) = delete;
  PackBatchScope& operator=(const PackBatchScope&) = delete;

  /// True when `p` was registered as stable with the active scope.
  [[nodiscard]] bool contains(const void* p) const;

private:
  std::uint64_t prev_;
  const PackBatchScope* prev_scope_;
  std::vector<const void*> stable_;  // sorted for binary search
};

/// Triangular solve with multiple right-hand sides:
///   Side::Left : op(A) * X = alpha * B,  X overwrites B
///   Side::Right: X * op(A) = alpha * B,  X overwrites B
/// A is triangular per (uplo, diag); only the referenced triangle is read.
template <typename T>
void trsm(Side side, Uplo uplo, Trans trans, Diag diag, T alpha, ConstView<T> a,
          MatView<T> b);

/// Symmetric rank-k update on one triangle:
///   C = beta * C + alpha * A * Aᵗ (trans == No)
///   C = beta * C + alpha * Aᵗ * A (trans == Yes)
/// Only the (uplo) triangle of C is referenced and updated.
template <typename T>
void syrk(Uplo uplo, Trans trans, T alpha, ConstView<T> a, T beta, MatView<T> c);

/// Matrix-vector multiply: y = alpha * op(A) * x + beta * y.
template <typename T>
void gemv(Trans trans, T alpha, ConstView<T> a, const T* x, T beta, T* y);

/// Triangular matrix-vector solve: op(A) x = b, x overwrites b.
template <typename T>
void trsv(Uplo uplo, Trans trans, Diag diag, ConstView<T> a, T* b);

// ---- Level-1 style helpers over raw ranges -------------------------------

template <typename T>
T dot(index_t n, const T* x, const T* y) {
  T s = T(0);
  for (index_t i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

template <typename T>
void axpy(index_t n, T alpha, const T* x, T* y) {
  for (index_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

template <typename T>
void scal(index_t n, T alpha, T* x) {
  for (index_t i = 0; i < n; ++i) x[i] *= alpha;
}

template <typename T>
T nrm2_sq(index_t n, const T* x) {
  T s = T(0);
  for (index_t i = 0; i < n; ++i) s += x[i] * x[i];
  return s;
}

template <typename T>
T nrm2(index_t n, const T* x) {
  return std::sqrt(nrm2_sq(n, x));
}

} // namespace blr::la
