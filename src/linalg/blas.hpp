#pragma once

#include <cmath>

#include "linalg/matrix.hpp"

namespace blr::la {

enum class Trans { No, Yes };
enum class Side { Left, Right };
enum class Uplo { Lower, Upper };
enum class Diag { NonUnit, Unit };

/// General matrix-matrix multiply: C = alpha * op(A) * op(B) + beta * C.
/// Sequential, cache-blocked. op(X) is X or Xᵗ according to the flags.
template <typename T>
void gemm(Trans trans_a, Trans trans_b, T alpha, ConstView<T> a, ConstView<T> b,
          T beta, MatView<T> c);

/// Triangular solve with multiple right-hand sides:
///   Side::Left : op(A) * X = alpha * B,  X overwrites B
///   Side::Right: X * op(A) = alpha * B,  X overwrites B
/// A is triangular per (uplo, diag); only the referenced triangle is read.
template <typename T>
void trsm(Side side, Uplo uplo, Trans trans, Diag diag, T alpha, ConstView<T> a,
          MatView<T> b);

/// Symmetric rank-k update on one triangle:
///   C = beta * C + alpha * A * Aᵗ (trans == No)
///   C = beta * C + alpha * Aᵗ * A (trans == Yes)
/// Only the (uplo) triangle of C is referenced and updated.
template <typename T>
void syrk(Uplo uplo, Trans trans, T alpha, ConstView<T> a, T beta, MatView<T> c);

/// Matrix-vector multiply: y = alpha * op(A) * x + beta * y.
template <typename T>
void gemv(Trans trans, T alpha, ConstView<T> a, const T* x, T beta, T* y);

/// Triangular matrix-vector solve: op(A) x = b, x overwrites b.
template <typename T>
void trsv(Uplo uplo, Trans trans, Diag diag, ConstView<T> a, T* b);

// ---- Level-1 style helpers over raw ranges -------------------------------

template <typename T>
T dot(index_t n, const T* x, const T* y) {
  T s = T(0);
  for (index_t i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

template <typename T>
void axpy(index_t n, T alpha, const T* x, T* y) {
  for (index_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

template <typename T>
void scal(index_t n, T alpha, T* x) {
  for (index_t i = 0; i < n; ++i) x[i] *= alpha;
}

template <typename T>
T nrm2_sq(index_t n, const T* x) {
  T s = T(0);
  for (index_t i = 0; i < n; ++i) s += x[i] * x[i];
  return s;
}

template <typename T>
T nrm2(index_t n, const T* x) {
  return std::sqrt(nrm2_sq(n, x));
}

} // namespace blr::la
