#pragma once

#include <vector>

#include "linalg/blas.hpp"
#include "linalg/matrix.hpp"

namespace blr::la {

/// Householder QR in place (LAPACK geqrf layout): R in the upper triangle,
/// the Householder vectors below the diagonal (implicit unit leading 1),
/// scalar factors in @p tau.
template <typename T>
void geqrf(MatView<T> a, std::vector<T>& tau);

/// Overwrite the factored matrix (m x k columns of Householder vectors) with
/// the thin orthonormal factor Q (m x k).
template <typename T>
void orgqr(MatView<T> a, const std::vector<T>& tau);

/// Apply Q (or Qᵗ) from a geqrf factorization to C from the left:
/// C := op(Q) * C, where Q is held as @p k Householder reflectors in @p a.
template <typename T>
void ormqr_left(Trans trans, ConstView<T> a, const std::vector<T>& tau, MatView<T> c);

/// Truncated column-pivoted Householder QR (the RRQR compression kernel,
/// LAPACK xGEQP3-style with the early exit of §3.1.2 of the paper).
///
/// Factors A·P = Q·R but stops as soon as the Frobenius norm of the trailing
/// submatrix drops to @p tol (absolute), or @p max_rank reflectors have been
/// applied. On exit the first r columns of @p a hold the reflectors/R rows;
/// @p jpvt[j] is the original index of the column moved to position j
/// (full-length permutation over all columns).
///
/// Returns the numerical rank r (0 <= r <= min(max_rank, min(m,n))).
template <typename T>
index_t geqp3_trunc(MatView<T> a, std::vector<index_t>& jpvt, std::vector<T>& tau,
                    T tol, index_t max_rank);

/// Generate and apply a single Householder reflector: given the vector
/// (alpha, x), produces beta, tau and overwrites x with the reflector tail
/// such that H·(alpha, x)ᵗ = (beta, 0)ᵗ. Exposed for testing.
template <typename T>
T larfg(T alpha, index_t n, T* x, T& tau);

} // namespace blr::la
