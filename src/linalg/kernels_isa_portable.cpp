// Native-backend baseline tier: the kernel bodies compiled with the
// project's default flags only, so this tier runs on any CPU the binary
// does. Always built — the Native backend can fall back to it everywhere.

#include <algorithm>
#include <cstddef>

#include "linalg/kernels_isa.hpp"

#define BLR_ISA_ACCESSOR isa_portable
#define BLR_ISA_NAME "portable"
#define BLR_ISA_ENUM NativeIsa::Portable
#include "linalg/kernels_isa_body.inc"
