#pragma once

#include <type_traits>

#include "common/types.hpp"
#include "linalg/backend.hpp"

namespace blr::la::detail {

// ---- Packed-gemm blocking geometry ---------------------------------------
//
// Shared between the packing code (blas.cpp, baseline flags) and the per-ISA
// microkernel translation units: both sides must agree on the panel layout.
// Everything here is constexpr — no code is generated from this header, so
// including it from an AVX-compiled TU cannot leak vector instructions into
// the portable path through a shared (comdat) symbol.

constexpr index_t kKC = 256;  ///< k-block: packed B panel rows (== the loop nests' k-blocking)
constexpr index_t kMC = 128;  ///< m-block: rows of the resident packed A block

template <typename T>
struct MicroTile;  // MR×NR register block per element type
template <>
struct MicroTile<double> {
  static constexpr index_t MR = 8;  // one AVX-512 lane (two AVX2 lanes)
  static constexpr index_t NR = 4;
};
template <>
struct MicroTile<float> {
  static constexpr index_t MR = 16;
  static constexpr index_t NR = 4;
};

constexpr index_t round_up(index_t x, index_t step) {
  return ((x + step - 1) / step) * step;
}

// ---- Per-ISA kernel tables -----------------------------------------------
//
// One table per ISA tier of the Native backend. Each tier is one dedicated
// translation unit compiling the same kernel bodies (kernels_isa_body.inc)
// with that tier's arch flags; the bodies live in an anonymous namespace so
// every tier gets its own internal-linkage copy — the linker can never
// substitute one tier's code for another's. All tiers are built with
// -ffp-contract=off and share one canonical per-element accumulation order
// with the Reference loop nests, so results are bit-identical across tiers
// and backends (the memcmp contract in backend.hpp).
//
// The signatures are raw-pointer C style on purpose: the ISA TUs must not
// instantiate any inline function from shared headers (same comdat hazard).

struct IsaKernels {
  const char* name = nullptr;
  NativeIsa isa = NativeIsa::Portable;

  /// C += packedA · packedB over images laid out by pack_a/pack_b in
  /// blas.cpp (kKC×kMC blocked, MR-row / NR-column zero-padded panels,
  /// alpha folded into packedB).
  void (*gemm_packed_d)(index_t m, index_t n, index_t kk, const double* ap,
                        const double* bp, double* c, index_t ldc) = nullptr;
  void (*gemm_packed_f)(index_t m, index_t n, index_t kk, const float* ap,
                        const float* bp, float* c, index_t ldc) = nullptr;

  /// Triangular substitution, alpha already applied to B by the caller.
  /// Flags are 0/1 ints: side_right, upper, trans, unit. A is m×m (left) or
  /// n×n (right); B is m×n.
  void (*trsm_d)(int side_right, int upper, int trans, int unit,
                 const double* a, index_t lda, double* b, index_t ldb,
                 index_t m, index_t n) = nullptr;
  void (*trsm_f)(int side_right, int upper, int trans, int unit,
                 const float* a, index_t lda, float* b, index_t ldb, index_t m,
                 index_t n) = nullptr;

  /// C(triangle) += alpha * A·Aᵗ (trans == 0) or alpha * Aᵗ·A (trans == 1);
  /// the caller has already scaled the triangle by beta. C is n×n.
  void (*syrk_d)(int upper, int trans, double alpha, const double* a,
                 index_t lda, index_t a_rows, index_t a_cols, double* c,
                 index_t ldc, index_t n) = nullptr;
  void (*syrk_f)(int upper, int trans, float alpha, const float* a,
                 index_t lda, index_t a_rows, index_t a_cols, float* c,
                 index_t ldc, index_t n) = nullptr;

  template <typename T>
  [[nodiscard]] auto gemm_packed() const {
    if constexpr (std::is_same_v<T, double>) return gemm_packed_d;
    else return gemm_packed_f;
  }
  template <typename T>
  [[nodiscard]] auto trsm() const {
    if constexpr (std::is_same_v<T, double>) return trsm_d;
    else return trsm_f;
  }
  template <typename T>
  [[nodiscard]] auto syrk() const {
    if constexpr (std::is_same_v<T, double>) return syrk_d;
    else return syrk_f;
  }
};

/// The always-compiled baseline tier (no arch flags — runs anywhere the
/// binary does). Also serves as the Reference backend's trsm/syrk body: it
/// is literally the pre-backend portable code, moved.
const IsaKernels& isa_portable();
#if defined(BLR_HAVE_ISA_AVX2)
const IsaKernels& isa_avx2();
#endif
#if defined(BLR_HAVE_ISA_AVX512)
const IsaKernels& isa_avx512();
#endif

/// The tier selected by native_isa() for this process (backend.cpp).
const IsaKernels& native_kernels();

} // namespace blr::la::detail
