#pragma once

#include "linalg/matrix.hpp"

namespace blr::la {

/// Frobenius norm of a (possibly strided) view.
template <typename T>
T norm_fro(ConstView<T> a);

/// Largest absolute entry.
template <typename T>
T norm_max(ConstView<T> a);

/// 1-norm (max absolute column sum).
template <typename T>
T norm_one(ConstView<T> a);

/// Frobenius norm of (A - B); shapes must match.
template <typename T>
T diff_fro(ConstView<T> a, ConstView<T> b);

} // namespace blr::la
