#include "linalg/backend.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <string>

#include "common/error.hpp"
#include "linalg/kernels_isa.hpp"

namespace blr::la {

namespace {

// Process-global selections. -1 = not yet resolved/detected; both resolve
// lazily on first use and can be reset by redetect_backend() (tests flip the
// environment and re-detect).
std::atomic<int> g_backend{-1};
std::atomic<int> g_native_isa{-1};

std::string env_lower(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return {};
  std::string s(v);
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

bool cpu_supports(NativeIsa isa) {
#if defined(__x86_64__) || defined(__i386__)
  switch (isa) {
    case NativeIsa::Portable: return true;
    case NativeIsa::Avx2: return __builtin_cpu_supports("avx2") != 0;
    case NativeIsa::Avx512: return __builtin_cpu_supports("avx512f") != 0;
    case NativeIsa::kCount: break;
  }
  return false;
#else
  return isa == NativeIsa::Portable;
#endif
}

/// BLR_NATIVE_ISA clamps the detected tier from above: "portable" forces the
/// baseline tier even on capable CPUs (the detection-fallback test path),
/// "avx2" rules out AVX-512, "auto"/unset allows everything.
NativeIsa isa_clamp_from_env() {
  const std::string v = env_lower("BLR_NATIVE_ISA");
  if (v.empty() || v == "auto") return NativeIsa::Avx512;
  if (v == "portable") return NativeIsa::Portable;
  if (v == "avx2") return NativeIsa::Avx2;
  if (v == "avx512") return NativeIsa::Avx512;
  throw Error("BLR_NATIVE_ISA: unrecognized value '" + v +
              "' (expected auto|portable|avx2|avx512)");
}

NativeIsa detect_native_isa() {
  const NativeIsa clamp = isa_clamp_from_env();
  for (NativeIsa isa : {NativeIsa::Avx512, NativeIsa::Avx2}) {
    if (static_cast<int>(isa) > static_cast<int>(clamp)) continue;
    if (native_isa_compiled(isa) && cpu_supports(isa)) return isa;
  }
  return NativeIsa::Portable;
}

} // namespace

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::Reference: return "reference";
    case Backend::Native: return "native";
    case Backend::kCount: break;
  }
  return "?";
}

const char* backend_choice_name(BackendChoice c) {
  switch (c) {
    case BackendChoice::Auto: return "auto";
    case BackendChoice::Reference: return "reference";
    case BackendChoice::Native: return "native";
  }
  return "?";
}

const char* native_isa_name(NativeIsa isa) {
  switch (isa) {
    case NativeIsa::Portable: return "portable";
    case NativeIsa::Avx2: return "avx2";
    case NativeIsa::Avx512: return "avx512";
    case NativeIsa::kCount: break;
  }
  return "?";
}

bool native_isa_compiled(NativeIsa isa) {
  switch (isa) {
    case NativeIsa::Portable: return true;
    case NativeIsa::Avx2:
#if defined(BLR_HAVE_ISA_AVX2)
      return true;
#else
      return false;
#endif
    case NativeIsa::Avx512:
#if defined(BLR_HAVE_ISA_AVX512)
      return true;
#else
      return false;
#endif
    case NativeIsa::kCount: break;
  }
  return false;
}

bool native_isa_supported(NativeIsa isa) {
  return native_isa_compiled(isa) && cpu_supports(isa) &&
         static_cast<int>(isa) <= static_cast<int>(isa_clamp_from_env());
}

NativeIsa native_isa() {
  int v = g_native_isa.load(std::memory_order_acquire);
  if (v < 0) {
    v = static_cast<int>(detect_native_isa());
    g_native_isa.store(v, std::memory_order_release);
  }
  return static_cast<NativeIsa>(v);
}

Backend detect_best_backend() {
  // The Native backend always has a runnable tier (Portable is always
  // compiled in), so detection only decides WHICH tier — done in
  // native_isa() — never whether Native is available.
  (void)native_isa();
  return Backend::Native;
}

Backend resolve_backend(BackendChoice choice) {
  const std::string env = env_lower("BLR_BACKEND");
  if (!env.empty()) {
    if (env == "auto") choice = BackendChoice::Auto;
    else if (env == "reference") choice = BackendChoice::Reference;
    else if (env == "native") choice = BackendChoice::Native;
    else
      throw Error("BLR_BACKEND: unrecognized value '" + env +
                  "' (expected auto|reference|native)");
  }
  switch (choice) {
    case BackendChoice::Reference: return Backend::Reference;
    case BackendChoice::Native: return Backend::Native;
    case BackendChoice::Auto: break;
  }
  return detect_best_backend();
}

Backend current_backend() {
  const int v = g_backend.load(std::memory_order_acquire);
  if (v >= 0) return static_cast<Backend>(v);
  // Concurrent first calls race benignly: both resolve the same value.
  const Backend b = resolve_backend(BackendChoice::Auto);
  g_backend.store(static_cast<int>(b), std::memory_order_release);
  return b;
}

void set_backend(Backend b) {
  g_backend.store(static_cast<int>(b), std::memory_order_release);
}

void redetect_backend() {
  g_native_isa.store(-1, std::memory_order_release);
  g_backend.store(-1, std::memory_order_release);
}

namespace detail {

const IsaKernels& native_kernels() {
  switch (native_isa()) {
#if defined(BLR_HAVE_ISA_AVX512)
    case NativeIsa::Avx512: return isa_avx512();
#endif
#if defined(BLR_HAVE_ISA_AVX2)
    case NativeIsa::Avx2: return isa_avx2();
#endif
    default: return isa_portable();
  }
}

} // namespace detail

} // namespace blr::la
