#pragma once

#include <algorithm>
#include <cassert>
#include <type_traits>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace blr::la {

/// Non-owning view of a column-major matrix (data + leading dimension).
/// T may be const-qualified for read-only views.
template <typename T>
struct MatView {
  T* data = nullptr;
  index_t rows = 0;
  index_t cols = 0;
  index_t ld = 0;  ///< leading dimension (stride between columns), ld >= rows

  MatView() = default;
  MatView(T* d, index_t r, index_t c, index_t l) : data(d), rows(r), cols(c), ld(l) {
    assert(l >= r);
  }
  MatView(T* d, index_t r, index_t c) : MatView(d, r, c, r) {}

  T& operator()(index_t i, index_t j) const {
    assert(i >= 0 && i < rows && j >= 0 && j < cols);
    return data[i + j * ld];
  }

  [[nodiscard]] T* col(index_t j) const { return data + j * ld; }

  /// Sub-view of rows [i, i+r) and columns [j, j+c).
  [[nodiscard]] MatView sub(index_t i, index_t j, index_t r, index_t c) const {
    assert(i >= 0 && j >= 0 && r >= 0 && c >= 0 && i + r <= rows && j + c <= cols);
    return MatView(data + i + j * ld, r, c, ld);
  }

  [[nodiscard]] MatView block_rows(index_t i, index_t r) const { return sub(i, 0, r, cols); }
  [[nodiscard]] MatView block_cols(index_t j, index_t c) const { return sub(0, j, rows, c); }

  [[nodiscard]] bool empty() const { return rows == 0 || cols == 0; }
  [[nodiscard]] index_t size() const { return rows * cols; }
  [[nodiscard]] bool contiguous() const { return ld == rows; }

  /// Implicit widening to a const view.
  operator MatView<const T>() const
    requires(!std::is_const_v<T>)
  {
    return MatView<const T>(data, rows, cols, ld);
  }
};

template <typename T>
using ConstView = MatView<const T>;

/// Owning column-major dense matrix.
template <typename T>
class Matrix {
public:
  Matrix() = default;
  Matrix(index_t rows, index_t cols)
      : rows_(rows), cols_(cols),
        storage_(static_cast<std::size_t>(rows * cols), T(0)) {
    BLR_CHECK(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
  }

  /// Deep copy from any view (compacts the leading dimension).
  explicit Matrix(ConstView<T> v) : Matrix(v.rows, v.cols) {
    assign(v);
  }

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] index_t ld() const { return rows_; }
  [[nodiscard]] index_t size() const { return rows_ * cols_; }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }

  T& operator()(index_t i, index_t j) {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return storage_[static_cast<std::size_t>(i + j * rows_)];
  }
  const T& operator()(index_t i, index_t j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return storage_[static_cast<std::size_t>(i + j * rows_)];
  }

  [[nodiscard]] T* data() { return storage_.data(); }
  [[nodiscard]] const T* data() const { return storage_.data(); }

  [[nodiscard]] MatView<T> view() { return MatView<T>(data(), rows_, cols_, rows_); }
  [[nodiscard]] ConstView<T> view() const { return ConstView<T>(data(), rows_, cols_, rows_); }
  [[nodiscard]] ConstView<T> cview() const { return view(); }

  operator MatView<T>() { return view(); }
  operator ConstView<T>() const { return view(); }

  [[nodiscard]] MatView<T> sub(index_t i, index_t j, index_t r, index_t c) {
    return view().sub(i, j, r, c);
  }
  [[nodiscard]] ConstView<T> sub(index_t i, index_t j, index_t r, index_t c) const {
    return view().sub(i, j, r, c);
  }

  void set_zero() { std::fill(storage_.begin(), storage_.end(), T(0)); }

  /// Copies the contents of @p v (dimensions must match).
  void assign(ConstView<T> v) {
    BLR_CHECK(v.rows == rows_ && v.cols == cols_, "assign: shape mismatch");
    for (index_t j = 0; j < cols_; ++j)
      std::copy_n(v.col(j), rows_, data() + j * rows_);
  }

  /// Reallocate to new dimensions; contents are zeroed.
  void reshape(index_t rows, index_t cols) {
    rows_ = rows;
    cols_ = cols;
    storage_.assign(static_cast<std::size_t>(rows * cols), T(0));
  }

  [[nodiscard]] std::size_t bytes() const { return storage_.size() * sizeof(T); }

private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<T> storage_;
};

/// Copy src into dst (shapes must match; strides may differ).
template <typename T>
void copy(ConstView<T> src, MatView<T> dst) {
  assert(src.rows == dst.rows && src.cols == dst.cols);
  for (index_t j = 0; j < src.cols; ++j)
    std::copy_n(src.col(j), src.rows, dst.col(j));
}

/// Set every entry of v to value.
template <typename T>
void fill(MatView<T> v, T value) {
  for (index_t j = 0; j < v.cols; ++j)
    std::fill_n(v.col(j), v.rows, value);
}

/// Set v to the identity (rectangular: ones on the main diagonal).
template <typename T>
void set_identity(MatView<T> v) {
  fill(v, T(0));
  const index_t n = std::min(v.rows, v.cols);
  for (index_t i = 0; i < n; ++i) v(i, i) = T(1);
}

/// Out-of-place transpose: dst = srcᵗ.
template <typename T>
void transpose(ConstView<T> src, MatView<T> dst) {
  assert(src.rows == dst.cols && src.cols == dst.rows);
  for (index_t j = 0; j < src.cols; ++j)
    for (index_t i = 0; i < src.rows; ++i) dst(j, i) = src(i, j);
}

/// Element-converting copy between storage precisions (shapes must match).
/// fp64 → fp32 rounds to nearest (the demotion of the mixed-precision tile
/// storage); fp32 → fp64 is exact (the promotion the kernels apply before
/// computing in double).
template <typename Src, typename Dst>
void convert(ConstView<Src> src, MatView<Dst> dst) {
  assert(src.rows == dst.rows && src.cols == dst.cols);
  for (index_t j = 0; j < src.cols; ++j) {
    const Src* s = src.col(j);
    Dst* d = dst.col(j);
    for (index_t i = 0; i < src.rows; ++i) d[i] = static_cast<Dst>(s[i]);
  }
}

using DMatrix = Matrix<real_t>;
using DView = MatView<real_t>;
using DConstView = ConstView<real_t>;

/// Single-precision storage used by mixed-precision low-rank tiles. All
/// arithmetic stays in real_t (double): fp32 buffers only ever hold data at
/// rest and are promoted via la::convert before entering a kernel.
using single_t = float;
using SMatrix = Matrix<single_t>;
using SView = MatView<single_t>;
using SConstView = ConstView<single_t>;

} // namespace blr::la
