// Native-backend AVX2 tier. This TU (and only this TU) is compiled with
// -mavx2 -ffp-contract=off (see src/linalg/CMakeLists.txt); it is selected
// at runtime by CPUID and must never be entered on a CPU without AVX2.

#include <algorithm>
#include <cstddef>

#include "linalg/kernels_isa.hpp"

#define BLR_ISA_ACCESSOR isa_avx2
#define BLR_ISA_NAME "avx2"
#define BLR_ISA_ENUM NativeIsa::Avx2
#include "linalg/kernels_isa_body.inc"
