#pragma once

#include <cmath>
#include <limits>

#include "common/prng.hpp"
#include "linalg/blas.hpp"
#include "linalg/matrix.hpp"

namespace blr::la {

/// Fill a view with i.i.d. standard normal entries.
template <typename T>
void random_normal(MatView<T> a, Prng& rng) {
  for (index_t j = 0; j < a.cols; ++j)
    for (index_t i = 0; i < a.rows; ++i) a(i, j) = static_cast<T>(rng.normal());
}

/// Random m x n matrix of exact rank r (product of two Gaussian factors).
template <typename T>
Matrix<T> random_rank_k(index_t m, index_t n, index_t r, Prng& rng) {
  Matrix<T> x(m, r);
  Matrix<T> y(n, r);
  random_normal(x.view(), rng);
  random_normal(y.view(), rng);
  Matrix<T> a(m, n);
  gemm(Trans::No, Trans::Yes, T(1), x.cview(), y.cview(), T(0), a.view());
  return a;
}

/// Random m x n matrix with geometrically decaying singular values
/// sigma_k = decay^k — the spectrum shape of the long-distance interaction
/// blocks the paper compresses.
template <typename T>
Matrix<T> random_decaying(index_t m, index_t n, T decay, Prng& rng) {
  const index_t k = std::min(m, n);
  Matrix<T> a(m, n);
  T scale = T(1);
  // Sum of rank-1 Gaussian outer products with decaying weights: yields a
  // matrix whose singular values decay at the prescribed geometric rate
  // (up to small Gaussian-mixing factors), which is all the compression
  // kernels care about.
  Matrix<T> x(m, 1);
  Matrix<T> y(n, 1);
  for (index_t p = 0; p < k; ++p) {
    random_normal(x.view(), rng);
    random_normal(y.view(), rng);
    gemm(Trans::No, Trans::Yes, scale, x.cview(), y.cview(), T(1), a.view());
    scale *= decay;
    if (scale < std::numeric_limits<T>::min() * T(1e6)) break;
  }
  return a;
}

/// Random symmetric positive definite n x n matrix: Aᵗ·A + n·I.
template <typename T>
Matrix<T> random_spd(index_t n, Prng& rng) {
  Matrix<T> g(n, n);
  random_normal(g.view(), rng);
  Matrix<T> a(n, n);
  gemm(Trans::Yes, Trans::No, T(1), g.cview(), g.cview(), T(0), a.view());
  for (index_t i = 0; i < n; ++i) a(i, i) += static_cast<T>(n);
  return a;
}

/// Random well-conditioned square matrix (Gaussian + dominant diagonal).
template <typename T>
Matrix<T> random_diagdom(index_t n, Prng& rng) {
  Matrix<T> a(n, n);
  random_normal(a.view(), rng);
  for (index_t i = 0; i < n; ++i) a(i, i) += static_cast<T>(2 * n);
  return a;
}

} // namespace blr::la
