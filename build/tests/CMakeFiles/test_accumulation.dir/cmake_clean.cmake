file(REMOVE_RECURSE
  "CMakeFiles/test_accumulation.dir/test_accumulation.cpp.o"
  "CMakeFiles/test_accumulation.dir/test_accumulation.cpp.o.d"
  "test_accumulation"
  "test_accumulation.pdb"
  "test_accumulation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accumulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
