# Empty compiler generated dependencies file for test_accumulation.
# This may be replaced when dependencies are built.
