file(REMOVE_RECURSE
  "CMakeFiles/test_amalgamation.dir/test_amalgamation.cpp.o"
  "CMakeFiles/test_amalgamation.dir/test_amalgamation.cpp.o.d"
  "test_amalgamation"
  "test_amalgamation.pdb"
  "test_amalgamation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_amalgamation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
