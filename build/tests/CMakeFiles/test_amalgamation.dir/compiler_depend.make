# Empty compiler generated dependencies file for test_amalgamation.
# This may be replaced when dependencies are built.
