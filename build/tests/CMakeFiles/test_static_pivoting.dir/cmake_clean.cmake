file(REMOVE_RECURSE
  "CMakeFiles/test_static_pivoting.dir/test_static_pivoting.cpp.o"
  "CMakeFiles/test_static_pivoting.dir/test_static_pivoting.cpp.o.d"
  "test_static_pivoting"
  "test_static_pivoting.pdb"
  "test_static_pivoting[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_static_pivoting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
