# Empty dependencies file for test_static_pivoting.
# This may be replaced when dependencies are built.
