file(REMOVE_RECURSE
  "CMakeFiles/test_solver_integration.dir/test_solver_integration.cpp.o"
  "CMakeFiles/test_solver_integration.dir/test_solver_integration.cpp.o.d"
  "test_solver_integration"
  "test_solver_integration.pdb"
  "test_solver_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
