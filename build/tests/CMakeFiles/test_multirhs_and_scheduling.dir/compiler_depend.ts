# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for test_multirhs_and_scheduling.
