file(REMOVE_RECURSE
  "CMakeFiles/test_multirhs_and_scheduling.dir/test_multirhs_and_scheduling.cpp.o"
  "CMakeFiles/test_multirhs_and_scheduling.dir/test_multirhs_and_scheduling.cpp.o.d"
  "test_multirhs_and_scheduling"
  "test_multirhs_and_scheduling.pdb"
  "test_multirhs_and_scheduling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multirhs_and_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
