# Empty dependencies file for test_multirhs_and_scheduling.
# This may be replaced when dependencies are built.
