file(REMOVE_RECURSE
  "CMakeFiles/test_linalg_typed.dir/test_linalg_typed.cpp.o"
  "CMakeFiles/test_linalg_typed.dir/test_linalg_typed.cpp.o.d"
  "test_linalg_typed"
  "test_linalg_typed.pdb"
  "test_linalg_typed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linalg_typed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
