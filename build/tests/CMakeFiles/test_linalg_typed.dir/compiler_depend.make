# Empty compiler generated dependencies file for test_linalg_typed.
# This may be replaced when dependencies are built.
