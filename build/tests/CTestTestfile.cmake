# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_blas[1]_include.cmake")
include("/root/repo/build/tests/test_factorizations[1]_include.cmake")
include("/root/repo/build/tests/test_qr[1]_include.cmake")
include("/root/repo/build/tests/test_svd[1]_include.cmake")
include("/root/repo/build/tests/test_sparse[1]_include.cmake")
include("/root/repo/build/tests/test_generators[1]_include.cmake")
include("/root/repo/build/tests/test_ordering[1]_include.cmake")
include("/root/repo/build/tests/test_symbolic[1]_include.cmake")
include("/root/repo/build/tests/test_compression[1]_include.cmake")
include("/root/repo/build/tests/test_lr_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_numeric[1]_include.cmake")
include("/root/repo/build/tests/test_refinement[1]_include.cmake")
include("/root/repo/build/tests/test_solver_integration[1]_include.cmake")
include("/root/repo/build/tests/test_amalgamation[1]_include.cmake")
include("/root/repo/build/tests/test_multirhs_and_scheduling[1]_include.cmake")
include("/root/repo/build/tests/test_static_pivoting[1]_include.cmake")
include("/root/repo/build/tests/test_linalg_typed[1]_include.cmake")
include("/root/repo/build/tests/test_accumulation[1]_include.cmake")
include("/root/repo/build/tests/test_random_graphs[1]_include.cmake")
