# Empty dependencies file for bench_table2_costs.
# This may be replaced when dependencies are built.
