file(REMOVE_RECURSE
  "CMakeFiles/bench_symbolic_structure.dir/bench_symbolic_structure.cpp.o"
  "CMakeFiles/bench_symbolic_structure.dir/bench_symbolic_structure.cpp.o.d"
  "bench_symbolic_structure"
  "bench_symbolic_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_symbolic_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
