# Empty compiler generated dependencies file for bench_symbolic_structure.
# This may be replaced when dependencies are built.
