# Empty compiler generated dependencies file for rank_study.
# This may be replaced when dependencies are built.
