file(REMOVE_RECURSE
  "CMakeFiles/rank_study.dir/rank_study.cpp.o"
  "CMakeFiles/rank_study.dir/rank_study.cpp.o.d"
  "rank_study"
  "rank_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rank_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
