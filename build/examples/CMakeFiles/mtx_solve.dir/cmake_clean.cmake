file(REMOVE_RECURSE
  "CMakeFiles/mtx_solve.dir/mtx_solve.cpp.o"
  "CMakeFiles/mtx_solve.dir/mtx_solve.cpp.o.d"
  "mtx_solve"
  "mtx_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtx_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
