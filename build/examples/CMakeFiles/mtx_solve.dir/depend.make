# Empty dependencies file for mtx_solve.
# This may be replaced when dependencies are built.
