file(REMOVE_RECURSE
  "CMakeFiles/preconditioner.dir/preconditioner.cpp.o"
  "CMakeFiles/preconditioner.dir/preconditioner.cpp.o.d"
  "preconditioner"
  "preconditioner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preconditioner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
