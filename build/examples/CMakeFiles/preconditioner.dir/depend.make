# Empty dependencies file for preconditioner.
# This may be replaced when dependencies are built.
