file(REMOVE_RECURSE
  "libblr_core.a"
)
