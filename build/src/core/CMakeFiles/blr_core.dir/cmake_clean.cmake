file(REMOVE_RECURSE
  "CMakeFiles/blr_core.dir/numeric.cpp.o"
  "CMakeFiles/blr_core.dir/numeric.cpp.o.d"
  "CMakeFiles/blr_core.dir/refinement.cpp.o"
  "CMakeFiles/blr_core.dir/refinement.cpp.o.d"
  "CMakeFiles/blr_core.dir/solver.cpp.o"
  "CMakeFiles/blr_core.dir/solver.cpp.o.d"
  "libblr_core.a"
  "libblr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
