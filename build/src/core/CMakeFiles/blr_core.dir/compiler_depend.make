# Empty compiler generated dependencies file for blr_core.
# This may be replaced when dependencies are built.
