# Empty dependencies file for blr_common.
# This may be replaced when dependencies are built.
