file(REMOVE_RECURSE
  "CMakeFiles/blr_common.dir/kernel_stats.cpp.o"
  "CMakeFiles/blr_common.dir/kernel_stats.cpp.o.d"
  "CMakeFiles/blr_common.dir/memory_tracker.cpp.o"
  "CMakeFiles/blr_common.dir/memory_tracker.cpp.o.d"
  "CMakeFiles/blr_common.dir/thread_pool.cpp.o"
  "CMakeFiles/blr_common.dir/thread_pool.cpp.o.d"
  "libblr_common.a"
  "libblr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
