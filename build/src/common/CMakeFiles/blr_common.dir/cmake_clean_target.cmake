file(REMOVE_RECURSE
  "libblr_common.a"
)
