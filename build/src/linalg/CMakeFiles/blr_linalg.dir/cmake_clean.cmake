file(REMOVE_RECURSE
  "CMakeFiles/blr_linalg.dir/blas.cpp.o"
  "CMakeFiles/blr_linalg.dir/blas.cpp.o.d"
  "CMakeFiles/blr_linalg.dir/factorizations.cpp.o"
  "CMakeFiles/blr_linalg.dir/factorizations.cpp.o.d"
  "CMakeFiles/blr_linalg.dir/norms.cpp.o"
  "CMakeFiles/blr_linalg.dir/norms.cpp.o.d"
  "CMakeFiles/blr_linalg.dir/qr.cpp.o"
  "CMakeFiles/blr_linalg.dir/qr.cpp.o.d"
  "CMakeFiles/blr_linalg.dir/svd.cpp.o"
  "CMakeFiles/blr_linalg.dir/svd.cpp.o.d"
  "libblr_linalg.a"
  "libblr_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blr_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
