# Empty compiler generated dependencies file for blr_linalg.
# This may be replaced when dependencies are built.
