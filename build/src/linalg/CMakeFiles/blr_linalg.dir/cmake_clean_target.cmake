file(REMOVE_RECURSE
  "libblr_linalg.a"
)
