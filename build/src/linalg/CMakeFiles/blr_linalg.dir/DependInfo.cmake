
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/blas.cpp" "src/linalg/CMakeFiles/blr_linalg.dir/blas.cpp.o" "gcc" "src/linalg/CMakeFiles/blr_linalg.dir/blas.cpp.o.d"
  "/root/repo/src/linalg/factorizations.cpp" "src/linalg/CMakeFiles/blr_linalg.dir/factorizations.cpp.o" "gcc" "src/linalg/CMakeFiles/blr_linalg.dir/factorizations.cpp.o.d"
  "/root/repo/src/linalg/norms.cpp" "src/linalg/CMakeFiles/blr_linalg.dir/norms.cpp.o" "gcc" "src/linalg/CMakeFiles/blr_linalg.dir/norms.cpp.o.d"
  "/root/repo/src/linalg/qr.cpp" "src/linalg/CMakeFiles/blr_linalg.dir/qr.cpp.o" "gcc" "src/linalg/CMakeFiles/blr_linalg.dir/qr.cpp.o.d"
  "/root/repo/src/linalg/svd.cpp" "src/linalg/CMakeFiles/blr_linalg.dir/svd.cpp.o" "gcc" "src/linalg/CMakeFiles/blr_linalg.dir/svd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/blr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
