file(REMOVE_RECURSE
  "libblr_lowrank.a"
)
