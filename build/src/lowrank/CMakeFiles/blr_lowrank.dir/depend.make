# Empty dependencies file for blr_lowrank.
# This may be replaced when dependencies are built.
