file(REMOVE_RECURSE
  "CMakeFiles/blr_lowrank.dir/compression.cpp.o"
  "CMakeFiles/blr_lowrank.dir/compression.cpp.o.d"
  "CMakeFiles/blr_lowrank.dir/kernels.cpp.o"
  "CMakeFiles/blr_lowrank.dir/kernels.cpp.o.d"
  "libblr_lowrank.a"
  "libblr_lowrank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blr_lowrank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
