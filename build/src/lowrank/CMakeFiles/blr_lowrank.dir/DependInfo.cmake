
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lowrank/compression.cpp" "src/lowrank/CMakeFiles/blr_lowrank.dir/compression.cpp.o" "gcc" "src/lowrank/CMakeFiles/blr_lowrank.dir/compression.cpp.o.d"
  "/root/repo/src/lowrank/kernels.cpp" "src/lowrank/CMakeFiles/blr_lowrank.dir/kernels.cpp.o" "gcc" "src/lowrank/CMakeFiles/blr_lowrank.dir/kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/blr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/blr_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
