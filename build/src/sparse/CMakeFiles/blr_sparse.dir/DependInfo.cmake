
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/csc.cpp" "src/sparse/CMakeFiles/blr_sparse.dir/csc.cpp.o" "gcc" "src/sparse/CMakeFiles/blr_sparse.dir/csc.cpp.o.d"
  "/root/repo/src/sparse/generators.cpp" "src/sparse/CMakeFiles/blr_sparse.dir/generators.cpp.o" "gcc" "src/sparse/CMakeFiles/blr_sparse.dir/generators.cpp.o.d"
  "/root/repo/src/sparse/graph.cpp" "src/sparse/CMakeFiles/blr_sparse.dir/graph.cpp.o" "gcc" "src/sparse/CMakeFiles/blr_sparse.dir/graph.cpp.o.d"
  "/root/repo/src/sparse/mm_io.cpp" "src/sparse/CMakeFiles/blr_sparse.dir/mm_io.cpp.o" "gcc" "src/sparse/CMakeFiles/blr_sparse.dir/mm_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/blr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/blr_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
