# Empty dependencies file for blr_sparse.
# This may be replaced when dependencies are built.
