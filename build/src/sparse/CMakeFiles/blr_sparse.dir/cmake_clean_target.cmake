file(REMOVE_RECURSE
  "libblr_sparse.a"
)
