file(REMOVE_RECURSE
  "CMakeFiles/blr_sparse.dir/csc.cpp.o"
  "CMakeFiles/blr_sparse.dir/csc.cpp.o.d"
  "CMakeFiles/blr_sparse.dir/generators.cpp.o"
  "CMakeFiles/blr_sparse.dir/generators.cpp.o.d"
  "CMakeFiles/blr_sparse.dir/graph.cpp.o"
  "CMakeFiles/blr_sparse.dir/graph.cpp.o.d"
  "CMakeFiles/blr_sparse.dir/mm_io.cpp.o"
  "CMakeFiles/blr_sparse.dir/mm_io.cpp.o.d"
  "libblr_sparse.a"
  "libblr_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blr_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
