file(REMOVE_RECURSE
  "libblr_ordering.a"
)
