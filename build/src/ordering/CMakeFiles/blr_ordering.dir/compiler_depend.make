# Empty compiler generated dependencies file for blr_ordering.
# This may be replaced when dependencies are built.
