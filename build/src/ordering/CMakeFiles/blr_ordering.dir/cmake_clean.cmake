file(REMOVE_RECURSE
  "CMakeFiles/blr_ordering.dir/ordering.cpp.o"
  "CMakeFiles/blr_ordering.dir/ordering.cpp.o.d"
  "libblr_ordering.a"
  "libblr_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blr_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
