# Empty compiler generated dependencies file for blr_symbolic.
# This may be replaced when dependencies are built.
