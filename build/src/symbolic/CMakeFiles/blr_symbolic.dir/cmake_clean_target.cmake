file(REMOVE_RECURSE
  "libblr_symbolic.a"
)
