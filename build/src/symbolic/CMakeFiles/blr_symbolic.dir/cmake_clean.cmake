file(REMOVE_RECURSE
  "CMakeFiles/blr_symbolic.dir/amalgamation.cpp.o"
  "CMakeFiles/blr_symbolic.dir/amalgamation.cpp.o.d"
  "CMakeFiles/blr_symbolic.dir/symbolic.cpp.o"
  "CMakeFiles/blr_symbolic.dir/symbolic.cpp.o.d"
  "libblr_symbolic.a"
  "libblr_symbolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blr_symbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
