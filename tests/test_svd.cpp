// Tests of the one-sided Jacobi SVD used by the SVD compression kernel.

#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "linalg/norms.hpp"
#include "linalg/svd.hpp"
#include "linalg/blas.hpp"
#include "linalg/random.hpp"

namespace {

using namespace blr;
using namespace blr::la;

real_t orthogonality_defect(DConstView q) {
  DMatrix g(q.cols, q.cols);
  gemm(Trans::Yes, Trans::No, real_t(1), q, q, real_t(0), g.view());
  for (index_t i = 0; i < q.cols; ++i) g(i, i) -= 1;
  return norm_fro(g.cview());
}

DMatrix reconstruct(const DMatrix& u, const std::vector<real_t>& s, const DMatrix& v) {
  DMatrix us = u;
  for (index_t j = 0; j < us.cols(); ++j)
    scal(us.rows(), s[static_cast<std::size_t>(j)], us.view().col(j));
  DMatrix a(u.rows(), v.rows());
  gemm(Trans::No, Trans::Yes, real_t(1), us.cview(), v.cview(), real_t(0), a.view());
  return a;
}

struct SvdShape {
  index_t m, n;
};

class SvdShapes : public ::testing::TestWithParam<SvdShape> {};

TEST_P(SvdShapes, ReconstructionAndOrthogonality) {
  const auto [m, n] = GetParam();
  Prng rng(static_cast<std::uint64_t>(m * 7 + n));
  DMatrix a(m, n);
  random_normal(a.view(), rng);

  DMatrix u, v;
  std::vector<real_t> s;
  svd(a.cview(), u, s, v);
  const index_t k = std::min(m, n);
  ASSERT_EQ(u.rows(), m);
  ASSERT_EQ(u.cols(), k);
  ASSERT_EQ(v.rows(), n);
  ASSERT_EQ(v.cols(), k);

  EXPECT_LT(orthogonality_defect(u.cview()), 1e-11 * static_cast<real_t>(k));
  EXPECT_LT(orthogonality_defect(v.cview()), 1e-11 * static_cast<real_t>(k));
  const DMatrix recon = reconstruct(u, s, v);
  EXPECT_LT(diff_fro(recon.cview(), a.cview()), 1e-11 * norm_fro(a.cview()));
  // Non-increasing singular values.
  for (std::size_t i = 1; i < s.size(); ++i) EXPECT_GE(s[i - 1], s[i]);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdShapes,
                         ::testing::Values(SvdShape{1, 1}, SvdShape{4, 4},
                                           SvdShape{16, 16}, SvdShape{40, 12},
                                           SvdShape{12, 40}, SvdShape{64, 64},
                                           SvdShape{3, 100}));

TEST(Svd, KnownSingularValuesOfDiagonal) {
  DMatrix a(3, 3);
  a(0, 0) = 3;
  a(1, 1) = -5;  // singular value is |.|
  a(2, 2) = 1;
  const auto s = singular_values(a.cview());
  ASSERT_EQ(s.size(), 3u);
  EXPECT_NEAR(s[0], 5, 1e-13);
  EXPECT_NEAR(s[1], 3, 1e-13);
  EXPECT_NEAR(s[2], 1, 1e-13);
}

TEST(Svd, RankDeficientMatrixHasZeroTail) {
  Prng rng(12);
  DMatrix a = random_rank_k<real_t>(20, 20, 4, rng);
  const auto s = singular_values(a.cview());
  for (std::size_t i = 4; i < s.size(); ++i) EXPECT_LT(s[i], 1e-10 * s[0]);
  EXPECT_GT(s[3], 1e-10 * s[0]);
}

TEST(Svd, FrobeniusNormEqualsSigmaNorm) {
  Prng rng(44);
  DMatrix a(17, 23);
  random_normal(a.view(), rng);
  const auto s = singular_values(a.cview());
  real_t ssq = 0;
  for (const real_t x : s) ssq += x * x;
  EXPECT_NEAR(std::sqrt(ssq), norm_fro(a.cview()), 1e-10);
}

TEST(Svd, ZeroMatrix) {
  DMatrix a(5, 3);
  DMatrix u, v;
  std::vector<real_t> s;
  svd(a.cview(), u, s, v);
  for (const real_t x : s) EXPECT_EQ(x, 0.0);
}

TEST(Svd, TwoNormMatchesSpectralRadiusOfSymmetricMatrix) {
  // For A = Qᵗ·D·Q symmetric, singular values are |eigenvalues|.
  DMatrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 2;  // eigenvalues 3 and 1
  const auto s = singular_values(a.cview());
  EXPECT_NEAR(s[0], 3.0, 1e-12);
  EXPECT_NEAR(s[1], 1.0, 1e-12);
}

} // namespace
