// Tests of the matrix generators, including the properties that make each a
// faithful surrogate for its paper counterpart (SPD-ness, nonsymmetric
// values on a symmetric pattern, coefficient contrast).

#include <gtest/gtest.h>

#include "linalg/factorizations.hpp"
#include "sparse/generators.hpp"

namespace {

using namespace blr;
using namespace blr::sparse;

TEST(Laplacian3d, DimensionsAndStencilCounts) {
  const CscMatrix a = laplacian_3d(4, 3, 2);
  EXPECT_EQ(a.rows(), 24);
  EXPECT_TRUE(a.pattern_symmetric());
  // nnz = n + 2 * #edges; edges = (nx-1)nynz + nx(ny-1)nz + nxny(nz-1).
  const index_t edges = 3 * 3 * 2 + 4 * 2 * 2 + 4 * 3 * 1;
  EXPECT_EQ(a.nnz(), 24 + 2 * edges);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
}

TEST(Laplacian3d, IsPositiveDefinite) {
  const CscMatrix a = laplacian_3d(4, 4, 4);
  la::DMatrix d = a.to_dense();
  EXPECT_EQ(la::potrf(d.view()), 0);
  EXPECT_EQ(a.symmetry(), Symmetry::Spd);
}

TEST(Laplacian2d, FivePointStencil) {
  const CscMatrix a = laplacian_2d(3, 3);
  EXPECT_EQ(a.rows(), 9);
  EXPECT_DOUBLE_EQ(a.at(4, 4), 4.0);  // center vertex
  EXPECT_DOUBLE_EQ(a.at(4, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(4, 3), -1.0);
}

TEST(ConvectionDiffusion, SymmetricPatternNonsymmetricValues) {
  const CscMatrix a = convection_diffusion_3d(4, 4, 4, 0.5);
  EXPECT_TRUE(a.pattern_symmetric());
  EXPECT_NE(a.at(0, 1), a.at(1, 0));  // upwind/downwind differ
  EXPECT_DOUBLE_EQ(a.at(0, 1) + a.at(1, 0), -2.0);  // -(1-p) + -(1+p)
  EXPECT_EQ(a.symmetry(), Symmetry::General);
}

TEST(ConvectionDiffusion, RejectsUnstablePeclet) {
  EXPECT_THROW(convection_diffusion_3d(2, 2, 2, 1.5), Error);
}

TEST(Elasticity3d, ThreeDofsPerNodeAndSpd) {
  const CscMatrix a = elasticity_3d(3, 3, 3, 2.0, 1.0);
  EXPECT_EQ(a.rows(), 81);
  EXPECT_TRUE(a.pattern_symmetric());
  la::DMatrix d = a.to_dense();
  EXPECT_EQ(la::potrf(d.view()), 0);
}

TEST(Elasticity3d, AxisCouplingIsStifferAlongAxis) {
  const CscMatrix a = elasticity_3d(2, 1, 1, 3.0, 1.0);
  // Edge along x: dof 0 (x displacement) coupling = -(mu + lambda + mu) = -5,
  // dof 1 (y) coupling = -mu = -1.
  EXPECT_DOUBLE_EQ(a.at(0, 3), -5.0);
  EXPECT_DOUBLE_EQ(a.at(1, 4), -1.0);
  EXPECT_DOUBLE_EQ(a.at(2, 5), -1.0);
}

TEST(HeterogeneousPoisson, SpdAndDeterministic) {
  const CscMatrix a = heterogeneous_poisson_3d(3, 3, 3, 4.0, 123);
  const CscMatrix b = heterogeneous_poisson_3d(3, 3, 3, 4.0, 123);
  EXPECT_EQ(a.values(), b.values());
  la::DMatrix d = a.to_dense();
  EXPECT_EQ(la::potrf(d.view()), 0);
}

TEST(HeterogeneousPoisson, ContrastWidensCoefficientRange) {
  const CscMatrix lo = heterogeneous_poisson_3d(4, 4, 4, 0.0, 1);
  const CscMatrix hi = heterogeneous_poisson_3d(4, 4, 4, 6.0, 1);
  const auto minmax_offdiag = [](const CscMatrix& m) {
    real_t lo = 1e300, hi = 0;
    const auto& cp = m.colptr();
    const auto& ri = m.rowind();
    const auto& v = m.values();
    for (index_t j = 0; j < m.cols(); ++j) {
      for (index_t p = cp[static_cast<std::size_t>(j)];
           p < cp[static_cast<std::size_t>(j) + 1]; ++p) {
        if (ri[static_cast<std::size_t>(p)] == j) continue;
        const real_t w = std::abs(v[static_cast<std::size_t>(p)]);
        lo = std::min(lo, w);
        hi = std::max(hi, w);
      }
    }
    return std::pair{lo, hi};
  };
  const auto [llo, lhi] = minmax_offdiag(lo);
  const auto [hlo, hhi] = minmax_offdiag(hi);
  EXPECT_LT(lhi / llo, 1.01);       // contrast 0: constant coefficients
  EXPECT_GT(hhi / hlo, 100.0);      // contrast 6: orders of magnitude spread
}

TEST(PaperTestSet, HasSixNamedMatrices) {
  const auto set = paper_test_set(6);
  ASSERT_EQ(set.size(), 6u);
  EXPECT_EQ(set[0].name, "lap6");
  EXPECT_EQ(set[1].name, "atmosmodj");
  EXPECT_FALSE(set[1].spd);
  for (const auto& tm : set) {
    EXPECT_GT(tm.matrix.rows(), 0);
    EXPECT_TRUE(tm.matrix.pattern_symmetric()) << tm.name;
    EXPECT_EQ(tm.spd, tm.matrix.symmetry() == Symmetry::Spd) << tm.name;
  }
}

} // namespace
