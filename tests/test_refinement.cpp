// Tests of the iterative layer: iterative refinement, right-preconditioned
// GMRES and preconditioned CG (the Figure-8 machinery).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/refinement.hpp"
#include "core/solver.hpp"
#include "common/prng.hpp"
#include "sparse/generators.hpp"

namespace {

using namespace blr;
using namespace blr::core;
using sparse::CscMatrix;

std::vector<real_t> rhs(index_t n, std::uint64_t seed) {
  Prng rng(seed);
  std::vector<real_t> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.normal();
  return b;
}

/// Jacobi preconditioner (weak on purpose: exercises the iteration logic).
Preconditioner jacobi(const CscMatrix& a) {
  std::vector<real_t> dinv(static_cast<std::size_t>(a.rows()));
  for (index_t i = 0; i < a.rows(); ++i)
    dinv[static_cast<std::size_t>(i)] = 1.0 / a.at(i, i);
  return [dinv, n = a.rows()](const real_t* in, real_t* out) {
    for (index_t i = 0; i < n; ++i) out[i] = dinv[static_cast<std::size_t>(i)] * in[i];
  };
}

TEST(Gmres, ConvergesWithJacobiOnSmallSystem) {
  const CscMatrix a = sparse::laplacian_2d(8, 8);
  const auto b = rhs(a.rows(), 1);
  std::vector<real_t> x(b.size(), 0.0);
  RefinementOptions opts;
  opts.max_iterations = 200;
  opts.target = 1e-10;
  opts.gmres_restart = 50;
  const auto res = gmres(a, jacobi(a), b.data(), x.data(), opts);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(sparse::backward_error(a, x.data(), b.data()), 1e-9);
}

TEST(Gmres, HandlesNonsymmetricSystem) {
  const CscMatrix a = sparse::convection_diffusion_3d(5, 5, 5, 0.7);
  const auto b = rhs(a.rows(), 2);
  std::vector<real_t> x(b.size(), 0.0);
  RefinementOptions opts;
  opts.max_iterations = 300;
  opts.target = 1e-10;
  opts.gmres_restart = 60;
  const auto res = gmres(a, jacobi(a), b.data(), x.data(), opts);
  EXPECT_TRUE(res.converged);
}

TEST(Gmres, HistoryTracksTrueResidual) {
  // Right preconditioning: the Givens residual estimate equals the true
  // residual, so the recorded history must match a direct recomputation.
  const CscMatrix a = sparse::laplacian_2d(6, 6);
  const auto b = rhs(a.rows(), 3);
  std::vector<real_t> x(b.size(), 0.0);
  RefinementOptions opts;
  opts.max_iterations = 15;
  opts.target = 0;  // run all iterations
  const auto res = gmres(a, jacobi(a), b.data(), x.data(), opts);
  ASSERT_GE(res.history.size(), 2u);
  const real_t recomputed = sparse::backward_error(a, x.data(), b.data());
  EXPECT_NEAR(res.history.back(), recomputed, 1e-8 + 0.05 * recomputed);
  // Residual history of full-recurrence GMRES is non-increasing.
  for (std::size_t i = 1; i < res.history.size(); ++i)
    EXPECT_LE(res.history[i], res.history[i - 1] * (1 + 1e-12));
}

TEST(Cg, ConvergesOnSpdSystem) {
  const CscMatrix a = sparse::laplacian_3d(5, 5, 5);
  const auto b = rhs(a.rows(), 4);
  std::vector<real_t> x(b.size(), 0.0);
  RefinementOptions opts;
  opts.max_iterations = 500;
  opts.target = 1e-11;
  const auto res = conjugate_gradient(a, jacobi(a), b.data(), x.data(), opts);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(sparse::backward_error(a, x.data(), b.data()), 1e-10);
}

TEST(Cg, ExactPreconditionerConvergesInOneIteration) {
  const CscMatrix a = sparse::laplacian_2d(7, 7);
  SolverOptions sopts;
  sopts.strategy = Strategy::Dense;
  Solver solver(sopts);
  solver.factorize(a);

  const auto b = rhs(a.rows(), 5);
  std::vector<real_t> x(b.size(), 0.0);
  RefinementOptions opts;
  opts.target = 1e-13;
  const auto res = conjugate_gradient(a, solver.preconditioner(), b.data(), x.data(), opts);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 2);
}

TEST(IterativeRefinement, FixesLowPrecisionFactorization) {
  const CscMatrix a = sparse::laplacian_3d(8, 8, 8);
  SolverOptions sopts;
  sopts.strategy = Strategy::MinimalMemory;
  sopts.tolerance = 1e-5;
  sopts.compress_min_width = 16;
  sopts.compress_min_height = 8;
  Solver solver(sopts);
  solver.factorize(a);

  const auto b = rhs(a.rows(), 6);
  std::vector<real_t> x(b.size());
  solver.solve(b.data(), x.data());
  const real_t err0 = sparse::backward_error(a, x.data(), b.data());

  RefinementOptions opts;
  opts.max_iterations = 20;
  opts.target = 1e-12;
  const auto res = iterative_refinement(a, solver.preconditioner(), b.data(), x.data(), opts);
  EXPECT_LE(res.final_error(), err0);
  EXPECT_TRUE(res.converged);
  // History starts at the direct-solve accuracy.
  EXPECT_NEAR(res.history.front(), err0, 1e-12 + 0.01 * err0);
}

TEST(IterativeRefinement, StopsImmediatelyWhenAlreadyConverged) {
  const CscMatrix a = sparse::laplacian_2d(5, 5);
  SolverOptions sopts;
  sopts.strategy = Strategy::Dense;
  Solver solver(sopts);
  solver.factorize(a);
  const auto b = rhs(a.rows(), 7);
  std::vector<real_t> x(b.size());
  solver.solve(b.data(), x.data());
  const auto res = iterative_refinement(a, solver.preconditioner(), b.data(), x.data());
  EXPECT_EQ(res.iterations, 0);
  EXPECT_TRUE(res.converged);
}

TEST(Refinement, GmresWithExactPreconditionerIsImmediate) {
  const CscMatrix a = sparse::convection_diffusion_3d(4, 4, 4, 0.3);
  SolverOptions sopts;
  sopts.strategy = Strategy::Dense;
  Solver solver(sopts);
  solver.factorize(a);
  EXPECT_FALSE(solver.is_llt());

  const auto b = rhs(a.rows(), 8);
  std::vector<real_t> x(b.size());
  solver.solve(b.data(), x.data());
  const auto res = solver.refine(a, b.data(), x.data());
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 2);
}

TEST(Gmres, RestartPathStillConverges) {
  // Force several restarts: tiny restart window on a system needing many
  // iterations under a weak preconditioner.
  const CscMatrix a = sparse::laplacian_2d(12, 12);
  const auto b = rhs(a.rows(), 9);
  std::vector<real_t> x(b.size(), 0.0);
  RefinementOptions opts;
  opts.max_iterations = 400;
  opts.target = 1e-10;
  opts.gmres_restart = 5;
  const auto res = gmres(a, jacobi(a), b.data(), x.data(), opts);
  EXPECT_TRUE(res.converged);
  EXPECT_GT(res.iterations, 5);  // actually restarted
  EXPECT_LT(sparse::backward_error(a, x.data(), b.data()), 1e-9);
}

TEST(Gmres, ZeroRhsIsImmediatelyConverged) {
  const CscMatrix a = sparse::laplacian_2d(4, 4);
  std::vector<real_t> b(16, 0.0), x(16, 0.0);
  RefinementOptions opts;
  const auto res = gmres(a, jacobi(a), b.data(), x.data(), opts);
  EXPECT_EQ(res.iterations, 0);
}


// ---------------------------------------------------------------------------
// Divergence / stagnation detection
// ---------------------------------------------------------------------------

Preconditioner scaled_precond(index_t n, real_t s) {
  return [n, s](const real_t* in, real_t* out) {
    for (index_t i = 0; i < n; ++i) out[i] = s * in[i];
  };
}

Preconditioner nan_precond(index_t n) {
  return [n](const real_t*, real_t* out) {
    for (index_t i = 0; i < n; ++i)
      out[i] = std::numeric_limits<real_t>::quiet_NaN();
  };
}

TEST(Divergence, IterativeRefinementStopsWhenErrorExplodes) {
  // A wildly over-scaled "preconditioner" amplifies the error every sweep:
  // the watchdog must abandon the run instead of looping to max_iterations.
  const CscMatrix a = sparse::laplacian_2d(10, 10);
  const auto b = rhs(a.rows(), 21);
  std::vector<real_t> x(b.size(), 0.0);
  RefinementOptions opts;
  opts.max_iterations = 50;
  const auto res = iterative_refinement(a, scaled_precond(a.rows(), -1e4), b.data(),
                                        x.data(), opts);
  EXPECT_TRUE(res.diverged);
  EXPECT_FALSE(res.converged);
  EXPECT_LT(res.iterations, 10);
}

TEST(Divergence, IterativeRefinementStopsOnNaN) {
  const CscMatrix a = sparse::laplacian_2d(8, 8);
  const auto b = rhs(a.rows(), 22);
  std::vector<real_t> x(b.size(), 0.0);
  RefinementOptions opts;
  opts.max_iterations = 50;
  const auto res =
      iterative_refinement(a, nan_precond(a.rows()), b.data(), x.data(), opts);
  EXPECT_TRUE(res.diverged);
  EXPECT_FALSE(res.converged);
  EXPECT_LT(res.iterations, 5);
}

TEST(Divergence, IterativeRefinementStagnationStopsEarly) {
  // A zero preconditioner never changes x: the error history is flat and
  // the stagnation window must cut the run short with converged == false.
  const CscMatrix a = sparse::laplacian_2d(10, 10);
  const auto b = rhs(a.rows(), 23);
  std::vector<real_t> x(b.size(), 0.0);
  RefinementOptions opts;
  opts.max_iterations = 100;
  opts.stagnation_window = 5;
  const auto res = iterative_refinement(a, scaled_precond(a.rows(), 0.0), b.data(),
                                        x.data(), opts);
  EXPECT_FALSE(res.converged);
  EXPECT_FALSE(res.diverged);
  EXPECT_LE(res.iterations, 6);
}

TEST(Divergence, ConjugateGradientStopsOnNaN) {
  const CscMatrix a = sparse::laplacian_2d(8, 8);
  const auto b = rhs(a.rows(), 24);
  std::vector<real_t> x(b.size(), 0.0);
  RefinementOptions opts;
  opts.max_iterations = 50;
  const auto res =
      conjugate_gradient(a, nan_precond(a.rows()), b.data(), x.data(), opts);
  EXPECT_TRUE(res.diverged);
  EXPECT_FALSE(res.converged);
  EXPECT_LT(res.iterations, 5);
}

TEST(Divergence, GmresAbandonsWithoutPoisoningTheIterate) {
  const CscMatrix a = sparse::laplacian_2d(8, 8);
  const auto b = rhs(a.rows(), 25);
  std::vector<real_t> x(b.size(), 0.0);
  RefinementOptions opts;
  opts.max_iterations = 50;
  const auto res = gmres(a, nan_precond(a.rows()), b.data(), x.data(), opts);
  EXPECT_TRUE(res.diverged);
  EXPECT_FALSE(res.converged);
  // The tainted Krylov correction was not folded into x.
  for (const real_t v : x) EXPECT_TRUE(std::isfinite(v));
}

} // namespace
