// Tests of the numeric factorization layer itself: factor reconstruction
// against dense LAPACK-style factorizations, strategy-specific invariants
// (Minimal-Memory never allocating the dense structure), and parallel
// determinism under stress.

#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "core/numeric.hpp"
#include "core/solver.hpp"
#include "linalg/factorizations.hpp"
#include "linalg/norms.hpp"
#include "sparse/generators.hpp"
#include "sparse/graph.hpp"

namespace {

using namespace blr;
using namespace blr::core;
using sparse::CscMatrix;

SolverOptions small_opts(Strategy s, lr::CompressionKind k = lr::CompressionKind::Rrqr) {
  SolverOptions o;
  o.strategy = s;
  o.kind = k;
  o.compress_min_width = 16;
  o.compress_min_height = 8;
  o.split.split_threshold = 64;
  o.split.split_size = 32;
  return o;
}

std::vector<real_t> rhs(index_t n, std::uint64_t seed) {
  Prng rng(seed);
  std::vector<real_t> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.normal();
  return b;
}

TEST(Numeric, DenseLltMatchesDensePotrfSolve) {
  const CscMatrix a = sparse::laplacian_2d(9, 9);
  Solver solver(small_opts(Strategy::Dense));
  solver.factorize(a);
  ASSERT_TRUE(solver.is_llt());

  const auto b = rhs(a.rows(), 1);
  std::vector<real_t> x(b.size());
  solver.solve(b.data(), x.data());

  la::DMatrix d = a.to_dense();
  ASSERT_EQ(la::potrf(d.view()), 0);
  la::DMatrix xd(a.rows(), 1);
  for (index_t i = 0; i < a.rows(); ++i) xd(i, 0) = b[static_cast<std::size_t>(i)];
  la::potrs<real_t>(d.cview(), xd.view());
  for (index_t i = 0; i < a.rows(); ++i)
    EXPECT_NEAR(x[static_cast<std::size_t>(i)], xd(i, 0), 1e-9);
}

TEST(Numeric, DenseLuMatchesDenseGetrfSolve) {
  const CscMatrix a = sparse::convection_diffusion_3d(4, 4, 4, 0.5);
  Solver solver(small_opts(Strategy::Dense));
  solver.factorize(a);
  ASSERT_FALSE(solver.is_llt());

  const auto b = rhs(a.rows(), 2);
  std::vector<real_t> x(b.size());
  solver.solve(b.data(), x.data());

  la::DMatrix d = a.to_dense();
  std::vector<index_t> ipiv;
  ASSERT_EQ(la::getrf(d.view(), ipiv), 0);
  la::DMatrix xd(a.rows(), 1);
  for (index_t i = 0; i < a.rows(); ++i) xd(i, 0) = b[static_cast<std::size_t>(i)];
  la::getrs<real_t>(d.cview(), ipiv, xd.view());
  for (index_t i = 0; i < a.rows(); ++i)
    EXPECT_NEAR(x[static_cast<std::size_t>(i)], xd(i, 0), 1e-9);
}

TEST(Numeric, LuOnSpdMatrixMatchesLlt) {
  const CscMatrix a = sparse::laplacian_2d(8, 8);
  SolverOptions llt = small_opts(Strategy::Dense);
  llt.factorization = Factorization::Llt;
  SolverOptions lu = small_opts(Strategy::Dense);
  lu.factorization = Factorization::Lu;

  Solver s1(llt), s2(lu);
  s1.factorize(a);
  s2.factorize(a);
  EXPECT_TRUE(s1.is_llt());
  EXPECT_FALSE(s2.is_llt());

  const auto b = rhs(a.rows(), 3);
  std::vector<real_t> x1(b.size()), x2(b.size());
  s1.solve(b.data(), x1.data());
  s2.solve(b.data(), x2.data());
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(x1[i], x2[i], 1e-10);
}

TEST(Numeric, MinimalMemoryNeverAllocatesDenseStructure) {
  // The defining property of the Minimal-Memory scenario: the Factors peak
  // must stay below the dense-structure footprint (Just-In-Time's peak).
  const CscMatrix a = sparse::laplacian_3d(16, 16, 16);
  SolverOptions mm = small_opts(Strategy::MinimalMemory);
  mm.tolerance = 1e-4;
  Solver sm(mm);
  sm.factorize(a);
  const std::size_t dense_bytes = sm.stats().factor_entries_dense * sizeof(real_t);
  EXPECT_LT(sm.stats().factors_peak_bytes, dense_bytes);

  SolverOptions jit = small_opts(Strategy::JustInTime);
  jit.tolerance = 1e-4;
  Solver sj(jit);
  sj.factorize(a);
  // JIT allocates the full dense structure up front.
  EXPECT_GE(sj.stats().factors_peak_bytes, dense_bytes);
  // Final compressed sizes of the two scenarios are similar (paper §2.2).
  const double ratio = static_cast<double>(sm.stats().factor_entries_final) /
                       static_cast<double>(sj.stats().factor_entries_final);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

TEST(Numeric, StatsEntriesConsistent) {
  const CscMatrix a = sparse::laplacian_3d(8, 8, 8);
  Solver solver(small_opts(Strategy::Dense));
  solver.factorize(a);
  // Dense strategy: final entries equal the symbolic dense storage.
  EXPECT_EQ(solver.stats().factor_entries_final, solver.stats().factor_entries_dense);
  EXPECT_EQ(solver.stats().num_lowrank_blocks, 0);
}

TEST(Numeric, ParallelStressManyRepetitions) {
  const CscMatrix a = sparse::laplacian_3d(9, 9, 9);
  const auto b = rhs(a.rows(), 4);
  SolverOptions o = small_opts(Strategy::JustInTime);
  o.threads = 8;
  for (int rep = 0; rep < 10; ++rep) {
    Solver s(o);
    s.factorize(a);
    std::vector<real_t> x(b.size());
    s.solve(b.data(), x.data());
    ASSERT_LT(sparse::backward_error(a, x.data(), b.data()), 1e-6) << "rep " << rep;
  }
}

TEST(Numeric, ParallelMinimalMemoryStress) {
  const CscMatrix a = sparse::heterogeneous_poisson_3d(8, 8, 8, 3.0, 5);
  const auto b = rhs(a.rows(), 5);
  SolverOptions o = small_opts(Strategy::MinimalMemory);
  o.threads = 6;
  o.tolerance = 1e-6;
  for (int rep = 0; rep < 6; ++rep) {
    Solver s(o);
    s.factorize(a);
    std::vector<real_t> x(b.size());
    s.solve(b.data(), x.data());
    ASSERT_LT(sparse::backward_error(a, x.data(), b.data()), 1e-3) << "rep " << rep;
  }
}

TEST(Numeric, CholeskyRejectsIndefiniteMatrix) {
  // Indefinite symmetric matrix pushed down the LLᵗ path must throw.
  std::vector<sparse::Triplet> t;
  const index_t n = 40;
  for (index_t i = 0; i < n; ++i) t.push_back({i, i, (i % 2) ? 2.0 : -2.0});
  for (index_t i = 0; i + 1 < n; ++i) {
    t.push_back({i, i + 1, 1.0});
    t.push_back({i + 1, i, 1.0});
  }
  CscMatrix a = CscMatrix::from_triplets(n, n, std::move(t));
  SolverOptions o = small_opts(Strategy::Dense);
  o.factorization = Factorization::Llt;
  Solver s(o);
  EXPECT_THROW(s.factorize(a), NumericalError);
}

TEST(Numeric, SameAnalyzeMultipleFactorizations) {
  // The preprocessing is value-independent: one analyze, several factorize.
  CscMatrix a = sparse::laplacian_3d(6, 6, 6);
  Solver solver(small_opts(Strategy::JustInTime));
  solver.analyze(a);

  const auto b = rhs(a.rows(), 6);
  for (const real_t shift : {0.0, 1.0, 10.0}) {
    CscMatrix m = a;
    for (index_t j = 0; j < m.cols(); ++j) {
      for (index_t p = m.colptr()[static_cast<std::size_t>(j)];
           p < m.colptr()[static_cast<std::size_t>(j) + 1]; ++p) {
        if (m.rowind()[static_cast<std::size_t>(p)] == j)
          m.values()[static_cast<std::size_t>(p)] += shift;
      }
    }
    solver.factorize(m);
    std::vector<real_t> x(b.size());
    solver.solve(b.data(), x.data());
    EXPECT_LT(sparse::backward_error(m, x.data(), b.data()), 1e-6);
  }
}

TEST(Numeric, ApiMisuseThrows) {
  const CscMatrix a = sparse::laplacian_2d(4, 4);
  Solver s(small_opts(Strategy::Dense));
  std::vector<real_t> b(16, 1.0), x(16);
  EXPECT_THROW(s.solve(b.data(), x.data()), Error);
  EXPECT_THROW(s.preconditioner(), Error);
  EXPECT_THROW((void)s.refine(a, b.data(), x.data()), Error);
}

TEST(Numeric, RectangularMatrixRejected) {
  const CscMatrix a = CscMatrix::from_triplets(3, 4, {{0, 0, 1.0}});
  Solver s(small_opts(Strategy::Dense));
  EXPECT_THROW(s.analyze(a), Error);
}

TEST(Numeric, LeftLookingMatchesRightLooking) {
  const CscMatrix a = sparse::convection_diffusion_3d(6, 6, 6, 0.4);
  const auto b = rhs(a.rows(), 8);
  for (const Strategy strat :
       {Strategy::Dense, Strategy::JustInTime, Strategy::MinimalMemory}) {
    SolverOptions rl = small_opts(strat);
    SolverOptions ll = rl;
    ll.scheduling = Scheduling::LeftLooking;
    Solver s1(rl), s2(ll);
    s1.factorize(a);
    s2.factorize(a);
    std::vector<real_t> x1(b.size()), x2(b.size());
    s1.solve(b.data(), x1.data());
    s2.solve(b.data(), x2.data());
    for (std::size_t i = 0; i < b.size(); ++i)
      ASSERT_NEAR(x1[i], x2[i], 1e-10) << "strategy " << static_cast<int>(strat);
  }
}

TEST(Numeric, LeftLookingJitPeakBelowDenseFootprint) {
  // The paper's §4.3 motivation: with lazy allocation, Just-In-Time's peak
  // drops below the dense structure size (right-looking JIT equals it).
  const CscMatrix a = sparse::laplacian_3d(16, 16, 16);
  SolverOptions jit = small_opts(Strategy::JustInTime);
  jit.tolerance = 1e-4;
  SolverOptions ll = jit;
  ll.scheduling = Scheduling::LeftLooking;

  Solver srl(jit), sll(ll);
  srl.factorize(a);
  sll.factorize(a);
  const std::size_t dense_bytes = srl.stats().factor_entries_dense * sizeof(real_t);
  EXPECT_GE(srl.stats().factors_peak_bytes, dense_bytes);
  EXPECT_LT(sll.stats().factors_peak_bytes, dense_bytes);
  // Same final factors either way.
  EXPECT_EQ(srl.stats().factor_entries_final, sll.stats().factor_entries_final);
}

} // namespace
