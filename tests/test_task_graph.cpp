// The dataflow factorization's pinning harness (DESIGN.md §12): unit tests
// for read/write-set dependency inference, release order, and the epoch
// hand-off contract, plus the randomized stress grid that memcmp's every
// dataflow run — sequential and parallel, every strategy and factorization
// kind — against the sequential barrier factors bit for bit.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <vector>

#include "blr.hpp"
#include "core/task_graph.hpp"

namespace {

using namespace blr;
using core::DagTask;
using core::DagTaskKind;
using core::DepBuilder;
using core::EpochGate;
using core::TaskGraph;
using sparse::CscMatrix;

// ---------------------------------------------------------------- DepBuilder

TEST(DepBuilder, ReadDependsOnLastWriter) {
  DepBuilder b;
  const auto w = b.add_task();
  const auto r1 = b.add_task();
  const auto r2 = b.add_task();
  b.write(w, 7);
  b.read(r1, 7);
  b.read(r2, 7);
  const auto d = b.infer();
  EXPECT_EQ(d.num_edges, 2u);
  EXPECT_EQ(d.indeg[w], 0);
  EXPECT_EQ(d.indeg[r1], 1);
  EXPECT_EQ(d.indeg[r2], 1);
}

TEST(DepBuilder, WriteDependsOnReadersSinceLastWrite) {
  DepBuilder b;
  const auto w1 = b.add_task();
  const auto r1 = b.add_task();
  const auto r2 = b.add_task();
  const auto w2 = b.add_task();
  b.write(w1, 3);
  b.read(r1, 3);
  b.read(r2, 3);
  b.write(w2, 3);
  const auto d = b.infer();
  // w1→r1, w1→r2, r1→w2, r2→w2 — and crucially NOT w1→w2 (the readers
  // already transitively order the writers, and the WAR edges are what
  // serialize the write chain).
  EXPECT_EQ(d.num_edges, 4u);
  EXPECT_EQ(d.indeg[w2], 2);
}

TEST(DepBuilder, WritersChainWithoutIntermediateReaders) {
  DepBuilder b;
  const auto w1 = b.add_task();
  const auto w2 = b.add_task();
  const auto w3 = b.add_task();
  b.write(w1, 0);
  b.write(w2, 0);
  b.write(w3, 0);
  const auto d = b.infer();
  EXPECT_EQ(d.num_edges, 2u);  // w1→w2→w3, a chain in declaration order
  EXPECT_EQ(d.indeg[w1], 0);
  EXPECT_EQ(d.indeg[w2], 1);
  EXPECT_EQ(d.indeg[w3], 1);
}

TEST(DepBuilder, DuplicateEdgesAcrossAddressesCollapse) {
  DepBuilder b;
  const auto a = b.add_task();
  const auto c = b.add_task();
  b.write(a, 1);
  b.write(a, 2);
  b.read(c, 1);
  b.read(c, 2);
  b.edge(a, c);  // explicit duplicate of the inferred pair
  const auto d = b.infer();
  EXPECT_EQ(d.num_edges, 1u);
  EXPECT_EQ(d.indeg[c], 1);
}

TEST(DepBuilder, OutOfOrderAccessDeclarationThrows) {
  DepBuilder b;
  const auto t0 = b.add_task();
  const auto t1 = b.add_task();
  b.write(t1, 5);
  b.write(t0, 5);  // accesses must be declared in task order
  EXPECT_THROW((void)b.infer(), Error);
}

TEST(DepBuilder, BackwardExplicitEdgeThrows) {
  DepBuilder b;
  const auto t0 = b.add_task();
  const auto t1 = b.add_task();
  (void)t0;
  EXPECT_THROW(b.edge(t1, t0), Error);
  EXPECT_THROW(b.edge(t1, t1), Error);
}

// ----------------------------------------------------------------- EpochGate

TEST(EpochGateTest, ExpectAndAdvanceFollowTheProtocol) {
  EpochGate g(3);
  EXPECT_EQ(g.load(0), EpochGate::kUnassembled);
  EXPECT_NO_THROW(g.expect(0, EpochGate::kUnassembled));
  g.advance(0, EpochGate::kUnassembled, EpochGate::kAssembled);
  EXPECT_NO_THROW(g.expect(0, EpochGate::kAssembled));
  EXPECT_THROW(g.expect(0, EpochGate::kFactored), Error);
  // A double advance (a task running twice, or out of order) is caught by
  // the CAS, not absorbed.
  EXPECT_THROW(g.advance(0, EpochGate::kUnassembled, EpochGate::kAssembled),
               Error);
  g.advance(0, EpochGate::kAssembled, EpochGate::kEliminating);
  g.advance(0, EpochGate::kEliminating, EpochGate::kFactored);
  EXPECT_EQ(g.load(0), EpochGate::kFactored);
  EXPECT_EQ(g.load(1), EpochGate::kUnassembled);  // addresses are independent
}

// ------------------------------------------------------------ TaskGraph shape

symbolic::SymbolicFactor small_symbolic(const CscMatrix& a) {
  const sparse::Graph g = sparse::Graph::from_matrix(a);
  ordering::Ordering ord = ordering::nested_dissection(g, {});
  std::vector<index_t> ranges =
      symbolic::split_ranges(ord.ranges, core::SolverOptions{}.split);
  return symbolic::SymbolicFactor::build(a, ord, ranges);
}

TEST(TaskGraphStructure, CanonicalIdsAndCounts) {
  const CscMatrix a = sparse::laplacian_3d(5, 5, 5);
  const symbolic::SymbolicFactor sf = small_symbolic(a);
  for (const bool llt : {true, false}) {
    const TaskGraph g = TaskGraph::build(sf, llt);
    ASSERT_GT(g.num_tasks(), 0u);
    ASSERT_GT(g.num_edges(), 0u);

    // Assemble(k) has task id k; every supernode has exactly one Factor.
    std::uint32_t factors = 0, products = 0, applies = 0;
    for (std::uint32_t t = 0; t < g.num_tasks(); ++t) {
      const DagTask& task = g.task(t);
      if (t < static_cast<std::uint32_t>(sf.num_cblks())) {
        EXPECT_EQ(task.kind, DagTaskKind::Assemble);
        EXPECT_EQ(task.k, static_cast<index_t>(t));
        EXPECT_EQ(g.indegree(t), 0);  // assembly depends on nothing
      }
      if (task.kind == DagTaskKind::Factor) ++factors;
      if (task.kind == DagTaskKind::Product) ++products;
      if (task.kind == DagTaskKind::Apply) ++applies;
    }
    EXPECT_EQ(factors, static_cast<std::uint32_t>(sf.num_cblks()));
    EXPECT_EQ(products, applies);
    EXPECT_EQ(products, g.num_updates());

    // The critical path is a chain, so it can't exceed the task count and
    // must cover at least Assemble→Factor per supernode on the longest
    // elimination-tree path (≥ 2).
    EXPECT_GE(g.critical_path(), 2u);
    EXPECT_LE(g.critical_path(), g.num_tasks());

    // Tile addresses are dense and distinct.
    EXPECT_EQ(g.num_addrs(),
              static_cast<std::uint64_t>(sf.num_cblks() + (llt ? 1 : 2) * sf.num_bloks()));
  }
}

TEST(TaskGraphStructure, SequentialReleaseOrderIsCanonical) {
  const CscMatrix a = sparse::laplacian_3d(5, 5, 5);
  const symbolic::SymbolicFactor sf = small_symbolic(a);
  const TaskGraph g = TaskGraph::build(sf, /*llt=*/false);

  // The min-id sequential executor must release tasks exactly in id order —
  // ids are the canonical barrier sequence, and every edge points forward.
  std::vector<std::uint32_t> order;
  const auto rs = g.execute(
      nullptr,
      [&](std::uint32_t id) {
        order.push_back(id);
        return true;
      },
      [](std::uint32_t) { return 0; });
  ASSERT_EQ(order.size(), g.num_tasks());
  EXPECT_EQ(rs.executed, g.num_tasks());
  for (std::uint32_t t = 0; t < g.num_tasks(); ++t) EXPECT_EQ(order[t], t);
}

TEST(TaskGraphStructure, ParallelExecutionRespectsEveryEdge) {
  const CscMatrix a = sparse::laplacian_3d(6, 6, 6);
  const symbolic::SymbolicFactor sf = small_symbolic(a);
  const TaskGraph g = TaskGraph::build(sf, /*llt=*/true);

  ThreadPool pool(4, SchedulerKind::WorkStealing);
  std::vector<std::atomic<bool>> done(g.num_tasks());
  for (auto& d : done) d.store(false);
  std::atomic<bool> violated{false};

  // Predecessor lists from the successor CSR.
  std::vector<std::vector<std::uint32_t>> preds(g.num_tasks());
  for (std::uint32_t t = 0; t < g.num_tasks(); ++t) {
    const auto [s, e] = g.successors(t);
    for (const std::uint32_t* p = s; p != e; ++p) preds[*p].push_back(t);
  }

  const auto rs = g.execute(
      &pool,
      [&](std::uint32_t id) {
        for (const std::uint32_t p : preds[id])
          if (!done[p].load(std::memory_order_acquire)) violated.store(true);
        done[id].store(true, std::memory_order_release);
        return true;
      },
      [](std::uint32_t) { return 0; });
  EXPECT_EQ(rs.executed, g.num_tasks());
  EXPECT_GE(rs.ready_peak, 1u);
  EXPECT_FALSE(violated.load());
}

TEST(TaskGraphStructure, CooperativeCancellationMidDag) {
  const CscMatrix a = sparse::laplacian_3d(6, 6, 6);
  const symbolic::SymbolicFactor sf = small_symbolic(a);
  const TaskGraph g = TaskGraph::build(sf, /*llt=*/false);
  const std::uint32_t stop_at = g.num_tasks() / 3;

  for (const int threads : {0, 4}) {
    ThreadPool pool(threads == 0 ? 1 : threads, SchedulerKind::WorkStealing);
    ThreadPool* pp = threads == 0 ? nullptr : &pool;
    std::atomic<std::uint64_t> ran{0};
    const auto rs = g.execute(
        pp,
        [&](std::uint32_t id) {
          ran.fetch_add(1);
          if (id >= stop_at) {
            if (pp != nullptr) pp->cancel();
            return false;  // cooperative stop: successors stay unreleased
          }
          return true;
        },
        [](std::uint32_t) { return 0; });
    EXPECT_LT(rs.executed, g.num_tasks()) << "threads=" << threads;
    EXPECT_EQ(rs.executed, ran.load()) << "threads=" << threads;
    if (pp != nullptr) {
      // No task leaks past the drain: the pool is idle and reusable.
      EXPECT_EQ(pp->pending(), 0);
      pp->reset_cancel();
      std::atomic<int> again{0};
      pp->submit([&] { again.fetch_add(1); }, 0);
      pp->wait_idle();
      EXPECT_EQ(again.load(), 1);
    }
  }
}

// ----------------------------------------------- factor-bits serialization

// Every byte of numeric factor state: tile representation (dense/low-rank,
// precision, rank) and the raw storage of whichever factors are live, plus
// the pivot vector. Two factorizations serialize equal iff their factors are
// bit-identical.
void serialize_tile(const lr::Tile& t, std::vector<unsigned char>& out) {
  const auto push = [&out](const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    out.insert(out.end(), b, b + n);
  };
  const std::uint8_t head[2] = {static_cast<std::uint8_t>(t.is_lowrank()),
                                static_cast<std::uint8_t>(t.precision())};
  push(head, sizeof head);
  const index_t rank = t.rank();
  push(&rank, sizeof rank);
  if (t.is_lowrank()) {
    const lr::LrMatrix& l = t.lr();
    if (l.prec == lr::Precision::Fp32) {
      push(l.u32.data(), l.u32.bytes());
      push(l.v32.data(), l.v32.bytes());
    } else {
      push(l.u.data(), l.u.bytes());
      push(l.v.data(), l.v.bytes());
    }
  } else if (t.dense().size() > 0) {
    push(t.dense().data(), t.dense().bytes());
  }
}

std::vector<unsigned char> serialize_factors(const Solver& s) {
  std::vector<unsigned char> out;
  const symbolic::SymbolicFactor& sf = s.symbolic();
  for (index_t k = 0; k < sf.num_cblks(); ++k) {
    const core::CblkData& cd = s.numeric().cblk_data(k);
    serialize_tile(cd.diag, out);
    for (const lr::Tile& t : cd.lpanel) serialize_tile(t, out);
    for (const lr::Tile& t : cd.upanel) serialize_tile(t, out);
    const auto* b = reinterpret_cast<const unsigned char*>(cd.ipiv.data());
    out.insert(out.end(), b, b + cd.ipiv.size() * sizeof(index_t));
  }
  return out;
}

SolverOptions stress_opts(Strategy s, Factorization f, core::Dataflow d,
                          int threads) {
  SolverOptions o;
  o.strategy = s;
  o.factorization = f;
  o.dataflow = d;
  o.threads = threads;
  // Small thresholds so the small stress matrices still exercise low-rank
  // tiles, multi-blok panels, and real update DAGs.
  o.compress_min_width = 16;
  o.compress_min_height = 8;
  o.split.split_threshold = 64;
  o.split.split_size = 32;
  return o;
}

constexpr Strategy kStrategies[] = {Strategy::Dense, Strategy::JustInTime,
                                    Strategy::MinimalMemory, Strategy::Adaptive};
constexpr Factorization kKinds[] = {Factorization::Llt, Factorization::Lu};

// The determinism contract, sequential half: with one thread the dataflow
// executor replays the canonical order, so its factors must equal the
// barrier's bit for bit — every strategy, both kinds, both tile precisions.
TEST(DagDeterminism, SequentialDagIsBitIdenticalToBarrier) {
  const CscMatrix a = sparse::heterogeneous_poisson_3d(6, 6, 6, 4.0, 42);
  for (const Strategy s : kStrategies) {
    for (const Factorization f : kKinds) {
      for (const TilePrecision p : {TilePrecision::Fp64,
                                    TilePrecision::MixedTiles}) {
        SolverOptions ob = stress_opts(s, f, core::Dataflow::Barrier, 1);
        SolverOptions od = stress_opts(s, f, core::Dataflow::Dag, 1);
        ob.precision = od.precision = p;
        Solver barrier(ob), dag(od);
        barrier.factorize(a);
        dag.factorize(a);
        const auto bb = serialize_factors(barrier);
        const auto db = serialize_factors(dag);
        ASSERT_EQ(bb.size(), db.size())
            << strategy_name(s) << (f == Factorization::Lu ? " LU" : " LLt");
        EXPECT_EQ(0, std::memcmp(bb.data(), db.data(), bb.size()))
            << strategy_name(s) << (f == Factorization::Lu ? " LU" : " LLt")
            << " " << core::precision_name(p);
        EXPECT_GT(dag.stats().dag_tasks, 0u);
        EXPECT_EQ(dag.stats().dag_executed, dag.stats().dag_tasks);
      }
    }
  }
}

// The determinism contract, parallel half: the per-tile write chains pin the
// value history, so Dag runs are bit-identical to the sequential barrier at
// ANY thread count — the property the barrier scheduler does not have.
TEST(DagDeterminism, StressGridMatchesSequentialBarrierBitwise) {
  constexpr std::uint64_t kSeeds[] = {1, 7, 2026};
  for (const std::uint64_t seed : kSeeds) {
    const CscMatrix a = sparse::heterogeneous_poisson_3d(5, 5, 6, 3.0, seed);
    for (const Strategy s : kStrategies) {
      for (const Factorization f : kKinds) {
        Solver barrier(stress_opts(s, f, core::Dataflow::Barrier, 1));
        barrier.factorize(a);
        const auto ref = serialize_factors(barrier);
        for (const int threads : {1, 2, 8}) {
          Solver dag(stress_opts(s, f, core::Dataflow::Dag, threads));
          dag.factorize(a);
          const auto got = serialize_factors(dag);
          ASSERT_EQ(ref.size(), got.size());
          EXPECT_EQ(0, std::memcmp(ref.data(), got.data(), ref.size()))
              << "seed=" << seed << " " << strategy_name(s)
              << (f == Factorization::Lu ? " LU" : " LLt")
              << " threads=" << threads;
          EXPECT_EQ(dag.stats().dag_executed, dag.stats().dag_tasks);
          // And the factors actually solve the system.
          std::vector<real_t> b(static_cast<std::size_t>(a.rows()), 1.0);
          const auto x = dag.solve(b);
          EXPECT_LT(sparse::backward_error(a, x.data(), b.data()), 1e-6);
        }
      }
    }
  }
}

// LUAR accumulation folds its flush into the Compress task; the tile-local
// value histories are unchanged, so accumulation must stay bit-identical too.
TEST(DagDeterminism, AccumulatedUpdatesStayBitIdentical) {
  const CscMatrix a = sparse::heterogeneous_poisson_3d(6, 6, 5, 3.0, 3);
  for (const Factorization f : kKinds) {
    SolverOptions ob = stress_opts(Strategy::MinimalMemory, f,
                                   core::Dataflow::Barrier, 1);
    ob.accumulate_updates = true;
    SolverOptions od = ob;
    od.dataflow = core::Dataflow::Dag;
    Solver barrier(ob);
    barrier.factorize(a);
    const auto ref = serialize_factors(barrier);
    for (const int threads : {1, 8}) {
      SolverOptions o = od;
      o.threads = threads;
      Solver dag(o);
      dag.factorize(a);
      const auto got = serialize_factors(dag);
      ASSERT_EQ(ref.size(), got.size());
      EXPECT_EQ(0, std::memcmp(ref.data(), got.data(), ref.size()))
          << (f == Factorization::Lu ? "LU" : "LLt") << " threads=" << threads;
    }
  }
}

// Batched kernel execution routes every dag task's kernels through width-1
// KernelBatch invocations; the arithmetic path is identical, so batching
// must not perturb a single bit either.
TEST(DagDeterminism, BatchingPreservesBits) {
  const CscMatrix a = sparse::heterogeneous_poisson_3d(6, 5, 5, 4.0, 11);
  SolverOptions ob = stress_opts(Strategy::JustInTime, Factorization::Lu,
                                 core::Dataflow::Barrier, 1);
  ob.batching = Batching::Off;
  Solver barrier(ob);
  barrier.factorize(a);
  const auto ref = serialize_factors(barrier);
  for (const Batching batching : {Batching::Off, Batching::PerSupernode}) {
    for (const int threads : {1, 4}) {
      SolverOptions o = stress_opts(Strategy::JustInTime, Factorization::Lu,
                                    core::Dataflow::Dag, threads);
      o.batching = batching;
      Solver dag(o);
      dag.factorize(a);
      const auto got = serialize_factors(dag);
      ASSERT_EQ(ref.size(), got.size());
      EXPECT_EQ(0, std::memcmp(ref.data(), got.data(), ref.size()))
          << core::batching_name(batching) << " threads=" << threads;
    }
  }
}

// Both scheduler substrates must drive the DAG to the same bits.
TEST(DagDeterminism, BothSchedulerKindsMatch) {
  const CscMatrix a = sparse::heterogeneous_poisson_3d(5, 6, 5, 4.0, 99);
  Solver barrier(stress_opts(Strategy::Adaptive, Factorization::Llt,
                             core::Dataflow::Barrier, 1));
  barrier.factorize(a);
  const auto ref = serialize_factors(barrier);
  for (const SchedulerKind kind :
       {SchedulerKind::WorkStealing, SchedulerKind::SharedQueue}) {
    SolverOptions o = stress_opts(Strategy::Adaptive, Factorization::Llt,
                                  core::Dataflow::Dag, 8);
    o.scheduler = kind;
    Solver dag(o);
    dag.factorize(a);
    const auto got = serialize_factors(dag);
    ASSERT_EQ(ref.size(), got.size());
    EXPECT_EQ(0, std::memcmp(ref.data(), got.data(), ref.size()))
        << scheduler_name(kind);
  }
}

// The DAG stats surfaced through SolverStats are internally consistent.
TEST(DagStats, CountersAreCoherent) {
  const CscMatrix a = sparse::laplacian_3d(7, 7, 7);
  Solver s(stress_opts(Strategy::JustInTime, Factorization::Llt,
                       core::Dataflow::Dag, 4));
  s.factorize(a);
  const SolverStats& st = s.stats();
  EXPECT_GT(st.dag_tasks, 0u);
  EXPECT_GT(st.dag_edges, 0u);
  EXPECT_EQ(st.dag_executed, st.dag_tasks);
  EXPECT_GE(st.dag_ready_peak, 1u);
  EXPECT_GE(st.dag_critical_path, 2u);
  EXPECT_LE(st.dag_critical_path, st.dag_tasks);
  // Barrier runs must keep the counters at zero.
  Solver b(stress_opts(Strategy::JustInTime, Factorization::Llt,
                       core::Dataflow::Barrier, 4));
  b.factorize(a);
  EXPECT_EQ(b.stats().dag_tasks, 0u);
}

} // namespace
