// Unit tests for the dense matrix container and views.

#include <gtest/gtest.h>

#include "linalg/matrix.hpp"

namespace {

using namespace blr;
using namespace blr::la;

TEST(Matrix, ConstructsZeroInitialized) {
  DMatrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 3; ++i) EXPECT_EQ(m(i, j), 0.0);
}

TEST(Matrix, ElementAccessIsColumnMajor) {
  DMatrix m(2, 3);
  m(0, 0) = 1;
  m(1, 0) = 2;
  m(0, 1) = 3;
  EXPECT_EQ(m.data()[0], 1);
  EXPECT_EQ(m.data()[1], 2);
  EXPECT_EQ(m.data()[2], 3);
}

TEST(Matrix, ViewSharesStorage) {
  DMatrix m(3, 3);
  DView v = m.view();
  v(1, 2) = 7.5;
  EXPECT_EQ(m(1, 2), 7.5);
}

TEST(Matrix, SubViewOffsetsAndStride) {
  DMatrix m(4, 4);
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 4; ++i) m(i, j) = static_cast<real_t>(10 * i + j);
  DView s = m.sub(1, 2, 2, 2);
  EXPECT_EQ(s.rows, 2);
  EXPECT_EQ(s.cols, 2);
  EXPECT_EQ(s(0, 0), m(1, 2));
  EXPECT_EQ(s(1, 1), m(2, 3));
  EXPECT_EQ(s.ld, 4);
  s(0, 1) = -1;
  EXPECT_EQ(m(1, 3), -1);
}

TEST(Matrix, CopyFromStridedView) {
  DMatrix m(4, 4);
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 4; ++i) m(i, j) = static_cast<real_t>(i + 4 * j);
  DMatrix c(m.cview().sub(1, 1, 3, 2));
  EXPECT_EQ(c.rows(), 3);
  EXPECT_EQ(c.ld(), 3);  // compacted
  EXPECT_EQ(c(0, 0), m(1, 1));
  EXPECT_EQ(c(2, 1), m(3, 2));
}

TEST(Matrix, FillAndIdentity) {
  DMatrix m(3, 5);
  fill(m.view(), 2.5);
  EXPECT_EQ(m(2, 4), 2.5);
  set_identity(m.view());
  EXPECT_EQ(m(1, 1), 1.0);
  EXPECT_EQ(m(1, 2), 0.0);
  EXPECT_EQ(m(2, 2), 1.0);
}

TEST(Matrix, TransposeRectangular) {
  DMatrix m(2, 3);
  m(0, 1) = 5;
  m(1, 2) = 7;
  DMatrix t(3, 2);
  transpose<real_t>(m.cview(), t.view());
  EXPECT_EQ(t(1, 0), 5);
  EXPECT_EQ(t(2, 1), 7);
}

TEST(Matrix, CopyBetweenViews) {
  DMatrix a(3, 3);
  a(1, 1) = 4;
  DMatrix b(3, 3);
  copy<real_t>(a.cview(), b.view());
  EXPECT_EQ(b(1, 1), 4);
}

TEST(Matrix, ReshapeZeroes) {
  DMatrix m(2, 2);
  m(0, 0) = 9;
  m.reshape(5, 1);
  EXPECT_EQ(m.rows(), 5);
  EXPECT_EQ(m.cols(), 1);
  EXPECT_EQ(m(0, 0), 0.0);
}

TEST(Matrix, EmptyMatrixIsSafe) {
  DMatrix m(0, 0);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0);
  DMatrix n(3, 0);
  EXPECT_TRUE(n.empty());
}

TEST(Matrix, AssignChecksShape) {
  DMatrix a(2, 2);
  DMatrix b(3, 3);
  EXPECT_THROW(a.assign(b.cview()), Error);
}

TEST(Matrix, FloatInstantiationWorks) {
  Matrix<float> m(2, 2);
  m(0, 0) = 1.5f;
  Matrix<float> t(2, 2);
  transpose<float>(m.cview(), t.view());
  EXPECT_EQ(t(0, 0), 1.5f);
}

} // namespace
