// Unit + property tests of the LAPACK-layer factorizations (getrf/potrf and
// their solves), including pivoting behaviour and breakdown reporting.

#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "linalg/factorizations.hpp"
#include "linalg/norms.hpp"
#include "linalg/random.hpp"

namespace {

using namespace blr;
using namespace blr::la;

class GetrfSizes : public ::testing::TestWithParam<index_t> {};

TEST_P(GetrfSizes, SolveResidualIsSmall) {
  const index_t n = GetParam();
  Prng rng(static_cast<std::uint64_t>(n));
  DMatrix a = random_diagdom<real_t>(n, rng);
  const DMatrix a0 = a;
  std::vector<index_t> ipiv;
  ASSERT_EQ(getrf(a.view(), ipiv), 0);

  DMatrix b(n, 3);
  random_normal(b.view(), rng);
  DMatrix x = b;
  getrs<real_t>(a.cview(), ipiv, x.view());

  DMatrix r = b;
  gemm(Trans::No, Trans::No, real_t(-1), a0.cview(), x.cview(), real_t(1), r.view());
  EXPECT_LT(norm_fro(r.cview()), 1e-10 * norm_fro(b.cview()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, GetrfSizes,
                         ::testing::Values(1, 2, 3, 5, 8, 17, 33, 64, 129));

TEST(Getrf, PivotingHandlesZeroLeadingEntry) {
  DMatrix a(3, 3);
  // a(0,0) = 0 forces an immediate pivot.
  a(0, 0) = 0;  a(0, 1) = 2;  a(0, 2) = 1;
  a(1, 0) = 1;  a(1, 1) = 1;  a(1, 2) = 1;
  a(2, 0) = 4;  a(2, 1) = 0;  a(2, 2) = 3;
  const DMatrix a0 = a;
  std::vector<index_t> ipiv;
  ASSERT_EQ(getrf(a.view(), ipiv), 0);
  EXPECT_EQ(ipiv[0], 2);  // largest |entry| in column 0

  DMatrix x(3, 1);
  x(0, 0) = 1;
  x(1, 0) = 2;
  x(2, 0) = 3;
  DMatrix b(3, 1);
  gemm(Trans::No, Trans::No, real_t(1), a0.cview(), x.cview(), real_t(0), b.view());
  DMatrix sol = b;
  getrs<real_t>(a.cview(), ipiv, sol.view());
  EXPECT_LT(diff_fro(sol.cview(), x.cview()), 1e-12);
}

TEST(Getrf, ReportsSingularMatrix) {
  DMatrix a(3, 3);  // rank 1
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 3; ++i) a(i, j) = static_cast<real_t>((i + 1));
  std::vector<index_t> ipiv;
  EXPECT_GT(getrf(a.view(), ipiv), 0);
}

TEST(Getrf, RectangularPanelFactorization) {
  Prng rng(9);
  DMatrix a(10, 4);
  random_normal(a.view(), rng);
  const DMatrix a0 = a;
  std::vector<index_t> ipiv;
  ASSERT_EQ(getrf(a.view(), ipiv), 0);
  // Reconstruct P·A = L·U with L 10x4 unit-lower and U 4x4 upper.
  DMatrix l(10, 4), u(4, 4);
  for (index_t j = 0; j < 4; ++j) {
    l(j, j) = 1;
    for (index_t i = j + 1; i < 10; ++i) l(i, j) = a(i, j);
    for (index_t i = 0; i <= j; ++i) u(i, j) = a(i, j);
  }
  DMatrix pa = a0;
  laswp(pa.view(), ipiv);
  DMatrix lu(10, 4);
  gemm(Trans::No, Trans::No, real_t(1), l.cview(), u.cview(), real_t(0), lu.view());
  EXPECT_LT(diff_fro(lu.cview(), pa.cview()), 1e-11 * norm_fro(a0.cview()));
}

TEST(LuInverse, InverseTimesMatrixIsIdentity) {
  Prng rng(21);
  const index_t n = 20;
  DMatrix a = random_diagdom<real_t>(n, rng);
  const DMatrix a0 = a;
  std::vector<index_t> ipiv;
  ASSERT_EQ(getrf(a.view(), ipiv), 0);
  DMatrix inv(n, n);
  lu_inverse<real_t>(a.cview(), ipiv, inv.view());
  DMatrix prod(n, n);
  gemm(Trans::No, Trans::No, real_t(1), a0.cview(), inv.cview(), real_t(0), prod.view());
  DMatrix eye(n, n);
  set_identity(eye.view());
  EXPECT_LT(diff_fro(prod.cview(), eye.cview()), 1e-9);
}

class PotrfSizes : public ::testing::TestWithParam<index_t> {};

TEST_P(PotrfSizes, CholeskyReconstructs) {
  const index_t n = GetParam();
  Prng rng(static_cast<std::uint64_t>(100 + n));
  DMatrix a = random_spd<real_t>(n, rng);
  const DMatrix a0 = a;
  ASSERT_EQ(potrf(a.view()), 0);
  // L·Lᵗ == A (only lower triangle of the factor is valid).
  DMatrix l(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i) l(i, j) = a(i, j);
  DMatrix llt(n, n);
  gemm(Trans::No, Trans::Yes, real_t(1), l.cview(), l.cview(), real_t(0), llt.view());
  EXPECT_LT(diff_fro(llt.cview(), a0.cview()), 1e-9 * norm_fro(a0.cview()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PotrfSizes, ::testing::Values(1, 2, 4, 9, 16, 41, 100));

TEST(Potrf, SolveResidual) {
  Prng rng(77);
  const index_t n = 30;
  DMatrix a = random_spd<real_t>(n, rng);
  const DMatrix a0 = a;
  ASSERT_EQ(potrf(a.view()), 0);
  DMatrix b(n, 2);
  random_normal(b.view(), rng);
  DMatrix x = b;
  potrs<real_t>(a.cview(), x.view());
  DMatrix r = b;
  gemm(Trans::No, Trans::No, real_t(-1), a0.cview(), x.cview(), real_t(1), r.view());
  EXPECT_LT(norm_fro(r.cview()), 1e-10 * norm_fro(b.cview()));
}

TEST(Potrf, RejectsIndefiniteMatrix) {
  DMatrix a(2, 2);
  a(0, 0) = 1;
  a(1, 0) = 3;
  a(0, 1) = 3;
  a(1, 1) = 1;  // eigenvalues 4, -2
  EXPECT_GT(potrf(a.view()), 0);
}

TEST(Potrf, DoesNotReadUpperTriangle) {
  Prng rng(13);
  DMatrix a = random_spd<real_t>(6, rng);
  DMatrix b = a;
  // Poison b's strict upper triangle; factorization must be unaffected.
  for (index_t j = 1; j < 6; ++j)
    for (index_t i = 0; i < j; ++i) b(i, j) = 1e30;
  ASSERT_EQ(potrf(a.view()), 0);
  ASSERT_EQ(potrf(b.view()), 0);
  for (index_t j = 0; j < 6; ++j)
    for (index_t i = j; i < 6; ++i) EXPECT_DOUBLE_EQ(a(i, j), b(i, j));
}

TEST(Laswp, ForwardSwapsMatchPivotSequence) {
  DMatrix b(3, 1);
  b(0, 0) = 1;
  b(1, 0) = 2;
  b(2, 0) = 3;
  std::vector<index_t> ipiv{2, 2, 2};  // swap(0,2), swap(1,2), swap(2,2)
  laswp(b.view(), ipiv);
  EXPECT_EQ(b(0, 0), 3);
  EXPECT_EQ(b(1, 0), 1);
  EXPECT_EQ(b(2, 0), 2);
}

} // namespace
