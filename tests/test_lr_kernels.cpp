// Tests of the update kernels of §3.3: the tile product A·Bᵗ in every
// dense/low-rank combination, the LR2GE dense update, and the LR2LR
// extend-add with both SVD and RRQR recompression (padding, offsets,
// transposed contributions, densify fallback).

#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "linalg/norms.hpp"
#include "linalg/random.hpp"
#include "lowrank/compression.hpp"
#include "lowrank/kernels.hpp"

namespace {

using namespace blr;
using namespace blr::lr;

la::DMatrix materialize(const Tile& t) {
  la::DMatrix d(t.rows(), t.cols());
  t.to_dense(d.view());
  return d;
}

Tile make_tile(const la::DMatrix& value, bool lowrank, CompressionKind kind) {
  if (!lowrank) {
    la::DMatrix copy = value;
    return Tile::from_dense(std::move(copy));
  }
  Tile t = compress_to_tile(kind, value.cview(), 1e-12);
  // Tests construct genuinely low-rank inputs; ensure we got the LR form.
  EXPECT_TRUE(t.is_lowrank());
  return t;
}

struct ProductCase {
  bool a_lowrank, b_lowrank, need_ortho;
};

class AbtProduct : public ::testing::TestWithParam<ProductCase> {};

TEST_P(AbtProduct, MatchesDenseReference) {
  const auto p = GetParam();
  Prng rng(21);
  const index_t m = 30, n = 26, w = 18;
  const la::DMatrix av = la::random_rank_k<real_t>(m, w, 5, rng);
  const la::DMatrix bv = la::random_rank_k<real_t>(n, w, 4, rng);
  const Tile a = make_tile(av, p.a_lowrank, CompressionKind::Rrqr);
  const Tile b = make_tile(bv, p.b_lowrank, CompressionKind::Rrqr);

  const Tile prod =
      ab_t_product(a, b, CompressionKind::Rrqr, 1e-10, p.need_ortho);
  la::DMatrix expected(m, n);
  la::gemm(la::Trans::No, la::Trans::Yes, real_t(1), av.cview(), bv.cview(),
           real_t(0), expected.view());
  const la::DMatrix got = materialize(prod);
  EXPECT_LT(la::diff_fro(got.cview(), expected.cview()),
            1e-9 * (1 + la::norm_fro(expected.cview())));
  // Any combination with a low-rank operand must produce a low-rank result.
  EXPECT_EQ(prod.is_lowrank(), p.a_lowrank || p.b_lowrank);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, AbtProduct,
    ::testing::Values(ProductCase{false, false, false}, ProductCase{true, false, false},
                      ProductCase{false, true, false}, ProductCase{true, true, false},
                      ProductCase{true, false, true}, ProductCase{false, true, true},
                      ProductCase{true, true, true}),
    [](const auto& info) {
      const auto& p = info.param;
      std::string s;
      s += p.a_lowrank ? "LR" : "GE";
      s += p.b_lowrank ? "xLR" : "xGE";
      s += p.need_ortho ? "_ortho" : "_plain";
      return s;
    });

TEST(AbtProduct, OrthoResultHasOrthonormalU) {
  Prng rng(33);
  const index_t m = 40, n = 35, w = 20;
  const la::DMatrix av = la::random_rank_k<real_t>(m, w, 6, rng);
  const la::DMatrix bv = la::random_rank_k<real_t>(n, w, 5, rng);
  for (const bool a_lr : {true, false}) {
    for (const bool b_lr : {true, false}) {
      if (!a_lr && !b_lr) continue;
      const Tile a = make_tile(av, a_lr, CompressionKind::Rrqr);
      const Tile b = make_tile(bv, b_lr, CompressionKind::Rrqr);
      const Tile p = ab_t_product(a, b, CompressionKind::Rrqr, 1e-10, true);
      ASSERT_TRUE(p.is_lowrank());
      la::DMatrix g(p.rank(), p.rank());
      la::gemm(la::Trans::Yes, la::Trans::No, real_t(1), p.lr().u.cview(),
               p.lr().u.cview(), real_t(0), g.view());
      for (index_t i = 0; i < p.rank(); ++i) g(i, i) -= 1;
      EXPECT_LT(la::norm_fro(g.cview()), 1e-10) << a_lr << b_lr;
    }
  }
}

TEST(AbtProduct, LrLrRecompressionReducesRank) {
  // Two rank-8 factors whose product has rank <= 3 by construction.
  Prng rng(5);
  const index_t m = 50, n = 45, w = 30;
  la::DMatrix core = la::random_rank_k<real_t>(w, w, 3, rng);
  const la::DMatrix av = la::random_rank_k<real_t>(m, w, 8, rng);
  // bv = (rank-3 core)ᵗ·"anything" keeps the product rank at most 3.
  la::DMatrix bv(n, w);
  la::DMatrix tmp(n, w);
  la::random_normal(tmp.view(), rng);
  la::gemm(la::Trans::No, la::Trans::No, real_t(1), tmp.cview(), core.cview(),
           real_t(0), bv.view());

  const Tile a = make_tile(av, true, CompressionKind::Rrqr);
  const Tile b = make_tile(bv, true, CompressionKind::Rrqr);
  const Tile p = ab_t_product(a, b, CompressionKind::Rrqr, 1e-9, true);
  ASSERT_TRUE(p.is_lowrank());
  EXPECT_LE(p.rank(), 3 + 1);
}

TEST(ApplyToDense, SubtractsPlainAndTransposed) {
  Prng rng(9);
  const la::DMatrix pv = la::random_rank_k<real_t>(8, 6, 2, rng);
  la::DMatrix copy = pv;
  const Tile p = Tile::from_dense(std::move(copy), MemCategory::Workspace);

  la::DMatrix t1(8, 6);
  apply_to_dense(p, t1.view(), false);
  la::DMatrix t2(6, 8);
  apply_to_dense(p, t2.view(), true);
  for (index_t j = 0; j < 6; ++j) {
    for (index_t i = 0; i < 8; ++i) {
      EXPECT_DOUBLE_EQ(t1(i, j), -pv(i, j));
      EXPECT_DOUBLE_EQ(t2(j, i), -pv(i, j));
    }
  }
}

struct ExtendAddCase {
  CompressionKind kind;
  bool p_lowrank;
  bool transpose;
  index_t roff, coff;
};

class ExtendAdd : public ::testing::TestWithParam<ExtendAddCase> {};

TEST_P(ExtendAdd, MatchesDenseReference) {
  const auto cfg = GetParam();
  Prng rng(static_cast<std::uint64_t>(cfg.roff * 17 + cfg.coff + cfg.p_lowrank));
  const index_t M = 48, N = 40;
  const index_t pm = 14, pn = 11;  // contribution dims (pre-transpose)

  const la::DMatrix cv = la::random_rank_k<real_t>(M, N, 5, rng);
  Tile c = make_tile(cv, true, cfg.kind);

  const la::DMatrix pv = la::random_rank_k<real_t>(pm, pn, 3, rng);
  const Tile p = make_tile(pv, cfg.p_lowrank, cfg.kind);

  // Reference: dense C minus the (possibly transposed) padded contribution.
  la::DMatrix ref = cv;
  const index_t em = cfg.transpose ? pn : pm;
  const index_t en = cfg.transpose ? pm : pn;
  for (index_t j = 0; j < en; ++j)
    for (index_t i = 0; i < em; ++i)
      ref(cfg.roff + i, cfg.coff + j) -= cfg.transpose ? pv(j, i) : pv(i, j);

  lr2lr_add(c, p, cfg.roff, cfg.coff, cfg.kind, 1e-10, cfg.transpose);
  const la::DMatrix got = materialize(c);
  EXPECT_LT(la::diff_fro(got.cview(), ref.cview()),
            1e-8 * (1 + la::norm_fro(ref.cview())));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExtendAdd,
    ::testing::Values(
        ExtendAddCase{CompressionKind::Rrqr, true, false, 0, 0},
        ExtendAddCase{CompressionKind::Rrqr, true, false, 20, 15},
        ExtendAddCase{CompressionKind::Rrqr, true, true, 10, 5},
        ExtendAddCase{CompressionKind::Rrqr, false, false, 34, 29},
        ExtendAddCase{CompressionKind::Rrqr, false, true, 7, 3},
        ExtendAddCase{CompressionKind::Svd, true, false, 0, 0},
        ExtendAddCase{CompressionKind::Svd, true, false, 20, 15},
        ExtendAddCase{CompressionKind::Svd, true, true, 10, 5},
        ExtendAddCase{CompressionKind::Svd, false, false, 34, 29},
        ExtendAddCase{CompressionKind::Svd, false, true, 7, 3}),
    [](const auto& info) {
      const auto& p = info.param;
      std::string s = p.kind == CompressionKind::Svd ? "SVD" : "RRQR";
      s += p.p_lowrank ? "_lrP" : "_geP";
      s += p.transpose ? "_T" : "_N";
      s += "_o" + std::to_string(p.roff) + "_" + std::to_string(p.coff);
      return s;
    });

TEST(ExtendAdd, RankZeroTargetAdoptsContribution) {
  Prng rng(2);
  const index_t M = 30, N = 30;
  la::DMatrix zero(M, N);
  Tile c = compress_to_tile(CompressionKind::Rrqr, zero.cview(), 1e-8);
  ASSERT_EQ(c.rank(), 0);

  const la::DMatrix pv = la::random_rank_k<real_t>(10, 10, 2, rng);
  const Tile p = make_tile(pv, true, CompressionKind::Rrqr);
  lr2lr_add(c, p, 5, 7, CompressionKind::Rrqr, 1e-10);
  ASSERT_TRUE(c.is_lowrank());
  EXPECT_EQ(c.rank(), 2);
  const la::DMatrix got = materialize(c);
  for (index_t j = 0; j < 10; ++j)
    for (index_t i = 0; i < 10; ++i)
      EXPECT_NEAR(got(5 + i, 7 + j), -pv(i, j), 1e-12);
  EXPECT_NEAR(got(0, 0), 0.0, 1e-15);
}

TEST(ExtendAdd, DensifiesWhenRankExceedsBenefit) {
  Prng rng(4);
  const index_t M = 20, N = 20;  // beneficial limit ~9
  const la::DMatrix cv = la::random_rank_k<real_t>(M, N, 6, rng);
  Tile c = make_tile(cv, true, CompressionKind::Rrqr);

  // Full-rank contribution covering the whole block.
  la::DMatrix pv(M, N);
  la::random_normal(pv.view(), rng);
  la::DMatrix pcopy = pv;
  const Tile p = Tile::from_dense(std::move(pcopy), MemCategory::Workspace);
  lr2lr_add(c, p, 0, 0, CompressionKind::Rrqr, 1e-12);
  EXPECT_FALSE(c.is_lowrank());  // fell back to dense
  la::DMatrix ref = cv;
  for (index_t j = 0; j < N; ++j)
    for (index_t i = 0; i < M; ++i) ref(i, j) -= pv(i, j);
  EXPECT_LT(la::diff_fro(c.dense().cview(), ref.cview()), 1e-9);
}

TEST(ExtendAdd, DenseTargetGetsPlainSubtraction) {
  Prng rng(6);
  const la::DMatrix cv = la::random_rank_k<real_t>(25, 25, 25, rng);
  la::DMatrix copy = cv;
  Tile c = Tile::from_dense(std::move(copy));

  const la::DMatrix pv = la::random_rank_k<real_t>(8, 8, 2, rng);
  const Tile p = make_tile(pv, true, CompressionKind::Svd);
  lr2lr_add(c, p, 3, 4, CompressionKind::Svd, 1e-10);
  ASSERT_FALSE(c.is_lowrank());
  for (index_t j = 0; j < 8; ++j)
    for (index_t i = 0; i < 8; ++i)
      EXPECT_NEAR(c.dense()(3 + i, 4 + j), cv(3 + i, 4 + j) - pv(i, j), 1e-10);
}

TEST(ExtendAdd, FactoredTargetIsRejected) {
  // The tile lifecycle forbids extend-adds into an already-factored tile:
  // the driver must have applied every incoming update first.
  Prng rng(11);
  const la::DMatrix cv = la::random_rank_k<real_t>(20, 20, 3, rng);
  Tile c = make_tile(cv, true, CompressionKind::Rrqr);
  c.advance(TileState::Assembled);
  c.advance(TileState::Compressed);
  c.advance(TileState::Factored);

  const la::DMatrix pv = la::random_rank_k<real_t>(6, 6, 2, rng);
  const Tile p = make_tile(pv, true, CompressionKind::Rrqr);
  EXPECT_THROW(lr2lr_add(c, p, 0, 0, CompressionKind::Rrqr, 1e-10), Error);
}

TEST(ExtendAdd, RepeatedUpdatesKeepToleranceProperty) {
  // Many small contributions; the final materialized tile must stay within
  // a modest multiple of the tolerance of the dense reference.
  for (const auto kind : {CompressionKind::Rrqr, CompressionKind::Svd}) {
    Prng rng(77);
    const index_t M = 60, N = 50;
    const real_t tol = 1e-8;
    la::DMatrix ref(M, N);
    la::DMatrix zero(M, N);
    Tile c = compress_to_tile(kind, zero.cview(), tol);
    for (int it = 0; it < 12; ++it) {
      const index_t pm = 8 + static_cast<index_t>(rng.below(12));
      const index_t pn = 6 + static_cast<index_t>(rng.below(10));
      const index_t ro = static_cast<index_t>(rng.below(static_cast<std::uint64_t>(M - pm)));
      const index_t co = static_cast<index_t>(rng.below(static_cast<std::uint64_t>(N - pn)));
      const la::DMatrix pv = la::random_rank_k<real_t>(pm, pn, 2, rng);
      for (index_t j = 0; j < pn; ++j)
        for (index_t i = 0; i < pm; ++i) ref(ro + i, co + j) -= pv(i, j);
      const Tile p = make_tile(pv, true, kind);
      lr2lr_add(c, p, ro, co, kind, tol);
    }
    la::DMatrix got(M, N);
    c.to_dense(got.view());
    EXPECT_LT(la::diff_fro(got.cview(), ref.cview()),
              20 * tol * (1 + la::norm_fro(ref.cview())))
        << (kind == CompressionKind::Svd ? "SVD" : "RRQR");
  }
}

} // namespace
