// Re-factorization and Session tests (ctest label `session`; DESIGN.md §15).
//
// Pins the amortized re-factorization contract:
//  - refactorize() produces the same answers as a cold factorize() of the
//    same values — bitwise for the deterministic compression paths (Dense,
//    RRQR), within the τ-based backward-error bound for the sketched ones —
//    across strategies and both dataflow engines;
//  - rank warm-starting is verify-and-grow: value changes that inflate
//    ranks take the grow fallback instead of degrading accuracy;
//  - a Session coalesces concurrent single-RHS solves into blocked
//    multi-RHS solves without changing any result bit;
//  - a refactorize() that breaches the governor budget mid-pass leaves the
//    session serving the previous factors;
//  - solve() without a successful factorization raises the structured
//    FailureKind::NotFactorized report (solver and session flavors).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "blr.hpp"

namespace {

using namespace blr;
using sparse::CscMatrix;

SolverOptions small_problem_options(Strategy strategy, lr::CompressionKind kind,
                                    Dataflow dataflow) {
  SolverOptions o;
  o.strategy = strategy;
  o.kind = kind;
  o.dataflow = dataflow;
  o.tolerance = 1e-8;
  // Small problem: lower the compressibility thresholds so the BLR machinery
  // actually engages.
  o.compress_min_width = 16;
  o.compress_min_height = 8;
  o.split.split_threshold = 64;
  o.split.split_size = 32;
  return o;
}

std::vector<real_t> seeded_rhs(index_t n, std::uint64_t seed) {
  Prng rng(seed);
  std::vector<real_t> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.normal();
  return b;
}

/// Same pattern, different values: scale every entry and strengthen the
/// diagonal (keeps SPD matrices SPD) — the time-stepping value change.
CscMatrix step_values(const CscMatrix& a, real_t scale, real_t shift) {
  CscMatrix out = a;
  for (index_t j = 0; j < out.cols(); ++j) {
    for (index_t p = out.colptr()[static_cast<std::size_t>(j)];
         p < out.colptr()[static_cast<std::size_t>(j) + 1]; ++p) {
      out.values()[static_cast<std::size_t>(p)] *= scale;
      if (out.rowind()[static_cast<std::size_t>(p)] == j) {
        out.values()[static_cast<std::size_t>(p)] += shift;
      }
    }
  }
  return out;
}

struct SessionConfig {
  Strategy strategy;
  Dataflow dataflow;
};

std::string config_name(const ::testing::TestParamInfo<SessionConfig>& info) {
  std::string s = core::strategy_name(info.param.strategy);
  s.erase(std::remove_if(s.begin(), s.end(),
                         [](char c) { return c == ' ' || c == '-'; }),
          s.end());
  return s + (info.param.dataflow == Dataflow::Dag ? "Dag" : "Barrier");
}

class RefactorizeParity : public ::testing::TestWithParam<SessionConfig> {};

// Warm pass == cold pass, bitwise, for the deterministic compression path
// (RRQR stops at the first rank meeting τ, so a sufficient warm cap cannot
// change the result; the grow fallback covers an insufficient one).
TEST_P(RefactorizeParity, WarmMatchesColdBitwise) {
  const SessionConfig cfg = GetParam();
  const CscMatrix a1 = sparse::laplacian_3d(10, 10, 10);
  const CscMatrix a2 = step_values(a1, 1.5, 0.3);
  SolverOptions opts =
      small_problem_options(cfg.strategy, lr::CompressionKind::Rrqr,
                            cfg.dataflow);
  // Dense-skip replays the previous pass's *final* tile states, and a block
  // that densified during extend-adds is then never re-attempted at assembly
  // — τ-accurate (dense is exact) but not bit-identical to a cold pass.
  // Bitwise parity is pinned with it off; DenseSkipStaysAccurate covers the
  // default-on behavior.
  opts.warm_dense_skip = false;
  const auto b = seeded_rhs(a1.rows(), 1234);

  Solver cold(opts);
  cold.factorize(a2);
  const std::vector<real_t> x_cold = cold.solve(b);

  Solver warm(opts);
  warm.factorize(a1);
  const auto plan_before = warm.plan();
  const double analyze_s = warm.stats().time_analyze;
  warm.refactorize(a2);
  const std::vector<real_t> x_warm = warm.solve(b);

  ASSERT_EQ(x_cold.size(), x_warm.size());
  for (std::size_t i = 0; i < x_cold.size(); ++i) {
    ASSERT_EQ(x_cold[i], x_warm[i]) << "component " << i;
  }
  EXPECT_LT(sparse::backward_error(a2, x_warm.data(), b.data()),
            opts.tolerance * 500);

  // Structural pins of "measurably cheaper": the symbolic plan is reused
  // verbatim (same object, no analyze time re-paid), retired buffers were
  // recycled, and — outside the Dense strategy — compressions ran off
  // replayed rank hints.
  const core::SolverStats& st = warm.stats();
  EXPECT_EQ(st.refactorizations, 1u);
  EXPECT_EQ(warm.plan().get(), plan_before.get());
  EXPECT_EQ(st.time_analyze, analyze_s);
  EXPECT_GT(st.buffer_hits, 0u);
  if (cfg.strategy != Strategy::Dense) {
    EXPECT_GT(st.warm.attempts + st.warm.dense_skips, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    StrategyDataflowGrid, RefactorizeParity,
    ::testing::Values(SessionConfig{Strategy::Dense, Dataflow::Barrier},
                      SessionConfig{Strategy::Dense, Dataflow::Dag},
                      SessionConfig{Strategy::JustInTime, Dataflow::Barrier},
                      SessionConfig{Strategy::JustInTime, Dataflow::Dag},
                      SessionConfig{Strategy::MinimalMemory, Dataflow::Barrier},
                      SessionConfig{Strategy::MinimalMemory, Dataflow::Dag},
                      SessionConfig{Strategy::Adaptive, Dataflow::Barrier},
                      SessionConfig{Strategy::Adaptive, Dataflow::Dag}),
    config_name);

// The sketched compression paths (SVD warm-starts via a randomized sketch,
// Randomized re-sketches at the warm width) change bits but never the
// τ-based accuracy contract.
TEST(RefactorizeAccuracy, SketchedKindsMeetToleranceWarm) {
  const CscMatrix a1 = sparse::laplacian_3d(10, 10, 10);
  const CscMatrix a2 = step_values(a1, 1.5, 0.3);
  for (const auto kind :
       {lr::CompressionKind::Svd, lr::CompressionKind::Randomized}) {
    SolverOptions opts = small_problem_options(Strategy::JustInTime, kind,
                                               Dataflow::Barrier);
    Solver warm(opts);
    warm.factorize(a1);
    warm.refactorize(a2);
    const auto b = seeded_rhs(a2.rows(), 99);
    const std::vector<real_t> x = warm.solve(b);
    EXPECT_LT(sparse::backward_error(a2, x.data(), b.data()),
              opts.tolerance * 500)
        << core::kind_name(kind);
  }
}

// Default-on dense-skip: blocks whose previous pass ended dense keep their
// (exact) dense representation without re-attempting compression. Bits may
// differ from a cold pass, the τ-based residual bound may not.
TEST(RefactorizeAccuracy, DenseSkipStaysAccurate) {
  const CscMatrix a1 = sparse::laplacian_3d(10, 10, 10);
  const CscMatrix a2 = step_values(a1, 1.5, 0.3);
  for (const auto strategy : {Strategy::MinimalMemory, Strategy::Adaptive}) {
    SolverOptions opts = small_problem_options(
        strategy, lr::CompressionKind::Rrqr, Dataflow::Barrier);
    ASSERT_TRUE(opts.warm_dense_skip);  // the default under test
    Solver warm(opts);
    warm.factorize(a1);
    warm.refactorize(a2);
    EXPECT_GT(warm.stats().warm.dense_skips, 0u)
        << core::strategy_name(strategy);
    const auto b = seeded_rhs(a2.rows(), 7);
    const std::vector<real_t> x = warm.solve(b);
    EXPECT_LT(sparse::backward_error(a2, x.data(), b.data()),
              opts.tolerance * 500)
        << core::strategy_name(strategy);
  }
}

// Values change that inflates ranks: the warm guesses (slack 0, so any
// growth is visible) must take the verified grow fallback, not degrade the
// answer. Smooth Laplacian -> high-contrast Poisson on the same stencil.
TEST(RefactorizeAccuracy, ValueChangeGrowsRanksNotError) {
  const CscMatrix a1 = sparse::laplacian_3d(10, 10, 10);
  const CscMatrix a2 =
      sparse::heterogeneous_poisson_3d(10, 10, 10, /*contrast=*/4.0, 77);
  ASSERT_EQ(a1.nnz(), a2.nnz());  // same stencil, different values

  SolverOptions opts = small_problem_options(
      Strategy::JustInTime, lr::CompressionKind::Rrqr, Dataflow::Barrier);
  opts.warm_rank_slack = 0;
  opts.warm_dense_skip = false;  // rough blocks must re-attempt compression
  Solver solver(opts);
  solver.factorize(a1);
  solver.refactorize(a2);

  const core::SolverStats& st = solver.stats();
  EXPECT_GT(st.warm.attempts, 0u);
  EXPECT_GT(st.warm.grows, 0u);

  const auto b = seeded_rhs(a2.rows(), 5);
  const std::vector<real_t> x = solver.solve(b);
  EXPECT_LT(sparse::backward_error(a2, x.data(), b.data()),
            opts.tolerance * 500);
}

TEST(Refactorize, PatternMismatchThrows) {
  const CscMatrix a1 = sparse::laplacian_3d(10, 10, 10);
  const CscMatrix b1 = sparse::laplacian_2d(40, 25);  // same n, other pattern
  ASSERT_EQ(a1.rows(), b1.rows());
  Solver solver(small_problem_options(Strategy::JustInTime,
                                      lr::CompressionKind::Rrqr,
                                      Dataflow::Barrier));
  solver.factorize(a1);
  EXPECT_THROW(solver.refactorize(b1), blr::Error);
  // The pattern guard fired before any factor was touched.
  EXPECT_TRUE(solver.factorized());
}

TEST(Refactorize, BeforeAnalyzeActsAsColdFactorize) {
  const CscMatrix a = sparse::laplacian_3d(8, 8, 8);
  Solver solver(small_problem_options(Strategy::MinimalMemory,
                                      lr::CompressionKind::Rrqr,
                                      Dataflow::Barrier));
  solver.refactorize(a);
  EXPECT_TRUE(solver.factorized());
  EXPECT_EQ(solver.stats().refactorizations, 0u);  // it was a cold pass
  const auto b = seeded_rhs(a.rows(), 3);
  const std::vector<real_t> x = solver.solve(b);
  EXPECT_LT(sparse::backward_error(a, x.data(), b.data()), 1e-8 * 500);
}

// --- Structured not-factorized failure path (solver flavor) ---------------

TEST(NotFactorized, SolveBeforeFactorizeIsStructured) {
  Solver solver;
  std::vector<real_t> b(10, 1.0), x(10);
  try {
    solver.solve(b.data(), x.data());
    FAIL() << "solve() without factors must throw";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.report().kind, FailureKind::NotFactorized);
    EXPECT_NE(e.report().detail.find("required before solve()"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("not-factorized"), std::string::npos);
  }
  EXPECT_THROW(solver.preconditioner(), NumericalError);
}

TEST(NotFactorized, FailedFactorizeIsReportedBySolve) {
  const CscMatrix a = sparse::laplacian_3d(6, 6, 6);
  SolverOptions opts = small_problem_options(
      Strategy::JustInTime, lr::CompressionKind::Rrqr, Dataflow::Barrier);
  opts.fault.kind = core::FaultInjection::Kind::TinyPivot;
  opts.fault.supernode = 0;
  Solver solver(opts);
  EXPECT_THROW(solver.factorize(a), NumericalError);
  ASSERT_FALSE(solver.factorized());
  std::vector<real_t> b(static_cast<std::size_t>(a.rows()), 1.0);
  std::vector<real_t> x(b.size());
  try {
    solver.solve(b.data(), x.data());
    FAIL() << "solve() after a failed factorize must throw";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.report().kind, FailureKind::NotFactorized);
    EXPECT_NE(e.report().detail.find("last failure"), std::string::npos);
    EXPECT_NE(e.report().detail.find("pivot"), std::string::npos);
  }
}

// --- Session ---------------------------------------------------------------

TEST(SessionTest, SolveBeforeRefactorizeIsStructured) {
  Session session;
  std::vector<real_t> b(10, 1.0), x(10);
  EXPECT_FALSE(session.serving());
  try {
    session.solve(b.data(), x.data());
    FAIL() << "Session::solve without factors must throw";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.report().kind, FailureKind::NotFactorized);
    EXPECT_NE(e.report().detail.find("Session::solve"), std::string::npos);
  }
}

TEST(SessionTest, ServesAcrossSteps) {
  const CscMatrix a1 = sparse::laplacian_3d(8, 8, 8);
  const CscMatrix a2 = step_values(a1, 2.0, 0.1);
  Session session(small_problem_options(Strategy::MinimalMemory,
                                        lr::CompressionKind::Rrqr,
                                        Dataflow::Barrier));
  session.refactorize(a1);
  EXPECT_EQ(session.epoch(), 1u);
  EXPECT_TRUE(session.serving());

  const auto b = seeded_rhs(a1.rows(), 11);
  std::vector<real_t> x;
  const core::SolveStats st1 = session.solve(b, x);
  EXPECT_EQ(st1.factor_epoch, 1u);
  EXPECT_GE(st1.batch_size, 1);
  EXPECT_GE(st1.solve_seconds, 0.0);
  EXPECT_LT(sparse::backward_error(a1, x.data(), b.data()), 1e-8 * 500);

  session.refactorize(a2);
  EXPECT_EQ(session.epoch(), 2u);
  EXPECT_EQ(session.stats().refactorizations, 1u);
  const core::SolveStats st2 = session.solve(b, x);
  EXPECT_EQ(st2.factor_epoch, 2u);
  EXPECT_LT(sparse::backward_error(a2, x.data(), b.data()), 1e-8 * 500);
}

// Concurrent solves, coalesced or not, must be bit-identical to serial
// single-RHS solves of the same requests (each blocked-solve column is
// bit-identical to its single-RHS solve — the PR 8 multi-RHS contract).
TEST(SessionTest, ConcurrentSolvesMatchSerialBitwise) {
  const CscMatrix a = sparse::laplacian_3d(8, 8, 8);
  const SolverOptions opts = small_problem_options(
      Strategy::JustInTime, lr::CompressionKind::Rrqr, Dataflow::Barrier);
  const int kRequests = 16;

  // Serial reference.
  Solver reference(opts);
  reference.factorize(a);
  std::vector<std::vector<real_t>> want;
  for (int r = 0; r < kRequests; ++r) {
    want.push_back(reference.solve(seeded_rhs(a.rows(), 100 + r)));
  }

  Session session(opts);
  session.refactorize(a);
  std::vector<std::vector<real_t>> got(kRequests);
  std::vector<core::SolveStats> stats(kRequests);
  {
    std::vector<std::thread> threads;
    threads.reserve(kRequests);
    for (int r = 0; r < kRequests; ++r) {
      threads.emplace_back([&, r] {
        const auto b = seeded_rhs(a.rows(), 100 + r);
        stats[r] = session.solve(b, got[r]);
      });
    }
    for (auto& t : threads) t.join();
  }
  for (int r = 0; r < kRequests; ++r) {
    ASSERT_EQ(got[r].size(), want[r].size());
    for (std::size_t i = 0; i < want[r].size(); ++i) {
      ASSERT_EQ(got[r][i], want[r][i]) << "request " << r << " component " << i;
    }
    EXPECT_EQ(stats[r].factor_epoch, 1u);
    EXPECT_GE(stats[r].batch_size, 1);
    EXPECT_LE(stats[r].batch_size, opts.session_max_batch);
  }
}

// Solves racing a refactorize: every answer must match the serial answer of
// whichever epoch's factors served it.
TEST(SessionTest, SolvesDuringRefactorizeServeAConsistentEpoch) {
  const CscMatrix a1 = sparse::laplacian_3d(8, 8, 8);
  const CscMatrix a2 = step_values(a1, 1.5, 0.2);
  const CscMatrix a3 = step_values(a1, 0.5, 0.7);
  SolverOptions opts = small_problem_options(
      Strategy::MinimalMemory, lr::CompressionKind::Rrqr, Dataflow::Dag);
  // Bitwise comparison against cold references: see WarmMatchesColdBitwise.
  opts.warm_dense_skip = false;
  const std::vector<const CscMatrix*> steps = {&a1, &a2, &a3};

  const auto b = seeded_rhs(a1.rows(), 42);
  // Warm passes are bitwise-identical to cold ones (pinned above), so cold
  // per-epoch references are valid expectations here.
  std::vector<std::vector<real_t>> ref;
  for (const CscMatrix* m : steps) {
    Solver s(opts);
    s.factorize(*m);
    ref.push_back(s.solve(b));
  }

  Session session(opts);
  session.refactorize(a1);
  std::vector<std::thread> solvers;
  std::vector<std::string> errors(4);
  for (int t = 0; t < 4; ++t) {
    solvers.emplace_back([&, t] {
      std::vector<real_t> x;
      for (int it = 0; it < 25; ++it) {
        const core::SolveStats st = session.solve(b, x);
        const auto& expect = ref[static_cast<std::size_t>(st.factor_epoch - 1)];
        for (std::size_t i = 0; i < expect.size(); ++i) {
          if (x[i] != expect[i]) {
            errors[static_cast<std::size_t>(t)] =
                "mismatch vs epoch " + std::to_string(st.factor_epoch);
            return;
          }
        }
      }
    });
  }
  session.refactorize(a2);
  session.refactorize(a3);
  for (auto& t : solvers) t.join();
  for (const std::string& e : errors) EXPECT_TRUE(e.empty()) << e;
  EXPECT_EQ(session.epoch(), 3u);
}

// A governor budget breach mid-refactorize throws out of refactorize() and
// leaves the session serving the previous factors, bit-for-bit.
TEST(SessionTest, BudgetBreachMidRefactorizeKeepsServing) {
  const CscMatrix a1 = sparse::laplacian_3d(8, 8, 8);
  const CscMatrix a2 = step_values(a1, 2.0, 0.1);
  SolverOptions opts = small_problem_options(
      Strategy::JustInTime, lr::CompressionKind::Rrqr, Dataflow::Barrier);
  // Injected budget breach aimed at the SECOND numeric pass: the first
  // arming opportunity is swallowed, the next pass arms and breaches.
  opts.fault.kind = core::FaultInjection::Kind::AllocFail;
  opts.fault.at_bytes = 1 << 16;
  opts.fault.skip_triggers = 1;
  opts.fault.max_triggers = 1;

  Session session(opts);
  session.refactorize(a1);  // clean: arming skipped
  const auto b = seeded_rhs(a1.rows(), 8);
  std::vector<real_t> x_before;
  session.solve(b, x_before);

  EXPECT_THROW(session.refactorize(a2), ResourceError);

  // Same epoch, same factors, same bits.
  EXPECT_EQ(session.epoch(), 1u);
  EXPECT_TRUE(session.serving());
  std::vector<real_t> x_after;
  const core::SolveStats st = session.solve(b, x_after);
  EXPECT_EQ(st.factor_epoch, 1u);
  for (std::size_t i = 0; i < x_before.size(); ++i) {
    ASSERT_EQ(x_before[i], x_after[i]);
  }

  // The fault budget is exhausted: the retry succeeds and switches over.
  session.refactorize(a2);
  EXPECT_EQ(session.epoch(), 2u);
  std::vector<real_t> x2;
  session.solve(b, x2);
  EXPECT_LT(sparse::backward_error(a2, x2.data(), b.data()), 1e-8 * 500);
}

} // namespace
