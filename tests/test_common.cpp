// Tests of the runtime substrate: PRNG, memory tracker, thread pool,
// kernel-time statistics.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "common/kernel_stats.hpp"
#include "common/memory_tracker.hpp"
#include "common/prng.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"

namespace {

using namespace blr;

TEST(Prng, DeterministicForSameSeed) {
  Prng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Prng, DifferentSeedsDiffer) {
  Prng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Prng, UniformInUnitInterval) {
  Prng rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Prng, NormalHasUnitVariance) {
  Prng rng(9);
  double sum = 0, sumsq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(Prng, BelowIsInRangeAndCoversAll) {
  Prng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(MemoryTracker, TracksCurrentAndPeak) {
  auto& t = MemoryTracker::instance();
  t.reset();
  t.allocate(MemCategory::Factors, 1000);
  t.allocate(MemCategory::Factors, 500);
  EXPECT_EQ(t.current(MemCategory::Factors), 1500u);
  t.release(MemCategory::Factors, 1000);
  EXPECT_EQ(t.current(MemCategory::Factors), 500u);
  EXPECT_EQ(t.peak(MemCategory::Factors), 1500u);
  t.allocate(MemCategory::Workspace, 2000);
  EXPECT_EQ(t.current_total(), 2500u);
  EXPECT_GE(t.peak_total(), 2500u);
  t.reset();
  EXPECT_EQ(t.current_total(), 0u);
}

TEST(MemoryTracker, TrackedAllocRaii) {
  auto& t = MemoryTracker::instance();
  t.reset();
  {
    TrackedAlloc a(MemCategory::Factors, 100);
    EXPECT_EQ(t.current(MemCategory::Factors), 100u);
    a.resize(250);
    EXPECT_EQ(t.current(MemCategory::Factors), 250u);
    a.resize(50);
    EXPECT_EQ(t.current(MemCategory::Factors), 50u);
    TrackedAlloc b = std::move(a);
    EXPECT_EQ(t.current(MemCategory::Factors), 50u);
  }
  EXPECT_EQ(t.current(MemCategory::Factors), 0u);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, TasksCanSubmitTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  pool.submit([&] {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&] {
        count.fetch_add(1);
        pool.submit([&] { count.fetch_add(1); });
      });
    }
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](index_t i) { hits[static_cast<std::size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(KernelStats, AccumulatesAndResets) {
  auto& s = KernelStats::instance();
  s.reset();
  s.add(Kernel::Compression, 2'000'000'000ull);
  s.add(Kernel::DenseUpdate, 500'000'000ull);
  EXPECT_NEAR(s.seconds(Kernel::Compression), 2.0, 1e-9);
  EXPECT_NEAR(s.total_seconds(), 2.5, 1e-9);
  s.add(Kernel::Solve, 1'000'000'000ull);
  EXPECT_NEAR(s.total_seconds(), 2.5, 1e-9);  // Solve excluded from facto total
  s.reset();
  EXPECT_EQ(s.total_seconds(), 0.0);
}

TEST(KernelStats, TimerScopesAdd) {
  auto& s = KernelStats::instance();
  s.reset();
  {
    KernelTimer t(Kernel::PanelSolve);
  }
  EXPECT_GE(s.seconds(Kernel::PanelSolve), 0.0);
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + std::sqrt(static_cast<double>(i));
  EXPECT_GE(t.elapsed(), 0.0);
  t.reset();
  EXPECT_LT(t.elapsed(), 1.0);
}

} // namespace
