// Tests of the tile storage layer: the dense/low-rank tagged representation,
// the forward-only lifecycle state machine, arena-based memory accounting,
// and the LR2LR recompression property — after randomized extend-add chains
// the U factor must stay orthonormal to machine precision and the state
// machine must never move backwards.

#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "linalg/norms.hpp"
#include "linalg/random.hpp"
#include "lowrank/compression.hpp"
#include "lowrank/kernels.hpp"
#include "lowrank/tile.hpp"

namespace {

using namespace blr;
using namespace blr::lr;

real_t orthogonality_defect(la::DConstView q) {
  la::DMatrix g(q.cols, q.cols);
  la::gemm(la::Trans::Yes, la::Trans::No, real_t(1), q, q, real_t(0), g.view());
  for (index_t i = 0; i < q.cols; ++i) g(i, i) -= 1;
  return la::norm_fro(g.cview());
}

TEST(TileState, ForwardTransitionsAndNames) {
  Tile t = Tile::make_dense(4, 4);
  EXPECT_EQ(t.state(), TileState::Unassembled);
  t.advance(TileState::Assembled);
  EXPECT_EQ(t.state(), TileState::Assembled);
  t.advance(TileState::Assembled);  // idempotent
  EXPECT_EQ(t.state(), TileState::Assembled);
  t.advance(TileState::Factored);  // states may be skipped
  EXPECT_EQ(t.state(), TileState::Factored);

  EXPECT_STREQ(tile_state_name(TileState::Unassembled), "Unassembled");
  EXPECT_STREQ(tile_state_name(TileState::Assembled), "Assembled");
  EXPECT_STREQ(tile_state_name(TileState::Compressed), "Compressed");
  EXPECT_STREQ(tile_state_name(TileState::Factored), "Factored");
}

TEST(TileState, RegressionThrows) {
  Tile t = Tile::make_dense(4, 4);
  t.advance(TileState::Factored);
  EXPECT_THROW(t.advance(TileState::Assembled), Error);
  EXPECT_THROW(t.advance(TileState::Compressed), Error);
  EXPECT_EQ(t.state(), TileState::Factored);  // unchanged after the throw

  Tile c = Tile::make_dense(4, 4);
  c.advance(TileState::Compressed);
  EXPECT_THROW(c.advance(TileState::Assembled), Error);
}

TEST(TileState, AssembledRepresentationIsRecorded) {
  // The flag captures the representation at the first advance to Assembled
  // and stays stable through later representation changes — policies key
  // orthonormality requirements off it concurrently with updates.
  Prng rng(3);
  const la::DMatrix a = la::random_rank_k<real_t>(20, 20, 2, rng);
  Tile lr_tile = compress_to_tile(CompressionKind::Rrqr, a.cview(), 1e-10);
  ASSERT_TRUE(lr_tile.is_lowrank());
  lr_tile.advance(TileState::Assembled);
  EXPECT_TRUE(lr_tile.assembled_lowrank());
  lr_tile.densify();
  EXPECT_FALSE(lr_tile.is_lowrank());
  EXPECT_TRUE(lr_tile.assembled_lowrank());

  Tile ge_tile = Tile::make_dense(20, 20);
  ge_tile.advance(TileState::Assembled);
  EXPECT_FALSE(ge_tile.assembled_lowrank());
}

TEST(TileArena, ChargesAndDischargesThroughTracker) {
  auto& tracker = MemoryTracker::instance();
  tracker.reset();
  {
    TileArena arena(MemCategory::Factors);
    Tile a = Tile::make_dense(10, 10, arena);
    Tile b = Tile::make_dense(5, 4, arena);
    EXPECT_EQ(arena.bytes(), (100 + 20) * sizeof(real_t));
    EXPECT_EQ(tracker.current(MemCategory::Factors), (100 + 20) * sizeof(real_t));

    // Representation switch re-tracks the delta through the arena.
    Prng rng(2);
    const la::DMatrix m = la::random_rank_k<real_t>(10, 10, 2, rng);
    auto lr = compress_rrqr(m.cview(), 1e-10, 4);
    ASSERT_TRUE(lr);
    a.set_lowrank(std::move(*lr));
    EXPECT_EQ(arena.bytes(), (40 + 20) * sizeof(real_t));
    EXPECT_EQ(tracker.current(MemCategory::Factors), (40 + 20) * sizeof(real_t));

    // Moving a tile out of scope discharges exactly once.
    { const Tile moved = std::move(b); }
    EXPECT_EQ(arena.bytes(), 40 * sizeof(real_t));
  }
  EXPECT_EQ(tracker.current(MemCategory::Factors), 0u);
}

TEST(TileArena, SeparateCategoriesStaySeparate) {
  auto& tracker = MemoryTracker::instance();
  tracker.reset();
  TileArena factors(MemCategory::Factors);
  TileArena workspace(MemCategory::Workspace);
  const Tile f = Tile::make_dense(8, 8, factors);
  const Tile w = Tile::make_dense(6, 6, workspace);
  EXPECT_EQ(tracker.current(MemCategory::Factors), 64 * sizeof(real_t));
  EXPECT_EQ(tracker.current(MemCategory::Workspace), 36 * sizeof(real_t));
}

TEST(TileMove, NoDoubleAccounting) {
  auto& tracker = MemoryTracker::instance();
  tracker.reset();
  {
    Tile a = Tile::make_dense(12, 12);
    Tile b = std::move(a);
    EXPECT_EQ(tracker.current(MemCategory::Factors), 144 * sizeof(real_t));
    Tile c = Tile::make_dense(3, 3);
    c = std::move(b);  // c's 9 entries discharge, b's 144 transfer
    EXPECT_EQ(tracker.current(MemCategory::Factors), 144 * sizeof(real_t));
  }
  EXPECT_EQ(tracker.current(MemCategory::Factors), 0u);
}

// The LR2LR recompression property (paper §3.3.2): the extend-add keeps the
// target's U orthonormal — eq. (8)/(12) rely on ‖U·x‖ = ‖x‖ to recompress
// against tolerance·‖C‖ without materializing C. A drifting U would break
// the tolerance contract silently, so we pin it to machine precision across
// randomized chains of updates, for both recompression kinds.
class Lr2LrChain : public ::testing::TestWithParam<CompressionKind> {};

TEST_P(Lr2LrChain, UStaysOrthonormalAndStateNeverRegresses) {
  const CompressionKind kind = GetParam();
  Prng rng(kind == CompressionKind::Svd ? 101 : 202);
  const index_t M = 64, N = 56;
  const real_t tol = 1e-8;

  la::DMatrix ref = la::random_rank_k<real_t>(M, N, 4, rng);
  Tile c = compress_to_tile(kind, ref.cview(), tol);
  ASSERT_TRUE(c.is_lowrank());
  c.advance(TileState::Assembled);
  c.advance(TileState::Compressed);

  for (int it = 0; it < 20; ++it) {
    const index_t pm = 6 + static_cast<index_t>(rng.below(18));
    const index_t pn = 5 + static_cast<index_t>(rng.below(15));
    const bool lowrank_p = rng.below(4) != 0;
    const bool transpose = rng.below(2) != 0;
    // Extents in the target's coordinates (the contribution lands
    // transposed when `transpose`).
    const index_t em = transpose ? pn : pm;
    const index_t en = transpose ? pm : pn;
    const index_t ro =
        static_cast<index_t>(rng.below(static_cast<std::uint64_t>(M - em)));
    const index_t co =
        static_cast<index_t>(rng.below(static_cast<std::uint64_t>(N - en)));

    const la::DMatrix pv = la::random_rank_k<real_t>(pm, pn, 2, rng);
    Tile p;
    if (lowrank_p) {
      p = compress_to_tile(kind, pv.cview(), 1e-12, MemCategory::Workspace);
      ASSERT_TRUE(p.is_lowrank());
    } else {
      la::DMatrix copy = pv;
      p = Tile::from_dense(std::move(copy), MemCategory::Workspace);
    }

    const TileState before = c.state();
    lr2lr_add(c, p, ro, co, kind, tol, transpose);
    EXPECT_GE(static_cast<int>(c.state()), static_cast<int>(before));

    for (index_t j = 0; j < en; ++j)
      for (index_t i = 0; i < em; ++i)
        ref(ro + i, co + j) -= transpose ? pv(j, i) : pv(i, j);

    if (c.is_lowrank() && c.rank() > 0) {
      EXPECT_LT(orthogonality_defect(c.lr().u.cview()), 1e-12 * c.rank())
          << "iteration " << it;
    }
  }

  // Value stays within a modest multiple of the tolerance of the dense
  // reference after the whole chain.
  la::DMatrix got(M, N);
  c.to_dense(got.view());
  EXPECT_LT(la::diff_fro(got.cview(), ref.cview()),
            40 * tol * (1 + la::norm_fro(ref.cview())));

  // A factored tile must reject further extend-adds (state machine).
  c.advance(TileState::Factored);
  const la::DMatrix last = la::random_rank_k<real_t>(8, 8, 2, rng);
  const Tile p = compress_to_tile(kind, last.cview(), 1e-12,
                                  MemCategory::Workspace);
  EXPECT_THROW(lr2lr_add(c, p, 0, 0, kind, tol), Error);
  EXPECT_THROW(c.advance(TileState::Assembled), Error);
}

INSTANTIATE_TEST_SUITE_P(BothKinds, Lr2LrChain,
                         ::testing::Values(CompressionKind::Rrqr,
                                           CompressionKind::Svd),
                         [](const auto& info) {
                           return info.param == CompressionKind::Svd ? "SVD"
                                                                     : "RRQR";
                         });

} // namespace
