// End-to-end tests of the full pipeline (ordering -> symbolic -> numeric ->
// solve -> refinement) across strategies, kernels and matrix families.

#include <gtest/gtest.h>

#include "blr.hpp"

namespace {

using namespace blr;
using sparse::CscMatrix;

std::vector<real_t> random_rhs(index_t n, std::uint64_t seed) {
  Prng rng(seed);
  std::vector<real_t> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.normal();
  return b;
}

/// Factorize + solve, return the backward error of the direct solution.
real_t direct_backward_error(const CscMatrix& a, SolverOptions opts) {
  Solver solver(opts);
  solver.factorize(a);
  const auto b = random_rhs(a.rows(), 1234);
  std::vector<real_t> x(b.size());
  solver.solve(b.data(), x.data());
  return sparse::backward_error(a, x.data(), b.data());
}

struct Config {
  Strategy strategy;
  lr::CompressionKind kind;
  real_t tol;
};

class StrategyKernelTest : public ::testing::TestWithParam<Config> {};

TEST_P(StrategyKernelTest, Laplacian3dSolvesToTolerance) {
  const Config cfg = GetParam();
  const CscMatrix a = sparse::laplacian_3d(12, 12, 12);
  SolverOptions opts;
  opts.strategy = cfg.strategy;
  opts.kind = cfg.kind;
  opts.tolerance = cfg.tol;
  // Small problem: lower the compressibility thresholds so the BLR machinery
  // actually engages.
  opts.compress_min_width = 16;
  opts.compress_min_height = 8;
  opts.split.split_threshold = 64;
  opts.split.split_size = 32;
  const real_t err = direct_backward_error(a, opts);
  // Dense must hit machine precision; BLR must track the tolerance within a
  // modest amplification factor (the paper observes errors near tau).
  if (cfg.strategy == Strategy::Dense) {
    EXPECT_LT(err, 1e-12);
  } else {
    EXPECT_LT(err, cfg.tol * 500);
  }
}

TEST_P(StrategyKernelTest, NonsymmetricConvectionDiffusion) {
  const Config cfg = GetParam();
  const CscMatrix a = sparse::convection_diffusion_3d(10, 10, 10, 0.6);
  SolverOptions opts;
  opts.strategy = cfg.strategy;
  opts.kind = cfg.kind;
  opts.tolerance = cfg.tol;
  opts.compress_min_width = 16;
  opts.compress_min_height = 8;
  opts.split.split_threshold = 64;
  opts.split.split_size = 32;
  const real_t err = direct_backward_error(a, opts);
  if (cfg.strategy == Strategy::Dense) {
    EXPECT_LT(err, 1e-12);
  } else {
    EXPECT_LT(err, cfg.tol * 500);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyKernelTest,
    ::testing::Values(Config{Strategy::Dense, lr::CompressionKind::Rrqr, 1e-8},
                      Config{Strategy::JustInTime, lr::CompressionKind::Rrqr, 1e-8},
                      Config{Strategy::JustInTime, lr::CompressionKind::Svd, 1e-8},
                      Config{Strategy::MinimalMemory, lr::CompressionKind::Rrqr, 1e-8},
                      Config{Strategy::MinimalMemory, lr::CompressionKind::Svd, 1e-8},
                      Config{Strategy::JustInTime, lr::CompressionKind::Rrqr, 1e-4},
                      Config{Strategy::MinimalMemory, lr::CompressionKind::Rrqr, 1e-4}),
    [](const ::testing::TestParamInfo<Config>& info) {
      std::string name = info.param.strategy == Strategy::Dense ? "Dense"
                         : info.param.strategy == Strategy::JustInTime
                             ? "JIT"
                             : "MinMem";
      name += info.param.kind == lr::CompressionKind::Svd ? "_SVD" : "_RRQR";
      name += info.param.tol == 1e-4 ? "_tol4" : "_tol8";
      return name;
    });

TEST(SolverIntegration, SpdUsesCholeskyAndSolves) {
  const CscMatrix a = sparse::laplacian_3d(10, 10, 10);
  SolverOptions opts;
  opts.strategy = Strategy::Dense;
  Solver solver(opts);
  solver.factorize(a);
  EXPECT_TRUE(solver.is_llt());
  const auto b = random_rhs(a.rows(), 7);
  std::vector<real_t> x(b.size());
  solver.solve(b.data(), x.data());
  EXPECT_LT(sparse::backward_error(a, x.data(), b.data()), 1e-12);
}

TEST(SolverIntegration, MultithreadedMatchesSequential) {
  const CscMatrix a = sparse::laplacian_3d(12, 12, 12);
  const auto b = random_rhs(a.rows(), 99);

  SolverOptions seq;
  seq.strategy = Strategy::JustInTime;
  seq.compress_min_width = 16;
  seq.compress_min_height = 8;
  seq.threads = 1;
  Solver s1(seq);
  s1.factorize(a);
  std::vector<real_t> x1(b.size());
  s1.solve(b.data(), x1.data());

  SolverOptions par = seq;
  par.threads = 4;
  Solver s2(par);
  s2.factorize(a);
  std::vector<real_t> x2(b.size());
  s2.solve(b.data(), x2.data());

  EXPECT_LT(sparse::backward_error(a, x1.data(), b.data()), 1e-6);
  EXPECT_LT(sparse::backward_error(a, x2.data(), b.data()), 1e-6);
}

TEST(SolverIntegration, RefinementReachesMachinePrecision) {
  const CscMatrix a = sparse::laplacian_3d(10, 10, 10);
  SolverOptions opts;
  opts.strategy = Strategy::MinimalMemory;
  opts.tolerance = 1e-4;
  opts.compress_min_width = 16;
  opts.compress_min_height = 8;
  Solver solver(opts);
  solver.factorize(a);
  const auto b = random_rhs(a.rows(), 5);
  std::vector<real_t> x(b.size());
  solver.solve(b.data(), x.data());
  const auto res = solver.refine(a, b.data(), x.data());
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.final_error(), 1e-12);
}

TEST(SolverIntegration, MinimalMemoryUsesLessFactorMemoryThanDense) {
  const CscMatrix a = sparse::laplacian_3d(14, 14, 14);
  SolverOptions dense;
  dense.strategy = Strategy::Dense;
  dense.compress_min_width = 16;
  dense.compress_min_height = 8;
  Solver sd(dense);
  sd.factorize(a);

  SolverOptions mm = dense;
  mm.strategy = Strategy::MinimalMemory;
  mm.tolerance = 1e-4;
  Solver sm(mm);
  sm.factorize(a);

  EXPECT_LT(sm.stats().factors_peak_bytes, sd.stats().factors_peak_bytes);
  EXPECT_LT(sm.stats().factor_entries_final, sd.stats().factor_entries_final);
  EXPECT_GT(sm.stats().num_lowrank_blocks, 0);
}

TEST(SolverIntegration, MultiRhsSolveMatchesSingleRhs) {
  const CscMatrix a = sparse::laplacian_3d(10, 10, 10);
  SolverOptions opts;
  opts.strategy = Strategy::JustInTime;
  opts.compress_min_width = 16;
  opts.compress_min_height = 8;
  Solver solver(opts);
  solver.factorize(a);

  const index_t n = a.rows();
  const index_t nrhs = 5;
  la::DMatrix b(n, nrhs);
  Prng rng(31);
  la::random_normal(b.view(), rng);
  la::DMatrix x(n, nrhs);
  solver.solve(b.cview(), x.view());

  for (index_t r = 0; r < nrhs; ++r) {
    std::vector<real_t> br(static_cast<std::size_t>(n)), xr(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) br[static_cast<std::size_t>(i)] = b(i, r);
    solver.solve(br.data(), xr.data());
    for (index_t i = 0; i < n; ++i)
      ASSERT_NEAR(x(i, r), xr[static_cast<std::size_t>(i)], 1e-12) << "rhs " << r;
    EXPECT_LT(sparse::backward_error(a, xr.data(), br.data()), 1e-6);
  }
}

TEST(SolverIntegration, RandomizedKernelSolvesToTolerance) {
  const CscMatrix a = sparse::laplacian_3d(12, 12, 12);
  SolverOptions opts;
  opts.strategy = Strategy::JustInTime;
  opts.kind = lr::CompressionKind::Randomized;
  opts.tolerance = 1e-8;
  opts.compress_min_width = 16;
  opts.compress_min_height = 8;
  opts.split.split_threshold = 64;
  opts.split.split_size = 32;
  const real_t err = direct_backward_error(a, opts);
  EXPECT_LT(err, 1e-8 * 500);
}

TEST(SolverIntegration, RandomizedKernelMinimalMemory) {
  const CscMatrix a = sparse::heterogeneous_poisson_3d(10, 10, 10, 3.0, 3);
  SolverOptions opts;
  opts.strategy = Strategy::MinimalMemory;
  opts.kind = lr::CompressionKind::Randomized;
  opts.tolerance = 1e-6;
  opts.compress_min_width = 16;
  opts.compress_min_height = 8;
  opts.split.split_threshold = 64;
  opts.split.split_size = 32;
  const real_t err = direct_backward_error(a, opts);
  EXPECT_LT(err, 1e-6 * 500);
}

TEST(SolverIntegration, PaperTestSetAllStrategiesSmall) {
  // End-to-end sweep over the six surrogate matrices at a tiny scale.
  for (const auto& tm : sparse::paper_test_set(8)) {
    for (const Strategy strat :
         {Strategy::Dense, Strategy::JustInTime, Strategy::MinimalMemory}) {
      SolverOptions opts;
      opts.strategy = strat;
      opts.tolerance = 1e-8;
      opts.compress_min_width = 16;
      opts.compress_min_height = 8;
      opts.split.split_threshold = 64;
      opts.split.split_size = 32;
      const real_t err = direct_backward_error(tm.matrix, opts);
      EXPECT_LT(err, 1e-5) << tm.name << " strategy "
                           << static_cast<int>(strat);
    }
  }
}

TEST(SolverIntegration, FactorSizeMonotoneInTolerance) {
  // Paper property (Figure 6): tightening tau can only grow the factors.
  const CscMatrix a = sparse::laplacian_3d(14, 14, 14);
  std::size_t prev = 0;
  for (const real_t tol : {1e-2, 1e-4, 1e-6, 1e-8, 1e-10}) {
    SolverOptions opts;
    opts.strategy = Strategy::MinimalMemory;
    opts.tolerance = tol;
    opts.compress_min_width = 16;
    opts.compress_min_height = 8;
    opts.split.split_threshold = 64;
    opts.split.split_size = 32;
    Solver solver(opts);
    solver.factorize(a);
    const std::size_t entries = solver.stats().factor_entries_final;
    EXPECT_GE(entries, prev) << "tol " << tol;
    prev = entries;
    // ...and each factorization must meet its own tolerance.
    const auto b = random_rhs(a.rows(), 77);
    std::vector<real_t> x(b.size());
    solver.solve(b.data(), x.data());
    EXPECT_LT(sparse::backward_error(a, x.data(), b.data()), tol * 1e3);
  }
}

TEST(SolverIntegration, SvdFactorsNeverLargerThanRrqr) {
  // Paper property (Figure 6): SVD compresses at least as well as RRQR.
  const CscMatrix a = sparse::laplacian_3d(12, 12, 12);
  for (const real_t tol : {1e-4, 1e-8}) {
    std::size_t entries[2];
    int i = 0;
    for (const auto kind : {lr::CompressionKind::Svd, lr::CompressionKind::Rrqr}) {
      SolverOptions opts;
      opts.strategy = Strategy::JustInTime;
      opts.kind = kind;
      opts.tolerance = tol;
      opts.compress_min_width = 16;
      opts.compress_min_height = 8;
      opts.split.split_threshold = 64;
      opts.split.split_size = 32;
      Solver solver(opts);
      solver.factorize(a);
      entries[i++] = solver.stats().factor_entries_final;
    }
    EXPECT_LE(entries[0], entries[1]) << "tol " << tol;  // SVD <= RRQR
  }
}

} // namespace
