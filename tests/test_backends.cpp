// Kernel backend layer (DESIGN.md §14): CPUID detection and env overrides,
// dispatch-table completeness across backends, exact bitwise agreement of
// the la:: entry points under Reference vs Native, and memcmp bit-identity
// of whole factorizations across strategies × compression kinds ×
// precisions × dataflow modes — the contract that lets the engine A/B
// backends without tolerances.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "blr.hpp"
#include "common/error.hpp"
#include "common/prng.hpp"
#include "core/kernels_dispatch.hpp"
#include "linalg/backend.hpp"
#include "linalg/blas.hpp"
#include "linalg/random.hpp"

namespace {

using namespace blr;
using sparse::CscMatrix;

// Backend selection and ISA detection are process-global; every test that
// touches them restores the prior state so test order never matters.
class BackendStateGuard {
public:
  BackendStateGuard() : saved_(la::current_backend()) {}
  ~BackendStateGuard() { la::set_backend(saved_); }

private:
  la::Backend saved_;
};

// Saves one environment variable and restores it (set or unset) on exit,
// then drops the cached detection so later tests re-read the real state.
class EnvVarGuard {
public:
  explicit EnvVarGuard(const char* name) : name_(name) {
    const char* v = std::getenv(name);
    had_ = v != nullptr;
    if (had_) saved_ = v;
  }
  ~EnvVarGuard() {
    if (had_)
      ::setenv(name_, saved_.c_str(), 1);
    else
      ::unsetenv(name_);
    la::redetect_backend();
  }

private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

// ---- detection, names, env overrides ---------------------------------

TEST(BackendDetect, NamesAreStable) {
  EXPECT_STREQ(la::backend_name(la::Backend::Reference), "reference");
  EXPECT_STREQ(la::backend_name(la::Backend::Native), "native");
  EXPECT_STREQ(la::backend_choice_name(la::BackendChoice::Auto), "auto");
  EXPECT_STREQ(la::backend_choice_name(la::BackendChoice::Reference),
               "reference");
  EXPECT_STREQ(la::backend_choice_name(la::BackendChoice::Native), "native");
  EXPECT_STREQ(la::native_isa_name(la::NativeIsa::Portable), "portable");
  EXPECT_STREQ(la::native_isa_name(la::NativeIsa::Avx2), "avx2");
  EXPECT_STREQ(la::native_isa_name(la::NativeIsa::Avx512), "avx512");
}

TEST(BackendDetect, AutoSelectsNative) {
  // The portable packed tier is always compiled in, so Native is always
  // runnable and Auto must prefer it.
  EXPECT_EQ(la::detect_best_backend(), la::Backend::Native);
  EXPECT_TRUE(la::native_isa_compiled(la::NativeIsa::Portable));
  EXPECT_TRUE(la::native_isa_supported(la::native_isa()));
#if defined(__x86_64__) || defined(__i386__)
  // On an AVX2-capable x86 host with the SIMD tiers compiled in, detection
  // must not settle for the portable tier.
  if (__builtin_cpu_supports("avx2") &&
      la::native_isa_compiled(la::NativeIsa::Avx2) &&
      std::getenv("BLR_NATIVE_ISA") == nullptr) {
    EXPECT_GE(static_cast<int>(la::native_isa()),
              static_cast<int>(la::NativeIsa::Avx2));
  }
#endif
}

TEST(BackendDetect, EnvOverridesChoice) {
  BackendStateGuard state;
  EnvVarGuard guard("BLR_BACKEND");

  ::setenv("BLR_BACKEND", "reference", 1);
  EXPECT_EQ(la::resolve_backend(la::BackendChoice::Native),
            la::Backend::Reference);

  ::setenv("BLR_BACKEND", "NATIVE", 1);  // case-insensitive
  EXPECT_EQ(la::resolve_backend(la::BackendChoice::Reference),
            la::Backend::Native);

  ::setenv("BLR_BACKEND", "auto", 1);
  EXPECT_EQ(la::resolve_backend(la::BackendChoice::Reference),
            la::detect_best_backend());

  ::setenv("BLR_BACKEND", "sse9", 1);
  EXPECT_THROW(la::resolve_backend(la::BackendChoice::Auto), Error);

  ::unsetenv("BLR_BACKEND");
  EXPECT_EQ(la::resolve_backend(la::BackendChoice::Reference),
            la::Backend::Reference);
  EXPECT_EQ(la::resolve_backend(la::BackendChoice::Native),
            la::Backend::Native);
}

TEST(BackendDetect, IsaClampForcesPortableFallback) {
  BackendStateGuard state;
  EnvVarGuard guard("BLR_NATIVE_ISA");

  // Force-disable the SIMD tiers: detection must land on the portable
  // packed tier, and the clamped tiers must report unsupported.
  ::setenv("BLR_NATIVE_ISA", "portable", 1);
  la::redetect_backend();
  EXPECT_EQ(la::native_isa(), la::NativeIsa::Portable);
  EXPECT_FALSE(la::native_isa_supported(la::NativeIsa::Avx2));
  EXPECT_FALSE(la::native_isa_supported(la::NativeIsa::Avx512));
  EXPECT_EQ(la::detect_best_backend(), la::Backend::Native);

  ::setenv("BLR_NATIVE_ISA", "neon", 1);
  la::redetect_backend();
  EXPECT_THROW(la::native_isa(), Error);
}

// ---- dispatch-table completeness across backends ---------------------

TEST(BackendDispatchTable, EveryKeyResolvesIdenticallyUnderEveryBackend) {
  const auto& reg = core::KernelDispatch::instance();
  int registered = 0;
  for (int op = 0; op < static_cast<int>(core::KernelOp::kCount); ++op)
    for (int ra = 0; ra < static_cast<int>(core::Rep::kCount); ++ra)
      for (int pa = 0; pa < static_cast<int>(core::Prec::kCount); ++pa)
        for (int rb = 0; rb < static_cast<int>(core::Rep::kCount); ++rb)
          for (int pb = 0; pb < static_cast<int>(core::Prec::kCount); ++pb) {
            const bool ref = reg.has_kernel(
                la::Backend::Reference, static_cast<core::KernelOp>(op),
                static_cast<core::Rep>(ra), static_cast<core::Prec>(pa),
                static_cast<core::Rep>(rb), static_cast<core::Prec>(pb));
            const bool nat = reg.has_kernel(
                la::Backend::Native, static_cast<core::KernelOp>(op),
                static_cast<core::Rep>(ra), static_cast<core::Prec>(pa),
                static_cast<core::Rep>(rb), static_cast<core::Prec>(pb));
            EXPECT_EQ(ref, nat)
                << core::kernel_op_name(static_cast<core::KernelOp>(op))
                << " a=(" << ra << "," << pa << ") b=(" << rb << "," << pb
                << ")";
            registered += ref ? 1 : 0;
          }
  // The built-in kernel set must have landed under both backends.
  EXPECT_GT(registered, 0);
  EXPECT_TRUE(reg.has_kernel(la::Backend::Native, core::KernelOp::Gemm,
                             core::Rep::Dense, core::Prec::Fp64,
                             core::Rep::Dense, core::Prec::Fp64));
  EXPECT_TRUE(reg.has_kernel(la::Backend::Reference, core::KernelOp::Compress,
                             core::Rep::Dense, core::Prec::Fp64,
                             core::Rep::None, core::Prec::Fp64));
}

// ---- exact bitwise agreement of the la:: entry points ----------------

template <typename T>
void expect_same_bits(const la::Matrix<T>& x, const la::Matrix<T>& y,
                      const std::string& what) {
  ASSERT_EQ(x.rows(), y.rows()) << what;
  ASSERT_EQ(x.cols(), y.cols()) << what;
  EXPECT_EQ(std::memcmp(x.data(), y.data(),
                        sizeof(T) * static_cast<std::size_t>(x.size())),
            0)
      << what;
}

// gemm must agree bit-for-bit between the Reference nests and the Native
// packed engine for every transpose combination, including sizes that
// cross the packing block boundaries (kMC = 128 rows, kKC = 256 depth) and
// ragged edge tiles — the canonical-accumulation-order contract.
template <typename T>
void gemm_bit_identity_for_type() {
  BackendStateGuard state;
  Prng rng(97);
  const struct {
    index_t m, n, k;
  } sizes[] = {{8, 4, 8},       // below the packed threshold: same nests
               {64, 48, 96},    // packed, single MC/KC block
               {137, 43, 300},  // ragged microtile edges + k past kKC
               {200, 40, 300}}; // m past kMC: multi-block packed walk
  for (const auto& sz : sizes) {
    for (const la::Trans ta : {la::Trans::No, la::Trans::Yes}) {
      for (const la::Trans tb : {la::Trans::No, la::Trans::Yes}) {
        la::Matrix<T> a(ta == la::Trans::No ? sz.m : sz.k,
                        ta == la::Trans::No ? sz.k : sz.m);
        la::Matrix<T> b(tb == la::Trans::No ? sz.k : sz.n,
                        tb == la::Trans::No ? sz.n : sz.k);
        la::Matrix<T> c0(sz.m, sz.n);
        random_normal(a.view(), rng);
        random_normal(b.view(), rng);
        random_normal(c0.view(), rng);

        la::Matrix<T> cr = c0;
        la::set_backend(la::Backend::Reference);
        la::gemm(ta, tb, T(-1), a.cview(), b.cview(), T(1), cr.view());

        la::Matrix<T> cn = c0;
        la::set_backend(la::Backend::Native);
        la::gemm(ta, tb, T(-1), a.cview(), b.cview(), T(1), cn.view());

        expect_same_bits(cr, cn,
                         "gemm m=" + std::to_string(sz.m) +
                             " n=" + std::to_string(sz.n) +
                             " k=" + std::to_string(sz.k) + " ta=" +
                             (ta == la::Trans::Yes ? "T" : "N") + " tb=" +
                             (tb == la::Trans::Yes ? "T" : "N"));
      }
    }
  }
}

TEST(BackendBitwiseKernels, GemmDouble) { gemm_bit_identity_for_type<double>(); }
TEST(BackendBitwiseKernels, GemmFloat) { gemm_bit_identity_for_type<float>(); }

template <typename T>
void trsm_syrk_bit_identity_for_type() {
  BackendStateGuard state;
  Prng rng(131);
  const index_t n = 96, m = 80;

  // Well-conditioned triangular factor: dominant diagonal.
  la::Matrix<T> tri(n, n);
  random_normal(tri.view(), rng);
  for (index_t i = 0; i < n; ++i) tri(i, i) += T(2 * n);

  for (const la::Side side : {la::Side::Left, la::Side::Right}) {
    for (const la::Uplo uplo : {la::Uplo::Lower, la::Uplo::Upper}) {
      for (const la::Trans trans : {la::Trans::No, la::Trans::Yes}) {
        for (const la::Diag diag : {la::Diag::NonUnit, la::Diag::Unit}) {
          la::Matrix<T> rhs(side == la::Side::Left ? n : m,
                            side == la::Side::Left ? m : n);
          random_normal(rhs.view(), rng);

          la::Matrix<T> br = rhs;
          la::set_backend(la::Backend::Reference);
          la::trsm(side, uplo, trans, diag, T(1), tri.cview(), br.view());

          la::Matrix<T> bn = rhs;
          la::set_backend(la::Backend::Native);
          la::trsm(side, uplo, trans, diag, T(1), tri.cview(), bn.view());

          expect_same_bits(br, bn, "trsm");
        }
      }
    }
  }

  la::Matrix<T> a(n, m);
  random_normal(a.view(), rng);
  for (const la::Uplo uplo : {la::Uplo::Lower, la::Uplo::Upper}) {
    for (const la::Trans trans : {la::Trans::No, la::Trans::Yes}) {
      const index_t cn = trans == la::Trans::No ? n : m;
      la::Matrix<T> c0(cn, cn);
      random_normal(c0.view(), rng);

      la::Matrix<T> cr = c0;
      la::set_backend(la::Backend::Reference);
      la::syrk(uplo, trans, T(-1), a.cview(), T(1), cr.view());

      la::Matrix<T> cs = c0;
      la::set_backend(la::Backend::Native);
      la::syrk(uplo, trans, T(-1), a.cview(), T(1), cs.view());

      expect_same_bits(cr, cs, "syrk");
    }
  }
}

TEST(BackendBitwiseKernels, TrsmSyrkDouble) {
  trsm_syrk_bit_identity_for_type<double>();
}
TEST(BackendBitwiseKernels, TrsmSyrkFloat) {
  trsm_syrk_bit_identity_for_type<float>();
}

// ---- factor bit-comparison helpers -----------------------------------

template <typename T>
void expect_matrix_bits(const la::Matrix<T>& x, const la::Matrix<T>& y,
                        const char* what, index_t k) {
  ASSERT_EQ(x.rows(), y.rows()) << what << " rows, cblk " << k;
  ASSERT_EQ(x.cols(), y.cols()) << what << " cols, cblk " << k;
  EXPECT_EQ(std::memcmp(x.data(), y.data(),
                        sizeof(T) * static_cast<std::size_t>(x.size())),
            0)
      << what << " bits differ in cblk " << k;
}

void expect_tile_bits(const lr::Tile& x, const lr::Tile& y, const char* what,
                      index_t k) {
  ASSERT_EQ(x.is_lowrank(), y.is_lowrank()) << what << " repr, cblk " << k;
  ASSERT_EQ(x.rank(), y.rank()) << what << " rank, cblk " << k;
  if (!x.is_lowrank()) {
    expect_matrix_bits(x.dense(), y.dense(), what, k);
    return;
  }
  ASSERT_EQ(x.precision(), y.precision()) << what << " precision, cblk " << k;
  if (x.rank() == 0) return;
  if (x.precision() == lr::Precision::Fp32) {
    expect_matrix_bits(x.lr().u32, y.lr().u32, what, k);
    expect_matrix_bits(x.lr().v32, y.lr().v32, what, k);
  } else {
    expect_matrix_bits(x.lr().u, y.lr().u, what, k);
    expect_matrix_bits(x.lr().v, y.lr().v, what, k);
  }
}

void expect_factors_bit_identical(const core::NumericFactor& x,
                                  const core::NumericFactor& y) {
  const index_t ncblk = x.symbolic().num_cblks();
  ASSERT_EQ(ncblk, y.symbolic().num_cblks());
  for (index_t k = 0; k < ncblk; ++k) {
    const core::CblkData& cx = x.cblk_data(k);
    const core::CblkData& cy = y.cblk_data(k);
    expect_tile_bits(cx.diag, cy.diag, "diag", k);
    ASSERT_EQ(cx.lpanel.size(), cy.lpanel.size());
    ASSERT_EQ(cx.upanel.size(), cy.upanel.size());
    ASSERT_EQ(cx.ipiv, cy.ipiv) << "pivots, cblk " << k;
    for (std::size_t i = 0; i < cx.lpanel.size(); ++i)
      expect_tile_bits(cx.lpanel[i], cy.lpanel[i], "lpanel", k);
    for (std::size_t i = 0; i < cx.upanel.size(); ++i)
      expect_tile_bits(cx.upanel[i], cy.upanel[i], "upanel", k);
  }
}

// ---- whole-factorization bit-identity Reference vs Native ------------

struct BackendCase {
  Strategy strategy;
  lr::CompressionKind kind;
  TilePrecision precision;
  core::Dataflow dataflow;
};

SolverOptions backend_opts(const BackendCase& c, la::BackendChoice backend) {
  SolverOptions o;
  o.strategy = c.strategy;
  o.kind = c.kind;
  o.precision = c.precision;
  o.dataflow = c.dataflow;
  o.backend = backend;
  o.threads = 1;
  // Small thresholds so the tiny test grids still produce low-rank blocks.
  o.compress_min_width = 16;
  o.compress_min_height = 8;
  o.split.split_threshold = 64;
  o.split.split_size = 32;
  return o;
}

class BackendBitIdentity : public ::testing::TestWithParam<BackendCase> {};

TEST_P(BackendBitIdentity, ReferenceVsNative) {
  // This test pins the backend per solver; a BLR_BACKEND override from the
  // CI A/B stage would defeat that, so drop it for the test's duration.
  BackendStateGuard state;
  EnvVarGuard env("BLR_BACKEND");
  ::unsetenv("BLR_BACKEND");

  const BackendCase c = GetParam();
  const CscMatrix a = sparse::convection_diffusion_3d(7, 7, 7, 0.5);

  Solver ref(backend_opts(c, la::BackendChoice::Reference));
  ref.factorize(a);
  EXPECT_EQ(ref.stats().backend, "reference");
  EXPECT_TRUE(ref.stats().backend_isa.empty());

  Solver nat(backend_opts(c, la::BackendChoice::Native));
  nat.factorize(a);
  EXPECT_EQ(nat.stats().backend, "native");
  EXPECT_EQ(nat.stats().backend_isa, la::native_isa_name(la::native_isa()));

  // Same sequential schedule, same canonical accumulation order: the
  // factors must agree bit for bit across backends, not just to rounding.
  expect_factors_bit_identical(ref.numeric(), nat.numeric());

  // Each run's kernel counters are attributed to the backend it ran under.
  ASSERT_FALSE(ref.stats().dispatch.empty());
  ASSERT_FALSE(nat.stats().dispatch.empty());
  for (const auto& d : ref.stats().dispatch)
    EXPECT_EQ(d.backend, "reference") << d.kernel;
  for (const auto& d : nat.stats().dispatch)
    EXPECT_EQ(d.backend, "native") << d.kernel;

  // And the logical kernel-call table matches row for row.
  ASSERT_EQ(ref.stats().dispatch.size(), nat.stats().dispatch.size());
  for (std::size_t i = 0; i < ref.stats().dispatch.size(); ++i) {
    EXPECT_EQ(ref.stats().dispatch[i].kernel, nat.stats().dispatch[i].kernel);
    EXPECT_EQ(ref.stats().dispatch[i].calls, nat.stats().dispatch[i].calls)
        << ref.stats().dispatch[i].kernel;
  }

  // Solves on bit-identical factors are bit-identical too.
  std::vector<real_t> b(static_cast<std::size_t>(a.rows()), 1.0);
  const auto xref = ref.solve(b);
  const auto xnat = nat.solve(b);
  EXPECT_EQ(std::memcmp(xref.data(), xnat.data(),
                        sizeof(real_t) * xref.size()),
            0);
}

INSTANTIATE_TEST_SUITE_P(
    StrategyKindPrecisionDataflowGrid, BackendBitIdentity,
    ::testing::Values(
        BackendCase{Strategy::Dense, lr::CompressionKind::Rrqr,
                    TilePrecision::Fp64, core::Dataflow::Barrier},
        BackendCase{Strategy::Dense, lr::CompressionKind::Rrqr,
                    TilePrecision::Fp64, core::Dataflow::Dag},
        BackendCase{Strategy::JustInTime, lr::CompressionKind::Rrqr,
                    TilePrecision::Fp64, core::Dataflow::Barrier},
        BackendCase{Strategy::JustInTime, lr::CompressionKind::Rrqr,
                    TilePrecision::Fp64, core::Dataflow::Dag},
        BackendCase{Strategy::JustInTime, lr::CompressionKind::Svd,
                    TilePrecision::Fp64, core::Dataflow::Barrier},
        BackendCase{Strategy::JustInTime, lr::CompressionKind::Rrqr,
                    TilePrecision::MixedTiles, core::Dataflow::Barrier},
        BackendCase{Strategy::JustInTime, lr::CompressionKind::Svd,
                    TilePrecision::MixedTiles, core::Dataflow::Dag},
        BackendCase{Strategy::MinimalMemory, lr::CompressionKind::Rrqr,
                    TilePrecision::Fp64, core::Dataflow::Barrier},
        BackendCase{Strategy::MinimalMemory, lr::CompressionKind::Svd,
                    TilePrecision::Fp64, core::Dataflow::Dag},
        BackendCase{Strategy::MinimalMemory, lr::CompressionKind::Rrqr,
                    TilePrecision::MixedTiles, core::Dataflow::Dag},
        BackendCase{Strategy::Adaptive, lr::CompressionKind::Rrqr,
                    TilePrecision::Fp64, core::Dataflow::Barrier},
        BackendCase{Strategy::Adaptive, lr::CompressionKind::Svd,
                    TilePrecision::Fp64, core::Dataflow::Dag},
        BackendCase{Strategy::Adaptive, lr::CompressionKind::Rrqr,
                    TilePrecision::MixedTiles, core::Dataflow::Dag},
        BackendCase{Strategy::Adaptive, lr::CompressionKind::Svd,
                    TilePrecision::MixedTiles, core::Dataflow::Barrier}),
    [](const auto& info) {
      std::string s = info.param.strategy == Strategy::Dense ? "Dense"
                      : info.param.strategy == Strategy::JustInTime ? "JIT"
                      : info.param.strategy == Strategy::MinimalMemory
                          ? "MinMem"
                          : "Adaptive";
      s += info.param.kind == lr::CompressionKind::Svd ? "Svd" : "Rrqr";
      s += info.param.precision == TilePrecision::MixedTiles ? "Mixed" : "Fp64";
      s += info.param.dataflow == core::Dataflow::Dag ? "Dag" : "Barrier";
      return s;
    });

// The portable Native tier must also match Reference bit for bit — the
// deployment fallback when CPUID rules out every SIMD tier.
TEST(BackendBitIdentity, PortableTierMatchesReference) {
  BackendStateGuard state;
  EnvVarGuard env("BLR_BACKEND");
  ::unsetenv("BLR_BACKEND");
  EnvVarGuard guard("BLR_NATIVE_ISA");
  ::setenv("BLR_NATIVE_ISA", "portable", 1);
  la::redetect_backend();
  ASSERT_EQ(la::native_isa(), la::NativeIsa::Portable);

  const BackendCase c{Strategy::JustInTime, lr::CompressionKind::Rrqr,
                      TilePrecision::Fp64, core::Dataflow::Barrier};
  const CscMatrix a = sparse::convection_diffusion_3d(7, 7, 7, 0.5);

  Solver ref(backend_opts(c, la::BackendChoice::Reference));
  ref.factorize(a);

  Solver nat(backend_opts(c, la::BackendChoice::Native));
  nat.factorize(a);
  EXPECT_EQ(nat.stats().backend_isa, "portable");

  expect_factors_bit_identical(ref.numeric(), nat.numeric());
}

// BLR_BACKEND overrides SolverOptions::backend for a whole factorization —
// the same binary A/Bs backends from the environment, no recompilation.
TEST(BackendEnvSolver, EnvOverridesSolverOptions) {
  BackendStateGuard state;
  EnvVarGuard guard("BLR_BACKEND");
  ::setenv("BLR_BACKEND", "reference", 1);

  const BackendCase c{Strategy::JustInTime, lr::CompressionKind::Rrqr,
                      TilePrecision::Fp64, core::Dataflow::Barrier};
  const CscMatrix a = sparse::convection_diffusion_3d(7, 7, 7, 0.5);

  Solver s(backend_opts(c, la::BackendChoice::Native));
  s.factorize(a);
  EXPECT_EQ(s.stats().backend, "reference");
  for (const auto& d : s.stats().dispatch)
    EXPECT_EQ(d.backend, "reference") << d.kernel;
}

} // namespace
