// Tests of supernode amalgamation: structural validity, fill budget, and
// the performance-relevant effect (fewer, larger column blocks).

#include <gtest/gtest.h>

#include "ordering/ordering.hpp"
#include "sparse/generators.hpp"
#include "sparse/graph.hpp"
#include "core/solver.hpp"
#include "symbolic/amalgamation.hpp"

namespace {

using namespace blr;
using namespace blr::symbolic;
using sparse::CscMatrix;

TEST(Amalgamation, RangesStayAValidPartition) {
  const CscMatrix a = sparse::laplacian_3d(8, 8, 8);
  const auto ord = ordering::nested_dissection(sparse::Graph::from_matrix(a));
  const auto merged = amalgamate(a, ord, ord.ranges);
  ASSERT_GE(merged.size(), 2u);
  EXPECT_EQ(merged.front(), 0);
  EXPECT_EQ(merged.back(), a.rows());
  for (std::size_t s = 1; s < merged.size(); ++s) EXPECT_LT(merged[s - 1], merged[s]);
  // Every merged boundary must be a subset of the original boundaries.
  for (const index_t r : merged) {
    EXPECT_NE(std::find(ord.ranges.begin(), ord.ranges.end(), r), ord.ranges.end());
  }
}

TEST(Amalgamation, ReducesSupernodeCount) {
  const CscMatrix a = sparse::laplacian_3d(10, 10, 10);
  const auto ord = ordering::nested_dissection(sparse::Graph::from_matrix(a));
  const auto merged = amalgamate(a, ord, ord.ranges);
  EXPECT_LT(merged.size(), ord.ranges.size());
}

TEST(Amalgamation, RespectsFillBudget) {
  const CscMatrix a = sparse::laplacian_3d(9, 9, 9);
  const auto ord = ordering::nested_dissection(sparse::Graph::from_matrix(a));
  const auto sf0 = SymbolicFactor::build(a, ord, ord.ranges);

  AmalgamationOptions opts;
  opts.frat = 0.08;
  const auto merged = amalgamate(a, ord, ord.ranges, opts);
  const auto sf1 = SymbolicFactor::build(a, ord, merged);
  const double growth = static_cast<double>(sf1.factor_entries_lower()) /
                        static_cast<double>(sf0.factor_entries_lower());
  EXPECT_LE(growth, 1.0 + opts.frat + 1e-9);
}

TEST(Amalgamation, ZeroBudgetIsIdentity) {
  const CscMatrix a = sparse::laplacian_3d(7, 7, 7);
  const auto ord = ordering::nested_dissection(sparse::Graph::from_matrix(a));
  AmalgamationOptions opts;
  opts.frat = 0.0;
  const auto merged = amalgamate(a, ord, ord.ranges, opts);
  // Only merges with a *negative or zero* fill delta may happen; the
  // structure size must not grow at all.
  const auto sf0 = SymbolicFactor::build(a, ord, ord.ranges);
  const auto sf1 = SymbolicFactor::build(a, ord, merged);
  EXPECT_LE(sf1.factor_entries_lower(), sf0.factor_entries_lower());
}

TEST(Amalgamation, SolverStillCorrectWithAmalgamation) {
  const CscMatrix a = sparse::laplacian_3d(10, 10, 10);
  for (const bool amal : {false, true}) {
    blr::core::SolverOptions opts;
    opts.strategy = blr::core::Strategy::JustInTime;
    opts.amalgamate = amal;
    opts.compress_min_width = 16;
    opts.compress_min_height = 8;
    blr::core::Solver solver(opts);
    solver.factorize(a);
    std::vector<real_t> b(static_cast<std::size_t>(a.rows()), 1.0);
    const auto x = solver.solve(b);
    EXPECT_LT(sparse::backward_error(a, x.data(), b.data()), 1e-6) << amal;
  }
}

} // namespace
