// Breakdown-path tests: structured failure reports, deterministic fault
// injection, cooperative cancellation of the parallel schedulers, and the
// recovery ladder.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <sstream>

#include "blr.hpp"

namespace {

using namespace blr;
using core::FaultInjection;
using core::RecoveryStep;
using sparse::CscMatrix;

std::vector<real_t> random_rhs(index_t n, std::uint64_t seed) {
  Prng rng(seed);
  std::vector<real_t> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.normal();
  return b;
}

/// Small-problem options so the BLR machinery engages on test matrices.
SolverOptions small_opts() {
  SolverOptions opts;
  opts.compress_min_width = 16;
  opts.compress_min_height = 8;
  opts.split.split_threshold = 64;
  opts.split.split_size = 32;
  return opts;
}

/// -A for an SPD A: symmetric pattern, negative definite values, so LLᵗ
/// breaks down at the very first pivot while LU factorizes cleanly.
CscMatrix negated(const CscMatrix& a) {
  CscMatrix out = a;
  for (auto& v : out.values()) v = -v;
  out.set_symmetry(sparse::Symmetry::SymmetricValues);
  return out;
}

/// A with row and column j zeroed (pattern kept): structurally singular.
CscMatrix zero_row_col(const CscMatrix& a, index_t j0) {
  CscMatrix out = a;
  const auto& colptr = out.colptr();
  const auto& rowind = out.rowind();
  auto& values = out.values();
  for (index_t j = 0; j < out.cols(); ++j) {
    for (index_t p = colptr[static_cast<std::size_t>(j)];
         p < colptr[static_cast<std::size_t>(j) + 1]; ++p) {
      if (j == j0 || rowind[static_cast<std::size_t>(p)] == j0)
        values[static_cast<std::size_t>(p)] = 0;
    }
  }
  out.set_symmetry(sparse::Symmetry::General);
  return out;
}

// ---------------------------------------------------------------------------
// Fault kinds x {sequential, parallel x both scheduler kinds}
// ---------------------------------------------------------------------------

struct Mode {
  int threads;
  SchedulerKind scheduler;
  core::Dataflow dataflow;
};

class FaultModeTest : public ::testing::TestWithParam<Mode> {
protected:
  SolverOptions opts_for_mode() {
    SolverOptions opts = small_opts();
    opts.threads = GetParam().threads;
    opts.scheduler = GetParam().scheduler;
    opts.dataflow = GetParam().dataflow;
    return opts;
  }
};

TEST_P(FaultModeTest, TinyPivotReportsSupernodeAndPivot) {
  const CscMatrix a = sparse::laplacian_3d(8, 8, 8);
  SolverOptions opts = opts_for_mode();
  opts.strategy = Strategy::JustInTime;
  opts.factorization = Factorization::Lu;  // deterministic ZeroPivot kind
  opts.fault.kind = FaultInjection::Kind::TinyPivot;
  opts.fault.supernode = 0;
  Solver solver(opts);

  try {
    solver.factorize(a);
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    const FailureReport& r = e.report();
    EXPECT_EQ(r.kind, FailureKind::ZeroPivot);
    EXPECT_EQ(r.supernode, 0);
    EXPECT_EQ(r.local_pivot, 0);
    EXPECT_EQ(r.pivot_magnitude, 0.0);
    EXPECT_EQ(r.factorization, "LU");
    EXPECT_EQ(r.strategy, "Just-In-Time");
    EXPECT_EQ(r.attempt, 0);
    EXPECT_NE(e.what(), std::string());
    // The message embeds the structured fields.
    EXPECT_NE(std::string(e.what()).find("zero-pivot"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("supernode 0"), std::string::npos);
  }

  // A failed factorize must not leave stale factors behind.
  EXPECT_FALSE(solver.factorized());
  std::vector<real_t> b(static_cast<std::size_t>(a.rows()), 1.0), x(b.size());
  EXPECT_THROW(solver.solve(b.data(), x.data()), Error);

  // The fault budget (max_triggers = 1) is consumed: the same solver — and
  // for parallel modes the same cancelled-and-reset pool — factorizes
  // cleanly on the next call.
  solver.factorize(a);
  EXPECT_TRUE(solver.factorized());
  const auto rhs = random_rhs(a.rows(), 42);
  solver.solve(rhs.data(), x.data());
  EXPECT_LT(sparse::backward_error(a, x.data(), rhs.data()), 1e-5);
  EXPECT_EQ(opts.fault.fired(), 1);  // shared across the solver's copy
}

TEST_P(FaultModeTest, PoisonedBlockIsCaughtByAssemblyGuard) {
  const CscMatrix a = sparse::laplacian_3d(8, 8, 8);
  SolverOptions opts = opts_for_mode();
  opts.strategy = Strategy::JustInTime;
  opts.fault.kind = FaultInjection::Kind::PoisonBlock;
  opts.fault.supernode = 2;
  Solver solver(opts);

  try {
    solver.factorize(a);
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.report().kind, FailureKind::NonFiniteBlock);
    EXPECT_EQ(e.report().supernode, 2);
  }
  EXPECT_FALSE(solver.factorized());

  solver.factorize(a);  // budget consumed -> clean
  EXPECT_TRUE(solver.factorized());
}

TEST_P(FaultModeTest, CompressionFailureIsStructured) {
  const CscMatrix a = sparse::laplacian_3d(8, 8, 8);
  SolverOptions opts = opts_for_mode();
  opts.strategy = Strategy::JustInTime;
  opts.fault.kind = FaultInjection::Kind::CompressionFail;
  opts.fault.index = 0;  // first compression site
  Solver solver(opts);

  try {
    solver.factorize(a);
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.report().kind, FailureKind::CompressionFailure);
    EXPECT_GE(e.report().supernode, 0);
  }
  EXPECT_FALSE(solver.factorized());

  solver.factorize(a);
  EXPECT_TRUE(solver.factorized());
}

INSTANTIATE_TEST_SUITE_P(
    Modes, FaultModeTest,
    ::testing::Values(
        Mode{1, SchedulerKind::WorkStealing, core::Dataflow::Barrier},
        Mode{4, SchedulerKind::WorkStealing, core::Dataflow::Barrier},
        Mode{4, SchedulerKind::SharedQueue, core::Dataflow::Barrier},
        Mode{1, SchedulerKind::WorkStealing, core::Dataflow::Dag},
        Mode{4, SchedulerKind::WorkStealing, core::Dataflow::Dag},
        Mode{4, SchedulerKind::SharedQueue, core::Dataflow::Dag}),
    [](const ::testing::TestParamInfo<Mode>& info) {
      std::string s = info.param.threads == 1 ? "Sequential"
                      : info.param.scheduler == SchedulerKind::WorkStealing
                          ? "ParallelWorkStealing"
                          : "ParallelSharedQueue";
      if (info.param.dataflow == core::Dataflow::Dag) s += "Dag";
      return s;
    });

// The structured report of a deterministic (sequential) breakdown must not
// depend on the execution engine: the dataflow run replays the canonical
// order, so every field matches the barrier run's report exactly.
TEST(DagBreakdown, SequentialFaultReportsMatchBarrier) {
  const CscMatrix a = sparse::laplacian_3d(8, 8, 8);
  const FaultInjection::Kind kinds[] = {FaultInjection::Kind::TinyPivot,
                                        FaultInjection::Kind::PoisonBlock,
                                        FaultInjection::Kind::CompressionFail};
  for (const auto kind : kinds) {
    FailureReport reports[2];
    for (const core::Dataflow df :
         {core::Dataflow::Barrier, core::Dataflow::Dag}) {
      SolverOptions opts = small_opts();
      opts.strategy = Strategy::JustInTime;
      opts.factorization = Factorization::Lu;
      opts.dataflow = df;
      opts.fault.kind = kind;
      if (kind == FaultInjection::Kind::CompressionFail) {
        opts.fault.index = 2;  // third compression site
      } else {
        opts.fault.supernode = 2;
      }
      Solver solver(opts);
      try {
        solver.factorize(a);
        FAIL() << "expected NumericalError";
      } catch (const NumericalError& e) {
        reports[df == core::Dataflow::Dag] = e.report();
      }
      EXPECT_FALSE(solver.factorized());
    }
    EXPECT_EQ(reports[0].kind, reports[1].kind);
    EXPECT_EQ(reports[0].supernode, reports[1].supernode);
    EXPECT_EQ(reports[0].local_pivot, reports[1].local_pivot);
    EXPECT_EQ(reports[0].strategy, reports[1].strategy);
    EXPECT_EQ(reports[0].factorization, reports[1].factorization);
    EXPECT_EQ(reports[0].detail, reports[1].detail);
    // Every rendered field but the wall time matches.
    reports[1].elapsed_seconds = reports[0].elapsed_seconds;
    EXPECT_EQ(reports[0].to_string(), reports[1].to_string());
  }
}

// A mid-DAG breakdown must cancel everything still queued: no task body
// leaks past ThreadPool::cancel, the pool drains idle, and the very same
// solver (same pool) factorizes cleanly afterwards.
TEST(DagBreakdown, BreakdownCancelsOutstandingDagTasks) {
  const CscMatrix a = sparse::laplacian_3d(12, 12, 12);
  SolverOptions opts = small_opts();
  opts.strategy = Strategy::JustInTime;
  opts.factorization = Factorization::Lu;
  opts.threads = 4;
  opts.dataflow = core::Dataflow::Dag;
  opts.fault.kind = FaultInjection::Kind::TinyPivot;
  opts.fault.supernode = 0;
  Solver solver(opts);

  EXPECT_THROW(solver.factorize(a), NumericalError);
  const SolverStats& st = solver.stats();
  ASSERT_GT(st.dag_tasks, 0u);
  // The failing Factor task stops the run: its subtree is never released
  // (and anything already queued drains discarded), so far fewer bodies ran
  // than exist. Whether the pool's queue held tasks at cancel time is a
  // race, so the suppression is asserted on the release layer — some tasks
  // were never enqueued at all — not on the discard counter.
  EXPECT_LT(st.dag_executed, st.dag_tasks);
  EXPECT_LT(st.dag_executed + st.scheduler_discarded, st.dag_tasks);

  // The pool survives: the consumed fault budget lets the same solver
  // factorize and solve cleanly, with every DAG task running this time.
  solver.factorize(a);
  EXPECT_TRUE(solver.factorized());
  EXPECT_EQ(solver.stats().dag_executed, solver.stats().dag_tasks);
  EXPECT_EQ(solver.stats().scheduler_discarded, 0u);
  const auto b = random_rhs(a.rows(), 5);
  std::vector<real_t> x(b.size());
  solver.solve(b.data(), x.data());
  EXPECT_LT(sparse::backward_error(a, x.data(), b.data()), 1e-5);
}

// The recovery ladder must behave identically when the failing attempt runs
// as a DAG: same rung sequence, same effective configuration, same result.
TEST(DagBreakdown, RecoveryLadderMatchesBarrier) {
  const CscMatrix a = negated(sparse::laplacian_3d(6, 6, 6));
  std::vector<SolverStats> stats;
  for (const core::Dataflow df :
       {core::Dataflow::Barrier, core::Dataflow::Dag}) {
    SolverOptions opts = small_opts();
    opts.strategy = Strategy::JustInTime;
    opts.factorization = Factorization::Llt;
    opts.dataflow = df;
    opts.recovery.enabled = true;  // default ladder
    Solver solver(opts);
    solver.factorize(a);
    EXPECT_TRUE(solver.factorized());
    EXPECT_FALSE(solver.is_llt());
    stats.push_back(solver.stats());
  }
  ASSERT_EQ(stats[0].attempts.size(), stats[1].attempts.size());
  for (std::size_t i = 0; i < stats[0].attempts.size(); ++i) {
    EXPECT_EQ(stats[0].attempts[i].action, stats[1].attempts[i].action);
    EXPECT_EQ(stats[0].attempts[i].strategy, stats[1].attempts[i].strategy);
    EXPECT_EQ(stats[0].attempts[i].succeeded, stats[1].attempts[i].succeeded);
    EXPECT_EQ(stats[0].attempts[i].llt, stats[1].attempts[i].llt);
    EXPECT_EQ(stats[0].attempts[i].tolerance, stats[1].attempts[i].tolerance);
  }
}

// ---------------------------------------------------------------------------
// Cooperative cancellation
// ---------------------------------------------------------------------------

class CancellationTest : public ::testing::TestWithParam<SchedulerKind> {};

/// The supernode the scheduler starts first. Initially-ready leaves are
/// submitted in ascending index order; the work-stealing heap pops the
/// highest critical-path priority (FIFO tie-break) while the shared queue
/// is plain FIFO — so the first task is the priority argmax (a leaf: chain
/// costs strictly decrease toward the root) resp. supernode 0.
index_t first_scheduled_supernode(const CscMatrix& a, SolverOptions opts) {
  if (opts.scheduler == SchedulerKind::SharedQueue) return 0;
  opts.threads = 1;
  Solver probe(opts);
  probe.analyze(a);
  const auto& prio = probe.symbolic().critical_priorities();
  return static_cast<index_t>(std::max_element(prio.begin(), prio.end()) -
                              prio.begin());
}

TEST_P(CancellationTest, BreakdownCancelsOutstandingWork) {
  // Plenty of supernodes, one elimination task each (panel splitting off),
  // with the fault at the first leaf the scheduler picks: the breakdown
  // fires immediately and the cancelled pool must drain the queued
  // eliminations instead of running them.
  const CscMatrix a = sparse::laplacian_3d(12, 12, 12);
  SolverOptions opts = small_opts();
  opts.strategy = Strategy::JustInTime;
  opts.factorization = Factorization::Lu;
  opts.threads = 4;
  opts.scheduler = GetParam();
  opts.panel_split_rows = 0;  // task count == elimination count
  opts.fault.kind = FaultInjection::Kind::TinyPivot;
  opts.fault.supernode = first_scheduled_supernode(a, opts);
  Solver solver(opts);

  EXPECT_THROW(solver.factorize(a), NumericalError);

  const SolverStats& st = solver.stats();
  ASSERT_GT(st.num_cblks, 40) << "test matrix too small to be meaningful";
  // (a) far fewer eliminations executed than supernodes exist,
  // (b) queued work was discarded unrun.
  EXPECT_LT(st.scheduler_tasks, static_cast<std::uint64_t>(st.num_cblks) / 2);
  EXPECT_GT(st.scheduler_discarded, 0u);
  // Nothing ran twice: executed + discarded never exceeds the submissions
  // possible (every supernode is submitted at most once).
  EXPECT_LE(st.scheduler_tasks + st.scheduler_discarded,
            static_cast<std::uint64_t>(st.num_cblks));

  // Per-worker counters are consistent with the aggregate.
  std::uint64_t discarded = 0;
  for (const auto& ws : solver.worker_stats()) discarded += ws.discarded;
  EXPECT_EQ(discarded, st.scheduler_discarded);

  // The pool survives cancellation: the consumed fault budget lets the same
  // solver factorize and solve cleanly.
  solver.factorize(a);
  const auto b = random_rhs(a.rows(), 7);
  std::vector<real_t> x(b.size());
  solver.solve(b.data(), x.data());
  EXPECT_LT(sparse::backward_error(a, x.data(), b.data()), 1e-5);
  EXPECT_EQ(solver.stats().scheduler_discarded, 0u);
}

INSTANTIATE_TEST_SUITE_P(BothKinds, CancellationTest,
                         ::testing::Values(SchedulerKind::WorkStealing,
                                           SchedulerKind::SharedQueue),
                         [](const ::testing::TestParamInfo<SchedulerKind>& info) {
                           return info.param == SchedulerKind::WorkStealing
                                      ? std::string("WorkStealing")
                                      : std::string("SharedQueue");
                         });

// ---------------------------------------------------------------------------
// Inherent (non-injected) breakdowns
// ---------------------------------------------------------------------------

TEST(Breakdown, NonSpdMatrixForcedToLltReportsNonPositivePivot) {
  const CscMatrix a = negated(sparse::laplacian_3d(6, 6, 6));
  SolverOptions opts = small_opts();
  opts.strategy = Strategy::Dense;
  opts.factorization = Factorization::Llt;
  Solver solver(opts);

  try {
    solver.factorize(a);
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.report().kind, FailureKind::NonPositivePivot);
    EXPECT_GE(e.report().supernode, 0);
    EXPECT_GE(e.report().local_pivot, 0);
    EXPECT_EQ(e.report().factorization, "LLt");
  }
  EXPECT_FALSE(solver.factorized());
}

TEST(Breakdown, StructurallySingularLuReportsZeroPivot) {
  const CscMatrix base = sparse::laplacian_2d(16, 16);
  const CscMatrix a = zero_row_col(base, base.rows() / 2);
  SolverOptions opts = small_opts();
  opts.strategy = Strategy::Dense;
  opts.factorization = Factorization::Lu;
  opts.pivot_threshold = 0;  // no static pivoting: the zero pivot must throw
  Solver solver(opts);

  try {
    solver.factorize(a);
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.report().kind, FailureKind::ZeroPivot);
    EXPECT_GE(e.report().supernode, 0);
    EXPECT_EQ(e.report().pivot_magnitude, 0.0);
  }
}

TEST(Breakdown, NonFiniteInputIsRejectedBeforeFactorization) {
  CscMatrix a = sparse::laplacian_2d(8, 8);
  a.values()[3] = std::numeric_limits<real_t>::quiet_NaN();
  Solver solver(small_opts());
  try {
    solver.factorize(a);
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.report().kind, FailureKind::NonFiniteInput);
  }
}

// ---------------------------------------------------------------------------
// Guards on the solve path
// ---------------------------------------------------------------------------

TEST(Breakdown, SolveBeforeFactorizeThrowsClearError) {
  Solver solver;
  std::vector<real_t> b(10, 1.0), x(10);
  try {
    solver.solve(b.data(), x.data());
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("factorize()"), std::string::npos);
  }
  EXPECT_THROW(solver.preconditioner(), Error);
  EXPECT_THROW((void)solver.solve(b), Error);
}

// ---------------------------------------------------------------------------
// Recovery ladder
// ---------------------------------------------------------------------------

TEST(Recovery, TransientFaultRetriesAndMatchesCleanDenseRun) {
  const CscMatrix a = sparse::laplacian_3d(10, 10, 10);
  const auto b = random_rhs(a.rows(), 11);

  // Clean Dense reference.
  SolverOptions dense = small_opts();
  dense.strategy = Strategy::Dense;
  Solver ref(dense);
  ref.factorize(a);
  std::vector<real_t> xref(b.size());
  ref.solve(b.data(), xref.data());
  const real_t err_ref = sparse::backward_error(a, xref.data(), b.data());

  // Parallel JIT run with a transient tiny pivot and a dense-fallback rung:
  // attempt 0 breaks down, attempt 1 re-runs as Dense (fault consumed).
  SolverOptions opts = small_opts();
  opts.strategy = Strategy::JustInTime;
  opts.factorization = Factorization::Lu;  // deterministic zero-pivot kind
  opts.threads = 4;
  opts.fault.kind = FaultInjection::Kind::TinyPivot;
  opts.fault.supernode = 0;
  opts.fault.max_triggers = 1;
  opts.recovery.enabled = true;
  RecoveryStep fallback;
  fallback.action = RecoveryStep::Action::DenseFallback;
  opts.recovery.ladder = {fallback};
  Solver solver(opts);

  solver.factorize(a);  // no throw: the ladder absorbed the breakdown
  EXPECT_TRUE(solver.factorized());

  const SolverStats& st = solver.stats();
  ASSERT_EQ(st.attempts.size(), 2u);
  EXPECT_FALSE(st.attempts[0].succeeded);
  EXPECT_NE(st.attempts[0].error.find("zero-pivot"), std::string::npos);
  EXPECT_TRUE(st.attempts[1].succeeded);
  EXPECT_EQ(st.attempts[1].action, "dense-fallback");
  EXPECT_EQ(st.attempts[1].strategy, "Dense");

  std::vector<real_t> x(b.size());
  solver.solve(b.data(), x.data());
  const real_t err = sparse::backward_error(a, x.data(), b.data());
  // The retry ran the same clean Dense factorization the reference did.
  EXPECT_LT(err, 1e-12);
  EXPECT_LT(err, err_ref * 100 + 1e-14);
}

TEST(Recovery, DefaultLadderWalksToStaticPivotingForLltBreakdown) {
  // -Laplacian forced to LLᵗ is a persistent breakdown: tightening τ cannot
  // help, so the ladder must climb to static pivoting, which re-runs as LU
  // and succeeds.
  const CscMatrix a = negated(sparse::laplacian_3d(6, 6, 6));
  SolverOptions opts = small_opts();
  opts.strategy = Strategy::JustInTime;
  opts.factorization = Factorization::Llt;
  opts.recovery.enabled = true;  // empty ladder -> default_ladder()
  Solver solver(opts);

  solver.factorize(a);
  EXPECT_TRUE(solver.factorized());
  EXPECT_FALSE(solver.is_llt());

  const SolverStats& st = solver.stats();
  ASSERT_EQ(st.attempts.size(), 3u);  // initial, tighten-tolerance, static-pivoting
  EXPECT_FALSE(st.attempts[0].succeeded);
  EXPECT_EQ(st.attempts[1].action, "tighten-tolerance");
  EXPECT_FALSE(st.attempts[1].succeeded);
  EXPECT_EQ(st.attempts[2].action, "static-pivoting");
  EXPECT_TRUE(st.attempts[2].succeeded);
  EXPECT_FALSE(st.attempts[2].llt);

  const auto b = random_rhs(a.rows(), 3);
  std::vector<real_t> x(b.size());
  solver.solve(b.data(), x.data());
  EXPECT_LT(sparse::backward_error(a, x.data(), b.data()), 1e-5);
}

TEST(Recovery, ExhaustedLadderRethrowsWithAttemptCount) {
  // An unlimited-trigger fault defeats every rung: the final throw carries
  // the attempt index of the last try and stats record every attempt.
  const CscMatrix a = sparse::laplacian_3d(6, 6, 6);
  SolverOptions opts = small_opts();
  opts.strategy = Strategy::JustInTime;
  opts.factorization = Factorization::Lu;
  opts.fault.kind = FaultInjection::Kind::TinyPivot;
  opts.fault.supernode = 0;
  opts.fault.max_triggers = -1;  // never consumed
  opts.recovery.enabled = true;
  RecoveryStep tighten;  // a rung that cannot cure an injected zero pivot
  tighten.action = RecoveryStep::Action::TightenTolerance;
  opts.recovery.ladder = {tighten};
  Solver solver(opts);

  try {
    solver.factorize(a);
    FAIL() << "expected NumericalError";
  } catch (const NumericalError& e) {
    EXPECT_EQ(e.report().attempt, 1);
    EXPECT_NE(std::string(e.what()).find("attempt 1"), std::string::npos);
  }
  EXPECT_FALSE(solver.factorized());
  const SolverStats& st = solver.stats();
  ASSERT_EQ(st.attempts.size(), 2u);
  EXPECT_FALSE(st.attempts[0].succeeded);
  EXPECT_FALSE(st.attempts[1].succeeded);
}

TEST(Recovery, PrintSummaryListsAttempts) {
  const CscMatrix a = sparse::laplacian_3d(6, 6, 6);
  SolverOptions opts = small_opts();
  opts.strategy = Strategy::JustInTime;
  opts.factorization = Factorization::Lu;
  opts.fault.kind = FaultInjection::Kind::TinyPivot;
  opts.fault.supernode = 0;
  opts.recovery.enabled = true;
  Solver solver(opts);
  solver.factorize(a);

  std::ostringstream os;
  solver.print_summary(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("recovery"), std::string::npos);
  EXPECT_NE(s.find("[initial]"), std::string::npos);
  EXPECT_NE(s.find("[tighten-tolerance]"), std::string::npos);
}

} // namespace
