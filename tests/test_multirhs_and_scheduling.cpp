// Cross-cutting tests: multi right-hand-side solves across factorization
// kinds and strategies, left-looking scheduling combined with every
// strategy/kernel, and assorted coverage of the runtime knobs.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>

#include "blr.hpp"

namespace {

using namespace blr;
using sparse::CscMatrix;

SolverOptions demo_opts(Strategy s) {
  SolverOptions o;
  o.strategy = s;
  o.compress_min_width = 16;
  o.compress_min_height = 8;
  o.split.split_threshold = 64;
  o.split.split_size = 32;
  return o;
}

la::DMatrix random_rhs_block(index_t n, index_t nrhs, std::uint64_t seed) {
  Prng rng(seed);
  la::DMatrix b(n, nrhs);
  la::random_normal(b.view(), rng);
  return b;
}

real_t block_backward_error(const CscMatrix& a, const la::DMatrix& x,
                            const la::DMatrix& b) {
  real_t worst = 0;
  std::vector<real_t> xr(static_cast<std::size_t>(a.rows()));
  std::vector<real_t> br(xr.size());
  for (index_t r = 0; r < b.cols(); ++r) {
    for (index_t i = 0; i < a.rows(); ++i) {
      xr[static_cast<std::size_t>(i)] = x(i, r);
      br[static_cast<std::size_t>(i)] = b(i, r);
    }
    worst = std::max(worst, sparse::backward_error(a, xr.data(), br.data()));
  }
  return worst;
}

TEST(MultiRhs, LuPathAllStrategies) {
  const CscMatrix a = sparse::convection_diffusion_3d(7, 7, 7, 0.5);
  const la::DMatrix b = random_rhs_block(a.rows(), 4, 11);
  for (const Strategy s :
       {Strategy::Dense, Strategy::JustInTime, Strategy::MinimalMemory}) {
    Solver solver(demo_opts(s));
    solver.factorize(a);
    ASSERT_FALSE(solver.is_llt());
    la::DMatrix x(a.rows(), 4);
    solver.solve(b.cview(), x.view());
    EXPECT_LT(block_backward_error(a, x, b), 1e-5) << static_cast<int>(s);
  }
}

TEST(MultiRhs, CholeskyPathMinimalMemory) {
  const CscMatrix a = sparse::elasticity_3d(4, 4, 4, 2.0, 1.0);
  const la::DMatrix b = random_rhs_block(a.rows(), 3, 12);
  Solver solver(demo_opts(Strategy::MinimalMemory));
  solver.factorize(a);
  ASSERT_TRUE(solver.is_llt());
  la::DMatrix x(a.rows(), 3);
  solver.solve(b.cview(), x.view());
  EXPECT_LT(block_backward_error(a, x, b), 1e-5);
}

TEST(MultiRhs, SingleColumnBlockMatchesVectorApi) {
  const CscMatrix a = sparse::laplacian_2d(12, 12);
  Solver solver(demo_opts(Strategy::Dense));
  solver.factorize(a);
  const la::DMatrix b = random_rhs_block(a.rows(), 1, 13);
  la::DMatrix x1(a.rows(), 1);
  solver.solve(b.cview(), x1.view());
  std::vector<real_t> bv(static_cast<std::size_t>(a.rows()));
  for (index_t i = 0; i < a.rows(); ++i) bv[static_cast<std::size_t>(i)] = b(i, 0);
  const auto x2 = solver.solve(bv);
  for (index_t i = 0; i < a.rows(); ++i)
    EXPECT_DOUBLE_EQ(x1(i, 0), x2[static_cast<std::size_t>(i)]);
}

TEST(MultiRhs, ShapeMismatchThrows) {
  const CscMatrix a = sparse::laplacian_2d(5, 5);
  Solver solver(demo_opts(Strategy::Dense));
  solver.factorize(a);
  la::DMatrix b(25, 2), x(25, 3);
  EXPECT_THROW(solver.solve(b.cview(), x.view()), Error);
  la::DMatrix b2(24, 2), x2(24, 2);
  EXPECT_THROW(solver.solve(b2.cview(), x2.view()), Error);
}

struct SchedCase {
  Strategy strategy;
  lr::CompressionKind kind;
};

class LeftLookingSweep : public ::testing::TestWithParam<SchedCase> {};

TEST_P(LeftLookingSweep, MatchesRightLookingSolution) {
  const auto p = GetParam();
  const CscMatrix a = sparse::heterogeneous_poisson_3d(7, 7, 7, 2.0, 9);
  Prng rng(14);
  std::vector<real_t> b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.normal();

  SolverOptions rl = demo_opts(p.strategy);
  rl.kind = p.kind;
  SolverOptions ll = rl;
  ll.scheduling = core::Scheduling::LeftLooking;

  Solver s1(rl), s2(ll);
  s1.factorize(a);
  s2.factorize(a);
  std::vector<real_t> x1(b.size()), x2(b.size());
  s1.solve(b.data(), x1.data());
  s2.solve(b.data(), x2.data());
  for (std::size_t i = 0; i < b.size(); ++i) ASSERT_NEAR(x1[i], x2[i], 1e-9);
  EXPECT_EQ(s1.stats().factor_entries_final, s2.stats().factor_entries_final);
}

INSTANTIATE_TEST_SUITE_P(
    StrategyKernelGrid, LeftLookingSweep,
    ::testing::Values(SchedCase{Strategy::Dense, lr::CompressionKind::Rrqr},
                      SchedCase{Strategy::JustInTime, lr::CompressionKind::Rrqr},
                      SchedCase{Strategy::JustInTime, lr::CompressionKind::Svd},
                      SchedCase{Strategy::JustInTime, lr::CompressionKind::Randomized},
                      SchedCase{Strategy::MinimalMemory, lr::CompressionKind::Rrqr}),
    [](const auto& info) {
      std::string s = info.param.strategy == Strategy::Dense ? "Dense"
                      : info.param.strategy == Strategy::JustInTime ? "JIT"
                                                                    : "MinMem";
      s += core::kind_name(info.param.kind);
      return s;
    });

TEST(LeftLooking, MultiRhsAfterLeftLookingFactorization) {
  const CscMatrix a = sparse::laplacian_3d(8, 8, 8);
  SolverOptions o = demo_opts(Strategy::JustInTime);
  o.scheduling = core::Scheduling::LeftLooking;
  Solver solver(o);
  solver.factorize(a);
  const la::DMatrix b = random_rhs_block(a.rows(), 3, 15);
  la::DMatrix x(a.rows(), 3);
  solver.solve(b.cview(), x.view());
  EXPECT_LT(block_backward_error(a, x, b), 1e-6);
}

TEST(Scheduling, TwoDimensionalProblemFullPipeline) {
  // 2D problems exercise much smaller separators; full pipeline sanity.
  const CscMatrix a = sparse::laplacian_2d(40, 40);
  for (const Strategy s : {Strategy::Dense, Strategy::MinimalMemory}) {
    Solver solver(demo_opts(s));
    solver.factorize(a);
    std::vector<real_t> b(static_cast<std::size_t>(a.rows()), 1.0);
    const auto x = solver.solve(b);
    EXPECT_LT(sparse::backward_error(a, x.data(), b.data()), 1e-6);
  }
}

TEST(Stats, PhaseTimesArePopulated) {
  const CscMatrix a = sparse::laplacian_3d(8, 8, 8);
  Solver solver(demo_opts(Strategy::JustInTime));
  solver.factorize(a);
  std::vector<real_t> b(static_cast<std::size_t>(a.rows()), 1.0);
  (void)solver.solve(b);
  EXPECT_GT(solver.stats().time_analyze, 0.0);
  EXPECT_GT(solver.stats().time_factorize, 0.0);
  EXPECT_GE(solver.stats().time_solve, 0.0);
  EXPECT_GT(solver.stats().num_cblks, 0);
  EXPECT_GT(solver.stats().compression_ratio(), 0.5);
}

TEST(Trace, RecordsOneEventPerSupernode) {
  const CscMatrix a = sparse::laplacian_3d(8, 8, 8);
  SolverOptions o = demo_opts(Strategy::JustInTime);
  o.collect_trace = true;
  o.threads = 4;
  Solver solver(o);
  solver.factorize(a);
  const auto& tr = solver.trace();
  EXPECT_EQ(static_cast<index_t>(tr.size()), solver.stats().num_cblks);
  std::vector<char> seen(static_cast<std::size_t>(solver.stats().num_cblks), 0);
  for (const auto& e : tr) {
    EXPECT_GE(e.end, e.start);
    EXPECT_GE(e.start, 0.0);
    EXPECT_FALSE(seen[static_cast<std::size_t>(e.cblk)]) << "duplicate " << e.cblk;
    seen[static_cast<std::size_t>(e.cblk)] = 1;
  }
  // CSV round trip.
  const std::string path = ::testing::TempDir() + "blr_trace.csv";
  solver.write_trace_csv(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "cblk,worker,start_s,end_s");
  index_t rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, solver.stats().num_cblks);
}

TEST(Trace, ParallelTraceCoversEveryCblkOnceWithoutWorkerOverlap) {
  const CscMatrix a = sparse::laplacian_3d(8, 8, 8);
  SolverOptions o = demo_opts(Strategy::JustInTime);
  o.collect_trace = true;
  o.threads = 4;
  o.scheduler = SchedulerKind::WorkStealing;
  o.panel_split_rows = 48;  // force the panel-split subtask path
  Solver solver(o);
  solver.factorize(a);
  const auto& tr = solver.trace();

  // Every supernode appears exactly once, even though its updates may have
  // been spread over several panel-split subtasks.
  ASSERT_EQ(static_cast<index_t>(tr.size()), solver.stats().num_cblks);
  std::vector<char> seen(static_cast<std::size_t>(solver.stats().num_cblks), 0);
  std::map<std::size_t, std::vector<const core::TraceEvent*>> by_worker;
  for (const auto& e : tr) {
    EXPECT_GE(e.start, 0.0);
    EXPECT_GE(e.end, e.start);
    EXPECT_LT(e.worker, static_cast<std::size_t>(o.threads));
    ASSERT_FALSE(seen[static_cast<std::size_t>(e.cblk)]) << "duplicate " << e.cblk;
    seen[static_cast<std::size_t>(e.cblk)] = 1;
    by_worker[e.worker].push_back(&e);
  }
  // A worker executes its elimination tasks serially, so its trace rows must
  // not overlap in time.
  for (auto& [worker, events] : by_worker) {
    std::sort(events.begin(), events.end(),
              [](const auto* x, const auto* y) { return x->start < y->start; });
    for (std::size_t i = 1; i < events.size(); ++i) {
      EXPECT_GE(events[i]->start, events[i - 1]->end)
          << "worker " << worker << " events overlap";
    }
  }
}

// The dataflow engine records its one-event-per-supernode trace from the
// Factor task; the same coverage and per-worker serialization invariants
// must hold as under the barrier scheduler.
TEST(Trace, DagParallelTraceCoversEveryCblkOnceWithoutWorkerOverlap) {
  const CscMatrix a = sparse::laplacian_3d(8, 8, 8);
  SolverOptions o = demo_opts(Strategy::JustInTime);
  o.collect_trace = true;
  o.threads = 4;
  o.scheduler = SchedulerKind::WorkStealing;
  o.dataflow = core::Dataflow::Dag;
  Solver solver(o);
  solver.factorize(a);
  const auto& tr = solver.trace();

  ASSERT_EQ(static_cast<index_t>(tr.size()), solver.stats().num_cblks);
  std::vector<char> seen(static_cast<std::size_t>(solver.stats().num_cblks), 0);
  std::map<std::size_t, std::vector<const core::TraceEvent*>> by_worker;
  for (const auto& e : tr) {
    EXPECT_GE(e.start, 0.0);
    EXPECT_GE(e.end, e.start);
    EXPECT_LT(e.worker, static_cast<std::size_t>(o.threads));
    ASSERT_FALSE(seen[static_cast<std::size_t>(e.cblk)]) << "duplicate " << e.cblk;
    seen[static_cast<std::size_t>(e.cblk)] = 1;
    by_worker[e.worker].push_back(&e);
  }
  for (auto& [worker, events] : by_worker) {
    std::sort(events.begin(), events.end(),
              [](const auto* x, const auto* y) { return x->start < y->start; });
    for (std::size_t i = 1; i < events.size(); ++i) {
      EXPECT_GE(events[i]->start, events[i - 1]->end)
          << "worker " << worker << " events overlap";
    }
  }
}

TEST(Trace, DisabledByDefaultAndLeftLookingWorks) {
  const CscMatrix a = sparse::laplacian_2d(10, 10);
  Solver s1(demo_opts(Strategy::Dense));
  s1.factorize(a);
  EXPECT_TRUE(s1.trace().empty());

  SolverOptions o = demo_opts(Strategy::Dense);
  o.collect_trace = true;
  o.scheduling = core::Scheduling::LeftLooking;
  Solver s2(o);
  s2.factorize(a);
  EXPECT_EQ(static_cast<index_t>(s2.trace().size()), s2.stats().num_cblks);
  // Left-looking is sequential: events must be ordered by supernode.
  for (std::size_t i = 1; i < s2.trace().size(); ++i)
    EXPECT_LT(s2.trace()[i - 1].cblk, s2.trace()[i].cblk);
}

} // namespace
