// Resource-governance tests (DESIGN.md §13): memory budgets enforced by the
// soft-failing MemoryTracker, the wall-clock deadline watchdog, injected
// allocation failures and clock skew, the resource degradation ladder, and
// the per-attempt counter capture. Labelled `resource` so the CI sanitizer
// stages (ASan/TSan) pick the whole file up.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstddef>
#include <sstream>
#include <thread>
#include <vector>

#include "blr.hpp"

namespace {

using namespace blr;
using core::FaultInjection;
using core::RecoveryStep;
using sparse::CscMatrix;

/// Small-problem options so the BLR machinery engages on test matrices.
SolverOptions small_opts() {
  SolverOptions opts;
  opts.compress_min_width = 16;
  opts.compress_min_height = 8;
  opts.split.split_threshold = 64;
  opts.split.split_size = 32;
  return opts;
}

std::vector<real_t> random_rhs(index_t n, std::uint64_t seed) {
  Prng rng(seed);
  std::vector<real_t> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.normal();
  return b;
}

/// ||b - A x||_inf — sanity check that a degraded (governed) factorization
/// still produces a usable solve.
double residual_inf(const CscMatrix& a, const std::vector<real_t>& x,
                    const std::vector<real_t>& b) {
  std::vector<real_t> ax(b.size());
  a.spmv(x.data(), ax.data());
  double r = 0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    r = std::max(r, std::abs(static_cast<double>(b[i] - ax[i])));
  }
  return r;
}

/// Peak of one ungoverned run under `opts` (for runtime budget calibration:
/// absolute byte counts vary with splitting and compression decisions, so
/// the budgets below are derived from a measured baseline, never hardcoded).
std::size_t measured_peak(const CscMatrix& a, const SolverOptions& opts) {
  Solver solver(opts);
  solver.factorize(a);
  return solver.stats().total_peak_bytes;
}

// ---------------------------------------------------------------------------
// MemoryTracker / TileArena peak tracking under contention (TSan target)
// ---------------------------------------------------------------------------

TEST(TrackerConcurrency, PeaksAreRaceFreeAndExact) {
  auto& t = MemoryTracker::instance();
  t.reset();
  lr::TileArena arena(MemCategory::Workspace);

  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  constexpr std::size_t kBlock = 64;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        t.allocate(MemCategory::Factors, kBlock);
        arena.charge(kBlock);
        arena.discharge(kBlock);
        t.release(MemCategory::Factors, kBlock);
      }
    });
  }
  for (auto& w : workers) w.join();

  // Everything released: live counters drain to zero.
  EXPECT_EQ(t.current(MemCategory::Factors), 0u);
  EXPECT_EQ(t.current_total(), 0u);
  EXPECT_EQ(arena.bytes(), 0u);
  // CAS-max peaks: at least one holder's block, at most all concurrent
  // holders, and never below the final live value.
  EXPECT_GE(t.peak(MemCategory::Factors), kBlock);
  EXPECT_LE(t.peak(MemCategory::Factors), kThreads * kBlock);
  EXPECT_GE(arena.peak(), kBlock);
  EXPECT_LE(arena.peak(), kThreads * kBlock);
  t.reset();
}

TEST(TrackerBudget, RollbackKeepsPeakUnderBudget) {
  auto& t = MemoryTracker::instance();
  t.reset();
  t.set_budget(1000);
  t.allocate(MemCategory::Factors, 800);
  EXPECT_THROW(t.allocate(MemCategory::Factors, 300), ResourceError);
  // The refused request was rolled back before any peak update.
  EXPECT_EQ(t.current_total(), 800u);
  EXPECT_EQ(t.peak_total(), 800u);
  // A fitting request still proceeds after the refusal.
  t.allocate(MemCategory::Workspace, 150);
  EXPECT_EQ(t.current_total(), 950u);
  t.release(MemCategory::Workspace, 150);
  t.release(MemCategory::Factors, 800);
  t.reset();
}

TEST(TrackerBudget, ReportCarriesStructuredBreach) {
  auto& t = MemoryTracker::instance();
  t.reset();
  t.set_budget(512);
  t.allocate(MemCategory::Factors, 256);
  try {
    t.allocate(MemCategory::Workspace, 400);
    FAIL() << "expected ResourceError";
  } catch (const ResourceError& e) {
    const ResourceReport& r = e.report();
    EXPECT_EQ(r.kind, ResourceKind::MemoryBudget);
    EXPECT_EQ(r.budget_bytes, 512u);
    EXPECT_EQ(r.requested_bytes, 400u);
    EXPECT_EQ(r.category, MemCategory::Workspace);
    EXPECT_EQ(r.live_bytes[static_cast<std::size_t>(MemCategory::Factors)],
              256u);
    EXPECT_FALSE(r.injected);
    EXPECT_NE(r.to_string().find("memory-budget"), std::string::npos);
  }
  t.release(MemCategory::Factors, 256);
  t.reset();
}

// ---------------------------------------------------------------------------
// Budget grid: tight-but-feasible and infeasible budgets across execution
// modes (sequential / parallel x Barrier / Dag x both schedulers)
// ---------------------------------------------------------------------------

struct GovMode {
  int threads;
  SchedulerKind scheduler;
  core::Dataflow dataflow;
};

class BudgetModeTest : public ::testing::TestWithParam<GovMode> {
protected:
  SolverOptions opts_for_mode() {
    SolverOptions opts = small_opts();
    opts.threads = GetParam().threads;
    opts.scheduler = GetParam().scheduler;
    opts.dataflow = GetParam().dataflow;
    return opts;
  }
};

TEST_P(BudgetModeTest, FeasibleBudgetSucceedsWithinBudget) {
  const CscMatrix a = sparse::laplacian_3d(10, 10, 10);
  SolverOptions opts = opts_for_mode();
  const std::size_t peak = measured_peak(a, opts);
  ASSERT_GT(peak, 0u);

  // Parallel runs get more headroom: their peak varies with the overlap the
  // schedule happens to achieve, and the budget must stay feasible.
  opts.memory_budget_bytes = GetParam().threads > 1 ? peak * 2 : peak + peak / 4;
  Solver solver(opts);
  solver.factorize(a);
  ASSERT_TRUE(solver.factorized());
  EXPECT_LE(solver.stats().total_peak_bytes, opts.memory_budget_bytes);
  EXPECT_EQ(solver.stats().memory_budget_bytes, opts.memory_budget_bytes);

  const std::vector<real_t> b = random_rhs(a.rows(), 42);
  const std::vector<real_t> x = solver.solve(b);
  EXPECT_LT(residual_inf(a, x, b), 1e-4);
}

TEST_P(BudgetModeTest, InfeasibleBudgetFailsSoftlyAndSurvives) {
  const CscMatrix a = sparse::laplacian_3d(10, 10, 10);
  SolverOptions opts = opts_for_mode();
  opts.memory_budget_bytes = 64 * 1024;  // far below any feasible run

  Solver solver(opts);
  try {
    solver.factorize(a);
    FAIL() << "expected ResourceError";
  } catch (const ResourceError& e) {
    const ResourceReport& r = e.report();
    EXPECT_EQ(r.kind, ResourceKind::MemoryBudget);
    EXPECT_EQ(r.budget_bytes, opts.memory_budget_bytes);
    EXPECT_LE(r.peak_bytes, opts.memory_budget_bytes);
    EXPECT_FALSE(r.injected);
  }
  EXPECT_FALSE(solver.factorized());
  EXPECT_EQ(solver.pool_pending(), 0u);

  // "Fail the request, never the process": the same process factorizes
  // ungoverned right after the refusal (the budget did not leak onto the
  // process-wide tracker).
  SolverOptions clean = opts_for_mode();
  Solver retry(clean);
  retry.factorize(a);
  EXPECT_TRUE(retry.factorized());
}

INSTANTIATE_TEST_SUITE_P(
    Modes, BudgetModeTest,
    ::testing::Values(GovMode{1, SchedulerKind::SharedQueue, core::Dataflow::Barrier},
                      GovMode{1, SchedulerKind::SharedQueue, core::Dataflow::Dag},
                      GovMode{4, SchedulerKind::WorkStealing, core::Dataflow::Barrier},
                      GovMode{4, SchedulerKind::WorkStealing, core::Dataflow::Dag},
                      GovMode{4, SchedulerKind::SharedQueue, core::Dataflow::Barrier}),
    [](const auto& info) {
      std::ostringstream os;
      os << (info.param.threads > 1 ? "Par" : "Seq")
         << (info.param.scheduler == SchedulerKind::WorkStealing ? "WS" : "SQ")
         << (info.param.dataflow == core::Dataflow::Dag ? "Dag" : "Barrier");
      return os.str();
    });

TEST(BudgetRegime, BelowDenseAboveBlrSucceeds) {
  // The paper's headline claim, governed: a budget the dense factors would
  // NOT fit but the BLR run does. Needs a problem large enough for the
  // Minimal-Memory peak to drop visibly below the dense footprint
  // (laplacian_3d(24) at tau=1e-4: peak ~96% of dense).
  const CscMatrix a = sparse::laplacian_3d(24, 24, 24);
  SolverOptions opts = small_opts();
  opts.strategy = Strategy::MinimalMemory;
  opts.tolerance = 1e-4;

  Solver probe(opts);
  probe.factorize(a);
  const std::size_t dense_bytes =
      probe.stats().factor_entries_dense * sizeof(real_t);
  const std::size_t blr_peak = probe.stats().total_peak_bytes;
  ASSERT_LT(blr_peak, dense_bytes)
      << "calibration: the BLR peak must undercut the dense footprint here";

  opts.memory_budget_bytes = (dense_bytes + blr_peak) / 2;
  Solver solver(opts);
  solver.factorize(a);
  ASSERT_TRUE(solver.factorized());
  EXPECT_LE(solver.stats().total_peak_bytes, opts.memory_budget_bytes);
  EXPECT_LT(opts.memory_budget_bytes, dense_bytes);
}

// ---------------------------------------------------------------------------
// Injected allocation failures (FaultInjection::Kind::AllocFail)
// ---------------------------------------------------------------------------

TEST(AllocFailInjection, ByteThresholdFiresOnFactors) {
  const CscMatrix a = sparse::laplacian_3d(8, 8, 8);
  SolverOptions opts = small_opts();
  opts.fault.kind = FaultInjection::Kind::AllocFail;
  opts.fault.at_bytes = 1;  // first tracked allocation trips
  opts.fault.alloc_category = static_cast<int>(MemCategory::Factors);

  Solver solver(opts);
  try {
    solver.factorize(a);
    FAIL() << "expected ResourceError";
  } catch (const ResourceError& e) {
    EXPECT_EQ(e.report().kind, ResourceKind::MemoryBudget);
    EXPECT_EQ(e.report().category, MemCategory::Factors);
    EXPECT_TRUE(e.report().injected);
  }
  EXPECT_FALSE(solver.factorized());
}

TEST(AllocFailInjection, ByteThresholdFiresOnWorkspace) {
  const CscMatrix a = sparse::laplacian_3d(8, 8, 8);
  SolverOptions opts = small_opts();
  opts.strategy = Strategy::JustInTime;  // compressions allocate workspace
  opts.fault.kind = FaultInjection::Kind::AllocFail;
  opts.fault.at_bytes = 1;
  opts.fault.alloc_category = static_cast<int>(MemCategory::Workspace);

  Solver solver(opts);
  try {
    solver.factorize(a);
    FAIL() << "expected ResourceError";
  } catch (const ResourceError& e) {
    EXPECT_EQ(e.report().category, MemCategory::Workspace);
    EXPECT_TRUE(e.report().injected);
  }
}

TEST(AllocFailInjection, UnusedCategoriesNeverFire) {
  // The factorization allocates only Factors and Workspace: a fail point
  // filtered to Symbolic or Other never triggers, and the run completes.
  // This pins the category coverage of the numeric phase.
  const CscMatrix a = sparse::laplacian_3d(8, 8, 8);
  for (const MemCategory cat : {MemCategory::Symbolic, MemCategory::Other}) {
    SolverOptions opts = small_opts();
    opts.fault.kind = FaultInjection::Kind::AllocFail;
    opts.fault.at_bytes = 1;
    opts.fault.alloc_category = static_cast<int>(cat);
    Solver solver(opts);
    EXPECT_NO_THROW(solver.factorize(a));
    EXPECT_TRUE(solver.factorized());
  }
}

TEST(AllocFailInjection, AtSupernodeAssemblyCarriesSupernode) {
  const CscMatrix a = sparse::laplacian_3d(8, 8, 8);
  SolverOptions opts = small_opts();
  opts.fault.kind = FaultInjection::Kind::AllocFail;
  opts.fault.at_bytes = 0;  // target a supernode's assembly instead
  opts.fault.supernode = 3;

  Solver solver(opts);
  try {
    solver.factorize(a);
    FAIL() << "expected ResourceError";
  } catch (const ResourceError& e) {
    EXPECT_EQ(e.report().supernode, 3);
    EXPECT_TRUE(e.report().injected);
    EXPECT_EQ(e.report().kind, ResourceKind::MemoryBudget);
  }
}

TEST(AllocFailInjection, TransientFaultRecoversOnRetry) {
  // max_triggers = 1 models a transient failure: the first attempt trips the
  // injected breach, the degradation retry runs clean (the shared trigger
  // budget is already consumed at re-arming time).
  const CscMatrix a = sparse::laplacian_3d(8, 8, 8);
  SolverOptions opts = small_opts();
  opts.fault.kind = FaultInjection::Kind::AllocFail;
  opts.fault.at_bytes = 1;
  opts.fault.max_triggers = 1;
  opts.recovery.enabled = true;

  Solver solver(opts);
  solver.factorize(a);
  ASSERT_TRUE(solver.factorized());
  const auto& attempts = solver.stats().attempts;
  ASSERT_EQ(attempts.size(), 2u);
  EXPECT_FALSE(attempts[0].succeeded);
  EXPECT_TRUE(attempts[0].resource);
  EXPECT_TRUE(attempts[1].succeeded);
  EXPECT_EQ(attempts[1].action, "demote-fp32");
  EXPECT_EQ(solver.stats().resource_rungs, 1);
}

// ---------------------------------------------------------------------------
// Deadlines: injected clock skew (deterministic) and a real expiry
// ---------------------------------------------------------------------------

TEST(Deadline, ClockSkewTripsDeterministicallySequential) {
  const CscMatrix a = sparse::laplacian_3d(8, 8, 8);
  SolverOptions opts = small_opts();
  opts.deadline_ms = 60'000;  // far away: only the injected skew can trip it
  opts.fault.kind = FaultInjection::Kind::ClockSkew;
  opts.fault.supernode = 2;
  opts.recovery.enabled = true;  // deadline must NOT ladder-retry

  Solver solver(opts);
  try {
    solver.factorize(a);
    FAIL() << "expected ResourceError";
  } catch (const ResourceError& e) {
    EXPECT_EQ(e.report().kind, ResourceKind::Deadline);
    EXPECT_TRUE(e.report().injected);
    EXPECT_GT(e.report().elapsed_seconds, e.report().deadline_seconds);
  }
  EXPECT_FALSE(solver.factorized());
  // Terminal: one attempt, no rungs climbed against spent wall-clock.
  ASSERT_EQ(solver.stats().attempts.size(), 1u);
  EXPECT_TRUE(solver.stats().attempts[0].resource);
  EXPECT_EQ(solver.stats().resource_rungs, 0);
}

TEST(Deadline, ClockSkewDuringDagDrainsWithoutTaskLeak) {
  const CscMatrix a = sparse::laplacian_3d(10, 10, 10);
  SolverOptions opts = small_opts();
  opts.threads = 4;
  opts.dataflow = core::Dataflow::Dag;
  opts.deadline_ms = 60'000;
  opts.fault.kind = FaultInjection::Kind::ClockSkew;
  opts.fault.supernode = 5;

  Solver solver(opts);
  EXPECT_THROW(solver.factorize(a), ResourceError);
  EXPECT_FALSE(solver.factorized());
  // Cooperative cancellation drained the DAG: nothing still queued, and the
  // attempt record shows tasks discarded rather than leaked.
  EXPECT_EQ(solver.pool_pending(), 0u);
  ASSERT_EQ(solver.stats().attempts.size(), 1u);
  const auto& at = solver.stats().attempts[0];
  EXPECT_TRUE(at.resource);
  EXPECT_LT(at.dag_executed, at.dag_tasks);

  // The pool is reusable after the drain.
  SolverOptions clean = small_opts();
  clean.threads = 4;
  clean.dataflow = core::Dataflow::Dag;
  Solver retry(clean);
  retry.factorize(a);
  EXPECT_TRUE(retry.factorized());
}

TEST(Deadline, RealExpiryFailsSoftly) {
  const CscMatrix a = sparse::laplacian_3d(12, 12, 12);
  SolverOptions opts = small_opts();
  opts.strategy = Strategy::Dense;
  opts.deadline_ms = 1e-3;  // expires at the first clock read

  Solver solver(opts);
  try {
    solver.factorize(a);
    FAIL() << "expected ResourceError";
  } catch (const ResourceError& e) {
    EXPECT_EQ(e.report().kind, ResourceKind::Deadline);
    EXPECT_FALSE(e.report().injected);
  }
  EXPECT_FALSE(solver.factorized());
}

// ---------------------------------------------------------------------------
// The resource degradation ladder
// ---------------------------------------------------------------------------

TEST(ResourceLadder, SwitchToMinMemRescuesTightBudget) {
  // Calibrate a budget that Minimal-Memory fits but Just-In-Time (whose peak
  // includes the not-yet-compressed panels) does not, then let a one-rung
  // ladder walk JIT down to MinMem deterministically.
  const CscMatrix a = sparse::laplacian_3d(10, 10, 10);
  SolverOptions jit = small_opts();
  jit.strategy = Strategy::JustInTime;
  SolverOptions mm = jit;
  mm.strategy = Strategy::MinimalMemory;
  const std::size_t peak_jit = measured_peak(a, jit);
  const std::size_t peak_mm = measured_peak(a, mm);
  ASSERT_LT(peak_mm, peak_jit) << "calibration: MinMem must beat JIT here";
  const std::size_t budget = peak_mm + (peak_jit - peak_mm) / 4;

  SolverOptions opts = jit;
  opts.memory_budget_bytes = budget;
  opts.recovery.enabled = true;
  opts.recovery.resource_ladder.resize(1);
  opts.recovery.resource_ladder[0].action =
      RecoveryStep::Action::SwitchToMinMem;

  Solver solver(opts);
  solver.factorize(a);
  ASSERT_TRUE(solver.factorized());
  const auto& attempts = solver.stats().attempts;
  ASSERT_EQ(attempts.size(), 2u);
  EXPECT_TRUE(attempts[0].resource);
  EXPECT_FALSE(attempts[0].succeeded);
  EXPECT_EQ(attempts[1].action, "switch-to-minmem");
  EXPECT_EQ(attempts[1].strategy, "Minimal Memory");
  EXPECT_TRUE(attempts[1].succeeded);
  EXPECT_EQ(solver.stats().resource_rungs, 1);
  EXPECT_LE(solver.stats().total_peak_bytes, budget);

  const std::vector<real_t> b = random_rhs(a.rows(), 7);
  const std::vector<real_t> x = solver.solve(b);
  EXPECT_LT(residual_inf(a, x, b), 1e-4);
}

TEST(ResourceLadder, DefaultLadderDegradesToSuccess) {
  const CscMatrix a = sparse::laplacian_3d(10, 10, 10);
  SolverOptions jit = small_opts();
  jit.strategy = Strategy::JustInTime;
  SolverOptions mm = jit;
  mm.strategy = Strategy::MinimalMemory;
  const std::size_t peak_jit = measured_peak(a, jit);
  const std::size_t peak_mm = measured_peak(a, mm);
  ASSERT_LT(peak_mm, peak_jit);

  SolverOptions opts = jit;
  opts.memory_budget_bytes = peak_mm + (peak_jit - peak_mm) / 4;
  opts.recovery.enabled = true;  // default ladder: fp32 → loosen τ → MinMem

  Solver solver(opts);
  solver.factorize(a);
  ASSERT_TRUE(solver.factorized());
  EXPECT_GE(solver.stats().resource_rungs, 1);
  EXPECT_LE(solver.stats().resource_rungs, 3);
  EXPECT_TRUE(solver.stats().attempts.back().succeeded);
  EXPECT_TRUE(solver.stats().attempts.front().resource);
  EXPECT_LE(solver.stats().total_peak_bytes, opts.memory_budget_bytes);
}

TEST(ResourceLadder, ExhaustedLadderSurfacesStructuredFailure) {
  const CscMatrix a = sparse::laplacian_3d(10, 10, 10);
  SolverOptions opts = small_opts();
  opts.memory_budget_bytes = 64 * 1024;  // no rung can fit this
  opts.recovery.enabled = true;

  Solver solver(opts);
  try {
    solver.factorize(a);
    FAIL() << "expected ResourceError";
  } catch (const ResourceError& e) {
    EXPECT_EQ(e.report().kind, ResourceKind::MemoryBudget);
    EXPECT_EQ(e.report().attempt, 3);  // initial + 3 default rungs
  }
  EXPECT_FALSE(solver.factorized());
  const auto& attempts = solver.stats().attempts;
  ASSERT_EQ(attempts.size(), 4u);
  for (const auto& at : attempts) {
    EXPECT_FALSE(at.succeeded);
    EXPECT_TRUE(at.resource);
    EXPECT_LE(at.peak_bytes, opts.memory_budget_bytes);
  }
  EXPECT_EQ(attempts[1].action, "demote-fp32");
  EXPECT_EQ(attempts[2].action, "loosen-tolerance");
  EXPECT_EQ(attempts[3].action, "switch-to-minmem");
}

// ---------------------------------------------------------------------------
// Per-attempt counters (Solver::factorize re-entry)
// ---------------------------------------------------------------------------

TEST(AttemptCounters, DagCountersArePerAttemptNotCumulative) {
  const CscMatrix a = sparse::laplacian_3d(8, 8, 8);
  SolverOptions opts = small_opts();
  opts.dataflow = core::Dataflow::Dag;
  opts.fault.kind = FaultInjection::Kind::TinyPivot;
  opts.fault.supernode = 1;  // early breakdown: most DAG tasks never run
  opts.recovery.enabled = true;

  Solver solver(opts);
  solver.factorize(a);
  ASSERT_TRUE(solver.factorized());
  const auto& attempts = solver.stats().attempts;
  ASSERT_EQ(attempts.size(), 2u);
  // Attempt 0 was cancelled mid-DAG; attempt 1 ran the whole graph. Were the
  // counters cumulative, attempt 1 would report ~2x the graph size.
  EXPECT_GT(attempts[0].dag_tasks, 0u);
  EXPECT_LT(attempts[0].dag_executed, attempts[0].dag_tasks);
  EXPECT_EQ(attempts[1].dag_executed, attempts[1].dag_tasks);
  EXPECT_EQ(attempts[1].dag_tasks, solver.stats().dag_tasks);
  EXPECT_GT(attempts[0].peak_bytes, 0u);
  EXPECT_GT(attempts[1].peak_bytes, 0u);
}

TEST(AttemptCounters, BatchAndSchedulerCountersArePerAttempt) {
  const CscMatrix a = sparse::laplacian_3d(8, 8, 8);
  SolverOptions opts = small_opts();
  opts.threads = 4;
  opts.batching = core::Batching::PerSupernode;
  opts.strategy = Strategy::JustInTime;
  opts.fault.kind = FaultInjection::Kind::TinyPivot;
  opts.fault.supernode = 5;
  opts.recovery.enabled = true;

  Solver solver(opts);
  solver.factorize(a);
  ASSERT_TRUE(solver.factorized());
  const auto& attempts = solver.stats().attempts;
  ASSERT_EQ(attempts.size(), 2u);
  EXPECT_GT(attempts[1].scheduler_tasks, 0u);
  EXPECT_GT(attempts[1].batches, 0u);
  // The clean retry matches the final whole-run snapshot — per-attempt, not
  // accumulated across the failed first try.
  EXPECT_EQ(attempts[1].batches, solver.stats().batch.batches);
  EXPECT_EQ(attempts[1].batch_entries, solver.stats().batch.entries);
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

TEST(GovernanceSummary, PrintsBudgetAndDeadline) {
  const CscMatrix a = sparse::laplacian_3d(8, 8, 8);
  SolverOptions opts = small_opts();
  opts.memory_budget_bytes = 512ull * 1024 * 1024;
  opts.deadline_ms = 60'000;

  Solver solver(opts);
  solver.factorize(a);
  ASSERT_TRUE(solver.factorized());
  EXPECT_GT(solver.stats().deadline_margin, 0.0);

  std::ostringstream os;
  solver.print_summary(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("governance"), std::string::npos);
  EXPECT_NE(s.find("budget"), std::string::npos);
  EXPECT_NE(s.find("deadline"), std::string::npos);
}

} // namespace
