// Batched kernel execution (DESIGN.md §11): KernelBatch unit behavior
// (empty / single-entry batches, completion ordering), sequential
// bit-identity of batching=Off vs PerSupernode across strategies ×
// compression kinds × precisions, parallel Off-vs-On parity for both
// scheduler kinds, and the batch counters surfaced in SolverStats.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "blr.hpp"
#include "core/kernel_batch.hpp"

namespace {

using namespace blr;
using sparse::CscMatrix;

// ---- KernelBatch unit tests ------------------------------------------

TEST(KernelBatchUnit, EmptyExecuteIsNoop) {
  core::reset_batch_stats();
  core::KernelBatch batch(nullptr);
  EXPECT_TRUE(batch.empty());
  batch.execute();  // must not count an empty batch or touch the registry
  EXPECT_TRUE(batch.empty());
  const core::BatchExecStats s = core::batch_stats_snapshot();
  EXPECT_EQ(s.batches, 0u);
  EXPECT_EQ(s.entries, 0u);
}

TEST(KernelBatchUnit, SingleEntryBatchRunsKernelAndCompletion) {
  core::reset_batch_stats();

  // A rank-1 matrix: compression at any tolerance must find rank 1.
  la::DMatrix m(24, 16);
  for (index_t j = 0; j < m.cols(); ++j)
    for (index_t i = 0; i < m.rows(); ++i)
      m(i, j) = static_cast<real_t>(i + 1) * static_cast<real_t>(j + 1);

  core::KernelBatch batch(nullptr);
  int completions = 0;
  core::KernelCtx& kc = batch.enqueue(
      core::KernelOp::Compress, core::Rep::Dense, core::Prec::Fp64,
      core::Rep::None, core::Prec::Fp64,
      [&completions](core::KernelCtx& done) {
        ASSERT_TRUE(done.out_lr.has_value());
        EXPECT_EQ(done.out_lr->rank(), 1);
        ++completions;
      });
  kc.in = m.cview();
  kc.kind = lr::CompressionKind::Rrqr;
  kc.tolerance = 1e-10;
  kc.max_rank = 8;
  EXPECT_EQ(batch.size(), 1u);

  batch.execute();
  EXPECT_EQ(completions, 1);
  EXPECT_TRUE(batch.empty());  // cleared for reuse

  const core::BatchExecStats s = core::batch_stats_snapshot();
  EXPECT_EQ(s.batches, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.groups, 1u);
  EXPECT_EQ(s.max_batch, 1u);
  EXPECT_DOUBLE_EQ(s.avg_batch, 1.0);
}

TEST(KernelBatchUnit, CompletionsRunInEnqueueOrder) {
  core::KernelBatch batch(nullptr);
  la::DMatrix m(16, 12);
  for (index_t j = 0; j < m.cols(); ++j)
    for (index_t i = 0; i < m.rows(); ++i)
      m(i, j) = static_cast<real_t>(i - 2 * j);

  std::vector<int> order;
  for (int e = 0; e < 5; ++e) {
    core::KernelCtx& kc = batch.enqueue(
        core::KernelOp::Compress, core::Rep::Dense, core::Prec::Fp64,
        core::Rep::None, core::Prec::Fp64,
        [&order, e](core::KernelCtx&) { order.push_back(e); });
    kc.in = m.cview();
    kc.kind = lr::CompressionKind::Rrqr;
    kc.tolerance = 1e-10;
    kc.max_rank = 8;
  }
  batch.execute();
  ASSERT_EQ(order.size(), 5u);
  for (int e = 0; e < 5; ++e) EXPECT_EQ(order[static_cast<std::size_t>(e)], e);
}

// ---- factor bit-comparison helpers -----------------------------------

template <typename T>
void expect_matrix_bits(const la::Matrix<T>& x, const la::Matrix<T>& y,
                        const char* what, index_t k) {
  ASSERT_EQ(x.rows(), y.rows()) << what << " rows, cblk " << k;
  ASSERT_EQ(x.cols(), y.cols()) << what << " cols, cblk " << k;
  EXPECT_EQ(std::memcmp(x.data(), y.data(),
                        sizeof(T) * static_cast<std::size_t>(x.size())),
            0)
      << what << " bits differ in cblk " << k;
}

void expect_tile_bits(const lr::Tile& x, const lr::Tile& y, const char* what,
                      index_t k) {
  ASSERT_EQ(x.is_lowrank(), y.is_lowrank()) << what << " repr, cblk " << k;
  ASSERT_EQ(x.rank(), y.rank()) << what << " rank, cblk " << k;
  if (!x.is_lowrank()) {
    expect_matrix_bits(x.dense(), y.dense(), what, k);
    return;
  }
  ASSERT_EQ(x.precision(), y.precision()) << what << " precision, cblk " << k;
  if (x.rank() == 0) return;
  if (x.precision() == lr::Precision::Fp32) {
    expect_matrix_bits(x.lr().u32, y.lr().u32, what, k);
    expect_matrix_bits(x.lr().v32, y.lr().v32, what, k);
  } else {
    expect_matrix_bits(x.lr().u, y.lr().u, what, k);
    expect_matrix_bits(x.lr().v, y.lr().v, what, k);
  }
}

void expect_factors_bit_identical(const core::NumericFactor& x,
                                  const core::NumericFactor& y) {
  const index_t ncblk = x.symbolic().num_cblks();
  ASSERT_EQ(ncblk, y.symbolic().num_cblks());
  for (index_t k = 0; k < ncblk; ++k) {
    const core::CblkData& cx = x.cblk_data(k);
    const core::CblkData& cy = y.cblk_data(k);
    expect_tile_bits(cx.diag, cy.diag, "diag", k);
    ASSERT_EQ(cx.lpanel.size(), cy.lpanel.size());
    ASSERT_EQ(cx.upanel.size(), cy.upanel.size());
    ASSERT_EQ(cx.ipiv, cy.ipiv) << "pivots, cblk " << k;
    for (std::size_t i = 0; i < cx.lpanel.size(); ++i)
      expect_tile_bits(cx.lpanel[i], cy.lpanel[i], "lpanel", k);
    for (std::size_t i = 0; i < cx.upanel.size(); ++i)
      expect_tile_bits(cx.upanel[i], cy.upanel[i], "upanel", k);
  }
}

// ---- sequential bit-identity Off vs PerSupernode ---------------------

struct SeqCase {
  Strategy strategy;
  lr::CompressionKind kind;
  TilePrecision precision;
};

SolverOptions seq_opts(const SeqCase& c, core::Batching batching) {
  SolverOptions o;
  o.strategy = c.strategy;
  o.kind = c.kind;
  o.precision = c.precision;
  o.batching = batching;
  o.threads = 1;
  // Small thresholds so the tiny test grids still produce low-rank blocks.
  o.compress_min_width = 16;
  o.compress_min_height = 8;
  o.split.split_threshold = 64;
  o.split.split_size = 32;
  return o;
}

class SeqBatchingBitIdentity : public ::testing::TestWithParam<SeqCase> {};

TEST_P(SeqBatchingBitIdentity, OffVsPerSupernode) {
  const SeqCase c = GetParam();
  const CscMatrix a = sparse::convection_diffusion_3d(7, 7, 7, 0.5);

  Solver off(seq_opts(c, core::Batching::Off));
  off.factorize(a);
  EXPECT_EQ(off.stats().batch.batches, 0u);
  EXPECT_EQ(off.stats().batch.fill_ratio, 0.0);

  Solver on(seq_opts(c, core::Batching::PerSupernode));
  on.factorize(a);
  EXPECT_GT(on.stats().batch.batches, 0u);
  EXPECT_GT(on.stats().batch.fill_ratio, 0.0);

  // Same kernels, same order, same arithmetic: the sequential factors must
  // agree bit for bit, not just to rounding.
  expect_factors_bit_identical(off.numeric(), on.numeric());

  // The logical kernel-call table is comparable across modes: same total
  // calls per kernel, with the batched share accounted separately.
  const auto& doff = off.stats().dispatch;
  const auto& don = on.stats().dispatch;
  ASSERT_EQ(doff.size(), don.size());
  for (std::size_t i = 0; i < doff.size(); ++i) {
    EXPECT_EQ(doff[i].kernel, don[i].kernel);
    EXPECT_EQ(doff[i].calls, don[i].calls) << don[i].kernel;
    EXPECT_EQ(doff[i].batched_calls, 0u) << doff[i].kernel;
    EXPECT_LE(don[i].batched_calls, don[i].calls) << don[i].kernel;
    if (don[i].batched_calls > 0) {
      EXPECT_GT(don[i].batch_invocations, 0u) << don[i].kernel;
      EXPECT_LE(don[i].batch_invocations, don[i].batched_calls)
          << don[i].kernel;
    }
  }

  // Solves on bit-identical factors are bit-identical too.
  std::vector<real_t> b(static_cast<std::size_t>(a.rows()), 1.0);
  const auto xoff = off.solve(b);
  const auto xon = on.solve(b);
  EXPECT_EQ(std::memcmp(xoff.data(), xon.data(), sizeof(real_t) * xoff.size()),
            0);
}

INSTANTIATE_TEST_SUITE_P(
    StrategyKindPrecisionGrid, SeqBatchingBitIdentity,
    ::testing::Values(
        SeqCase{Strategy::JustInTime, lr::CompressionKind::Rrqr,
                TilePrecision::Fp64},
        SeqCase{Strategy::JustInTime, lr::CompressionKind::Svd,
                TilePrecision::Fp64},
        SeqCase{Strategy::JustInTime, lr::CompressionKind::Rrqr,
                TilePrecision::MixedTiles},
        SeqCase{Strategy::MinimalMemory, lr::CompressionKind::Rrqr,
                TilePrecision::Fp64},
        SeqCase{Strategy::MinimalMemory, lr::CompressionKind::Svd,
                TilePrecision::MixedTiles},
        SeqCase{Strategy::Adaptive, lr::CompressionKind::Rrqr,
                TilePrecision::Fp64},
        SeqCase{Strategy::Adaptive, lr::CompressionKind::Svd,
                TilePrecision::Fp64},
        SeqCase{Strategy::Adaptive, lr::CompressionKind::Rrqr,
                TilePrecision::MixedTiles}),
    [](const auto& info) {
      std::string s = info.param.strategy == Strategy::JustInTime ? "JIT"
                      : info.param.strategy == Strategy::MinimalMemory
                          ? "MinMem"
                          : "Adaptive";
      s += info.param.kind == lr::CompressionKind::Svd ? "Svd" : "Rrqr";
      s += info.param.precision == TilePrecision::MixedTiles ? "Mixed" : "Fp64";
      return s;
    });

// On the 7^3 grid every update pair is dense x dense or rank-0, so only the
// compress/trsm batches form; this 10^3 case is sized so factored panels are
// low-rank when their updates fire, forcing products through the Gemm batch
// (the path where the batch owns the product result until the finish phase).
TEST(SeqBatchingLowRankProducts, GemmProductsGoThroughTheBatch) {
  const CscMatrix a = sparse::convection_diffusion_3d(10, 10, 10, 0.5);
  SeqCase c{Strategy::JustInTime, lr::CompressionKind::Rrqr,
            TilePrecision::Fp64};

  Solver off(seq_opts(c, core::Batching::Off));
  off.factorize(a);

  Solver on(seq_opts(c, core::Batching::PerSupernode));
  on.factorize(a);

  // At least one low-rank gemm kernel must have been dispatched batched —
  // otherwise this test lost its coverage and needs a bigger grid.
  std::uint64_t lr_gemm_batched = 0;
  for (const auto& d : on.stats().dispatch)
    if (d.kernel.find("gemm[") == 0 && d.kernel.find("lr") != std::string::npos)
      lr_gemm_batched += d.batched_calls;
  EXPECT_GT(lr_gemm_batched, 0u);

  expect_factors_bit_identical(off.numeric(), on.numeric());

  std::vector<real_t> b(static_cast<std::size_t>(a.rows()), 1.0);
  const auto xoff = off.solve(b);
  const auto xon = on.solve(b);
  EXPECT_EQ(std::memcmp(xoff.data(), xon.data(), sizeof(real_t) * xoff.size()),
            0);

  // And the same configuration under a pool: products run inside run_batch
  // chunks while the finish phase stays on the panel's thread.
  SolverOptions po = seq_opts(c, core::Batching::PerSupernode);
  po.threads = 4;
  po.scheduler = SchedulerKind::WorkStealing;
  Solver par(po);
  par.factorize(a);
  const auto xpar = par.solve(b);
  EXPECT_LT(sparse::backward_error(a, xpar.data(), b.data()), 1e-10);
}

// ---- parallel parity Off vs PerSupernode -----------------------------

struct ParCase {
  Strategy strategy;
  Factorization facto;
};

SolverOptions par_opts(const ParCase& c, core::Batching batching, int threads,
                       SchedulerKind kind) {
  SolverOptions o;
  o.strategy = c.strategy;
  o.factorization = c.facto;
  o.batching = batching;
  o.threads = threads;
  o.scheduler = kind;
  o.compress_min_width = 16;
  o.compress_min_height = 8;
  o.split.split_threshold = 64;
  o.split.split_size = 32;
  o.panel_split_rows = 48;  // force the panel-split subtask path
  return o;
}

class ParallelBatchingParity : public ::testing::TestWithParam<ParCase> {};

TEST_P(ParallelBatchingParity, OffVsPerSupernode) {
  const ParCase c = GetParam();
  const CscMatrix a = c.facto == Factorization::Lu
                          ? sparse::convection_diffusion_3d(7, 7, 7, 0.5)
                          : sparse::elasticity_3d(4, 4, 4, 2.0, 1.0);
  std::vector<real_t> b(static_cast<std::size_t>(a.rows()), 1.0);

  Solver off(par_opts(c, core::Batching::Off, 1, SchedulerKind::WorkStealing));
  off.factorize(a);
  const auto xoff = off.solve(b);
  const real_t res_off = sparse::backward_error(a, xoff.data(), b.data());
  const std::size_t entries_off = off.stats().factor_entries_final;
  ASSERT_LT(res_off, 1e-6);

  for (const SchedulerKind kind :
       {SchedulerKind::WorkStealing, SchedulerKind::SharedQueue}) {
    for (const int threads : {2, 8}) {
      Solver on(par_opts(c, core::Batching::PerSupernode, threads, kind));
      on.factorize(a);
      EXPECT_GT(on.stats().batch.batches, 0u)
          << scheduler_name(kind) << " threads=" << threads;
      const auto xon = on.solve(b);
      const real_t res_on = sparse::backward_error(a, xon.data(), b.data());

      // The update order changes under concurrency, so results agree to
      // rounding (and, for compressed strategies, to the rank decisions
      // rounding can flip), not bit-for-bit — same contract as the
      // parallel-determinism suite.
      EXPECT_LT(res_on, std::max<real_t>(1e-10, 50 * res_off))
          << scheduler_name(kind) << " threads=" << threads;
      if (c.strategy == Strategy::Dense) {
        EXPECT_EQ(on.stats().factor_entries_final, entries_off)
            << scheduler_name(kind) << " threads=" << threads;
      } else {
        const double rel =
            std::abs(static_cast<double>(on.stats().factor_entries_final) -
                     static_cast<double>(entries_off)) /
            static_cast<double>(entries_off);
        EXPECT_LT(rel, 0.02) << scheduler_name(kind) << " threads=" << threads;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    StrategyFactoGrid, ParallelBatchingParity,
    ::testing::Values(ParCase{Strategy::Dense, Factorization::Lu},
                      ParCase{Strategy::JustInTime, Factorization::Lu},
                      ParCase{Strategy::JustInTime, Factorization::Llt},
                      ParCase{Strategy::MinimalMemory, Factorization::Llt},
                      ParCase{Strategy::Adaptive, Factorization::Lu}),
    [](const auto& info) {
      std::string s = info.param.strategy == Strategy::Dense ? "Dense"
                      : info.param.strategy == Strategy::JustInTime ? "JIT"
                      : info.param.strategy == Strategy::MinimalMemory
                          ? "MinMem"
                          : "Adaptive";
      s += info.param.facto == Factorization::Lu ? "Lu" : "Llt";
      return s;
    });

} // namespace
