// Parallel supernodal triangular solve tests (ctest label `solve`;
// DESIGN.md §16).
//
// Pins the solve-phase contracts:
//  - the parallel solve — DAG drain over the solve pool, or column-split
//    for wide multi-RHS batches — is memcmp-identical to the sequential
//    two-sweep, across strategies, dataflow engines, precisions, solve
//    thread counts and RHS widths;
//  - the SolvePlan is built once per symbolic plan and replayed by every
//    refactorize (plan_builds/plan_reuses counters);
//  - the fp32 widen cache is built lazily on the first solve, hit by every
//    later low-rank apply, and invalidated wholesale by refactorize();
//  - solve kernels are routed through KernelDispatch (solve_trsm/solve_gemm
//    rows in the kernel table), including PerSupernode batching;
//  - a Session serving concurrent clients over the parallel solve returns
//    bit-identical answers and reports the solve-phase detail per request.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "blr.hpp"
#include "core/solve_plan.hpp"

namespace {

using namespace blr;
using sparse::CscMatrix;

SolverOptions base_options(Strategy strategy, Dataflow dataflow,
                           TilePrecision precision, int threads) {
  SolverOptions o;
  o.strategy = strategy;
  o.dataflow = dataflow;
  o.precision = precision;
  o.threads = threads;
  o.tolerance = 1e-8;
  o.compress_min_width = 16;
  o.compress_min_height = 8;
  o.split.split_threshold = 64;
  o.split.split_size = 32;
  return o;
}

std::vector<real_t> seeded_block(index_t n, index_t nrhs, std::uint64_t seed) {
  Prng rng(seed);
  std::vector<real_t> b(static_cast<std::size_t>(n) *
                        static_cast<std::size_t>(nrhs));
  for (auto& v : b) v = rng.normal();
  return b;
}

/// Same pattern, different values (keeps SPD matrices SPD).
CscMatrix step_values(const CscMatrix& a, real_t scale, real_t shift) {
  CscMatrix out = a;
  for (index_t j = 0; j < out.cols(); ++j) {
    for (index_t p = out.colptr()[static_cast<std::size_t>(j)];
         p < out.colptr()[static_cast<std::size_t>(j) + 1]; ++p) {
      out.values()[static_cast<std::size_t>(p)] *= scale;
      if (out.rowind()[static_cast<std::size_t>(p)] == j) {
        out.values()[static_cast<std::size_t>(p)] += shift;
      }
    }
  }
  return out;
}

// ---- (a) parallel == sequential, bitwise ----------------------------------

struct SolveConfig {
  Strategy strategy;
  Dataflow dataflow;
  TilePrecision precision;
  int factor_threads;
  int solve_threads;
};

std::string config_name(const ::testing::TestParamInfo<SolveConfig>& info) {
  std::string s = core::strategy_name(info.param.strategy);
  s.erase(std::remove_if(s.begin(), s.end(),
                         [](char c) { return c == ' ' || c == '-'; }),
          s.end());
  s += info.param.dataflow == Dataflow::Dag ? "Dag" : "Barrier";
  s += info.param.precision == TilePrecision::MixedTiles ? "Mixed" : "Fp64";
  s += "S" + std::to_string(info.param.solve_threads);
  return s;
}

class ParallelSolveDeterminism : public ::testing::TestWithParam<SolveConfig> {
};

// Every execution mode of the parallel solve — small-RHS DAG drain, wide
// column split — reproduces the sequential sweep bit for bit.
TEST_P(ParallelSolveDeterminism, MatchesSequentialBitwise) {
  const SolveConfig cfg = GetParam();
  const CscMatrix a = sparse::laplacian_3d(10, 10, 10);
  const index_t n = a.rows();

  SolverOptions seq_opts = base_options(cfg.strategy, cfg.dataflow,
                                        cfg.precision, cfg.factor_threads);
  seq_opts.solve_parallel = false;
  SolverOptions par_opts = seq_opts;
  par_opts.solve_parallel = true;
  par_opts.solve_threads = cfg.solve_threads;

  Solver seq(seq_opts);
  Solver par(par_opts);
  seq.factorize(a);
  par.factorize(a);

  // nrhs 1 and 3 stay under the 2×threads split threshold (DAG drain);
  // 4×threads forces the column-split path.
  const index_t widths[] = {1, 3,
                            static_cast<index_t>(4 * cfg.solve_threads)};
  for (const index_t nrhs : widths) {
    const auto b = seeded_block(n, nrhs, 1000 + static_cast<std::uint64_t>(nrhs));
    std::vector<real_t> xs(b.size()), xp(b.size());
    seq.solve(la::DConstView(b.data(), n, nrhs, n),
              la::DView(xs.data(), n, nrhs, n));
    par.solve(la::DConstView(b.data(), n, nrhs, n),
              la::DView(xp.data(), n, nrhs, n));
    ASSERT_EQ(0, std::memcmp(xs.data(), xp.data(), xs.size() * sizeof(real_t)))
        << "nrhs = " << nrhs;
  }

  // The parallel paths actually engaged (and the sequential solver never
  // touched its — nonexistent — pool).
  const core::SolvePhaseStats& sp = par.stats().solve_phase;
  EXPECT_GT(sp.parallel_solves, 0u);
  EXPECT_GT(sp.split_solves, 0u);
  EXPECT_GT(sp.tasks_executed, 0u);
  EXPECT_EQ(seq.stats().solve_phase.parallel_solves, 0u);
  EXPECT_EQ(seq.stats().solve_phase.split_solves, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ParallelSolveDeterminism,
    ::testing::Values(
        SolveConfig{Strategy::JustInTime, Dataflow::Barrier,
                    TilePrecision::Fp64, 1, 2},
        SolveConfig{Strategy::JustInTime, Dataflow::Dag,
                    TilePrecision::Fp64, 2, 8},
        SolveConfig{Strategy::JustInTime, Dataflow::Dag,
                    TilePrecision::MixedTiles, 2, 2},
        SolveConfig{Strategy::MinimalMemory, Dataflow::Barrier,
                    TilePrecision::Fp64, 1, 8},
        SolveConfig{Strategy::MinimalMemory, Dataflow::Dag,
                    TilePrecision::MixedTiles, 2, 8},
        SolveConfig{Strategy::Adaptive, Dataflow::Barrier,
                    TilePrecision::MixedTiles, 1, 2}),
    config_name);

// PerSupernode batching groups the forward-sweep applies without changing a
// bit relative to eager dispatch.
TEST(SolveBatching, PerSupernodeMatchesEagerBitwise) {
  const CscMatrix a = sparse::laplacian_3d(10, 10, 10);
  const index_t n = a.rows();
  SolverOptions eager = base_options(Strategy::MinimalMemory,
                                     Dataflow::Barrier,
                                     TilePrecision::Fp64, 1);
  eager.solve_parallel = false;
  eager.batching = Batching::Off;
  SolverOptions batched = eager;
  batched.batching = Batching::PerSupernode;

  Solver se(eager), sb(batched);
  se.factorize(a);
  sb.factorize(a);
  const index_t nrhs = 4;
  const auto b = seeded_block(n, nrhs, 77);
  std::vector<real_t> xe(b.size()), xb(b.size());
  se.solve(la::DConstView(b.data(), n, nrhs, n),
           la::DView(xe.data(), n, nrhs, n));
  sb.solve(la::DConstView(b.data(), n, nrhs, n),
           la::DView(xb.data(), n, nrhs, n));
  EXPECT_EQ(0, std::memcmp(xe.data(), xb.data(), xe.size() * sizeof(real_t)));

  // The batch layer really carried solve gemms.
  bool batched_solve_gemm = false;
  for (const core::DispatchCount& d : sb.stats().dispatch) {
    if (d.kernel.rfind("solve_gemm", 0) == 0 && d.batched_calls > 0) {
      batched_solve_gemm = true;
    }
  }
  EXPECT_TRUE(batched_solve_gemm);
}

// ---- (b) solve plan: built once, replayed by every refactorize ------------

TEST(SolvePlanCache, BuiltOnceReusedAcrossRefactorize) {
  const CscMatrix a1 = sparse::laplacian_3d(8, 8, 8);
  const CscMatrix a2 = step_values(a1, 1.5, 0.3);
  SolverOptions opts = base_options(Strategy::JustInTime, Dataflow::Barrier,
                                    TilePrecision::Fp64, 1);
  opts.solve_threads = 2;
  Solver solver(opts);
  solver.factorize(a1);
  EXPECT_EQ(solver.stats().solve_phase.plan_builds, 1u);
  EXPECT_EQ(solver.stats().solve_phase.plan_reuses, 0u);

  // The cached plan object is shared, not rebuilt.
  const auto p1 = solver.plan()->solve_plan();
  const auto p2 = solver.plan()->solve_plan();
  EXPECT_EQ(p1.get(), p2.get());

  // Structure: two sweeps of one diagonal task per supernode plus one task
  // per panel block each, all reachable, with a forward+backward critical
  // path of at least 2×(deepest chain).
  const core::SymbolicPlan& plan = *solver.plan();
  std::uint64_t expect = 0;
  for (index_t k = 0; k < plan.sf.num_cblks(); ++k) {
    expect += 2 + 2 * plan.sf.cblk(k).bloks.size();
  }
  EXPECT_EQ(p1->num_tasks(), expect);
  EXPECT_GT(p1->critical_path(), 0u);

  solver.refactorize(a2);
  EXPECT_EQ(solver.stats().solve_phase.plan_builds, 1u);
  EXPECT_EQ(solver.stats().solve_phase.plan_reuses, 1u);
  EXPECT_EQ(solver.plan()->solve_plan().get(), p1.get());

  // A fresh analyze drops the cache with the plan it belongs to.
  solver.analyze(a1);
  solver.factorize(a1);
  EXPECT_EQ(solver.stats().solve_phase.plan_builds, 1u);
}

// ---- (c) fp32 widen cache: lazy build, hits, refactorize invalidation -----

TEST(WidenCache, BuiltOnFirstSolveInvalidatedByRefactorize) {
  const CscMatrix a1 = sparse::laplacian_3d(12, 12, 12);
  const CscMatrix a2 = step_values(a1, 1.5, 0.3);
  SolverOptions opts = base_options(Strategy::MinimalMemory, Dataflow::Barrier,
                                    TilePrecision::MixedTiles, 1);
  opts.solve_threads = 2;
  Solver solver(opts);
  solver.factorize(a1);
  ASSERT_GT(solver.stats().num_fp32_blocks, 0);

  // Lazy: nothing widened until the first solve.
  EXPECT_EQ(solver.numeric().widen_cache_bytes(), 0u);
  const auto b = seeded_block(a1.rows(), 1, 9);
  std::vector<real_t> x(b.size());
  solver.solve(b.data(), x.data());
  const std::size_t bytes1 = solver.numeric().widen_cache_bytes();
  EXPECT_GT(bytes1, 0u);
  EXPECT_GT(solver.numeric().widen_cache_tiles(), 0u);
  EXPECT_GT(solver.stats().solve_phase.widen_hits, 0u);
  EXPECT_EQ(solver.stats().solve_phase.widen_bytes, bytes1);

  // Every later solve hits the cache instead of re-promoting.
  const std::uint64_t hits1 = solver.numeric().widen_hits();
  solver.solve(b.data(), x.data());
  EXPECT_GT(solver.numeric().widen_hits(), hits1);
  EXPECT_EQ(solver.numeric().widen_cache_bytes(), bytes1);

  // refactorize() produces fresh factors -> the old epoch's cache is gone
  // until the next solve rebuilds it against the new values.
  solver.refactorize(a2);
  EXPECT_EQ(solver.numeric().widen_cache_bytes(), 0u);
  EXPECT_EQ(solver.numeric().widen_hits(), 0u);
  solver.solve(b.data(), x.data());
  EXPECT_GT(solver.numeric().widen_cache_bytes(), 0u);
  EXPECT_LT(sparse::backward_error(a2, x.data(), b.data()), 1e-4);
}

// ---- (d) dispatch integration: solve kernels in the table -----------------

TEST(SolveDispatch, SolveKernelsCountedInKernelTable) {
  const CscMatrix a = sparse::laplacian_3d(12, 12, 12);
  SolverOptions opts = base_options(Strategy::MinimalMemory, Dataflow::Barrier,
                                    TilePrecision::MixedTiles, 1);
  opts.solve_threads = 2;
  Solver solver(opts);
  solver.factorize(a);
  const auto b = seeded_block(a.rows(), 1, 5);
  std::vector<real_t> x(b.size());
  solver.solve(b.data(), x.data());

  std::uint64_t trsm_calls = 0, gemm_calls = 0, lr32_calls = 0;
  for (const core::DispatchCount& d : solver.stats().dispatch) {
    if (d.kernel.rfind("solve_trsm", 0) == 0) trsm_calls += d.calls;
    if (d.kernel.rfind("solve_gemm", 0) == 0) gemm_calls += d.calls;
    if (d.kernel == "solve_gemm[lr32]") lr32_calls += d.calls;
  }
  // Two trsm per supernode (forward + backward).
  EXPECT_EQ(trsm_calls,
            2 * static_cast<std::uint64_t>(solver.stats().num_cblks));
  EXPECT_GT(gemm_calls, 0u);
  // fp32-at-rest tiles route through the widened-operand lr32 kernel row.
  EXPECT_GT(lr32_calls, 0u);
  EXPECT_GT(solver.stats().solve_phase.tasks_executed, 0u);
}

// ---- (e) session: concurrent clients over the parallel solve --------------

TEST(SessionParallelSolve, ConcurrentClientsBitIdenticalToSequential) {
  const CscMatrix a = sparse::laplacian_3d(10, 10, 10);
  const index_t n = a.rows();
  SolverOptions opts = base_options(Strategy::JustInTime, Dataflow::Dag,
                                    TilePrecision::Fp64, 2);
  opts.solve_threads = 4;

  SolverOptions ref_opts = opts;
  ref_opts.solve_parallel = false;
  ref_opts.threads = 1;
  ref_opts.dataflow = Dataflow::Barrier;

  Session session(opts);
  session.refactorize(a);
  Solver ref(ref_opts);
  ref.factorize(a);

  constexpr int kClients = 8;
  std::vector<std::vector<real_t>> bs, xs, want;
  for (int i = 0; i < kClients; ++i) {
    bs.push_back(seeded_block(n, 1, 100 + static_cast<std::uint64_t>(i)));
    xs.emplace_back(static_cast<std::size_t>(n));
    want.emplace_back(static_cast<std::size_t>(n));
    ref.solve(bs.back().data(), want.back().data());
  }

  std::vector<SolveStats> st(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      st[static_cast<std::size_t>(i)] =
          session.solve(bs[static_cast<std::size_t>(i)].data(),
                        xs[static_cast<std::size_t>(i)].data());
    });
  }
  for (auto& t : clients) t.join();

  for (int i = 0; i < kClients; ++i) {
    ASSERT_EQ(0, std::memcmp(xs[static_cast<std::size_t>(i)].data(),
                             want[static_cast<std::size_t>(i)].data(),
                             static_cast<std::size_t>(n) * sizeof(real_t)))
        << "client " << i;
    // Per-request solve-phase detail: the blocked solve that served each
    // request ran on the solve engine (DAG drain or column split) with the
    // cached plan attached, and reported its task count.
    const SolveStats& s = st[static_cast<std::size_t>(i)];
    EXPECT_TRUE(s.parallel || s.column_split) << "client " << i;
    EXPECT_GT(s.solve_tasks, 0u) << "client " << i;
    if (s.parallel) {
      EXPECT_TRUE(s.plan_reused) << "client " << i;
    }
  }
}

// Direct Solver::solve entry points racing the session's queue must not
// deadlock or corrupt results: the engine lock's loser falls back to the
// sequential sweep, which is bit-identical anyway.
TEST(SessionParallelSolve, EngineContentionFallsBackSequentially) {
  const CscMatrix a = sparse::laplacian_3d(8, 8, 8);
  const index_t n = a.rows();
  SolverOptions opts = base_options(Strategy::JustInTime, Dataflow::Barrier,
                                    TilePrecision::Fp64, 1);
  opts.solve_threads = 2;
  Solver solver(opts);
  solver.factorize(a);

  const auto b = seeded_block(n, 1, 321);
  std::vector<real_t> want(static_cast<std::size_t>(n));
  solver.solve(b.data(), want.data());

  constexpr int kRacers = 6;
  std::vector<std::vector<real_t>> xs(kRacers);
  std::vector<std::thread> racers;
  racers.reserve(kRacers);
  for (int i = 0; i < kRacers; ++i) {
    xs[static_cast<std::size_t>(i)].resize(static_cast<std::size_t>(n));
    racers.emplace_back([&, i] {
      // NumericFactor::solve is const and safe under concurrent callers;
      // stats capture is skipped to keep the race on the engine lock only.
      solver.numeric().solve(b.data(), xs[static_cast<std::size_t>(i)].data());
    });
  }
  for (auto& t : racers) t.join();
  for (int i = 0; i < kRacers; ++i) {
    ASSERT_EQ(0, std::memcmp(xs[static_cast<std::size_t>(i)].data(),
                             want.data(),
                             static_cast<std::size_t>(n) * sizeof(real_t)))
        << "racer " << i;
  }
}

} // namespace
