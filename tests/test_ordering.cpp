// Tests of the nested-dissection ordering: permutation validity, separator
// correctness, supernode partition structure and fill reduction.

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "ordering/ordering.hpp"
#include "sparse/generators.hpp"
#include "sparse/graph.hpp"
#include "symbolic/symbolic.hpp"

namespace {

using namespace blr;
using namespace blr::ordering;
using sparse::CscMatrix;
using sparse::Graph;

void expect_valid_ordering(const Ordering& ord, index_t n) {
  ASSERT_EQ(static_cast<index_t>(ord.perm.size()), n);
  ASSERT_EQ(static_cast<index_t>(ord.iperm.size()), n);
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  for (const index_t p : ord.perm) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, n);
    EXPECT_FALSE(seen[static_cast<std::size_t>(p)]);
    seen[static_cast<std::size_t>(p)] = 1;
  }
  for (index_t i = 0; i < n; ++i)
    EXPECT_EQ(ord.iperm[static_cast<std::size_t>(ord.perm[static_cast<std::size_t>(i)])], i);
  // Ranges partition [0, n).
  ASSERT_GE(ord.ranges.size(), 2u);
  EXPECT_EQ(ord.ranges.front(), 0);
  EXPECT_EQ(ord.ranges.back(), n);
  for (std::size_t s = 1; s < ord.ranges.size(); ++s)
    EXPECT_LT(ord.ranges[s - 1], ord.ranges[s]);
}

TEST(NestedDissection, ValidPermutationOn3dGrid) {
  const CscMatrix a = sparse::laplacian_3d(8, 8, 8);
  const Graph g = Graph::from_matrix(a);
  const Ordering ord = nested_dissection(g);
  expect_valid_ordering(ord, a.rows());
  EXPECT_GT(ord.num_supernodes(), 1);
}

TEST(NestedDissection, ValidOnDisconnectedGraph) {
  // Two disjoint 2D grids.
  const CscMatrix g1 = sparse::laplacian_2d(6, 6);
  std::vector<sparse::Triplet> t;
  const index_t n1 = g1.rows();
  for (index_t j = 0; j < n1; ++j) {
    for (index_t p = g1.colptr()[static_cast<std::size_t>(j)];
         p < g1.colptr()[static_cast<std::size_t>(j) + 1]; ++p) {
      const index_t i = g1.rowind()[static_cast<std::size_t>(p)];
      const real_t v = g1.values()[static_cast<std::size_t>(p)];
      t.push_back({i, j, v});
      t.push_back({i + n1, j + n1, v});
    }
  }
  const CscMatrix a = CscMatrix::from_triplets(2 * n1, 2 * n1, std::move(t));
  const Ordering ord = nested_dissection(Graph::from_matrix(a));
  expect_valid_ordering(ord, 2 * n1);
}

TEST(NestedDissection, TinyGraphsBecomeSingleSupernode) {
  const CscMatrix a = sparse::laplacian_2d(3, 3);
  NdOptions opts;
  opts.cmin = 100;  // bigger than the graph
  const Ordering ord = nested_dissection(Graph::from_matrix(a), opts);
  expect_valid_ordering(ord, 9);
  EXPECT_EQ(ord.num_supernodes(), 1);
}

TEST(FindSeparator, SeparatesGridIntoBalancedParts) {
  const CscMatrix a = sparse::laplacian_2d(16, 16);
  const Graph g = Graph::from_matrix(a);
  const Separator sep = find_separator(g, NdOptions{});
  ASSERT_FALSE(sep.a.empty());
  ASSERT_FALSE(sep.b.empty());
  ASSERT_FALSE(sep.s.empty());
  EXPECT_EQ(sep.a.size() + sep.b.size() + sep.s.size(),
            static_cast<std::size_t>(g.num_vertices()));

  // No edge may connect A and B (the defining property).
  std::vector<char> side(static_cast<std::size_t>(g.num_vertices()), 2);
  for (const index_t v : sep.a) side[static_cast<std::size_t>(v)] = 0;
  for (const index_t v : sep.b) side[static_cast<std::size_t>(v)] = 1;
  for (const index_t v : sep.a) {
    for (const index_t* u = g.neighbors_begin(v); u != g.neighbors_end(v); ++u)
      EXPECT_NE(side[static_cast<std::size_t>(*u)], 1)
          << "edge between parts: " << v << " - " << *u;
  }
  // On a 16x16 grid the separator should be close to one grid line.
  EXPECT_LE(sep.s.size(), 40u);
  // Reasonable balance.
  EXPECT_GT(std::min(sep.a.size(), sep.b.size()), 40u);
}

TEST(FindSeparator, PathGraphSeparatorIsOneVertex) {
  // Path of 31 vertices.
  std::vector<sparse::Triplet> t;
  for (index_t i = 0; i + 1 < 31; ++i) {
    t.push_back({i, i + 1, 1.0});
    t.push_back({i + 1, i, 1.0});
  }
  for (index_t i = 0; i < 31; ++i) t.push_back({i, i, 4.0});
  const CscMatrix a = CscMatrix::from_triplets(31, 31, std::move(t));
  const Separator sep = find_separator(Graph::from_matrix(a), NdOptions{});
  EXPECT_EQ(sep.s.size(), 1u);
}

TEST(NestedDissection, ReducesFillVersusNaturalOrder) {
  const CscMatrix a = sparse::laplacian_3d(8, 8, 8);
  const Graph g = Graph::from_matrix(a);
  const Ordering nd = nested_dissection(g);
  const Ordering nat = natural_order(a.rows(), 32);

  symbolic::SplitOptions split;
  const auto sf_nd = symbolic::SymbolicFactor::build(
      a, nd, symbolic::split_ranges(nd.ranges, split));
  const auto sf_nat = symbolic::SymbolicFactor::build(
      a, nat, symbolic::split_ranges(nat.ranges, split));
  EXPECT_LT(sf_nd.factor_entries_lower(), sf_nat.factor_entries_lower());
}

TEST(NaturalOrder, ChunkedRanges) {
  const Ordering ord = natural_order(10, 4);
  expect_valid_ordering(ord, 10);
  EXPECT_EQ(ord.num_supernodes(), 3);  // 4 + 4 + 2
  EXPECT_EQ(ord.supernode_size(2), 2);
}

TEST(NestedDissection, SeparatorsComeAfterSubdomains) {
  // The last supernode must be the top separator: its vertices disconnect
  // the rest of the graph.
  const CscMatrix a = sparse::laplacian_2d(12, 12);
  const Graph g = Graph::from_matrix(a);
  const Ordering ord = nested_dissection(g);
  const index_t ns = ord.num_supernodes();
  const index_t last_begin = ord.ranges[static_cast<std::size_t>(ns) - 1];
  // Remove last supernode's vertices; the remainder must be disconnected
  // (or the last supernode is the whole graph, which would be wrong here).
  ASSERT_LT(last_begin, a.rows());
  std::vector<index_t> rest(ord.perm.begin(), ord.perm.begin() + last_begin);
  ASSERT_FALSE(rest.empty());
  const Graph sub = g.induced(rest);
  const auto [comp, ncomp] = sub.connected_components();
  (void)comp;
  EXPECT_GE(ncomp, 2);
}

TEST(FindSeparator, FmRefinementNeverWorsensSeparator) {
  // Property over several graph families: FM refinement keeps the vertex
  // separator valid and at most as large as the unrefined one.
  std::vector<CscMatrix> cases;
  cases.push_back(sparse::laplacian_2d(15, 15));
  cases.push_back(sparse::laplacian_3d(7, 7, 7));
  cases.push_back(sparse::laplacian_2d(45, 6));  // elongated
  cases.push_back(sparse::elasticity_3d(4, 4, 4));
  for (const auto& a : cases) {
    const Graph g = Graph::from_matrix(a);
    NdOptions off;
    off.fm_passes = 0;
    NdOptions on;
    on.fm_passes = 6;
    const Separator s0 = find_separator(g, off);
    const Separator s1 = find_separator(g, on);
    EXPECT_LE(s1.s.size(), s0.s.size());
    // Validity: no A-B edge.
    std::vector<char> side(static_cast<std::size_t>(g.num_vertices()), 2);
    for (const index_t v : s1.a) side[static_cast<std::size_t>(v)] = 0;
    for (const index_t v : s1.b) side[static_cast<std::size_t>(v)] = 1;
    for (const index_t v : s1.a) {
      for (const index_t* u = g.neighbors_begin(v); u != g.neighbors_end(v); ++u)
        ASSERT_NE(side[static_cast<std::size_t>(*u)], 1);
    }
    EXPECT_EQ(s1.a.size() + s1.b.size() + s1.s.size(),
              static_cast<std::size_t>(g.num_vertices()));
  }
}

} // namespace
