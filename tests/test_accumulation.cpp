// Tests of LUAR-style update accumulation (the aggregation of small
// contributions the paper's conclusion proposes for Minimal-Memory).

#include <gtest/gtest.h>

#include "blr.hpp"

namespace {

using namespace blr;
using sparse::CscMatrix;

SolverOptions mm_opts(bool accumulate) {
  SolverOptions o;
  o.strategy = Strategy::MinimalMemory;
  o.tolerance = 1e-8;
  o.compress_min_width = 16;
  o.compress_min_height = 8;
  o.split.split_threshold = 64;
  o.split.split_size = 32;
  o.accumulate_updates = accumulate;
  return o;
}

TEST(Accumulation, SameSolutionAsImmediateUpdates) {
  for (const auto& a :
       {sparse::laplacian_3d(10, 10, 10),
        sparse::convection_diffusion_3d(8, 8, 8, 0.5),
        sparse::heterogeneous_poisson_3d(9, 9, 9, 3.0, 4)}) {
    Prng rng(21);
    std::vector<real_t> b(static_cast<std::size_t>(a.rows()));
    for (auto& v : b) v = rng.normal();

    Solver s0(mm_opts(false)), s1(mm_opts(true));
    s0.factorize(a);
    s1.factorize(a);
    std::vector<real_t> x0(b.size()), x1(b.size());
    s0.solve(b.data(), x0.data());
    s1.solve(b.data(), x1.data());
    // Both are tau-accurate; they need not match bit-for-bit (different
    // recompression points), but both must meet the tolerance contract.
    EXPECT_LT(sparse::backward_error(a, x0.data(), b.data()), 1e-4);
    EXPECT_LT(sparse::backward_error(a, x1.data(), b.data()), 1e-4);
  }
}

TEST(Accumulation, ParallelCorrectness) {
  const CscMatrix a = sparse::laplacian_3d(10, 10, 10);
  Prng rng(22);
  std::vector<real_t> b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.normal();
  SolverOptions o = mm_opts(true);
  o.threads = 4;
  for (int rep = 0; rep < 4; ++rep) {
    Solver s(o);
    s.factorize(a);
    std::vector<real_t> x(b.size());
    s.solve(b.data(), x.data());
    ASSERT_LT(sparse::backward_error(a, x.data(), b.data()), 1e-4) << rep;
  }
}

TEST(Accumulation, SmallMaxRankFlushesOften) {
  const CscMatrix a = sparse::laplacian_3d(9, 9, 9);
  SolverOptions o = mm_opts(true);
  o.accumulate_max_rank = 2;  // flush on nearly every append
  Solver s(o);
  s.factorize(a);
  std::vector<real_t> b(static_cast<std::size_t>(a.rows()), 1.0);
  const auto x = s.solve(b);
  EXPECT_LT(sparse::backward_error(a, x.data(), b.data()), 1e-4);
}

TEST(Accumulation, LeftLookingCombination) {
  const CscMatrix a = sparse::laplacian_3d(8, 8, 8);
  SolverOptions o = mm_opts(true);
  o.scheduling = core::Scheduling::LeftLooking;
  Solver s(o);
  s.factorize(a);
  std::vector<real_t> b(static_cast<std::size_t>(a.rows()), 1.0);
  const auto x = s.solve(b);
  EXPECT_LT(sparse::backward_error(a, x.data(), b.data()), 1e-4);
}

TEST(Accumulation, WorkspaceReturnsToZero) {
  const CscMatrix a = sparse::laplacian_3d(8, 8, 8);
  Solver s(mm_opts(true));
  s.factorize(a);
  // All accumulators were flushed at elimination; their workspace bytes are
  // gone once the factorization ends (only the permuted-input copy remains
  // for nothing — right-looking releases it too).
  EXPECT_EQ(MemoryTracker::instance().current(MemCategory::Workspace), 0u);
}

} // namespace
