// Unit + property tests for the BLAS layer: every transpose combination of
// GEMM against a naive reference, all 16 TRSM variants checked by
// reconstruction, SYRK, GEMV and the level-1 helpers.

#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "linalg/backend.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "linalg/random.hpp"

namespace {

using namespace blr;
using namespace blr::la;

DMatrix op(const DMatrix& a, Trans t) {
  if (t == Trans::No) return a;
  DMatrix at(a.cols(), a.rows());
  transpose<real_t>(a.cview(), at.view());
  return at;
}

/// Naive reference GEMM on materialized operands.
DMatrix ref_gemm(const DMatrix& a, const DMatrix& b, real_t alpha,
                 const DMatrix& c, real_t beta) {
  DMatrix out(c.rows(), c.cols());
  for (index_t j = 0; j < c.cols(); ++j) {
    for (index_t i = 0; i < c.rows(); ++i) {
      real_t s = 0;
      for (index_t k = 0; k < a.cols(); ++k) s += a(i, k) * b(k, j);
      out(i, j) = alpha * s + beta * c(i, j);
    }
  }
  return out;
}

struct GemmCase {
  Trans ta, tb;
  index_t m, n, k;
  real_t alpha, beta;
};

class GemmTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmTest, MatchesReference) {
  const auto p = GetParam();
  Prng rng(17);
  DMatrix a(p.ta == Trans::No ? p.m : p.k, p.ta == Trans::No ? p.k : p.m);
  DMatrix b(p.tb == Trans::No ? p.k : p.n, p.tb == Trans::No ? p.n : p.k);
  DMatrix c(p.m, p.n);
  random_normal(a.view(), rng);
  random_normal(b.view(), rng);
  random_normal(c.view(), rng);

  const DMatrix expected = ref_gemm(op(a, p.ta), op(b, p.tb), p.alpha, c, p.beta);
  gemm(p.ta, p.tb, p.alpha, a.cview(), b.cview(), p.beta, c.view());
  EXPECT_LT(diff_fro(c.cview(), expected.cview()), 1e-11 * (1 + norm_fro(expected.cview())));
}

INSTANTIATE_TEST_SUITE_P(
    AllTransCombos, GemmTest,
    ::testing::Values(
        GemmCase{Trans::No, Trans::No, 7, 5, 9, 1.0, 0.0},
        GemmCase{Trans::No, Trans::No, 33, 17, 64, -1.0, 1.0},
        GemmCase{Trans::Yes, Trans::No, 8, 6, 10, 2.0, 0.5},
        GemmCase{Trans::Yes, Trans::No, 40, 40, 40, 1.0, 1.0},
        GemmCase{Trans::No, Trans::Yes, 9, 7, 5, -1.0, 1.0},
        GemmCase{Trans::No, Trans::Yes, 65, 13, 21, 1.0, 0.0},
        GemmCase{Trans::Yes, Trans::Yes, 6, 8, 4, 1.5, -0.5},
        GemmCase{Trans::Yes, Trans::Yes, 31, 29, 37, 1.0, 1.0},
        GemmCase{Trans::No, Trans::No, 1, 1, 1, 1.0, 0.0},
        GemmCase{Trans::No, Trans::Yes, 16, 16, 0, 1.0, 2.0}));

// Packed-microkernel coverage: k spans multiple KC panels (KC = 256), so the
// packed path's KC-splitting, its edge micro-tiles, and all four transpose
// packings are exercised against the naive reference and against the
// unpacked loop nests.
TEST(Gemm, PackedPathLargeKAllTransCombos) {
  Prng rng(29);
  const index_t m = 45, n = 37, k = 600;  // 2 full KC panels + remainder
  for (const Trans ta : {Trans::No, Trans::Yes}) {
    for (const Trans tb : {Trans::No, Trans::Yes}) {
      DMatrix a(ta == Trans::No ? m : k, ta == Trans::No ? k : m);
      DMatrix b(tb == Trans::No ? k : n, tb == Trans::No ? n : k);
      DMatrix c(m, n);
      random_normal(a.view(), rng);
      random_normal(b.view(), rng);
      random_normal(c.view(), rng);

      const DMatrix expected = ref_gemm(op(a, ta), op(b, tb), -1.0, c, 1.0);
      DMatrix c_unpacked = c;
      gemm_unpacked(ta, tb, real_t(-1), a.cview(), b.cview(), real_t(1),
                    c_unpacked.view());
      gemm(ta, tb, real_t(-1), a.cview(), b.cview(), real_t(1), c.view());

      const real_t scale = 1 + norm_fro(expected.cview());
      EXPECT_LT(diff_fro(c.cview(), expected.cview()), 1e-10 * scale)
          << "packed ta=" << (ta == Trans::Yes) << " tb=" << (tb == Trans::Yes);
      EXPECT_LT(diff_fro(c_unpacked.cview(), expected.cview()), 1e-10 * scale)
          << "unpacked ta=" << (ta == Trans::Yes)
          << " tb=" << (tb == Trans::Yes);
    }
  }
}

// The packed path must honor sub-view strides (ld > rows) on every operand.
TEST(Gemm, PackedPathStridedViews) {
  Prng rng(31);
  const index_t m = 40, n = 24, k = 300;
  DMatrix abuf(m + 7, k + 3), bbuf(k + 5, n + 2), cbuf(m + 4, n + 6);
  random_normal(abuf.view(), rng);
  random_normal(bbuf.view(), rng);
  random_normal(cbuf.view(), rng);
  ConstView<real_t> a = abuf.cview().sub(3, 1, m, k);
  ConstView<real_t> b = bbuf.cview().sub(2, 2, k, n);

  DMatrix c0(m, n);
  copy<real_t>(cbuf.cview().sub(1, 3, m, n), c0.view());
  DMatrix a_dense(m, k), b_dense(k, n);
  copy<real_t>(a, a_dense.view());
  copy<real_t>(b, b_dense.view());
  const DMatrix expected = ref_gemm(a_dense, b_dense, 1.0, c0, 1.0);

  MatView<real_t> c = cbuf.view().sub(1, 3, m, n);
  gemm(Trans::No, Trans::No, real_t(1), a, b, real_t(1), c);
  DMatrix got(m, n);
  copy<real_t>(ConstView<real_t>(c), got.view());
  EXPECT_LT(diff_fro(got.cview(), expected.cview()),
            1e-10 * (1 + norm_fro(expected.cview())));
}

// The pack cache only operates under the Native backend — Reference never
// packs — so these tests pin Native regardless of any BLR_BACKEND override
// (the CI backend A/B stage runs the suite with it set).
class PackCache : public ::testing::Test {
protected:
  void SetUp() override {
    saved_ = la::current_backend();
    la::set_backend(la::Backend::Native);
  }
  void TearDown() override { la::set_backend(saved_); }

private:
  la::Backend saved_ = la::Backend::Native;
};

// Regression: inside a PackBatchScope, a pointer+shape key match alone must
// never serve a cached pack for memory the scope does not own. Mutating the
// operand in place models the allocator recycling a freed kernel temporary
// at the same address and shape between two batch entries — the old
// pointer-keyed cache returned the previous entry's stale packed image.
TEST_F(PackCache, UnregisteredOperandNeverReusesStaleImage) {
  Prng rng(41);
  const index_t m = 32, n = 32, k = 32;  // above the packed-path threshold
  DMatrix a(m, k), b(k, n), c(m, n);
  random_normal(a.view(), rng);
  random_normal(b.view(), rng);

  PackBatchScope scope(nullptr, 0);  // no operand registered as stable
  fill(c.view(), real_t(0));
  gemm(Trans::No, Trans::No, real_t(1), a.cview(), b.cview(), real_t(0),
       c.view());

  // Same pointer, same shape, same scope — different contents.
  for (index_t j = 0; j < b.cols(); ++j)
    for (index_t i = 0; i < b.rows(); ++i) b(i, j) = -2 * b(i, j) + 1;
  const DMatrix expected = ref_gemm(a, b, 1.0, c, 0.0);
  gemm(Trans::No, Trans::No, real_t(1), a.cview(), b.cview(), real_t(0),
       c.view());
  EXPECT_LT(diff_fro(c.cview(), expected.cview()),
            1e-12 * (1 + norm_fro(expected.cview())));
}

// An operand registered as stable with the scope IS reused: the second gemm
// sharing B skips B's repack (one cache hit) and still computes correctly.
TEST_F(PackCache, StableOperandReusesPackAcrossCalls) {
  Prng rng(43);
  const index_t m = 32, n = 32, k = 32;
  DMatrix a1(m, k), a2(m, k), b(k, n), c1(m, n), c2(m, n);
  random_normal(a1.view(), rng);
  random_normal(a2.view(), rng);
  random_normal(b.view(), rng);
  fill(c1.view(), real_t(0));
  fill(c2.view(), real_t(0));

  const std::uint64_t hits0 = pack_cache_stats().hits;
  {
    const void* stable[] = {b.data()};
    PackBatchScope scope(stable, 1);
    gemm(Trans::No, Trans::No, real_t(1), a1.cview(), b.cview(), real_t(0),
         c1.view());
    gemm(Trans::No, Trans::No, real_t(1), a2.cview(), b.cview(), real_t(0),
         c2.view());
  }
  EXPECT_GE(pack_cache_stats().hits - hits0, 1u);

  const DMatrix e1 = ref_gemm(a1, b, 1.0, c1, 0.0);
  const DMatrix e2 = ref_gemm(a2, b, 1.0, c2, 0.0);
  EXPECT_LT(diff_fro(c1.cview(), e1.cview()), 1e-12 * (1 + norm_fro(e1.cview())));
  EXPECT_LT(diff_fro(c2.cview(), e2.cview()), 1e-12 * (1 + norm_fro(e2.cview())));
}

// Pack buffers past the retention cap (8 MiB) are released when the
// thread's outermost scope closes instead of living for the thread's
// lifetime.
TEST_F(PackCache, OversizedBuffersTrimmedAtScopeExit) {
  Prng rng(47);
  const index_t m = 2048, n = 8, k = 600;  // packed A image ~9.8 MiB
  DMatrix a(m, k), b(k, n), c(m, n);
  random_normal(a.view(), rng);
  random_normal(b.view(), rng);
  fill(c.view(), real_t(0));

  std::uint64_t inside = 0;
  {
    PackBatchScope scope(nullptr, 0);
    gemm(Trans::No, Trans::No, real_t(1), a.cview(), b.cview(), real_t(0),
         c.view());
    inside = pack_cache_stats().bytes;
  }
  const std::uint64_t after = pack_cache_stats().bytes;
  EXPECT_GE(inside, std::uint64_t(8) << 20);
  EXPECT_GE(inside - after, std::uint64_t(8) << 20);  // big A buffer released
}

TEST(Gemm, BetaZeroIgnoresGarbageC) {
  Prng rng(3);
  DMatrix a(4, 4), b(4, 4), c(4, 4);
  random_normal(a.view(), rng);
  random_normal(b.view(), rng);
  fill(c.view(), std::numeric_limits<real_t>::quiet_NaN());
  gemm(Trans::No, Trans::No, real_t(1), a.cview(), b.cview(), real_t(0), c.view());
  EXPECT_TRUE(std::isfinite(norm_fro(c.cview())));
}

struct TrsmCase {
  Side side;
  Uplo uplo;
  Trans trans;
  Diag diag;
};

class TrsmTest : public ::testing::TestWithParam<std::tuple<Side, Uplo, Trans, Diag>> {};

TEST_P(TrsmTest, SolvesTriangularSystem) {
  const auto [side, uplo, trans, diag] = GetParam();
  const TrsmCase p{side, uplo, trans, diag};
  Prng rng(11);
  const index_t m = 13, n = 9;
  const index_t na = (p.side == Side::Left) ? m : n;

  // Well-conditioned triangular matrix.
  DMatrix a(na, na);
  random_normal(a.view(), rng);
  for (index_t i = 0; i < na; ++i) a(i, i) = 4 + std::abs(a(i, i));
  // Zero the non-referenced triangle to build the explicit operand.
  DMatrix tri(na, na);
  for (index_t j = 0; j < na; ++j) {
    for (index_t i = 0; i < na; ++i) {
      const bool lower = i >= j;
      if ((p.uplo == Uplo::Lower && lower) || (p.uplo == Uplo::Upper && !lower) ||
          i == j) {
        tri(i, j) = (i == j && p.diag == Diag::Unit) ? 1.0 : a(i, j);
      }
    }
  }

  DMatrix b(m, n);
  random_normal(b.view(), rng);
  DMatrix x = b;
  trsm(p.side, p.uplo, p.trans, p.diag, real_t(1), a.cview(), x.view());

  // Check op(T)·X = B (left) or X·op(T) = B (right).
  const DMatrix t = op(tri, p.trans);
  DMatrix recon(m, n);
  if (p.side == Side::Left) {
    gemm(Trans::No, Trans::No, real_t(1), t.cview(), x.cview(), real_t(0), recon.view());
  } else {
    gemm(Trans::No, Trans::No, real_t(1), x.cview(), t.cview(), real_t(0), recon.view());
  }
  EXPECT_LT(diff_fro(recon.cview(), b.cview()), 1e-10 * norm_fro(b.cview()));
}

INSTANTIATE_TEST_SUITE_P(
    All16Variants, TrsmTest,
    ::testing::Combine(::testing::Values(Side::Left, Side::Right),
                       ::testing::Values(Uplo::Lower, Uplo::Upper),
                       ::testing::Values(Trans::No, Trans::Yes),
                       ::testing::Values(Diag::NonUnit, Diag::Unit)),
    [](const auto& info) {
      std::string s;
      s += std::get<0>(info.param) == Side::Left ? "L" : "R";
      s += std::get<1>(info.param) == Uplo::Lower ? "Lo" : "Up";
      s += std::get<2>(info.param) == Trans::No ? "N" : "T";
      s += std::get<3>(info.param) == Diag::NonUnit ? "NU" : "U";
      return s;
    });

TEST(Trsm, AlphaScaling) {
  Prng rng(5);
  DMatrix a(4, 4);
  random_normal(a.view(), rng);
  for (index_t i = 0; i < 4; ++i) a(i, i) = 5;
  DMatrix b(4, 3);
  random_normal(b.view(), rng);
  DMatrix x1 = b, x2 = b;
  trsm(Side::Left, Uplo::Lower, Trans::No, Diag::NonUnit, real_t(2), a.cview(), x1.view());
  trsm(Side::Left, Uplo::Lower, Trans::No, Diag::NonUnit, real_t(1), a.cview(), x2.view());
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 4; ++i) EXPECT_NEAR(x1(i, j), 2 * x2(i, j), 1e-12);
}

TEST(Syrk, LowerNoTransMatchesGemm) {
  Prng rng(23);
  DMatrix a(10, 6);
  random_normal(a.view(), rng);
  DMatrix c(10, 10);
  random_normal(c.view(), rng);
  // Symmetrize reference input.
  for (index_t j = 0; j < 10; ++j)
    for (index_t i = 0; i < j; ++i) c(i, j) = c(j, i);
  DMatrix ref = c;
  gemm(Trans::No, Trans::Yes, real_t(-1), a.cview(), a.cview(), real_t(1), ref.view());
  DMatrix out = c;
  syrk(Uplo::Lower, Trans::No, real_t(-1), a.cview(), real_t(1), out.view());
  for (index_t j = 0; j < 10; ++j)
    for (index_t i = j; i < 10; ++i) EXPECT_NEAR(out(i, j), ref(i, j), 1e-11);
}

TEST(Syrk, UpperTransMatchesGemm) {
  Prng rng(29);
  DMatrix a(5, 8);
  random_normal(a.view(), rng);
  DMatrix c(8, 8);
  DMatrix ref = c;
  gemm(Trans::Yes, Trans::No, real_t(1), a.cview(), a.cview(), real_t(0), ref.view());
  DMatrix out = c;
  syrk(Uplo::Upper, Trans::Yes, real_t(1), a.cview(), real_t(0), out.view());
  for (index_t j = 0; j < 8; ++j)
    for (index_t i = 0; i <= j; ++i) EXPECT_NEAR(out(i, j), ref(i, j), 1e-11);
}

TEST(Gemv, BothTransposes) {
  Prng rng(31);
  DMatrix a(6, 4);
  random_normal(a.view(), rng);
  std::vector<real_t> x{1, -2, 3, 0.5};
  std::vector<real_t> y(6, 1.0);
  gemv(Trans::No, real_t(2), a.cview(), x.data(), real_t(-1), y.data());
  for (index_t i = 0; i < 6; ++i) {
    real_t s = -1.0;
    for (index_t j = 0; j < 4; ++j) s += 2 * a(i, j) * x[static_cast<std::size_t>(j)];
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], s, 1e-12);
  }
  std::vector<real_t> z(4, 0.0);
  std::vector<real_t> w{1, 1, 1, 1, 1, 1};
  gemv(Trans::Yes, real_t(1), a.cview(), w.data(), real_t(0), z.data());
  for (index_t j = 0; j < 4; ++j) {
    real_t s = 0;
    for (index_t i = 0; i < 6; ++i) s += a(i, j);
    EXPECT_NEAR(z[static_cast<std::size_t>(j)], s, 1e-12);
  }
}

TEST(Level1, DotAxpyNrm2) {
  std::vector<real_t> x{3, 4};
  EXPECT_DOUBLE_EQ(nrm2(2, x.data()), 5.0);
  std::vector<real_t> y{1, 1};
  EXPECT_DOUBLE_EQ(dot(2, x.data(), y.data()), 7.0);
  axpy(2, real_t(2), x.data(), y.data());
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 9.0);
  scal(2, real_t(0.5), y.data());
  EXPECT_DOUBLE_EQ(y[0], 3.5);
}

TEST(Norms, FroMaxOne) {
  DMatrix a(2, 2);
  a(0, 0) = 3;
  a(1, 0) = -4;
  a(0, 1) = 1;
  EXPECT_DOUBLE_EQ(norm_fro(a.cview()), std::sqrt(26.0));
  EXPECT_DOUBLE_EQ(norm_max(a.cview()), 4.0);
  EXPECT_DOUBLE_EQ(norm_one(a.cview()), 7.0);
}

} // namespace
