// Tests of the block symbolic factorization: the structure must contain all
// numeric fill, bloks must be well formed, and splitting must respect its
// size constraints.

#include <gtest/gtest.h>

#include "linalg/factorizations.hpp"
#include "ordering/ordering.hpp"
#include "sparse/generators.hpp"
#include "sparse/graph.hpp"
#include "symbolic/symbolic.hpp"

namespace {

using namespace blr;
using namespace blr::symbolic;
using sparse::CscMatrix;

SymbolicFactor build_for(const CscMatrix& a, const ordering::Ordering& ord,
                         SplitOptions split = {}) {
  return SymbolicFactor::build(a, ord, split_ranges(ord.ranges, split));
}

TEST(SplitRanges, LeavesSmallRangesAlone) {
  const std::vector<index_t> r{0, 100, 300};
  const auto out = split_ranges(r, SplitOptions{256, 128});
  EXPECT_EQ(out, r);
}

TEST(SplitRanges, SplitsWideRangesIntoBalancedChunks) {
  const std::vector<index_t> r{0, 1000};
  const auto out = split_ranges(r, SplitOptions{256, 128});
  ASSERT_GT(out.size(), 2u);
  EXPECT_EQ(out.front(), 0);
  EXPECT_EQ(out.back(), 1000);
  for (std::size_t s = 1; s < out.size(); ++s) {
    const index_t w = out[s] - out[s - 1];
    EXPECT_GE(w, 125);  // ~1000/7 chunks, all >= split_size with balancing
    EXPECT_LE(w, 256);
  }
}

TEST(SplitRanges, ExactMultiple) {
  const std::vector<index_t> r{0, 512};
  const auto out = split_ranges(r, SplitOptions{256, 128});
  ASSERT_EQ(out.size(), 5u);  // 4 chunks of 128
  for (std::size_t s = 1; s < out.size(); ++s) EXPECT_EQ(out[s] - out[s - 1], 128);
}

TEST(SplitRanges, RejectsInvalidOptions) {
  EXPECT_THROW(split_ranges({0, 10}, SplitOptions{64, 128}), Error);
}

TEST(Symbolic, BlokInvariants) {
  const CscMatrix a = sparse::laplacian_3d(7, 7, 7);
  const auto ord = ordering::nested_dissection(sparse::Graph::from_matrix(a));
  const SymbolicFactor sf = build_for(a, ord);

  for (index_t k = 0; k < sf.num_cblks(); ++k) {
    const Cblk& c = sf.cblk(k);
    EXPECT_LT(c.fcol, c.lcol);
    index_t prev_end = c.lcol;
    for (const Blok& b : c.bloks) {
      EXPECT_GE(b.frow, prev_end);       // sorted, below diagonal, disjoint
      EXPECT_LT(b.frow, b.lrow);
      // Blok entirely inside its target cblk's column range.
      const Cblk& t = sf.cblk(b.fcblk);
      EXPECT_GE(b.frow, t.fcol);
      EXPECT_LE(b.lrow, t.lcol);
      EXPECT_EQ(sf.cblk_of(b.frow), b.fcblk);
      prev_end = b.lrow;
    }
    if (!c.bloks.empty()) {
      // Parent is the owner of the first below-diagonal row.
      EXPECT_EQ(c.parent, c.bloks.front().fcblk);
      EXPECT_GT(c.parent, k);
    }
  }
}

TEST(Symbolic, StructureContainsAllNumericFill) {
  const CscMatrix a = sparse::laplacian_3d(6, 6, 6);
  const auto ord = ordering::nested_dissection(sparse::Graph::from_matrix(a));
  const SymbolicFactor sf = build_for(a, ord);

  // Dense Cholesky of the permuted matrix: every nonzero of L must lie
  // inside the block structure.
  la::DMatrix d = a.permuted(ord.perm).to_dense();
  ASSERT_EQ(la::potrf(d.view()), 0);
  const index_t n = a.rows();
  index_t outside = 0;
  for (index_t j = 0; j < n; ++j) {
    const index_t cj = sf.cblk_of(j);
    const Cblk& c = sf.cblk(cj);
    for (index_t i = j + 1; i < n; ++i) {
      if (std::abs(d(i, j)) < 1e-12) continue;
      if (i < c.lcol) continue;  // inside the dense diagonal block
      bool found = false;
      for (const Blok& b : c.bloks) {
        if (i >= b.frow && i < b.lrow) {
          found = true;
          break;
        }
      }
      outside += !found;
    }
  }
  EXPECT_EQ(outside, 0);
}

TEST(Symbolic, StructureContainsOriginalPattern) {
  const CscMatrix a = sparse::convection_diffusion_3d(5, 5, 5, 0.4);
  const auto ord = ordering::nested_dissection(sparse::Graph::from_matrix(a));
  const SymbolicFactor sf = build_for(a, ord);
  const CscMatrix ap = a.permuted(ord.perm);

  for (index_t j = 0; j < ap.cols(); ++j) {
    const Cblk& c = sf.cblk(sf.cblk_of(j));
    for (index_t p = ap.colptr()[static_cast<std::size_t>(j)];
         p < ap.colptr()[static_cast<std::size_t>(j) + 1]; ++p) {
      const index_t i = ap.rowind()[static_cast<std::size_t>(p)];
      if (i < c.lcol) continue;  // diag block or upper triangle (mirrored)
      EXPECT_NO_THROW(sf.find_blok(sf.cblk_of(j), i, i + 1));
    }
  }
}

TEST(Symbolic, FindBlokLocatesAndRejects) {
  const CscMatrix a = sparse::laplacian_2d(10, 10);
  const auto ord = ordering::nested_dissection(sparse::Graph::from_matrix(a));
  const SymbolicFactor sf = build_for(a, ord);

  // Pick a cblk with bloks and query its first blok exactly.
  for (index_t k = 0; k < sf.num_cblks(); ++k) {
    const Cblk& c = sf.cblk(k);
    if (c.bloks.empty()) continue;
    const Blok& b = c.bloks.front();
    EXPECT_EQ(sf.find_blok(k, b.frow, b.lrow), 0);
    // A row below every blok must throw.
    EXPECT_THROW(sf.find_blok(k, sf.n() + 5, sf.n() + 6), Error);
    break;
  }
}

TEST(Symbolic, StatsAreConsistent) {
  const CscMatrix a = sparse::laplacian_3d(6, 6, 6);
  const auto ord = ordering::nested_dissection(sparse::Graph::from_matrix(a));
  const SymbolicFactor sf = build_for(a, ord);
  EXPECT_GT(sf.num_bloks(), 0);
  EXPECT_GT(sf.average_blok_height(), 0.0);
  // LU stores L and U panels: entries = diag + 2*offdiag.
  const std::size_t lower = sf.factor_entries_lower();
  const std::size_t lu = sf.factor_entries_lu();
  std::size_t diag = 0;
  for (const auto& c : sf.cblks())
    diag += static_cast<std::size_t>(c.width()) * static_cast<std::size_t>(c.width());
  EXPECT_EQ(lu, 2 * lower - diag);
}

TEST(Symbolic, LastCblkHasNoBloks) {
  const CscMatrix a = sparse::laplacian_3d(5, 5, 5);
  const auto ord = ordering::nested_dissection(sparse::Graph::from_matrix(a));
  const SymbolicFactor sf = build_for(a, ord);
  EXPECT_TRUE(sf.cblk(sf.num_cblks() - 1).bloks.empty());
  EXPECT_EQ(sf.cblk(sf.num_cblks() - 1).parent, -1);
}

TEST(Symbolic, RejectsBadRanges) {
  const CscMatrix a = sparse::laplacian_2d(4, 4);
  const auto ord = ordering::nested_dissection(sparse::Graph::from_matrix(a));
  EXPECT_THROW(SymbolicFactor::build(a, ord, {0, 5}), Error);       // not covering
  EXPECT_THROW(SymbolicFactor::build(a, ord, {1, 16}), Error);      // not starting at 0
}

} // namespace
