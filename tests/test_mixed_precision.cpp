// Mixed-precision tile storage (DESIGN.md §10): fp32 at-rest low-rank
// factors under TilePrecision::MixedTiles.
//
// Pins three contracts:
//  (a) golden accuracy — across the cross-strategy matrix (3 strategies x
//      SVD/RRQR x sequential/work-stealing) the backward error stays within
//      C·max(tau, eps_fp32·kappa): storing already-tau-truncated factors in
//      fp32 adds rounding of the same order as the truncation itself;
//  (b) Fp64 mode is bit-identical to the pre-change sequential solver — no
//      fp32 kernel ever runs, byte totals equal entries x sizeof(double),
//      and repeated runs produce bitwise-equal solutions;
//  (c) memory — MixedTiles stores strictly fewer Factors bytes than Fp64 on
//      the Laplacian generator, and promotion-conversion scratch is charged
//      to Workspace, never to the Factors category (the byte-attribution
//      bugfix regression).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <limits>

#include "blr.hpp"

namespace {

using namespace blr;
using sparse::CscMatrix;

SolverOptions small_problem_options(Strategy strategy, lr::CompressionKind kind,
                                    real_t tol) {
  SolverOptions o;
  o.strategy = strategy;
  o.kind = kind;
  o.tolerance = tol;
  // Small problem: lower the compressibility thresholds so the BLR machinery
  // actually engages.
  o.compress_min_width = 16;
  o.compress_min_height = 8;
  o.split.split_threshold = 64;
  o.split.split_size = 32;
  return o;
}

std::vector<real_t> seeded_rhs(index_t n, std::uint64_t seed) {
  Prng rng(seed);
  std::vector<real_t> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.normal();
  return b;
}

bool any_fp32_kernel(const std::vector<core::DispatchCount>& dispatch) {
  return std::any_of(dispatch.begin(), dispatch.end(),
                     [](const core::DispatchCount& d) {
                       return d.kernel.find("32") != std::string::npos &&
                              d.calls > 0;
                     });
}

// ---- (a) golden accuracy across the cross-strategy matrix ----------------

struct MixedConfig {
  Strategy strategy;
  lr::CompressionKind kind;
  int threads;
};

class MixedPrecisionCross : public ::testing::TestWithParam<MixedConfig> {};

TEST_P(MixedPrecisionCross, BackwardErrorWithinPrecisionModelBound) {
  const MixedConfig cfg = GetParam();
  const CscMatrix a = sparse::laplacian_3d(12, 12, 12);
  const real_t tol = 1e-8;
  SolverOptions opts = small_problem_options(cfg.strategy, cfg.kind, tol);
  opts.threads = cfg.threads;
  opts.precision = TilePrecision::MixedTiles;

  Solver solver(opts);
  solver.factorize(a);

  // The mode must actually engage: demoted blocks and fp32 kernel rows.
  EXPECT_GT(solver.stats().num_fp32_blocks, 0);
  EXPECT_TRUE(any_fp32_kernel(solver.stats().dispatch));

  const auto b = seeded_rhs(a.rows(), 4321);
  std::vector<real_t> x(b.size());
  solver.solve(b.data(), x.data());

  // DESIGN.md §10 bound: the direct-solve backward error is governed by the
  // larger of the compression tolerance and fp32 unit roundoff, times a
  // modest growth constant C that absorbs the Laplacian's local conditioning.
  const real_t eps32 = std::numeric_limits<float>::epsilon();
  const real_t bound = 500 * std::max(tol, eps32);
  EXPECT_LT(sparse::backward_error(a, x.data(), b.data()), bound);
}

std::string mixed_name(const ::testing::TestParamInfo<MixedConfig>& info) {
  const MixedConfig& c = info.param;
  std::string s;
  switch (c.strategy) {
    case Strategy::MinimalMemory: s += "MinMem"; break;
    case Strategy::JustInTime: s += "JIT"; break;
    case Strategy::Adaptive: s += "Adaptive"; break;
    case Strategy::Dense: s += "Dense"; break;
  }
  s += c.kind == lr::CompressionKind::Svd ? "_SVD" : "_RRQR";
  s += c.threads <= 1 ? "_Seq" : "_WS";
  return s;
}

std::vector<MixedConfig> mixed_matrix() {
  std::vector<MixedConfig> v;
  for (const Strategy s :
       {Strategy::MinimalMemory, Strategy::JustInTime, Strategy::Adaptive}) {
    for (const lr::CompressionKind k :
         {lr::CompressionKind::Svd, lr::CompressionKind::Rrqr}) {
      v.push_back({s, k, 1});
      v.push_back({s, k, 4});
    }
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(AllCombos, MixedPrecisionCross,
                         ::testing::ValuesIn(mixed_matrix()), mixed_name);

// ---- (b) Fp64 mode stays bit-identical -----------------------------------

TEST(MixedPrecisionFp64Mode, SequentialRunsAreBitIdenticalAndNeverTouchFp32) {
  const CscMatrix a = sparse::laplacian_3d(12, 12, 12);
  const auto b = seeded_rhs(a.rows(), 777);

  const auto run = [&](std::vector<real_t>& x) {
    SolverOptions opts = small_problem_options(Strategy::MinimalMemory,
                                               lr::CompressionKind::Rrqr, 1e-8);
    opts.threads = 1;
    ASSERT_EQ(opts.precision, TilePrecision::Fp64);  // the default
    Solver solver(opts);
    solver.factorize(a);
    // Fp64 mode routes exclusively through the pre-change fp64 kernel table:
    // no block demotes and no fp32 dispatch row fires.
    EXPECT_EQ(solver.stats().num_fp32_blocks, 0);
    EXPECT_FALSE(any_fp32_kernel(solver.stats().dispatch));
    // Every stored entry is a double, so the precision-aware byte count
    // collapses to the entry count.
    EXPECT_EQ(solver.stats().factor_bytes_final,
              solver.stats().factor_entries_final * sizeof(real_t));
    x.assign(b.size(), 0);
    solver.solve(b.data(), x.data());
  };

  std::vector<real_t> x1, x2;
  run(x1);
  run(x2);
  ASSERT_EQ(x1.size(), x2.size());
  EXPECT_EQ(0, std::memcmp(x1.data(), x2.data(), x1.size() * sizeof(real_t)));
}

// ---- (c) memory: fewer Factors bytes + Workspace scratch attribution -----

struct PrecisionRun {
  std::size_t factor_bytes = 0;
  std::size_t factor_entries = 0;
  index_t fp32_blocks = 0;
  std::size_t factors_current = 0;   ///< live Factors bytes after factorize
  std::size_t workspace_peak = 0;
  real_t backward_error = 0;
};

PrecisionRun precision_run(const CscMatrix& a, Strategy strategy,
                           TilePrecision precision) {
  SolverOptions opts =
      small_problem_options(strategy, lr::CompressionKind::Rrqr, 1e-8);
  opts.threads = 1;
  opts.precision = precision;
  Solver s(opts);
  s.factorize(a);
  PrecisionRun r;
  r.factor_bytes = s.stats().factor_bytes_final;
  r.factor_entries = s.stats().factor_entries_final;
  r.fp32_blocks = s.stats().num_fp32_blocks;
  r.factors_current = MemoryTracker::instance().current(MemCategory::Factors);
  r.workspace_peak = MemoryTracker::instance().peak(MemCategory::Workspace);
  const auto b = seeded_rhs(a.rows(), 99);
  std::vector<real_t> x(b.size());
  s.solve(b.data(), x.data());
  r.backward_error = sparse::backward_error(a, x.data(), b.data());
  return r;
}

TEST(MixedPrecisionMemory, MixedTilesStoresStrictlyFewerFactorsBytes) {
  const CscMatrix a = sparse::laplacian_3d(14, 14, 14);
  for (const Strategy strategy :
       {Strategy::MinimalMemory, Strategy::JustInTime, Strategy::Adaptive}) {
    const PrecisionRun fp64 = precision_run(a, strategy, TilePrecision::Fp64);
    const PrecisionRun mixed =
        precision_run(a, strategy, TilePrecision::MixedTiles);
    EXPECT_GT(mixed.fp32_blocks, 0) << strategy_name(strategy);
    EXPECT_LT(mixed.factor_bytes, fp64.factor_bytes) << strategy_name(strategy);
    // Both runs solve the same problem to comparable accuracy.
    EXPECT_LT(mixed.backward_error, 1e-5) << strategy_name(strategy);
  }
}

TEST(MixedPrecisionMemory, Fp64FactorsBytesPinnedAndScratchGoesToWorkspace) {
  const CscMatrix a = sparse::laplacian_3d(12, 12, 12);

  // Regression for the byte-attribution bugfix: in a pure-fp64 run the live
  // Factors category after factorization is exactly the stored factor bytes
  // (= entries x sizeof(double)) — conversion scratch (which does not even
  // exist here) and contribution temporaries never leak into Factors.
  const PrecisionRun fp64 =
      precision_run(a, Strategy::MinimalMemory, TilePrecision::Fp64);
  EXPECT_EQ(fp64.factors_current, fp64.factor_bytes);
  EXPECT_EQ(fp64.factor_bytes, fp64.factor_entries * sizeof(real_t));

  // Same pin under MixedTiles: the live Factors bytes equal the (smaller,
  // precision-aware) stored total, so fp64 promotion copies made for the
  // kernels were charged to Workspace instead.
  const PrecisionRun mixed =
      precision_run(a, Strategy::MinimalMemory, TilePrecision::MixedTiles);
  EXPECT_EQ(mixed.factors_current, mixed.factor_bytes);
  EXPECT_LT(mixed.factor_bytes, mixed.factor_entries * sizeof(real_t));
  EXPECT_GT(mixed.workspace_peak, 0u);
}

TEST(MixedPrecisionRefinement, MixedTilesPreconditionerReachesTarget) {
  // The fp32 storage loss is invisible to iterative refinement: the
  // MixedTiles factorization still preconditions CG to the same residual
  // target as the fp64 one.
  const CscMatrix a = sparse::laplacian_3d(12, 12, 12);
  SolverOptions opts = small_problem_options(Strategy::MinimalMemory,
                                             lr::CompressionKind::Rrqr, 1e-8);
  opts.threads = 1;
  opts.precision = TilePrecision::MixedTiles;
  Solver solver(opts);
  solver.factorize(a);
  const auto b = seeded_rhs(a.rows(), 2024);
  std::vector<real_t> x(b.size());
  solver.solve(b.data(), x.data());
  RefinementOptions ropts;
  ropts.target = 1e-10;
  ropts.max_iterations = 40;
  const RefinementResult res = solver.refine(a, b.data(), x.data(), ropts);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.final_error(), 1e-10);
}

TEST(MixedPrecisionRankThreshold, CapLimitsDemotionToSmallRanks) {
  const CscMatrix a = sparse::laplacian_3d(12, 12, 12);
  SolverOptions opts = small_problem_options(Strategy::MinimalMemory,
                                             lr::CompressionKind::Rrqr, 1e-8);
  opts.threads = 1;
  opts.precision = TilePrecision::MixedTiles;

  Solver unlimited(opts);
  unlimited.factorize(a);

  opts.mixed_rank_threshold = 4;  // only near-trivial ranks may demote
  Solver capped(opts);
  capped.factorize(a);

  // A tight cap demotes no more blocks than the unlimited default, and the
  // capped run keeps more bytes in fp64.
  EXPECT_LE(capped.stats().num_fp32_blocks, unlimited.stats().num_fp32_blocks);
  EXPECT_GE(capped.stats().factor_bytes_final,
            unlimited.stats().factor_bytes_final);
}

} // namespace
