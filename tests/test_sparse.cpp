// Tests of the sparse substrate: CSC assembly/queries, SpMV, transpose,
// permutation, the adjacency graph, and Matrix Market I/O.

#include <gtest/gtest.h>

#include <sstream>

#include "common/prng.hpp"
#include "sparse/csc.hpp"
#include "sparse/graph.hpp"
#include "sparse/mm_io.hpp"

namespace {

using namespace blr;
using namespace blr::sparse;

CscMatrix small_matrix() {
  // [ 4 0 1 ]
  // [ 0 3 0 ]
  // [ 1 0 5 ]
  return CscMatrix::from_triplets(
      3, 3, {{0, 0, 4}, {1, 1, 3}, {2, 2, 5}, {0, 2, 1}, {2, 0, 1}});
}

TEST(Csc, FromTripletsSortsAndSums) {
  const CscMatrix m = CscMatrix::from_triplets(
      2, 2, {{1, 0, 1.5}, {0, 0, 2.0}, {1, 0, 0.5}});  // duplicate (1,0)
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
}

TEST(Csc, RowIndicesSortedWithinColumns) {
  Prng rng(5);
  std::vector<Triplet> t;
  for (int i = 0; i < 200; ++i) {
    t.push_back({static_cast<index_t>(rng.below(30)),
                 static_cast<index_t>(rng.below(30)), rng.normal()});
  }
  const CscMatrix m = CscMatrix::from_triplets(30, 30, std::move(t));
  for (index_t j = 0; j < 30; ++j) {
    for (index_t p = m.colptr()[static_cast<std::size_t>(j)] + 1;
         p < m.colptr()[static_cast<std::size_t>(j) + 1]; ++p) {
      EXPECT_LT(m.rowind()[static_cast<std::size_t>(p - 1)],
                m.rowind()[static_cast<std::size_t>(p)]);
    }
  }
}

TEST(Csc, RejectsOutOfRangeTriplets) {
  EXPECT_THROW(CscMatrix::from_triplets(2, 2, {{2, 0, 1.0}}), Error);
  EXPECT_THROW(CscMatrix::from_triplets(2, 2, {{0, -1, 1.0}}), Error);
}

TEST(Csc, SpmvMatchesDense) {
  const CscMatrix m = small_matrix();
  const std::vector<real_t> x{1, 2, 3};
  std::vector<real_t> y(3);
  m.spmv(x.data(), y.data());
  EXPECT_DOUBLE_EQ(y[0], 4 * 1 + 1 * 3);
  EXPECT_DOUBLE_EQ(y[1], 3 * 2);
  EXPECT_DOUBLE_EQ(y[2], 1 * 1 + 5 * 3);

  std::vector<real_t> yt(3);
  m.spmv(x.data(), yt.data(), /*transpose=*/true);
  EXPECT_DOUBLE_EQ(yt[0], 4 * 1 + 1 * 3);  // symmetric here
}

TEST(Csc, TransposedSwapsPattern) {
  const CscMatrix m = CscMatrix::from_triplets(2, 3, {{0, 2, 7}, {1, 0, 3}});
  const CscMatrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t.at(2, 0), 7);
  EXPECT_DOUBLE_EQ(t.at(0, 1), 3);
  EXPECT_EQ(t.nnz(), 2);
}

TEST(Csc, PatternSymmetryDetection) {
  EXPECT_TRUE(small_matrix().pattern_symmetric());
  const CscMatrix asym = CscMatrix::from_triplets(2, 2, {{0, 0, 1}, {0, 1, 1}, {1, 1, 1}});
  EXPECT_FALSE(asym.pattern_symmetric());
}

TEST(Csc, PermutedIsPApt) {
  const CscMatrix m = small_matrix();
  const std::vector<index_t> perm{2, 0, 1};  // perm[new] = old
  const CscMatrix p = m.permuted(perm);
  for (index_t i = 0; i < 3; ++i)
    for (index_t j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(p.at(i, j),
                       m.at(perm[static_cast<std::size_t>(i)],
                            perm[static_cast<std::size_t>(j)]));
}

TEST(Csc, ToDenseAndNorm) {
  const CscMatrix m = small_matrix();
  const la::DMatrix d = m.to_dense();
  EXPECT_DOUBLE_EQ(d(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
  EXPECT_NEAR(m.norm_fro(), std::sqrt(16 + 9 + 25 + 1 + 1.0), 1e-14);
}

TEST(Csc, BackwardErrorZeroForExactSolution) {
  const CscMatrix m = small_matrix();
  // b = A·[1,1,1]
  std::vector<real_t> x{1, 1, 1};
  std::vector<real_t> b(3);
  m.spmv(x.data(), b.data());
  EXPECT_LT(backward_error(m, x.data(), b.data()), 1e-15);
  x[0] += 0.5;
  EXPECT_GT(backward_error(m, x.data(), b.data()), 0.1);
}

TEST(Graph, FromMatrixSymmetrizesAndDropsDiagonal) {
  const CscMatrix asym = CscMatrix::from_triplets(
      3, 3, {{0, 0, 1}, {0, 1, 1}, {2, 1, 1}});
  const Graph g = Graph::from_matrix(asym);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);  // (0,1), (1,2)
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.degree(0), 1);
}

TEST(Graph, InducedSubgraphRemapsIndices) {
  // Path 0-1-2-3.
  const CscMatrix m = CscMatrix::from_triplets(
      4, 4, {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}});
  const Graph g = Graph::from_matrix(m);
  const Graph sub = g.induced({1, 2, 3});
  EXPECT_EQ(sub.num_vertices(), 3);
  EXPECT_EQ(sub.degree(0), 1);  // vertex 1 connects to 2 only inside subset
  EXPECT_EQ(sub.degree(1), 2);
}

TEST(Graph, ConnectedComponents) {
  const CscMatrix m = CscMatrix::from_triplets(
      5, 5, {{0, 1, 1}, {2, 3, 1}});
  const Graph g = Graph::from_matrix(m);
  const auto [comp, n] = g.connected_components();
  EXPECT_EQ(n, 3);  // {0,1}, {2,3}, {4}
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[4], comp[0]);
}

TEST(MatrixMarket, RoundTripGeneral) {
  const CscMatrix m = small_matrix();
  std::stringstream ss;
  write_matrix_market(m, ss);
  const CscMatrix r = read_matrix_market(ss);
  EXPECT_EQ(r.rows(), 3);
  EXPECT_EQ(r.nnz(), m.nnz());
  for (index_t i = 0; i < 3; ++i)
    for (index_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(r.at(i, j), m.at(i, j));
}

TEST(MatrixMarket, SymmetricStorageExpands) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real symmetric\n"
     << "% comment line\n"
     << "3 3 3\n"
     << "1 1 2.0\n"
     << "3 1 -1.0\n"
     << "3 3 4.0\n";
  const CscMatrix m = read_matrix_market(ss);
  EXPECT_EQ(m.nnz(), 4);  // off-diagonal mirrored
  EXPECT_DOUBLE_EQ(m.at(0, 2), -1.0);
  EXPECT_DOUBLE_EQ(m.at(2, 0), -1.0);
  EXPECT_EQ(m.symmetry(), Symmetry::SymmetricValues);
}

TEST(MatrixMarket, PatternField) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate pattern general\n"
     << "2 2 2\n"
     << "1 1\n"
     << "2 2\n";
  const CscMatrix m = read_matrix_market(ss);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 1.0);
}

TEST(MatrixMarket, RejectsBadHeader) {
  std::stringstream ss;
  ss << "%%NotMatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n";
  EXPECT_THROW(read_matrix_market(ss), Error);
}

TEST(MatrixMarket, RejectsTruncatedData) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real general\n3 3 5\n1 1 1.0\n";
  EXPECT_THROW(read_matrix_market(ss), Error);
}


TEST(MatrixMarket, TruncatedHeaderNamesTheProblem) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real general\n% only comments\n";
  try {
    read_matrix_market(ss);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("size line"), std::string::npos);
  }
}

TEST(MatrixMarket, NegativeEntryCountIsRejected) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real general\n2 2 -3\n";
  try {
    read_matrix_market(ss);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("negative"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(MatrixMarket, OverflowingEntryCountIsRejected) {
  std::stringstream ss;
  // 2^80: overflows long long, operator>> sets failbit instead of wrapping.
  ss << "%%MatrixMarket matrix coordinate real general\n"
     << "2 2 1208925819614629174706176\n";
  EXPECT_THROW(read_matrix_market(ss), Error);
}

TEST(MatrixMarket, EntryCountBeyondDenseCapacityIsRejected) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real general\n2 2 5\n"
     << "1 1 1.0\n1 2 1.0\n2 1 1.0\n2 2 1.0\n1 1 1.0\n";
  try {
    read_matrix_market(ss);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds rows x cols"), std::string::npos);
  }
}

TEST(MatrixMarket, OutOfRangeIndexNamesTheLine) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real general\n3 3 2\n"
     << "1 1 1.0\n7 2 1.0\n";
  try {
    read_matrix_market(ss);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos);
  }
}

TEST(MatrixMarket, NonFiniteValueIsRejected) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real general\n2 2 2\n"
     << "1 1 1.0\n2 2 nan\n";
  try {
    read_matrix_market(ss);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("non-finite"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos);
  }
}

TEST(MatrixMarket, MalformedEntryNamesTheLine) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real general\n2 2 2\n"
     << "1 1 1.0\nbogus line\n";
  try {
    read_matrix_market(ss);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("malformed"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos);
  }
}

} // namespace
