// Tests of the static-pivoting path (PaStiX-style): the dense kernel's
// pivot replacement and the solver-level behaviour on nearly singular
// systems, where iterative refinement absorbs the perturbation.

#include <gtest/gtest.h>

#include <sstream>

#include "blr.hpp"
#include "linalg/factorizations.hpp"

namespace {

using namespace blr;
using sparse::CscMatrix;

TEST(GetrfStatic, ReplacesTinyPivotsAndCompletes) {
  // Singular matrix: classic getrf reports breakdown, the static variant
  // perturbs and finishes.
  la::DMatrix a(3, 3);
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 3; ++i) a(i, j) = static_cast<real_t>(i + 1);  // rank 1
  la::DMatrix b = a;
  std::vector<index_t> ipiv;
  EXPECT_GT(la::getrf(b.view(), ipiv), 0);

  index_t replaced = 0;
  la::getrf_static(a.view(), ipiv, real_t(1e-8), replaced);
  EXPECT_EQ(replaced, 2);  // two zero pivots after the first elimination
  for (index_t i = 0; i < 3; ++i) EXPECT_NE(a(i, i), 0.0);
}

TEST(GetrfStatic, NoReplacementOnWellConditionedMatrix) {
  Prng rng(5);
  la::DMatrix a = la::random_diagdom<real_t>(20, rng);
  const la::DMatrix a0 = a;
  std::vector<index_t> ipiv;
  index_t replaced = 0;
  la::getrf_static(a.view(), ipiv, real_t(1e-10), replaced);
  EXPECT_EQ(replaced, 0);

  // Must agree exactly with plain getrf.
  la::DMatrix b = a0;
  std::vector<index_t> ipiv2;
  ASSERT_EQ(la::getrf(b.view(), ipiv2), 0);
  EXPECT_EQ(ipiv, ipiv2);
  EXPECT_EQ(la::diff_fro(a.cview(), b.cview()), 0.0);
}

CscMatrix nearly_singular_grid() {
  // Pure Neumann-like operator: the graph Laplacian without any diagonal
  // shift is exactly singular (constant null vector).
  const CscMatrix lap = sparse::laplacian_2d(8, 8);
  std::vector<sparse::Triplet> t;
  const auto& cp = lap.colptr();
  const auto& ri = lap.rowind();
  const auto& v = lap.values();
  for (index_t j = 0; j < lap.cols(); ++j) {
    for (index_t p = cp[static_cast<std::size_t>(j)];
         p < cp[static_cast<std::size_t>(j) + 1]; ++p) {
      const index_t i = ri[static_cast<std::size_t>(p)];
      real_t val = v[static_cast<std::size_t>(p)];
      if (i == j) {
        // Row sum becomes exactly zero: subtract the boundary deficit.
        real_t offsum = 0;
        for (index_t q = cp[static_cast<std::size_t>(j)];
             q < cp[static_cast<std::size_t>(j) + 1]; ++q) {
          if (ri[static_cast<std::size_t>(q)] != j)
            offsum += v[static_cast<std::size_t>(q)];
        }
        val = -offsum;
      }
      t.push_back({i, j, val});
    }
  }
  auto m = CscMatrix::from_triplets(lap.rows(), lap.cols(), std::move(t),
                                    sparse::Symmetry::General);
  return m;
}

TEST(StaticPivoting, SingularSystemFactorsWithThreshold) {
  const CscMatrix a = nearly_singular_grid();
  SolverOptions opts;
  opts.strategy = Strategy::Dense;
  opts.factorization = Factorization::Lu;

  // With static pivoting the factorization completes and reports the
  // replacement. (Without it, the exactly singular operator either aborts
  // on a zero pivot or sails through on a rounding-level one — both are
  // admissible, so only the static path is asserted.)
  opts.pivot_threshold = 1e-12;
  Solver s(opts);
  s.factorize(a);
  EXPECT_GE(s.stats().pivots_replaced, 1);

  // A compatible right-hand side (b orthogonal to the null space) is solved
  // to good accuracy after refinement.
  std::vector<real_t> xstar(static_cast<std::size_t>(a.rows()));
  Prng rng(3);
  real_t mean = 0;
  for (auto& v : xstar) {
    v = rng.normal();
    mean += v;
  }
  mean /= static_cast<real_t>(xstar.size());
  for (auto& v : xstar) v -= mean;  // zero-mean exact solution
  std::vector<real_t> b(xstar.size());
  a.spmv(xstar.data(), b.data());
  std::vector<real_t> x(b.size());
  s.solve(b.data(), x.data());
  RefinementOptions ropts;
  ropts.max_iterations = 30;
  ropts.target = 1e-10;
  const auto res = s.refine(a, b.data(), x.data(), ropts);
  EXPECT_LT(res.final_error(), 1e-8);
}

TEST(StaticPivoting, SummaryMentionsReplacedPivots) {
  const CscMatrix a = nearly_singular_grid();
  SolverOptions opts;
  opts.strategy = Strategy::Dense;
  opts.factorization = Factorization::Lu;
  opts.pivot_threshold = 1e-12;
  Solver s(opts);
  s.factorize(a);
  std::ostringstream os;
  s.print_summary(os);
  EXPECT_NE(os.str().find("static pivots"), std::string::npos);
  EXPECT_NE(os.str().find("LU"), std::string::npos);
}

TEST(PrintSummary, WorksAtEveryStage) {
  Solver s{SolverOptions{}};
  std::ostringstream o1;
  s.print_summary(o1);
  EXPECT_NE(o1.str().find("not analyzed"), std::string::npos);

  const CscMatrix a = sparse::laplacian_2d(6, 6);
  s.analyze(a);
  std::ostringstream o2;
  s.print_summary(o2);
  EXPECT_NE(o2.str().find("not factorized"), std::string::npos);

  s.factorize(a);
  std::ostringstream o3;
  s.print_summary(o3);
  EXPECT_NE(o3.str().find("factors"), std::string::npos);
}

} // namespace
