// Typed tests: the dense linear-algebra layer is templated on the scalar;
// run the core contracts in both float and double to keep the float
// instantiations honest (mixed-precision work builds on them).

#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "linalg/factorizations.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "linalg/random.hpp"
#include "linalg/svd.hpp"

namespace {

using namespace blr;
using namespace blr::la;

template <typename T>
struct Tol;
template <>
struct Tol<float> {
  static constexpr float rel = 5e-5f;
};
template <>
struct Tol<double> {
  static constexpr double rel = 1e-11;
};

template <typename T>
class TypedLinalg : public ::testing::Test {};

using Scalars = ::testing::Types<float, double>;
TYPED_TEST_SUITE(TypedLinalg, Scalars);

TYPED_TEST(TypedLinalg, GemmAllTransposeCombos) {
  using T = TypeParam;
  Prng rng(1);
  const index_t m = 13, n = 9, k = 11;
  Matrix<T> a(m, k), b(k, n), at(k, m), bt(n, k);
  for (index_t j = 0; j < k; ++j)
    for (index_t i = 0; i < m; ++i) a(i, j) = static_cast<T>(rng.normal());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < k; ++i) b(i, j) = static_cast<T>(rng.normal());
  transpose<T>(a.cview(), at.view());
  transpose<T>(b.cview(), bt.view());

  Matrix<T> ref(m, n);
  gemm(Trans::No, Trans::No, T(1), a.cview(), b.cview(), T(0), ref.view());

  Matrix<T> c(m, n);
  gemm(Trans::Yes, Trans::No, T(1), at.cview(), b.cview(), T(0), c.view());
  EXPECT_LT(diff_fro(c.cview(), ref.cview()), Tol<T>::rel * (1 + norm_fro(ref.cview())));
  gemm(Trans::No, Trans::Yes, T(1), a.cview(), bt.cview(), T(0), c.view());
  EXPECT_LT(diff_fro(c.cview(), ref.cview()), Tol<T>::rel * (1 + norm_fro(ref.cview())));
  gemm(Trans::Yes, Trans::Yes, T(1), at.cview(), bt.cview(), T(0), c.view());
  EXPECT_LT(diff_fro(c.cview(), ref.cview()), Tol<T>::rel * (1 + norm_fro(ref.cview())));
}

TYPED_TEST(TypedLinalg, LuSolveResidual) {
  using T = TypeParam;
  Prng rng(2);
  const index_t n = 24;
  Matrix<T> a = random_diagdom<T>(n, rng);
  const Matrix<T> a0 = a;
  std::vector<index_t> ipiv;
  ASSERT_EQ(getrf(a.view(), ipiv), 0);
  Matrix<T> b(n, 2);
  random_normal(b.view(), rng);
  Matrix<T> x = b;
  getrs<T>(a.cview(), ipiv, x.view());
  Matrix<T> r = b;
  gemm(Trans::No, Trans::No, T(-1), a0.cview(), x.cview(), T(1), r.view());
  EXPECT_LT(norm_fro(r.cview()), Tol<T>::rel * 100 * norm_fro(b.cview()));
}

TYPED_TEST(TypedLinalg, CholeskyReconstruction) {
  using T = TypeParam;
  Prng rng(3);
  const index_t n = 18;
  Matrix<T> a = random_spd<T>(n, rng);
  const Matrix<T> a0 = a;
  ASSERT_EQ(potrf(a.view()), 0);
  Matrix<T> l(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i) l(i, j) = a(i, j);
  Matrix<T> llt(n, n);
  gemm(Trans::No, Trans::Yes, T(1), l.cview(), l.cview(), T(0), llt.view());
  EXPECT_LT(diff_fro(llt.cview(), a0.cview()), Tol<T>::rel * 100 * norm_fro(a0.cview()));
}

TYPED_TEST(TypedLinalg, QrOrthonormality) {
  using T = TypeParam;
  Prng rng(4);
  Matrix<T> a(20, 8);
  random_normal(a.view(), rng);
  std::vector<T> tau;
  geqrf(a.view(), tau);
  orgqr(a.view(), tau);
  Matrix<T> g(8, 8);
  gemm(Trans::Yes, Trans::No, T(1), a.cview(), a.cview(), T(0), g.view());
  for (index_t i = 0; i < 8; ++i) g(i, i) -= T(1);
  EXPECT_LT(norm_fro(g.cview()), Tol<T>::rel * 100);
}

TYPED_TEST(TypedLinalg, RrqrFindsRank) {
  using T = TypeParam;
  Prng rng(5);
  Matrix<T> a = random_rank_k<T>(30, 24, 5, rng);
  std::vector<index_t> jpvt;
  std::vector<T> tau;
  const T tol = static_cast<T>(Tol<T>::rel) * norm_fro(a.cview());
  const index_t r = geqp3_trunc(a.view(), jpvt, tau, tol, index_t(24));
  EXPECT_EQ(r, 5);
}

TYPED_TEST(TypedLinalg, SvdSingularValuesOfOrthogonalScaled) {
  using T = TypeParam;
  // A = 3·I has all singular values 3.
  Matrix<T> a(6, 6);
  for (index_t i = 0; i < 6; ++i) a(i, i) = T(3);
  const auto s = singular_values(a.cview());
  for (const T v : s) EXPECT_NEAR(static_cast<double>(v), 3.0, 1e-5);
}

TYPED_TEST(TypedLinalg, TrsmRoundTrip) {
  using T = TypeParam;
  Prng rng(6);
  const index_t n = 12;
  Matrix<T> a(n, n);
  random_normal(a.view(), rng);
  for (index_t i = 0; i < n; ++i) a(i, i) = T(6) + std::abs(a(i, i));
  Matrix<T> b(n, 4);
  random_normal(b.view(), rng);
  Matrix<T> x = b;
  trsm(Side::Left, Uplo::Lower, Trans::No, Diag::NonUnit, T(1), a.cview(), x.view());
  // Multiply back with the lower triangle.
  Matrix<T> lower(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i) lower(i, j) = a(i, j);
  Matrix<T> recon(n, 4);
  gemm(Trans::No, Trans::No, T(1), lower.cview(), x.cview(), T(0), recon.view());
  EXPECT_LT(diff_fro(recon.cview(), b.cview()), Tol<T>::rel * 100 * norm_fro(b.cview()));
}

} // namespace
