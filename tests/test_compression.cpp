// Tests of the SVD and RRQR compression kernels: the tolerance contract
// ‖A − Â‖_F <= τ·‖A‖_F, orthonormality of U, rank behaviour and the
// storage-beneficial limit.

#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "linalg/norms.hpp"
#include "linalg/random.hpp"
#include "lowrank/compression.hpp"

namespace {

using namespace blr;
using namespace blr::lr;

la::DMatrix materialize(const LrMatrix& m) {
  la::DMatrix d(m.rows(), m.cols());
  m.to_dense(d.view());
  return d;
}

real_t relative_error(const la::DMatrix& a, const LrMatrix& approx) {
  const la::DMatrix d = materialize(approx);
  return la::diff_fro(d.cview(), a.cview()) / std::max<real_t>(la::norm_fro(a.cview()), 1e-300);
}

real_t orthogonality_defect(la::DConstView q) {
  la::DMatrix g(q.cols, q.cols);
  la::gemm(la::Trans::Yes, la::Trans::No, real_t(1), q, q, real_t(0), g.view());
  for (index_t i = 0; i < q.cols; ++i) g(i, i) -= 1;
  return la::norm_fro(g.cview());
}

struct CompressionCase {
  CompressionKind kind;
  index_t m, n;
  real_t decay;
  real_t tol;
};

class ToleranceContract : public ::testing::TestWithParam<CompressionCase> {};

TEST_P(ToleranceContract, ErrorBelowToleranceAndUOrthonormal) {
  const auto p = GetParam();
  Prng rng(static_cast<std::uint64_t>(p.m * 131 + p.n));
  const la::DMatrix a = la::random_decaying<real_t>(p.m, p.n, p.decay, rng);

  const auto lr = compress(p.kind, a.cview(), p.tol, std::min(p.m, p.n));
  ASSERT_TRUE(lr.has_value());
  EXPECT_LE(relative_error(a, *lr), p.tol * 1.01);
  EXPECT_LT(orthogonality_defect(lr->u.cview()), 1e-11 * std::max<index_t>(1, lr->rank()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ToleranceContract,
    ::testing::Values(
        CompressionCase{CompressionKind::Rrqr, 40, 40, 0.5, 1e-4},
        CompressionCase{CompressionKind::Rrqr, 40, 40, 0.5, 1e-8},
        CompressionCase{CompressionKind::Rrqr, 40, 40, 0.5, 1e-12},
        CompressionCase{CompressionKind::Rrqr, 80, 30, 0.7, 1e-8},
        CompressionCase{CompressionKind::Rrqr, 30, 80, 0.7, 1e-8},
        CompressionCase{CompressionKind::Rrqr, 128, 128, 0.8, 1e-6},
        CompressionCase{CompressionKind::Svd, 40, 40, 0.5, 1e-4},
        CompressionCase{CompressionKind::Svd, 40, 40, 0.5, 1e-8},
        CompressionCase{CompressionKind::Svd, 40, 40, 0.5, 1e-12},
        CompressionCase{CompressionKind::Svd, 80, 30, 0.7, 1e-8},
        CompressionCase{CompressionKind::Svd, 30, 80, 0.7, 1e-8},
        CompressionCase{CompressionKind::Svd, 128, 128, 0.8, 1e-6}),
    [](const auto& info) {
      const auto& p = info.param;
      std::string s = p.kind == CompressionKind::Svd ? "SVD" : "RRQR";
      s += "_" + std::to_string(p.m) + "x" + std::to_string(p.n);
      s += "_tol" + std::to_string(static_cast<int>(-std::log10(p.tol)));
      s += "_d" + std::to_string(static_cast<int>(p.decay * 10));
      return s;
    });

TEST(Compression, SvdRankNeverExceedsRrqrRank) {
  // The paper: SVD finds the smallest ranks for a given tolerance.
  Prng rng(8);
  for (int trial = 0; trial < 5; ++trial) {
    const la::DMatrix a = la::random_decaying<real_t>(60, 60, 0.6, rng);
    const auto s = compress_svd(a.cview(), 1e-8, 60);
    const auto r = compress_rrqr(a.cview(), 1e-8, 60);
    ASSERT_TRUE(s && r);
    EXPECT_LE(s->rank(), r->rank());
  }
}

TEST(Compression, ZeroMatrixHasRankZero) {
  const la::DMatrix a(30, 20);
  for (const auto kind : {CompressionKind::Rrqr, CompressionKind::Svd}) {
    const auto lr = compress(kind, a.cview(), 1e-8, 20);
    ASSERT_TRUE(lr.has_value());
    EXPECT_EQ(lr->rank(), 0);
    EXPECT_EQ(materialize(*lr).size(), 600);
    EXPECT_EQ(la::norm_fro(materialize(*lr).cview()), 0.0);
  }
}

TEST(Compression, ExactRankRecovered) {
  Prng rng(3);
  const la::DMatrix a = la::random_rank_k<real_t>(50, 40, 7, rng);
  for (const auto kind : {CompressionKind::Rrqr, CompressionKind::Svd}) {
    const auto lr = compress(kind, a.cview(), 1e-10, 40);
    ASSERT_TRUE(lr.has_value());
    EXPECT_EQ(lr->rank(), 7);
    EXPECT_LE(relative_error(a, *lr), 1e-9);
  }
}

TEST(Compression, FailsWhenRankExceedsCap) {
  Prng rng(4);
  la::DMatrix a(30, 30);
  la::random_normal(a.view(), rng);  // full rank
  for (const auto kind : {CompressionKind::Rrqr, CompressionKind::Svd}) {
    EXPECT_FALSE(compress(kind, a.cview(), 1e-12, 5).has_value());
  }
}

TEST(Compression, BeneficialRankLimit) {
  EXPECT_EQ(beneficial_rank_limit(100, 100), 49);  // r(m+n) < mn strictly
  EXPECT_EQ(beneficial_rank_limit(128, 20), (128 * 20 - 1) / 148);
  EXPECT_EQ(beneficial_rank_limit(0, 0), 0);
  // Storage check: at the limit the LR form is strictly smaller.
  const index_t m = 77, n = 33;
  const index_t r = beneficial_rank_limit(m, n);
  EXPECT_LT(r * (m + n), m * n);
  EXPECT_GE((r + 1) * (m + n), m * n);
}

TEST(Compression, CompressToTileChoosesRepresentation) {
  Prng rng(5);
  const la::DMatrix lowrank_in = la::random_rank_k<real_t>(60, 60, 4, rng);
  const Tile t1 = compress_to_tile(CompressionKind::Rrqr, lowrank_in.cview(), 1e-8);
  EXPECT_TRUE(t1.is_lowrank());
  EXPECT_EQ(t1.rank(), 4);

  la::DMatrix fullrank_in(60, 60);
  la::random_normal(fullrank_in.view(), rng);
  const Tile t2 = compress_to_tile(CompressionKind::Rrqr, fullrank_in.cview(), 1e-8);
  EXPECT_FALSE(t2.is_lowrank());
  la::DMatrix out(60, 60);
  t2.to_dense(out.view());
  EXPECT_EQ(la::diff_fro(out.cview(), fullrank_in.cview()), 0.0);
}

TEST(Tile, DensifyPreservesValue) {
  Prng rng(6);
  const la::DMatrix a = la::random_rank_k<real_t>(25, 35, 3, rng);
  Tile t = compress_to_tile(CompressionKind::Svd, a.cview(), 1e-10);
  ASSERT_TRUE(t.is_lowrank());
  la::DMatrix before(25, 35);
  t.to_dense(before.view());
  t.densify();
  EXPECT_FALSE(t.is_lowrank());
  EXPECT_EQ(la::diff_fro(t.dense().cview(), before.cview()), 0.0);
}

TEST(Tile, StorageEntriesAndTracking) {
  auto& tracker = MemoryTracker::instance();
  tracker.reset();
  {
    Tile d = Tile::make_dense(10, 10);
    EXPECT_EQ(d.storage_entries(), 100u);
    EXPECT_EQ(tracker.current(MemCategory::Factors), 100 * sizeof(real_t));
    Prng rng(2);
    const la::DMatrix a = la::random_rank_k<real_t>(10, 10, 2, rng);
    auto lr = compress_rrqr(a.cview(), 1e-10, 4);
    ASSERT_TRUE(lr);
    d.set_lowrank(std::move(*lr));
    EXPECT_EQ(d.storage_entries(), 40u);  // 2 * (10*2)
    EXPECT_EQ(tracker.current(MemCategory::Factors), 40 * sizeof(real_t));
  }
  EXPECT_EQ(tracker.current(MemCategory::Factors), 0u);
}

TEST(RandomizedCompression, ToleranceContractAndOrthonormalU) {
  Prng rng(51);
  for (const real_t tol : {1e-4, 1e-8, 1e-12}) {
    const la::DMatrix a = la::random_decaying<real_t>(70, 60, 0.5, rng);
    const auto lr = compress_randomized(a.cview(), tol, 60);
    ASSERT_TRUE(lr.has_value()) << tol;
    EXPECT_LE(relative_error(a, *lr), tol * 1.01) << tol;
    EXPECT_LT(orthogonality_defect(lr->u.cview()),
              1e-10 * std::max<index_t>(1, lr->rank()));
  }
}

TEST(RandomizedCompression, ExactRankRecoveredWithinOversampling) {
  Prng rng(52);
  const la::DMatrix a = la::random_rank_k<real_t>(64, 48, 6, rng);
  const auto lr = compress_randomized(a.cview(), 1e-10, 48);
  ASSERT_TRUE(lr.has_value());
  EXPECT_EQ(lr->rank(), 6);
  EXPECT_LE(relative_error(a, *lr), 1e-9);
}

TEST(RandomizedCompression, ZeroMatrixAndFullRankFailure) {
  const la::DMatrix z(20, 20);
  const auto lrz = compress_randomized(z.cview(), 1e-8, 20);
  ASSERT_TRUE(lrz.has_value());
  EXPECT_EQ(lrz->rank(), 0);

  Prng rng(53);
  la::DMatrix f(40, 40);
  la::random_normal(f.view(), rng);
  EXPECT_FALSE(compress_randomized(f.cview(), 1e-12, 6).has_value());
}

TEST(RandomizedCompression, DeterministicAcrossCalls) {
  Prng rng(54);
  const la::DMatrix a = la::random_decaying<real_t>(50, 50, 0.6, rng);
  const auto l1 = compress_randomized(a.cview(), 1e-8, 50);
  const auto l2 = compress_randomized(a.cview(), 1e-8, 50);
  ASSERT_TRUE(l1 && l2);
  EXPECT_EQ(l1->rank(), l2->rank());
  EXPECT_EQ(la::diff_fro(l1->u.cview(), l2->u.cview()), 0.0);
}

} // namespace
